// Black-Scholes example: a deep floating-point pipeline split across many
// chained PCUs. Prints the partitioning the compiler chose and compares a
// pipelined execution against a fully sequential one (no tile double
// buffering), showing what coarse-grained pipelining buys (Section 3.5).
package main

import (
	"context"
	"fmt"
	"log"

	"plasticine/internal/compiler"
	"plasticine/internal/core"
	"plasticine/internal/sim"
	"plasticine/internal/workloads"
)

func main() {
	bench := workloads.NewBlackScholes()
	fmt.Println("Black-Scholes:", bench.ScaleNote())

	p, err := bench.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys := core.New()
	m, err := sys.Compile(p)
	if err != nil {
		log.Fatal(err)
	}
	// How did the deep pipeline partition across PCUs?
	for _, pc := range m.Part.PCUs {
		if pc.V.Name != "price" {
			continue
		}
		fmt.Printf("price pipeline: %d ops -> %d chained PCUs (x%d unroll)\n",
			len(pc.V.Ops), len(pc.Parts), pc.V.Unroll)
		total := 0
		for _, ph := range pc.Parts {
			total += ph.StagesUsed
		}
		fmt.Printf("  %d stages total, %.1f avg stage occupancy\n",
			total, float64(total)/float64(len(pc.Parts)))
	}
	printRun := func(label string, res *sim.Result) {
		fmt.Printf("%s: %d cycles (%.1f us), %.1f GB/s DRAM\n",
			label, res.Cycles, res.Seconds*1e6, res.EffectiveBandwidth()/1e9)
	}
	res, st, err := sim.Simulate(context.Background(), m, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.Check(st); err != nil {
		log.Fatal(err)
	}
	printRun("pipelined (N-buffered tiles)", res)

	// Ablation: single-buffered tiles serialise loads with compute.
	p2, err := workloads.NewBlackScholes().Build()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := compiler.Compile(p2, sys.Params)
	if err != nil {
		log.Fatal(err)
	}
	res2, _, err := sim.Simulate(context.Background(), m2, sim.Options{DisableNBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	printRun("single-buffered", res2)
	fmt.Printf("double buffering speedup: %.2fx\n", float64(res2.Cycles)/float64(res.Cycles))
}
