// GEMM example: run the Table 4 blocked matrix-multiply benchmark end to
// end against the FPGA baseline, then show how the runtime responds to an
// architecture knob by re-running on a chip with half the DRAM channels.
package main

import (
	"fmt"
	"log"

	"plasticine/internal/arch"
	"plasticine/internal/core"
	"plasticine/internal/workloads"
)

func main() {
	bench := workloads.NewGEMM()
	fmt.Println("GEMM:", bench.ScaleNote())

	sys := core.New()
	r, err := sys.RunBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	prof := bench.Profile()
	fmt.Printf("plasticine: %.1f us, %.1f W, %.1f GFLOP/s\n",
		r.TimeSec*1e6, r.PowerW, prof.Flops/r.TimeSec/1e9)
	fmt.Printf("fpga model: %.1f us -> speedup %.2fx (paper %.1fx), perf/W %.2fx (paper %.1fx)\n",
		r.FPGATimeSec*1e6, r.Speedup, r.PaperSpeedup, r.PerfPerWatt, r.PaperPerfW)
	fmt.Printf("utilization: PCU %.0f%%, PMU %.0f%%, AG %.0f%%\n",
		100*r.Util.PCUFrac, 100*r.Util.PMUFrac, 100*r.Util.AGFrac)

	// Architecture study: halve the DRAM channels. GEMM has on-chip reuse,
	// so it should degrade far less than 2x.
	narrow := arch.Default()
	narrow.Chip.DDRChannels = 2
	sys2 := core.WithParams(narrow)
	r2, err := sys2.RunBenchmark(workloads.NewGEMM())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith 2 DDR channels: %.1f us (%.2fx slower; locality shields compute-bound GEMM)\n",
		r2.TimeSec*1e6, r2.TimeSec/r.TimeSec)
}
