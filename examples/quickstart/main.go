// Quickstart: write a parallel-pattern program (a dot product expressed as
// Map + Fold, Section 2), check it with the pattern evaluator, then build
// the equivalent tiled DHDL program, compile it onto the default 16x8
// Plasticine chip and simulate it cycle by cycle.
package main

import (
	"fmt"
	"log"

	"plasticine/internal/core"
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

func main() {
	const n, tile = 16384, 1024

	// --- 1. The programming model: Fold over an index domain. ---
	a := pattern.NewF32("a", n)
	b := pattern.NewF32("b", n)
	for i := 0; i < n; i++ {
		a.SetF32(float32(i%17)*0.25, i)
		b.SetF32(float32(i%11)-5, i)
	}
	fold := pattern.Fold([]int{n}, pattern.F(0),
		pattern.Mul2(pattern.At(a, pattern.Index(0)), pattern.At(b, pattern.Index(0))),
		pattern.Add)
	ref, err := pattern.Run(fold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern evaluator: dot = %.2f\n", ref[0].F)
	fmt.Printf("pattern: %s\n", pattern.FormatPattern(fold))

	// --- 2. The DHDL program: explicit tiles, loads and reductions. ---
	bd := dhdl.NewBuilder("dot", dhdl.Sequential)
	da := bd.DRAMF32("a", n)
	db := bd.DRAMF32("b", n)
	ta := bd.SRAM("ta", pattern.F32, tile)
	tb := bd.SRAM("tb", pattern.F32, tile)
	partial := bd.Reg("partial", pattern.VF(0))
	total := bd.Reg("total", pattern.VF(0))
	bd.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, n, tile, 4)}, func(ix []dhdl.Expr) {
		bd.Load("loadA", da, ix[0], ta, tile)
		bd.Load("loadB", db, ix[0], tb, tile)
		bd.Compute("mac", []dhdl.Counter{dhdl.CPar(tile, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add,
				dhdl.Mul(dhdl.Ld(ta, jx[0]), dhdl.Ld(tb, jx[0])))}
		})
		bd.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	})
	prog := bd.MustBuild()
	if err := da.Bind(a); err != nil {
		log.Fatal(err)
	}
	if err := db.Bind(b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontroller tree:\n%s", prog.Tree())

	// --- 3. Compile and simulate. ---
	sys := core.New()
	mapping, err := sys.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", mapping.Summary())

	res, st, err := sys.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: dot = %.2f in %d cycles (%.2f us at 1 GHz), %.1f W\n",
		st.RegValue(total).F, res.Cycles, res.Seconds*1e6, res.PowerW)
	fmt.Printf("DRAM: %d KB read at %.1f GB/s effective\n",
		res.DRAM.BytesRead/1024, res.EffectiveBandwidth()/1e9)
}
