// PageRank example: the sparse-workload path — DRAM gathers through the
// address-coalescing unit — plus an ablation that disables coalescing to
// show why the paper's dedicated hardware matters (Section 3.4).
package main

import (
	"context"
	"fmt"
	"log"

	"plasticine/internal/core"
	"plasticine/internal/sim"
	"plasticine/internal/workloads"
)

func main() {
	bench := workloads.NewPageRank()
	fmt.Println("PageRank:", bench.ScaleNote())

	sys := core.New()
	r, err := sys.RunBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plasticine: %.1f us, DRAM %.2f MB read\n", r.TimeSec*1e6, r.DRAMReadMB)
	fmt.Printf("fpga model: %.1f us -> speedup %.2fx (paper %.1fx)\n",
		r.FPGATimeSec*1e6, r.Speedup, r.PaperSpeedup)

	// Ablation: shrink the coalescing cache to a single entry, so every
	// gathered rank pays a full burst.
	p, err := workloads.NewPageRank().Build()
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Compile(p)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := sim.Simulate(context.Background(), m, sim.Options{CoalesceWindow: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout address coalescing: %.1f us (%.2fx slower, %.2f MB read)\n",
		res.Seconds*1e6, res.Seconds/r.TimeSec, float64(res.DRAM.BytesRead)/1e6)
}
