// Chip-scaling example (an extension beyond the paper's evaluation): hold
// the workload fixed and vary the fabric size and memory system to see
// which benchmarks are compute-provisioning-bound versus bandwidth-bound —
// the trade the paper's Section 3.7 sizing navigates.
package main

import (
	"fmt"
	"log"

	"plasticine/internal/arch"
	"plasticine/internal/core"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

func main() {
	configs := []struct {
		name       string
		cols, rows int
		channels   int
	}{
		{"quarter (8x4, 2ch)", 8, 4, 2},
		{"half (8x8, 2ch)", 8, 8, 2},
		{"paper (16x8, 4ch)", 16, 8, 4},
		{"double (16x16, 8ch)", 16, 16, 8},
	}
	t := stats.New("chip scaling: simulated runtime (us)",
		"Benchmark", configs[0].name, configs[1].name, configs[2].name, configs[3].name)
	for _, name := range []string{"InnerProduct", "GEMM", "CNN"} {
		row := []string{name}
		for _, c := range configs {
			p := arch.Default()
			p.Chip.Cols, p.Chip.Rows = c.cols, c.rows
			p.Chip.DDRChannels = c.channels
			b, err := workloads.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			r, err := core.WithParams(p).RunBenchmark(b)
			if err != nil {
				row = append(row, "does not fit")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", r.TimeSec*1e6))
		}
		t.Add(row...)
	}
	fmt.Print(t.String())
	fmt.Println("\nreading the table:")
	fmt.Println("- InnerProduct tracks the channel count (bandwidth-bound; Section 4.5)")
	fmt.Println("- GEMM and CNN track the unit count until they saturate their unrolling")
}
