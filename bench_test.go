// Benchmark harness: one target per measured artefact of the paper.
//
//	BenchmarkTable5Area       Table 5  (area breakdown)
//	BenchmarkTable3Sizing     Table 3  (parameter selection sweep)
//	BenchmarkTable6Overheads  Table 6  (generalization ladder)
//	BenchmarkTable7/<name>    Table 7  (one row per Table 4 benchmark)
//	BenchmarkFig7/<panel>     Figure 7 (panels a-f)
//	BenchmarkAblation/...     design-choice ablations from Section 3
//
// Run everything once:
//
//	go test -bench=. -benchmem -benchtime=1x .
package plasticine_test

import (
	"context"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/core"
	"plasticine/internal/dram"
	"plasticine/internal/dse"
	"plasticine/internal/sim"
	"plasticine/internal/workloads"
)

// BenchmarkTable5Area regenerates the Table 5 area breakdown.
func BenchmarkTable5Area(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		a := arch.Area(arch.Default())
		total = a.ChipTotal()
	}
	b.ReportMetric(total, "mm2")
}

// BenchmarkTable3Sizing runs the Section 3.7 selection sweep.
func BenchmarkTable3Sizing(b *testing.B) {
	benches, err := dse.LoadBenches()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := dse.Table3(benches, arch.Default().Chip)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable6Overheads regenerates the generalization ladder.
func BenchmarkTable6Overheads(b *testing.B) {
	benches, err := dse.LoadBenches()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cum float64
	for i := 0; i < b.N; i++ {
		rows, err := dse.Table6(benches, arch.Default())
		if err != nil {
			b.Fatal(err)
		}
		cum = rows[len(rows)-1].CumE
	}
	b.ReportMetric(cum, "geomean-overhead")
}

// BenchmarkTable7 regenerates every Table 7 row: compile + cycle-level
// simulation + FPGA baseline for each Table 4 benchmark. The reported
// metrics are the simulated runtime and the speedup over the FPGA.
func BenchmarkTable7(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			sys := core.New()
			var r *core.BenchResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = sys.RunBenchmark(w)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(r.Speedup, "speedup-vs-fpga")
			b.ReportMetric(r.PerfPerWatt, "perf/W-vs-fpga")
		})
	}
}

// BenchmarkFig7 computes each design-space panel of Figure 7.
func BenchmarkFig7(b *testing.B) {
	benches, err := dse.LoadBenches()
	if err != nil {
		b.Fatal(err)
	}
	for _, panel := range []string{"a", "b", "c", "d", "e", "f"} {
		panel := panel
		b.Run(panel, func(b *testing.B) {
			var best int
			for i := 0; i < b.N; i++ {
				p, err := dse.Figure7(panel, benches, arch.Default().Chip)
				if err != nil {
					b.Fatal(err)
				}
				best = p.BestValue()
			}
			b.ReportMetric(float64(best), "selected-value")
		})
	}
}

// ablate runs a benchmark under simulator options and reports the slowdown
// relative to the full-featured configuration.
func ablate(b *testing.B, mk func() workloads.Benchmark, opts sim.Options) {
	b.Helper()
	sys := core.New()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		w := mk()
		p, err := w.Build()
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys.Compile(p)
		if err != nil {
			b.Fatal(err)
		}
		base, _, err := sim.Simulate(context.Background(), m, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		w2 := mk()
		p2, err := w2.Build()
		if err != nil {
			b.Fatal(err)
		}
		m2, err := sys.Compile(p2)
		if err != nil {
			b.Fatal(err)
		}
		abl, _, err := sim.Simulate(context.Background(), m2, opts)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = float64(abl.Cycles) / float64(base.Cycles)
	}
	b.ReportMetric(slowdown, "slowdown")
}

// BenchmarkAblation quantifies the design choices Section 3 motivates:
// the coalescing unit (sparse traffic), N-buffered scratchpads
// (coarse-grained pipelining), and DRAM channel count.
func BenchmarkAblation(b *testing.B) {
	b.Run("CoalescingOff-PageRank", func(b *testing.B) {
		ablate(b, func() workloads.Benchmark { return workloads.NewPageRank() }, sim.Options{CoalesceWindow: 1})
	})
	b.Run("CoalescingOff-SMDV", func(b *testing.B) {
		ablate(b, func() workloads.Benchmark { return workloads.NewSMDV() }, sim.Options{CoalesceWindow: 1})
	})
	b.Run("NBufferOff-BlackScholes", func(b *testing.B) {
		ablate(b, func() workloads.Benchmark { return workloads.NewBlackScholes() }, sim.Options{DisableNBuffer: true})
	})
	b.Run("NBufferOff-InnerProduct-NoUnroll", func(b *testing.B) {
		// With outer unrolling, duplicate tile copies already overlap
		// loads with compute; at Par=1 double buffering is the only
		// overlap mechanism, which is the textbook case (Section 3.5).
		mk := func() workloads.Benchmark {
			w := workloads.NewInnerProduct()
			w.Par = 1
			return w
		}
		ablate(b, mk, sim.Options{DisableNBuffer: true})
	})
	b.Run("OneDDRChannel-TPCHQ6", func(b *testing.B) {
		dcfg := dram.DDR3_1600x4()
		dcfg.Channels = 1
		ablate(b, func() workloads.Benchmark { return workloads.NewTPCHQ6() }, sim.Options{DRAM: &dcfg})
	})
}
