package metrics

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestReqTraceSpans(t *testing.T) {
	tr := NewReqTrace("r1", "acme", "/v1/run", time.Now())
	end := tr.StartSpan("compile")
	time.Sleep(2 * time.Millisecond)
	end()
	end() // idempotent: must not double-record

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Name != "compile" {
		t.Errorf("span name = %q", spans[0].Name)
	}
	if spans[0].DurUS < 1000 {
		t.Errorf("span duration = %dµs, want ≥ 1000", spans[0].DurUS)
	}
	if got := tr.SpanSumUS(); got != spans[0].DurUS {
		t.Errorf("SpanSumUS = %d, want %d", got, spans[0].DurUS)
	}
}

func TestReqTraceUnendedSpanNotRecorded(t *testing.T) {
	tr := NewReqTrace("r1", "", "/", time.Now())
	_ = tr.StartSpan("queue") // never ended
	if len(tr.Spans()) != 0 {
		t.Error("unended span was recorded")
	}
}

func TestReqTraceSpanCap(t *testing.T) {
	tr := NewReqTrace("r1", "", "/", time.Now())
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.StartSpan(fmt.Sprintf("s%d", i))()
	}
	if got := len(tr.Spans()); got != maxSpansPerTrace {
		t.Errorf("got %d spans, want cap %d", got, maxSpansPerTrace)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context has a trace")
	}
	// StartPhase with no trace must be a usable no-op.
	StartPhase(ctx, "sim")()

	tr := NewReqTrace("r2", "t", "/v1/sweep", time.Now())
	ctx = WithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	end := StartPhase(ctx, "sim")
	end()
	if len(tr.Spans()) != 1 || tr.Spans()[0].Name != "sim" {
		t.Errorf("StartPhase did not record: %+v", tr.Spans())
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *ReqTrace
	tr.StartSpan("x")()
	if tr.Spans() != nil || tr.SpanSumUS() != 0 {
		t.Error("nil trace leaked data")
	}
	if !tr.Start().IsZero() {
		t.Error("nil trace start not zero")
	}
	ctx := WithTrace(context.Background(), nil)
	if TraceFrom(ctx) != nil {
		t.Error("nil trace attached")
	}
}

func TestSpansSortedByStart(t *testing.T) {
	tr := NewReqTrace("r3", "", "/", time.Now())
	endA := tr.StartSpan("a")
	time.Sleep(time.Millisecond)
	endB := tr.StartSpan("b")
	endB() // ends first, so appends first
	endA()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Errorf("spans not sorted by start: %+v", spans)
	}
}
