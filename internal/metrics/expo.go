package metrics

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format media type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// WritePrometheus renders every family in text exposition format v0.0.4.
// Output is deterministic: families sort by name, series by label
// values. Counter and gauge values observed mid-write may be skewed
// relative to each other; each individual value is atomically read.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var buf bytes.Buffer
	for _, f := range fams {
		f.write(&buf)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func (f *family) write(buf *bytes.Buffer) {
	if f.help != "" {
		fmt.Fprintf(buf, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
	}
	fmt.Fprintf(buf, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.snapshot() {
		if f.kind == kindHistogram {
			writeHistogram(buf, f, s)
			continue
		}
		val := ""
		f.mu.Lock()
		fn := s.fn
		f.mu.Unlock()
		if fn != nil {
			val = formatFloat(fn())
		} else {
			val = strconv.FormatInt(s.n.Load(), 10)
		}
		fmt.Fprintf(buf, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", ""), val)
	}
}

func writeHistogram(buf *bytes.Buffer, f *family, s *series) {
	h := s.h
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < numBuckets {
			le = formatFloat(bucketBounds[i])
		}
		fmt.Fprintf(buf, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, s.values, "le", le), cum)
	}
	fmt.Fprintf(buf, "%s_sum%s %s\n",
		f.name, labelString(f.labels, s.values, "", ""), formatFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(buf, "%s_count%s %d\n",
		f.name, labelString(f.labels, s.values, "", ""), h.count.Load())
}

// labelString renders {a="x",b="y"} with proper escaping, appending the
// extra pair (used for histogram "le") when extraName is non-empty.
// Returns "" when there are no labels at all.
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the /metricsz HTTP handler. Each successful scrape
// increments the registry's scrape counter (visible in /statsz as
// metrics_scrapes).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		r.scrapes.Add(1)
		w.Header().Set("Content-Type", ContentType)
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		w.Write(buf.Bytes())
	})
}

// BuildInfo identifies the running binary: module version, VCS revision,
// and Go toolchain version.
type BuildInfo struct {
	Version   string `json:"version"`
	Revision  string `json:"revision"`
	GoVersion string `json:"go_version"`
}

// GetBuildInfo reads the binary's embedded build information. Fields
// that the build did not stamp (e.g. a plain `go test` binary has no VCS
// revision) come back as "unknown".
func GetBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			bi.Revision = s.Value
		}
	}
	return bi
}

// RegisterBuildInfo registers `name` as a constant-1 gauge carrying the
// binary's build identity as labels, the conventional Prometheus shape
// for joining version metadata onto other series.
func (r *Registry) RegisterBuildInfo(name string) {
	if r == nil {
		return
	}
	bi := GetBuildInfo()
	r.LabeledGaugeFunc(name, "Build identity of the running binary (value is always 1).",
		[]string{"goversion", "revision", "version"},
		[]string{bi.GoVersion, bi.Revision, bi.Version},
		func() float64 { return 1 })
}
