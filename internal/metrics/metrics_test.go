package metrics

import (
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func expo(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestExpositionGolden pins the full text format: HELP/TYPE lines, label
// escaping, and deterministic family/series ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests by route and status.", "route", "status")
	v.With("/v1/run", "200").Add(3)
	v.With("/v1/run", "429").Inc()
	r.Gauge("test_depth", "Queue depth.").Set(5)
	r.GaugeFunc("test_temp", "Func gauge.", func() float64 { return 1.5 })
	r.CounterVec("test_weird_total", "Help with \\ backslash\nand newline.", "name").
		With("a\"b\\c\nd").Inc()

	want := `# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 5
# HELP test_requests_total Requests by route and status.
# TYPE test_requests_total counter
test_requests_total{route="/v1/run",status="200"} 3
test_requests_total{route="/v1/run",status="429"} 1
# HELP test_temp Func gauge.
# TYPE test_temp gauge
test_temp 1.5
# HELP test_weird_total Help with \\ backslash\nand newline.
# TYPE test_weird_total counter
test_weird_total{name="a\"b\\c\nd"} 1
`
	if got := expo(t, r); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// A second render must be byte-identical (deterministic ordering).
	if got := expo(t, r); got != want {
		t.Errorf("second render differs from first")
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("test_lat_seconds", "Latency.", "tier")
	h.With("mem").Observe(0.001)
	h.With("mem").Observe(1.0)
	out := expo(t, r)

	for _, want := range []string{
		"# TYPE test_lat_seconds histogram\n",
		`test_lat_seconds_bucket{tier="mem",le="9.5367431640625e-07"} 0` + "\n",
		`test_lat_seconds_bucket{tier="mem",le="+Inf"} 2` + "\n",
		`test_lat_seconds_sum{tier="mem"} 1.001` + "\n",
		`test_lat_seconds_count{tier="mem"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Bucket lines must be cumulative and non-decreasing, ending at the
	// total count.
	prev, buckets := int64(-1), 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_lat_seconds_bucket") {
			continue
		}
		buckets++
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts decreased: %d after %d in %q", n, prev, line)
		}
		prev = n
	}
	if buckets != numBuckets+1 {
		t.Errorf("got %d bucket lines, want %d", buckets, numBuckets+1)
	}
	if prev != 2 {
		t.Errorf("+Inf bucket = %d, want 2", prev)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "h").Add(2)
	r.Counter("test_total", "h").Add(3)
	if got := r.Counter("test_total", "h").Value(); got != 5 {
		t.Errorf("re-registered counter = %d, want 5", got)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"type", func(r *Registry) { r.Counter("test_x", ""); r.Gauge("test_x", "") }},
		{"labels", func(r *Registry) { r.CounterVec("test_x", "", "a"); r.CounterVec("test_x", "", "b") }},
		{"badname", func(r *Registry) { r.Counter("9bad", "") }},
		{"badlabel", func(r *Registry) { r.CounterVec("test_x", "", "le gal") }},
		{"arity", func(r *Registry) { r.CounterVec("test_x", "", "a").With("1", "2") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestSeriesOverflow pins the label budget: past maxSeriesPerFamily
// distinct combinations, new values collapse into one "other" series so
// wire-supplied labels (tenant names) cannot exhaust memory.
func TestSeriesOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_tenants_total", "", "tenant")
	const distinct = maxSeriesPerFamily + 6
	for i := 0; i < distinct; i++ {
		v.With(fmt.Sprintf("t%02d", i)).Inc()
	}
	if got := v.With(overflowLabel).Value(); got != 6 {
		t.Errorf("overflow series = %d, want 6", got)
	}
	out := expo(t, r)
	lines := strings.Count(out, "test_tenants_total{")
	if lines != maxSeriesPerFamily+1 {
		t.Errorf("got %d series, want %d", lines, maxSeriesPerFamily+1)
	}
}

func TestGaugeAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_g", "")
	g.Add(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	n := 0.0
	r.CounterFunc("test_cf_total", "", func() float64 { n++; return n })
	out := expo(t, r)
	if !strings.Contains(out, "test_cf_total 1\n") {
		t.Errorf("counter func not sampled:\n%s", out)
	}
	vals := []string{"a", "b"}
	r.LabeledCounterFunc("test_lcf_total", "", []string{"x", "y"}, vals, func() float64 { return 9 })
	if !strings.Contains(expo(t, r), `test_lcf_total{x="a",y="b"} 9`) {
		t.Error("labeled counter func missing")
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	c.Add(4)
	c.Add(-10)
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4 (negative Add must be ignored)", c.Value())
	}
}

func TestHandlerAndScrapes(t *testing.T) {
	r := NewRegistry()
	r.RegisterBuildInfo("test_build_info")
	r.Counter("test_total", "t").Inc()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "test_total 1\n") {
		t.Errorf("body missing counter:\n%s", body)
	}
	if !strings.Contains(body, `test_build_info{goversion="go`) {
		t.Errorf("body missing build info:\n%s", body)
	}
	if got := r.Scrapes(); got != 1 {
		t.Errorf("scrapes = %d, want 1", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.CounterVec("a", "", "l").With("v").Add(2)
	r.Gauge("a", "").Set(1)
	r.GaugeVec("a", "", "l").With("v").Add(1)
	r.GaugeFunc("a", "", func() float64 { return 1 })
	r.CounterFunc("a", "", func() float64 { return 1 })
	r.LabeledGaugeFunc("a", "", []string{"l"}, []string{"v"}, func() float64 { return 1 })
	r.LabeledCounterFunc("a", "", []string{"l"}, []string{"v"}, func() float64 { return 1 })
	r.RegisterBuildInfo("b")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if r.Scrapes() != 0 {
		t.Error("nil Scrapes != 0")
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 404 {
		t.Errorf("nil handler status = %d, want 404", rec.Code)
	}
}
