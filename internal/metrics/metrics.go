// Package metrics is a zero-dependency instrumentation registry for the
// serving and execution layers: atomic counters, gauges, function-backed
// series, and log-bucketed latency histograms, exposed in Prometheus text
// format v0.0.4 (see expo.go) and as per-request phase traces (see
// reqtrace.go).
//
// Design rules, enforced throughout:
//
//   - Every public method is nil-safe. A nil *Registry hands out nil
//     collectors, and a nil collector's methods are no-ops. Instrumented
//     code therefore never branches on "metrics enabled" — the off path
//     is a single nil check inside the callee, keeping hot loops (and
//     the deterministic `bench -json` cycle counts) untouched.
//   - Registration is idempotent: asking for an existing name with the
//     same type and label set returns the same collector, so per-request
//     or per-search instrumentation can re-register freely. Conflicting
//     re-registration (different type or labels) panics — that is a
//     programming error, not a runtime condition.
//   - Label sets are small and bounded. Each family accepts at most
//     maxSeriesPerFamily distinct label-value combinations; beyond that,
//     new combinations collapse into a shared overflow series whose
//     label values are all "other". Unbounded label values (tenant names
//     from the wire) therefore cannot exhaust memory.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// maxSeriesPerFamily bounds distinct label-value combinations per family.
// The 65th and later combinations share one overflow series labeled
// "other" on every axis.
const maxSeriesPerFamily = 64

// overflowLabel is the label value used on every axis of the shared
// overflow series once a family exceeds maxSeriesPerFamily.
const overflowLabel = "other"

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in a deterministic
// order. The zero value is not usable; call NewRegistry. All methods are
// safe for concurrent use, and safe on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	scrapes  atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Scrapes reports how many times Handler served an exposition.
func (r *Registry) Scrapes() int64 {
	if r == nil {
		return 0
	}
	return r.scrapes.Load()
}

// family is one named metric with a fixed label schema and one series per
// distinct label-value combination.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) line. Exactly one of the value
// representations is live, selected by the family kind and by fn:
// n for counters/gauges, fn for function-backed series, h for histograms.
type series struct {
	values []string
	n      atomic.Int64
	fn     func() float64
	h      *histState
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// lookup returns the family for name, creating it on first use. It
// panics when name is invalid or already registered with a different
// type or label schema — both are programming errors.
func (r *Registry) lookup(name, help string, k kind, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %q re-registered as %s%v, was %s%v",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   k,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seriesKey(values []string) string {
	k := ""
	for i, v := range values {
		if i > 0 {
			k += "\xff"
		}
		k += v
	}
	return k
}

// get returns the series for the given label values, creating it on
// first use and collapsing into the overflow series past the cap.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.series) >= maxSeriesPerFamily {
		ov := make([]string, len(f.labels))
		for i := range ov {
			ov[i] = overflowLabel
		}
		okey := seriesKey(ov)
		if s, ok := f.series[okey]; ok {
			return s
		}
		values = ov
		key = okey
	}
	s := &series{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		s.h = newHistState()
	}
	f.series[key] = s
	return s
}

// setFunc installs (or replaces) a function-backed series for the given
// label values.
func (f *family) setFunc(values []string, fn func() float64) {
	s := f.get(values)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// snapshot returns the family's series sorted by label values.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.Unlock()
	return out
}

// Counter is a monotonically increasing integer series.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || c.s == nil || n < 0 {
		return
	}
	c.s.n.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.n.Load()
}

// Gauge is an integer series that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.n.Store(n)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.n.Add(n)
}

// Value reports the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil || g.s == nil {
		return 0
	}
	return g.s.n.Load()
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return &Counter{s: v.f.get(values)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return &Gauge{s: v.f.get(values)}
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.lookup(name, help, kindCounter, nil).get(nil)}
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.lookup(name, help, kindGauge, nil).get(nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels)}
}

// GaugeFunc registers a gauge whose value is sampled from fn at
// exposition time. Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindGauge, nil).setFunc(nil, fn)
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time; fn must be monotonically non-decreasing.
// Re-registering replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindCounter, nil).setFunc(nil, fn)
}

// LabeledGaugeFunc registers one function-backed series of a labeled
// gauge family. Re-registering the same label values replaces fn.
func (r *Registry) LabeledGaugeFunc(name, help string, labels, values []string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindGauge, labels).setFunc(values, fn)
}

// LabeledCounterFunc registers one function-backed series of a labeled
// counter family; fn must be monotonically non-decreasing.
// Re-registering the same label values replaces fn.
func (r *Registry) LabeledCounterFunc(name, help string, labels, values []string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindCounter, labels).setFunc(values, fn)
}

// Histogram registers (or finds) an unlabeled latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{s: r.lookup(name, help, kindHistogram, nil).get(nil)}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return &Histogram{s: v.f.get(values)}
}
