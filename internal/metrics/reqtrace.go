package metrics

import (
	"context"
	"sort"
	"sync"
	"time"
)

// maxSpansPerTrace bounds the spans one request can accumulate so a
// pathological handler cannot grow a trace without limit.
const maxSpansPerTrace = 64

// Span is one timed phase of a request, offsets relative to the
// request's start.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// ReqTrace collects per-phase spans for one request. It travels in the
// request context (WithTrace / TraceFrom) so layers that must not import
// the serving package — the compile/simulate core, the cache — can still
// attribute their time to the owning request. All methods are nil-safe:
// code instrumented with StartPhase runs unchanged (and allocation-free
// in the trace path) when no trace is attached.
type ReqTrace struct {
	ID     string
	Tenant string
	Route  string

	start time.Time
	mu    sync.Mutex
	spans []Span
}

// NewReqTrace starts a trace clocked from now.
func NewReqTrace(id, tenant, route string, now time.Time) *ReqTrace {
	return &ReqTrace{ID: id, Tenant: tenant, Route: route, start: now}
}

// Start reports the trace's epoch.
func (t *ReqTrace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartSpan begins a phase and returns the closure that ends it. The
// closure is idempotent; a span that is never ended is simply not
// recorded. Safe to call from any goroutine.
func (t *ReqTrace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			end := time.Now()
			t.mu.Lock()
			if len(t.spans) < maxSpansPerTrace {
				t.spans = append(t.spans, Span{
					Name:    name,
					StartUS: t0.Sub(t.start).Microseconds(),
					DurUS:   end.Sub(t0).Microseconds(),
				})
			}
			t.mu.Unlock()
		})
	}
}

// Spans returns a copy of the recorded spans ordered by start offset.
func (t *ReqTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartUS < out[j].StartUS })
	return out
}

// SpanSumUS returns the summed duration of all recorded spans in
// microseconds. Phases are non-overlapping by construction (admission →
// queue → cache|compile+sim → marshal), so the sum approximates the
// request's instrumented wall time.
func (t *ReqTrace) SpanSumUS() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum int64
	for _, s := range t.spans {
		sum += s.DurUS
	}
	return sum
}

type traceCtxKey struct{}

// WithTrace attaches t to ctx.
func WithTrace(ctx context.Context, t *ReqTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *ReqTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*ReqTrace)
	return t
}

// StartPhase begins a span named name on the context's trace, returning
// the closure that ends it. When no trace is attached both the call and
// the returned closure are no-ops, so instrumented code pays one context
// lookup and nothing else.
func StartPhase(ctx context.Context, name string) func() {
	return TraceFrom(ctx).StartSpan(name)
}
