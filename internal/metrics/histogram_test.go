package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundsShape(t *testing.T) {
	b := BucketBounds()
	if len(b) != numBuckets {
		t.Fatalf("got %d bounds, want %d", len(b), numBuckets)
	}
	if b[0] != math.Ldexp(1, histExpLo) {
		t.Errorf("first bound = %g, want 2^%d", b[0], histExpLo)
	}
	if b[numBuckets-1] != 512 {
		t.Errorf("last bound = %g, want 512", b[numBuckets-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bound[%d]=%g is not 2*bound[%d]=%g", i, b[i], i-1, b[i-1])
		}
	}
}

// TestBucketBoundaryExactness pins the inclusive-upper-bound contract:
// a value exactly on a bound lands in that bucket, the next
// representable value above it lands in the following bucket.
func TestBucketBoundaryExactness(t *testing.T) {
	for i, bound := range bucketBounds {
		if got := bucketFor(bound); got != i {
			t.Errorf("bucketFor(%g) = %d, want %d", bound, got, i)
		}
		above := math.Nextafter(bound, math.Inf(1))
		want := i + 1
		if got := bucketFor(above); got != want {
			t.Errorf("bucketFor(%g) = %d, want %d", above, got, want)
		}
	}
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d, want 0", got)
	}
	if got := bucketFor(1e9); got != numBuckets {
		t.Errorf("bucketFor(1e9) = %d, want overflow bucket %d", got, numBuckets)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_neg_seconds", "")
	h.Observe(-1)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() != 0 {
		t.Errorf("sum = %g, want 0", h.Sum())
	}
	if got := h.s.h.counts[0].Load(); got != 1 {
		t.Errorf("smallest bucket = %d, want 1", got)
	}
}

// TestHistogramConcurrentRecord is the -race workout: many goroutines
// observing one series must lose no updates.
func TestHistogramConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001) // exactly 1e6 ns: sum stays exact
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per*0.001 {
		t.Errorf("sum = %g, want %g", got, workers*per*0.001)
	}
}

// TestHistogramQuantileErrorBound checks the documented 2× bound on a
// uniform distribution over three decades.
func TestHistogramQuantileErrorBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_quant_seconds", "")
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) * 0.001) // 1ms .. 1s uniform
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99} {
		truth := q // uniform over (0,1]s: q-quantile ≈ q seconds
		got := h.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Errorf("Quantile(%g) = %g, outside 2× of true %g", q, got, truth)
		}
	}
	if got := h.Quantile(1); got < 0.5 || got > 2 {
		t.Errorf("Quantile(1) = %g, outside 2× of max 1s", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_qedge_seconds", "")
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	h.Observe(1e12) // overflow bucket
	if got := h.Quantile(0.5); got != bucketBounds[numBuckets-1] {
		t.Errorf("overflow Quantile = %g, want top bound %g", got, bucketBounds[numBuckets-1])
	}
}

func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_since_seconds", "")
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if s := h.Sum(); s < 0.009 || s > 5 {
		t.Errorf("sum = %g, want ≥ 10ms and sane", s)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram leaked values")
	}
	var r *Registry
	r.Histogram("x", "").Observe(1)
	r.HistogramVec("x", "", "l").With("v").Observe(1)
}
