package metrics

import (
	"sync/atomic"
	"time"
)

// The histogram is log-bucketed base 2: bucket i has upper bound
// 2^(i+histExpLo) seconds. With histExpLo = -20 and numBuckets = 30 the
// bounds run from 2^-20 s (~0.95 µs) to 2^9 s (512 s), which spans every
// latency this service produces — a cache hit (~µs) through a CNN
// simulation under -race on a loaded CI box (~minutes). One extra
// overflow bucket catches anything slower. Power-of-two bounds make the
// bucket-for-value computation branch-free-ish and guarantee any
// quantile estimate is within 2× of the true value (each bucket's upper
// bound is exactly twice its lower bound).
const (
	numBuckets = 30
	histExpLo  = -20 // exponent of the first bucket's upper bound
)

// bucketBounds[i] is the inclusive upper bound, in seconds, of bucket i.
var bucketBounds = func() [numBuckets]float64 {
	var b [numBuckets]float64
	v := 1.0
	for i := 0; i < -histExpLo; i++ {
		v /= 2
	}
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// BucketBounds returns the histogram's upper bounds in seconds,
// excluding the implicit +Inf overflow bucket.
func BucketBounds() []float64 {
	out := make([]float64, numBuckets)
	copy(out, bucketBounds[:])
	return out
}

// histState is the shared storage behind one histogram series. Counts
// are per-bucket (not cumulative; the exposition writer accumulates),
// and the sum is kept in integer nanoseconds so concurrent observation
// needs no floating-point CAS loop.
type histState struct {
	counts [numBuckets + 1]atomic.Int64 // [numBuckets] is the +Inf bucket
	sumNs  atomic.Int64
	count  atomic.Int64
}

func newHistState() *histState { return &histState{} }

// bucketFor returns the index of the bucket v seconds belongs to.
func bucketFor(v float64) int {
	for i := range bucketBounds {
		if v <= bucketBounds[i] {
			return i
		}
	}
	return numBuckets
}

func (h *histState) observe(v float64) {
	if v < 0 {
		// Clock steps can produce slightly negative elapsed times;
		// fold them into the smallest bucket rather than corrupting
		// the sum.
		v = 0
	}
	h.counts[bucketFor(v)].Add(1)
	h.sumNs.Add(int64(v * float64(time.Second)))
	h.count.Add(1)
}

// quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing bucket. Bounds guarantee the estimate is within
// a factor of 2 of the true value. Returns 0 for an empty histogram.
func (h *histState) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == numBuckets {
				// Overflow bucket has no upper bound; report the
				// highest finite bound.
				return bucketBounds[numBuckets-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			hi := bucketBounds[i]
			within := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*within
		}
		cum += c
	}
	return bucketBounds[numBuckets-1]
}

// Histogram records durations in seconds. All methods are nil-safe.
type Histogram struct{ s *series }

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	if h == nil || h.s == nil || h.s.h == nil {
		return
	}
	h.s.h.observe(seconds)
}

// ObserveSince records the elapsed time since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count reports how many values have been recorded.
func (h *Histogram) Count() int64 {
	if h == nil || h.s == nil || h.s.h == nil {
		return 0
	}
	return h.s.h.count.Load()
}

// Sum reports the sum of all recorded values, in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil || h.s == nil || h.s.h == nil {
		return 0
	}
	return float64(h.s.h.sumNs.Load()) / float64(time.Second)
}

// Quantile estimates the q-quantile of recorded values in seconds; the
// estimate is within 2× of the true value. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.s == nil || h.s.h == nil {
		return 0
	}
	return h.s.h.quantile(q)
}
