package lower

import (
	"context"
	"math"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
	"plasticine/internal/sim"
)

func TestLowerMapMatchesPatternEvaluator(t *testing.T) {
	n := 4096
	a := pattern.NewF32("a", n)
	b := pattern.NewF32("b", n)
	for i := 0; i < n; i++ {
		a.SetF32(float32(i%13)*0.5, i)
		b.SetF32(float32(i%7)-3, i)
	}
	p := pattern.Map([]int{n}, pattern.Add2(
		pattern.Mul2(pattern.At(a, pattern.Index(0)), pattern.At(b, pattern.Index(0))),
		pattern.F(1)))
	want, err := pattern.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dhdl.Run(res.Prog); err != nil {
		t.Fatal(err)
	}
	got := res.OutData.F32Data()
	for i := range got {
		if got[i] != want[i].F {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want[i].F)
		}
	}
}

func TestLowerMapUsesGlobalIndexValue(t *testing.T) {
	// Body uses the index itself as a value: out[i] = i * 2.
	n := 2048
	p := pattern.Map([]int{n}, pattern.Mul2(pattern.Index(0), pattern.I(2)))
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dhdl.Run(res.Prog); err != nil {
		t.Fatal(err)
	}
	got := res.OutData.I32Data()
	for i := range got {
		if got[i] != int32(2*i) {
			t.Fatalf("out[%d] = %d, want %d (local/global index confusion)", i, got[i], 2*i)
		}
	}
}

func TestLowerFoldDotProduct(t *testing.T) {
	n := 8192
	a := pattern.NewF32("a", n)
	b := pattern.NewF32("b", n)
	var want float64
	for i := 0; i < n; i++ {
		a.SetF32(float32(i%11)*0.25, i)
		b.SetF32(float32(i%5)-2, i)
		want += float64(a.F32At(i)) * float64(b.F32At(i))
	}
	p := pattern.Fold([]int{n}, pattern.F(0),
		pattern.Mul2(pattern.At(a, pattern.Index(0)), pattern.At(b, pattern.Index(0))),
		pattern.Add)
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dhdl.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(st.RegValue(res.OutReg).F)
	if math.Abs(got-want) > 1e-2*math.Abs(want)+1e-3 {
		t.Fatalf("fold = %g, want %g", got, want)
	}
}

func TestLowerFoldMaxUsesIdentity(t *testing.T) {
	// All-negative data: a zero-initialised accumulator would corrupt Max.
	n := 1024
	a := pattern.NewF32("a", n)
	want := float32(-1e9)
	for i := 0; i < n; i++ {
		v := -float32(i%97) - 1
		a.SetF32(v, i)
		if v > want {
			want = v
		}
	}
	p := pattern.Fold([]int{n}, pattern.F(-3.4e38),
		pattern.At(a, pattern.Index(0)), pattern.Max)
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dhdl.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(res.OutReg).F; got != want {
		t.Fatalf("max = %g, want %g", got, want)
	}
}

func TestLowerFilter(t *testing.T) {
	n := 4096
	a := pattern.NewI32("a", n)
	var want []int32
	for i := 0; i < n; i++ {
		a.SetI32(int32((i*7)%50), i)
		if a.I32At(i) < 10 {
			want = append(want, a.I32At(i))
		}
	}
	p := pattern.Filter([]int{n},
		pattern.Lt2(pattern.At(a, pattern.Index(0)), pattern.I(10)),
		pattern.At(a, pattern.Index(0)))
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dhdl.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(res.CountReg).I; got != int32(len(want)) {
		t.Fatalf("count = %d, want %d", got, len(want))
	}
	out := res.OutData.I32Data()
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestLowerHashReduceHistogram(t *testing.T) {
	n, bins := 4096, 16
	a := pattern.NewI32("a", n)
	want := make([]int32, bins)
	for i := 0; i < n; i++ {
		a.SetI32(int32((i*31)%bins), i)
		want[a.I32At(i)]++
	}
	p := pattern.HashReduce([]int{n},
		pattern.At(a, pattern.Index(0)),
		[]pattern.Expr{pattern.I(1)},
		pattern.Add, bins)
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dhdl.Run(res.Prog); err != nil {
		t.Fatal(err)
	}
	got := res.BinsData[0].I32Data()
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("bin %d = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestLoweredProgramsCompileAndSimulate(t *testing.T) {
	n := 4096
	a := pattern.NewF32("a", n)
	for i := 0; i < n; i++ {
		a.SetF32(float32(i), i)
	}
	p := pattern.Fold([]int{n}, pattern.F(0), pattern.At(a, pattern.Index(0)), pattern.Add)
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := compiler.Compile(res.Prog, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	simRes, st, err := sim.Simulate(context.Background(), m, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float32(n) * float32(n-1) / 2
	if got := st.RegValue(res.OutReg).F; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if simRes.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestLowerRejectsUnsupported(t *testing.T) {
	a2d := pattern.NewF32("a2", 8, 8)
	a1d := pattern.NewF32("a1", 64)
	cases := []pattern.Pattern{
		// 2-D domain.
		pattern.Map([]int{8, 8}, pattern.F(0)),
		// Non-streaming read (gather at computed index).
		pattern.Map([]int{64}, pattern.At(a1d, pattern.Mul2(pattern.Index(0), pattern.I(2)))),
		// 2-D collection read.
		pattern.Map([]int{8}, pattern.At(a2d, pattern.Index(0), pattern.Index(0))),
		// Sparse HashReduce.
		pattern.HashReduce([]int{64}, pattern.I(0), []pattern.Expr{pattern.I(1)}, pattern.Add, 0),
	}
	for i, p := range cases {
		if _, err := Pattern(p, Options{Tile: 8}); err == nil {
			t.Errorf("case %d: expected lowering error", i)
		}
	}
}

func TestLowerTileShrinksToDivisor(t *testing.T) {
	// n = 1536 has no 1024 divisor; the tile shrinks to 512.
	n := 1536
	a := pattern.NewF32("a", n)
	for i := 0; i < n; i++ {
		a.SetF32(1, i)
	}
	p := pattern.Fold([]int{n}, pattern.F(0), pattern.At(a, pattern.Index(0)), pattern.Add)
	res, err := Pattern(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dhdl.Run(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(res.OutReg).F; got != float32(n) {
		t.Fatalf("sum = %g, want %d", got, n)
	}
}
