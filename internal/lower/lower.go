// Package lower translates parallel patterns (Section 2, Table 1) into
// tiled DHDL programs — the step prior work performs between the pattern
// language and DHDL (Section 3.6). Supported are the canonical
// one-dimensional forms over streamed collections: Map, Fold, the filter
// special case of FlatMap, and dense HashReduce. Collections read at the
// pattern index become tiled DRAM loads; the body becomes the inner
// compute; outputs become stores, scalar registers, or accumulator
// scratchpads.
package lower

import (
	"fmt"

	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// Options tune the generated program.
type Options struct {
	// Tile is the on-chip tile size in elements (default 1024).
	Tile int
	// Par is the tile-loop parallelization factor (default 4).
	Par int
	// Lanes is the SIMD width of the inner compute (default 16).
	Lanes int
}

func (o Options) withDefaults() Options {
	if o.Tile == 0 {
		o.Tile = 1024
	}
	if o.Par == 0 {
		o.Par = 4
	}
	if o.Lanes == 0 {
		o.Lanes = 16
	}
	return o
}

// Result is the lowered program and handles to its outputs.
type Result struct {
	Prog *dhdl.Program

	// Output holds Map results and kept FlatMap elements (bound to a
	// fresh collection of the domain size).
	Output *dhdl.DRAMBuf
	// OutData is the collection backing Output.
	OutData *pattern.Collection

	// OutReg is the Fold result.
	OutReg *dhdl.Reg
	// CountReg counts kept FlatMap elements.
	CountReg *dhdl.Reg

	// Bins holds dense HashReduce accumulators, one SRAM-backed DRAM
	// buffer per value function; Bins[i] has DenseKeys elements.
	Bins     []*dhdl.DRAMBuf
	BinsData []*pattern.Collection
}

// Pattern lowers a parallel pattern to a DHDL program with every DRAM
// buffer bound: inputs to the pattern's collections, outputs to freshly
// allocated collections exposed on the Result.
func Pattern(p pattern.Pattern, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := pattern.Validate(p); err != nil {
		return nil, err
	}
	dom := p.Domain()
	if len(dom) != 1 {
		return nil, fmt.Errorf("lower: only 1-D domains are supported, got %d dims", len(dom))
	}
	n := dom[0]
	if n%opts.Tile != 0 {
		// Shrink the tile to a divisor so the last tile is full.
		t := opts.Tile
		for n%t != 0 {
			t /= 2
			if t == 0 {
				return nil, fmt.Errorf("lower: domain %d has no power-of-two tile divisor", n)
			}
		}
		opts.Tile = t
	}

	switch pat := p.(type) {
	case *pattern.MapPat:
		return lowerMap(pat, n, opts)
	case *pattern.FoldPat:
		return lowerFold(pat, n, opts)
	case *pattern.FlatMapPat:
		return lowerFilter(pat, n, opts)
	case *pattern.HashReducePat:
		return lowerHashReduce(pat, n, opts)
	}
	return nil, fmt.Errorf("lower: unsupported pattern %T", p)
}

// collector finds the collections a body reads at the pattern index and
// assigns each a DRAM buffer and a tile.
type collector struct {
	b     *dhdl.Builder
	sm    *pattern.SourceMap // provenance of the pattern being lowered
	tile  int
	colls []*pattern.Collection
	bufs  map[*pattern.Collection]*dhdl.DRAMBuf
	tiles map[*pattern.Collection]*dhdl.SRAM
}

func newCollector(b *dhdl.Builder, sm *pattern.SourceMap, tile int) *collector {
	return &collector{
		b: b, sm: sm, tile: tile,
		bufs:  map[*pattern.Collection]*dhdl.DRAMBuf{},
		tiles: map[*pattern.Collection]*dhdl.SRAM{},
	}
}

// scan registers every collection e reads; only streaming reads at the
// pattern index (c[i]) are supported.
func (cl *collector) scan(e pattern.Expr) error {
	var scanErr error
	pattern.Walk(e, func(x pattern.Expr) {
		rd, ok := x.(*pattern.Read)
		if !ok || scanErr != nil {
			return
		}
		if len(rd.Index) != 1 {
			scanErr = fmt.Errorf("lower: read of %s has %d indices; only 1-D streaming reads are supported", rd.Coll.Name, len(rd.Index))
			return
		}
		if _, isIdx := rd.Index[0].(*pattern.Idx); !isIdx {
			scanErr = fmt.Errorf("lower: read of %s is not at the pattern index; only streaming accesses are supported", rd.Coll.Name)
			return
		}
		if _, seen := cl.bufs[rd.Coll]; seen {
			return
		}
		if rd.Coll.Rank() != 1 {
			scanErr = fmt.Errorf("lower: collection %s has rank %d; want 1", rd.Coll.Name, rd.Coll.Rank())
			return
		}
		// The buffer and its tile are attributed to the exact read node
		// (stable SourceID), so fit reports can point at the source read.
		prev := cl.b.SetOrigin(cl.sm.Label(cl.sm.IDOf(rd)))
		var buf *dhdl.DRAMBuf
		if rd.Coll.Elem == pattern.F32 {
			buf = cl.b.DRAMF32(rd.Coll.Name, rd.Coll.Len())
		} else {
			buf = cl.b.DRAMI32(rd.Coll.Name, rd.Coll.Len())
		}
		cl.bufs[rd.Coll] = buf
		cl.tiles[rd.Coll] = cl.b.SRAM("t_"+rd.Coll.Name, rd.Coll.Elem, cl.tile)
		cl.b.SetOrigin(prev)
		cl.colls = append(cl.colls, rd.Coll)
	})
	return scanErr
}

// loads emits one tile load per collection at DRAM offset off.
func (cl *collector) loads(off dhdl.Expr) {
	for _, c := range cl.colls {
		prev := cl.b.SetOrigin(cl.sm.PatternName + "/load:" + c.Name)
		cl.b.Load("ld_"+c.Name, cl.bufs[c], off, cl.tiles[c], cl.tile)
		cl.b.SetOrigin(prev)
	}
}

// bind attaches every input collection.
func (cl *collector) bind() error {
	for _, c := range cl.colls {
		if err := cl.bufs[c].Bind(c); err != nil {
			return err
		}
	}
	return nil
}

// translate rewrites a pattern expression into a DHDL expression, mapping
// pattern-index reads to tile loads at the local index.
func (cl *collector) translate(e pattern.Expr, local, global dhdl.Expr) (dhdl.Expr, error) {
	switch n := e.(type) {
	case *pattern.ConstF:
		return dhdl.CF(n.V), nil
	case *pattern.ConstI:
		return dhdl.CI(n.V), nil
	case *pattern.ConstB:
		// Booleans only occur under comparisons in practice; encode as a
		// comparison that always yields the constant.
		if n.V {
			return dhdl.Eq(dhdl.CI(0), dhdl.CI(0)), nil
		}
		return dhdl.Ne(dhdl.CI(0), dhdl.CI(0)), nil
	case *pattern.Idx:
		// Index used as a value: the global position, tileBase + local.
		return global, nil
	case *pattern.Read:
		return dhdl.Ld(cl.tiles[n.Coll], local), nil
	case *pattern.ToF32:
		x, err := cl.translate(n.X, local, global)
		if err != nil {
			return nil, err
		}
		return dhdl.F32(x), nil
	case *pattern.ToI32:
		x, err := cl.translate(n.X, local, global)
		if err != nil {
			return nil, err
		}
		return dhdl.I32(x), nil
	case *pattern.Un:
		x, err := cl.translate(n.X, local, global)
		if err != nil {
			return nil, err
		}
		return &dhdl.Un{Op: n.Op, X: x}, nil
	case *pattern.Bin:
		x, err := cl.translate(n.X, local, global)
		if err != nil {
			return nil, err
		}
		y, err := cl.translate(n.Y, local, global)
		if err != nil {
			return nil, err
		}
		return &dhdl.Bin{Op: n.Op, X: x, Y: y}, nil
	case *pattern.Mux:
		c, err := cl.translate(n.Cond, local, global)
		if err != nil {
			return nil, err
		}
		tv, err := cl.translate(n.T, local, global)
		if err != nil {
			return nil, err
		}
		fv, err := cl.translate(n.F, local, global)
		if err != nil {
			return nil, err
		}
		return dhdl.Sel(c, tv, fv), nil
	}
	return nil, fmt.Errorf("lower: cannot translate %T", e)
}

// identity returns the combine op's identity element, used to seed per-tile
// partial accumulators and dense HashReduce bins.
func identity(op pattern.Op, t pattern.Type) (pattern.Value, error) {
	const inf = float32(3.4e38)
	switch op {
	case pattern.Add:
		if t == pattern.I32 {
			return pattern.VI(0), nil
		}
		return pattern.VF(0), nil
	case pattern.Mul:
		if t == pattern.I32 {
			return pattern.VI(1), nil
		}
		return pattern.VF(1), nil
	case pattern.Max:
		if t == pattern.I32 {
			return pattern.VI(-1 << 31), nil
		}
		return pattern.VF(-inf), nil
	case pattern.Min:
		if t == pattern.I32 {
			return pattern.VI(1<<31 - 1), nil
		}
		return pattern.VF(inf), nil
	}
	return pattern.Value{}, fmt.Errorf("lower: no identity for combine op %v", op)
}

func lowerMap(p *pattern.MapPat, n int, opts Options) (*Result, error) {
	sm := pattern.Describe(p)
	b := dhdl.NewBuilder("map", dhdl.Sequential)
	cl := newCollector(b, sm, opts.Tile)
	if err := cl.scan(p.F); err != nil {
		return nil, err
	}
	elem := p.F.Type()
	b.SetOrigin(sm.PatternName + "/store:out")
	var out *dhdl.DRAMBuf
	var outData *pattern.Collection
	if elem == pattern.I32 {
		out = b.DRAMI32("out", n)
		outData = pattern.NewI32("out", n)
	} else {
		out = b.DRAMF32("out", n)
		outData = pattern.NewF32("out", n)
	}
	tOut := b.SRAM("t_out", elem, opts.Tile)

	b.SetOrigin(sm.PatternName + "/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, n, opts.Tile, opts.Par)}, func(ix []dhdl.Expr) {
		cl.loads(ix[0])
		b.SetOrigin(sm.Path(sm.IDOf(p.F)))
		b.Compute("map", []dhdl.Counter{dhdl.CPar(opts.Tile, opts.Lanes)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			v, err := cl.translate(p.F, jx[0], dhdl.Add(ix[0], jx[0]))
			if err != nil {
				b.Errf("lower map: %v", err)
				return nil
			}
			return []*dhdl.Assign{dhdl.StoreAt(tOut, jx[0], v)}
		})
		b.SetOrigin(sm.PatternName + "/store:out")
		b.Store("st_out", out, ix[0], tOut, opts.Tile)
	})
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := cl.bind(); err != nil {
		return nil, err
	}
	if err := out.Bind(outData); err != nil {
		return nil, err
	}
	return &Result{Prog: prog, Output: out, OutData: outData}, nil
}

func lowerFold(p *pattern.FoldPat, n int, opts Options) (*Result, error) {
	sm := pattern.Describe(p)
	b := dhdl.NewBuilder("fold", dhdl.Sequential)
	cl := newCollector(b, sm, opts.Tile)
	if err := cl.scan(p.F); err != nil {
		return nil, err
	}
	elem := p.F.Type()
	zero, err := pattern.EvalChecked(p.Zero, nil)
	if err != nil {
		return nil, fmt.Errorf("lower fold: zero element: %w", err)
	}
	ident, err := identity(p.Combine, elem)
	if err != nil {
		return nil, err
	}
	b.SetOrigin(sm.Path(sm.IDOf(p.F)))
	partial := b.Reg("partial", ident)
	b.SetOrigin(sm.PatternName + "/combine")
	total := b.Reg("total", zero)

	b.SetOrigin(sm.PatternName + "/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, n, opts.Tile, opts.Par)}, func(ix []dhdl.Expr) {
		cl.loads(ix[0])
		b.SetOrigin(sm.Path(sm.IDOf(p.F)))
		b.Compute("fold", []dhdl.Counter{dhdl.CPar(opts.Tile, opts.Lanes)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			v, err := cl.translate(p.F, jx[0], dhdl.Add(ix[0], jx[0]))
			if err != nil {
				b.Errf("lower fold: %v", err)
				return nil
			}
			return []*dhdl.Assign{dhdl.Accum(partial, p.Combine, v)}
		})
		b.SetOrigin(sm.PatternName + "/combine")
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total,
				&dhdl.Bin{Op: p.Combine, X: dhdl.Rd(total), Y: dhdl.Rd(partial)})}
		})
	})
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := cl.bind(); err != nil {
		return nil, err
	}
	return &Result{Prog: prog, OutReg: total}, nil
}

func lowerFilter(p *pattern.FlatMapPat, n int, opts Options) (*Result, error) {
	sm := pattern.Describe(p)
	b := dhdl.NewBuilder("filter", dhdl.Sequential)
	cl := newCollector(b, sm, opts.Tile)
	if err := cl.scan(p.Cond); err != nil {
		return nil, err
	}
	if err := cl.scan(p.F); err != nil {
		return nil, err
	}
	elem := p.F.Type()
	b.SetOrigin(sm.PatternName + "/store:out")
	var out *dhdl.DRAMBuf
	var outData *pattern.Collection
	if elem == pattern.I32 {
		out = b.DRAMI32("out", n)
		outData = pattern.NewI32("out", n)
	} else {
		out = b.DRAMF32("out", n)
		outData = pattern.NewF32("out", n)
	}
	kept := b.FIFO("kept", elem, n)
	b.SetOrigin(sm.PatternName + "/count")
	tileCnt := b.Reg("tileCnt", pattern.VI(0))
	total := b.Reg("count", pattern.VI(0))
	written := b.Reg("written", pattern.VI(0))

	// Filters keep output order, so tiles run sequentially; within a tile
	// the lanes filter in parallel with valid-word coalescing.
	b.SetOrigin(sm.PatternName + "/tiles")
	b.Seq("tiles", []dhdl.Counter{dhdl.CStep(0, n, opts.Tile)}, func(ix []dhdl.Expr) {
		cl.loads(ix[0])
		b.SetOrigin(sm.Path(sm.IDOf(p.F)))
		b.Compute("filter", []dhdl.Counter{dhdl.CPar(opts.Tile, opts.Lanes)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			c, err := cl.translate(p.Cond, jx[0], dhdl.Add(ix[0], jx[0]))
			if err != nil {
				b.Errf("lower filter: %v", err)
				return nil
			}
			v, err := cl.translate(p.F, jx[0], dhdl.Add(ix[0], jx[0]))
			if err != nil {
				b.Errf("lower filter: %v", err)
				return nil
			}
			return []*dhdl.Assign{
				dhdl.PushIf(kept, c, v),
				dhdl.AccumIf(tileCnt, pattern.Add, c, dhdl.CI(1)),
			}
		})
		b.SetOrigin(sm.PatternName + "/store:out")
		b.StoreFIFO("st_out", out, dhdl.Rd(written), kept, tileCnt)
		b.SetOrigin(sm.PatternName + "/count")
		b.Compute("bump", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{
				dhdl.SetReg(written, dhdl.Add(dhdl.Rd(written), dhdl.Rd(tileCnt))),
				dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(tileCnt))),
			}
		})
	})
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := cl.bind(); err != nil {
		return nil, err
	}
	if err := out.Bind(outData); err != nil {
		return nil, err
	}
	return &Result{Prog: prog, Output: out, OutData: outData, CountReg: total}, nil
}

func lowerHashReduce(p *pattern.HashReducePat, n int, opts Options) (*Result, error) {
	if p.DenseKeys <= 0 {
		return nil, fmt.Errorf("lower: only dense HashReduce (static key space) is supported")
	}
	sm := pattern.Describe(p)
	b := dhdl.NewBuilder("hashreduce", dhdl.Sequential)
	cl := newCollector(b, sm, opts.Tile)
	if err := cl.scan(p.K); err != nil {
		return nil, err
	}
	for _, v := range p.V {
		if err := cl.scan(v); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	var binSRAMs []*dhdl.SRAM
	for vi, v := range p.V {
		elem := v.Type()
		name := fmt.Sprintf("bins%d", vi)
		b.SetOrigin(sm.Path(sm.IDOf(v)))
		s := b.SRAM(name, elem, p.DenseKeys)
		binSRAMs = append(binSRAMs, s)
		var buf *dhdl.DRAMBuf
		var data *pattern.Collection
		if elem == pattern.I32 {
			buf = b.DRAMI32("d_"+name, p.DenseKeys)
			data = pattern.NewI32(name, p.DenseKeys)
		} else {
			buf = b.DRAMF32("d_"+name, p.DenseKeys)
			data = pattern.NewF32(name, p.DenseKeys)
		}
		res.Bins = append(res.Bins, buf)
		res.BinsData = append(res.BinsData, data)
	}

	// Bins start at the combine identity (unhit keys keep it; the
	// reference RunHash leaves them absent instead).
	for vi, s := range binSRAMs {
		s := s
		id, err := identity(p.Combine, p.V[vi].Type())
		if err != nil {
			return nil, err
		}
		var initExpr dhdl.Expr
		if id.T == pattern.I32 {
			initExpr = dhdl.CI(id.I)
		} else {
			initExpr = dhdl.CF(id.F)
		}
		b.SetOrigin(sm.PatternName + "/init")
		b.Compute(fmt.Sprintf("init%d", vi), []dhdl.Counter{dhdl.CPar(p.DenseKeys, opts.Lanes)},
			func(ix []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(s, ix[0], initExpr)}
			})
	}
	b.SetOrigin(sm.PatternName + "/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStep(0, n, opts.Tile)}, func(ix []dhdl.Expr) {
		cl.loads(ix[0])
		b.SetOrigin(sm.PatternName + "/body")
		b.Compute("hash", []dhdl.Counter{dhdl.CPar(opts.Tile, opts.Lanes)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			key, err := cl.translate(p.K, jx[0], dhdl.Add(ix[0], jx[0]))
			if err != nil {
				b.Errf("lower hashreduce: %v", err)
				return nil
			}
			var as []*dhdl.Assign
			for vi, v := range p.V {
				val, err := cl.translate(v, jx[0], dhdl.Add(ix[0], jx[0]))
				if err != nil {
					b.Errf("lower hashreduce: %v", err)
					return nil
				}
				as = append(as, dhdl.AccumAt(binSRAMs[vi], p.Combine, key, val))
			}
			return as
		})
	})
	for vi, s := range binSRAMs {
		b.SetOrigin(fmt.Sprintf("%s/store:bins%d", sm.PatternName, vi))
		b.Store(fmt.Sprintf("st_bins%d", vi), res.Bins[vi], dhdl.CI(0), s, p.DenseKeys)
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := cl.bind(); err != nil {
		return nil, err
	}
	for vi, buf := range res.Bins {
		if err := buf.Bind(res.BinsData[vi]); err != nil {
			return nil, err
		}
	}
	res.Prog = prog
	return res, nil
}
