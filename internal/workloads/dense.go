package workloads

import (
	"fmt"
	"math"

	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// InnerProduct streams two vectors through a multiply-accumulate pipeline
// (Table 4: 768,000,000 float32, scaled here to 2^18).
type InnerProduct struct {
	N, Tile, Par int

	data  [2][]float32
	total *dhdl.Reg
	want  float64
}

// NewInnerProduct returns the benchmark at simulation scale.
func NewInnerProduct() *InnerProduct { return &InnerProduct{N: 1 << 18, Tile: 1024, Par: 8} }

func (w *InnerProduct) Name() string { return "InnerProduct" }

func (w *InnerProduct) ScaleNote() string {
	return fmt.Sprintf("paper 768,000,000 elements; simulated %d", w.N)
}

func (w *InnerProduct) Build() (*dhdl.Program, error) {
	// The benchmark is fold(a zip b)(+ of *); origins carry that source-level
	// shape so profiles and fit reports speak pattern, not unit, vocabulary.
	b := dhdl.NewBuilder("innerproduct", dhdl.Sequential)
	b.SetOrigin("Fold/load:a")
	a := b.DRAMF32("a", w.N)
	ta := b.SRAM("ta", pattern.F32, w.Tile)
	b.SetOrigin("Fold/load:b")
	bb := b.DRAMF32("b", w.N)
	tb := b.SRAM("tb", pattern.F32, w.Tile)
	b.SetOrigin("Fold/F")
	partial := b.Reg("partial", pattern.VF(0))
	b.SetOrigin("Fold/combine")
	total := b.Reg("total", pattern.VF(0))
	w.total = total

	b.SetOrigin("Fold/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, w.N, w.Tile, w.Par)}, func(ix []dhdl.Expr) {
		b.SetOrigin("Fold/load:a")
		b.Load("loadA", a, ix[0], ta, w.Tile)
		b.SetOrigin("Fold/load:b")
		b.Load("loadB", bb, ix[0], tb, w.Tile)
		b.SetOrigin("Fold/F")
		b.Compute("mac", []dhdl.Counter{dhdl.CPar(w.Tile, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add,
				dhdl.Mul(dhdl.Ld(ta, jx[0]), dhdl.Ld(tb, jx[0])))}
		})
		b.SetOrigin("Fold/combine")
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0xA11CE)
	w.want = 0
	w.data[0] = make([]float32, w.N)
	w.data[1] = make([]float32, w.N)
	for i := 0; i < w.N; i++ {
		w.data[0][i] = r.float() - 0.5
		w.data[1][i] = r.float() - 0.5
		w.want += float64(w.data[0][i]) * float64(w.data[1][i])
	}
	if err := a.Bind(pattern.FromF32("a", w.data[0])); err != nil {
		return nil, err
	}
	if err := bb.Bind(pattern.FromF32("b", w.data[1])); err != nil {
		return nil, err
	}
	return p, nil
}

func (w *InnerProduct) Check(st *dhdl.State) error {
	got := float64(st.RegValue(w.total).F)
	if !almostEq(got, w.want, 1e-2) {
		return fmt.Errorf("innerproduct: got %g, want %g", got, w.want)
	}
	return nil
}

func (w *InnerProduct) Profile() Profile {
	return Profile{
		Flops:         2 * float64(w.N),
		DenseBytes:    8 * float64(w.N),
		OpsPerLane:    2,
		FPGALogicUtil: 0.243, FPGAMemUtil: 0.335,
		PaperSpeedup: 1.4, PaperPerfWatt: 1.6,
	}
}

// OuterProduct computes c[i,j] = a[i]*b[j] tile by tile; output traffic
// dominates (Table 4: 76,800 x 76,800, scaled to 2048 x 2048).
type OuterProduct struct {
	N, Tile int

	a, bv, c []float32
	want     []float32
}

// NewOuterProduct returns the benchmark at simulation scale.
func NewOuterProduct() *OuterProduct { return &OuterProduct{N: 2048, Tile: 128} }

func (w *OuterProduct) Name() string { return "OuterProduct" }

func (w *OuterProduct) ScaleNote() string {
	return fmt.Sprintf("paper 76,800 x 76,800; simulated %d x %d", w.N, w.N)
}

func (w *OuterProduct) Build() (*dhdl.Program, error) {
	n, t := w.N, w.Tile
	// map2d(a, b)(*) with an explicit tiled store: origins follow the
	// two-level Map the loop nest lowers from.
	b := dhdl.NewBuilder("outerproduct", dhdl.Sequential)
	b.SetOrigin("Map/load:a")
	a := b.DRAMF32("a", n)
	ta := b.SRAM("ta", pattern.F32, t)
	b.SetOrigin("Map/load:b")
	bb := b.DRAMF32("b", n)
	tb := b.SRAM("tb", pattern.F32, t)
	b.SetOrigin("Map/store:c")
	c := b.DRAMF32("c", n, n)
	b.SetOrigin("Map/F")
	tc := b.SRAM("tc", pattern.F32, t*t)

	b.SetOrigin("Map/rows")
	b.Pipe("rows", []dhdl.Counter{dhdl.CStep(0, n, t)}, func(ix []dhdl.Expr) {
		b.SetOrigin("Map/load:a")
		b.Load("loadA", a, ix[0], ta, t)
		b.SetOrigin("Map/cols")
		b.Pipe("cols", []dhdl.Counter{dhdl.CStepPar(0, n, t, 2)}, func(jx []dhdl.Expr) {
			b.SetOrigin("Map/load:b")
			b.Load("loadB", bb, jx[0], tb, t)
			b.SetOrigin("Map/F")
			b.Compute("op", []dhdl.Counter{dhdl.C(t), dhdl.CPar(t, 16)}, func(kx []dhdl.Expr) []*dhdl.Assign {
				val := dhdl.Mul(dhdl.Ld(ta, kx[0]), dhdl.Ld(tb, kx[1]))
				addr := dhdl.Add(dhdl.Mul(kx[0], dhdl.CI(int32(t))), kx[1])
				return []*dhdl.Assign{dhdl.StoreAt(tc, addr, val)}
			})
			// Store the t x t tile row by row into the output matrix.
			b.SetOrigin("Map/store:c")
			b.StoreTiled("storeC", []dhdl.Counter{dhdl.C(t)}, c, tc, t, func(rx []dhdl.Expr) (dhdl.Expr, dhdl.Expr) {
				off := dhdl.Add(dhdl.Mul(dhdl.Add(ix[0], rx[0]), dhdl.CI(int32(n))), jx[0])
				sramOff := dhdl.Mul(rx[0], dhdl.CI(int32(t)))
				return off, sramOff
			})
		})
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x0F7E12)
	w.a = make([]float32, n)
	w.bv = make([]float32, n)
	for i := 0; i < n; i++ {
		w.a[i] = r.float() - 0.5
		w.bv[i] = r.float() - 0.5
	}
	w.c = make([]float32, n*n)
	w.want = make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.want[i*n+j] = w.a[i] * w.bv[j]
		}
	}
	if err := a.Bind(pattern.FromF32("a", w.a)); err != nil {
		return nil, err
	}
	if err := bb.Bind(pattern.FromF32("b", w.bv)); err != nil {
		return nil, err
	}
	if err := c.Bind(pattern.FromF32("c", w.c)); err != nil {
		return nil, err
	}
	return p, nil
}

func (w *OuterProduct) Check(st *dhdl.State) error {
	return checkF32Slice("outerproduct.c", w.c, w.want, 1e-5)
}

func (w *OuterProduct) Profile() Profile {
	n := float64(w.N)
	return Profile{
		Flops:         n * n,
		DenseBytes:    4 * (n*n + 2*n*float64(w.N/w.Tile)),
		WriteBytes:    4 * n * n,
		OpsPerLane:    1,
		FPGALogicUtil: 0.382, FPGAMemUtil: 0.714,
		PaperSpeedup: 6.7, PaperPerfWatt: 6.1,
	}
}

// TPCHQ6 is the TPC-H Query 6 filter-reduce: revenue = sum of
// price*discount over rows passing date/discount/quantity predicates
// (Table 4: 960,000,000 entries int32/float32, scaled to 2^18).
type TPCHQ6 struct {
	N, Tile, Par int

	dates, qtys       []int32
	prices, discounts []float32
	revenue           *dhdl.Reg
	want              float64
}

// NewTPCHQ6 returns the benchmark at simulation scale.
func NewTPCHQ6() *TPCHQ6 { return &TPCHQ6{N: 1 << 18, Tile: 1024, Par: 4} }

func (w *TPCHQ6) Name() string { return "TPCHQ6" }

func (w *TPCHQ6) ScaleNote() string {
	return fmt.Sprintf("paper 960,000,000 entries; simulated %d", w.N)
}

const (
	q6DateLo = 19940101
	q6DateHi = 19950101
	q6DiscLo = 0.05
	q6DiscHi = 0.07
	q6QtyMax = 24
)

func (w *TPCHQ6) Build() (*dhdl.Program, error) {
	n, t := w.N, w.Tile
	// Q6 is fold(filter(lineitem, predicates))(+ of price*disc); origins name
	// the Fold's per-column loads, the filtering body, and the combine.
	b := dhdl.NewBuilder("tpchq6", dhdl.Sequential)
	b.SetOrigin("Fold/load:date")
	dDate := b.DRAMI32("date", n)
	tDate := b.SRAM("tdate", pattern.I32, t)
	b.SetOrigin("Fold/load:qty")
	dQty := b.DRAMI32("qty", n)
	tQty := b.SRAM("tqty", pattern.I32, t)
	b.SetOrigin("Fold/load:price")
	dPrice := b.DRAMF32("price", n)
	tPrice := b.SRAM("tprice", pattern.F32, t)
	b.SetOrigin("Fold/load:disc")
	dDisc := b.DRAMF32("disc", n)
	tDisc := b.SRAM("tdisc", pattern.F32, t)
	b.SetOrigin("Fold/F")
	partial := b.Reg("partial", pattern.VF(0))
	b.SetOrigin("Fold/combine")
	revenue := b.Reg("revenue", pattern.VF(0))
	w.revenue = revenue

	b.SetOrigin("Fold/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, n, t, w.Par)}, func(ix []dhdl.Expr) {
		b.SetOrigin("Fold/load:date")
		b.Load("ldDate", dDate, ix[0], tDate, t)
		b.SetOrigin("Fold/load:qty")
		b.Load("ldQty", dQty, ix[0], tQty, t)
		b.SetOrigin("Fold/load:price")
		b.Load("ldPrice", dPrice, ix[0], tPrice, t)
		b.SetOrigin("Fold/load:disc")
		b.Load("ldDisc", dDisc, ix[0], tDisc, t)
		b.SetOrigin("Fold/F")
		b.Compute("filterSum", []dhdl.Counter{dhdl.CPar(t, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			date := dhdl.Ld(tDate, jx[0])
			qty := dhdl.Ld(tQty, jx[0])
			price := dhdl.Ld(tPrice, jx[0])
			disc := dhdl.Ld(tDisc, jx[0])
			cond := dhdl.And(
				dhdl.And(dhdl.Ge(date, dhdl.CI(q6DateLo)), dhdl.Lt(date, dhdl.CI(q6DateHi))),
				dhdl.And(
					dhdl.And(dhdl.Ge(disc, dhdl.CF(q6DiscLo)), dhdl.Le(disc, dhdl.CF(q6DiscHi))),
					dhdl.Lt(qty, dhdl.CI(q6QtyMax))))
			return []*dhdl.Assign{dhdl.AccumIf(partial, pattern.Add, cond, dhdl.Mul(price, disc))}
		})
		b.SetOrigin("Fold/combine")
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(revenue, dhdl.Add(dhdl.Rd(revenue), dhdl.Rd(partial)))}
		})
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x79C6)
	w.dates = make([]int32, n)
	w.qtys = make([]int32, n)
	w.prices = make([]float32, n)
	w.discounts = make([]float32, n)
	w.want = 0
	for i := 0; i < n; i++ {
		w.dates[i] = int32(19930101 + r.intn(30000))
		w.qtys[i] = int32(r.intn(50))
		w.prices[i] = r.float() * 1000
		w.discounts[i] = float32(r.intn(11)) / 100
		if w.dates[i] >= q6DateLo && w.dates[i] < q6DateHi &&
			w.discounts[i] >= q6DiscLo && w.discounts[i] <= q6DiscHi &&
			w.qtys[i] < q6QtyMax {
			w.want += float64(w.prices[i]) * float64(w.discounts[i])
		}
	}
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dDate, pattern.FromI32("date", w.dates)},
		{dQty, pattern.FromI32("qty", w.qtys)},
		{dPrice, pattern.FromF32("price", w.prices)},
		{dDisc, pattern.FromF32("disc", w.discounts)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *TPCHQ6) Check(st *dhdl.State) error {
	got := float64(st.RegValue(w.revenue).F)
	if !almostEq(got, w.want, 1e-2) {
		return fmt.Errorf("tpchq6: revenue %g, want %g", got, w.want)
	}
	return nil
}

func (w *TPCHQ6) Profile() Profile {
	return Profile{
		Flops:         10 * float64(w.N),
		DenseBytes:    16 * float64(w.N),
		OpsPerLane:    10,
		FPGALogicUtil: 0.243, FPGAMemUtil: 0.334,
		PaperSpeedup: 1.4, PaperPerfWatt: 1.5,
	}
}

// BlackScholes prices call options with a deep floating-point pipeline
// (Table 4: 96,000,000 entries, scaled to 2^15).
type BlackScholes struct {
	N, Tile, Par int

	s, k, t, r, v []float32
	out           []float32
	want          []float32
}

// NewBlackScholes returns the benchmark at simulation scale.
func NewBlackScholes() *BlackScholes { return &BlackScholes{N: 1 << 15, Tile: 1024, Par: 2} }

func (w *BlackScholes) Name() string { return "BlackScholes" }

func (w *BlackScholes) ScaleNote() string {
	return fmt.Sprintf("paper 96,000,000 entries; simulated %d", w.N)
}

// cndfExpr builds the Abramowitz-Stegun approximation of the cumulative
// normal distribution as a dataflow expression over d.
func cndfExpr(d dhdl.Expr) dhdl.Expr {
	ad := dhdl.Abs(d)
	k := dhdl.Div(dhdl.CF(1), dhdl.Add(dhdl.CF(1), dhdl.Mul(dhdl.CF(0.2316419), ad)))
	// poly = k*(a1 + k*(a2 + k*(a3 + k*(a4 + k*a5))))
	poly := dhdl.Mul(k, dhdl.CF(1.330274429))
	poly = dhdl.Mul(k, dhdl.Add(dhdl.CF(-1.821255978), poly))
	poly = dhdl.Mul(k, dhdl.Add(dhdl.CF(1.781477937), poly))
	poly = dhdl.Mul(k, dhdl.Add(dhdl.CF(-0.356563782), poly))
	poly = dhdl.Mul(k, dhdl.Add(dhdl.CF(0.319381530), poly))
	pdf := dhdl.Mul(dhdl.CF(0.39894228), dhdl.Exp(dhdl.Mul(dhdl.CF(-0.5), dhdl.Mul(d, d))))
	oneMinus := dhdl.Sub(dhdl.CF(1), dhdl.Mul(pdf, poly))
	// N(d) = 1 - pdf*poly for d >= 0, else pdf*poly.
	return dhdl.Sel(dhdl.Ge(d, dhdl.CF(0)), oneMinus, dhdl.Mul(pdf, poly))
}

func cndfHost(d float64) float64 {
	ad := math.Abs(d)
	k := 1 / (1 + 0.2316419*ad)
	poly := k * 1.330274429
	poly = k * (-1.821255978 + poly)
	poly = k * (1.781477937 + poly)
	poly = k * (-0.356563782 + poly)
	poly = k * (0.319381530 + poly)
	pdf := 0.39894228 * math.Exp(-0.5*d*d)
	if d >= 0 {
		return 1 - pdf*poly
	}
	return pdf * poly
}

func (w *BlackScholes) Build() (*dhdl.Program, error) {
	n, t := w.N, w.Tile
	// map(options)(price): one Map whose body is the deep Black-Scholes
	// pipeline; origins name the per-column loads, the body, and the store.
	b := dhdl.NewBuilder("blackscholes", dhdl.Sequential)
	b.SetOrigin("Map/load:S")
	dS := b.DRAMF32("S", n)
	tS := b.SRAM("tS", pattern.F32, t)
	b.SetOrigin("Map/load:K")
	dK := b.DRAMF32("K", n)
	tK := b.SRAM("tK", pattern.F32, t)
	b.SetOrigin("Map/load:T")
	dT := b.DRAMF32("T", n)
	tT := b.SRAM("tT", pattern.F32, t)
	b.SetOrigin("Map/load:r")
	dR := b.DRAMF32("r", n)
	tR := b.SRAM("tR", pattern.F32, t)
	b.SetOrigin("Map/load:v")
	dV := b.DRAMF32("v", n)
	tV := b.SRAM("tV", pattern.F32, t)
	b.SetOrigin("Map/store:call")
	dOut := b.DRAMF32("call", n)
	b.SetOrigin("Map/F")
	tOut := b.SRAM("tOut", pattern.F32, t)

	b.SetOrigin("Map/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, n, t, w.Par)}, func(ix []dhdl.Expr) {
		b.SetOrigin("Map/load:S")
		b.Load("ldS", dS, ix[0], tS, t)
		b.SetOrigin("Map/load:K")
		b.Load("ldK", dK, ix[0], tK, t)
		b.SetOrigin("Map/load:T")
		b.Load("ldT", dT, ix[0], tT, t)
		b.SetOrigin("Map/load:r")
		b.Load("ldR", dR, ix[0], tR, t)
		b.SetOrigin("Map/load:v")
		b.Load("ldV", dV, ix[0], tV, t)
		b.SetOrigin("Map/F")
		b.Compute("price", []dhdl.Counter{dhdl.CPar(t, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			s := dhdl.Ld(tS, jx[0])
			k := dhdl.Ld(tK, jx[0])
			tt := dhdl.Ld(tT, jx[0])
			r := dhdl.Ld(tR, jx[0])
			v := dhdl.Ld(tV, jx[0])
			sqrtT := dhdl.Sqrt(tt)
			vSqrtT := dhdl.Mul(v, sqrtT)
			d1 := dhdl.Div(
				dhdl.Add(dhdl.Log(dhdl.Div(s, k)),
					dhdl.Mul(dhdl.Add(r, dhdl.Mul(dhdl.CF(0.5), dhdl.Mul(v, v))), tt)),
				vSqrtT)
			d2 := dhdl.Sub(d1, vSqrtT)
			call := dhdl.Sub(
				dhdl.Mul(s, cndfExpr(d1)),
				dhdl.Mul(dhdl.Mul(k, dhdl.Exp(dhdl.Neg(dhdl.Mul(r, tt)))), cndfExpr(d2)))
			return []*dhdl.Assign{dhdl.StoreAt(tOut, jx[0], call)}
		})
		b.SetOrigin("Map/store:call")
		b.Store("stOut", dOut, ix[0], tOut, t)
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	rg := newRNG(0xB5C401E5)
	w.s = make([]float32, n)
	w.k = make([]float32, n)
	w.t = make([]float32, n)
	w.r = make([]float32, n)
	w.v = make([]float32, n)
	w.out = make([]float32, n)
	w.want = make([]float32, n)
	for i := 0; i < n; i++ {
		w.s[i] = 10 + 90*rg.float()
		w.k[i] = 10 + 90*rg.float()
		w.t[i] = 0.2 + 1.8*rg.float()
		w.r[i] = 0.01 + 0.05*rg.float()
		w.v[i] = 0.1 + 0.4*rg.float()
		s, k, tt, r, v := float64(w.s[i]), float64(w.k[i]), float64(w.t[i]), float64(w.r[i]), float64(w.v[i])
		vSqrtT := v * math.Sqrt(tt)
		d1 := (math.Log(s/k) + (r+0.5*v*v)*tt) / vSqrtT
		d2 := d1 - vSqrtT
		w.want[i] = float32(s*cndfHost(d1) - k*math.Exp(-r*tt)*cndfHost(d2))
	}
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dS, pattern.FromF32("S", w.s)}, {dK, pattern.FromF32("K", w.k)},
		{dT, pattern.FromF32("T", w.t)}, {dR, pattern.FromF32("r", w.r)},
		{dV, pattern.FromF32("v", w.v)}, {dOut, pattern.FromF32("call", w.out)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *BlackScholes) Check(st *dhdl.State) error {
	return checkF32Slice("blackscholes.call", w.out, w.want, 5e-3)
}

func (w *BlackScholes) Profile() Profile {
	return Profile{
		Flops:           60 * float64(w.N),
		DenseBytes:      24 * float64(w.N),
		OpsPerLane:      60,
		HeavyOpsPerLane: 10, // exp/log/sqrt/divide chains
		FPGALogicUtil:   0.689, FPGAMemUtil: 1.0,
		PaperSpeedup: 5.1, PaperPerfWatt: 5.8,
	}
}
