package workloads

import (
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
)

// TestMappingProperties pins down per-benchmark compilation facts the
// evaluation narrative relies on (Section 4.5): which leaves carry
// reduction trees, which memories are duplicated for random reads, which
// leaves pay bank-conflict or random-write initiation intervals.
func TestMappingProperties(t *testing.T) {
	compileOf := func(t *testing.T, b Benchmark) *compiler.Mapping {
		t.Helper()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := compiler.Compile(p, arch.Default())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	leafII := func(m *compiler.Mapping, name string) int {
		for leaf, lm := range m.Leaves {
			if leaf.Name == name {
				return lm.II
			}
		}
		t.Fatalf("leaf %s not found", name)
		return 0
	}
	banking := func(m *compiler.Mapping, name string) dhdl.BankingMode {
		for _, s := range m.Prog.SRAMs {
			if s.Name == name {
				return s.Banking
			}
		}
		t.Fatalf("SRAM %s not found", name)
		return 0
	}

	t.Run("InnerProductReductionDepth", func(t *testing.T) {
		m := compileOf(t, NewInnerProduct())
		for _, pc := range m.Part.PCUs {
			if pc.V.Name != "mac" {
				continue
			}
			if pc.V.Reduces != 1 {
				t.Errorf("mac reduces = %d, want 1", pc.V.Reduces)
			}
			// mul + 5-stage reduction tree = 6 stages: the paper's PCU
			// depth rationale.
			if got := pc.Parts[0].StagesUsed; got != 6 {
				t.Errorf("mac stages = %d, want 6", got)
			}
		}
	})

	t.Run("StreamingLeavesHaveUnitII", func(t *testing.T) {
		for _, b := range []Benchmark{NewInnerProduct(), NewBlackScholes(), NewTPCHQ6()} {
			m := compileOf(t, b)
			for leaf, lm := range m.Leaves {
				if leaf.Kind == dhdl.ComputeKind && lm.II != 1 {
					t.Errorf("%s/%s: II = %d, want 1 (conflict-free streaming)", b.Name(), leaf.Name, lm.II)
				}
			}
		}
	})

	t.Run("SparseAccumulatorsPayRandomWriteII", func(t *testing.T) {
		m := compileOf(t, NewSMDV())
		if ii := leafII(m, "acc"); ii <= 1 {
			t.Errorf("SMDV acc II = %d, want > 1 (sequentialized random writes)", ii)
		}
		m = compileOf(t, NewPageRank())
		if ii := leafII(m, "contrib"); ii <= 1 {
			t.Errorf("PageRank contrib II = %d, want > 1", ii)
		}
	})

	t.Run("GatherTargetsUseDuplicationBanking", func(t *testing.T) {
		m := compileOf(t, NewSMDV())
		if got := banking(m, "txg"); got != dhdl.Duplication {
			t.Errorf("SMDV gathered-value tile banking = %v, want duplication", got)
		}
		m = compileOf(t, NewKmeans())
		// Kmeans point data is read lane-sequentially: strided is right.
		if got := banking(m, "tx"); got != dhdl.Strided {
			t.Errorf("Kmeans tx banking = %v, want strided", got)
		}
	})

	t.Run("GEMMDoubleBuffersInputTiles", func(t *testing.T) {
		m := compileOf(t, NewGEMM())
		found := false
		for s, mm := range m.Mems {
			if s.Name == "tC" {
				found = true
				if mm.NBuf < 2 {
					t.Errorf("tC NBuf = %d, want >= 2 (pipelined with store)", mm.NBuf)
				}
			}
		}
		if !found {
			t.Fatal("tC not mapped")
		}
	})

	t.Run("CNNUsesSubstantialFabric", func(t *testing.T) {
		m := compileOf(t, NewCNN())
		if m.Util.PCUFrac < 0.25 {
			t.Errorf("CNN PCU utilization %.2f, want >= 0.25 (the paper's CNN fills half the chip)", m.Util.PCUFrac)
		}
	})

	t.Run("BFSVisitIsSequentialLane", func(t *testing.T) {
		m := compileOf(t, NewBFS())
		for leaf, lm := range m.Leaves {
			if leaf.Name == "visit" && lm.Lanes != 1 {
				t.Errorf("visit lanes = %d, want 1 (serialized random writes)", lm.Lanes)
			}
		}
	})
}

// TestBitstreamsGenerateForAllBenchmarks ensures every benchmark's mapping
// serialises to a configuration and survives a round trip.
func TestBitstreamsGenerateForAllBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			p, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			m, err := compiler.Compile(p, arch.Default())
			if err != nil {
				t.Fatal(err)
			}
			bs := compiler.GenerateBitstream(m)
			if len(bs.PCUs) == 0 {
				t.Error("no PCU configs")
			}
			if asm := bs.Assembly(); len(asm) < 100 {
				t.Errorf("assembly suspiciously short: %d bytes", len(asm))
			}
		})
	}
}
