package workloads

import (
	"fmt"

	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// SMDV is sparse matrix - dense vector multiplication in COO form: edge
// tiles stream (row, col, val) triples, gather x[col] from DRAM and
// accumulate y[row] on chip (Table 4: 3840x3840 with E[nnz/row]=60, scaled
// to 2048 rows with ~16 nnz/row).
type SMDV struct {
	N, NNZPerRow, TK int

	rows, cols []int32
	vals, x, y []float32
	want       []float32
}

// NewSMDV returns the benchmark at simulation scale.
func NewSMDV() *SMDV { return &SMDV{N: 2048, NNZPerRow: 16, TK: 2048} }

func (w *SMDV) Name() string { return "SMDV" }

func (w *SMDV) ScaleNote() string {
	return fmt.Sprintf("paper 3840x3840 E[nnz/row]=60; simulated %dx%d nnz/row=%d", w.N, w.N, w.NNZPerRow)
}

func (w *SMDV) Build() (*dhdl.Program, error) {
	n, tk := w.N, w.TK
	nnz := n * w.NNZPerRow
	b := dhdl.NewBuilder("smdv", dhdl.Sequential)
	dRow := b.DRAMI32("row", nnz)
	dCol := b.DRAMI32("col", nnz)
	dVal := b.DRAMF32("val", nnz)
	dX := b.DRAMF32("x", n)
	dY := b.DRAMF32("y", n)
	tRow := b.SRAM("trow", pattern.I32, tk)
	tCol := b.SRAM("tcol", pattern.I32, tk)
	tVal := b.SRAM("tval", pattern.F32, tk)
	tXG := b.SRAMBanked("txg", pattern.F32, tk, dhdl.Duplication)
	tY := b.SRAM("ty", pattern.F32, n)

	b.Compute("zeroY", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		return []*dhdl.Assign{dhdl.StoreAt(tY, ix[0], dhdl.CF(0))}
	})
	b.Pipe("edgeTiles", []dhdl.Counter{dhdl.CStepPar(0, nnz, tk, 2)}, func(ix []dhdl.Expr) {
		b.Load("ldRow", dRow, ix[0], tRow, tk)
		b.Load("ldCol", dCol, ix[0], tCol, tk)
		b.Load("ldVal", dVal, ix[0], tVal, tk)
		b.Gather("gatherX", dX, tCol, tXG, tk, nil)
		b.Compute("acc", []dhdl.Counter{dhdl.CPar(tk, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			kk := jx[0]
			val := dhdl.Mul(dhdl.Ld(tVal, kk), dhdl.Ld(tXG, kk))
			return []*dhdl.Assign{dhdl.AccumAt(tY, pattern.Add, dhdl.Ld(tRow, kk), val)}
		})
	})
	b.Store("stY", dY, dhdl.CI(0), tY, n)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x53D5)
	w.rows = make([]int32, nnz)
	w.cols = make([]int32, nnz)
	w.vals = make([]float32, nnz)
	w.x = make([]float32, n)
	w.y = make([]float32, n)
	for i := 0; i < n; i++ {
		w.x[i] = r.float() - 0.5
	}
	w.want = make([]float32, n)
	for i := 0; i < nnz; i++ {
		row := int32(i / w.NNZPerRow)
		col := int32(r.intn(n))
		v := r.float() - 0.5
		w.rows[i], w.cols[i], w.vals[i] = row, col, v
		w.want[row] += v * w.x[col]
	}
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dRow, pattern.FromI32("row", w.rows)}, {dCol, pattern.FromI32("col", w.cols)},
		{dVal, pattern.FromF32("val", w.vals)}, {dX, pattern.FromF32("x", w.x)},
		{dY, pattern.FromF32("y", w.y)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *SMDV) Check(st *dhdl.State) error {
	return checkF32Slice("smdv.y", w.y, w.want, 1e-3)
}

func (w *SMDV) Profile() Profile {
	nnz := float64(w.N * w.NNZPerRow)
	return Profile{
		Flops:          2 * nnz,
		DenseBytes:     4 * (3*nnz + float64(w.N)),
		SparseAccesses: nnz,
		OpsPerLane:     2,
		FPGALogicUtil:  0.273, FPGAMemUtil: 0.31,
		PaperSpeedup: 8.3, PaperPerfWatt: 9.3,
	}
}

// PageRank iteratively updates page ranks by gathering neighbour ranks
// over the edge list (Table 4: 100 iters over 7,680 pages, scaled to 5
// iters over 2048 pages with average degree 8).
type PageRank struct {
	Iters, N, Deg, TK int

	src, dst []int32
	ranks    []float32
	want     []float32
}

// NewPageRank returns the benchmark at simulation scale.
func NewPageRank() *PageRank { return &PageRank{Iters: 5, N: 2048, Deg: 8, TK: 2048} }

func (w *PageRank) Name() string { return "PageRank" }

func (w *PageRank) ScaleNote() string {
	return fmt.Sprintf("paper 100 iters, 7680 pages; simulated %d iters, %d pages, deg %d",
		w.Iters, w.N, w.Deg)
}

const prDamp = 0.85

func (w *PageRank) Build() (*dhdl.Program, error) {
	n, tk := w.N, w.TK
	edges := n * w.Deg
	b := dhdl.NewBuilder("pagerank", dhdl.Sequential)
	dSrc := b.DRAMI32("src", edges)
	dDst := b.DRAMI32("dst", edges)
	dRank := b.DRAMF32("rank", n)
	tSrc := b.SRAM("tsrc", pattern.I32, tk)
	tDst := b.SRAM("tdst", pattern.I32, tk)
	tRG := b.SRAMBanked("trg", pattern.F32, tk, dhdl.Duplication)
	tAcc := b.SRAM("tacc", pattern.F32, n)
	tNew := b.SRAM("tnew", pattern.F32, n)

	b.Seq("iters", []dhdl.Counter{dhdl.C(w.Iters)}, func([]dhdl.Expr) {
		b.Compute("zeroAcc", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(tAcc, ix[0], dhdl.CF(0))}
		})
		b.Pipe("edgeTiles", []dhdl.Counter{dhdl.CStepPar(0, edges, tk, 2)}, func(ix []dhdl.Expr) {
			b.Load("ldSrc", dSrc, ix[0], tSrc, tk)
			b.Load("ldDst", dDst, ix[0], tDst, tk)
			// Gather neighbour ranks from DRAM (sparse reads).
			b.Gather("gatherR", dRank, tSrc, tRG, tk, nil)
			b.Compute("contrib", []dhdl.Counter{dhdl.CPar(tk, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
				k := jx[0]
				// All pages have out-degree Deg, so the contribution is
				// rank/Deg.
				val := dhdl.Div(dhdl.Ld(tRG, k), dhdl.CF(float32(w.Deg)))
				return []*dhdl.Assign{dhdl.AccumAt(tAcc, pattern.Add, dhdl.Ld(tDst, k), val)}
			})
		})
		b.Compute("apply", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			p := ix[0]
			val := dhdl.Add(dhdl.CF((1-prDamp)/float32(n)), dhdl.Mul(dhdl.CF(prDamp), dhdl.Ld(tAcc, p)))
			return []*dhdl.Assign{dhdl.StoreAt(tNew, p, val)}
		})
		b.Store("stRank", dRank, dhdl.CI(0), tNew, n)
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x9A6E)
	w.src = make([]int32, edges)
	w.dst = make([]int32, edges)
	for u := 0; u < n; u++ {
		for e := 0; e < w.Deg; e++ {
			w.src[u*w.Deg+e] = int32(u)
			w.dst[u*w.Deg+e] = int32(r.intn(n))
		}
	}
	// Shuffle the edge list so rank gathers hit DRAM in random order, as
	// they would for a real graph's in-edge lists.
	for i := edges - 1; i > 0; i-- {
		j := r.intn(i + 1)
		w.src[i], w.src[j] = w.src[j], w.src[i]
		w.dst[i], w.dst[j] = w.dst[j], w.dst[i]
	}
	w.ranks = make([]float32, n)
	for i := range w.ranks {
		w.ranks[i] = 1 / float32(n)
	}
	// Golden reference with the same float32 update order.
	ranks := append([]float32(nil), w.ranks...)
	for it := 0; it < w.Iters; it++ {
		acc := make([]float32, n)
		for e := 0; e < edges; e++ {
			acc[w.dst[e]] += ranks[w.src[e]] / float32(w.Deg)
		}
		for p := 0; p < n; p++ {
			ranks[p] = (1-prDamp)/float32(n) + prDamp*acc[p]
		}
	}
	w.want = ranks
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dSrc, pattern.FromI32("src", w.src)}, {dDst, pattern.FromI32("dst", w.dst)},
		{dRank, pattern.FromF32("rank", w.ranks)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *PageRank) Check(st *dhdl.State) error {
	return checkF32Slice("pagerank.rank", w.ranks, w.want, 1e-3)
}

func (w *PageRank) Profile() Profile {
	edges := float64(w.N * w.Deg)
	it := float64(w.Iters)
	return Profile{
		Flops:          it * (2*edges + 2*float64(w.N)),
		DenseBytes:     it * 4 * (2*edges + float64(w.N)),
		SparseAccesses: it * edges,
		OpsPerLane:     2,
		SeqIters:       w.Iters,
		SeqChildren:    4,
		PipeDepth:      20,
		FPGALogicUtil:  0.313, FPGAMemUtil: 0.334,
		PaperSpeedup: 14.2, PaperPerfWatt: 18.2,
	}
}

// BFS performs a frontier-based breadth-first traversal over a layered
// graph with uniform out-degree, gathering adjacency lists and scattering
// discovered levels each iteration (Table 4: E[edges/node]=8 x 10 layers,
// scaled to 2048 nodes).
type BFS struct {
	N, Deg, Layers, MaxFront int

	adj    []int32
	levels []int32
	want   []int32
}

// NewBFS returns the benchmark at simulation scale.
func NewBFS() *BFS { return &BFS{N: 2048, Deg: 8, Layers: 10, MaxFront: 512} }

func (w *BFS) Name() string { return "BFS" }

func (w *BFS) ScaleNote() string {
	return fmt.Sprintf("paper E[edges/node]=8 x 10 layers; simulated %d nodes, deg %d, %d layers",
		w.N, w.Deg, w.Layers)
}

func (w *BFS) Build() (*dhdl.Program, error) {
	n, deg, mf := w.N, w.Deg, w.MaxFront
	b := dhdl.NewBuilder("bfs", dhdl.Sequential)
	dAdj := b.DRAMI32("adj", n*deg)
	dLev := b.DRAMI32("levels", n)
	tFront := b.SRAM("tfront", pattern.I32, mf)
	tAddr := b.SRAM("taddr", pattern.I32, mf*deg)
	tNbr := b.SRAM("tnbr", pattern.I32, mf*deg)
	tLev := b.SRAM("tlev", pattern.I32, n)
	tScat := b.SRAM("tscat", pattern.I32, mf)
	nextF := b.FIFO("nextf", pattern.I32, mf)
	fsz := b.Reg("fsz", pattern.VI(0))
	nEdges := b.Reg("nedges", pattern.VI(0))
	nNext := b.Reg("nnext", pattern.VI(0))

	// Initialise levels to -1 and seed the frontier with node 0.
	b.Compute("initLev", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		return []*dhdl.Assign{dhdl.StoreAt(tLev, ix[0], dhdl.CI(-1))}
	})
	b.Compute("seed", nil, func([]dhdl.Expr) []*dhdl.Assign {
		return []*dhdl.Assign{
			dhdl.StoreAt(tFront, dhdl.CI(0), dhdl.CI(0)),
			dhdl.StoreAt(tLev, dhdl.CI(0), dhdl.CI(0)),
			dhdl.SetReg(fsz, dhdl.CI(1)),
		}
	})
	b.Seq("levels", []dhdl.Counter{dhdl.C(w.Layers)}, func(lx []dhdl.Expr) {
		lvl := dhdl.Add(lx[0], dhdl.CI(1))
		// Expand: neighbour addresses of every frontier node.
		b.Compute("expand", []dhdl.Counter{dhdl.CDyn(fsz), dhdl.C(deg)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			i, e := ix[0], ix[1]
			u := dhdl.Ld(tFront, i)
			addr := dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(deg))), e)
			return []*dhdl.Assign{
				dhdl.StoreAt(tAddr, addr, dhdl.Add(dhdl.Mul(u, dhdl.CI(int32(deg))), e)),
			}
		})
		b.Compute("countEdges", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(nEdges, dhdl.Mul(dhdl.Rd(fsz), dhdl.CI(int32(deg))))}
		})
		b.Gather("gatherNbr", dAdj, tAddr, tNbr, 0, nEdges)
		// Visit neighbours sequentially: random writes must be
		// sequentialized (Section 2.2).
		b.Compute("visit", []dhdl.Counter{dhdl.CDyn(nEdges)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			v := dhdl.Ld(tNbr, ix[0])
			fresh := dhdl.Eq(dhdl.Ld(tLev, v), dhdl.CI(-1))
			// The level write comes last: assigns execute in order and the
			// freshness test must see the pre-visit state.
			return []*dhdl.Assign{
				{Kind: dhdl.PushFIFO, FIFO: nextF, Cond: fresh, Val: v},
				dhdl.AccumIf(nNext, pattern.Add, fresh, dhdl.CI(1)),
				dhdl.StoreAtIf(tLev, fresh, v, lvl),
			}
		})
		// Drain the next frontier into the frontier buffer and scatter the
		// discovered levels back to DRAM.
		b.Compute("drain", []dhdl.Counter{dhdl.CDyn(nNext)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			v := dhdl.Pop(nextF)
			return []*dhdl.Assign{
				dhdl.StoreAt(tFront, ix[0], v),
				dhdl.StoreAt(tScat, ix[0], lvl),
			}
		})
		b.Scatter("scatterLev", dLev, tFront, tScat, 0, nNext)
		b.Compute("advance", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(fsz, dhdl.Rd(nNext))}
		})
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Layered graph: layer sizes grow geometrically and then saturate so a
	// 10-layer traversal covers the graph.
	sizes := []int{1, 7, 56, 200, 256, 320, 320, 320, 320, 248}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		return nil, fmt.Errorf("bfs: layer sizes sum to %d, want %d", total, n)
	}
	starts := make([]int, len(sizes)+1)
	for i, s := range sizes {
		starts[i+1] = starts[i] + s
	}
	r := newRNG(0xBF5)
	w.adj = make([]int32, n*deg)
	wantLev := make([]int32, n)
	for i := range wantLev {
		wantLev[i] = -1
	}
	for l := 0; l < len(sizes); l++ {
		for u := starts[l]; u < starts[l+1]; u++ {
			for e := 0; e < deg; e++ {
				var tgt int
				if l+1 < len(sizes) {
					tgt = starts[l+1] + r.intn(sizes[l+1])
				} else {
					tgt = r.intn(starts[1]) // back edges; already visited
				}
				w.adj[u*deg+e] = int32(tgt)
			}
		}
	}
	// Golden reference replicating the device's visit order.
	wantLev[0] = 0
	frontier := []int32{0}
	for lvl := int32(1); lvl <= int32(w.Layers); lvl++ {
		var next []int32
		for _, u := range frontier {
			for e := 0; e < deg; e++ {
				v := w.adj[int(u)*deg+e]
				if wantLev[v] == -1 {
					wantLev[v] = lvl
					next = append(next, v)
				}
			}
		}
		if len(next) > mf {
			return nil, fmt.Errorf("bfs: frontier %d exceeds capacity %d", len(next), mf)
		}
		frontier = next
	}
	w.want = wantLev
	w.levels = make([]int32, n)
	for i := range w.levels {
		w.levels[i] = -1
	}
	w.levels[0] = 0 // seed's level is written on chip before any scatter
	if err := dAdj.Bind(pattern.FromI32("adj", w.adj)); err != nil {
		return nil, err
	}
	if err := dLev.Bind(pattern.FromI32("levels", w.levels)); err != nil {
		return nil, err
	}
	return p, nil
}

func (w *BFS) Check(st *dhdl.State) error {
	return checkI32Slice("bfs.levels", w.levels, w.want)
}

func (w *BFS) Profile() Profile {
	edges := float64(w.N * w.Deg)
	return Profile{
		Flops:          3 * edges,
		DenseBytes:     4 * float64(w.N),
		SparseAccesses: 2 * edges, // gathers plus scatters
		OpsPerLane:     3,
		SeqIters:       w.Layers,
		SeqChildren:    6,
		PipeDepth:      20,
		FPGALogicUtil:  0.253, FPGAMemUtil: 0.459,
		PaperSpeedup: 7.3, PaperPerfWatt: 11.4,
	}
}
