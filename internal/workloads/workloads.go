// Package workloads implements the thirteen evaluation benchmarks of
// Table 4 — Inner Product, Outer Product, Black-Scholes, TPC-H Query 6,
// GEMM, GDA, LogReg, SGD, Kmeans, CNN, SMDV, PageRank and BFS — as DHDL
// programs with deterministic data generators and golden CPU references.
//
// The paper's data sizes (e.g. 768 M-element vectors) are scaled down so
// cycle-level simulation fits in test time; each benchmark records its
// scale factor, and the Table 7 harness compares ratios (speedup, perf/W),
// which survive scaling because both the Plasticine simulator and the FPGA
// model run the same scaled instance.
package workloads

import (
	"fmt"
	"math"

	"plasticine/internal/dhdl"
)

// Profile carries the workload characteristics the FPGA baseline model and
// the reporting harness need.
type Profile struct {
	// Flops is useful arithmetic work per run (integer ops counted as
	// flops for the int benchmarks).
	Flops float64
	// DenseBytes is DRAM traffic from dense (burst) transfers.
	DenseBytes float64
	// WriteBytes is the written portion of DenseBytes.
	WriteBytes float64
	// SparseAccesses is the number of 4-byte random DRAM accesses.
	SparseAccesses float64
	// OpsPerLane is the pipeline depth per parallel lane in a spatial
	// implementation (how much logic one lane costs).
	OpsPerLane int
	// HeavyOpsPerLane counts transcendentals/divides per lane (expensive
	// in FPGA soft logic).
	HeavyOpsPerLane int
	// SeqIters counts inherently sequential outer iterations (loop-carried
	// dependences), each costing a pipeline fill.
	SeqIters int
	// SeqChildren is the number of dependent pipeline stages inside one
	// sequential iteration.
	SeqChildren int
	// PipeDepth is the depth of the per-iteration pipeline for SeqIters.
	PipeDepth int

	// FPGAUtil are the measured Stratix V utilizations from Table 7
	// (fractions), used to size the FPGA baseline's parallelism.
	FPGALogicUtil float64
	FPGAMemUtil   float64

	// Paper-reported comparison points (Table 7), for EXPERIMENTS.md.
	PaperSpeedup  float64
	PaperPerfWatt float64
}

// Benchmark is one Table 4 workload instance.
type Benchmark interface {
	// Name is the benchmark's Table 4 name.
	Name() string
	// Build constructs the DHDL program with all DRAM buffers bound to
	// freshly generated data.
	Build() (*dhdl.Program, error)
	// Check validates the outputs (DRAM contents and final state) against
	// the golden reference computed on the host.
	Check(st *dhdl.State) error
	// Profile reports workload characteristics for the scaled instance.
	Profile() Profile
	// ScaleNote describes paper size vs simulated size.
	ScaleNote() string
}

// All returns the benchmarks in Table 4 / Table 7 order.
func All() []Benchmark {
	return []Benchmark{
		NewInnerProduct(),
		NewOuterProduct(),
		NewBlackScholes(),
		NewTPCHQ6(),
		NewGEMM(),
		NewGDA(),
		NewLogReg(),
		NewSGD(),
		NewKmeans(),
		NewCNN(),
		NewSMDV(),
		NewPageRank(),
		NewBFS(),
	}
}

// ByName finds a benchmark by (case-sensitive) name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// rng is a small deterministic generator (xorshift32) so benchmarks are
// reproducible without external deps.
type rng uint32

func newRNG(seed uint32) *rng {
	r := rng(seed | 1)
	return &r
}

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

// float returns a uniform float32 in [0,1).
func (r *rng) float() float32 { return float32(r.next()>>8) / float32(1<<24) }

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }

// almostEq compares with relative+absolute tolerance appropriate for f32
// accumulation differences between tree and sequential reduction orders.
func almostEq(got, want, rel float64) bool {
	return math.Abs(got-want) <= rel*math.Abs(want)+1e-3
}

// checkF32Slice compares a DRAM-resident result against a golden slice.
func checkF32Slice(name string, got, want []float32, rel float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if !almostEq(float64(got[i]), float64(want[i]), rel) {
			return fmt.Errorf("%s[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
	return nil
}

func checkI32Slice(name string, got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
	return nil
}
