package workloads

import (
	"fmt"
	"math"

	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// GEMM is blocked single-precision matrix multiplication with on-chip
// accumulation (Table 4: 47x7680 * 7680x3840, scaled to 128x128x128).
type GEMM struct {
	M, N, P    int
	TM, TN, TP int

	a, bm, c []float32
	want     []float32
}

// NewGEMM returns the benchmark at simulation scale.
func NewGEMM() *GEMM {
	return &GEMM{M: 256, N: 256, P: 256, TM: 32, TN: 64, TP: 32}
}

func (w *GEMM) Name() string { return "GEMM" }

func (w *GEMM) ScaleNote() string {
	return fmt.Sprintf("paper 47x7680 * 7680x3840; simulated %dx%d * %dx%d", w.M, w.N, w.N, w.P)
}

func (w *GEMM) Build() (*dhdl.Program, error) {
	M, N, P, TM, TN, TP := w.M, w.N, w.P, w.TM, w.TN, w.TP
	b := dhdl.NewBuilder("gemm", dhdl.Sequential)
	dA := b.DRAMF32("A", M, N)
	dB := b.DRAMF32("B", N, P)
	dC := b.DRAMF32("C", M, P)
	tA := b.SRAM("tA", pattern.F32, TM*TN)
	tB := b.SRAM("tB", pattern.F32, TN*TP)
	tC := b.SRAM("tC", pattern.F32, TM*TP)

	b.Pipe("iTiles", []dhdl.Counter{dhdl.CStepPar(0, M, TM, 2)}, func(ix []dhdl.Expr) {
		b.Pipe("jTiles", []dhdl.Counter{dhdl.CStepPar(0, P, TP, 2)}, func(jx []dhdl.Expr) {
			b.Compute("zeroC", []dhdl.Counter{dhdl.CPar(TM*TP, 16)}, func(zx []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(tC, zx[0], dhdl.CF(0))}
			})
			// Accumulation over k tiles is loop-carried: sequential.
			b.Seq("kTiles", []dhdl.Counter{dhdl.CStep(0, N, TN)}, func(kx []dhdl.Expr) {
				b.LoadTiled("loadA", []dhdl.Counter{dhdl.C(TM)}, dA, tA, TN, func(rx []dhdl.Expr) (dhdl.Expr, dhdl.Expr) {
					off := dhdl.Add(dhdl.Mul(dhdl.Add(ix[0], rx[0]), dhdl.CI(int32(N))), kx[0])
					return off, dhdl.Mul(rx[0], dhdl.CI(int32(TN)))
				})
				b.LoadTiled("loadB", []dhdl.Counter{dhdl.C(TN)}, dB, tB, TP, func(rx []dhdl.Expr) (dhdl.Expr, dhdl.Expr) {
					off := dhdl.Add(dhdl.Mul(dhdl.Add(kx[0], rx[0]), dhdl.CI(int32(P))), jx[0])
					return off, dhdl.Mul(rx[0], dhdl.CI(int32(TP)))
				})
				// Vectorized SAXPY: tC[r,c] += tA[r,kk] * tB[kk,c], lanes
				// across c.
				b.Compute("mm", []dhdl.Counter{dhdl.CPar(TM, 2), dhdl.C(TN), dhdl.CPar(TP, 16)}, func(mx []dhdl.Expr) []*dhdl.Assign {
					r, kk, c := mx[0], mx[1], mx[2]
					val := dhdl.Mul(
						dhdl.Ld(tA, dhdl.Add(dhdl.Mul(r, dhdl.CI(int32(TN))), kk)),
						dhdl.Ld(tB, dhdl.Add(dhdl.Mul(kk, dhdl.CI(int32(TP))), c)))
					addr := dhdl.Add(dhdl.Mul(r, dhdl.CI(int32(TP))), c)
					return []*dhdl.Assign{dhdl.AccumAt(tC, pattern.Add, addr, val)}
				})
			})
			b.StoreTiled("storeC", []dhdl.Counter{dhdl.C(TM)}, dC, tC, TP, func(rx []dhdl.Expr) (dhdl.Expr, dhdl.Expr) {
				off := dhdl.Add(dhdl.Mul(dhdl.Add(ix[0], rx[0]), dhdl.CI(int32(P))), jx[0])
				return off, dhdl.Mul(rx[0], dhdl.CI(int32(TP)))
			})
		})
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x6E44)
	w.a = make([]float32, M*N)
	w.bm = make([]float32, N*P)
	w.c = make([]float32, M*P)
	for i := range w.a {
		w.a[i] = r.float() - 0.5
	}
	for i := range w.bm {
		w.bm[i] = r.float() - 0.5
	}
	w.want = make([]float32, M*P)
	for i := 0; i < M; i++ {
		for j := 0; j < P; j++ {
			var s float32
			for k := 0; k < N; k++ {
				s += w.a[i*N+k] * w.bm[k*P+j]
			}
			w.want[i*P+j] = s
		}
	}
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dA, pattern.FromF32("A", w.a)}, {dB, pattern.FromF32("B", w.bm)}, {dC, pattern.FromF32("C", w.c)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *GEMM) Check(st *dhdl.State) error {
	return checkF32Slice("gemm.C", w.c, w.want, 1e-3)
}

func (w *GEMM) Profile() Profile {
	m, n, p := float64(w.M), float64(w.N), float64(w.P)
	return Profile{
		Flops:         2 * m * n * p,
		DenseBytes:    4 * (m*n*(p/float64(w.TP)) + n*p*(m/float64(w.TM)) + m*p),
		OpsPerLane:    2,
		FPGALogicUtil: 0.404, FPGAMemUtil: 0.948,
		PaperSpeedup: 33.0, PaperPerfWatt: 24.4,
	}
}

// GDA is Gaussian discriminant analysis: per-class means plus a shared
// covariance matrix (Table 4: 3,840,000 points x 96 dims, scaled to
// 2048 x 32).
type GDA struct {
	N, D, TP int

	x      []float32
	y      []int32
	muOut  []float32
	sigOut []float32
	wantMu []float32
	wantSg []float32
}

// NewGDA returns the benchmark at simulation scale.
func NewGDA() *GDA { return &GDA{N: 4096, D: 32, TP: 256} }

func (w *GDA) Name() string { return "GDA" }

func (w *GDA) ScaleNote() string {
	return fmt.Sprintf("paper 3,840,000 points x 96 dims; simulated %d x %d", w.N, w.D)
}

func (w *GDA) Build() (*dhdl.Program, error) {
	n, d, tp := w.N, w.D, w.TP
	b := dhdl.NewBuilder("gda", dhdl.Sequential)
	dX := b.DRAMF32("x", n, d)
	dY := b.DRAMI32("y", n)
	dMu := b.DRAMF32("mu", 2, d)
	dSig := b.DRAMF32("sigma", d, d)
	tX := b.SRAM("tx", pattern.F32, tp*d)
	tY := b.SRAM("ty", pattern.I32, tp)
	sums := b.SRAM("sums", pattern.F32, 2*d)
	counts := b.SRAM("counts", pattern.F32, 2)
	mu := b.SRAMBanked("mu", pattern.F32, 2*d, dhdl.Duplication)
	sigma := b.SRAM("sigma", pattern.F32, d*d)

	b.Pipe("p1", []dhdl.Counter{dhdl.CStepPar(0, n, tp, 2)}, func(ix []dhdl.Expr) {
		b.Load("ldX1", dX, dhdl.Mul(ix[0], dhdl.CI(int32(d))), tX, tp*d)
		b.Load("ldY1", dY, ix[0], tY, tp)
		b.Compute("classSums", []dhdl.Counter{dhdl.C(tp), dhdl.CPar(d, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			i, j := jx[0], jx[1]
			cls := dhdl.Ld(tY, i)
			addr := dhdl.Add(dhdl.Mul(cls, dhdl.CI(int32(d))), j)
			val := dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j))
			return []*dhdl.Assign{dhdl.AccumAt(sums, pattern.Add, addr, val)}
		})
		b.Compute("classCounts", []dhdl.Counter{dhdl.C(tp)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.AccumAt(counts, pattern.Add, dhdl.Ld(tY, jx[0]), dhdl.CF(1))}
		})
	})
	b.Compute("means", []dhdl.Counter{dhdl.C(2), dhdl.CPar(d, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
		c, j := jx[0], jx[1]
		addr := dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(d))), j)
		val := dhdl.Div(dhdl.Ld(sums, addr), dhdl.Max(dhdl.Ld(counts, c), dhdl.CF(1)))
		return []*dhdl.Assign{dhdl.StoreAt(mu, addr, val)}
	})
	b.Pipe("p2", []dhdl.Counter{dhdl.CStepPar(0, n, tp, 2)}, func(ix []dhdl.Expr) {
		b.Load("ldX2", dX, dhdl.Mul(ix[0], dhdl.CI(int32(d))), tX, tp*d)
		b.Load("ldY2", dY, ix[0], tY, tp)
		b.Compute("cov", []dhdl.Counter{dhdl.CPar(tp, 4), dhdl.C(d), dhdl.CPar(d, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			i, j, k := jx[0], jx[1], jx[2]
			cls := dhdl.Ld(tY, i)
			xj := dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j))
			xk := dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), k))
			muj := dhdl.Ld(mu, dhdl.Add(dhdl.Mul(cls, dhdl.CI(int32(d))), j))
			muk := dhdl.Ld(mu, dhdl.Add(dhdl.Mul(cls, dhdl.CI(int32(d))), k))
			val := dhdl.Mul(dhdl.Sub(xj, muj), dhdl.Sub(xk, muk))
			addr := dhdl.Add(dhdl.Mul(j, dhdl.CI(int32(d))), k)
			return []*dhdl.Assign{dhdl.AccumAt(sigma, pattern.Add, addr, val)}
		})
	})
	b.Store("stMu", dMu, dhdl.CI(0), mu, 2*d)
	b.Store("stSig", dSig, dhdl.CI(0), sigma, d*d)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x6DA5)
	w.x = make([]float32, n*d)
	w.y = make([]int32, n)
	for i := 0; i < n; i++ {
		w.y[i] = int32(r.intn(2))
		for j := 0; j < d; j++ {
			w.x[i*d+j] = r.float() + float32(w.y[i])
		}
	}
	w.muOut = make([]float32, 2*d)
	w.sigOut = make([]float32, d*d)
	// Golden reference.
	w.wantMu = make([]float32, 2*d)
	cnt := [2]float32{}
	for i := 0; i < n; i++ {
		cnt[w.y[i]]++
		for j := 0; j < d; j++ {
			w.wantMu[int(w.y[i])*d+j] += w.x[i*d+j]
		}
	}
	for c := 0; c < 2; c++ {
		for j := 0; j < d; j++ {
			w.wantMu[c*d+j] /= cnt[c]
		}
	}
	w.wantSg = make([]float32, d*d)
	for i := 0; i < n; i++ {
		c := int(w.y[i])
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				w.wantSg[j*d+k] += (w.x[i*d+j] - w.wantMu[c*d+j]) * (w.x[i*d+k] - w.wantMu[c*d+k])
			}
		}
	}
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dX, pattern.FromF32("x", w.x)}, {dY, pattern.FromI32("y", w.y)},
		{dMu, pattern.FromF32("mu", w.muOut)}, {dSig, pattern.FromF32("sig", w.sigOut)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *GDA) Check(st *dhdl.State) error {
	if err := checkF32Slice("gda.mu", w.muOut, w.wantMu, 1e-3); err != nil {
		return err
	}
	return checkF32Slice("gda.sigma", w.sigOut, w.wantSg, 1e-2)
}

func (w *GDA) Profile() Profile {
	n, d := float64(w.N), float64(w.D)
	return Profile{
		Flops:         3*n*d*d + 3*n*d,
		DenseBytes:    4 * (2*n*d + n + d*d),
		OpsPerLane:    3,
		FPGALogicUtil: 0.536, FPGAMemUtil: 0.968,
		PaperSpeedup: 40.0, PaperPerfWatt: 25.9,
	}
}

// LogReg is batch-gradient logistic regression with a loop-carried weight
// vector (Table 4: 5 iters, 1536 points x 384 dims, scaled to 1024 x 32).
type LogReg struct {
	Iters, N, D int

	x    []float32
	y    []float32
	wOut []float32
	want []float32
}

// NewLogReg returns the benchmark at simulation scale.
func NewLogReg() *LogReg { return &LogReg{Iters: 5, N: 1024, D: 32} }

func (w *LogReg) Name() string { return "LogReg" }

func (w *LogReg) ScaleNote() string {
	return fmt.Sprintf("paper 5 iters, 1536 x 384; simulated %d iters, %d x %d", w.Iters, w.N, w.D)
}

const logRegLR = 0.1

func (w *LogReg) Build() (*dhdl.Program, error) {
	n, d := w.N, w.D
	b := dhdl.NewBuilder("logreg", dhdl.Sequential)
	dX := b.DRAMF32("x", n, d)
	dY := b.DRAMF32("y", n)
	dW := b.DRAMF32("w", d)
	tX := b.SRAM("tx", pattern.F32, n*d)
	tY := b.SRAM("ty", pattern.F32, n)
	tw := b.SRAM("tw", pattern.F32, d)
	dots := b.SRAM("dots", pattern.F32, n)
	errs := b.SRAM("errs", pattern.F32, n)
	grad := b.SRAM("grad", pattern.F32, d)

	b.Load("ldX", dX, dhdl.CI(0), tX, n*d)
	b.Load("ldY", dY, dhdl.CI(0), tY, n)
	b.Load("ldW", dW, dhdl.CI(0), tw, d)
	b.Seq("iters", []dhdl.Counter{dhdl.C(w.Iters)}, func([]dhdl.Expr) {
		b.Compute("zeroDots", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(dots, ix[0], dhdl.CF(0))}
		})
		b.Compute("dot", []dhdl.Counter{dhdl.CPar(n, 2), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			i, j := ix[0], ix[1]
			val := dhdl.Mul(dhdl.Ld(tw, j), dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j)))
			return []*dhdl.Assign{dhdl.AccumAt(dots, pattern.Add, i, val)}
		})
		b.Compute("err", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			i := ix[0]
			sig := dhdl.Div(dhdl.CF(1), dhdl.Add(dhdl.CF(1), dhdl.Exp(dhdl.Neg(dhdl.Ld(dots, i)))))
			return []*dhdl.Assign{dhdl.StoreAt(errs, i, dhdl.Sub(sig, dhdl.Ld(tY, i)))}
		})
		b.Compute("zeroGrad", []dhdl.Counter{dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(grad, ix[0], dhdl.CF(0))}
		})
		b.Compute("grad", []dhdl.Counter{dhdl.CPar(n, 2), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			i, j := ix[0], ix[1]
			val := dhdl.Mul(dhdl.Ld(errs, i), dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j)))
			return []*dhdl.Assign{dhdl.AccumAt(grad, pattern.Add, j, val)}
		})
		b.Compute("update", []dhdl.Counter{dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			j := ix[0]
			nw := dhdl.Sub(dhdl.Ld(tw, j), dhdl.Mul(dhdl.CF(logRegLR/float32(n)), dhdl.Ld(grad, j)))
			return []*dhdl.Assign{dhdl.StoreAt(tw, j, nw)}
		})
	})
	b.Store("stW", dW, dhdl.CI(0), tw, d)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x106)
	w.x = make([]float32, n*d)
	w.y = make([]float32, n)
	for i := 0; i < n; i++ {
		w.y[i] = float32(r.intn(2))
		for j := 0; j < d; j++ {
			w.x[i*d+j] = r.float() + 0.3*w.y[i]
		}
	}
	w.wOut = make([]float32, d)
	// Golden reference (float32 arithmetic to track the pipeline).
	wv := make([]float32, d)
	for it := 0; it < w.Iters; it++ {
		gradv := make([]float32, d)
		for i := 0; i < n; i++ {
			var dot float32
			for j := 0; j < d; j++ {
				dot += wv[j] * w.x[i*d+j]
			}
			sig := float32(1 / (1 + math.Exp(-float64(dot))))
			e := sig - w.y[i]
			for j := 0; j < d; j++ {
				gradv[j] += e * w.x[i*d+j]
			}
		}
		for j := 0; j < d; j++ {
			wv[j] -= logRegLR / float32(n) * gradv[j]
		}
	}
	w.want = wv
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dX, pattern.FromF32("x", w.x)}, {dY, pattern.FromF32("y", w.y)}, {dW, pattern.FromF32("w", w.wOut)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *LogReg) Check(st *dhdl.State) error {
	return checkF32Slice("logreg.w", w.wOut, w.want, 1e-2)
}

func (w *LogReg) Profile() Profile {
	n, d, it := float64(w.N), float64(w.D), float64(w.Iters)
	return Profile{
		Flops:           it * (4*n*d + 10*n),
		DenseBytes:      4 * (n*d + n + d),
		OpsPerLane:      4,
		HeavyOpsPerLane: 1, // sigmoid divide
		SeqIters:        w.Iters,
		SeqChildren:     6,
		PipeDepth:       25,
		FPGALogicUtil:   0.284, FPGAMemUtil: 0.734,
		PaperSpeedup: 11.4, PaperPerfWatt: 9.2,
	}
}

// SGD is minibatch stochastic gradient descent for linear regression; the
// weight vector is loop-carried across minibatches, making the outer loop
// inherently sequential (Table 4: 30 iters, 38,400 points x 768 dims,
// scaled to 2 epochs over 1024 x 32 with 64-point minibatches).
type SGD struct {
	Epochs, N, D, Batch int

	x    []float32
	y    []float32
	wOut []float32
	want []float32
}

// NewSGD returns the benchmark at simulation scale.
func NewSGD() *SGD { return &SGD{Epochs: 2, N: 1024, D: 32, Batch: 64} }

func (w *SGD) Name() string { return "SGD" }

func (w *SGD) ScaleNote() string {
	return fmt.Sprintf("paper 30 iters, 38,400 x 768; simulated %d epochs, %d x %d, batch %d",
		w.Epochs, w.N, w.D, w.Batch)
}

const sgdLR = 0.05

func (w *SGD) Build() (*dhdl.Program, error) {
	n, d, bsz := w.N, w.D, w.Batch
	b := dhdl.NewBuilder("sgd", dhdl.Sequential)
	dX := b.DRAMF32("x", n, d)
	dY := b.DRAMF32("y", n)
	dW := b.DRAMF32("w", d)
	tX := b.SRAM("tx", pattern.F32, bsz*d)
	tY := b.SRAM("ty", pattern.F32, bsz)
	tw := b.SRAM("tw", pattern.F32, d)
	dots := b.SRAM("dots", pattern.F32, bsz)
	grad := b.SRAM("grad", pattern.F32, d)

	b.Load("ldW", dW, dhdl.CI(0), tw, d)
	b.Seq("epochs", []dhdl.Counter{dhdl.C(w.Epochs)}, func([]dhdl.Expr) {
		b.Seq("batches", []dhdl.Counter{dhdl.CStep(0, n, bsz)}, func(bx []dhdl.Expr) {
			b.Load("ldX", dX, dhdl.Mul(bx[0], dhdl.CI(int32(d))), tX, bsz*d)
			b.Load("ldY", dY, bx[0], tY, bsz)
			b.Compute("zeroDots", []dhdl.Counter{dhdl.CPar(bsz, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(dots, ix[0], dhdl.CF(0))}
			})
			b.Compute("dot", []dhdl.Counter{dhdl.C(bsz), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				i, j := ix[0], ix[1]
				val := dhdl.Mul(dhdl.Ld(tw, j), dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j)))
				return []*dhdl.Assign{dhdl.AccumAt(dots, pattern.Add, i, val)}
			})
			b.Compute("zeroGrad", []dhdl.Counter{dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(grad, ix[0], dhdl.CF(0))}
			})
			b.Compute("grad", []dhdl.Counter{dhdl.C(bsz), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				i, j := ix[0], ix[1]
				e := dhdl.Sub(dhdl.Ld(dots, i), dhdl.Ld(tY, i))
				val := dhdl.Mul(e, dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j)))
				return []*dhdl.Assign{dhdl.AccumAt(grad, pattern.Add, j, val)}
			})
			b.Compute("update", []dhdl.Counter{dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				j := ix[0]
				nw := dhdl.Sub(dhdl.Ld(tw, j), dhdl.Mul(dhdl.CF(sgdLR/float32(bsz)), dhdl.Ld(grad, j)))
				return []*dhdl.Assign{dhdl.StoreAt(tw, j, nw)}
			})
		})
	})
	b.Store("stW", dW, dhdl.CI(0), tw, d)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x56D)
	w.x = make([]float32, n*d)
	w.y = make([]float32, n)
	truth := make([]float32, d)
	for j := 0; j < d; j++ {
		truth[j] = r.float() - 0.5
	}
	for i := 0; i < n; i++ {
		var dot float32
		for j := 0; j < d; j++ {
			w.x[i*d+j] = r.float() - 0.5
			dot += truth[j] * w.x[i*d+j]
		}
		w.y[i] = dot + 0.01*(r.float()-0.5)
	}
	w.wOut = make([]float32, d)
	// Golden reference.
	wv := make([]float32, d)
	for e := 0; e < w.Epochs; e++ {
		for b0 := 0; b0 < n; b0 += bsz {
			gradv := make([]float32, d)
			for i := b0; i < b0+bsz; i++ {
				var dot float32
				for j := 0; j < d; j++ {
					dot += wv[j] * w.x[i*d+j]
				}
				e := dot - w.y[i]
				for j := 0; j < d; j++ {
					gradv[j] += e * w.x[i*d+j]
				}
			}
			for j := 0; j < d; j++ {
				wv[j] -= sgdLR / float32(bsz) * gradv[j]
			}
		}
	}
	w.want = wv
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dX, pattern.FromF32("x", w.x)}, {dY, pattern.FromF32("y", w.y)}, {dW, pattern.FromF32("w", w.wOut)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *SGD) Check(st *dhdl.State) error {
	return checkF32Slice("sgd.w", w.wOut, w.want, 1e-2)
}

func (w *SGD) Profile() Profile {
	n, d := float64(w.N), float64(w.D)
	it := float64(w.Epochs) * n / float64(w.Batch)
	return Profile{
		Flops:         float64(w.Epochs) * 4 * n * d,
		DenseBytes:    4 * float64(w.Epochs) * (n*d + n),
		OpsPerLane:    4,
		SeqIters:      int(it),
		SeqChildren:   6,
		PipeDepth:     25,
		FPGALogicUtil: 0.601, FPGAMemUtil: 0.582,
		PaperSpeedup: 6.7, PaperPerfWatt: 15.9,
	}
}

// Kmeans clusters points by iteratively recomputing K centroids with a
// dense HashReduce (Table 4: 50 iters, 1536 points x 96 dims K=20, scaled
// to 4 iters, 1024 x 16, K=8).
type Kmeans struct {
	Iters, N, D, K int

	x       []float32
	centOut []float32
	want    []float32
}

// NewKmeans returns the benchmark at simulation scale.
func NewKmeans() *Kmeans { return &Kmeans{Iters: 4, N: 1024, D: 16, K: 8} }

func (w *Kmeans) Name() string { return "Kmeans" }

func (w *Kmeans) ScaleNote() string {
	return fmt.Sprintf("paper 50 iters, 1536 x 96, K=20; simulated %d iters, %d x %d, K=%d",
		w.Iters, w.N, w.D, w.K)
}

func (w *Kmeans) Build() (*dhdl.Program, error) {
	n, d, k := w.N, w.D, w.K
	b := dhdl.NewBuilder("kmeans", dhdl.Sequential)
	dX := b.DRAMF32("x", n, d)
	dC := b.DRAMF32("cent", k, d)
	tX := b.SRAM("tx", pattern.F32, n*d)
	cent := b.SRAMBanked("cent", pattern.F32, k*d, dhdl.Duplication)
	dists := b.SRAM("dists", pattern.F32, n*k)
	bestD := b.SRAM("bestd", pattern.F32, n)
	bestC := b.SRAM("bestc", pattern.I32, n)
	sums := b.SRAM("sums", pattern.F32, k*d)
	counts := b.SRAM("counts", pattern.F32, k)

	b.Load("ldX", dX, dhdl.CI(0), tX, n*d)
	b.Load("ldC", dC, dhdl.CI(0), cent, k*d)
	b.Seq("iters", []dhdl.Counter{dhdl.C(w.Iters)}, func([]dhdl.Expr) {
		b.Compute("zeroDists", []dhdl.Counter{dhdl.CPar(n*k, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(dists, ix[0], dhdl.CF(0))}
		})
		// dists is laid out [k][n] so the argmin below reads lane-
		// consecutive addresses (stride-1 banking, no conflicts).
		b.Compute("dist", []dhdl.Counter{dhdl.CPar(n, 2), dhdl.C(k), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			i, c, j := ix[0], ix[1], ix[2]
			diff := dhdl.Sub(
				dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j)),
				dhdl.Ld(cent, dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(d))), j)))
			addr := dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(n))), i)
			return []*dhdl.Assign{dhdl.AccumAt(dists, pattern.Add, addr, dhdl.Mul(diff, diff))}
		})
		b.Compute("initBest", []dhdl.Counter{dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{
				dhdl.StoreAt(bestD, ix[0], dhdl.CF(math.MaxFloat32)),
				dhdl.StoreAt(bestC, ix[0], dhdl.CI(0)),
			}
		})
		// Lanes run across points; the loop-carried min runs over c.
		b.Compute("argmin", []dhdl.Counter{dhdl.C(k), dhdl.CPar(n, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			c, i := ix[0], ix[1]
			dv := dhdl.Ld(dists, dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(n))), i))
			better := dhdl.Lt(dv, dhdl.Ld(bestD, i))
			return []*dhdl.Assign{
				dhdl.StoreAtIf(bestD, better, i, dv),
				dhdl.StoreAtIf(bestC, better, i, c),
			}
		})
		b.Compute("zeroSums", []dhdl.Counter{dhdl.CPar(k*d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(sums, ix[0], dhdl.CF(0))}
		})
		b.Compute("zeroCounts", []dhdl.Counter{dhdl.C(k)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(counts, ix[0], dhdl.CF(0))}
		})
		b.Compute("accum", []dhdl.Counter{dhdl.C(n), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			i, j := ix[0], ix[1]
			addr := dhdl.Add(dhdl.Mul(dhdl.Ld(bestC, i), dhdl.CI(int32(d))), j)
			val := dhdl.Ld(tX, dhdl.Add(dhdl.Mul(i, dhdl.CI(int32(d))), j))
			return []*dhdl.Assign{dhdl.AccumAt(sums, pattern.Add, addr, val)}
		})
		b.Compute("count", []dhdl.Counter{dhdl.C(n)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.AccumAt(counts, pattern.Add, dhdl.Ld(bestC, ix[0]), dhdl.CF(1))}
		})
		b.Compute("newCent", []dhdl.Counter{dhdl.C(k), dhdl.CPar(d, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			c, j := ix[0], ix[1]
			addr := dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(d))), j)
			val := dhdl.Div(dhdl.Ld(sums, addr), dhdl.Max(dhdl.Ld(counts, c), dhdl.CF(1)))
			return []*dhdl.Assign{dhdl.StoreAt(cent, addr, val)}
		})
	})
	b.Store("stC", dC, dhdl.CI(0), cent, k*d)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0x4EA25)
	w.x = make([]float32, n*d)
	for i := 0; i < n; i++ {
		c := r.intn(k)
		for j := 0; j < d; j++ {
			w.x[i*d+j] = float32(c) + 0.2*(r.float()-0.5)
		}
	}
	w.centOut = make([]float32, k*d)
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			w.centOut[c*d+j] = w.x[c*d+j] // first K points
		}
	}
	// Golden reference (same float32 order).
	cents := append([]float32(nil), w.centOut...)
	for it := 0; it < w.Iters; it++ {
		sums := make([]float32, k*d)
		cnts := make([]float32, k)
		for i := 0; i < n; i++ {
			best, bd := 0, float32(math.MaxFloat32)
			for c := 0; c < k; c++ {
				var dist float32
				for j := 0; j < d; j++ {
					diff := w.x[i*d+j] - cents[c*d+j]
					dist += diff * diff
				}
				if dist < bd {
					bd, best = dist, c
				}
			}
			cnts[best]++
			for j := 0; j < d; j++ {
				sums[best*d+j] += w.x[i*d+j]
			}
		}
		for c := 0; c < k; c++ {
			div := cnts[c]
			if div == 0 {
				div = 1
			}
			for j := 0; j < d; j++ {
				cents[c*d+j] = sums[c*d+j] / div
			}
		}
	}
	w.want = cents
	if err := dX.Bind(pattern.FromF32("x", w.x)); err != nil {
		return nil, err
	}
	if err := dC.Bind(pattern.FromF32("cent", w.centOut)); err != nil {
		return nil, err
	}
	return p, nil
}

func (w *Kmeans) Check(st *dhdl.State) error {
	return checkF32Slice("kmeans.cent", w.centOut, w.want, 1e-2)
}

func (w *Kmeans) Profile() Profile {
	n, d, k, it := float64(w.N), float64(w.D), float64(w.K), float64(w.Iters)
	return Profile{
		Flops:           it * 3 * n * k * d,
		DenseBytes:      4 * (n*d + k*d),
		OpsPerLane:      3,
		HeavyOpsPerLane: 1, // centroid divide
		SeqIters:        w.Iters,
		SeqChildren:     9,
		PipeDepth:       25,
		FPGALogicUtil:   0.421, FPGAMemUtil: 0.654,
		PaperSpeedup: 6.1, PaperPerfWatt: 11.3,
	}
}

// CNN is a single 3-D convolution layer with sliding-window reuse through
// line buffers (Table 4: model 884,736 / data 57,600, scaled to
// 4-in x 8-out channels over 32x32 with 3x3 kernels).
type CNN struct {
	InCh, OutCh, Img, K int

	in, wts, out []float32
	want         []float32
}

// NewCNN returns the benchmark at simulation scale.
func NewCNN() *CNN { return &CNN{InCh: 8, OutCh: 16, Img: 32, K: 3} }

func (w *CNN) Name() string { return "CNN" }

func (w *CNN) ScaleNote() string {
	return fmt.Sprintf("paper model 884,736 / data 57,600; simulated %dx%d conv %dx%d over %dx%d",
		w.InCh, w.OutCh, w.K, w.K, w.Img, w.Img)
}

func (w *CNN) Build() (*dhdl.Program, error) {
	ic, oc, img, k := w.InCh, w.OutCh, w.Img, w.K
	outW := img - k + 1
	b := dhdl.NewBuilder("cnn", dhdl.Sequential)
	dIn := b.DRAMF32("in", ic, img, img)
	dWt := b.DRAMF32("wt", oc, ic, k, k)
	dOut := b.DRAMF32("out", oc, outW, outW)
	tIn := b.SRAMBanked("tin", pattern.F32, ic*img*img, dhdl.LineBuffer)
	tWt := b.SRAMBanked("twt", pattern.F32, oc*ic*k*k, dhdl.Duplication)
	tOut := b.SRAM("tout", pattern.F32, oc*outW*outW)

	b.Load("ldIn", dIn, dhdl.CI(0), tIn, ic*img*img)
	b.Load("ldWt", dWt, dhdl.CI(0), tWt, oc*ic*k*k)
	b.Pipe("outCh", []dhdl.Counter{dhdl.CPar(oc, 4)}, func(ox []dhdl.Expr) {
		o := ox[0]
		b.Compute("zeroOut", []dhdl.Counter{dhdl.CPar(outW*outW, 16)}, func(zx []dhdl.Expr) []*dhdl.Assign {
			addr := dhdl.Add(dhdl.Mul(o, dhdl.CI(int32(outW*outW))), zx[0])
			return []*dhdl.Assign{dhdl.StoreAt(tOut, addr, dhdl.CF(0))}
		})
		b.Compute("conv", []dhdl.Counter{
			dhdl.CPar(outW, 4), dhdl.C(ic), dhdl.C(k), dhdl.C(k), dhdl.CPar(outW, 16),
		}, func(cx []dhdl.Expr) []*dhdl.Assign {
			y, c, ky, kx, x := cx[0], cx[1], cx[2], cx[3], cx[4]
			inAddr := dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(img*img))),
				dhdl.Add(dhdl.Mul(dhdl.Add(y, ky), dhdl.CI(int32(img))), dhdl.Add(x, kx)))
			wtAddr := dhdl.Add(dhdl.Mul(o, dhdl.CI(int32(ic*k*k))),
				dhdl.Add(dhdl.Mul(c, dhdl.CI(int32(k*k))),
					dhdl.Add(dhdl.Mul(ky, dhdl.CI(int32(k))), kx)))
			outAddr := dhdl.Add(dhdl.Mul(o, dhdl.CI(int32(outW*outW))),
				dhdl.Add(dhdl.Mul(y, dhdl.CI(int32(outW))), x))
			val := dhdl.Mul(dhdl.Ld(tIn, inAddr), dhdl.Ld(tWt, wtAddr))
			return []*dhdl.Assign{dhdl.AccumAt(tOut, pattern.Add, outAddr, val)}
		})
	})
	b.Store("stOut", dOut, dhdl.CI(0), tOut, oc*outW*outW)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := newRNG(0xC44)
	w.in = make([]float32, ic*img*img)
	w.wts = make([]float32, oc*ic*k*k)
	for i := range w.in {
		w.in[i] = r.float() - 0.5
	}
	for i := range w.wts {
		w.wts[i] = r.float() - 0.5
	}
	w.out = make([]float32, oc*outW*outW)
	w.want = make([]float32, oc*outW*outW)
	for o := 0; o < oc; o++ {
		for y := 0; y < outW; y++ {
			for x := 0; x < outW; x++ {
				var s float32
				for c := 0; c < ic; c++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							s += w.in[c*img*img+(y+ky)*img+(x+kx)] * w.wts[o*ic*k*k+c*k*k+ky*k+kx]
						}
					}
				}
				w.want[o*outW*outW+y*outW+x] = s
			}
		}
	}
	for _, bind := range []struct {
		d *dhdl.DRAMBuf
		c *pattern.Collection
	}{
		{dIn, pattern.FromF32("in", w.in)}, {dWt, pattern.FromF32("wt", w.wts)}, {dOut, pattern.FromF32("out", w.out)},
	} {
		if err := bind.d.Bind(bind.c); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (w *CNN) Check(st *dhdl.State) error {
	return checkF32Slice("cnn.out", w.out, w.want, 1e-3)
}

func (w *CNN) Profile() Profile {
	ic, oc, k := float64(w.InCh), float64(w.OutCh), float64(w.K)
	outW := float64(w.Img - w.K + 1)
	return Profile{
		Flops:         2 * oc * outW * outW * ic * k * k,
		DenseBytes:    4 * (ic*float64(w.Img*w.Img) + oc*ic*k*k + oc*outW*outW),
		OpsPerLane:    2,
		FPGALogicUtil: 0.868, FPGAMemUtil: 0.99,
		PaperSpeedup: 95.1, PaperPerfWatt: 76.9,
	}
}
