package workloads

import (
	"context"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/sim"
)

// TestFunctional runs every benchmark through the reference interpreter
// and checks its outputs against the golden CPU implementation.
func TestFunctional(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			p, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			st, err := dhdl.Run(p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := b.Check(st); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompiles verifies every benchmark fits the default 16x8 Plasticine
// chip and reports plausible utilization.
func TestCompiles(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			p, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			m, err := compiler.Compile(p, arch.Default())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			u := m.Util
			if u.PCUs == 0 {
				t.Error("no PCUs used")
			}
			if u.PCUFrac > 1 || u.PMUFrac > 1 || u.AGFrac > 1 {
				t.Errorf("over-utilized: %+v", u)
			}
		})
	}
}

// TestSimulated runs every benchmark through the cycle-level simulator and
// re-checks functional outputs (the simulator shares the interpreter's
// functional engine, so this guards the whole compile+simulate path).
func TestSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation of all benchmarks is slow")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			p, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			m, err := compiler.Compile(p, arch.Default())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, st, err := sim.Simulate(context.Background(), m, sim.Options{})
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if err := b.Check(st); err != nil {
				t.Fatal(err)
			}
			if res.Cycles <= 0 {
				t.Errorf("cycles = %d", res.Cycles)
			}
			t.Logf("%s: %d cycles, %.1f us, %.1f W, %d acts, DRAM %d KB read %d KB written (wall %v)",
				b.Name(), res.Cycles, res.Seconds*1e6, res.PowerW, res.Activities,
				res.DRAM.BytesRead/1024, res.DRAM.BytesWritten/1024, res.WallTime)
		})
	}
}

func TestProfilesPopulated(t *testing.T) {
	for _, b := range All() {
		p := b.Profile()
		if p.Flops <= 0 {
			t.Errorf("%s: Flops = %v", b.Name(), p.Flops)
		}
		if p.DenseBytes <= 0 {
			t.Errorf("%s: DenseBytes = %v", b.Name(), p.DenseBytes)
		}
		if p.FPGALogicUtil <= 0 || p.FPGALogicUtil > 1 {
			t.Errorf("%s: FPGALogicUtil = %v", b.Name(), p.FPGALogicUtil)
		}
		if p.PaperSpeedup <= 0 {
			t.Errorf("%s: PaperSpeedup = %v", b.Name(), p.PaperSpeedup)
		}
		if b.ScaleNote() == "" {
			t.Errorf("%s: empty scale note", b.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"InnerProduct", "GEMM", "BFS"} {
		b, err := ByName(want)
		if err != nil || b.Name() != want {
			t.Errorf("ByName(%q) = %v, %v", want, b, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestAllThirteen(t *testing.T) {
	if got := len(All()); got != 13 {
		t.Errorf("All() returned %d benchmarks, Table 4 lists 13", got)
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name()] {
			t.Errorf("duplicate benchmark %q", b.Name())
		}
		seen[b.Name()] = true
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
		if v := r.intn(13); v < 0 || v >= 13 {
			t.Fatalf("intn out of range: %v", v)
		}
	}
}
