package trace

import (
	"strings"
	"testing"
)

// TestPatternReportSumsToMakespan: the exclusive attribution plus the
// recovery and idle buckets reproduce the makespan exactly, with concurrent
// groups splitting — not double-counting — overlapping time.
func TestPatternReportSumsToMakespan(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "loadA", "Fold/load:a", UnitTransfer)
	c.RegisterUnit(1, "mac#0", "Fold/F", UnitCompute)
	c.RegisterUnit(2, "mac#1", "Fold/F", UnitCompute)
	// loadA: busy 0-40, dram-wait 40-100.
	c.Slice(0, "xfer", 0, 100, 40, CauseNone)
	// macs overlap loadA's stall and each other; copies share one group.
	c.Slice(1, "fire", 50, 150, 100, CauseInputStarved)
	c.Slice(2, "fire", 60, 140, 80, CauseInputStarved)
	c.Finish(200)

	pr := c.PatternReport("dot")
	if pr.TotalCycles != 200 {
		t.Fatalf("total = %d, want 200", pr.TotalCycles)
	}
	if got := pr.AttributedTotal(); got != 200 {
		t.Fatalf("attributed total = %d, want exactly the makespan 200", got)
	}
	if len(pr.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (loadA, Fold/F): %+v", len(pr.Rows), pr.Rows)
	}
	byOrigin := map[string]*PatternRow{}
	for i := range pr.Rows {
		byOrigin[pr.Rows[i].Origin] = &pr.Rows[i]
	}
	load, f := byOrigin["Fold/load:a"], byOrigin["Fold/F"]
	if load == nil || f == nil {
		t.Fatalf("missing origin rows: %+v", pr.Rows)
	}
	if f.Units != 2 {
		t.Errorf("Fold/F spans %d units, want 2 unroll copies", f.Units)
	}
	// loadA owns its busy interval [0,40) (registered first, so it also wins
	// no contested segments here) plus its dram-wait [40,50) until a mac
	// turns busy; macs own [50,150); [150,200) is idle.
	if load.Attributed != 50 {
		t.Errorf("loadA attributed %d, want 50", load.Attributed)
	}
	if load.AttrBusy != 40 || load.AttrStall != 10 {
		t.Errorf("loadA split busy/stall = %d/%d, want 40/10", load.AttrBusy, load.AttrStall)
	}
	if f.Attributed != 100 {
		t.Errorf("Fold/F attributed %d, want 100 (the two macs overlap)", f.Attributed)
	}
	if pr.Idle != 50 {
		t.Errorf("idle = %d, want 50", pr.Idle)
	}
}

// TestPatternReportBusyBeatsStall: a segment where one group is busy and
// another merely stalled goes to the busy group.
func TestPatternReportBusyBeatsStall(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "ag", "load", UnitTransfer)
	c.RegisterUnit(1, "pcu", "body", UnitCompute)
	c.Slice(0, "xfer", 0, 100, 10, CauseNone) // stalled 10-100
	c.Slice(1, "fire", 20, 80, 60, CauseNone) // busy 20-80
	c.Finish(100)
	pr := c.PatternReport("t")
	byOrigin := map[string]*PatternRow{}
	for i := range pr.Rows {
		byOrigin[pr.Rows[i].Origin] = &pr.Rows[i]
	}
	if got := byOrigin["body"].Attributed; got != 60 {
		t.Errorf("busy group attributed %d, want the full 60-cycle busy window", got)
	}
	if got := byOrigin["load"].Attributed; got != 40 {
		t.Errorf("stalled group attributed %d, want 40 (10 busy + 30 uncontested stall)", got)
	}
	if pr.AttributedTotal() != 100 {
		t.Errorf("attribution does not cover the makespan: %d", pr.AttributedTotal())
	}
}

// TestPatternReportRecoveryWindows: fabric-wide windows claim their span
// before any group does.
func TestPatternReportRecoveryWindows(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "body", UnitCompute)
	c.Slice(0, "fire", 0, 100, 100, CauseNone)
	c.Window(CauseReconfig, 40, 60)
	c.Finish(100)
	pr := c.PatternReport("t")
	if pr.Recovery != 20 {
		t.Errorf("recovery = %d, want 20", pr.Recovery)
	}
	if got := pr.Rows[0].Attributed; got != 80 {
		t.Errorf("body attributed %d, want 80 (window carved out)", got)
	}
	if pr.AttributedTotal() != 100 {
		t.Errorf("attribution does not cover the makespan: %d", pr.AttributedTotal())
	}
}

// TestPatternRowAggregatesMatchUnitProfiles is the round-trip guarantee: a
// group's Busy/Stalls/Idle aggregates equal the sums over its member units'
// profiles from Report().
func TestPatternRowAggregatesMatchUnitProfiles(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "loadA", "Fold/load:a", UnitTransfer)
	c.RegisterUnit(1, "mac#0", "Fold/F", UnitCompute)
	c.RegisterUnit(2, "mac#1", "Fold/F", UnitCompute)
	c.Slice(0, "xfer", 0, 100, 40, CauseNone)
	c.Slice(1, "fire", 50, 150, 100, CauseInputStarved)
	c.Slice(2, "fire", 60, 140, 80, CauseDrain)
	c.Window(CauseReconfig, 150, 170)
	c.Finish(200)

	rep := c.Report()
	pr := c.PatternReport("dot")
	want := map[string]*PatternRow{}
	for i := range rep.Units {
		u := &rep.Units[i]
		row, ok := want[u.Origin]
		if !ok {
			row = &PatternRow{Origin: u.Origin}
			want[u.Origin] = row
		}
		row.Units++
		row.Busy += u.Busy
		row.Idle += u.Idle
		for cse, v := range u.Stalls {
			row.Stalls[cse] += v
		}
	}
	for i := range pr.Rows {
		got := &pr.Rows[i]
		w := want[got.Origin]
		if w == nil {
			t.Fatalf("row %q has no unit-profile counterpart", got.Origin)
		}
		if got.Units != w.Units || got.Busy != w.Busy || got.Idle != w.Idle || got.Stalls != w.Stalls {
			t.Errorf("row %q aggregates diverge from unit profiles:\n got %+v\nwant %+v",
				got.Origin, got, w)
		}
	}
	if pr.AttributedTotal() != 200 {
		t.Errorf("attribution does not cover the makespan: %d", pr.AttributedTotal())
	}
}

// TestPatternReportEmptyOriginFallsBack: units registered without origins
// group under their own names.
func TestPatternReportEmptyOriginFallsBack(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "solo", "", UnitCompute)
	c.Slice(0, "fire", 0, 50, 50, CauseNone)
	c.Finish(50)
	pr := c.PatternReport("t")
	if len(pr.Rows) != 1 || pr.Rows[0].Origin != "solo" {
		t.Fatalf("fallback grouping wrong: %+v", pr.Rows)
	}
	if pr.AttributedTotal() != 50 {
		t.Errorf("attribution does not cover the makespan: %d", pr.AttributedTotal())
	}
}

// TestChromeTraceCompileTrack: compile spans appear as their own process and
// the emitted document still passes self-validation.
func TestChromeTraceCompileTrack(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "body", UnitCompute)
	c.Slice(0, "fire", 0, 50, 50, CauseNone)
	c.AddCompileSpan("allocate", "2 vPCUs", 0, 1500)
	c.AddCompileSpan("place", "", 1500, 2500)
	c.Finish(50)
	data, err := c.ChromeTrace("t")
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"compiler"`, `"allocate"`, `"place"`, `"compile"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace lacks %s", want)
		}
	}
}
