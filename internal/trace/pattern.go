package trace

import "sort"

// PatternRow is one source-level origin group's share of a run. Two kinds of
// numbers live here:
//
//   - Attributed* is the group's exclusive slice of the makespan from the
//     timeline sweep (see Collector.PatternReport): every cycle of the run is
//     handed to exactly one group (or the report-level Recovery/Idle
//     buckets), so summing Attributed over all rows plus Recovery plus Idle
//     reproduces TotalCycles exactly.
//   - Busy/Stalls/Idle are plain aggregates over the group's member units
//     (each unit counts its full timeline), useful for intensity but not
//     additive across groups.
type PatternRow struct {
	Origin string `json:"origin"`
	Units  int    `json:"units"`

	Attributed int64 `json:"attributed_cycles"`
	// AttrBusy is the part of Attributed during which the group was busy;
	// AttrStall is the part during which it was only stalled (no group busy).
	AttrBusy  int64 `json:"attributed_busy_cycles"`
	AttrStall int64 `json:"attributed_stall_cycles"`

	Busy   int64            `json:"busy_cycles"`
	Idle   int64            `json:"idle_cycles"`
	Stalls [NumCauses]int64 `json:"stall_cycles"`
}

// StallTotal sums the group's aggregate stall buckets.
func (p *PatternRow) StallTotal() int64 {
	var s int64
	for _, v := range p.Stalls {
		s += v
	}
	return s
}

// DominantStall returns the group's largest aggregate stall bucket.
func (p *PatternRow) DominantStall() (StallCause, int64) {
	best, bestN := CauseNone, int64(0)
	for c := CauseInputStarved; c < NumCauses; c++ {
		if p.Stalls[c] > bestN {
			best, bestN = c, p.Stalls[c]
		}
	}
	return best, bestN
}

// PatternReport rolls a run up by source-level origin instead of by physical
// unit: the source profile a pattern author reads. The invariant
//
//	sum(Rows[i].Attributed) + Recovery + Idle == TotalCycles
//
// holds exactly by construction.
type PatternReport struct {
	Benchmark   string       `json:"benchmark,omitempty"`
	TotalCycles int64        `json:"total_cycles"`
	Rows        []PatternRow `json:"rows"`
	// Recovery is the makespan share inside fabric-wide drain/reconfig
	// windows (attributed to no group: nothing makes progress there).
	Recovery int64 `json:"recovery_cycles"`
	// Idle is the makespan share during which no group was busy or stalled.
	Idle int64 `json:"idle_cycles"`
}

// interval is a half-open [lo,hi) cycle range.
type interval struct{ lo, hi int64 }

// mergeIntervals sorts and coalesces overlapping/adjacent intervals.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		if last := &out[len(out)-1]; iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// coverage marks, for each elementary segment, whether any of the (merged,
// sorted) intervals covers it. bounds has len(segments)+1 entries.
func coverage(bounds []int64, ivs []interval) []bool {
	cov := make([]bool, len(bounds)-1)
	k := 0
	for i := 0; i < len(cov); i++ {
		lo, hi := bounds[i], bounds[i+1]
		for k < len(ivs) && ivs[k].hi <= lo {
			k++
		}
		if k < len(ivs) && ivs[k].lo < hi {
			cov[i] = true
		}
	}
	return cov
}

// PatternReport rolls the collected trace up by unit origin. Attribution is a
// timeline sweep: the makespan is cut at every activity/window boundary, and
// each elementary segment is handed to exactly one owner —
//
//  1. a fabric-wide recovery window, if one covers it;
//  2. else the first-registered origin group busy during it (busy means the
//     leading Busy cycles of an activity slice — the model used throughout
//     this package for splitting a slice into work and dram-wait);
//  3. else the first-registered group stalled during it (the dram-wait tail
//     of a slice, or an inter-activity gap with an attributed cause);
//  4. else the report-level Idle bucket.
//
// "First-registered" makes ties deterministic; because concurrent groups
// split the timeline rather than double-count it, the rows sum exactly to
// the makespan — the property the per-unit Report cannot offer (every unit
// there spans the whole run).
func (c *Collector) PatternReport(benchmark string) *PatternReport {
	pr := &PatternReport{Benchmark: benchmark, TotalCycles: c.total}
	if c.total <= 0 {
		return pr
	}
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		if v > c.total {
			return c.total
		}
		return v
	}

	// Group units by origin, in unit-registration order.
	groupOf := map[string]int{}
	var busyIvs, stallIvs [][]interval
	for _, u := range c.units {
		origin := u.origin
		if origin == "" {
			origin = u.name
		}
		g, ok := groupOf[origin]
		if !ok {
			g = len(pr.Rows)
			groupOf[origin] = g
			pr.Rows = append(pr.Rows, PatternRow{Origin: origin})
			busyIvs = append(busyIvs, nil)
			stallIvs = append(stallIvs, nil)
		}
		pr.Rows[g].Units++

		slices := append([]Slice(nil), u.slices...)
		sort.Slice(slices, func(i, j int) bool { return slices[i].Start < slices[j].Start })
		cursor := int64(0)
		for _, s := range slices {
			if s.Gap != CauseNone && s.Start > cursor {
				stallIvs[g] = append(stallIvs[g], interval{clamp(cursor), clamp(s.Start)})
			}
			busy := s.Busy
			if busy > s.End-s.Start {
				busy = s.End - s.Start
			}
			if busy > 0 {
				busyIvs[g] = append(busyIvs[g], interval{clamp(s.Start), clamp(s.Start + busy)})
			}
			if s.Start+busy < s.End {
				stallIvs[g] = append(stallIvs[g], interval{clamp(s.Start + busy), clamp(s.End)})
			}
			if s.End > cursor {
				cursor = s.End
			}
		}
	}

	// Cut the makespan at every boundary.
	boundSet := map[int64]struct{}{0: {}, c.total: {}}
	addBounds := func(ivs []interval) {
		for _, iv := range ivs {
			boundSet[iv.lo] = struct{}{}
			boundSet[iv.hi] = struct{}{}
		}
	}
	var windowIvs []interval
	for _, w := range c.windows {
		windowIvs = append(windowIvs, interval{clamp(w.From), clamp(w.To)})
	}
	addBounds(windowIvs)
	for g := range pr.Rows {
		busyIvs[g] = mergeIntervals(busyIvs[g])
		stallIvs[g] = mergeIntervals(stallIvs[g])
		addBounds(busyIvs[g])
		addBounds(stallIvs[g])
	}
	bounds := make([]int64, 0, len(boundSet))
	for b := range boundSet {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	windowAt := coverage(bounds, mergeIntervals(windowIvs))
	busyAt := make([][]bool, len(pr.Rows))
	stallAt := make([][]bool, len(pr.Rows))
	for g := range pr.Rows {
		busyAt[g] = coverage(bounds, busyIvs[g])
		stallAt[g] = coverage(bounds, stallIvs[g])
	}

	// Hand each segment to exactly one owner.
	for i := 0; i < len(bounds)-1; i++ {
		length := bounds[i+1] - bounds[i]
		if length <= 0 {
			continue
		}
		if windowAt[i] {
			pr.Recovery += length
			continue
		}
		owner := -1
		for g := range pr.Rows {
			if busyAt[g][i] {
				owner = g
				break
			}
		}
		if owner >= 0 {
			pr.Rows[owner].Attributed += length
			pr.Rows[owner].AttrBusy += length
			continue
		}
		for g := range pr.Rows {
			if stallAt[g][i] {
				owner = g
				break
			}
		}
		if owner >= 0 {
			pr.Rows[owner].Attributed += length
			pr.Rows[owner].AttrStall += length
			continue
		}
		pr.Idle += length
	}

	// Aggregate per-unit accounting into the rows (not additive across
	// groups; kept for intensity and stall-cause breakdowns).
	rep := c.Report()
	for i := range rep.Units {
		u := &rep.Units[i]
		g, ok := groupOf[u.Origin]
		if !ok {
			continue
		}
		row := &pr.Rows[g]
		row.Busy += u.Busy
		row.Idle += u.Idle
		for cse, v := range u.Stalls {
			row.Stalls[cse] += v
		}
	}

	sort.SliceStable(pr.Rows, func(i, j int) bool {
		if pr.Rows[i].Attributed != pr.Rows[j].Attributed {
			return pr.Rows[i].Attributed > pr.Rows[j].Attributed
		}
		return pr.Rows[i].Origin < pr.Rows[j].Origin
	})
	return pr
}

// AttributedTotal sums the exclusive shares including the recovery and idle
// buckets; it equals TotalCycles by construction.
func (pr *PatternReport) AttributedTotal() int64 {
	n := pr.Recovery + pr.Idle
	for i := range pr.Rows {
		n += pr.Rows[i].Attributed
	}
	return n
}
