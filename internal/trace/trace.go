// Package trace is the cycle-level observability subsystem: per-unit
// busy/stall/idle counters with stall-cause attribution, per-link network
// utilization, FIFO occupancy high-water marks and per-channel DRAM
// counters, rolled into a paper-style utilization report (Section 5 explains
// every speedup through exactly these numbers) and exportable as Chrome
// trace-event JSON.
//
// The simulator talks to the subsystem through the Recorder interface; a nil
// Recorder disables tracing entirely and leaves the simulation hot loop
// unchanged. The package has no dependencies outside the standard library,
// so every layer (sim, dram, core, cmd) can feed it without import cycles.
package trace

import "fmt"

// StallCause classifies why a unit was not doing useful work. The taxonomy
// follows the paper's control protocols (Section 3.5) plus the recovery
// controller's fabric-wide stalls:
//
//   - input-starved: waiting on an upstream producer's results (token or
//     streaming credit not yet granted).
//   - output-backpressured: waiting for downstream consumers to drain the
//     buffer version this unit wants to overwrite (N-buffer WAR credits).
//   - dram-wait: waiting on the memory system — outstanding bursts in
//     flight, a full channel queue, or a load dependency.
//   - drain: pipeline drain at a sequential token barrier, or the recovery
//     controller's quiescence protocol.
//   - reconfig: fabric stalled while new unit/switch configurations stream
//     in after a mid-run repair.
type StallCause int

const (
	// CauseNone marks a gap with no attributable dependency: plain idleness.
	CauseNone StallCause = iota
	CauseInputStarved
	CauseOutputBackpressure
	CauseDRAMWait
	CauseDrain
	CauseReconfig

	// NumCauses sizes per-cause accumulator arrays.
	NumCauses
)

var causeNames = [NumCauses]string{
	CauseNone:               "idle",
	CauseInputStarved:       "input-starved",
	CauseOutputBackpressure: "output-backpressured",
	CauseDRAMWait:           "dram-wait",
	CauseDrain:              "drain",
	CauseReconfig:           "reconfig",
}

func (c StallCause) String() string {
	if c < 0 || c >= NumCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// UnitKind classifies a traced unit.
type UnitKind int

const (
	// UnitCompute is a PCU pipeline (one unroll copy-lane of a compute leaf).
	UnitCompute UnitKind = iota
	// UnitTransfer is an address generator plus its coalescing unit.
	UnitTransfer
)

func (k UnitKind) String() string {
	if k == UnitTransfer {
		return "ag"
	}
	return "pcu"
}

// DRAMChannelCounters is one memory channel's activity, mirrored from the
// DRAM model (kept as plain fields so this package stays dependency-free).
type DRAMChannelCounters struct {
	Reads, Writes int64
	RowHits       int64
	RowMisses     int64
	RowConflicts  int64
	Retries       int64
	MaxQueueOcc   int
}

// Window is a fabric-wide stall interval (recovery drain or reconfiguration)
// during which no unit makes forward progress.
type Window struct {
	Cause    StallCause
	From, To int64
}

// Recorder receives observability events from the simulator. All methods are
// called outside the per-cycle hot loop: unit activity is replayed once from
// the resolved schedule when a run finishes, so a nil Recorder costs nothing
// and a live one costs O(activities), not O(cycles).
type Recorder interface {
	// RegisterUnit declares a physical unit before any slice referencing it.
	// origin names the source-level pattern node (or controller) the unit was
	// compiled from; empty falls back to name.
	RegisterUnit(id int, name, origin string, kind UnitKind)
	// Slice records one activity interval [start,end) on a unit. busy is the
	// portion of the interval spent doing useful work (the remainder is
	// dram-wait for transfers); gap attributes the idle time between the
	// unit's previous slice and start (CauseNone = plain idle).
	Slice(unit int, label string, start, end, busy int64, gap StallCause)
	// FIFOHighWater records a unit's outstanding-burst FIFO occupancy peak.
	FIFOHighWater(unit int, depth int)
	// Link records one switch-fabric link's static route count and the DRAM
	// traffic bytes that crossed it during the run.
	Link(name string, routes int, bytes int64, bytesPerCycle float64)
	// DRAMChannel records one memory channel's counters.
	DRAMChannel(ch int, c DRAMChannelCounters)
	// Window records a fabric-wide drain/reconfig stall interval.
	Window(cause StallCause, from, to int64)
	// Finish seals the trace with the run's total cycle count (makespan).
	Finish(totalCycles int64)
}

// Slice is one recorded activity interval (exported for the Chrome trace).
type Slice struct {
	Unit  int
	Label string
	Start int64
	End   int64
	Busy  int64
	Gap   StallCause
}

type unitInfo struct {
	name    string
	origin  string
	kind    UnitKind
	hiWater int
	slices  []Slice
}

// LinkStat is one link's recorded usage.
type LinkStat struct {
	Name          string
	Routes        int
	Bytes         int64
	BytesPerCycle float64
}

// CompileSpan is one compiler-pass span shown on the Chrome trace's
// dedicated compiler process track. Times are host wall-clock nanoseconds
// relative to the start of compilation (a different clock than the fabric's
// cycle timestamps, which is why the spans live in their own process).
type CompileSpan struct {
	Name    string
	Detail  string
	StartNS int64
	DurNS   int64
}

// Collector is the standard Recorder: it accumulates everything a run emits
// and rolls it into a Report (and a Chrome trace) on demand.
type Collector struct {
	units    []unitInfo
	links    []LinkStat
	channels []DRAMChannelCounters
	windows  []Window
	compile  []CompileSpan
	total    int64
	finished bool
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

var _ Recorder = (*Collector)(nil)

// RegisterUnit implements Recorder.
func (c *Collector) RegisterUnit(id int, name, origin string, kind UnitKind) {
	for id >= len(c.units) {
		c.units = append(c.units, unitInfo{})
	}
	c.units[id].name = name
	if origin == "" {
		origin = name
	}
	c.units[id].origin = origin
	c.units[id].kind = kind
}

// Slice implements Recorder.
func (c *Collector) Slice(unit int, label string, start, end, busy int64, gap StallCause) {
	if unit < 0 || unit >= len(c.units) {
		return
	}
	if end < start {
		end = start
	}
	if busy > end-start {
		busy = end - start
	}
	c.units[unit].slices = append(c.units[unit].slices,
		Slice{Unit: unit, Label: label, Start: start, End: end, Busy: busy, Gap: gap})
}

// FIFOHighWater implements Recorder.
func (c *Collector) FIFOHighWater(unit int, depth int) {
	if unit < 0 || unit >= len(c.units) {
		return
	}
	if depth > c.units[unit].hiWater {
		c.units[unit].hiWater = depth
	}
}

// Link implements Recorder.
func (c *Collector) Link(name string, routes int, bytes int64, bytesPerCycle float64) {
	c.links = append(c.links, LinkStat{Name: name, Routes: routes, Bytes: bytes, BytesPerCycle: bytesPerCycle})
}

// DRAMChannel implements Recorder.
func (c *Collector) DRAMChannel(ch int, cc DRAMChannelCounters) {
	for ch >= len(c.channels) {
		c.channels = append(c.channels, DRAMChannelCounters{})
	}
	c.channels[ch] = cc
}

// Window implements Recorder.
func (c *Collector) Window(cause StallCause, from, to int64) {
	if to > from {
		c.windows = append(c.windows, Window{Cause: cause, From: from, To: to})
	}
}

// AddCompileSpan attaches one compiler-pass span (outside the Recorder
// interface: compile passes happen before simulation starts, so the caller —
// not the simulator — feeds them).
func (c *Collector) AddCompileSpan(name, detail string, startNS, durNS int64) {
	if startNS < 0 {
		startNS = 0
	}
	if durNS < 0 {
		durNS = 0
	}
	c.compile = append(c.compile, CompileSpan{Name: name, Detail: detail, StartNS: startNS, DurNS: durNS})
}

// Finish implements Recorder.
func (c *Collector) Finish(totalCycles int64) {
	c.total = totalCycles
	c.finished = true
}
