package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ChromeEvent is one trace-event in the Chrome trace-event format
// (catapult "JSON Array Format"); chrome://tracing and Perfetto load it
// directly. Complete events ("ph":"X") carry ts+dur; metadata events
// ("ph":"M") name the process and threads.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level document.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// OtherData carries run-level metadata (total cycles, bottleneck).
	OtherData map[string]any `json:"otherData,omitempty"`
}

// ChromeTrace renders the collected slices as a Chrome trace: one thread
// per unit, a complete event per activity slice, and instant-style complete
// events for recovery windows on a dedicated "recovery" thread. Timestamps
// are cycles interpreted as microseconds (1 GHz fabric: 1 cycle = 1 ns, so
// a displayed "us" is a real ns — the shapes, not the absolute unit, are
// what the viewer is for). Compiler-pass spans (AddCompileSpan) appear as a
// second process ("compiler", pid 1) with wall-clock microsecond timestamps
// from the start of compilation. Events are sorted by timestamp, so
// consumers see monotonic ts.
func (c *Collector) ChromeTrace(benchmark string) ([]byte, error) {
	doc := ChromeTrace{DisplayTimeUnit: "ns",
		OtherData: map[string]any{"total_cycles": c.total}}
	if benchmark != "" {
		doc.OtherData["benchmark"] = benchmark
	}
	doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "plasticine"},
	})
	const recoveryTid = 0 // units start at tid 1
	doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
		Name: "thread_name", Ph: "M", Pid: 0, Tid: recoveryTid,
		Args: map[string]any{"name": "recovery"},
	})
	var events []ChromeEvent
	for id, u := range c.units {
		tid := id + 1
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("%s [%s]", u.name, u.kind)},
		})
		for _, s := range u.slices {
			events = append(events, ChromeEvent{
				Name: s.Label, Ph: "X", Cat: u.kind.String(),
				Ts: s.Start, Dur: s.End - s.Start, Pid: 0, Tid: tid,
				Args: map[string]any{"busy_cycles": s.Busy},
			})
		}
	}
	for _, w := range c.windows {
		events = append(events, ChromeEvent{
			Name: w.Cause.String(), Ph: "X", Cat: "recovery",
			Ts: w.From, Dur: w.To - w.From, Pid: 0, Tid: recoveryTid,
		})
	}
	if len(c.compile) > 0 {
		const compilerPid = 1
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: compilerPid,
			Args: map[string]any{"name": "compiler"},
		}, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: compilerPid, Tid: 0,
			Args: map[string]any{"name": "passes"},
		})
		for _, sp := range c.compile {
			args := map[string]any{"wall_ns": sp.DurNS}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			events = append(events, ChromeEvent{
				Name: sp.Name, Ph: "X", Cat: "compile",
				Ts: sp.StartNS / 1000, Dur: sp.DurNS / 1000,
				Pid: compilerPid, Tid: 0, Args: args,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	doc.TraceEvents = append(doc.TraceEvents, events...)
	out, err := json.MarshalIndent(&doc, "", " ")
	if err != nil {
		return nil, fmt.Errorf("trace: chrome encode: %w", err)
	}
	if err := ValidateChrome(out); err != nil {
		return nil, fmt.Errorf("trace: emitted chrome trace failed self-validation: %w", err)
	}
	return out, nil
}

// ValidateChrome round-trips an encoded Chrome trace through encoding/json
// and checks the structural invariants consumers rely on: at least one
// event, non-negative timestamps and durations, and monotonically
// non-decreasing timestamps among the "X" (complete) events.
func ValidateChrome(data []byte) error {
	var doc ChromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: chrome trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: chrome trace has no events")
	}
	last := int64(-1)
	complete := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			complete++
		default:
			return fmt.Errorf("trace: event %d has unsupported phase %q", i, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative ts/dur (%d/%d)", i, ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Ts < last {
			return fmt.Errorf("trace: event %d (%s) breaks ts monotonicity (%d after %d)", i, ev.Name, ev.Ts, last)
		}
		last = ev.Ts
	}
	if complete == 0 {
		return fmt.Errorf("trace: chrome trace has no complete events")
	}
	return nil
}

// CountersJSON renders the rolled-up Report as indented machine-readable
// JSON (the flat counters artefact for the bench trajectory).
func (c *Collector) CountersJSON(benchmark string) ([]byte, error) {
	r := c.Report()
	r.Benchmark = benchmark
	return json.MarshalIndent(r, "", "  ")
}
