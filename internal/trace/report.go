package trace

import (
	"fmt"
	"sort"
)

// BoundClass names the dominant bottleneck of a run.
type BoundClass string

const (
	ComputeBound  BoundClass = "compute-bound"
	MemoryBound   BoundClass = "memory-bound"
	NetworkBound  BoundClass = "network-bound"
	RecoveryBound BoundClass = "recovery-bound"
)

// UnitProfile is one unit's cycle accounting. The invariant
// Busy + sum(Stalls) + Idle == Total holds exactly: every cycle of the run
// is attributed to exactly one bucket.
type UnitProfile struct {
	Name string `json:"name"`
	// Origin is the source-level pattern node the unit was compiled from
	// (falls back to Name for hand-written DHDL).
	Origin string `json:"origin"`
	Kind   string `json:"kind"` // "pcu" or "ag"

	Total int64 `json:"total_cycles"`
	Busy  int64 `json:"busy_cycles"`
	Idle  int64 `json:"idle_cycles"`
	// Stalls indexes by StallCause; Stalls[CauseNone] is always zero (that
	// bucket is Idle).
	Stalls [NumCauses]int64 `json:"stall_cycles"`

	Slices        int `json:"activity_slices"`
	FIFOHighWater int `json:"fifo_high_water"`
}

// StallTotal sums every stall bucket.
func (u *UnitProfile) StallTotal() int64 {
	var s int64
	for _, v := range u.Stalls {
		s += v
	}
	return s
}

// DominantStall returns the largest stall bucket (CauseNone when the unit
// never stalled).
func (u *UnitProfile) DominantStall() (StallCause, int64) {
	best, bestN := CauseNone, int64(0)
	for c := CauseInputStarved; c < NumCauses; c++ {
		if u.Stalls[c] > bestN {
			best, bestN = c, u.Stalls[c]
		}
	}
	return best, bestN
}

// ChannelProfile is one DRAM channel's counters plus derived ratios.
type ChannelProfile struct {
	Channel int `json:"channel"`
	DRAMChannelCounters
	RowHitRate float64 `json:"row_hit_rate"`
}

// LinkProfile is one switch-fabric link's utilization.
type LinkProfile struct {
	Name   string  `json:"name"`
	Routes int     `json:"routes"`
	Bytes  int64   `json:"bytes"`
	Util   float64 `json:"utilization"` // bytes / (total cycles * link bytes-per-cycle)
}

// Report is the rolled-up profile of one run: the paper-style utilization
// table plus the named bottleneck.
type Report struct {
	Benchmark   string `json:"benchmark,omitempty"`
	TotalCycles int64  `json:"total_cycles"`

	Units    []UnitProfile    `json:"units"`
	Links    []LinkProfile    `json:"links,omitempty"`
	Channels []ChannelProfile `json:"dram_channels,omitempty"`
	Windows  []Window         `json:"recovery_windows,omitempty"`

	Bottleneck BoundClass `json:"bottleneck"`
	// BottleneckWhy is the one-line justification for the classification.
	BottleneckWhy string `json:"bottleneck_why"`
}

// Busy/stall/idle aggregates across all units.
func (r *Report) aggregate() (busy, idle int64, stalls [NumCauses]int64) {
	for i := range r.Units {
		u := &r.Units[i]
		busy += u.Busy
		idle += u.Idle
		for c, v := range u.Stalls {
			stalls[c] += v
		}
	}
	return
}

// classification thresholds, checked in order. A run is recovery-bound when
// fabric-wide drain/reconfig windows eat at least recoveryFrac of the
// makespan; memory-bound when dram-wait is the dominant stall cause and
// stalls outweigh stallDominates of busy work (a direct measurement, so it
// outranks the link estimate); network-bound when some link carries traffic
// at or above linkUtilFrac of its bandwidth or more static routes than a
// link holds without time multiplexing (routes > linkRouteCap);
// compute-bound otherwise.
const (
	recoveryFrac   = 0.10
	linkUtilFrac   = 0.75
	linkRouteCap   = 4
	stallDominates = 0.5
)

// classify names the bottleneck from the rolled-up counters.
func (r *Report) classify() {
	busy, _, stalls := r.aggregate()
	var windowCycles int64
	for _, w := range r.Windows {
		windowCycles += w.To - w.From
	}
	if r.TotalCycles > 0 && float64(windowCycles) >= recoveryFrac*float64(r.TotalCycles) {
		r.Bottleneck = RecoveryBound
		r.BottleneckWhy = fmt.Sprintf("recovery drain+reconfig windows cover %d of %d cycles (>= %.0f%%)",
			windowCycles, r.TotalCycles, 100*recoveryFrac)
		return
	}
	var stallSum int64
	for _, v := range stalls {
		stallSum += v
	}
	dram := stalls[CauseDRAMWait]
	dominant, dominantN := CauseNone, int64(0)
	for c := CauseInputStarved; c < NumCauses; c++ {
		if stalls[c] > dominantN {
			dominant, dominantN = c, stalls[c]
		}
	}
	if dominant == CauseDRAMWait && float64(stallSum) >= stallDominates*float64(busy) {
		r.Bottleneck = MemoryBound
		r.BottleneckWhy = fmt.Sprintf("dram-wait is the dominant stall (%d cycles vs %d busy across units)",
			dram, busy)
		return
	}
	var maxLink LinkProfile
	for _, l := range r.Links {
		if l.Util > maxLink.Util || (l.Util == maxLink.Util && l.Routes > maxLink.Routes) {
			maxLink = l
		}
	}
	if maxLink.Util >= linkUtilFrac || maxLink.Routes > linkRouteCap {
		r.Bottleneck = NetworkBound
		r.BottleneckWhy = fmt.Sprintf("link %s carries %d routes at %.0f%% of link bandwidth",
			maxLink.Name, maxLink.Routes, 100*maxLink.Util)
		return
	}
	r.Bottleneck = ComputeBound
	r.BottleneckWhy = fmt.Sprintf("units are busy %d cycles vs %d stalled; no link or channel saturated",
		busy, stallSum)
}

// Report rolls the collected events into per-unit cycle accounting. For
// every unit, Busy + sum(Stalls) + Idle == TotalCycles exactly: activity
// intervals contribute busy (and dram-wait for the non-busy part of
// transfer intervals), inter-activity gaps are attributed to the recorded
// gap cause, fabric-wide drain/reconfig windows claim the gap portions they
// cover, and whatever remains is idle.
func (c *Collector) Report() *Report {
	r := &Report{TotalCycles: c.total, Windows: append([]Window(nil), c.windows...)}
	for _, u := range c.units {
		up := UnitProfile{Name: u.name, Origin: u.origin, Kind: u.kind.String(),
			Total: c.total, FIFOHighWater: u.hiWater, Slices: len(u.slices)}
		if up.Origin == "" {
			up.Origin = u.name
		}
		slices := append([]Slice(nil), u.slices...)
		sort.Slice(slices, func(i, j int) bool { return slices[i].Start < slices[j].Start })
		cursor := int64(0)
		for _, s := range slices {
			if gap := s.Start - cursor; gap > 0 {
				c.attributeGap(&up, cursor, s.Start, s.Gap)
			}
			length := s.End - s.Start
			busy := s.Busy
			if busy > length {
				busy = length
			}
			up.Busy += busy
			up.Stalls[CauseDRAMWait] += length - busy
			if s.End > cursor {
				cursor = s.End
			}
		}
		if cursor < c.total {
			c.attributeGap(&up, cursor, c.total, CauseNone)
		}
		up.Stalls[CauseNone] = 0
		// Idle is the exact remainder, so the invariant holds by
		// construction even if slices overlapped the total imperfectly.
		up.Idle = up.Total - up.Busy - up.StallTotal()
		if up.Idle < 0 {
			up.Idle = 0
			up.Total = up.Busy + up.StallTotal()
		}
		r.Units = append(r.Units, up)
	}
	for i, ch := range c.channels {
		cp := ChannelProfile{Channel: i, DRAMChannelCounters: ch}
		if n := ch.RowHits + ch.RowMisses + ch.RowConflicts; n > 0 {
			cp.RowHitRate = float64(ch.RowHits) / float64(n)
		}
		r.Channels = append(r.Channels, cp)
	}
	for _, l := range c.links {
		lp := LinkProfile{Name: l.Name, Routes: l.Routes, Bytes: l.Bytes}
		if c.total > 0 && l.BytesPerCycle > 0 {
			lp.Util = float64(l.Bytes) / (float64(c.total) * l.BytesPerCycle)
		}
		r.Links = append(r.Links, lp)
	}
	sort.Slice(r.Links, func(i, j int) bool {
		if r.Links[i].Util != r.Links[j].Util {
			return r.Links[i].Util > r.Links[j].Util
		}
		return r.Links[i].Name < r.Links[j].Name
	})
	r.classify()
	return r
}

// attributeGap splits [from,to) between recovery windows (drain/reconfig)
// and the gap's own cause (CauseNone lands in the idle remainder).
func (c *Collector) attributeGap(up *UnitProfile, from, to int64, cause StallCause) {
	remaining := to - from
	for _, w := range c.windows {
		lo, hi := w.From, w.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			up.Stalls[w.Cause] += hi - lo
			remaining -= hi - lo
		}
	}
	if remaining > 0 && cause != CauseNone {
		up.Stalls[cause] += remaining
	}
}
