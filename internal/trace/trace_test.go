package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// checkInvariant asserts the exact cycle-accounting identity for every unit.
func checkInvariant(t *testing.T, r *Report) {
	t.Helper()
	for i := range r.Units {
		u := &r.Units[i]
		if got := u.Busy + u.StallTotal() + u.Idle; got != u.Total {
			t.Errorf("%s: busy %d + stalls %d + idle %d = %d, want total %d",
				u.Name, u.Busy, u.StallTotal(), u.Idle, got, u.Total)
		}
		if u.Stalls[CauseNone] != 0 {
			t.Errorf("%s: CauseNone bucket %d, want 0 (that bucket is Idle)", u.Name, u.Stalls[CauseNone])
		}
	}
}

func TestReportCycleAccountingExact(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "mac#0", "", UnitCompute)
	c.RegisterUnit(1, "loadA", "", UnitTransfer)
	// Unit 0: [10,40) busy, gap [0,10) input-starved; [60,80) busy,
	// gap [40,60) output-backpressured; tail [80,100) idle.
	c.Slice(0, "mac", 10, 40, 30, CauseInputStarved)
	c.Slice(0, "mac", 60, 80, 20, CauseOutputBackpressure)
	// Unit 1: transfer [0,50) with 20 busy cycles (30 dram-wait inside the
	// interval); tail [50,100) idle.
	c.Slice(1, "loadA", 0, 50, 20, CauseNone)
	c.Finish(100)

	r := c.Report()
	checkInvariant(t, r)
	u0 := r.Units[0]
	if u0.Busy != 50 || u0.Stalls[CauseInputStarved] != 10 ||
		u0.Stalls[CauseOutputBackpressure] != 20 || u0.Idle != 20 {
		t.Errorf("unit 0 buckets wrong: %+v", u0)
	}
	u1 := r.Units[1]
	if u1.Busy != 20 || u1.Stalls[CauseDRAMWait] != 30 || u1.Idle != 50 {
		t.Errorf("unit 1 buckets wrong: %+v", u1)
	}
}

func TestReportWindowsClaimGaps(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "", UnitCompute)
	c.Slice(0, "a", 0, 10, 10, CauseNone)
	c.Slice(0, "b", 50, 60, 10, CauseInputStarved)
	// The drain window [20,30) and reconfig [30,35) overlap the [10,50) gap:
	// 10 drain? no — window is [20,30) = 10 cycles drain, 5 reconfig, the
	// remaining 25 gap cycles stay input-starved.
	c.Window(CauseDrain, 20, 30)
	c.Window(CauseReconfig, 30, 35)
	c.Finish(60)

	r := c.Report()
	checkInvariant(t, r)
	u := r.Units[0]
	if u.Stalls[CauseDrain] != 10 || u.Stalls[CauseReconfig] != 5 {
		t.Errorf("windows not claimed: drain %d reconfig %d", u.Stalls[CauseDrain], u.Stalls[CauseReconfig])
	}
	if u.Stalls[CauseInputStarved] != 25 {
		t.Errorf("gap remainder %d, want 25", u.Stalls[CauseInputStarved])
	}
}

func TestCollectorClampsBadInput(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "", UnitCompute)
	c.Slice(7, "out-of-range", 0, 10, 5, CauseNone) // ignored
	c.Slice(0, "inverted", 20, 10, 99, CauseNone)   // end<start -> empty, busy clamped
	c.FIFOHighWater(7, 100)                         // ignored
	c.Finish(20)
	r := c.Report()
	checkInvariant(t, r)
	if len(r.Units) != 1 {
		t.Fatalf("%d units, want 1", len(r.Units))
	}
	if r.Units[0].Busy != 0 || r.Units[0].Idle != 20 {
		t.Errorf("clamped slice leaked cycles: %+v", r.Units[0])
	}
}

func TestClassifyRecoveryBound(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "", UnitCompute)
	c.Slice(0, "a", 0, 50, 50, CauseNone)
	c.Window(CauseDrain, 50, 70) // 20 of 100 >= 10%
	c.Finish(100)
	if r := c.Report(); r.Bottleneck != RecoveryBound {
		t.Errorf("bottleneck %s (%s), want recovery-bound", r.Bottleneck, r.BottleneckWhy)
	}
}

func TestClassifyMemoryBound(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "ag", "", UnitTransfer)
	c.Slice(0, "load", 0, 100, 10, CauseNone) // 90 dram-wait vs 10 busy
	c.Finish(100)
	if r := c.Report(); r.Bottleneck != MemoryBound {
		t.Errorf("bottleneck %s (%s), want memory-bound", r.Bottleneck, r.BottleneckWhy)
	}
}

func TestClassifyNetworkBound(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "", UnitCompute)
	c.Slice(0, "a", 0, 100, 100, CauseNone) // fully busy: no stalls
	c.Link("0,0>1,0", 2, 8000, 1)           // 8000 bytes / (100 cycles * 1 B/cyc) >> 75%
	c.Finish(100)
	if r := c.Report(); r.Bottleneck != NetworkBound {
		t.Errorf("bottleneck %s (%s), want network-bound", r.Bottleneck, r.BottleneckWhy)
	}
}

func TestClassifyComputeBound(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "", UnitCompute)
	c.Slice(0, "a", 0, 90, 90, CauseNone)
	c.Finish(100)
	if r := c.Report(); r.Bottleneck != ComputeBound {
		t.Errorf("bottleneck %s (%s), want compute-bound", r.Bottleneck, r.BottleneckWhy)
	}
}

func TestChromeTraceRoundTrips(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "mac#0", "", UnitCompute)
	c.RegisterUnit(1, "loadA", "", UnitTransfer)
	c.Slice(0, "mac", 10, 40, 30, CauseInputStarved)
	c.Slice(1, "loadA", 0, 50, 20, CauseNone)
	c.Window(CauseDrain, 50, 60)
	c.Finish(100)

	data, err := c.ChromeTrace("bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(data); err != nil {
		t.Fatal(err)
	}
	var tr ChromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	lastTs := int64(-1)
	complete := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		if ev.Ts < lastTs {
			t.Errorf("timestamps not monotonic: %d after %d", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
	}
	if complete != 3 { // two slices + one window
		t.Errorf("%d complete events, want 3", complete)
	}
	// Re-marshal round trip through encoding/json.
	again, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(again); err != nil {
		t.Errorf("re-marshalled trace invalid: %v", err)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{nil, []byte("{"), []byte(`{"traceEvents":[]}`),
		[]byte(`{"traceEvents":[{"ph":"Q","ts":0}]}`)} {
		if err := ValidateChrome(bad); err == nil {
			t.Errorf("ValidateChrome(%q) accepted invalid input", bad)
		}
	}
}

func TestCountersJSON(t *testing.T) {
	c := NewCollector()
	c.RegisterUnit(0, "u", "", UnitCompute)
	c.Slice(0, "a", 0, 10, 10, CauseNone)
	c.DRAMChannel(0, DRAMChannelCounters{Reads: 5, RowHits: 4, RowMisses: 1})
	c.Finish(10)
	data, err := c.CountersJSON("bench")
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "bench" || len(r.Units) != 1 || len(r.Channels) != 1 {
		t.Errorf("round-tripped report wrong: %+v", r)
	}
	if r.Channels[0].RowHitRate != 0.8 {
		t.Errorf("row hit rate %v, want 0.8", r.Channels[0].RowHitRate)
	}
}

func TestStallCauseStrings(t *testing.T) {
	want := map[StallCause]string{
		CauseNone: "idle", CauseInputStarved: "input-starved",
		CauseOutputBackpressure: "output-backpressured", CauseDRAMWait: "dram-wait",
		CauseDrain: "drain", CauseReconfig: "reconfig",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.Contains(StallCause(99).String(), "99") {
		t.Errorf("out-of-range cause renders %q", StallCause(99).String())
	}
}
