package dram

import (
	"errors"
	"fmt"
)

// ErrRetriesExhausted is wrapped by ExhaustedError when a burst's transient
// failures exceed the retry bound.
var ErrRetriesExhausted = errors.New("dram: burst retries exhausted")

// ExhaustedError reports one burst whose transient failures hit MaxRetries.
// The burst still completes (higher-level ECC recovery), but the condition is
// surfaced structurally so callers can count or escalate it.
type ExhaustedError struct {
	Addr     uint64
	Attempts int // retries issued before giving up (== MaxRetries)
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("%v: addr 0x%x after %d retries", ErrRetriesExhausted, e.Addr, e.Attempts)
}

func (e *ExhaustedError) Unwrap() error { return ErrRetriesExhausted }

// Faults is the injectable memory-system fault configuration. All draws come
// from a private PRNG seeded with Seed, and the model is single-threaded, so
// a fixed seed yields identical behaviour across runs. A nil *Faults (or
// never calling InjectFaults) leaves the model byte-identical to the
// unfaulted one: no PRNG is consulted on that path.
type Faults struct {
	Seed int64

	// SpikeProb is the per-scheduled-burst probability of a latency spike
	// of SpikeCycles extra cycles (models degraded cells / thermal
	// throttling on a channel).
	SpikeProb   float64
	SpikeCycles int

	// TransientProb is the per-completed-burst probability of a transient
	// failure (models a correctable burst error). Failed bursts retry with
	// exponential backoff: RetryBackoff << attempt cycles, at most
	// MaxRetries times; a burst that exhausts its retries completes anyway
	// (higher-level ECC recovery) and is counted in Stats.RetriesExhausted.
	TransientProb float64
	MaxRetries    int
	RetryBackoff  int

	// Down marks channels that are offline. Their traffic remaps
	// deterministically onto the healthy channels; if every channel is
	// down, Submit rejects all requests (the simulator's watchdog turns
	// that into a diagnostic abort instead of a hang).
	Down []bool

	// OnExhausted, when set, is invoked once per burst that abandons its
	// retries (exactly when Stats.RetriesExhausted increments).
	OnExhausted func(*ExhaustedError)
}

// InjectFaults arms the fault model. Must be called before the first Submit.
func (d *DRAM) InjectFaults(f *Faults) error {
	if f == nil {
		d.faults = nil
		return nil
	}
	if len(f.Down) > d.cfg.Channels {
		return fmt.Errorf("dram: fault plan marks %d channels, memory system has %d", len(f.Down), d.cfg.Channels)
	}
	d.faults = f
	d.rng = newPRNG(f.Seed)
	d.healthy = d.healthy[:0]
	for c := 0; c < d.cfg.Channels; c++ {
		if c >= len(f.Down) || !f.Down[c] {
			d.healthy = append(d.healthy, c)
		}
	}
	return nil
}

// remapChannel redirects a request owned by a downed channel onto a healthy
// one, preserving the interleave pattern; returns -1 if none are healthy.
func (d *DRAM) remapChannel(addr uint64) int {
	idx := int(addr / uint64(d.cfg.BurstBytes))
	ch := idx % d.cfg.Channels
	f := d.faults
	if f == nil || ch >= len(f.Down) || !f.Down[ch] {
		return ch
	}
	if len(d.healthy) == 0 {
		return -1
	}
	return d.healthy[idx%len(d.healthy)]
}

// spikeLatency rolls the latency-spike die for one scheduled burst.
func (d *DRAM) spikeLatency() int64 {
	f := d.faults
	if f == nil || f.SpikeProb <= 0 {
		return 0
	}
	if d.rng.Float64() < f.SpikeProb {
		d.stats.LatencySpikes++
		return int64(f.SpikeCycles)
	}
	return 0
}

// maybeRetry rolls the transient-failure die for a completed burst. If the
// burst must retry, it is re-queued after an exponential backoff and true is
// returned; the caller must not fire its completion.
func (d *DRAM) maybeRetry(r *Request, now int64) bool {
	f := d.faults
	if f == nil || f.TransientProb <= 0 {
		return false
	}
	if d.rng.Float64() >= f.TransientProb {
		return false
	}
	if r.attempts >= f.MaxRetries {
		d.stats.RetriesExhausted++
		if f.OnExhausted != nil {
			f.OnExhausted(&ExhaustedError{Addr: r.Addr, Attempts: r.attempts})
		}
		return false
	}
	r.attempts++
	d.stats.Retries++
	if ci := d.channelOf(r.Addr); ci >= 0 {
		d.chanStats[ci].Retries++
	}
	backoff := int64(f.RetryBackoff) << (r.attempts - 1)
	d.retryq = append(d.retryq, completion{at: now + backoff, req: r})
	return true
}

// drainRetries re-submits bursts whose backoff has elapsed; bursts that find
// their channel queue full stay queued for the next tick.
func (d *DRAM) drainRetries(now int64) {
	if len(d.retryq) == 0 {
		return
	}
	kept := d.retryq[:0]
	for _, c := range d.retryq {
		if c.at > now || !d.resubmit(c.req) {
			kept = append(kept, c)
		}
	}
	d.retryq = kept
}

// resubmit enqueues a retried request without resetting its arrival cycle,
// so latency accounting spans all attempts.
func (d *DRAM) resubmit(r *Request) bool {
	ci := d.remapChannel(r.Addr)
	if ci < 0 {
		d.stats.StallsChannelDown++
		return false
	}
	ch := &d.channels[ci]
	if len(ch.queue) >= d.cfg.QueueDepth {
		d.stats.StallsQueueFull++
		return false
	}
	ch.queue = append(ch.queue, r)
	if occ := len(ch.queue); occ > d.stats.MaxQueueOcc {
		d.stats.MaxQueueOcc = occ
	}
	if occ := len(ch.queue); occ > d.chanStats[ci].MaxQueueOcc {
		d.chanStats[ci].MaxQueueOcc = occ
	}
	return true
}

// KillChannel takes channel c offline mid-run. Requests already queued,
// scheduled, or awaiting retry on c are dropped and reported through lost
// (their data is gone; the owner must reissue them); future traffic remaps
// onto the surviving channels. Returns the number of dropped requests.
func (d *DRAM) KillChannel(c int, lost func(*Request)) (int, error) {
	if c < 0 || c >= d.cfg.Channels {
		return 0, fmt.Errorf("dram: kill-chan %d out of range (memory system has %d channels)", c, d.cfg.Channels)
	}
	if d.faults == nil {
		d.faults = &Faults{}
	}
	f := d.faults
	if len(f.Down) < d.cfg.Channels {
		down := make([]bool, d.cfg.Channels)
		copy(down, f.Down)
		f.Down = down
	}
	if f.Down[c] {
		return 0, fmt.Errorf("dram: channel %d is already down", c)
	}
	// Record each in-flight request's owning channel BEFORE marking c down:
	// remapChannel answers differently afterwards, and a request in c's
	// queue belongs to c regardless of which channel its address hashes to.
	dropped := 0
	drop := func(r *Request) {
		dropped++
		if lost != nil {
			lost(r)
		}
	}
	ch := &d.channels[c]
	for _, r := range ch.queue {
		drop(r)
	}
	ch.queue = nil
	d.pending.Filter(func(r *Request) bool {
		if d.channelOf(r.Addr) == c {
			drop(r)
			return false
		}
		return true
	})
	keptR := d.retryq[:0]
	for _, p := range d.retryq {
		if d.channelOf(p.req.Addr) == c {
			drop(p.req)
		} else {
			keptR = append(keptR, p)
		}
	}
	d.retryq = keptR
	f.Down[c] = true
	d.healthy = d.healthy[:0]
	for i := 0; i < d.cfg.Channels; i++ {
		if !f.Down[i] {
			d.healthy = append(d.healthy, i)
		}
	}
	return dropped, nil
}

// QueueOccupancy returns the current per-channel request-queue depths
// (diagnostics for the simulator's watchdog dump).
func (d *DRAM) QueueOccupancy() []int {
	out := make([]int, len(d.channels))
	for i := range d.channels {
		out[i] = len(d.channels[i].queue)
	}
	return out
}
