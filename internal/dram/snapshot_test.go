package dram

import (
	"reflect"
	"testing"
)

// TestSnapshotRestoreMidFlight freezes a loaded memory system mid-stream,
// restores the snapshot into a fresh instance, and checks the resumed run is
// cycle-identical to the uninterrupted one.
func TestSnapshotRestoreMidFlight(t *testing.T) {
	cfg := DDR3_1600x4()
	faults := func() *Faults {
		return &Faults{Seed: 9, SpikeProb: 0.2, SpikeCycles: 50,
			TransientProb: 0.1, MaxRetries: 3, RetryBackoff: 16}
	}
	const n = 256
	const freezeAt = 400

	// Uninterrupted reference run, recording every completion cycle by tag.
	ref := make([]int64, n)
	mkDone := func(out []int64, tag int64) func(int64) {
		return func(now int64) { out[tag] = now }
	}
	d := New(cfg)
	if err := d.InjectFaults(faults()); err != nil {
		t.Fatal(err)
	}
	next, now := 0, int64(0)
	submitAll := func(dd *DRAM, out []int64) {
		for next < n && dd.Submit(&Request{Addr: uint64(next * 64), Tag: int64(next),
			Done: mkDone(out, int64(next))}) {
			next++
		}
	}
	var snap *MemState
	var snapNext int
	for !d.Idle() || next < n {
		now++
		submitAll(d, ref)
		d.Tick(now)
		if now == freezeAt {
			snap = d.Snapshot()
			snapNext = next
		}
		if now > 1_000_000 {
			t.Fatal("stream did not drain")
		}
	}
	if snap == nil {
		t.Fatal("stream finished before the freeze point; lower freezeAt")
	}
	refStats := d.Stats()

	// Snapshots must be deterministic: same state twice ⇒ deep-equal.
	d2 := New(cfg)
	if err := d2.InjectFaults(faults()); err != nil {
		t.Fatal(err)
	}
	if err := d2.Restore(snap, func(tag int64) func(int64) {
		return mkDone(make([]int64, n), tag)
	}); err != nil {
		t.Fatal(err)
	}
	if again := d2.Snapshot(); !reflect.DeepEqual(snap, again) {
		t.Fatalf("snapshot of restored state differs:\n%+v\n%+v", snap, again)
	}

	// Resume from the snapshot and check the tail matches the reference.
	got := make([]int64, n)
	d3 := New(cfg)
	if err := d3.InjectFaults(faults()); err != nil {
		t.Fatal(err)
	}
	if err := d3.Restore(snap, func(tag int64) func(int64) {
		return mkDone(got, tag)
	}); err != nil {
		t.Fatal(err)
	}
	next, now = snapNext, freezeAt
	for !d3.Idle() || next < n {
		now++
		submitAll(d3, got)
		d3.Tick(now)
		if now > 1_000_000 {
			t.Fatal("restored stream did not drain")
		}
	}
	// Bursts issued after the freeze must complete on exactly the reference
	// cycle; bursts in flight at the freeze fire their restored callbacks on
	// the reference cycle too (zero means the burst finished pre-freeze).
	for i, at := range got {
		if i >= snapNext && at == 0 {
			t.Fatalf("burst %d never completed after restore", i)
		}
		if at != 0 && at != ref[i] {
			t.Fatalf("burst %d completed at %d after restore, %d uninterrupted", i, at, ref[i])
		}
	}
	if st := d3.Stats(); st != refStats {
		t.Errorf("restored run stats diverge:\n%+v\n%+v", st, refStats)
	}
}

func TestRestoreRejectsMismatchedShape(t *testing.T) {
	d := New(DDR3_1600x4())
	if err := d.Restore(&MemState{}, nil); err == nil {
		t.Error("restoring an empty snapshot into a 4-channel system must fail")
	}
	small := DDR3_1600x4()
	small.Channels = 2
	src := New(small)
	if err := d.Restore(src.Snapshot(), nil); err == nil {
		t.Error("restoring a 2-channel snapshot into a 4-channel system must fail")
	}
	// A request-bearing snapshot needs a callback factory.
	src4 := New(DDR3_1600x4())
	src4.Tick(0)
	src4.Submit(&Request{Addr: 0, Tag: 7})
	if err := d.Restore(src4.Snapshot(), nil); err == nil {
		t.Error("restoring in-flight requests without a callback factory must fail")
	}
}

func TestKillChannelDropsInFlight(t *testing.T) {
	cfg := DDR3_1600x4()
	d := New(cfg)
	d.Tick(0)
	// One burst per channel: burst i maps to channel i.
	for i := 0; i < cfg.Channels; i++ {
		d.Submit(&Request{Addr: uint64(i * cfg.BurstBytes), Tag: int64(i)})
	}
	var lost []int64
	dropped, err := d.KillChannel(1, func(r *Request) { lost = append(lost, r.Tag) })
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("dropped=%d lost=%v, want exactly channel 1's burst", dropped, lost)
	}
	if _, err := d.KillChannel(1, nil); err == nil {
		t.Error("killing an already-down channel must fail")
	}
	if _, err := d.KillChannel(99, nil); err == nil {
		t.Error("killing an out-of-range channel must fail")
	}
	// New traffic for the dead channel remaps to a healthy one.
	if ci := d.channelOf(uint64(1 * cfg.BurstBytes)); ci == 1 || ci < 0 {
		t.Errorf("channel 1 traffic remapped to %d", ci)
	}
	drain(d, 0)
}
