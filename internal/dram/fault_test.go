package dram

import (
	"errors"
	"strings"
	"testing"
)

func TestInjectFaultsValidation(t *testing.T) {
	d := New(DDR3_1600x4())
	if err := d.InjectFaults(&Faults{Down: make([]bool, 5)}); err == nil {
		t.Error("marking more channels than exist must fail")
	}
	if err := d.InjectFaults(nil); err != nil {
		t.Errorf("nil faults: %v", err)
	}
}

func TestDownChannelRemap(t *testing.T) {
	cfg := DDR3_1600x4()
	d := New(cfg)
	if err := d.InjectFaults(&Faults{Down: []bool{true}}); err != nil {
		t.Fatal(err)
	}
	d.Tick(0)
	// Burst 0 natively maps to channel 0, which is down; it must land on a
	// healthy channel and still complete.
	done := false
	if !d.Submit(&Request{Addr: 0, Done: func(int64) { done = true }}) {
		t.Fatal("submit to remapped channel rejected")
	}
	if occ := d.QueueOccupancy(); occ[0] != 0 {
		t.Errorf("downed channel 0 received a request: %v", occ)
	}
	drain(d, 0)
	if !done {
		t.Error("remapped request never completed")
	}
}

func TestAllChannelsDownRejectsEverything(t *testing.T) {
	d := New(DDR3_1600x4())
	if err := d.InjectFaults(&Faults{Down: []bool{true, true, true, true}}); err != nil {
		t.Fatal(err)
	}
	d.Tick(0)
	if d.CanAccept(0) {
		t.Error("CanAccept with every channel down")
	}
	if d.Submit(&Request{Addr: 0}) {
		t.Error("Submit with every channel down")
	}
	if d.Stats().StallsChannelDown == 0 {
		t.Error("channel-down stalls not counted")
	}
}

func TestTransientRetries(t *testing.T) {
	d := New(DDR3_1600x4())
	if err := d.InjectFaults(&Faults{
		Seed: 5, TransientProb: 1, MaxRetries: 2, RetryBackoff: 8,
	}); err != nil {
		t.Fatal(err)
	}
	d.Tick(0)
	completions := 0
	n := 4
	for i := 0; i < n; i++ {
		d.Submit(&Request{Addr: uint64(i * 64), Done: func(int64) { completions++ }})
	}
	drain(d, 0)
	if completions != n {
		t.Fatalf("only %d/%d bursts completed despite bounded retries", completions, n)
	}
	st := d.Stats()
	// With probability 1 every burst fails until it exhausts MaxRetries.
	if st.Retries != int64(n*2) {
		t.Errorf("retries = %d, want %d", st.Retries, n*2)
	}
	if st.RetriesExhausted != int64(n) {
		t.Errorf("exhausted = %d, want %d", st.RetriesExhausted, n)
	}
}

func TestRetryDelaysCompletion(t *testing.T) {
	// A retried burst completes later than an unfaulted one.
	base := New(DDR3_1600x4())
	base.Tick(0)
	var baseAt int64
	base.Submit(&Request{Addr: 0, Done: func(now int64) { baseAt = now }})
	drain(base, 0)

	d := New(DDR3_1600x4())
	if err := d.InjectFaults(&Faults{Seed: 1, TransientProb: 1, MaxRetries: 1, RetryBackoff: 32}); err != nil {
		t.Fatal(err)
	}
	d.Tick(0)
	var retriedAt int64
	d.Submit(&Request{Addr: 0, Done: func(now int64) { retriedAt = now }})
	drain(d, 0)
	if retriedAt <= baseAt {
		t.Errorf("retried burst at %d not later than pristine %d", retriedAt, baseAt)
	}
}

func TestLatencySpikes(t *testing.T) {
	d := New(DDR3_1600x4())
	if err := d.InjectFaults(&Faults{Seed: 3, SpikeProb: 1, SpikeCycles: 500}); err != nil {
		t.Fatal(err)
	}
	d.Tick(0)
	var doneAt int64
	d.Submit(&Request{Addr: 0, Done: func(now int64) { doneAt = now }})
	drain(d, 0)
	// Pristine latency is 34 cycles (see TestSingleReadLatency); the spike
	// adds 500.
	if doneAt != 534 {
		t.Errorf("spiked read completed at %d, want 534", doneAt)
	}
	if d.Stats().LatencySpikes != 1 {
		t.Errorf("spikes = %d, want 1", d.Stats().LatencySpikes)
	}
}

func TestRetriesExhaustedStructuredError(t *testing.T) {
	// With failure probability 1 every burst burns MaxRetries retries and is
	// then abandoned: OnExhausted fires exactly once per burst, with the
	// burst's address and final attempt count, and the error unwraps to
	// ErrRetriesExhausted.
	d := New(DDR3_1600x4())
	var got []*ExhaustedError
	if err := d.InjectFaults(&Faults{
		Seed: 5, TransientProb: 1, MaxRetries: 2, RetryBackoff: 8,
		OnExhausted: func(e *ExhaustedError) { got = append(got, e) },
	}); err != nil {
		t.Fatal(err)
	}
	d.Tick(0)
	const n = 4
	completions := 0
	for i := 0; i < n; i++ {
		d.Submit(&Request{Addr: uint64(i * 64), Done: func(int64) { completions++ }})
	}
	drain(d, 0)
	if completions != n {
		t.Fatalf("only %d/%d bursts completed", completions, n)
	}
	st := d.Stats()
	if st.RetriesExhausted != int64(n) {
		t.Errorf("RetriesExhausted = %d, want %d (one per abandoned burst)", st.RetriesExhausted, n)
	}
	if len(got) != n {
		t.Fatalf("OnExhausted fired %d times, want %d", len(got), n)
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if !errors.Is(e, ErrRetriesExhausted) {
			t.Errorf("error does not unwrap to ErrRetriesExhausted: %v", e)
		}
		if e.Attempts != 2 {
			t.Errorf("burst 0x%x abandoned after %d attempts, want 2", e.Addr, e.Attempts)
		}
		if seen[e.Addr] {
			t.Errorf("burst 0x%x reported exhausted more than once", e.Addr)
		}
		seen[e.Addr] = true
	}
	if s := got[0].Error(); !strings.Contains(s, "retries exhausted") {
		t.Errorf("error text %q missing cause", s)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		d := New(DDR3_1600x4())
		if err := d.InjectFaults(&Faults{Seed: 11, SpikeProb: 0.3, SpikeCycles: 100,
			TransientProb: 0.2, MaxRetries: 3, RetryBackoff: 16}); err != nil {
			t.Fatal(err)
		}
		d.Tick(0)
		next, now := 0, int64(0)
		for !d.Idle() || next < 256 {
			now++
			for next < 256 && d.Submit(&Request{Addr: uint64(next * 64)}) {
				next++
			}
			d.Tick(now)
			if now > 1_000_000 {
				t.Fatal("faulted stream did not drain")
			}
		}
		return d.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
	if a.Retries == 0 || a.LatencySpikes == 0 {
		t.Errorf("fault machinery idle under nonzero probabilities: %+v", a)
	}
}
