// Package dram models a multi-channel DDR3 main-memory system — the
// substitute for the DRAMSim2 configuration the paper simulates with
// (Section 4.2): 4 DDR3-1600 channels, 51.2 GB/s theoretical peak. The
// model tracks per-bank row buffers, bank timing (tRCD/tCAS/tRP), per-
// channel data-bus occupancy and FR-FCFS scheduling, which is what
// separates dense burst traffic from sparse gather/scatter traffic in the
// evaluation.
package dram

import "fmt"

// Config describes the memory system. All timings are in fabric clock
// cycles (the simulator runs the fabric at 1 GHz, so 1 cycle = 1 ns).
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer (page) size per bank
	BurstBytes   int // data transferred per burst (BL8 x 64-bit = 64 B)

	TCAS       int // column access latency
	TRCD       int // row activate to column access
	TRP        int // precharge latency
	TFAW       int // four-activate window: at most 4 activates per TFAW
	TREFI      int // refresh interval; all banks stall TRFC every TREFI
	TRFC       int // refresh cycle time
	BurstCycle int // data-bus cycles one burst occupies

	QueueDepth int // per-channel request queue capacity
}

// DDR3_1600x4 returns the paper's memory system: 4 channels of DDR3-1600
// (12.8 GB/s each, 51.2 GB/s total), 8 banks per channel, 2 KB rows, 64 B
// bursts. Timings are DDR3-1600 CL11 expressed in 1 ns fabric cycles.
func DDR3_1600x4() Config {
	return Config{
		Channels:     4,
		BanksPerChan: 8,
		RowBytes:     2048,
		BurstBytes:   64,
		TCAS:         14,
		TRCD:         14,
		TRP:          14,
		TFAW:         40,
		TREFI:        7800, // 7.8 us
		TRFC:         160,  // 160 ns
		BurstCycle:   5,    // 64 B / 12.8 GB/s = 5 ns
		QueueDepth:   64,
	}
}

// Request is one burst-granularity memory request.
type Request struct {
	Addr  uint64 // byte address (aligned down to BurstBytes internally)
	Write bool
	// Done is invoked when the burst completes (data returned for reads,
	// write committed for writes).
	Done func(now int64)
	// Tag identifies the request's owner to checkpoint/restore: Done
	// closures cannot be serialized, so Restore rebuilds them from Tags.
	Tag int64

	issued   int64 // arrival cycle, for FR-FCFS aging
	attempts int   // transient-failure retries so far
}

type bank struct {
	openRow int64 // -1 = closed
	readyAt int64 // earliest cycle the bank can accept a command
}

type channel struct {
	queue   []*Request
	banks   []bank
	busFree int64    // earliest cycle the data bus is free
	acts    [4]int64 // issue times of the last four row activates (tFAW)
}

// Stats aggregates memory-system activity.
type Stats struct {
	Reads, Writes   int64
	Refreshes       int64
	RowHits         int64
	RowMisses       int64 // closed-row activations
	RowConflicts    int64 // open-row mismatch (precharge + activate)
	BytesRead       int64
	BytesWritten    int64
	TotalLatency    int64 // sum of request latencies, cycles
	MaxQueueOcc     int
	StallsQueueFull int64

	// Fault-injection activity (all zero when no faults are armed).
	Retries           int64 // transient-failure retries issued
	RetriesExhausted  int64 // bursts that hit MaxRetries and completed anyway
	LatencySpikes     int64 // bursts delayed by an injected latency spike
	StallsChannelDown int64 // submissions rejected with every channel down
}

// ChanStats is one channel's share of the activity counters — the
// per-channel view the observability layer needs to show bank-conflict and
// row-hit imbalance across channels (e.g. after a kill-chan remap piles two
// channels' traffic onto one).
type ChanStats struct {
	Reads, Writes int64
	RowHits       int64
	RowMisses     int64
	RowConflicts  int64
	Retries       int64
	MaxQueueOcc   int
}

// AvgLatency returns the mean request latency in cycles.
func (s Stats) AvgLatency() float64 {
	n := s.Reads + s.Writes
	if n == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(n)
}

// DRAM is the memory system instance.
type DRAM struct {
	cfg         Config
	channels    []channel
	pending     []completion
	stats       Stats
	chanStats   []ChanStats
	now         int64
	nextRefresh int64

	// Fault injection (nil when the memory system is healthy).
	faults  *Faults
	rng     prng
	healthy []int        // channels accepting traffic under the fault plan
	retryq  []completion // bursts awaiting retry after transient failures
}

type completion struct {
	at  int64
	req *Request
}

// New creates a memory system.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, channels: make([]channel, cfg.Channels),
		chanStats: make([]ChanStats, cfg.Channels), nextRefresh: int64(cfg.TREFI)}
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChan)
		for b := range d.channels[i].banks {
			d.channels[i].banks[b].openRow = -1
		}
		for a := range d.channels[i].acts {
			d.channels[i].acts[a] = -int64(cfg.TFAW)
		}
	}
	return d
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of activity counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ChannelStats returns a copy of the per-channel activity counters,
// indexed by channel.
func (d *DRAM) ChannelStats() []ChanStats {
	return append([]ChanStats(nil), d.chanStats...)
}

// channelOf maps an address to a channel: burst-granularity interleaving
// spreads consecutive bursts across channels. Under a fault plan, traffic
// owned by a downed channel remaps onto the healthy ones (-1 if none).
func (d *DRAM) channelOf(addr uint64) int {
	if d.faults != nil {
		return d.remapChannel(addr)
	}
	return int(addr/uint64(d.cfg.BurstBytes)) % d.cfg.Channels
}

// bankRowOf maps an address to (bank, row) within its channel.
func (d *DRAM) bankRowOf(addr uint64) (int, int64) {
	block := addr / uint64(d.cfg.BurstBytes) / uint64(d.cfg.Channels)
	row := int64(block * uint64(d.cfg.BurstBytes) / uint64(d.cfg.RowBytes))
	b := int(row) % d.cfg.BanksPerChan
	return b, row
}

// CanAccept reports whether the channel owning addr has queue space.
func (d *DRAM) CanAccept(addr uint64) bool {
	ci := d.channelOf(addr)
	if ci < 0 {
		return false
	}
	return len(d.channels[ci].queue) < d.cfg.QueueDepth
}

// Submit enqueues a request; it returns false (and drops the request) if
// the owning channel's queue is full — callers must retry.
func (d *DRAM) Submit(r *Request) bool {
	ci := d.channelOf(r.Addr)
	if ci < 0 {
		d.stats.StallsChannelDown++
		return false
	}
	ch := &d.channels[ci]
	if len(ch.queue) >= d.cfg.QueueDepth {
		d.stats.StallsQueueFull++
		return false
	}
	r.issued = d.now
	ch.queue = append(ch.queue, r)
	if occ := len(ch.queue); occ > d.stats.MaxQueueOcc {
		d.stats.MaxQueueOcc = occ
	}
	if occ := len(ch.queue); occ > d.chanStats[ci].MaxQueueOcc {
		d.chanStats[ci].MaxQueueOcc = occ
	}
	return true
}

// Tick advances the memory system to cycle now: schedules one command per
// idle channel (FR-FCFS: row hits first, then oldest) and fires completed
// requests' callbacks.
func (d *DRAM) Tick(now int64) {
	d.now = now
	// Fire completions; bursts hit by a transient fault re-queue instead.
	kept := d.pending[:0]
	for _, c := range d.pending {
		if c.at <= now {
			if !d.maybeRetry(c.req, now) {
				d.finish(c.req, now)
			}
		} else {
			kept = append(kept, c)
		}
	}
	d.pending = kept
	d.drainRetries(now)

	// Periodic refresh: every tREFI, each channel's banks are unavailable
	// for tRFC and rows close.
	if d.cfg.TREFI > 0 && now >= d.nextRefresh {
		d.nextRefresh = now + int64(d.cfg.TREFI)
		d.stats.Refreshes++
		for ci := range d.channels {
			ch := &d.channels[ci]
			// The refresh occupies the whole channel for tRFC: already-
			// reserved transfers push out and banks reopen afterwards.
			if ch.busFree < now {
				ch.busFree = now
			}
			ch.busFree += int64(d.cfg.TRFC)
			until := ch.busFree
			for b := range ch.banks {
				if ch.banks[b].readyAt < until {
					ch.banks[b].readyAt = until
				}
				ch.banks[b].openRow = -1
			}
		}
	}

	for ci := range d.channels {
		d.schedule(ci, now)
	}
}

func (d *DRAM) finish(r *Request, now int64) {
	d.stats.TotalLatency += now - r.issued
	ci := d.channelOf(r.Addr)
	if r.Write {
		d.stats.Writes++
		d.stats.BytesWritten += int64(d.cfg.BurstBytes)
		if ci >= 0 {
			d.chanStats[ci].Writes++
		}
	} else {
		d.stats.Reads++
		d.stats.BytesRead += int64(d.cfg.BurstBytes)
		if ci >= 0 {
			d.chanStats[ci].Reads++
		}
	}
	if r.Done != nil {
		r.Done(now)
	}
}

func (d *DRAM) schedule(ci int, now int64) {
	ch := &d.channels[ci]
	if len(ch.queue) == 0 {
		return
	}
	// FR-FCFS: first ready row hit, else oldest whose bank is ready.
	pick := -1
	for i, r := range ch.queue {
		b, row := d.bankRowOf(r.Addr)
		bk := &ch.banks[b]
		if bk.readyAt <= now && bk.openRow == row {
			pick = i
			break
		}
	}
	if pick < 0 {
		for i, r := range ch.queue {
			b, _ := d.bankRowOf(r.Addr)
			if ch.banks[b].readyAt <= now {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return
	}
	r := ch.queue[pick]
	ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)

	b, row := d.bankRowOf(r.Addr)
	bk := &ch.banks[b]
	var accessLatency int64
	switch {
	case bk.openRow == row:
		d.stats.RowHits++
		d.chanStats[ci].RowHits++
		accessLatency = int64(d.cfg.TCAS)
	case bk.openRow == -1:
		d.stats.RowMisses++
		d.chanStats[ci].RowMisses++
		accessLatency = int64(d.cfg.TRCD + d.cfg.TCAS)
	default:
		d.stats.RowConflicts++
		d.chanStats[ci].RowConflicts++
		accessLatency = int64(d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS)
	}
	bk.openRow = row
	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}
	if accessLatency > int64(d.cfg.TCAS) && d.cfg.TFAW > 0 {
		// Row activate: respect the four-activate window.
		if w := ch.acts[0] + int64(d.cfg.TFAW); w > start {
			start = w
		}
		copy(ch.acts[:], ch.acts[1:])
		ch.acts[3] = start
	}
	accessLatency += d.spikeLatency()
	dataAt := start + accessLatency
	if dataAt < ch.busFree {
		dataAt = ch.busFree
	}
	done := dataAt + int64(d.cfg.BurstCycle)
	ch.busFree = dataAt + int64(d.cfg.BurstCycle)
	// Column commands pipeline: the bank accepts the next command after
	// tCCD (~ one burst) plus any activate/precharge work, while this
	// request's data is still in flight.
	bk.readyAt = start + int64(d.cfg.BurstCycle) + (accessLatency - int64(d.cfg.TCAS))
	d.pending = append(d.pending, completion{at: done, req: r})
}

// Idle reports whether no requests are queued or in flight.
func (d *DRAM) Idle() bool {
	if len(d.pending) > 0 || len(d.retryq) > 0 {
		return false
	}
	for i := range d.channels {
		if len(d.channels[i].queue) > 0 {
			return false
		}
	}
	return true
}

// PeakBandwidth returns bytes/cycle at full bus utilisation.
func (c Config) PeakBandwidth() float64 {
	return float64(c.Channels) * float64(c.BurstBytes) / float64(c.BurstCycle)
}

func (c Config) String() string {
	return fmt.Sprintf("%d ch x %d banks, %dB rows, %dB bursts, CAS/RCD/RP %d/%d/%d",
		c.Channels, c.BanksPerChan, c.RowBytes, c.BurstBytes, c.TCAS, c.TRCD, c.TRP)
}
