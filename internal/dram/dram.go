// Package dram models a multi-channel DDR3 main-memory system — the
// substitute for the DRAMSim2 configuration the paper simulates with
// (Section 4.2): 4 DDR3-1600 channels, 51.2 GB/s theoretical peak. The
// model tracks per-bank row buffers, bank timing (tRCD/tCAS/tRP), per-
// channel data-bus occupancy and FR-FCFS scheduling, which is what
// separates dense burst traffic from sparse gather/scatter traffic in the
// evaluation.
package dram

import (
	"fmt"

	"plasticine/internal/eventq"
)

// Config describes the memory system. All timings are in fabric clock
// cycles (the simulator runs the fabric at 1 GHz, so 1 cycle = 1 ns).
type Config struct {
	Channels     int
	BanksPerChan int
	RowBytes     int // row-buffer (page) size per bank
	BurstBytes   int // data transferred per burst (BL8 x 64-bit = 64 B)

	TCAS       int // column access latency
	TRCD       int // row activate to column access
	TRP        int // precharge latency
	TFAW       int // four-activate window: at most 4 activates per TFAW
	TREFI      int // refresh interval; all banks stall TRFC every TREFI
	TRFC       int // refresh cycle time
	BurstCycle int // data-bus cycles one burst occupies

	QueueDepth int // per-channel request queue capacity
}

// DDR3_1600x4 returns the paper's memory system: 4 channels of DDR3-1600
// (12.8 GB/s each, 51.2 GB/s total), 8 banks per channel, 2 KB rows, 64 B
// bursts. Timings are DDR3-1600 CL11 expressed in 1 ns fabric cycles.
func DDR3_1600x4() Config {
	return Config{
		Channels:     4,
		BanksPerChan: 8,
		RowBytes:     2048,
		BurstBytes:   64,
		TCAS:         14,
		TRCD:         14,
		TRP:          14,
		TFAW:         40,
		TREFI:        7800, // 7.8 us
		TRFC:         160,  // 160 ns
		BurstCycle:   5,    // 64 B / 12.8 GB/s = 5 ns
		QueueDepth:   64,
	}
}

// Request is one burst-granularity memory request.
type Request struct {
	Addr  uint64 // byte address (aligned down to BurstBytes internally)
	Write bool
	// Done is invoked when the burst completes (data returned for reads,
	// write committed for writes).
	Done func(now int64)
	// Tag identifies the request's owner to checkpoint/restore: Done
	// closures cannot be serialized, so Restore rebuilds them from Tags.
	Tag int64

	issued   int64 // arrival cycle, for FR-FCFS aging
	attempts int   // transient-failure retries so far

	// Cached address decomposition (see decode); geometry-derived, so it
	// never changes once computed.
	bk      int
	row     int64
	decoded bool
}

type bank struct {
	openRow int64 // -1 = closed
	readyAt int64 // earliest cycle the bank can accept a command
}

type channel struct {
	queue   []*Request
	banks   []bank
	busFree int64    // earliest cycle the data bus is free
	acts    [4]int64 // issue times of the last four row activates (tFAW)
}

// Stats aggregates memory-system activity.
type Stats struct {
	Reads, Writes   int64
	Refreshes       int64
	RowHits         int64
	RowMisses       int64 // closed-row activations
	RowConflicts    int64 // open-row mismatch (precharge + activate)
	BytesRead       int64
	BytesWritten    int64
	TotalLatency    int64 // sum of request latencies, cycles
	MaxQueueOcc     int
	StallsQueueFull int64

	// Fault-injection activity (all zero when no faults are armed).
	Retries           int64 // transient-failure retries issued
	RetriesExhausted  int64 // bursts that hit MaxRetries and completed anyway
	LatencySpikes     int64 // bursts delayed by an injected latency spike
	StallsChannelDown int64 // submissions rejected with every channel down
}

// ChanStats is one channel's share of the activity counters — the
// per-channel view the observability layer needs to show bank-conflict and
// row-hit imbalance across channels (e.g. after a kill-chan remap piles two
// channels' traffic onto one).
type ChanStats struct {
	Reads, Writes int64
	RowHits       int64
	RowMisses     int64
	RowConflicts  int64
	Retries       int64
	MaxQueueOcc   int
}

// AvgLatency returns the mean request latency in cycles.
func (s Stats) AvgLatency() float64 {
	n := s.Reads + s.Writes
	if n == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(n)
}

// DRAM is the memory system instance.
type DRAM struct {
	cfg      Config
	channels []channel
	// pending holds scheduled completions keyed by finish cycle. The heap's
	// (cycle, push-order) tie-break reproduces the legacy slice's insertion-
	// order firing for same-cycle completions, which keeps the fault PRNG's
	// draw sequence — and therefore every checkpoint byte — identical.
	pending     eventq.Queue[*Request]
	stats       Stats
	chanStats   []ChanStats
	now         int64
	nextRefresh int64

	// Fault injection (nil when the memory system is healthy).
	faults  *Faults
	rng     prng
	healthy []int        // channels accepting traffic under the fault plan
	retryq  []completion // bursts awaiting retry after transient failures
}

type completion struct {
	at  int64
	req *Request
}

// New creates a memory system.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, channels: make([]channel, cfg.Channels),
		chanStats: make([]ChanStats, cfg.Channels), nextRefresh: int64(cfg.TREFI)}
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChan)
		for b := range d.channels[i].banks {
			d.channels[i].banks[b].openRow = -1
		}
		for a := range d.channels[i].acts {
			d.channels[i].acts[a] = -int64(cfg.TFAW)
		}
	}
	return d
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of activity counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ChannelStats returns a copy of the per-channel activity counters,
// indexed by channel.
func (d *DRAM) ChannelStats() []ChanStats {
	return append([]ChanStats(nil), d.chanStats...)
}

// channelOf maps an address to a channel: burst-granularity interleaving
// spreads consecutive bursts across channels. Under a fault plan, traffic
// owned by a downed channel remaps onto the healthy ones (-1 if none).
func (d *DRAM) channelOf(addr uint64) int {
	if d.faults != nil {
		return d.remapChannel(addr)
	}
	return int(addr/uint64(d.cfg.BurstBytes)) % d.cfg.Channels
}

// bankRowOf maps an address to (bank, row) within its channel.
func (d *DRAM) bankRowOf(addr uint64) (int, int64) {
	block := addr / uint64(d.cfg.BurstBytes) / uint64(d.cfg.Channels)
	row := int64(block * uint64(d.cfg.BurstBytes) / uint64(d.cfg.RowBytes))
	b := int(row) % d.cfg.BanksPerChan
	return b, row
}

// decode caches a request's (bank, row) on the request itself: the FR-FCFS
// scan revisits every queued request every tick, and the divisions in
// bankRowOf dominated the scheduler's profile. Bank and row depend only on
// the address and the (immutable) geometry, never on fault remapping, so
// the cache is safe across the request's whole life.
func (d *DRAM) decode(r *Request) (int, int64) {
	if !r.decoded {
		r.bk, r.row = d.bankRowOf(r.Addr)
		r.decoded = true
	}
	return r.bk, r.row
}

// CanAccept reports whether the channel owning addr has queue space.
func (d *DRAM) CanAccept(addr uint64) bool {
	ci := d.channelOf(addr)
	if ci < 0 {
		return false
	}
	return len(d.channels[ci].queue) < d.cfg.QueueDepth
}

// Submit enqueues a request; it returns false (and drops the request) if
// the owning channel's queue is full — callers must retry.
func (d *DRAM) Submit(r *Request) bool {
	ci := d.channelOf(r.Addr)
	if ci < 0 {
		d.stats.StallsChannelDown++
		return false
	}
	ch := &d.channels[ci]
	if len(ch.queue) >= d.cfg.QueueDepth {
		d.stats.StallsQueueFull++
		return false
	}
	r.issued = d.now
	ch.queue = append(ch.queue, r)
	if occ := len(ch.queue); occ > d.stats.MaxQueueOcc {
		d.stats.MaxQueueOcc = occ
	}
	if occ := len(ch.queue); occ > d.chanStats[ci].MaxQueueOcc {
		d.chanStats[ci].MaxQueueOcc = occ
	}
	return true
}

// Tick advances the memory system to cycle now: schedules one command per
// idle channel (FR-FCFS: row hits first, then oldest) and fires completed
// requests' callbacks.
func (d *DRAM) Tick(now int64) {
	d.now = now
	// Fire completions; bursts hit by a transient fault re-queue instead.
	for {
		at, ok := d.pending.PeekAt()
		if !ok || at > now {
			break
		}
		r, _ := d.pending.Pop()
		if !d.maybeRetry(r, now) {
			d.finish(r, now)
		}
	}
	d.drainRetries(now)

	// Periodic refresh: every tREFI, each channel's banks are unavailable
	// for tRFC and rows close.
	if d.cfg.TREFI > 0 && now >= d.nextRefresh {
		d.nextRefresh = now + int64(d.cfg.TREFI)
		d.stats.Refreshes++
		for ci := range d.channels {
			ch := &d.channels[ci]
			// The refresh occupies the whole channel for tRFC: already-
			// reserved transfers push out and banks reopen afterwards.
			if ch.busFree < now {
				ch.busFree = now
			}
			ch.busFree += int64(d.cfg.TRFC)
			until := ch.busFree
			for b := range ch.banks {
				if ch.banks[b].readyAt < until {
					ch.banks[b].readyAt = until
				}
				ch.banks[b].openRow = -1
			}
		}
	}

	for ci := range d.channels {
		d.schedule(ci, now)
	}
}

func (d *DRAM) finish(r *Request, now int64) {
	d.stats.TotalLatency += now - r.issued
	ci := d.channelOf(r.Addr)
	if r.Write {
		d.stats.Writes++
		d.stats.BytesWritten += int64(d.cfg.BurstBytes)
		if ci >= 0 {
			d.chanStats[ci].Writes++
		}
	} else {
		d.stats.Reads++
		d.stats.BytesRead += int64(d.cfg.BurstBytes)
		if ci >= 0 {
			d.chanStats[ci].Reads++
		}
	}
	if r.Done != nil {
		r.Done(now)
	}
}

func (d *DRAM) schedule(ci int, now int64) {
	ch := &d.channels[ci]
	if len(ch.queue) == 0 {
		return
	}
	// FR-FCFS: first ready row hit, else oldest whose bank is ready (one
	// pass; tracking the oldest-ready fallback while scanning for a row hit
	// picks the same request the two-pass form would).
	pick, oldestReady := -1, -1
	for i, r := range ch.queue {
		b, row := d.decode(r)
		bk := &ch.banks[b]
		if bk.readyAt > now {
			continue
		}
		if bk.openRow == row {
			pick = i
			break
		}
		if oldestReady < 0 {
			oldestReady = i
		}
	}
	if pick < 0 {
		pick = oldestReady
	}
	if pick < 0 {
		return
	}
	r := ch.queue[pick]
	ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)

	b, row := d.decode(r)
	bk := &ch.banks[b]
	var accessLatency int64
	switch {
	case bk.openRow == row:
		d.stats.RowHits++
		d.chanStats[ci].RowHits++
		accessLatency = int64(d.cfg.TCAS)
	case bk.openRow == -1:
		d.stats.RowMisses++
		d.chanStats[ci].RowMisses++
		accessLatency = int64(d.cfg.TRCD + d.cfg.TCAS)
	default:
		d.stats.RowConflicts++
		d.chanStats[ci].RowConflicts++
		accessLatency = int64(d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS)
	}
	bk.openRow = row
	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}
	if accessLatency > int64(d.cfg.TCAS) && d.cfg.TFAW > 0 {
		// Row activate: respect the four-activate window.
		if w := ch.acts[0] + int64(d.cfg.TFAW); w > start {
			start = w
		}
		copy(ch.acts[:], ch.acts[1:])
		ch.acts[3] = start
	}
	accessLatency += d.spikeLatency()
	dataAt := start + accessLatency
	if dataAt < ch.busFree {
		dataAt = ch.busFree
	}
	done := dataAt + int64(d.cfg.BurstCycle)
	ch.busFree = dataAt + int64(d.cfg.BurstCycle)
	// Column commands pipeline: the bank accepts the next command after
	// tCCD (~ one burst) plus any activate/precharge work, while this
	// request's data is still in flight.
	bk.readyAt = start + int64(d.cfg.BurstCycle) + (accessLatency - int64(d.cfg.TCAS))
	d.pending.Push(done, r)
}

// Idle reports whether no requests are queued or in flight.
func (d *DRAM) Idle() bool {
	if d.pending.Len() > 0 || len(d.retryq) > 0 {
		return false
	}
	for i := range d.channels {
		if len(d.channels[i].queue) > 0 {
			return false
		}
	}
	return true
}

// NextEventAt returns the earliest cycle strictly after now at which a Tick
// could change memory-system state: a pending completion firing, a retry
// backoff elapsing (a due-but-blocked retry forces now+1, because its
// failed per-tick resubmission attempts increment stall counters), the next
// refresh, or a channel whose queued work finds a ready bank. Every cycle
// strictly between now and the returned value is provably a Tick no-op, so
// the event-driven engine may skip straight to it. Returns -1 when no
// event is scheduled (the memory system is idle and refresh is disabled).
func (d *DRAM) NextEventAt(now int64) int64 {
	next := int64(-1)
	consider := func(v int64) {
		if v <= now {
			v = now + 1
		}
		if next < 0 || v < next {
			next = v
		}
	}
	// now+1 is the floor; once a candidate hits it, nothing can be earlier,
	// so the remaining (and costlier) scans are skipped.
	if at, ok := d.pending.PeekAt(); ok {
		consider(at)
	}
	for _, c := range d.retryq {
		consider(c.at)
	}
	if d.cfg.TREFI > 0 {
		consider(d.nextRefresh)
	}
	for ci := range d.channels {
		if next == now+1 {
			return next
		}
		ch := &d.channels[ci]
		if len(ch.queue) == 0 {
			continue
		}
		// FR-FCFS can issue a command the first cycle any queued request's
		// bank is ready; before that every schedule() pass picks nothing.
		for _, r := range ch.queue {
			b, _ := d.decode(r)
			consider(ch.banks[b].readyAt)
			if next == now+1 {
				return next
			}
		}
	}
	return next
}

// Accepts probes whether Submit would succeed for addr right now, with no
// side effects (no stall counters, no state change). down reports the
// rejection kind when ok is false: true when no healthy channel owns the
// address, false when the owning channel's queue is full.
func (d *DRAM) Accepts(addr uint64) (ok, down bool) {
	ci := d.channelOf(addr)
	if ci < 0 {
		return false, true
	}
	return len(d.channels[ci].queue) < d.cfg.QueueDepth, false
}

// AccountRejects adds n rejected-submission attempts to the stall counters
// without performing them. The event-driven engine parks a transfer whose
// submissions are blocked instead of re-attempting every cycle; this keeps
// the counters — which are part of the checkpoint wire format — identical
// to the legacy engine's per-cycle attempts.
func (d *DRAM) AccountRejects(down bool, n int64) {
	if n <= 0 {
		return
	}
	if down {
		d.stats.StallsChannelDown += n
	} else {
		d.stats.StallsQueueFull += n
	}
}

// QueueSlack returns the free request-queue slots on channel ci.
func (d *DRAM) QueueSlack(ci int) int {
	if ci < 0 || ci >= len(d.channels) {
		return 0
	}
	return d.cfg.QueueDepth - len(d.channels[ci].queue)
}

// ChannelIndex returns the (fault-remapped) channel owning addr, -1 when
// every candidate channel is down.
func (d *DRAM) ChannelIndex(addr uint64) int { return d.channelOf(addr) }

// EventCount returns scheduled future events (pending completions plus
// retrying bursts) — the event-queue depth the observability gauge samples.
func (d *DRAM) EventCount() int { return d.pending.Len() + len(d.retryq) }

// PeakBandwidth returns bytes/cycle at full bus utilisation.
func (c Config) PeakBandwidth() float64 {
	return float64(c.Channels) * float64(c.BurstBytes) / float64(c.BurstCycle)
}

func (c Config) String() string {
	return fmt.Sprintf("%d ch x %d banks, %dB rows, %dB bursts, CAS/RCD/RP %d/%d/%d",
		c.Channels, c.BanksPerChan, c.RowBytes, c.BurstBytes, c.TCAS, c.TRCD, c.TRP)
}
