package dram

import (
	"fmt"

	"plasticine/internal/eventq"
)

// This file supports mid-run checkpointing: the memory system's entire
// dynamic state — bank row buffers, bus reservations, refresh phase, queued
// and in-flight requests, the retry queue, counters and the fault PRNG — can
// be captured into a MemState and later restored into a fresh DRAM, so a
// resumed simulation is cycle-identical to one that never stopped.

// prng is a serializable splitmix64 generator. The fault model uses it
// instead of math/rand so its exact position in the draw sequence survives a
// checkpoint: state is one word, restored verbatim.
type prng struct{ state uint64 }

func newPRNG(seed int64) prng { return prng{state: uint64(seed)} }

// Float64 returns the next draw in [0, 1).
func (p *prng) Float64() float64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// ReqState is the serializable form of one queued or in-flight request. Tag
// carries the caller's identity for the request (the simulator stores the
// owning activity id) so completion callbacks can be re-attached on restore.
type ReqState struct {
	Addr     uint64
	Write    bool
	Issued   int64
	Attempts int32
	Tag      int64
	At       int64 // completion/retry cycle; unused for queued requests
}

// BankState is one bank's row-buffer and command-timing state.
type BankState struct {
	OpenRow int64
	ReadyAt int64
}

// MemState is a complete snapshot of the memory system's dynamic state.
type MemState struct {
	Now         int64
	NextRefresh int64
	RNG         uint64
	Stats       Stats
	Chans       []ChanStats // per-channel counters, indexed by channel

	Banks   []BankState // Channels * BanksPerChan, channel-major
	BusFree []int64     // per channel
	Acts    []int64     // Channels * 4 recent activate times, channel-major

	Queued  [][]ReqState // per channel, queue order
	Pending []ReqState   // scheduled completions, in order; At = finish cycle
	Retry   []ReqState   // retry queue, in order; At = resubmit cycle
}

func reqState(r *Request, at int64) ReqState {
	return ReqState{Addr: r.Addr, Write: r.Write, Issued: r.issued,
		Attempts: int32(r.attempts), Tag: r.Tag, At: at}
}

// Snapshot captures the memory system's dynamic state. The snapshot is
// deterministic: two identical systems produce identical MemStates.
func (d *DRAM) Snapshot() *MemState {
	st := &MemState{
		Now:         d.now,
		NextRefresh: d.nextRefresh,
		RNG:         d.rng.state,
		Stats:       d.stats,
		Chans:       append([]ChanStats(nil), d.chanStats...),
		Queued:      make([][]ReqState, len(d.channels)),
	}
	for ci := range d.channels {
		ch := &d.channels[ci]
		for _, bk := range ch.banks {
			st.Banks = append(st.Banks, BankState{OpenRow: bk.openRow, ReadyAt: bk.readyAt})
		}
		st.BusFree = append(st.BusFree, ch.busFree)
		st.Acts = append(st.Acts, ch.acts[:]...)
		for _, r := range ch.queue {
			st.Queued[ci] = append(st.Queued[ci], reqState(r, 0))
		}
	}
	d.pending.InOrder(func(at int64, r *Request) {
		st.Pending = append(st.Pending, reqState(r, at))
	})
	for _, c := range d.retryq {
		st.Retry = append(st.Retry, reqState(c.req, c.at))
	}
	return st
}

// Restore loads a snapshot into a fresh memory system of the same
// configuration (and, if faults were armed when the snapshot was taken, with
// InjectFaults already applied). done rebuilds the completion callback for a
// request from its Tag; it may be nil when the snapshot holds no requests.
func (d *DRAM) Restore(st *MemState, done func(tag int64) func(now int64)) error {
	if want := d.cfg.Channels * d.cfg.BanksPerChan; len(st.Banks) != want {
		return fmt.Errorf("dram: snapshot has %d bank states, config wants %d", len(st.Banks), want)
	}
	if len(st.BusFree) != d.cfg.Channels || len(st.Acts) != 4*d.cfg.Channels {
		return fmt.Errorf("dram: snapshot channel state (%d bus, %d acts) does not fit %d channels",
			len(st.BusFree), len(st.Acts), d.cfg.Channels)
	}
	if len(st.Queued) != d.cfg.Channels {
		return fmt.Errorf("dram: snapshot has %d queues, config wants %d", len(st.Queued), d.cfg.Channels)
	}
	if len(st.Chans) != d.cfg.Channels {
		return fmt.Errorf("dram: snapshot has %d channel counter sets, config wants %d", len(st.Chans), d.cfg.Channels)
	}
	revive := func(rs ReqState) (*Request, error) {
		r := &Request{Addr: rs.Addr, Write: rs.Write, Tag: rs.Tag,
			issued: rs.Issued, attempts: int(rs.Attempts)}
		if done == nil {
			return nil, fmt.Errorf("dram: snapshot holds in-flight requests but no callback factory was given")
		}
		r.Done = done(rs.Tag)
		if r.Done == nil {
			return nil, fmt.Errorf("dram: no completion callback for request tag %d", rs.Tag)
		}
		return r, nil
	}
	d.now = st.Now
	d.nextRefresh = st.NextRefresh
	d.rng.state = st.RNG
	d.stats = st.Stats
	copy(d.chanStats, st.Chans)
	for ci := range d.channels {
		ch := &d.channels[ci]
		for b := range ch.banks {
			bs := st.Banks[ci*d.cfg.BanksPerChan+b]
			ch.banks[b] = bank{openRow: bs.OpenRow, readyAt: bs.ReadyAt}
		}
		ch.busFree = st.BusFree[ci]
		copy(ch.acts[:], st.Acts[ci*4:ci*4+4])
		ch.queue = nil
		for _, rs := range st.Queued[ci] {
			r, err := revive(rs)
			if err != nil {
				return err
			}
			ch.queue = append(ch.queue, r)
		}
	}
	d.pending = eventq.Queue[*Request]{}
	for _, rs := range st.Pending {
		r, err := revive(rs)
		if err != nil {
			return err
		}
		d.pending.Push(rs.At, r)
	}
	d.retryq = nil
	for _, rs := range st.Retry {
		r, err := revive(rs)
		if err != nil {
			return err
		}
		d.retryq = append(d.retryq, completion{at: rs.At, req: r})
	}
	return nil
}
