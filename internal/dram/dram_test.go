package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// drain ticks until idle, returning the cycle everything completed.
func drain(d *DRAM, start int64) int64 {
	now := start
	for !d.Idle() {
		now++
		d.Tick(now)
		if now > start+10_000_000 {
			panic("dram did not drain")
		}
	}
	return now
}

func TestSingleReadLatency(t *testing.T) {
	d := New(DDR3_1600x4())
	var doneAt int64 = -1
	d.Tick(0)
	d.Submit(&Request{Addr: 0, Done: func(now int64) { doneAt = now }})
	end := drain(d, 0)
	// One queue cycle + closed-row activate: 1 + tRCD + tCAS + burst = 34.
	if doneAt != 34 {
		t.Errorf("first read completed at %d, want 34", doneAt)
	}
	if end < doneAt {
		t.Errorf("drain ended %d before completion %d", end, doneAt)
	}
	st := d.Stats()
	if st.Reads != 1 || st.RowMisses != 1 || st.BytesRead != 64 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := DDR3_1600x4()

	// Two sequential reads in the same row: second is a row hit.
	d := New(cfg)
	d.Tick(0)
	d.Submit(&Request{Addr: 0})
	d.Submit(&Request{Addr: uint64(cfg.BurstBytes * cfg.Channels)}) // same channel, same row
	drain(d, 0)
	if d.Stats().RowHits != 1 {
		t.Errorf("sequential same-row reads: hits = %d, want 1", d.Stats().RowHits)
	}

	// Two reads to different rows of the same bank: conflict.
	d2 := New(cfg)
	d2.Tick(0)
	stride := uint64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChan)
	d2.Submit(&Request{Addr: 0})
	d2.Submit(&Request{Addr: stride})
	drain(d2, 0)
	if d2.Stats().RowConflicts != 1 {
		t.Errorf("same-bank different-row reads: conflicts = %d, want 1", d2.Stats().RowConflicts)
	}
}

func TestDenseStreamApproachesPeakBandwidth(t *testing.T) {
	cfg := DDR3_1600x4()
	d := New(cfg)
	n := 4096 // bursts
	next := 0
	now := int64(0)
	done := 0 // shared across iterations: completion closures must see it
	for done < n {
		now++
		for next < n && d.Submit(&Request{Addr: uint64(next * cfg.BurstBytes), Done: func(int64) { done++ }}) {
			next++
		}
		d.Tick(now)
		if now > 10_000_000 {
			t.Fatal("stream did not finish")
		}
	}
	bytes := float64(n * cfg.BurstBytes)
	achieved := bytes / float64(now)
	peak := cfg.PeakBandwidth()
	if achieved < 0.8*peak {
		t.Errorf("dense stream bandwidth %.1f B/cycle < 80%% of peak %.1f", achieved, peak)
	}
	hitRate := float64(d.Stats().RowHits) / float64(n)
	if hitRate < 0.9 {
		t.Errorf("dense stream row-hit rate %.2f, want > 0.9", hitRate)
	}
}

func TestRandomAccessSlowerThanDense(t *testing.T) {
	cfg := DDR3_1600x4()
	run := func(addrs []uint64) int64 {
		d := New(cfg)
		i := 0
		done := 0
		now := int64(0)
		for done < len(addrs) {
			now++
			for i < len(addrs) && d.Submit(&Request{Addr: addrs[i], Done: func(int64) { done++ }}) {
				i++
			}
			d.Tick(now)
			if now > 50_000_000 {
				panic("did not finish")
			}
		}
		return now
	}
	n := 2048
	dense := make([]uint64, n)
	sparse := make([]uint64, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		dense[i] = uint64(i * cfg.BurstBytes)
		sparse[i] = uint64(rng.Intn(1<<24)) &^ uint64(cfg.BurstBytes-1)
	}
	td, ts := run(dense), run(sparse)
	if float64(ts) < 1.5*float64(td) {
		t.Errorf("random (%d cycles) should be >=1.5x slower than dense (%d cycles)", ts, td)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	cfg := DDR3_1600x4()
	cfg.QueueDepth = 4
	d := New(cfg)
	d.Tick(0)
	accepted := 0
	for i := 0; i < 10; i++ {
		if d.Submit(&Request{Addr: uint64(i * cfg.BurstBytes * cfg.Channels)}) { // all same channel
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d requests into depth-4 queue, want 4", accepted)
	}
	if d.Stats().StallsQueueFull != 6 {
		t.Errorf("stalls = %d, want 6", d.Stats().StallsQueueFull)
	}
	if d.CanAccept(0) {
		t.Error("CanAccept should be false when the channel queue is full")
	}
}

func TestChannelInterleaving(t *testing.T) {
	cfg := DDR3_1600x4()
	d := New(cfg)
	seen := map[int]bool{}
	for i := 0; i < cfg.Channels; i++ {
		seen[d.channelOf(uint64(i*cfg.BurstBytes))] = true
	}
	if len(seen) != cfg.Channels {
		t.Errorf("consecutive bursts map to %d channels, want %d", len(seen), cfg.Channels)
	}
}

func TestWritesCounted(t *testing.T) {
	d := New(DDR3_1600x4())
	d.Tick(0)
	d.Submit(&Request{Addr: 0, Write: true})
	d.Submit(&Request{Addr: 64})
	drain(d, 0)
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 64 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgLatency() <= 0 {
		t.Error("average latency should be positive")
	}
}

func TestAllRequestsEventuallyCompleteProperty(t *testing.T) {
	cfg := DDR3_1600x4()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		d := New(cfg)
		done := 0
		now := int64(0)
		i := 0
		for done < n {
			now++
			for i < n {
				addr := uint64(rng.Intn(1<<20)) &^ uint64(cfg.BurstBytes-1)
				if !d.Submit(&Request{Addr: addr, Write: rng.Intn(2) == 0, Done: func(int64) { done++ }}) {
					break
				}
				i++
			}
			d.Tick(now)
			if now > 1_000_000 {
				return false
			}
		}
		st := d.Stats()
		return st.Reads+st.Writes == int64(n) && d.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPeakBandwidthValue(t *testing.T) {
	// 4 channels x 64 B / 5 cycles = 51.2 B/cycle = 51.2 GB/s at 1 GHz.
	if got := DDR3_1600x4().PeakBandwidth(); got != 51.2 {
		t.Errorf("peak bandwidth = %.1f B/cycle, want 51.2", got)
	}
}

func TestRefreshStallsBanks(t *testing.T) {
	cfg := DDR3_1600x4()
	cfg.TREFI = 100
	cfg.TRFC = 50
	d := New(cfg)
	// Saturate one channel with row hits and measure throughput with and
	// without refresh overhead.
	run := func(c Config) int64 {
		dd := New(c)
		done, next, now := 0, 0, int64(0)
		n := 512
		for done < n {
			now++
			for next < n && dd.Submit(&Request{Addr: uint64(next * c.BurstBytes), Done: func(int64) { done++ }}) {
				next++
			}
			dd.Tick(now)
			if now > 1_000_000 {
				t.Fatal("did not finish")
			}
		}
		return now
	}
	noRefresh := cfg
	noRefresh.TREFI = 0
	tRef := run(cfg)
	tNo := run(noRefresh)
	if tRef <= tNo {
		t.Errorf("refresh run (%d cycles) should be slower than no-refresh (%d)", tRef, tNo)
	}
	_ = d
	dd := New(cfg)
	for i := int64(1); i < 500; i++ {
		dd.Tick(i)
	}
	if dd.Stats().Refreshes < 4 {
		t.Errorf("refreshes = %d over 500 cycles with tREFI=100, want >= 4", dd.Stats().Refreshes)
	}
}
