package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := NewFairQueue(8)
	for i := 0; i < 5; i++ {
		if err := q.Push("t", 1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v, err := q.Pop(context.Background())
		if err != nil || v.(int) != i {
			t.Fatalf("Pop %d = (%v, %v), want in-order FIFO", i, v, err)
		}
	}
}

func TestFairQueueBounded(t *testing.T) {
	q := NewFairQueue(2)
	if err := q.Push("a", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("b", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c", 1, 3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Push over capacity = %v, want ErrQueueFull", err)
	}
	if _, err := q.Pop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c", 1, 3); err != nil {
		t.Fatalf("Push after Pop freed a slot = %v", err)
	}
}

// TestFairQueueWeightedShare floods the queue from two tenants and checks
// the dequeue interleaving: a weight-2 tenant drains twice as fast as a
// weight-1 tenant while both are backlogged.
func TestFairQueueWeightedShare(t *testing.T) {
	q := NewFairQueue(64)
	for i := 0; i < 12; i++ {
		if err := q.Push("heavy", 2, "heavy"); err != nil {
			t.Fatal(err)
		}
		if err := q.Push("light", 1, "light"); err != nil {
			t.Fatal(err)
		}
	}
	heavy := 0
	for i := 0; i < 9; i++ {
		v, err := q.Pop(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if v.(string) == "heavy" {
			heavy++
		}
	}
	// Stride scheduling gives heavy 2 of every 3 dequeues: exactly 6 of the
	// first 9.
	if heavy != 6 {
		t.Fatalf("weight-2 tenant got %d of the first 9 dequeues, want 6", heavy)
	}
}

// TestFairQueueFloodCannotStarve checks the headline admission property: a
// tenant arriving behind another tenant's flood is served on the very next
// dequeue, not after the flood.
func TestFairQueueFloodCannotStarve(t *testing.T) {
	q := NewFairQueue(64)
	for i := 0; i < 20; i++ {
		if err := q.Push("flooder", 1, "flooder"); err != nil {
			t.Fatal(err)
		}
	}
	// Drain a few so the flooder's virtual pass advances past zero.
	for i := 0; i < 3; i++ {
		if _, err := q.Pop(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("newcomer", 1, "newcomer"); err != nil {
		t.Fatal(err)
	}
	v, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != "newcomer" {
		t.Fatalf("newcomer behind a 17-deep flood was dequeued %q first", v)
	}
}

func TestFairQueueDeterministicTieBreak(t *testing.T) {
	// Two fresh tenants share pass 0; the tie must break by name, every time.
	for trial := 0; trial < 10; trial++ {
		q := NewFairQueue(8)
		if err := q.Push("zeta", 1, "zeta"); err != nil {
			t.Fatal(err)
		}
		if err := q.Push("alpha", 1, "alpha"); err != nil {
			t.Fatal(err)
		}
		v, err := q.Pop(context.Background())
		if err != nil || v.(string) != "alpha" {
			t.Fatalf("trial %d: first Pop = (%v, %v), want alpha by name tie-break", trial, v, err)
		}
	}
}

func TestFairQueuePopBlocksAndUnblocks(t *testing.T) {
	q := NewFairQueue(4)
	got := make(chan any, 1)
	go func() {
		v, _ := q.Pop(context.Background())
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Push("t", 1, "late"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v.(string) != "late" {
			t.Fatalf("Pop = %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop never unblocked after Push")
	}
}

func TestFairQueueClose(t *testing.T) {
	q := NewFairQueue(4)
	ctx := context.Background()
	errs := make(chan error, 1)
	go func() {
		_, err := q.Pop(ctx)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	q.Close() // idempotent
	select {
	case err := <-errs:
		if !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("Pop after Close = %v, want ErrQueueClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close never woke the blocked Pop")
	}
	if err := q.Push("t", 1, 1); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Push after Close = %v, want ErrQueueClosed", err)
	}
}

func TestFairQueuePopHonorsContext(t *testing.T) {
	q := NewFairQueue(4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Pop on empty queue = %v, want DeadlineExceeded", err)
	}
}

func TestFairQueueDepths(t *testing.T) {
	q := NewFairQueue(8)
	q.Push("a", 1, 1)
	q.Push("a", 1, 2)
	q.Push("b", 1, 3)
	d := q.Depths()
	if d["a"] != 2 || d["b"] != 1 || len(d) != 2 {
		t.Fatalf("Depths = %v", d)
	}
	if q.Len() != 3 || q.Cap() != 8 {
		t.Fatalf("Len/Cap = %d/%d", q.Len(), q.Cap())
	}
}

func TestPoolRunningOccupancy(t *testing.T) {
	p := NewPool(4)
	if p.Running() != 0 {
		t.Fatalf("idle pool reports %d running", p.Running())
	}
	release := make(chan struct{})
	peak := make(chan int, 1)
	var once sync.Once
	var started sync.WaitGroup
	started.Add(4)
	go func() {
		started.Wait()
		once.Do(func() { peak <- p.Running() })
		close(release)
	}()
	err := p.Map(context.Background(), 4, func(ctx context.Context, i int) error {
		started.Done()
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := <-peak; got != 4 {
		t.Fatalf("Running() at peak = %d, want 4", got)
	}
	if p.Running() != 0 {
		t.Fatalf("Running() after Map = %d, want 0", p.Running())
	}
}

// TestDiskCacheEvictionDeterministicOnCoarseMtimes pins every entry to the
// same second — what a burst of writes looks like on a filesystem with 1s
// mtime resolution — and checks that eviction picks the same victims every
// time (name order), independent of directory iteration order.
func TestDiskCacheEvictionDeterministicOnCoarseMtimes(t *testing.T) {
	survivors := func() []string {
		dir := t.TempDir()
		d, err := OpenDiskCache(dir, 220)
		if err != nil {
			t.Fatal(err)
		}
		stamp := time.Now().Truncate(time.Second).Add(-time.Hour)
		for i := 0; i < 6; i++ {
			k := NewKey(fmt.Sprintf("point-%d", i))
			if err := d.Put(k, []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			// Coarse clock: every entry shares one mtime.
			if err := os.Chtimes(d.path(k), stamp, stamp); err != nil {
				t.Fatal(err)
			}
		}
		d.enforceCap()
		if s := d.Stats(); s.Evicted == 0 {
			t.Fatal("cap sweep over budget evicted nothing")
		}
		var kept []string
		for i := 0; i < 6; i++ {
			if _, ok := d.Get(NewKey(fmt.Sprintf("point-%d", i))); ok {
				kept = append(kept, fmt.Sprintf("point-%d", i))
			}
		}
		return kept
	}
	first := survivors()
	if len(first) == 0 || len(first) == 6 {
		t.Fatalf("survivors = %v, want a strict subset", first)
	}
	for trial := 0; trial < 3; trial++ {
		if got := survivors(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("trial %d survivors = %v, first run = %v; eviction under equal mtimes is nondeterministic", trial, got, first)
		}
	}
}
