package exec

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by FairQueue.Push when the queue is at its
// bounded capacity. Callers translate it into back-pressure (the serving
// layer answers 429 with a Retry-After hint) instead of queueing unboundedly.
var ErrQueueFull = errors.New("exec: queue full")

// ErrQueueClosed is returned by Push and Pop once the queue has been closed
// (the serving layer closes it during drain, after the dispatchers stop).
var ErrQueueClosed = errors.New("exec: queue closed")

// FairQueue is a bounded multi-tenant queue with weighted fair dequeue:
// each tenant gets its own FIFO, and Pop picks across tenants by stride
// scheduling, so a tenant flooding the queue cannot starve the others — a
// tenant with weight w receives a w-proportional share of dequeues while
// backlogged, and an idle tenant's first request is served promptly rather
// than waiting behind a flood. Within one tenant, order is strictly FIFO.
//
// Safe for concurrent use. Determinism: dequeue order is a pure function of
// the (tenant, weight, push-order) history — ties in virtual time break by
// tenant name — which the schedule tests rely on.
type FairQueue struct {
	mu      sync.Mutex
	tenants map[string]*tenantFIFO
	depth   int
	closed  bool

	// vtime is the queue-wide virtual time: the pass of the last dequeued
	// item. A tenant going from idle to backlogged starts at vtime, not at
	// its stale old pass, so it neither owes credit for its idle period nor
	// gets to claim it back as a burst.
	vtime uint64

	// tokens carries exactly one token per queued item; Pop blocks on it.
	// Its capacity equals the queue bound, so Push never blocks sending.
	tokens chan struct{}
	done   chan struct{}
}

// strideScale is the numerator of the per-dequeue stride: stride = scale/w.
// Large enough that weights up to 10^6 still get distinct strides.
const strideScale = 1 << 20

type tenantFIFO struct {
	items  []any
	pass   uint64 // virtual time at which this tenant's next item is served
	stride uint64
}

// NewFairQueue returns a queue bounded at capacity items (minimum 1).
func NewFairQueue(capacity int) *FairQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &FairQueue{
		tenants: map[string]*tenantFIFO{},
		tokens:  make(chan struct{}, capacity),
		done:    make(chan struct{}),
	}
}

// Push enqueues item for tenant with the given scheduling weight (minimum
// 1; a weight-2 tenant is dequeued twice as often as a weight-1 tenant
// while both are backlogged). Returns ErrQueueFull at capacity and
// ErrQueueClosed after Close; never blocks.
func (q *FairQueue) Push(tenant string, weight int, item any) error {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrQueueClosed
	}
	if q.depth >= cap(q.tokens) {
		q.mu.Unlock()
		return ErrQueueFull
	}
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantFIFO{}
		q.tenants[tenant] = t
	}
	t.stride = strideScale / uint64(weight)
	if len(t.items) == 0 && t.pass < q.vtime {
		t.pass = q.vtime
	}
	t.items = append(t.items, item)
	q.depth++
	q.mu.Unlock()
	q.tokens <- struct{}{} // capacity == bound, never blocks
	return nil
}

// Pop dequeues the next item under the fair schedule, blocking until one is
// available, ctx dies, or the queue is closed.
func (q *FairQueue) Pop(ctx context.Context) (any, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-q.done:
		return nil, ErrQueueClosed
	case <-q.tokens:
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// Pick the backlogged tenant with the smallest pass; break ties by name
	// so the schedule is deterministic.
	var bestName string
	var best *tenantFIFO
	for name, t := range q.tenants {
		if len(t.items) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && name < bestName) {
			bestName, best = name, t
		}
	}
	if best == nil {
		// Unreachable while the token invariant holds (one token per item).
		return nil, ErrQueueClosed
	}
	item := best.items[0]
	best.items[0] = nil // release the reference
	best.items = best.items[1:]
	if len(best.items) == 0 {
		best.items = nil
	}
	q.vtime = best.pass
	best.pass += best.stride
	q.depth--
	return item, nil
}

// Len reports the number of queued items. Nil-safe.
func (q *FairQueue) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Cap reports the queue's bound. Nil-safe.
func (q *FairQueue) Cap() int {
	if q == nil {
		return 0
	}
	return cap(q.tokens)
}

// Depths snapshots the per-tenant backlog (tenants with queued items only),
// for stats endpoints. Nil-safe.
func (q *FairQueue) Depths() map[string]int {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := map[string]int{}
	for name, t := range q.tenants {
		if len(t.items) > 0 {
			out[name] = len(t.items)
		}
	}
	return out
}

// Close rejects further Pushes and wakes every blocked Pop with
// ErrQueueClosed. Items still queued are dropped: Close is the hard edge of
// a drain, after in-flight work has been given its chance. Idempotent.
func (q *FairQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.done)
}
