package exec

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- panic isolation -------------------------------------------------------

func TestMapRecoversPanicSequential(t *testing.T) {
	p := NewPool(1)
	err := p.Map(context.Background(), 4, func(_ context.Context, i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Map = %v, want *PanicError", err)
	}
	if pe.Index != 2 || pe.Value != "boom" {
		t.Fatalf("PanicError = {Index:%d Value:%v}, want {2 boom}", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack is empty")
	}
	if !strings.Contains(pe.Error(), "job 2 panicked") {
		t.Fatalf("Error() = %q does not name the job index", pe.Error())
	}
}

func TestMapRecoversPanicParallel(t *testing.T) {
	p := NewPool(8)
	err := p.Map(context.Background(), 64, func(_ context.Context, i int) error {
		if i == 17 {
			panic(fmt.Sprintf("job %d exploded", i))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Map = %v, want *PanicError", err)
	}
	if pe.Index != 17 {
		t.Fatalf("PanicError.Index = %d, want 17", pe.Index)
	}
}

func TestMapPanicSurfacesLowestIndex(t *testing.T) {
	// Two jobs panic; the lowest index must win at any worker count.
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var started sync.WaitGroup
		started.Add(2)
		err := p.Map(context.Background(), 2, func(_ context.Context, i int) error {
			if workers > 1 {
				// Hold both jobs at the brink so both definitely panic.
				started.Done()
				started.Wait()
			}
			panic(i)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Map = %v, want *PanicError", workers, err)
		}
		if pe.Index != 0 {
			t.Fatalf("workers=%d: surfaced job %d, want 0", workers, pe.Index)
		}
	}
}

func TestMapPanicCancelsSiblings(t *testing.T) {
	p := NewPool(2)
	var canceled atomic.Int64
	siblingUp := make(chan struct{}, 32)
	err := p.Map(context.Background(), 32, func(ctx context.Context, i int) error {
		if i == 0 {
			<-siblingUp // panic only once a sibling is definitely in flight
			panic("die")
		}
		siblingUp <- struct{}{}
		select {
		case <-ctx.Done():
			canceled.Add(1)
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return fmt.Errorf("job %d never saw the cancel", i)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Map = %v, want *PanicError", err)
	}
	if canceled.Load() == 0 {
		t.Fatal("no sibling observed the cancellation")
	}
}

// --- satellite regression: inherited DeadlineExceeded ----------------------

func TestMapInheritedDeadlineIsDeterministic(t *testing.T) {
	// A parent deadline that expires mid-Map propagates DeadlineExceeded
	// into every running job. Those are reactions, not failures: Map must
	// return the parent's own error, not an arbitrary sibling's, at any
	// worker count.
	for _, workers := range []int{2, 8} {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		p := NewPool(workers)
		err := p.Map(ctx, 64, func(ctx context.Context, i int) error {
			<-ctx.Done()
			// Jobs report the dying context with varying decoration; none
			// of these must surface as the result.
			if i%2 == 0 {
				return ctx.Err()
			}
			return fmt.Errorf("job %d: %w", i, ctx.Err())
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: Map = %v, want DeadlineExceeded", workers, err)
		}
		// The parent's bare error, not a job-wrapped one.
		if err != context.DeadlineExceeded {
			t.Fatalf("workers=%d: Map = %q, want the parent ctx error verbatim", workers, err)
		}
	}
}

func TestMapOwnTimeoutStillSurfaces(t *testing.T) {
	// A job's own deadline (parent still alive) is a real failure and must
	// surface, not be misread as a sibling-cancellation reaction.
	p := NewPool(4)
	err := p.Map(context.Background(), 8, func(_ context.Context, i int) error {
		if i == 3 {
			return fmt.Errorf("job 3 deadline: %w", context.DeadlineExceeded)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("Map = %v, want job 3's own timeout", err)
	}
}

// --- cache never memoizes a panic ------------------------------------------

func TestCacheNeverMemoizesPanic(t *testing.T) {
	c := NewCache()
	k := NewKey("explosive")
	var calls atomic.Int64
	compute := func() (any, error) {
		if calls.Add(1) == 1 {
			panic("first compute dies")
		}
		return "recovered", nil
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first Do did not propagate the panic")
			}
		}()
		c.Do(k, compute)
	}()
	v, err := c.Do(k, compute)
	if err != nil || v != "recovered" {
		t.Fatalf("Do after panic = (%v, %v), want (recovered, nil)", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2 (panic not memoized, success memoized)", calls.Load())
	}
	if v, err := c.Do(k, compute); err != nil || v != "recovered" {
		t.Fatalf("third Do = (%v, %v), want the memoized success", v, err)
	}
}

func TestCacheWaitersRecomputeAfterPanic(t *testing.T) {
	// Requesters blocked on an in-flight computation that panics must not
	// receive a zero value: they recompute for themselves.
	c := NewCache()
	k := NewKey("contended")
	release := make(chan struct{})
	var inFirst sync.WaitGroup
	inFirst.Add(1)
	go func() {
		defer func() { recover() }()
		c.Do(k, func() (any, error) {
			inFirst.Done()
			<-release
			panic("owner dies")
		})
	}()
	inFirst.Wait()
	const waiters = 4
	results := make([]any, waiters)
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := c.Do(k, func() (any, error) { return "fresh", nil })
			if err != nil {
				t.Errorf("waiter %d: %v", w, err)
			}
			results[w] = v
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // let waiters pile up on the entry
	close(release)
	wg.Wait()
	for w, v := range results {
		if v != "fresh" {
			t.Fatalf("waiter %d got %v, want a recomputed value", w, v)
		}
	}
}

// --- JobPolicy --------------------------------------------------------------

type classifiedErr struct{ transient bool }

func (e *classifiedErr) Error() string   { return fmt.Sprintf("classified(transient=%t)", e.transient) }
func (e *classifiedErr) Transient() bool { return e.transient }

func TestPolicyRetriesTransient(t *testing.T) {
	var attempts, notified int
	p := JobPolicy{Retries: 3, OnRetry: func(a int, err error) {
		notified++
		if a != notified {
			t.Fatalf("OnRetry attempt = %d, want %d", a, notified)
		}
	}}
	err := p.Run(context.Background(), "flaky", func(context.Context) error {
		attempts++
		if attempts < 3 {
			return &classifiedErr{transient: true}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run = %v, want success on third attempt", err)
	}
	if attempts != 3 || notified != 2 {
		t.Fatalf("attempts=%d notified=%d, want 3 and 2", attempts, notified)
	}
}

func TestPolicyPermanentFailsImmediately(t *testing.T) {
	var attempts int
	p := JobPolicy{Retries: 5}
	perm := &classifiedErr{transient: false}
	err := p.Run(context.Background(), "doomed", func(context.Context) error {
		attempts++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("Run = %v, want the permanent error", err)
	}
	if attempts != 1 {
		t.Fatalf("permanent error retried %d times", attempts-1)
	}
}

func TestPolicyExhaustionNamesJob(t *testing.T) {
	p := JobPolicy{Retries: 2}
	err := p.Run(context.Background(), "stubborn", func(context.Context) error {
		return &classifiedErr{transient: true}
	})
	if err == nil || !strings.Contains(err.Error(), "stubborn") || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("Run = %v, want exhaustion naming the job and attempt count", err)
	}
	var ce *classifiedErr
	if !errors.As(err, &ce) {
		t.Fatalf("exhaustion error does not wrap the last failure: %v", err)
	}
}

func TestPolicyTimeoutRetriesOnFreshDeadline(t *testing.T) {
	var attempts int
	p := JobPolicy{Timeout: 20 * time.Millisecond, Retries: 2}
	err := p.Run(context.Background(), "slow-then-fast", func(ctx context.Context) error {
		attempts++
		if attempts == 1 {
			<-ctx.Done() // first attempt blows its deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("Run = %v after %d attempts, want nil after 2", err, attempts)
	}
}

func TestPolicyNeverRetriesParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts int
	p := JobPolicy{Retries: 10, Backoff: time.Millisecond}
	err := p.Run(ctx, "canceled", func(context.Context) error {
		attempts++
		cancel() // the caller gives up mid-attempt
		return context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("deliberate cancellation retried %d times", attempts-1)
	}
}

func TestEngineRunJobCountsRetries(t *testing.T) {
	e := NewEngine(1)
	e.SetPolicy(JobPolicy{Retries: 4})
	var attempts int
	err := e.RunJob(context.Background(), "counted", func(context.Context) error {
		attempts++
		if attempts < 3 {
			return &classifiedErr{transient: true}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunJob = %v", err)
	}
	if e.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", e.Retries())
	}
}

// --- disk cache tier --------------------------------------------------------

func TestDiskCacheRoundTripAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("bench", "params")
	payload := []byte(`{"Area":42.5}`)
	if err := d1.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	// A second instance over the same directory — a fresh process — sees it.
	d2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = (%q, %t), want the stored payload", got, ok)
	}
	if s := d2.Stats(); s.Hits != 1 {
		t.Fatalf("Stats.Hits = %d, want 1", s.Hits)
	}
}

// corrupt applies f to the single .plde entry in dir.
func corrupt(t *testing.T, dir string, f func([]byte) []byte) {
	t.Helper()
	ents, err := filepath.Glob(filepath.Join(dir, "*"+diskEntryExt))
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one entry, got %v (%v)", ents, err)
	}
	data, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ents[0], f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiskCacheQuarantinesDefectiveEntries(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"bit-flip", func(d []byte) []byte {
			d[len(d)/2] ^= 0x40
			return d
		}},
		{"bad-magic", func(d []byte) []byte {
			d[0] ^= 0xFF
			// Re-checksum so only the magic check can reject it.
			return recrc(d)
		}},
		{"stale-version", func(d []byte) []byte {
			d[4]++
			return recrc(d)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDiskCache(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			k := NewKey("point")
			if err := d.Put(k, []byte("payload")); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir, tc.corrupt)
			if v, ok := d.Get(k); ok {
				t.Fatalf("Get returned %q from a defective entry", v)
			}
			if s := d.Stats(); s.Quarantined != 1 {
				t.Fatalf("Stats.Quarantined = %d, want 1", s.Quarantined)
			}
			// The defective file is set aside, not consulted again.
			q, _ := filepath.Glob(filepath.Join(dir, "*"+quarantineExt))
			live, _ := filepath.Glob(filepath.Join(dir, "*"+diskEntryExt))
			if len(q) != 1 || len(live) != 0 {
				t.Fatalf("quarantined=%d live=%d, want 1 and 0", len(q), len(live))
			}
			// Re-Put re-creates a valid entry: quarantine-and-recompute.
			if err := d.Put(k, []byte("payload")); err != nil {
				t.Fatal(err)
			}
			if v, ok := d.Get(k); !ok || string(v) != "payload" {
				t.Fatalf("Get after re-Put = (%q, %t)", v, ok)
			}
		})
	}
}

func TestDiskCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Entries are ~60 bytes; cap the tier so only a few fit.
	d, err := OpenDiskCache(dir, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		k := NewKey(fmt.Sprintf("point-%d", i))
		if err := d.Put(k, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is well defined on coarse filesystems.
		now := time.Now().Add(time.Duration(i-6) * time.Second)
		os.Chtimes(d.path(k), now, now)
		d.enforceCap()
	}
	if s := d.Stats(); s.Evicted == 0 {
		t.Fatal("size cap never evicted anything")
	}
	// The newest entry must have survived.
	if _, ok := d.Get(NewKey("point-5")); !ok {
		t.Fatal("most recent entry was evicted")
	}
	// The oldest must be gone.
	if _, ok := d.Get(NewKey("point-0")); ok {
		t.Fatal("least recent entry survived a full cap sweep")
	}
}

// recrc rewrites data's trailing crc32 so header corruptions are reachable
// past the checksum check.
func recrc(data []byte) []byte {
	body := data[:len(data)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestCachedJSONPersistsAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	type point struct {
		Area       float64
		Infeasible bool
	}
	k := NewKey("dse", "point")
	var computes atomic.Int64
	compute := func() (point, error) {
		computes.Add(1)
		return point{Area: 12.25}, nil
	}

	c1 := NewCache()
	d1, _ := OpenDiskCache(dir, 0)
	c1.AttachDisk(d1)
	v, err := CachedJSON(c1, k, compute)
	if err != nil || v.Area != 12.25 {
		t.Fatalf("first CachedJSON = (%+v, %v)", v, err)
	}

	// A fresh cache (fresh process) over the same tier: disk hit, no compute.
	c2 := NewCache()
	d2, _ := OpenDiskCache(dir, 0)
	c2.AttachDisk(d2)
	v, err = CachedJSON(c2, k, compute)
	if err != nil || v.Area != 12.25 {
		t.Fatalf("resumed CachedJSON = (%+v, %v)", v, err)
	}
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (second run served from disk)", computes.Load())
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("Stats.DiskHits = %d, want 1", s.DiskHits)
	}
}

func TestCachedJSONNeverPersistsErrors(t *testing.T) {
	dir := t.TempDir()
	k := NewKey("failing", "point")
	boom := errors.New("transient infrastructure failure")

	c1 := NewCache()
	d1, _ := OpenDiskCache(dir, 0)
	c1.AttachDisk(d1)
	if _, err := CachedJSON(c1, k, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := d1.Stats(); s.Writes != 0 {
		t.Fatalf("a failed computation was persisted (%d writes)", s.Writes)
	}

	// A fresh process must re-evaluate, not inherit the failure.
	c2 := NewCache()
	d2, _ := OpenDiskCache(dir, 0)
	c2.AttachDisk(d2)
	v, err := CachedJSON(c2, k, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("re-evaluation = (%d, %v), want (7, nil)", v, err)
	}
}

func TestNilDiskCacheDisablesTier(t *testing.T) {
	var d *DiskCache
	if _, ok := d.Get(NewKey("x")); ok {
		t.Fatal("nil tier reported a hit")
	}
	if err := d.Put(NewKey("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s != (DiskStats{}) {
		t.Fatalf("nil tier stats = %+v", s)
	}
}

// TestDiskCacheStatsConcurrent pins the SIGINT-summary contract: Stats (and
// Flush) may race with in-flight Put/Get — the deferred shutdown in
// cmd/plasticine reads the counters while workers are still completing — and
// must stay well-defined because every counter is atomic. Run under -race
// in CI; a regression to plain int64 counters fails there.
func TestDiskCacheStatsConcurrent(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				k := NewKey("race", fmt.Sprint(g), fmt.Sprint(i))
				if err := d.Put(k, []byte(`{"v":1}`)); err != nil {
					t.Error(err)
					return
				}
				d.Get(k)
			}
		}(g)
	}
	// The "SIGINT path": snapshot and flush continuously while the writers
	// are mid-flight.
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				d.Stats()
				d.Flush()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-snapDone
	s := d.Stats()
	if s.Writes != 200 || s.Hits != 200 {
		t.Fatalf("counters after the dust settles: %+v (want 200 writes, 200 hits)", s)
	}
}
