package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolMapCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		n := 57
		seen := make([]int32, n)
		err := NewPool(workers).Map(context.Background(), n, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want exactly once", workers, i, c)
			}
		}
	}
}

func TestPoolMapDeterministicResults(t *testing.T) {
	// The same job set must produce identical merged output at any width.
	run := func(workers int) []int {
		out := make([]int, 40)
		if err := NewPool(workers).Map(context.Background(), len(out), func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

func TestPoolMapReturnsLowestIndexError(t *testing.T) {
	// Jobs 11 and 23 fail; whichever finishes first must not matter — the
	// reported error is the lowest-index one, as in a sequential run.
	errA := errors.New("boom 11")
	errB := errors.New("boom 23")
	for trial := 0; trial < 20; trial++ {
		err := NewPool(8).Map(context.Background(), 30, func(_ context.Context, i int) error {
			switch i {
			case 11:
				time.Sleep(2 * time.Millisecond) // let 23 fail first sometimes
				return errA
			case 23:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want lowest-index error %v", trial, err, errA)
		}
	}
}

func TestPoolMapErrorCancelsSiblings(t *testing.T) {
	var canceled atomic.Int32
	started := make(chan struct{}, 64)
	err := NewPool(4).Map(context.Background(), 64, func(ctx context.Context, i int) error {
		if i == 0 {
			// Fail only once siblings are inside their select, so the
			// cancellation is observable.
			for j := 0; j < 2; j++ {
				<-started
			}
			return errors.New("first job fails")
		}
		started <- struct{}{}
		select {
		case <-ctx.Done():
			canceled.Add(1)
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
			return nil
		}
	})
	if err == nil || err.Error() != "first job fails" {
		t.Fatalf("got %v, want the real failure, not a cancellation", err)
	}
	if canceled.Load() == 0 {
		t.Error("no sibling observed the cancellation")
	}
}

func TestPoolMapHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := NewPool(4).Map(ctx, 8, func(context.Context, int) error {
		t.Error("job ran under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestNilPoolRunsSequentially(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool has %d workers, want 1", p.Workers())
	}
	sum := 0
	if err := p.Map(context.Background(), 5, func(_ context.Context, i int) error {
		sum += i // no synchronisation needed: sequential by contract
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
}

func TestCacheHitMissCounting(t *testing.T) {
	c := NewCache()
	calls := 0
	get := func(k string) int {
		v, err := Cached(c, NewKey("test", k), func() (int, error) {
			calls++
			return len(k), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get("alpha") != 5 || get("beta") != 4 || get("alpha") != 5 || get("alpha") != 5 {
		t.Fatal("wrong cached values")
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 misses / 2 hits", s)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	calls := 0
	boom := errors.New("infeasible point")
	for i := 0; i < 3; i++ {
		_, err := Cached(c, NewKey("err"), func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("iteration %d: got %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestCacheFingerprintCollision(t *testing.T) {
	// Force two distinct keys onto the same 64-bit fingerprint. The cache
	// must keep both entries separate (matched by full key string), serve
	// the right value for each, and count the collision.
	c := NewCache()
	ka := Key{hash: 42, str: "point-a"}
	kb := Key{hash: 42, str: "point-b"}
	va, err := Cached(c, ka, func() (string, error) { return "value-a", nil })
	if err != nil || va != "value-a" {
		t.Fatalf("ka: %q, %v", va, err)
	}
	vb, err := Cached(c, kb, func() (string, error) { return "value-b", nil })
	if err != nil || vb != "value-b" {
		t.Fatalf("kb first use computed %q, %v — collision served the wrong entry?", vb, err)
	}
	// Re-reads hit the right entries.
	va, _ = Cached(c, ka, func() (string, error) { return "WRONG", nil })
	vb, _ = Cached(c, kb, func() (string, error) { return "WRONG", nil })
	if va != "value-a" || vb != "value-b" {
		t.Fatalf("collision re-read: got %q/%q, want value-a/value-b", va, vb)
	}
	s := c.Stats()
	if s.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", s.Collisions)
	}
	if s.Misses != 2 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 misses / 2 hits", s)
	}
}

func TestCacheKeySeparatorAmbiguity(t *testing.T) {
	// ("ab","c") and ("a","bc") must not alias.
	if NewKey("ab", "c") == NewKey("a", "bc") {
		t.Fatal("key parts alias across the separator")
	}
	if NewKey("x") != NewKey("x") {
		t.Fatal("equal parts must produce equal keys")
	}
}

func TestCacheConcurrentSingleCompute(t *testing.T) {
	// Many goroutines requesting the same key must compute once and all see
	// the same value; misses stays at the number of distinct keys.
	c := NewCache()
	var computes atomic.Int64
	const distinct = 7
	err := NewPool(16).Map(context.Background(), 200, func(_ context.Context, i int) error {
		k := i % distinct
		v, err := Cached(c, NewKey("k", fmt.Sprint(k)), func() (int, error) {
			computes.Add(1)
			time.Sleep(time.Millisecond) // widen the in-flight window
			return k * 10, nil
		})
		if err != nil {
			return err
		}
		if v != k*10 {
			return fmt.Errorf("key %d: got %d", k, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != distinct {
		t.Fatalf("computed %d times, want %d", computes.Load(), distinct)
	}
	if s := c.Stats(); s.Misses != distinct {
		t.Fatalf("misses = %d, want %d (deterministic regardless of schedule)", s.Misses, distinct)
	}
}

func TestNilCacheAndEngine(t *testing.T) {
	var c *Cache
	v, err := Cached(c, NewKey("x"), func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("nil cache: %d, %v", v, err)
	}
	var e *Engine
	if e.Workers() != 1 {
		t.Fatalf("nil engine workers = %d, want 1", e.Workers())
	}
	if s := e.CacheStats(); s != (CacheStats{}) {
		t.Fatalf("nil engine stats = %+v", s)
	}
	if err := e.Pool().Map(context.Background(), 1, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
