package exec

import (
	"context"
	"errors"
	"testing"
	"time"
)

type transientTestErr struct{ error }

func (transientTestErr) Transient() bool { return true }

// TestEngineFailedJobClasses pins the failure taxonomy the metrics layer
// exports: transient errors (retry budget exhausted) and permanent
// errors count separately, successes and caller cancellations count in
// neither.
func TestEngineFailedJobClasses(t *testing.T) {
	e := NewEngine(1)
	e.SetPolicy(JobPolicy{Retries: 1, Backoff: time.Microsecond})

	ctx := context.Background()
	if err := e.RunJob(ctx, "ok", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("ok job: %v", err)
	}
	permErr := errors.New("bad program")
	if err := e.RunJob(ctx, "perm", func(context.Context) error { return permErr }); err == nil {
		t.Fatal("permanent job should fail")
	}
	transErr := transientTestErr{errors.New("flaky dram")}
	if err := e.RunJob(ctx, "trans", func(context.Context) error { return transErr }); err == nil {
		t.Fatal("transient job should fail after retries")
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	e.RunJob(canceled, "canceled", func(c context.Context) error { return c.Err() })

	trans, perm := e.FailedJobs()
	if trans != 1 || perm != 1 {
		t.Errorf("FailedJobs = (%d, %d), want (1, 1)", trans, perm)
	}
	if e.Retries() == 0 {
		t.Error("transient failure should have consumed retries")
	}

	var nilEngine *Engine
	if a, b := nilEngine.FailedJobs(); a != 0 || b != 0 {
		t.Error("nil engine FailedJobs not zero")
	}
}
