package exec

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
)

// Key is a content-addressed cache key: an FNV-1a fingerprint over a
// canonical string. The full string is kept alongside the hash so the cache
// can disambiguate fingerprint collisions instead of silently returning the
// wrong entry.
type Key struct {
	hash uint64
	str  string
}

// NewKey fingerprints the canonical parts of a cache key. Parts are joined
// with a NUL separator so ("ab", "c") and ("a", "bc") hash differently.
func NewKey(parts ...string) Key {
	s := strings.Join(parts, "\x00")
	h := fnv.New64a()
	h.Write([]byte(s))
	return Key{hash: h.Sum64(), str: s}
}

// Hash returns the 64-bit fingerprint.
func (k Key) Hash() uint64 { return k.hash }

// String returns the full canonical key string.
func (k Key) String() string { return k.str }

// CacheStats is a point-in-time cache counter snapshot. Misses equals the
// number of distinct keys ever computed, so for a fixed job set it is
// deterministic regardless of worker count or arrival order.
type CacheStats struct {
	Hits, Misses int64
	// Collisions counts distinct keys that shared a 64-bit fingerprint with
	// an earlier key; they are stored and served correctly, just counted.
	Collisions int64

	// Persistent-tier counters, zero when no disk tier is attached. DiskHits
	// are misses in memory that were served from disk without recomputing —
	// a resumed sweep shows DiskHits >= the design points completed before
	// the interruption.
	DiskHits    int64
	DiskWrites  int64
	Quarantined int64
	Evictions   int64
}

func (s CacheStats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	out := fmt.Sprintf("cache: %d hits, %d misses (%.0f%% hit rate)", s.Hits, s.Misses, pct)
	if s.DiskHits > 0 || s.DiskWrites > 0 {
		out += fmt.Sprintf("; disk: %d hits, %d writes", s.DiskHits, s.DiskWrites)
	}
	if s.Quarantined > 0 {
		out += fmt.Sprintf(", %d quarantined", s.Quarantined)
	}
	if s.Evictions > 0 {
		out += fmt.Sprintf(", %d evicted", s.Evictions)
	}
	if s.Collisions > 0 {
		out += fmt.Sprintf(", %d fingerprint collisions", s.Collisions)
	}
	return out
}

// Cache is a content-addressed in-memory result cache, safe for concurrent
// use, with an optional disk-backed persistent tier underneath (AttachDisk).
// Entries are bucketed by 64-bit fingerprint and verified against the full
// key string, so colliding fingerprints coexist. Each key computes at most
// once: concurrent requesters of an in-flight key block until the first
// computation finishes (errors are cached too, so a failing point fails
// once, identically, for every requester). A computation that panics is
// never memoized: its entry is discarded, the panic propagates to its own
// requester, and blocked requesters recompute from scratch. A nil *Cache
// disables caching: Do simply calls compute.
type Cache struct {
	mu      sync.Mutex
	buckets map[uint64][]*cacheEntry
	disk    *DiskCache

	hits       atomic.Int64
	misses     atomic.Int64
	collisions atomic.Int64
}

type cacheEntry struct {
	key      string
	done     chan struct{} // closed once val/err are set, or on panic
	panicked bool          // set (before close) if the computation panicked
	val      any
	err      error
}

// codec translates cached values to and from the persistent tier's byte
// payloads. Entries without a codec (plain Do/Cached) stay memory-only.
type codec struct {
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

// NewCache returns an empty cache with no persistent tier.
func NewCache() *Cache {
	return &Cache{buckets: map[uint64][]*cacheEntry{}}
}

// AttachDisk puts a persistent tier under the cache: codec-carrying lookups
// (CachedJSON) that miss in memory consult disk before computing, and
// successful results are written through. Attach before use; nil detaches.
// Nil-safe on a nil cache (no-op).
func (c *Cache) AttachDisk(d *DiskCache) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
}

// Disk returns the attached persistent tier, if any. Nil-safe.
func (c *Cache) Disk() *DiskCache {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// Do returns the cached value for k, computing and storing it on first use.
// Memory-only: Do carries no codec, so the persistent tier is not consulted
// (use CachedJSON for values that should survive the process). Nil-safe: a
// nil cache just runs compute.
func (c *Cache) Do(k Key, compute func() (any, error)) (any, error) {
	return c.do(k, nil, compute)
}

func (c *Cache) do(k Key, cod *codec, compute func() (any, error)) (any, error) {
	if c == nil {
		return compute()
	}
	first := true
	for {
		c.mu.Lock()
		var e *cacheEntry
		for _, cand := range c.buckets[k.hash] {
			if cand.key == k.str {
				e = cand
				break
			}
		}
		owner := e == nil
		if owner {
			if first && len(c.buckets[k.hash]) > 0 {
				c.collisions.Add(1)
			}
			e = &cacheEntry{key: k.str, done: make(chan struct{})}
			c.buckets[k.hash] = append(c.buckets[k.hash], e)
		}
		disk := c.disk
		c.mu.Unlock()
		if first {
			if owner {
				c.misses.Add(1)
			} else {
				c.hits.Add(1)
			}
			first = false
		}
		if owner {
			return c.fill(k, e, disk, cod, compute)
		}
		<-e.done
		if e.panicked {
			// The owner's computation panicked and the entry was dropped;
			// start over and compute for ourselves.
			continue
		}
		return e.val, e.err
	}
}

// fill computes (or loads from disk) the value for an entry this goroutine
// owns, publishes it, and wakes waiters. If the computation panics the entry
// is un-published first, so the panic is never memoized: the panicking
// requester gets the panic (recovered into a PanicError by Pool.Map), and
// everyone else recomputes.
func (c *Cache) fill(k Key, e *cacheEntry, disk *DiskCache, cod *codec, compute func() (any, error)) (val any, err error) {
	completed := false
	defer func() {
		if !completed {
			e.panicked = true
			c.drop(k, e)
			close(e.done)
		}
	}()
	if cod != nil {
		if data, ok := disk.Get(k); ok {
			if v, derr := cod.decode(data); derr == nil {
				e.val, e.err = v, nil
				completed = true
				close(e.done)
				return v, nil
			}
			// Valid envelope, undecodable payload (e.g. the value type
			// changed without a version bump): recompute and overwrite.
		}
	}
	val, err = compute()
	e.val, e.err = val, err
	completed = true
	close(e.done)
	if cod != nil && err == nil {
		// Write-through, best-effort; errors are never persisted — a
		// failure observed in one process must not veto re-evaluation in
		// the next.
		if data, eerr := cod.encode(val); eerr == nil {
			disk.Put(k, data)
		}
	}
	return val, err
}

// drop removes e from k's bucket if still published there.
func (c *Cache) drop(k Key, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bucket := c.buckets[k.hash]
	for i, cand := range bucket {
		if cand == e {
			c.buckets[k.hash] = append(bucket[:i], bucket[i+1:]...)
			return
		}
	}
}

// Stats snapshots the hit/miss/collision counters, merged with the
// persistent tier's counters when one is attached. Nil-safe.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Collisions: c.collisions.Load(),
	}
	if d := c.Disk(); d != nil {
		ds := d.Stats()
		s.DiskHits = ds.Hits
		s.DiskWrites = ds.Writes
		s.Quarantined = ds.Quarantined
		s.Evictions = ds.Evicted
	}
	return s
}

// Cached is the typed convenience wrapper over Cache.Do (memory-only).
func Cached[T any](c *Cache, k Key, compute func() (T, error)) (T, error) {
	v, err := c.Do(k, func() (any, error) { return compute() })
	if v == nil {
		var zero T
		return zero, err
	}
	return v.(T), err
}

// CachedJSON is Cached plus persistence: when the cache has a disk tier, a
// memory miss consults it before computing, and successful values are
// written through as JSON. T must JSON round-trip exactly (exported fields,
// no NaN/Inf — encode infeasibility as a flag); errors are never persisted.
// Nil-safe: a nil cache just runs compute.
func CachedJSON[T any](c *Cache, k Key, compute func() (T, error)) (T, error) {
	cod := &codec{
		encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		decode: func(data []byte) (any, error) {
			var v T
			if err := json.Unmarshal(data, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	v, err := c.do(k, cod, func() (any, error) { return compute() })
	if v == nil {
		var zero T
		return zero, err
	}
	return v.(T), err
}

// Engine bundles the worker pool, the cache and the job policy — the handle
// the sweeps and core.Session share so every consumer draws from the same
// workers, never evaluates the same point twice, and runs every job under
// the same deadlines and retry budget. A nil *Engine is valid and means
// sequential, uncached, policy-free evaluation.
type Engine struct {
	pool    *Pool
	cache   *Cache
	policy  JobPolicy
	retries atomic.Int64

	// Failed-job accounting by retry class, for the metrics exporter.
	// Caller cancellations are excluded: a job abandoned because its
	// request went away is not a job failure.
	failTransient atomic.Int64
	failPermanent atomic.Int64
}

// NewEngine returns an engine with the given worker count (<= 0 means
// runtime.NumCPU()), a fresh cache, and the zero JobPolicy (no deadline, no
// retries).
func NewEngine(workers int) *Engine {
	return &Engine{pool: NewPool(workers), cache: NewCache()}
}

// Pool returns the engine's worker pool. Nil-safe (nil engine → nil pool,
// which runs sequentially).
func (e *Engine) Pool() *Pool {
	if e == nil {
		return nil
	}
	return e.pool
}

// Cache returns the engine's result cache. Nil-safe (nil engine → nil
// cache, which disables caching).
func (e *Engine) Cache() *Cache {
	if e == nil {
		return nil
	}
	return e.cache
}

// Workers reports the engine's concurrency. Nil-safe.
func (e *Engine) Workers() int { return e.Pool().Workers() }

// CacheStats snapshots the engine's cache counters. Nil-safe.
func (e *Engine) CacheStats() CacheStats { return e.Cache().Stats() }

// SetPolicy installs the per-job deadline/retry policy applied by RunJob.
// Set it before evaluation starts. Nil-safe (no-op).
func (e *Engine) SetPolicy(p JobPolicy) {
	if e == nil {
		return
	}
	e.policy = p
}

// AttachDisk puts a persistent tier under the engine's cache. Nil-safe.
func (e *Engine) AttachDisk(d *DiskCache) { e.Cache().AttachDisk(d) }

// RunJob executes one evaluation job under the engine's policy: per-attempt
// deadline, transient-error retries with backoff, retry accounting. label
// names the job in retry diagnostics. Nil-safe: a nil engine runs fn bare.
func (e *Engine) RunJob(ctx context.Context, label string, fn func(context.Context) error) error {
	if e == nil {
		return fn(ctx)
	}
	p := e.policy
	user := p.OnRetry
	p.OnRetry = func(attempt int, err error) {
		e.retries.Add(1)
		if user != nil {
			user(attempt, err)
		}
	}
	err := p.Run(ctx, label, fn)
	if err != nil && ctx.Err() == nil {
		if Transient(err) {
			e.failTransient.Add(1)
		} else {
			e.failPermanent.Add(1)
		}
	}
	return err
}

// FailedJobs reports jobs that ended in error after the policy's retry
// budget, split by Transient classification. Caller-canceled jobs are
// counted in neither. Nil-safe.
func (e *Engine) FailedJobs() (transient, permanent int64) {
	if e == nil {
		return 0, 0
	}
	return e.failTransient.Load(), e.failPermanent.Load()
}

// Retries reports how many job retries the policy has performed. Nil-safe.
func (e *Engine) Retries() int64 {
	if e == nil {
		return 0
	}
	return e.retries.Load()
}
