package exec

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
)

// Key is a content-addressed cache key: an FNV-1a fingerprint over a
// canonical string. The full string is kept alongside the hash so the cache
// can disambiguate fingerprint collisions instead of silently returning the
// wrong entry.
type Key struct {
	hash uint64
	str  string
}

// NewKey fingerprints the canonical parts of a cache key. Parts are joined
// with a NUL separator so ("ab", "c") and ("a", "bc") hash differently.
func NewKey(parts ...string) Key {
	s := strings.Join(parts, "\x00")
	h := fnv.New64a()
	h.Write([]byte(s))
	return Key{hash: h.Sum64(), str: s}
}

// Hash returns the 64-bit fingerprint.
func (k Key) Hash() uint64 { return k.hash }

// String returns the full canonical key string.
func (k Key) String() string { return k.str }

// CacheStats is a point-in-time cache counter snapshot. Misses equals the
// number of distinct keys ever computed, so for a fixed job set it is
// deterministic regardless of worker count or arrival order.
type CacheStats struct {
	Hits, Misses int64
	// Collisions counts distinct keys that shared a 64-bit fingerprint with
	// an earlier key; they are stored and served correctly, just counted.
	Collisions int64
}

func (s CacheStats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	out := fmt.Sprintf("cache: %d hits, %d misses (%.0f%% hit rate)", s.Hits, s.Misses, pct)
	if s.Collisions > 0 {
		out += fmt.Sprintf(", %d fingerprint collisions", s.Collisions)
	}
	return out
}

// Cache is a content-addressed in-memory result cache, safe for concurrent
// use. Entries are bucketed by 64-bit fingerprint and verified against the
// full key string, so colliding fingerprints coexist. Each key computes at
// most once: concurrent requesters of an in-flight key block until the
// first computation finishes (errors are cached too, so a failing point
// fails once, identically, for every requester). A nil *Cache disables
// caching: Do simply calls compute.
type Cache struct {
	mu      sync.Mutex
	buckets map[uint64][]*cacheEntry

	hits       atomic.Int64
	misses     atomic.Int64
	collisions atomic.Int64
}

type cacheEntry struct {
	key  string
	once sync.Once
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{buckets: map[uint64][]*cacheEntry{}}
}

// Do returns the cached value for k, computing and storing it on first use.
// Nil-safe: a nil cache just runs compute.
func (c *Cache) Do(k Key, compute func() (any, error)) (any, error) {
	if c == nil {
		return compute()
	}
	c.mu.Lock()
	var e *cacheEntry
	for _, cand := range c.buckets[k.hash] {
		if cand.key == k.str {
			e = cand
			break
		}
	}
	hit := e != nil
	if e == nil {
		if len(c.buckets[k.hash]) > 0 {
			c.collisions.Add(1)
		}
		e = &cacheEntry{key: k.str}
		c.buckets[k.hash] = append(c.buckets[k.hash], e)
	}
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Stats snapshots the hit/miss/collision counters. Nil-safe.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Collisions: c.collisions.Load(),
	}
}

// Cached is the typed convenience wrapper over Cache.Do.
func Cached[T any](c *Cache, k Key, compute func() (T, error)) (T, error) {
	v, err := c.Do(k, func() (any, error) { return compute() })
	if v == nil {
		var zero T
		return zero, err
	}
	return v.(T), err
}

// Engine bundles the worker pool and the cache — the handle the sweeps and
// core.Session share so every consumer draws from the same workers and
// never evaluates the same point twice. A nil *Engine is valid and means
// sequential, uncached evaluation.
type Engine struct {
	pool  *Pool
	cache *Cache
}

// NewEngine returns an engine with the given worker count (<= 0 means
// runtime.NumCPU()) and a fresh cache.
func NewEngine(workers int) *Engine {
	return &Engine{pool: NewPool(workers), cache: NewCache()}
}

// Pool returns the engine's worker pool. Nil-safe (nil engine → nil pool,
// which runs sequentially).
func (e *Engine) Pool() *Pool {
	if e == nil {
		return nil
	}
	return e.pool
}

// Cache returns the engine's result cache. Nil-safe (nil engine → nil
// cache, which disables caching).
func (e *Engine) Cache() *Cache {
	if e == nil {
		return nil
	}
	return e.cache
}

// Workers reports the engine's concurrency. Nil-safe.
func (e *Engine) Workers() int { return e.Pool().Workers() }

// CacheStats snapshots the engine's cache counters. Nil-safe.
func (e *Engine) CacheStats() CacheStats { return e.Cache().Stats() }
