// Package exec is the parallel evaluation engine: a fixed worker pool that
// fans independent compile→simulate→profile jobs across cores, plus a
// content-addressed cache (with an optional disk-backed persistent tier) so
// identical design points are never evaluated twice. The paper's experiments
// are embarrassingly parallel — thirteen Table 4 benchmarks and thousands of
// Figure 7 / Table 3 design points — and every consumer (the DSE sweeps, the
// bench suite, the resilience sweep, core.Session) draws from the same pool
// and cache.
//
// Determinism contract: a job writes only into its own index-addressed slot,
// reads only immutable shared inputs, and seeds any randomness from its own
// key. Under that contract the merged output is byte-identical for any
// worker count, which the determinism tests in core and dse enforce.
//
// Robustness contract: a job that panics never crashes the process — the
// panic is recovered into a typed PanicError, siblings are canceled, and the
// cache never memoizes the panicked computation. See JobPolicy for per-job
// deadlines and transient-error retries.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from one job: which job index blew up,
// the recovered value, and the goroutine stack at the point of the panic.
// Pool.Map surfaces it like any other job failure (lowest index wins), so a
// panicking design point is reported deterministically while the process
// keeps running.
type PanicError struct {
	Index int    // index of the job that panicked
	Value any    // the value passed to panic()
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// isCancellation reports whether err is purely a reaction to a dying
// context. Both sentinels count: a parent deadline propagates
// context.DeadlineExceeded into sibling jobs exactly the way a cancel
// propagates context.Canceled, and surfacing either as a job failure would
// make Map's error depend on which sibling observed the dying context first.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// call runs one job with panic isolation: a panic inside fn becomes a typed
// *PanicError naming the job index instead of unwinding the process.
func call(ctx context.Context, i int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// Pool is a fixed-size worker pool. The zero value and a nil *Pool both run
// jobs sequentially on the calling goroutine.
type Pool struct {
	workers int

	// running counts jobs currently executing inside Map, across every
	// concurrent Map call sharing this pool. It is introspection for
	// occupancy-aware callers (the serving layer's load-shedding watermark
	// and /statsz), not admission control: Map never blocks on it.
	running atomic.Int64
}

// NewPool returns a pool with the given number of workers; n <= 0 means
// runtime.NumCPU().
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{workers: n}
}

// Workers reports the pool's concurrency. Nil-safe (a nil pool has 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Running reports how many jobs are executing right now across all Map
// calls sharing this pool — a point-in-time occupancy reading for load
// shedding and stats endpoints. Nil-safe (a nil pool reports 0).
func (p *Pool) Running() int {
	if p == nil {
		return 0
	}
	return int(p.running.Load())
}

// track wraps one job execution in the occupancy counter.
func (p *Pool) track(ctx context.Context, i int, fn func(context.Context, int) error) error {
	if p != nil {
		p.running.Add(1)
		defer p.running.Add(-1)
	}
	return call(ctx, i, fn)
}

// Map runs fn(ctx, i) for every i in [0, n), spread across the pool's
// workers. Jobs must be independent: each writes only its own slot of a
// caller-allocated result slice, so the merged result is identical for any
// worker count.
//
// The first real (non-cancellation) failure cancels the derived context,
// stopping in-flight and unstarted jobs early. The returned error is the
// failure with the lowest job index — the same error a sequential run would
// return — so error output is deterministic too. Cancellation errors from
// sibling jobs reacting to a context that was already dying (because a
// sibling failed, or because the parent ctx was canceled or hit its
// deadline) are never reported as failures; if the parent context died, Map
// returns the parent's own error. A panicking job is recovered into a
// *PanicError and treated as a real failure.
func (p *Pool) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := p.track(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	// secondary marks errors that are mere reactions to a context that was
	// already dying when the job observed it; they never mask a root cause
	// and are never surfaced as the failure themselves.
	secondary := make([]bool, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || jobCtx.Err() != nil {
					return
				}
				if err := p.track(jobCtx, i, fn); err != nil {
					errs[i] = err
					if isCancellation(err) && jobCtx.Err() != nil {
						secondary[i] = true
					} else {
						cancel() // stop the fleet on the first real failure
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !secondary[i] {
			return err
		}
	}
	return ctx.Err()
}
