// Package exec is the parallel evaluation engine: a fixed worker pool that
// fans independent compile→simulate→profile jobs across cores, plus a
// content-addressed in-memory cache so identical design points are never
// evaluated twice. The paper's experiments are embarrassingly parallel —
// thirteen Table 4 benchmarks and thousands of Figure 7 / Table 3 design
// points — and every consumer (the DSE sweeps, the bench suite, the
// resilience sweep, core.Session) draws from the same pool and cache.
//
// Determinism contract: a job writes only into its own index-addressed slot,
// reads only immutable shared inputs, and seeds any randomness from its own
// key. Under that contract the merged output is byte-identical for any
// worker count, which the determinism tests in core and dse enforce.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool. The zero value and a nil *Pool both run
// jobs sequentially on the calling goroutine.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given number of workers; n <= 0 means
// runtime.NumCPU().
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{workers: n}
}

// Workers reports the pool's concurrency. Nil-safe (a nil pool has 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Map runs fn(ctx, i) for every i in [0, n), spread across the pool's
// workers. Jobs must be independent: each writes only its own slot of a
// caller-allocated result slice, so the merged result is identical for any
// worker count.
//
// The first real (non-cancellation) failure cancels the derived context,
// stopping in-flight and unstarted jobs early. The returned error is the
// failure with the lowest job index — the same error a sequential run would
// return — so error output is deterministic too. Pure cancellation errors
// from sibling jobs reacting to that cancel are not reported as failures.
func (p *Pool) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || jobCtx.Err() != nil {
					return
				}
				if err := fn(jobCtx, i); err != nil {
					errs[i] = err
					if !errors.Is(err, context.Canceled) {
						cancel() // stop the fleet on the first real failure
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return ctx.Err()
}
