package exec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDiskEntryDecode drives the persistent-tier entry decoder with
// arbitrary bytes — truncations, bit flips, bad magic, stale versions, hostile
// length fields — and asserts the robustness contract end to end: decoding
// never panics or over-allocates, a successful decode re-encodes to exactly
// the input (so a "valid" entry really is one this writer could have
// produced), and a DiskCache.Get over the same bytes either returns a
// correct hit or quarantines the file and misses — never a silently wrong
// hit, and never a crash.
func FuzzDiskEntryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeDiskEntry(NewKey("dse/pcu-area", "BlackScholes"), []byte(`{"Area":1.5}`)))
	f.Add(encodeDiskEntry(NewKey(""), nil))
	// A stale-version entry with a valid checksum.
	stale := encodeDiskEntry(NewKey("k"), []byte("v"))
	stale[4]++
	f.Add(recrc(stale))
	// A truncated but otherwise valid entry.
	whole := encodeDiskEntry(NewKey("key"), []byte("value"))
	f.Add(whole[:len(whole)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		key, hash, val, err := decodeDiskEntry(data)
		if err == nil {
			// Anything the decoder accepts must round-trip byte-for-byte
			// through the encoder; otherwise corrupt input is being
			// normalised into a "valid" entry.
			k := Key{hash: hash, str: key}
			if re := encodeDiskEntry(k, val); !bytes.Equal(re, data) {
				t.Fatalf("decode accepted bytes that re-encode differently:\n in: %x\nout: %x", data, re)
			}
		}

		// Property check against the full Get path: plant the bytes as some
		// key's entry file and look it up.
		dir := t.TempDir()
		d, derr := OpenDiskCache(dir, 0)
		if derr != nil {
			t.Fatal(derr)
		}
		probe := NewKey("probe")
		if werr := os.WriteFile(d.path(probe), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		got, ok := d.Get(probe)
		if ok {
			// A hit must be the exact payload of a well-formed entry for
			// this very key — anything else is a silently wrong hit.
			ek, _, ev, eerr := decodeDiskEntry(data)
			if eerr != nil || ek != probe.String() || !bytes.Equal(got, ev) {
				t.Fatalf("Get returned %q from bytes that are not a valid entry for the probed key", got)
			}
		} else if _, err := os.Stat(d.path(probe)); err == nil {
			// A miss on existing-but-defective bytes must quarantine unless
			// the entry was valid for a different key (left in place).
			if _, _, _, derr := decodeDiskEntry(data); derr != nil {
				t.Fatal("defective entry was neither served nor quarantined")
			}
		} else if q, _ := filepath.Glob(filepath.Join(dir, "*"+quarantineExt)); len(data) > 0 && len(q) == 0 {
			t.Fatal("entry file vanished without being quarantined")
		}
	})
}
