package exec

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Transienter is implemented by errors that classify their own
// retryability. sim.WatchdogError implements it: an abort caused by a dying
// context is transient (the cancel may have come from a failing sibling,
// not this design point), while budget exhaustion, stalls and deadlocks are
// properties of the point itself and will recur on retry.
type Transienter interface{ Transient() bool }

// Transient reports whether err is worth retrying under a JobPolicy. An
// error anywhere in the chain that implements Transienter decides for
// itself. Otherwise a bare context cancellation or deadline expiry is
// presumed spurious — JobPolicy.Run checks its own context before retrying,
// so a deliberate parent cancel is never retried — and everything else
// (compile failures, infeasible points, functional-check mismatches, panics)
// is permanent.
func Transient(err error) bool {
	var t Transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// JobPolicy bounds and retries one evaluation job. The zero value imposes
// nothing: no deadline, no retries — exactly the pre-policy behaviour.
type JobPolicy struct {
	// Timeout is the per-attempt deadline (0 = none). An attempt that
	// exceeds it fails with context.DeadlineExceeded, which is transient:
	// with Retries > 0 the job runs again on a fresh deadline.
	Timeout time.Duration

	// Retries is how many additional attempts a transiently-failing job
	// gets after the first. Permanent errors never retry.
	Retries int

	// Backoff is the pause before retry r (1-based): Backoff << (r-1), so
	// successive retries back off exponentially. 0 retries immediately.
	Backoff time.Duration

	// OnRetry observes every retry decision before the backoff pause:
	// attempt is the 1-based retry number and err the transient failure
	// being retried. The CLI wires this to stderr for deterministic retry
	// accounting; nil means silent.
	OnRetry func(attempt int, err error)
}

// Run executes fn under the policy: each attempt gets its own deadline
// (when Timeout > 0), transient failures are retried up to Retries times
// with exponential backoff, and permanent failures return immediately.
// label names the job in retry-exhaustion errors. If the caller's ctx dies,
// Run stops immediately — a deliberate cancellation is never retried.
func (p JobPolicy) Run(ctx context.Context, label string, fn func(context.Context) error) error {
	if label == "" {
		label = "job"
	}
	retries := p.Retries
	if retries < 0 {
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = func() error {
			actx := ctx
			cancel := func() {}
			if p.Timeout > 0 {
				actx, cancel = context.WithTimeout(ctx, p.Timeout)
			}
			defer cancel()
			return fn(actx)
		}()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's context is gone: whatever fn returned is a
			// consequence of that, not something a retry can fix.
			return err
		}
		if !Transient(err) {
			return err
		}
		if attempt == retries {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt+1, err)
		}
		if p.Backoff > 0 {
			t := time.NewTimer(p.Backoff << attempt)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	if retries > 0 {
		return fmt.Errorf("exec: %s: gave up after %d attempts: %w", label, retries+1, err)
	}
	return err
}
