package exec

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Transienter is implemented by errors that classify their own
// retryability. sim.WatchdogError implements it: an abort caused by a dying
// context is transient (the cancel may have come from a failing sibling,
// not this design point), while budget exhaustion, stalls and deadlocks are
// properties of the point itself and will recur on retry.
type Transienter interface{ Transient() bool }

// Transient reports whether err is worth retrying under a JobPolicy. An
// error anywhere in the chain that implements Transienter decides for
// itself. Otherwise a bare context cancellation or deadline expiry is
// presumed spurious — JobPolicy.Run checks its own context before retrying,
// so a deliberate parent cancel is never retried — and everything else
// (compile failures, infeasible points, functional-check mismatches, panics)
// is permanent.
func Transient(err error) bool {
	var t Transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// JobPolicy bounds and retries one evaluation job. The zero value imposes
// nothing: no deadline, no retries — exactly the pre-policy behaviour.
type JobPolicy struct {
	// Timeout is the per-attempt deadline (0 = none). An attempt that
	// exceeds it fails with context.DeadlineExceeded, which is transient:
	// with Retries > 0 the job runs again on a fresh deadline.
	Timeout time.Duration

	// Retries is how many additional attempts a transiently-failing job
	// gets after the first. Permanent errors never retry.
	Retries int

	// Backoff is the base pause before retry r (1-based): Backoff doubles
	// per retry up to BackoffCap, then deterministic jitter scales the pause
	// into [½d, d] so a fleet of jobs that failed together does not retry in
	// lockstep. 0 retries immediately. See RetryDelay for the exact schedule.
	Backoff time.Duration

	// BackoffCap bounds the exponential growth of the pause (pre-jitter).
	// 0 means DefaultBackoffCap; a cap below Backoff clamps every pause.
	BackoffCap time.Duration

	// Seed decorrelates the jitter of policies that share labels (e.g. one
	// seed per serving tenant). The schedule is a pure function of
	// (Seed, label, retry number), so retries are deterministic — two
	// processes with the same policy draw the same pauses — without being
	// synchronized across labels.
	Seed uint64

	// OnRetry observes every retry decision before the backoff pause:
	// attempt is the 1-based retry number and err the transient failure
	// being retried. The CLI wires this to stderr for deterministic retry
	// accounting; nil means silent.
	OnRetry func(attempt int, err error)
}

// Run executes fn under the policy: each attempt gets its own deadline
// (when Timeout > 0), transient failures are retried up to Retries times
// with exponential backoff, and permanent failures return immediately.
// label names the job in retry-exhaustion errors. If the caller's ctx dies,
// Run stops immediately — a deliberate cancellation is never retried.
func (p JobPolicy) Run(ctx context.Context, label string, fn func(context.Context) error) error {
	if label == "" {
		label = "job"
	}
	retries := p.Retries
	if retries < 0 {
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = func() error {
			actx := ctx
			cancel := func() {}
			if p.Timeout > 0 {
				actx, cancel = context.WithTimeout(ctx, p.Timeout)
			}
			defer cancel()
			return fn(actx)
		}()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's context is gone: whatever fn returned is a
			// consequence of that, not something a retry can fix.
			return err
		}
		if !Transient(err) {
			return err
		}
		if attempt == retries {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt+1, err)
		}
		if d := p.RetryDelay(label, attempt+1); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	if retries > 0 {
		return fmt.Errorf("exec: %s: gave up after %d attempts: %w", label, retries+1, err)
	}
	return err
}

// DefaultBackoffCap bounds exponential backoff growth when JobPolicy leaves
// BackoffCap zero: past it, every further retry waits the cap (jittered).
const DefaultBackoffCap = 30 * time.Second

// RetryDelay is the pause before retry r (1-based) of the job named label:
// capped exponential backoff with deterministic jitter.
//
// The raw delay doubles from Backoff — Backoff, 2·Backoff, 4·Backoff, … —
// and saturates at BackoffCap (DefaultBackoffCap when zero). Jitter then
// scales it by a factor in [½, 1] drawn from an FNV-1a hash of
// (Seed, label, r): deterministic, so a retry schedule is reproducible and
// testable, but decorrelated across labels, so the retry storm after a
// shared transient failure (many queued jobs timing out together) fans out
// instead of hammering the same instant. Returns 0 when Backoff is 0.
func (p JobPolicy) RetryDelay(label string, retry int) time.Duration {
	if p.Backoff <= 0 || retry < 1 {
		return 0
	}
	ceil := p.BackoffCap
	if ceil <= 0 {
		ceil = DefaultBackoffCap
	}
	d := p.Backoff
	for i := 1; i < retry && d < ceil; i++ {
		if d > ceil/2 {
			d = ceil
		} else {
			d *= 2
		}
	}
	if d > ceil {
		d = ceil
	}
	// Deterministic jitter in [½d, d]: hash → uniform fraction in [0, 1).
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(p.Seed >> (8 * i))
		buf[8+i] = byte(uint64(retry) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	frac := float64(h.Sum64()%(1<<20)) / (1 << 20)
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}
