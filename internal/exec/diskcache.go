package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// On-disk cache entry format, little-endian, following the simulator's PLCK
// checkpoint discipline (versioned magic header, length-validated fields,
// trailing crc32 over everything before it):
//
//	u32 magic "PLDE" | u32 version | u64 key fingerprint |
//	u32 keyLen | key bytes | u32 valLen | value bytes | u32 crc32
//
// Entries are written to a temp file, fsynced, and renamed into place, so a
// reader never observes a half-written entry; a SIGKILL mid-write can only
// leave a stale temp file, which the eviction scan sweeps away.

const (
	diskMagic = 0x504C4445 // "PLDE"

	// DiskEntryVersion is the persistent cache-entry format version. Get
	// quarantines entries written by any other version and reports a miss,
	// so a format change costs re-evaluation, never a crash or a wrong hit.
	DiskEntryVersion = 1

	diskEntryExt  = ".plde"
	quarantineExt = ".quarantined"

	// diskEntryMinLen is the size of an entry with empty key and value:
	// magic + version + fingerprint + two length fields + crc32.
	diskEntryMinLen = 4 + 4 + 8 + 4 + 4 + 4
)

// DefaultDiskCacheBytes is the persistent tier's default LRU size cap.
const DefaultDiskCacheBytes int64 = 256 << 20

// encodeDiskEntry serialises one cache entry to its on-disk form.
func encodeDiskEntry(k Key, val []byte) []byte {
	b := make([]byte, 0, diskEntryMinLen+len(k.str)+len(val))
	b = binary.LittleEndian.AppendUint32(b, diskMagic)
	b = binary.LittleEndian.AppendUint32(b, DiskEntryVersion)
	b = binary.LittleEndian.AppendUint64(b, k.hash)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(k.str)))
	b = append(b, k.str...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(val)))
	b = append(b, val...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeDiskEntry parses an on-disk entry, validating checksum, magic,
// version and both length fields before trusting any of it. Corrupt or
// truncated input yields an error — never a panic, an unbounded allocation,
// or a silently wrong value.
func decodeDiskEntry(data []byte) (key string, hash uint64, val []byte, err error) {
	fail := func(format string, args ...any) (string, uint64, []byte, error) {
		return "", 0, nil, fmt.Errorf("exec: bad cache entry: "+format, args...)
	}
	if len(data) < diskEntryMinLen {
		return fail("%d bytes is shorter than any entry", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fail("checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	if m := binary.LittleEndian.Uint32(body); m != diskMagic {
		return fail("bad magic %08x", m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != DiskEntryVersion {
		return fail("version %d, this build reads %d", v, DiskEntryVersion)
	}
	hash = binary.LittleEndian.Uint64(body[8:])
	keyLen := int(binary.LittleEndian.Uint32(body[16:]))
	rest := body[20:]
	if keyLen < 0 || keyLen > len(rest)-4 {
		return fail("key length %d exceeds remaining %d bytes", keyLen, len(rest))
	}
	key = string(rest[:keyLen])
	rest = rest[keyLen:]
	valLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if valLen < 0 || valLen != len(rest) {
		return fail("value length %d does not match remaining %d bytes", valLen, len(rest))
	}
	return key, hash, rest, nil
}

// DiskStats is a point-in-time snapshot of the persistent tier's counters.
type DiskStats struct {
	Hits        int64 // entries served from disk
	Writes      int64 // entries written through this process
	Quarantined int64 // defective entries set aside for re-evaluation
	Evicted     int64 // entries removed by the LRU size cap
}

// DiskCache is the disk-backed persistent tier under the in-memory
// design-point cache: fingerprint-keyed entries, one file each, written
// atomically and bounded by an LRU size cap. It survives restarts — and
// SIGKILL — so a rerun of an interrupted sweep resumes from the completed
// design points instead of re-evaluating them. Safe for concurrent use
// within a process, and safe to share a directory across processes (writes
// are atomic renames). A nil *DiskCache is valid and disables the tier.
type DiskCache struct {
	dir      string
	maxBytes int64

	evictMu sync.Mutex // serialises size scans and evictions

	// approx tracks the tier's size without a directory scan per Put: seeded
	// by one scan at open, bumped by each write, corrected to the measured
	// total whenever an eviction sweep runs. Puts stay O(1) until the cap is
	// plausibly exceeded.
	approx atomic.Int64

	hits, writes, quarantined, evicted atomic.Int64
}

// OpenDiskCache opens (creating if needed) a persistent tier rooted at dir
// with the given size cap in bytes (<= 0 means DefaultDiskCacheBytes).
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskCacheBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exec: cache dir: %w", err)
	}
	d := &DiskCache{dir: dir, maxBytes: maxBytes}
	var total int64
	if ents, err := os.ReadDir(dir); err == nil {
		for _, ent := range ents {
			if info, err := ent.Info(); err == nil && !ent.IsDir() {
				total += info.Size()
			}
		}
	}
	d.approx.Store(total)
	return d, nil
}

// Dir returns the tier's root directory. Nil-safe (empty for a nil tier).
func (d *DiskCache) Dir() string {
	if d == nil {
		return ""
	}
	return d.dir
}

// path names k's entry file: the 64-bit fingerprint plus a crc32 of the
// full key string, so colliding fingerprints land in different files; the
// full key stored inside the entry catches the residual collisions.
func (d *DiskCache) path(k Key) string {
	return filepath.Join(d.dir,
		fmt.Sprintf("%016x-%08x%s", k.hash, crc32.ChecksumIEEE([]byte(k.str)), diskEntryExt))
}

// Get returns the stored payload for k. Any defect — truncation, bit
// flips, bad magic, a stale format version — quarantines the file (renamed
// *.quarantined) and reports a miss, so the design point is re-evaluated
// rather than fatal or silently wrong. Nil-safe.
func (d *DiskCache) Get(k Key) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	path := d.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	key, _, val, err := decodeDiskEntry(data)
	if err != nil {
		d.quarantine(path)
		return nil, false
	}
	if key != k.str {
		// A filename collision with a different key: that entry is valid,
		// just not ours. Leave it alone and miss.
		return nil, false
	}
	d.hits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now) // LRU recency, best-effort
	return val, true
}

// quarantine sets a defective entry aside so it is never read again but
// stays inspectable; if the rename fails the file is removed outright.
func (d *DiskCache) quarantine(path string) {
	d.quarantined.Add(1)
	if err := os.Rename(path, path+quarantineExt); err != nil {
		os.Remove(path)
	}
}

// Put writes the payload for k atomically: encoded into a temp file in the
// cache directory, fsynced, then renamed into place. A crash mid-write can
// only lose the entry being written, never corrupt an existing one.
// Nil-safe (a nil tier discards the write).
func (d *DiskCache) Put(k Key, val []byte) error {
	if d == nil {
		return nil
	}
	data := encodeDiskEntry(k, val)
	if int64(len(data)) > d.maxBytes {
		return fmt.Errorf("exec: cache entry of %d bytes exceeds the %d-byte tier cap", len(data), d.maxBytes)
	}
	f, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, d.path(k)); err != nil {
		os.Remove(tmp)
		return err
	}
	d.writes.Add(1)
	if d.approx.Add(int64(len(data))) > d.maxBytes {
		d.enforceCap()
	}
	return nil
}

// enforceCap evicts least-recently-used entries until the tier fits its
// size cap, and sweeps temp files abandoned by crashed writers.
func (d *DiskCache) enforceCap() {
	d.evictMu.Lock()
	defer d.evictMu.Unlock()
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		name := ent.Name()
		if strings.HasPrefix(name, ".tmp-") {
			if time.Since(info.ModTime()) > time.Minute {
				os.Remove(filepath.Join(d.dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, diskEntryExt) {
			continue
		}
		files = append(files, entry{filepath.Join(d.dir, name), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= d.maxBytes {
		d.approx.Store(total)
		return
	}
	// Oldest first; equal mtimes — common on filesystems with 1s mtime
	// granularity, where a whole burst of writes shares one timestamp —
	// break deterministically by file name (the fingerprint-derived key) so
	// eviction order never depends on directory iteration order.
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= d.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			d.evicted.Add(1)
		}
	}
	d.approx.Store(total)
}

// Flush is the shutdown barrier: every Put is already synchronous (temp
// file + fsync + rename), so Flush only has to make the renames themselves
// durable by syncing the cache directory. Nil-safe.
func (d *DiskCache) Flush() error {
	if d == nil {
		return nil
	}
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	// Directory fsync is not supported on every platform; a failed sync is
	// not worth failing shutdown over.
	if err := f.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// DiskEntryInfo describes one entry file of a persistent tier, for
// inspection tooling (tools/cache-inspect).
type DiskEntryInfo struct {
	File  string // base name of the entry file
	Key   string // full cache key (empty when Err != nil)
	Bytes int    // payload size (0 when Err != nil)
	Err   error  // non-nil when the entry is defective
}

// InspectDiskCache decodes every entry under dir without mutating anything
// (no quarantine, no recency touch) and reports each entry's key and
// payload size, or the defect that would get it quarantined. Quarantined
// and temp files are skipped.
func InspectDiskCache(dir string) ([]DiskEntryInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []DiskEntryInfo
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, diskEntryExt) {
			continue
		}
		info := DiskEntryInfo{File: name}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			info.Err = err
		} else if key, _, val, derr := decodeDiskEntry(data); derr != nil {
			info.Err = derr
		} else {
			info.Key, info.Bytes = key, len(val)
		}
		out = append(out, info)
	}
	return out, nil
}

// Stats snapshots the tier's counters. Nil-safe, and safe to call
// concurrently with in-flight Put/Get/Flush: every counter is an
// atomic.Int64, which the SIGINT summary path depends on — the deferred
// shutdown in cmd/plasticine reads these while worker goroutines may still
// be completing writes. TestDiskCacheStatsConcurrent pins this under -race.
func (d *DiskCache) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	return DiskStats{
		Hits:        d.hits.Load(),
		Writes:      d.writes.Load(),
		Quarantined: d.quarantined.Load(),
		Evicted:     d.evicted.Load(),
	}
}
