package exec

import (
	"testing"
	"time"
)

// TestRetryDelaySchedule pins the whole schedule: exponential doubling, cap
// saturation, and jitter bounded to [½d, d] of the raw (capped) delay.
func TestRetryDelaySchedule(t *testing.T) {
	p := JobPolicy{Backoff: 100 * time.Millisecond, BackoffCap: 800 * time.Millisecond}
	raw := []time.Duration{
		100 * time.Millisecond, // retry 1
		200 * time.Millisecond, // retry 2
		400 * time.Millisecond, // retry 3
		800 * time.Millisecond, // retry 4: hits the cap
		800 * time.Millisecond, // retry 5: stays there
		800 * time.Millisecond, // retry 6
	}
	for r, want := range raw {
		got := p.RetryDelay("job", r+1)
		if got < want/2 || got > want {
			t.Fatalf("RetryDelay(retry %d) = %v, want within [%v, %v]", r+1, got, want/2, want)
		}
	}
}

func TestRetryDelayDeterministic(t *testing.T) {
	p := JobPolicy{Backoff: 50 * time.Millisecond, Seed: 7}
	for r := 1; r <= 8; r++ {
		a, b := p.RetryDelay("GEMM", r), p.RetryDelay("GEMM", r)
		if a != b {
			t.Fatalf("retry %d: schedule not deterministic (%v vs %v)", r, a, b)
		}
	}
}

// TestRetryDelayDecorrelatesJobs is the retry-storm property: many jobs
// failing together must not all pick the same pause. With jitter spanning a
// 2× range, 32 distinct labels collapsing onto one value would mean the
// label is not feeding the hash.
func TestRetryDelayDecorrelatesJobs(t *testing.T) {
	p := JobPolicy{Backoff: time.Second}
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[p.RetryDelay(time.Duration(i).String(), 3)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("32 jobs drew only %d distinct delays; retries would synchronize", len(seen))
	}
}

func TestRetryDelaySeedChangesSchedule(t *testing.T) {
	a := JobPolicy{Backoff: time.Second, Seed: 1}
	b := JobPolicy{Backoff: time.Second, Seed: 2}
	same := 0
	for r := 1; r <= 8; r++ {
		if a.RetryDelay("job", r) == b.RetryDelay("job", r) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("seeds 1 and 2 produce identical schedules; Seed is not feeding the jitter")
	}
}

func TestRetryDelayZeroBackoff(t *testing.T) {
	var p JobPolicy
	if d := p.RetryDelay("job", 3); d != 0 {
		t.Fatalf("zero policy RetryDelay = %v, want 0", d)
	}
}

// TestRetryDelayDefaultCap checks an uncapped-looking policy still
// saturates at DefaultBackoffCap instead of doubling forever.
func TestRetryDelayDefaultCap(t *testing.T) {
	p := JobPolicy{Backoff: time.Second}
	if d := p.RetryDelay("job", 40); d > DefaultBackoffCap {
		t.Fatalf("retry 40 delay %v exceeds the default cap %v", d, DefaultBackoffCap)
	}
}
