package arch

// Area model, seeded from the paper's 28 nm Synopsys DC synthesis results
// (Table 5). Component coefficients are derived so that the final
// architecture (Default()) reproduces the published breakdown:
//
//	PCU   0.849 mm^2 (FUs 0.622, registers 0.144, FIFOs 0.082, control 0.001)
//	PMU   0.532 mm^2 (scratchpad 0.477, FIFOs 0.024, registers 0.023,
//	                  FUs 0.007, control 0.001)
//	interconnect 18.796 mm^2, memory controller 5.616 mm^2,
//	chip total 112.796 mm^2.
//
// All areas are in mm^2 at 28 nm.
const (
	// areaFU is one 32-bit floating-point/integer functional unit:
	// 0.622 mm^2 / (16 lanes * 6 stages).
	areaFU = 0.622 / 96

	// areaPipelineReg is one 32-bit pipeline register with its SIMD-shared
	// config mux: 0.144 mm^2 / (16 lanes * 6 stages * 6 registers).
	areaPipelineReg = 0.144 / 576

	// areaPCUFIFOWord is one buffered 32-bit word of PCU input FIFO:
	// 0.082 mm^2 over 3 vector FIFOs (16 lanes x 16 deep) + 6 scalar
	// FIFOs (16 deep).
	areaPCUFIFOWord = 0.082 / (3*16*16 + 6*16)

	// areaControl is the reconfigurable control block (counters, state
	// machines, combinational lookup tables).
	areaControl = 0.001

	// areaSRAMPerKB is scratchpad SRAM including banking/buffering logic:
	// 0.477 mm^2 / 256 KB (Synopsys memory compiler fit).
	areaSRAMPerKB = 0.477 / 256

	// areaPMUFIFOWord is one word of PMU FIFO buffering; PMU FIFOs are
	// single-ported and simpler than PCU input FIFOs:
	// 0.024 mm^2 over 3 vector ins (16x16) + 4 scalar ins (16 deep).
	areaPMUFIFOWord = 0.024 / (3*16*16 + 4*16)

	// areaPMUReg is one register of the PMU scalar address datapath
	// (wider muxing for banking modes): 0.023 mm^2 / (4 stages * 6 regs).
	areaPMUReg = 0.023 / 24

	// areaScalarALU is one scalar ALU of the PMU/AG address datapath,
	// simpler than a PCU FU: 0.007 mm^2 / 4 stages.
	areaScalarALU = 0.007 / 4

	// areaSwitch is one switch box carrying all three networks (scalar,
	// vector, control) at 16-lane vector width:
	// 18.796 mm^2 / ((16+1) * (8+1)) switch boxes.
	areaSwitch = 18.796 / 153

	// switchVectorFraction is the fraction of switch area in the vector
	// network (scales with lane count); the rest is scalar + control.
	switchVectorFraction = 0.8

	// areaAG is one address generator (scalar datapath + command FIFOs).
	areaAG = 0.06

	// areaCoalescingUnit is one address-coalescing unit with its
	// coalescing cache and burst buffers: (5.616 - 34*0.06)/4.
	areaCoalescingUnit = (5.616 - 34*areaAG) / 4
)

// AreaBreakdown reports chip area by component, in mm^2.
type AreaBreakdown struct {
	PCUFUs       float64
	PCURegisters float64
	PCUFIFOs     float64
	PCUControl   float64

	PMUScratchpad float64
	PMUFIFOs      float64
	PMURegisters  float64
	PMUFUs        float64
	PMUControl    float64

	Interconnect     float64
	MemoryController float64

	NumPCUs int
	NumPMUs int
}

// PCUTotal returns the area of a single PCU.
func (a AreaBreakdown) PCUTotal() float64 {
	return a.PCUFUs + a.PCURegisters + a.PCUFIFOs + a.PCUControl
}

// PMUTotal returns the area of a single PMU.
func (a AreaBreakdown) PMUTotal() float64 {
	return a.PMUScratchpad + a.PMUFIFOs + a.PMURegisters + a.PMUFUs + a.PMUControl
}

// ChipTotal returns the whole-chip area.
func (a AreaBreakdown) ChipTotal() float64 {
	return float64(a.NumPCUs)*a.PCUTotal() + float64(a.NumPMUs)*a.PMUTotal() +
		a.Interconnect + a.MemoryController
}

// PCUArea returns the area of one PCU with the given parameters. The model
// is the one used for the paper's design-space exploration (Section 3.7):
// the sum of the control box, FUs, pipeline registers, input FIFOs and
// output crossbars.
func PCUArea(p PCUParams, chip ChipParams) float64 {
	fus := float64(p.Lanes*p.Stages) * areaFU
	regs := float64(p.Lanes*p.Stages*p.Registers) * areaPipelineReg
	fifoWords := p.VectorIns*p.Lanes*chip.VectorFIFODepth + p.ScalarIns*chip.ScalarFIFODepth
	fifos := float64(fifoWords) * areaPCUFIFOWord
	// Output crossbars scale with the number of output buses; at the final
	// parameters their cost is folded into the FIFO/control coefficients,
	// so only the marginal cost of extra outputs appears here.
	xbar := float64((p.VectorOuts-1)*p.Lanes+(p.ScalarOuts-1)) * areaPipelineReg / 2
	return fus + regs + fifos + xbar + areaControl
}

// PMUArea returns the area of one PMU with the given parameters.
func PMUArea(p PMUParams, chip ChipParams) float64 {
	sram := float64(p.BankKB*p.Banks) * areaSRAMPerKB
	fifoWords := p.VectorIns*p.Banks*chip.VectorFIFODepth + p.ScalarIns*chip.ScalarFIFODepth
	fifos := float64(fifoWords) * areaPMUFIFOWord
	regs := float64(p.Stages*p.Registers) * areaPMUReg
	fus := float64(p.Stages) * areaScalarALU
	return sram + fifos + regs + fus + areaControl
}

// SwitchArea returns the area of one switch box for a fabric whose vector
// network is laneWidth words wide.
func SwitchArea(laneWidth int) float64 {
	vector := areaSwitch * switchVectorFraction * float64(laneWidth) / 16
	other := areaSwitch * (1 - switchVectorFraction)
	return vector + other
}

// InterconnectArea returns the area of the full static interconnect: a
// (cols+1) x (rows+1) grid of switch boxes (Figure 5).
func InterconnectArea(p Params) float64 {
	n := (p.Chip.Cols + 1) * (p.Chip.Rows + 1)
	return float64(n) * SwitchArea(p.PCU.Lanes)
}

// MemoryControllerArea returns the area of the AGs plus coalescing units.
func MemoryControllerArea(p Params) float64 {
	return float64(p.NumAGs())*areaAG + float64(p.Chip.CoalescingUnit)*areaCoalescingUnit
}

// Area computes the full chip area breakdown for the given parameters.
func Area(p Params) AreaBreakdown {
	fifoWords := p.PCU.VectorIns*p.PCU.Lanes*p.Chip.VectorFIFODepth + p.PCU.ScalarIns*p.Chip.ScalarFIFODepth
	pmuFIFOWords := p.PMU.VectorIns*p.PMU.Banks*p.Chip.VectorFIFODepth + p.PMU.ScalarIns*p.Chip.ScalarFIFODepth
	return AreaBreakdown{
		PCUFUs:       float64(p.PCU.Lanes*p.PCU.Stages) * areaFU,
		PCURegisters: float64(p.PCU.Lanes*p.PCU.Stages*p.PCU.Registers) * areaPipelineReg,
		PCUFIFOs:     float64(fifoWords) * areaPCUFIFOWord,
		PCUControl:   areaControl,

		PMUScratchpad: float64(p.PMU.BankKB*p.PMU.Banks) * areaSRAMPerKB,
		PMUFIFOs:      float64(pmuFIFOWords) * areaPMUFIFOWord,
		PMURegisters:  float64(p.PMU.Stages*p.PMU.Registers) * areaPMUReg,
		PMUFUs:        float64(p.PMU.Stages) * areaScalarALU,
		PMUControl:    areaControl,

		Interconnect:     InterconnectArea(p),
		MemoryController: MemoryControllerArea(p),

		NumPCUs: p.NumPCUs(),
		NumPMUs: p.NumPMUs(),
	}
}

// ASICResourceArea estimates the area of fixed-function (non-reconfigurable)
// resources, used by the Table 6 generalisation study: a hardwired ALU,
// register, or SRAM without configuration overhead. The paper reports that
// reconfigurability costs about 2.8x on average over ASIC designs; the
// discounts below express which fraction of each reconfigurable component a
// fixed-function equivalent needs.
const (
	asicFUFraction   = 0.40 // fixed-op datapath vs reconfigurable FU
	asicRegFraction  = 0.60 // no config muxing
	asicSRAMFraction = 0.75 // exact-sized single-mode SRAM macro
)

// FUArea returns the area of one reconfigurable functional unit.
func FUArea() float64 { return areaFU }

// PipelineRegArea returns the area of one pipeline register.
func PipelineRegArea() float64 { return areaPipelineReg }

// ScalarALUArea returns the area of one scalar address-datapath ALU.
func ScalarALUArea() float64 { return areaScalarALU }

// SRAMAreaPerKB returns configurable scratchpad area per KB.
func SRAMAreaPerKB() float64 { return areaSRAMPerKB }

// ControlArea returns the area of one unit's control block.
func ControlArea() float64 { return areaControl }

// PCUFIFOWordArea returns the area of one buffered word of PCU input FIFO.
func PCUFIFOWordArea() float64 { return areaPCUFIFOWord }

// ASICFUArea returns the area of a fixed-function 32-bit datapath op.
func ASICFUArea() float64 { return areaFU * asicFUFraction }

// ASICRegArea returns the area of a hardwired 32-bit pipeline register.
func ASICRegArea() float64 { return areaPipelineReg * asicRegFraction }

// ASICSRAMArea returns the area of an exact-sized SRAM of n KB.
func ASICSRAMArea(kb float64) float64 { return kb * areaSRAMPerKB * asicSRAMFraction }
