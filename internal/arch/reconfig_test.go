package arch

import "testing"

func TestReconfigCyclesScales(t *testing.T) {
	p := Default()
	if c := p.ReconfigCycles(0, 0, 0); c != 0 {
		t.Errorf("nothing moved, %d reconfig cycles", c)
	}
	onePCU := p.ReconfigCycles(1, 0, 0)
	if onePCU <= 0 {
		t.Fatalf("one moved PCU costs %d cycles", onePCU)
	}
	if two := p.ReconfigCycles(2, 0, 0); two < 2*onePCU-1 || two > 2*onePCU+1 {
		t.Errorf("2 PCUs cost %d cycles, one costs %d; want ~linear", two, onePCU)
	}
	// A moved PMU dominates a moved PCU: beyond its configuration it refills
	// its whole scratchpad at the burst rate.
	onePMU := p.ReconfigCycles(0, 1, 0)
	refill := int64(p.ScratchpadBytes()) / 64
	if onePMU < refill {
		t.Errorf("one moved PMU costs %d cycles, scratchpad refill alone is %d", onePMU, refill)
	}
	if onePMU <= onePCU {
		t.Errorf("moved PMU (%d cycles) should out-cost moved PCU (%d cycles)", onePMU, onePCU)
	}
	// Re-routed edges are cheap relative to unit moves but not free.
	if e := p.ReconfigCycles(0, 0, 3); e <= 0 || e >= onePCU {
		t.Errorf("3 re-routed edges cost %d cycles, want in (0,%d)", e, onePCU)
	}
}

func TestConfigBitsTrackParams(t *testing.T) {
	small := Default()
	big := Default()
	big.PCU.Stages *= 2
	big.PMU.Stages *= 2
	if big.PCUConfigBits() <= small.PCUConfigBits() {
		t.Error("doubling PCU stages did not grow its configuration size")
	}
	if big.PMUConfigBits() <= small.PMUConfigBits() {
		t.Error("doubling PMU stages did not grow its configuration size")
	}
}
