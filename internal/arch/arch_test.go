package arch

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestDefaultMatchesTable3(t *testing.T) {
	p := Default()
	if p.PCU.Lanes != 16 || p.PCU.Stages != 6 || p.PCU.Registers != 6 {
		t.Errorf("PCU datapath = %d lanes, %d stages, %d regs; Table 3 says 16/6/6", p.PCU.Lanes, p.PCU.Stages, p.PCU.Registers)
	}
	if p.PCU.ScalarIns != 6 || p.PCU.ScalarOuts != 5 || p.PCU.VectorIns != 3 || p.PCU.VectorOuts != 3 {
		t.Errorf("PCU IO = %d/%d scalar, %d/%d vector; Table 3 says 6/5 and 3/3",
			p.PCU.ScalarIns, p.PCU.ScalarOuts, p.PCU.VectorIns, p.PCU.VectorOuts)
	}
	if got := p.ScratchpadBytes(); got != 256*1024 {
		t.Errorf("PMU scratchpad = %d bytes, want 256KB", got)
	}
	if p.NumPCUs() != 64 || p.NumPMUs() != 64 {
		t.Errorf("array = %d PCUs, %d PMUs; want 64/64", p.NumPCUs(), p.NumPMUs())
	}
	if got := p.TotalScratchpadBytes(); got != 16*1024*1024 {
		t.Errorf("total scratchpad = %d bytes, want 16MB (Section 4.2)", got)
	}
}

func TestPeakFLOPSMatchesPaper(t *testing.T) {
	// Section 4.2: "peak floating point performance of 12.3 single-precision
	// TFLOPS" = 64 PCUs * 96 FUs * 1 GHz * 2 (FMA).
	got := Default().PeakFLOPS() / 1e12
	if !almostEqual(got, 12.288, 0.01) {
		t.Errorf("peak = %.3f TFLOPS, want 12.288", got)
	}
}

func TestPeakBandwidthMatchesPaper(t *testing.T) {
	// Section 4.2: 4x DDR3-1600 channels, 51.2 GB/s theoretical peak.
	got := Default().PeakDRAMBandwidth() / 1e9
	if !almostEqual(got, 51.2, 0.001) {
		t.Errorf("peak DRAM bandwidth = %.1f GB/s, want 51.2", got)
	}
}

func TestAreaMatchesTable5(t *testing.T) {
	a := Area(Default())
	cases := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"PCU FUs", a.PCUFUs, 0.622, 0.001},
		{"PCU registers", a.PCURegisters, 0.144, 0.001},
		{"PCU FIFOs", a.PCUFIFOs, 0.082, 0.001},
		{"PCU total", a.PCUTotal(), 0.849, 0.002},
		{"PMU scratchpad", a.PMUScratchpad, 0.477, 0.001},
		{"PMU FIFOs", a.PMUFIFOs, 0.024, 0.001},
		{"PMU registers", a.PMURegisters, 0.023, 0.001},
		{"PMU FUs", a.PMUFUs, 0.007, 0.001},
		{"PMU total", a.PMUTotal(), 0.532, 0.002},
		{"interconnect", a.Interconnect, 18.796, 0.01},
		{"memory controller", a.MemoryController, 5.616, 0.01},
		{"chip", a.ChipTotal(), 112.8, 0.3},
	}
	for _, c := range cases {
		if !almostEqual(c.got, c.want, c.tol) {
			t.Errorf("%s area = %.4f mm^2, want %.4f (Table 5)", c.name, c.got, c.want)
		}
	}
}

func TestAreaFractionsMatchTable5(t *testing.T) {
	a := Area(Default())
	total := a.ChipTotal()
	fr := func(x float64) float64 { return 100 * x / total }
	if got := fr(float64(a.NumPCUs) * a.PCUTotal()); !almostEqual(got, 48.16, 0.5) {
		t.Errorf("PCU fraction = %.2f%%, want 48.16%%", got)
	}
	if got := fr(float64(a.NumPMUs) * a.PMUTotal()); !almostEqual(got, 30.2, 0.5) {
		t.Errorf("PMU fraction = %.2f%%, want 30.2%%", got)
	}
	if got := fr(a.Interconnect); !almostEqual(got, 16.66, 0.5) {
		t.Errorf("interconnect fraction = %.2f%%, want 16.66%%", got)
	}
	if got := fr(a.MemoryController); !almostEqual(got, 4.98, 0.5) {
		t.Errorf("memory controller fraction = %.2f%%, want 4.98%%", got)
	}
}

func TestPCUAreaMonotonicInEachParameter(t *testing.T) {
	chip := Default().Chip
	base := Default().PCU
	grow := []func(*PCUParams){
		func(p *PCUParams) { p.Lanes *= 2 },
		func(p *PCUParams) { p.Stages++ },
		func(p *PCUParams) { p.Registers++ },
		func(p *PCUParams) { p.ScalarIns++ },
		func(p *PCUParams) { p.VectorIns++ },
		func(p *PCUParams) { p.VectorOuts++ },
	}
	baseArea := PCUArea(base, chip)
	for i, g := range grow {
		pp := base
		g(&pp)
		if got := PCUArea(pp, chip); got <= baseArea {
			t.Errorf("grow[%d]: area %.5f not greater than base %.5f", i, got, baseArea)
		}
	}
}

func TestPMUAreaDominatedBySRAM(t *testing.T) {
	a := Area(Default())
	if a.PMUScratchpad/a.PMUTotal() < 0.85 {
		t.Errorf("scratchpad fraction of PMU = %.2f, want ~0.897 (Table 5)", a.PMUScratchpad/a.PMUTotal())
	}
}

func TestMaxPowerNearPaper(t *testing.T) {
	// Abstract: "consumes a maximum power of 49 W".
	got := MaxPower(Default())
	if got < 45 || got > 53 {
		t.Errorf("max power = %.1f W, want ~49 W", got)
	}
}

func TestPowerMonotonicInActivity(t *testing.T) {
	p := Default()
	f := func(u0, u1 float64) bool {
		a := math.Abs(math.Mod(u0, 1))
		b := math.Abs(math.Mod(u1, 1))
		if a > b {
			a, b = b, a
		}
		lo := Power(p, Activity{PCUUtil: a, PMUUtil: a, AGUtil: a, FUUtil: a})
		hi := Power(p, Activity{PCUUtil: b, PMUUtil: b, AGUtil: b, FUUtil: b})
		return lo <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerGatingIdleChip(t *testing.T) {
	p := Default()
	idle := Power(p, Activity{})
	if !almostEqual(idle, staticPowerW, 1e-9) {
		t.Errorf("idle power = %.2f W, want static only %.2f W", idle, staticPowerW)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.PCU.Lanes = 0 },
		func(p *Params) { p.PCU.Stages = 17 },
		func(p *Params) { p.PCU.Registers = 0 },
		func(p *Params) { p.PCU.ScalarIns = 0 },
		func(p *Params) { p.PCU.ScalarOuts = 7 },
		func(p *Params) { p.PCU.VectorIns = 11 },
		func(p *Params) { p.PCU.VectorOuts = 0 },
		func(p *Params) { p.PMU.Banks = 0 },
		func(p *Params) { p.PMU.BankKB = 0 },
		func(p *Params) { p.PMU.ScalarOuts = -1 },
		func(p *Params) { p.Chip.Rows = 0 },
		func(p *Params) { p.Chip.Rows = 3; p.Chip.Cols = 3 },
		func(p *Params) { p.Chip.DDRChannels = 0 },
		func(p *Params) { p.Chip.ClockMHz = 0 },
		func(p *Params) { p.Chip.VectorFIFODepth = 1 },
	}
	for i, m := range mut {
		p := Default()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error, got nil", i)
		}
	}
}

func TestStringMentionsGeometry(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"16x8", "64 PCUs", "64 PMUs", "1000 MHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestASICAreasCheaperThanReconfigurable(t *testing.T) {
	if ASICFUArea() >= areaFU {
		t.Error("ASIC FU should be cheaper than reconfigurable FU")
	}
	if ASICRegArea() >= areaPipelineReg {
		t.Error("ASIC register should be cheaper than pipeline register")
	}
	if ASICSRAMArea(256) >= 0.477 {
		t.Error("ASIC SRAM should be cheaper than configurable scratchpad")
	}
}

func TestAreaScalesWithGrid(t *testing.T) {
	small := Default()
	small.Chip.Rows, small.Chip.Cols = 4, 8
	if Area(small).ChipTotal() >= Area(Default()).ChipTotal() {
		t.Error("4x8 chip should be smaller than 16x8 chip")
	}
}

func TestPMUAreaMonotonicInCapacity(t *testing.T) {
	chip := Default().Chip
	base := Default().PMU
	bigger := base
	bigger.BankKB *= 2
	if PMUArea(bigger, chip) <= PMUArea(base, chip) {
		t.Error("doubling bank size should grow PMU area")
	}
	moreBanks := base
	moreBanks.Banks *= 2
	if PMUArea(moreBanks, chip) <= PMUArea(base, chip) {
		t.Error("doubling banks should grow PMU area")
	}
}

func TestSwitchAreaScalesWithLanes(t *testing.T) {
	if SwitchArea(32) <= SwitchArea(16) {
		t.Error("wider vector network should cost more switch area")
	}
	// Control+scalar portion survives at tiny widths.
	if SwitchArea(1) <= 0 {
		t.Error("switch area must stay positive")
	}
}

func TestMaxPowerScalesWithChip(t *testing.T) {
	small := Default()
	small.Chip.Rows, small.Chip.Cols = 4, 8
	if MaxPower(small) >= MaxPower(Default()) {
		t.Error("a quarter chip should have a lower power envelope")
	}
	f := func(u uint8) bool {
		frac := float64(u%101) / 100
		p := Power(Default(), Activity{PCUUtil: frac, PMUUtil: frac, AGUtil: frac, FUUtil: frac})
		return p >= 0 && p <= MaxPower(Default())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
