package arch

// Power model, seeded from the paper's PrimeTime profiling (Section 4.2):
// the chip consumes a maximum of 49 W at 1 GHz; per-benchmark powers
// (Table 7) range from 10.7 W (SGD, mostly clock-gated) to 42.6 W (CNN).
//
// Unused units are power gated (Section 4.5), so chip power is static
// power plus the dynamic power of the units a benchmark actually occupies,
// scaled by their datapath activity.
const (
	// staticPowerW is leakage plus always-on clocking for the whole chip.
	staticPowerW = 5.0

	// pcuBasePowerW is the dynamic power of an active PCU's control,
	// counters, FIFOs and interconnect interface, independent of how many
	// FU slots do useful work.
	pcuBasePowerW = 0.22

	// pcuFUPowerW is the additional dynamic power of a PCU whose FUs are
	// fully utilised (all lanes, all stages switching every cycle).
	pcuFUPowerW = 0.20

	// pmuPowerW is the dynamic power of an active PMU (SRAM banks plus
	// address datapath).
	pmuPowerW = 0.15

	// agPowerW is the dynamic power of an active address generator.
	agPowerW = 0.07

	// coalescingUnitPowerW is the dynamic power of one active coalescing
	// unit including its DDR PHY activity.
	coalescingUnitPowerW = 0.50

	// networkPowerW is the dynamic power of the static interconnect at
	// full activity; it scales with the fraction of active units.
	networkPowerW = 3.0
)

// Activity describes how a benchmark occupies the fabric; utilisations are
// fractions in [0,1] as reported in Table 7.
type Activity struct {
	PCUUtil float64 // fraction of PCUs configured and active
	PMUUtil float64 // fraction of PMUs configured and active
	AGUtil  float64 // fraction of address generators active
	FUUtil  float64 // fraction of FU slots in active PCUs doing useful work
}

// Power returns total chip power in watts for the given activity.
func Power(p Params, a Activity) float64 {
	activePCUs := a.PCUUtil * float64(p.NumPCUs())
	activePMUs := a.PMUUtil * float64(p.NumPMUs())
	activeAGs := a.AGUtil * float64(p.NumAGs())
	// Scale per-unit power with unit size relative to the final design.
	pcuScale := float64(p.PCU.Lanes*p.PCU.Stages) / 96
	pmuScale := float64(p.PMU.BankKB*p.PMU.Banks) / 256
	unitActivity := (a.PCUUtil + a.PMUUtil) / 2

	pw := staticPowerW
	pw += activePCUs * (pcuBasePowerW + pcuFUPowerW*a.FUUtil) * pcuScale
	pw += activePMUs * pmuPowerW * pmuScale
	pw += activeAGs * agPowerW
	if a.AGUtil > 0 {
		pw += float64(p.Chip.CoalescingUnit) * coalescingUnitPowerW
	}
	pw += networkPowerW * unitActivity
	return pw
}

// MaxPower returns the chip's maximum power: every unit active with fully
// utilised datapaths. For the final architecture this is ~49 W (Abstract).
func MaxPower(p Params) float64 {
	return Power(p, Activity{PCUUtil: 1, PMUUtil: 1, AGUtil: 1, FUUtil: 1})
}
