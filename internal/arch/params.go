// Package arch defines the parameterised Plasticine architecture: the
// tunable parameters of Pattern Compute Units (PCUs), Pattern Memory Units
// (PMUs) and the chip-level organisation (Table 3 of the paper), together
// with area and power models seeded from the paper's 28 nm synthesis
// results (Table 5, Section 4.2).
package arch

import "fmt"

// PCUParams are the tunable Pattern Compute Unit parameters (Table 3).
type PCUParams struct {
	Lanes      int // SIMD lanes (paper range 4..32, final 16)
	Stages     int // pipeline stages of functional units (1..16, final 6)
	Registers  int // pipeline registers per FU/stage (2..16, final 6)
	ScalarIns  int // scalar inputs (1..16, final 6)
	ScalarOuts int // scalar outputs (1..6, final 5)
	VectorIns  int // vector inputs (1..10, final 3)
	VectorOuts int // vector outputs (1..6, final 3)
}

// PMUParams are the tunable Pattern Memory Unit parameters (Table 3).
type PMUParams struct {
	BankKB     int // size of one SRAM bank in KB (4..64, final 16)
	Banks      int // number of SRAM banks (equals PCU lanes, final 16)
	Stages     int // scalar address-datapath stages (1..16, final 4)
	Registers  int // registers per stage (2..16, final 6)
	ScalarIns  int // scalar inputs (1..16, final 4)
	ScalarOuts int // scalar outputs (0..6, final 0)
	VectorIns  int // vector inputs (1..10, final 3)
	VectorOuts int // vector outputs (1..6, final 1)
}

// ChipParams describe the chip-level organisation (Section 3, Figure 5).
type ChipParams struct {
	Rows int // unit rows (final 8)
	Cols int // unit columns (final 16); PCU:PMU ratio is 1:1, interleaved

	DDRChannels    int // DRAM channels (final 4)
	AGsPerSide     int // address generators per chip side feeding the channels
	CoalescingUnit int // coalescing units, one per channel

	ClockMHz int // fabric clock (final 1000 = 1 GHz)

	// FIFO depths used throughout the fabric.
	VectorFIFODepth int
	ScalarFIFODepth int
}

// Params is a complete Plasticine architecture configuration.
type Params struct {
	PCU  PCUParams
	PMU  PMUParams
	Chip ChipParams
}

// Default returns the final architecture selected in the paper
// (Table 3): a 16x8 array with a 1:1 PCU:PMU ratio, 16-lane 6-stage PCUs,
// 256 KB 16-bank PMUs, 4 DDR channels at 1 GHz.
func Default() Params {
	return Params{
		PCU: PCUParams{
			Lanes:      16,
			Stages:     6,
			Registers:  6,
			ScalarIns:  6,
			ScalarOuts: 5,
			VectorIns:  3,
			VectorOuts: 3,
		},
		PMU: PMUParams{
			BankKB:     16,
			Banks:      16,
			Stages:     4,
			Registers:  6,
			ScalarIns:  4,
			ScalarOuts: 0,
			VectorIns:  3,
			VectorOuts: 1,
		},
		Chip: ChipParams{
			Rows:            8,
			Cols:            16,
			DDRChannels:     4,
			AGsPerSide:      17, // 34 AGs total, two sides (Table 5)
			CoalescingUnit:  4,
			ClockMHz:        1000,
			VectorFIFODepth: 16,
			ScalarFIFODepth: 16,
		},
	}
}

// NumPCUs returns the number of PCUs on the chip (half the units; the array
// interleaves PCUs and PMUs 1:1 as in Figure 5).
func (p Params) NumPCUs() int { return p.Chip.Rows * p.Chip.Cols / 2 }

// NumPMUs returns the number of PMUs on the chip.
func (p Params) NumPMUs() int { return p.Chip.Rows * p.Chip.Cols / 2 }

// NumAGs returns the total number of address generators.
func (p Params) NumAGs() int { return 2 * p.Chip.AGsPerSide }

// ScratchpadBytes returns the scratchpad capacity of one PMU in bytes.
func (p Params) ScratchpadBytes() int { return p.PMU.BankKB * 1024 * p.PMU.Banks }

// TotalScratchpadBytes returns the on-chip scratchpad capacity of the chip.
func (p Params) TotalScratchpadBytes() int { return p.ScratchpadBytes() * p.NumPMUs() }

// PeakFLOPS returns the peak single-precision floating point throughput in
// FLOP/s: every FU can retire one operation per cycle.
func (p Params) PeakFLOPS() float64 {
	fus := float64(p.NumPCUs() * p.PCU.Lanes * p.PCU.Stages)
	return fus * float64(p.Chip.ClockMHz) * 1e6 * 2 // FMA counts as 2 FLOPs
}

// PeakDRAMBandwidth returns the theoretical peak DRAM bandwidth in bytes/s
// for the configured number of DDR3-1600 channels (12.8 GB/s each).
func (p Params) PeakDRAMBandwidth() float64 {
	return float64(p.Chip.DDRChannels) * 12.8e9
}

// Validate reports whether the parameters lie within the design space the
// paper explores (Table 3) and are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.PCU.Lanes < 1 || p.PCU.Lanes > 64:
		return fmt.Errorf("arch: PCU lanes %d out of range [1,64]", p.PCU.Lanes)
	case p.PCU.Stages < 1 || p.PCU.Stages > 16:
		return fmt.Errorf("arch: PCU stages %d out of range [1,16]", p.PCU.Stages)
	case p.PCU.Registers < 1 || p.PCU.Registers > 16:
		return fmt.Errorf("arch: PCU registers %d out of range [1,16]", p.PCU.Registers)
	case p.PCU.ScalarIns < 1 || p.PCU.ScalarIns > 16:
		return fmt.Errorf("arch: PCU scalar inputs %d out of range [1,16]", p.PCU.ScalarIns)
	case p.PCU.ScalarOuts < 1 || p.PCU.ScalarOuts > 6:
		return fmt.Errorf("arch: PCU scalar outputs %d out of range [1,6]", p.PCU.ScalarOuts)
	case p.PCU.VectorIns < 1 || p.PCU.VectorIns > 10:
		return fmt.Errorf("arch: PCU vector inputs %d out of range [1,10]", p.PCU.VectorIns)
	case p.PCU.VectorOuts < 1 || p.PCU.VectorOuts > 6:
		return fmt.Errorf("arch: PCU vector outputs %d out of range [1,6]", p.PCU.VectorOuts)
	case p.PMU.Banks < 1:
		return fmt.Errorf("arch: PMU banks %d must be positive", p.PMU.Banks)
	case p.PMU.BankKB < 1:
		return fmt.Errorf("arch: PMU bank size %d KB must be positive", p.PMU.BankKB)
	case p.PMU.Stages < 1 || p.PMU.Stages > 16:
		return fmt.Errorf("arch: PMU stages %d out of range [1,16]", p.PMU.Stages)
	case p.PMU.ScalarOuts < 0 || p.PMU.ScalarOuts > 6:
		return fmt.Errorf("arch: PMU scalar outputs %d out of range [0,6]", p.PMU.ScalarOuts)
	case p.Chip.Rows < 1 || p.Chip.Cols < 1:
		return fmt.Errorf("arch: chip grid %dx%d must be positive", p.Chip.Cols, p.Chip.Rows)
	case p.Chip.Rows*p.Chip.Cols%2 != 0:
		return fmt.Errorf("arch: chip grid %dx%d must hold an equal number of PCUs and PMUs", p.Chip.Cols, p.Chip.Rows)
	case p.Chip.DDRChannels < 1:
		return fmt.Errorf("arch: %d DDR channels, need at least 1", p.Chip.DDRChannels)
	case p.Chip.ClockMHz < 1:
		return fmt.Errorf("arch: clock %d MHz must be positive", p.Chip.ClockMHz)
	case p.Chip.VectorFIFODepth < 2 || p.Chip.ScalarFIFODepth < 2:
		return fmt.Errorf("arch: FIFO depths (%d vector, %d scalar) must be at least 2",
			p.Chip.VectorFIFODepth, p.Chip.ScalarFIFODepth)
	}
	return nil
}

// String summarises the configuration.
func (p Params) String() string {
	return fmt.Sprintf("plasticine %dx%d (%d PCUs, %d PMUs), %d lanes x %d stages, %d KB/PMU, %d DDR ch @ %d MHz",
		p.Chip.Cols, p.Chip.Rows, p.NumPCUs(), p.NumPMUs(),
		p.PCU.Lanes, p.PCU.Stages, p.ScratchpadBytes()/1024, p.Chip.DDRChannels, p.Chip.ClockMHz)
}
