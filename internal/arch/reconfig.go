package arch

// Reconfiguration cost model for mid-run recovery. Plasticine units are
// configured through a word-wide static configuration network (Section 3.6);
// after an incremental repair, only the moved units and the switches on
// re-routed paths receive new configuration, and a moved PMU additionally
// refills its scratchpad contents from DRAM.

// configNetworkBits is the configuration-network width in bits per cycle.
const configNetworkBits = 64

// switchConfigBits is the configuration size of one switch site: per-output
// source selects and static route tables for the scalar, vector and control
// networks.
const switchConfigBits = 512

// refillBytesPerCycle is the scratchpad refill rate for a moved PMU: one
// 64-byte DRAM burst per cycle through its assigned channel, best case.
const refillBytesPerCycle = 64

// PCUConfigBits estimates one PCU's configuration size: per-stage, per-lane
// FU opcodes and register source selects, plus input/output port and
// counter configuration.
func (p Params) PCUConfigBits() int64 {
	perFU := int64(16 + 4*p.PCU.Registers) // opcode + operand/dest selects
	fus := int64(p.PCU.Stages) * int64(p.PCU.Lanes)
	ports := int64(32) * int64(p.PCU.ScalarIns+p.PCU.ScalarOuts+p.PCU.VectorIns+p.PCU.VectorOuts)
	counters := int64(6 * 64) // chainable counter bounds/strides
	return perFU*fus + ports + counters
}

// PMUConfigBits estimates one PMU's configuration size: the scalar address
// datapath, banking/buffering control, and port configuration.
func (p Params) PMUConfigBits() int64 {
	perStage := int64(16 + 4*p.PMU.Registers)
	ports := int64(32) * int64(p.PMU.ScalarIns+p.PMU.ScalarOuts+p.PMU.VectorIns+p.PMU.VectorOuts)
	banking := int64(64) // banking mode + buffer partition registers
	return perStage*int64(p.PMU.Stages) + ports + banking
}

// ReconfigCycles returns the stall cycles charged for applying an
// incremental repair: streaming the moved units' configurations over the
// configuration network, reprogramming the switches of re-routed edges, and
// refilling moved PMUs' scratchpads.
func (p Params) ReconfigCycles(movedPCUs, movedPMUs, reroutedEdges int) int64 {
	bits := int64(movedPCUs)*p.PCUConfigBits() +
		int64(movedPMUs)*p.PMUConfigBits() +
		int64(reroutedEdges)*switchConfigBits
	cycles := (bits + configNetworkBits - 1) / configNetworkBits
	cycles += int64(movedPMUs) * int64(p.ScratchpadBytes()) / refillBytesPerCycle
	return cycles
}
