package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOrderingAndTieBreak(t *testing.T) {
	var q Queue[string]
	q.Push(30, "c")
	q.Push(10, "a1")
	q.Push(20, "b")
	q.Push(10, "a2") // same cycle as a1, pushed later
	q.Push(10, "a3")

	want := []struct {
		at  int64
		val string
	}{{10, "a1"}, {10, "a2"}, {10, "a3"}, {20, "b"}, {30, "c"}}
	for i, w := range want {
		if at, ok := q.PeekAt(); !ok || at != w.at {
			t.Fatalf("peek %d: got (%d,%v), want %d", i, at, ok, w.at)
		}
		v, at := q.Pop()
		if v != w.val || at != w.at {
			t.Fatalf("pop %d: got (%q,%d), want (%q,%d)", i, v, at, w.val, w.at)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.Len())
	}
	if _, ok := q.PeekAt(); ok {
		t.Fatal("PeekAt on empty queue reported an entry")
	}
}

// TestDeterministicUnderRandomLoad: for any interleaving of pushes and
// pops, pop order equals a stable sort by (cycle, push order).
func TestDeterministicUnderRandomLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q Queue[int]
		type rec struct {
			at  int64
			id  int
			out bool
		}
		var pushed []rec
		var popped []rec
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			if q.Len() > 0 && rng.Intn(3) == 0 {
				id, at := q.Pop()
				popped = append(popped, rec{at: at, id: id})
				pushed[id].out = true
				continue
			}
			at := int64(rng.Intn(20))
			pushed = append(pushed, rec{at: at, id: len(pushed)})
			q.Push(at, pushed[len(pushed)-1].id)
		}
		for q.Len() > 0 {
			id, at := q.Pop()
			popped = append(popped, rec{at: at, id: id})
		}
		// Every pop must return the minimum (at, id) among entries present
		// at that moment. Verify the global drain tail: once pushes stop,
		// pops come out in exact (at, id) order.
		tail := popped[len(popped)-q.Len():]
		if !sort.SliceIsSorted(tail, func(i, j int) bool {
			if tail[i].at != tail[j].at {
				return tail[i].at < tail[j].at
			}
			return tail[i].id < tail[j].id
		}) {
			t.Fatalf("trial %d: drain tail out of order: %+v", trial, tail)
		}
	}
}

// TestPopMinimalInvariant: a pop never returns an entry with a later cycle
// than another entry still in the queue, and same-cycle entries come out
// in push order.
func TestPopMinimalInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue[uint64]
	live := map[uint64]int64{}
	var seq uint64
	for step := 0; step < 5000; step++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			at := int64(rng.Intn(50))
			q.Push(at, seq)
			live[seq] = at
			seq++
			continue
		}
		id, at := q.Pop()
		if live[id] != at {
			t.Fatalf("pop returned (%d,%d), pushed at %d", id, at, live[id])
		}
		for oid, oat := range live {
			if oid == id {
				continue
			}
			if oat < at || (oat == at && oid < id) {
				t.Fatalf("pop returned (%d,%d) while (%d,%d) was queued", id, at, oid, oat)
			}
		}
		delete(live, id)
	}
}

func TestFilterPreservesOrderAndVisitsInPushOrder(t *testing.T) {
	var q Queue[int]
	ats := []int64{5, 3, 9, 3, 7, 1}
	for i, at := range ats {
		q.Push(at, i)
	}
	var visited []int
	q.Filter(func(v int) bool {
		visited = append(visited, v)
		return v%2 == 0 // drop odd push ids
	})
	for i, v := range visited {
		if v != i {
			t.Fatalf("Filter visited %v, want push order 0..%d", visited, len(ats)-1)
		}
	}
	// Survivors pop in (at, push) order: ids 0(at5) 2(at9) 4(at7) remain.
	wantIDs := []int{0, 4, 2}
	wantAts := []int64{5, 7, 9}
	for i := range wantIDs {
		v, at := q.Pop()
		if v != wantIDs[i] || at != wantAts[i] {
			t.Fatalf("post-filter pop %d: got (%d,%d), want (%d,%d)", i, v, at, wantIDs[i], wantAts[i])
		}
	}
}

func TestInOrderDoesNotMutate(t *testing.T) {
	var q Queue[int]
	q.Push(4, 0)
	q.Push(2, 1)
	q.Push(4, 2)
	var seen []int64
	q.InOrder(func(at int64, v int) { seen = append(seen, at) })
	q.InOrder(func(at int64, v int) {}) // second pass must see the same queue
	if len(seen) != 3 || seen[0] != 2 || seen[1] != 4 || seen[2] != 4 {
		t.Fatalf("InOrder visited %v, want [2 4 4]", seen)
	}
	if v, at := q.Pop(); v != 1 || at != 2 {
		t.Fatalf("InOrder mutated the queue: pop got (%d,%d)", v, at)
	}
}
