// Package eventq provides the deterministic min-heap the discrete-event
// simulator core schedules on. Entries are keyed by (cycle, insertion
// sequence): the earliest cycle pops first, and entries scheduled for the
// same cycle pop in the order they were pushed. That tie-break is load-
// bearing — the simulator's byte-identity guarantee against the legacy
// cycle-by-cycle engine requires same-cycle DRAM completions to fire in
// submission order, because each firing advances the fault model's PRNG.
package eventq

// Queue is a deterministic min-heap of values keyed by a cycle number.
// The zero value is an empty queue ready for use. Not safe for concurrent
// use (the simulator is single-threaded per run).
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	at  int64
	seq uint64
	val T
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules v at cycle at. Entries pushed at the same cycle pop in
// push order.
func (q *Queue[T]) Push(at int64, v T) {
	q.items = append(q.items, entry[T]{at: at, seq: q.seq, val: v})
	q.seq++
	q.up(len(q.items) - 1)
}

// PeekAt returns the earliest scheduled cycle, or false when empty.
func (q *Queue[T]) PeekAt() (int64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// Pop removes and returns the earliest entry (ties in push order).
func (q *Queue[T]) Pop() (T, int64) {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	var zero entry[T]
	q.items[n] = zero
	q.items = q.items[:n]
	if n > 0 {
		q.down(0)
	}
	return top.val, top.at
}

// Filter visits every entry in push order and keeps those for which keep
// returns true, preserving their keys. Used for fault-time surgery (a
// killed DRAM channel drops its in-flight completions); visiting in push
// order matches the legacy engine's slice iteration so lost-work callbacks
// fire in the same order.
func (q *Queue[T]) Filter(keep func(v T) bool) {
	ordered := q.ordered()
	q.items = q.items[:0]
	for _, e := range ordered {
		if keep(e.val) {
			q.items = append(q.items, e)
		}
	}
	q.init()
}

// InOrder visits every entry in (cycle, push-order) priority order without
// mutating the queue — the deterministic serialization order checkpoints
// use.
func (q *Queue[T]) InOrder(visit func(at int64, v T)) {
	for _, e := range q.sorted() {
		visit(e.at, e.val)
	}
}

// ordered returns a copy of the entries sorted by push order.
func (q *Queue[T]) ordered() []entry[T] {
	out := append([]entry[T](nil), q.items...)
	insertionSortBy(out, func(a, b entry[T]) bool { return a.seq < b.seq })
	return out
}

// sorted returns a copy of the entries sorted by (at, seq).
func (q *Queue[T]) sorted() []entry[T] {
	out := append([]entry[T](nil), q.items...)
	insertionSortBy(out, func(a, b entry[T]) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.seq < b.seq
	})
	return out
}

// insertionSortBy keeps the package dependency-free; queues are small (the
// simulator bounds in-flight bursts per transfer) and Filter/InOrder run
// only at fault events and checkpoints, never in the hot loop.
func insertionSortBy[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			return
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q.less(l, m) {
			m = l
		}
		if r < n && q.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		q.items[i], q.items[m] = q.items[m], q.items[i]
		i = m
	}
}

func (q *Queue[T]) init() {
	for i := len(q.items)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}
