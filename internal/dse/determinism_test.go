package dse

// Parallel sweeps must render byte-identical artefacts at any worker count,
// and a sweep's area cache must make repeated panels free.

import (
	"context"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/exec"
)

func TestFigure7PanelDeterministicAcrossWorkers(t *testing.T) {
	benches, err := LoadBenches()
	if err != nil {
		t.Fatal(err)
	}
	chip := arch.Default().Chip
	ctx := context.Background()
	seq, err := NewSweep(benches, chip, exec.NewEngine(1)).Figure7(ctx, "f")
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	par, err := NewSweep(benches, chip, exec.NewEngine(8)).Figure7(ctx, "f")
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	if seq.Format() != par.Format() {
		t.Errorf("panel f differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s",
			seq.Format(), par.Format())
	}
}

func TestSweepCacheMakesRepeatedPanelsFree(t *testing.T) {
	benches, err := LoadBenches()
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewEngine(4)
	s := NewSweep(benches, arch.Default().Chip, eng)
	ctx := context.Background()
	if _, err := s.Figure7(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	first := eng.CacheStats()
	if first.Misses == 0 {
		t.Fatal("first panel evaluated nothing")
	}
	if _, err := s.Figure7(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	second := eng.CacheStats()
	if second.Misses != first.Misses {
		t.Errorf("repeated panel recompiled design points: misses %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Errorf("repeated panel recorded no cache hits: %d -> %d", first.Hits, second.Hits)
	}
}
