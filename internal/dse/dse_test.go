package dse

import (
	"errors"
	"math"
	"strings"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
)

var benchCache []*Bench

func benches(t *testing.T) []*Bench {
	t.Helper()
	if benchCache == nil {
		b, err := LoadBenches()
		if err != nil {
			t.Fatal(err)
		}
		benchCache = b
	}
	return benchCache
}

func TestLoadBenchesExcludesCNN(t *testing.T) {
	bs := benches(t)
	if len(bs) != 12 {
		t.Fatalf("got %d benchmarks, want 12 (Figure 7 excludes CNN)", len(bs))
	}
	for _, b := range bs {
		if b.Name == "CNN" {
			t.Error("CNN should be excluded from the sweep set")
		}
		if len(b.PCUs) == 0 {
			t.Errorf("%s has no virtual PCUs", b.Name)
		}
	}
}

func TestFigure7PanelA(t *testing.T) {
	p, err := Figure7("a", benches(t), arch.Default().Chip)
	if err != nil {
		t.Fatal(err)
	}
	if p.Param != "stages" {
		t.Fatalf("panel a sweeps %q, want stages", p.Param)
	}
	// InnerProduct folds across 16 lanes: fewer than 5 stages cannot hold
	// the reduction tree, so stages=4 must be infeasible (an x in the
	// paper's figure) and at least one value must be feasible.
	ipRow := -1
	for i, n := range p.Benchmarks {
		if n == "InnerProduct" {
			ipRow = i
		}
	}
	if ipRow < 0 {
		t.Fatal("InnerProduct missing")
	}
	if !math.IsInf(p.Overhead[ipRow][0], 1) {
		t.Errorf("InnerProduct at 4 stages should be infeasible, got %v", p.Overhead[ipRow][0])
	}
	feasible := false
	for _, ov := range p.Overhead[ipRow] {
		if !math.IsInf(ov, 1) {
			feasible = true
			if ov < 0 {
				t.Errorf("negative overhead %v", ov)
			}
		}
	}
	if !feasible {
		t.Error("InnerProduct infeasible everywhere")
	}
	// Every benchmark's minimum overhead must be exactly 0 (normalisation).
	for bi, row := range p.Overhead {
		min := math.Inf(1)
		for _, ov := range row {
			if ov < min {
				min = ov
			}
		}
		if min != 0 {
			t.Errorf("%s: min overhead = %v, want 0", p.Benchmarks[bi], min)
		}
	}
}

func TestFigure7OverheadGrowsWithExcessStages(t *testing.T) {
	// Past each benchmark's sweet spot, adding stages only wastes area:
	// overhead at 16 stages must exceed overhead at the best value.
	p, err := Figure7("a", benches(t), arch.Default().Chip)
	if err != nil {
		t.Fatal(err)
	}
	last := len(p.Values) - 1
	for bi, row := range p.Overhead {
		if math.IsInf(row[last], 1) {
			continue
		}
		if row[last] <= 0 {
			t.Errorf("%s: 16-stage overhead = %v, want > 0", p.Benchmarks[bi], row[last])
		}
	}
}

func TestFigure7UnknownPanel(t *testing.T) {
	if _, err := Figure7("z", benches(t), arch.Default().Chip); err == nil {
		t.Error("expected error for unknown panel")
	}
}

func TestFigure7AllPanelsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("all panels are slow")
	}
	for _, id := range []string{"b", "c", "d", "e", "f"} {
		p, err := Figure7(id, benches(t), arch.Default().Chip)
		if err != nil {
			t.Fatalf("panel %s: %v", id, err)
		}
		if len(p.Overhead) != 12 {
			t.Errorf("panel %s has %d rows", id, len(p.Overhead))
		}
		if s := p.Format(); !strings.Contains(s, p.Param) {
			t.Errorf("panel %s format missing parameter name", id)
		}
	}
}

func TestTable3SelectionNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full selection sweep is slow")
	}
	rows, err := Table3(benches(t), arch.Default().Chip)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d parameter rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Chosen <= 0 {
			t.Errorf("%s: no feasible value selected", r.Param)
		}
		// Workload mixes differ from the paper's exact implementations, so
		// demand the same ballpark rather than equality.
		if r.Chosen > 3*r.Paper+2 {
			t.Errorf("%s: selected %d, paper chose %d — too far apart", r.Param, r.Chosen, r.Paper)
		}
	}
	if s := FormatTable3(rows); !strings.Contains(s, "stages") {
		t.Error("Table 3 format missing parameter names")
	}
}

func TestTable6LadderShape(t *testing.T) {
	rows, err := Table6(benches(t), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // 12 benchmarks + geomean
		t.Fatalf("got %d rows, want 13", len(rows))
	}
	geo := rows[len(rows)-1]
	if geo.Name != "GeoMean" {
		t.Fatalf("last row is %q, want GeoMean", geo.Name)
	}
	// Paper: reconfigurability costs ~2.8x over ASICs on average; the full
	// ladder lands at 11.46x. Same order of magnitude required here.
	if geo.A < 1.5 || geo.A > 6 {
		t.Errorf("geomean het overhead = %.2f, want ~2-4 (paper 2.77)", geo.A)
	}
	if geo.CumE < 4 || geo.CumE > 43 {
		t.Errorf("geomean cumulative overhead = %.2f, want ~5-40 (paper 11.46)", geo.CumE)
	}
	for _, r := range rows {
		if r.A < 1 {
			t.Errorf("%s: reconfigurable cheaper than ASIC (%.2f)", r.Name, r.A)
		}
		for _, v := range []float64{r.B, r.C, r.D, r.E} {
			if v < 0.99 {
				t.Errorf("%s: a generalization step decreased area (%.2f)", r.Name, v)
			}
		}
		if r.CumE < r.A*0.99 {
			t.Errorf("%s: cumulative %.2f below first step %.2f", r.Name, r.CumE, r.A)
		}
	}
	if s := FormatTable6(rows); !strings.Contains(s, "GeoMean") {
		t.Error("Table 6 format missing GeoMean")
	}
}

func TestMinimizeAreaRespectsFixed(t *testing.T) {
	bs := benches(t)
	p, area, err := minimizeArea(bs[0], map[string]int{"stages": 6}, arch.Default().Chip)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages != 6 {
		t.Errorf("fixed stages ignored: got %d", p.Stages)
	}
	if math.IsInf(area, 1) || area <= 0 {
		t.Errorf("area = %v", area)
	}
}

func TestMinimizeAreaUnknownParam(t *testing.T) {
	bs := benches(t)
	_, _, err := minimizeArea(bs[0], map[string]int{"lanes?": 4}, arch.Default().Chip)
	if !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("want ErrUnknownParam, got %v", err)
	}
	if !strings.Contains(err.Error(), "lanes?") {
		t.Errorf("error does not name the bad parameter: %v", err)
	}
}

func TestBenchPCUAreaInfeasible(t *testing.T) {
	bs := benches(t)
	tiny := maxParams()
	tiny.Lanes = 1 // every 16-lane unit becomes unmappable
	if a := benchPCUArea(bs[0], tiny, arch.Default().Chip); !math.IsInf(a, 1) {
		t.Errorf("expected infeasible, got %v", a)
	}
}

func TestRatioStudy(t *testing.T) {
	rows, err := RatioStudy(benches(t), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1:3, 1:1 (2:2 deduped), 3:1
		t.Fatalf("got %d ratio rows, want 3", len(rows))
	}
	var oneToOne *RatioRow
	for i := range rows {
		if rows[i].PMUs == rows[i].PCUs {
			oneToOne = &rows[i]
		}
	}
	if oneToOne == nil {
		t.Fatal("1:1 ratio missing")
	}
	// The paper chose 1:1: every benchmark must fit at that ratio.
	if oneToOne.Fit != 12 {
		t.Errorf("1:1 ratio fits %d of 12 benchmarks", oneToOne.Fit)
	}
	if s := FormatRatios(rows); !strings.Contains(s, "1:1") {
		t.Error("ratio table missing 1:1 row")
	}
}

// --- tuner-facing exports ---------------------------------------------------

func TestLoadBenchByName(t *testing.T) {
	b, err := LoadBench("InnerProduct")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "InnerProduct" || len(b.PCUs) == 0 {
		t.Fatalf("LoadBench = %+v", b)
	}
	if _, err := LoadBench("NoSuchBenchmark"); err == nil {
		t.Fatal("unknown benchmark loaded")
	}
}

// TestAnalyticalAreaMatchesSweepModel pins the export against the sweeps'
// internal path — the rewire must not move any Figure 7 number.
func TestAnalyticalAreaMatchesSweepModel(t *testing.T) {
	def := arch.Default()
	for _, b := range benches(t) {
		got := AnalyticalArea(b, def.PCU, def.Chip)
		want := benchPCUArea(b, def.PCU, def.Chip)
		if got != want {
			t.Fatalf("%s: AnalyticalArea %g != benchPCUArea %g", b.Name, got, want)
		}
		if math.IsInf(got, 1) {
			t.Fatalf("%s is infeasible at the default design point", b.Name)
		}
	}
	// A hopeless datapath is Infeasible, not a number.
	tiny := def.PCU
	tiny.Stages, tiny.Registers = 1, 1
	infeasibleSeen := false
	for _, b := range benches(t) {
		if math.IsInf(AnalyticalArea(b, tiny, def.Chip), 1) {
			infeasibleSeen = true
		}
	}
	if !infeasibleSeen {
		t.Fatal("no benchmark found a 1-stage/1-register PCU infeasible")
	}
}

func TestCheckFeasible(t *testing.T) {
	def := arch.Default()
	for _, b := range benches(t) {
		if err := CheckFeasible(b, def); err != nil {
			t.Fatalf("%s infeasible at the default design point: %v", b.Name, err)
		}
	}
	// A 2x2 chip cannot hold any real benchmark's unit demand; the error
	// must identify the shortfall class for the tuner's accounting.
	small := def
	small.Chip.Rows, small.Chip.Cols = 2, 2
	failed := false
	for _, b := range benches(t) {
		if err := CheckFeasible(b, small); err != nil {
			failed = true
			if !errors.Is(err, compiler.ErrInsufficient) {
				t.Fatalf("%s: shortfall does not wrap ErrInsufficient: %v", b.Name, err)
			}
			if !strings.Contains(err.Error(), b.Name) {
				t.Fatalf("error does not name the benchmark: %v", err)
			}
		}
	}
	if !failed {
		t.Fatal("every benchmark fit a 2x2 chip")
	}
}
