package dse

import (
	"math"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/stats"
)

// Ladder is one benchmark's row of Table 6: the successive area overheads
// of (a) making ASIC datapaths reconfigurable, (b) homogenising PMUs within
// the application, (c) homogenising PCUs, (d) generalising PMUs across
// applications, and (e) generalising PCUs.
type Ladder struct {
	Name string
	// Successive ratios.
	A, B, C, D, E float64
	// Cumulative products after each step.
	CumB, CumC, CumD, CumE float64
}

// unitAreas returns the ASIC and heterogeneous-reconfigurable areas of one
// virtual PCU. Both use the unit's own best parameterisation (per-unit
// minimizeArea), so heterogeneous sizing is never worse than the
// homogeneous compromise; the ASIC variant strips configuration overhead
// (hardwired ops, exactly the live registers, no input FIFOs or control).
func unitAreas(u *compiler.VirtualPCU, chip arch.ChipParams) (asic, het float64) {
	single := &Bench{Name: u.Name, PCUs: []*compiler.VirtualPCU{u}}
	best, area, err := minimizeArea(single, map[string]int{}, chip)
	if err != nil || math.IsInf(area, 1) {
		best = maxParams()
	}
	parts, err := compiler.PartitionPCU(u, best)
	if err != nil {
		parts, err = compiler.PartitionPCU(u, maxParams())
		if err != nil {
			// Pathological unit; approximate with raw op counts.
			ops := len(u.Ops)
			if ops == 0 {
				ops = 1
			}
			asic = float64(ops*u.Lanes) * arch.ASICFUArea() * float64(u.Unroll)
			return asic, asic / 0.4
		}
		best = maxParams()
	}
	// Heterogeneous units are sized with their own lane count; the
	// homogeneous steps later charge the full 16-lane box (which is where
	// sequential single-lane loops start paying, Section 4.3).
	best.Lanes = u.Lanes
	unitArea := arch.PCUArea(best, chip)
	for _, ph := range parts {
		het += unitArea
		fu := float64(ph.StagesUsed*u.Lanes) * arch.ASICFUArea()
		live := ph.MaxLive
		if live == 0 {
			live = 1
		}
		regs := float64(ph.StagesUsed*live*u.Lanes) * arch.ASICRegArea()
		asic += fu + regs
	}
	return asic * float64(u.Unroll), het * float64(u.Unroll)
}

func pmuKB(m *compiler.VirtualPMU) float64 {
	return float64(m.Mem.Size*m.NBuf) * 4 / 1024
}

// asicPMUArea is an exact-sized fixed SRAM with hardwired addressing.
func asicPMUArea(m *compiler.VirtualPMU) float64 {
	sram := arch.ASICSRAMArea(pmuKB(m))
	addr := float64(m.AddrOps+m.RMWOps) * arch.ScalarALUArea() * 0.4
	return float64(m.Unroll) * (sram + addr)
}

// hetPMUArea is a configurable scratchpad sized exactly for this memory.
func hetPMUArea(m *compiler.VirtualPMU) float64 {
	sram := pmuKB(m) * arch.SRAMAreaPerKB()
	addr := float64(m.AddrOps+m.RMWOps) * arch.ScalarALUArea()
	return float64(m.Unroll) * (sram + addr + arch.ControlArea())
}

// Table6 computes the ladder for every benchmark plus the geometric mean.
func Table6(benches []*Bench, params arch.Params) ([]Ladder, error) {
	var rows []Ladder
	geo := Ladder{Name: "GeoMean", A: 1, B: 1, C: 1, D: 1, E: 1, CumB: 1, CumC: 1, CumD: 1, CumE: 1}
	chip := params.Chip
	for _, b := range benches {
		var asicP, hetP float64
		for _, u := range b.PCUs {
			a, h := unitAreas(u, chip)
			asicP += a
			hetP += h
		}
		var asicM, hetM, maxHet float64
		var pmuCount int
		for _, m := range b.PMUs {
			asicM += asicPMUArea(m)
			h := hetPMUArea(m) / float64(m.Unroll)
			hetM += h * float64(m.Unroll)
			if h > maxHet {
				maxHet = h
			}
			pmuCount += m.Unroll
		}
		// b: homogeneous PMUs within the app (all sized like the largest).
		homM := maxHet * float64(pmuCount)
		// c: homogeneous PCUs within the app (best single box).
		_, homP, err := minimizeArea(b, map[string]int{}, chip)
		if err != nil {
			return nil, err
		}
		if math.IsInf(homP, 1) {
			homP = hetP // cannot homogenise; treat as unchanged
		}
		// d: generalized PMUs (the final 256 KB design).
		var genM float64
		for _, m := range b.PMUs {
			pm, err := compiler.PartitionPMU(m, params)
			if err != nil {
				return nil, err
			}
			genM += float64(pm.Units()) * arch.PMUArea(params.PMU, chip)
		}
		// e: generalized PCUs (the final PCU parameters).
		genP := benchPCUArea(b, params.PCU, chip)
		if math.IsInf(genP, 1) {
			genP = homP
		}

		a0 := asicP + asicM
		a1 := hetP + hetM
		a2 := hetP + homM
		a3 := homP + homM
		a4 := homP + genM
		a5 := genP + genM
		r := Ladder{
			Name: b.Name,
			A:    a1 / a0,
			B:    a2 / a1, CumB: a2 / a0,
			C: a3 / a2, CumC: a3 / a0,
			D: a4 / a3, CumD: a4 / a0,
			E: a5 / a4, CumE: a5 / a0,
		}
		rows = append(rows, r)
		geo.A *= r.A
		geo.B *= r.B
		geo.C *= r.C
		geo.D *= r.D
		geo.E *= r.E
		geo.CumB *= r.CumB
		geo.CumC *= r.CumC
		geo.CumD *= r.CumD
		geo.CumE *= r.CumE
	}
	n := float64(len(rows))
	pow := func(x float64) float64 { return math.Pow(x, 1/n) }
	geo.A, geo.B, geo.C, geo.D, geo.E = pow(geo.A), pow(geo.B), pow(geo.C), pow(geo.D), pow(geo.E)
	geo.CumB, geo.CumC, geo.CumD, geo.CumE = pow(geo.CumB), pow(geo.CumC), pow(geo.CumD), pow(geo.CumE)
	rows = append(rows, geo)
	return rows, nil
}

// FormatTable6 renders the ladder in the paper's layout.
func FormatTable6(rows []Ladder) string {
	t := stats.New("Table 6: successive (cumulative) area overheads of generalization",
		"Benchmark", "a. Het", "b. HomPMU", "c. HomPCU", "d. GenPMU", "e. GenPCU")
	for _, r := range rows {
		t.Add(r.Name,
			stats.F(r.A),
			stats.F(r.B)+" ("+stats.F(r.CumB)+")",
			stats.F(r.C)+" ("+stats.F(r.CumC)+")",
			stats.F(r.D)+" ("+stats.F(r.CumD)+")",
			stats.F(r.E)+" ("+stats.F(r.CumE)+")")
	}
	return t.String()
}
