package dse

import (
	"context"
	"fmt"
	"math"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/exec"
	"plasticine/internal/stats"
)

// Ladder is one benchmark's row of Table 6: the successive area overheads
// of (a) making ASIC datapaths reconfigurable, (b) homogenising PMUs within
// the application, (c) homogenising PCUs, (d) generalising PMUs across
// applications, and (e) generalising PCUs.
type Ladder struct {
	Name string
	// Successive ratios.
	A, B, C, D, E float64
	// Cumulative products after each step.
	CumB, CumC, CumD, CumE float64
}

// unitAreas returns the ASIC and heterogeneous-reconfigurable areas of one
// virtual PCU. Both use the unit's own best parameterisation (per-unit
// minimizeArea), so heterogeneous sizing is never worse than the
// homogeneous compromise; the ASIC variant strips configuration overhead
// (hardwired ops, exactly the live registers, no input FIFOs or control).
// owner/ui qualify the cache identity: unit names repeat across benchmarks,
// so the single-unit pseudo-bench is named by its owning benchmark and unit
// index to keep design-point cache keys unique.
func (s *Sweep) unitAreas(owner string, ui int, u *compiler.VirtualPCU) (asic, het float64) {
	chip := s.Chip
	single := &Bench{Name: fmt.Sprintf("%s/unit%d:%s", owner, ui, u.Name), PCUs: []*compiler.VirtualPCU{u}}
	best, area, err := s.minimizeArea(single, map[string]int{})
	if err != nil || math.IsInf(area, 1) {
		best = maxParams()
	}
	parts, err := compiler.PartitionPCU(u, best)
	if err != nil {
		parts, err = compiler.PartitionPCU(u, maxParams())
		if err != nil {
			// Pathological unit; approximate with raw op counts.
			ops := len(u.Ops)
			if ops == 0 {
				ops = 1
			}
			asic = float64(ops*u.Lanes) * arch.ASICFUArea() * float64(u.Unroll)
			return asic, asic / 0.4
		}
		best = maxParams()
	}
	// Heterogeneous units are sized with their own lane count; the
	// homogeneous steps later charge the full 16-lane box (which is where
	// sequential single-lane loops start paying, Section 4.3).
	best.Lanes = u.Lanes
	unitArea := arch.PCUArea(best, chip)
	for _, ph := range parts {
		het += unitArea
		fu := float64(ph.StagesUsed*u.Lanes) * arch.ASICFUArea()
		live := ph.MaxLive
		if live == 0 {
			live = 1
		}
		regs := float64(ph.StagesUsed*live*u.Lanes) * arch.ASICRegArea()
		asic += fu + regs
	}
	return asic * float64(u.Unroll), het * float64(u.Unroll)
}

func pmuKB(m *compiler.VirtualPMU) float64 {
	return float64(m.Mem.Size*m.NBuf) * 4 / 1024
}

// asicPMUArea is an exact-sized fixed SRAM with hardwired addressing.
func asicPMUArea(m *compiler.VirtualPMU) float64 {
	sram := arch.ASICSRAMArea(pmuKB(m))
	addr := float64(m.AddrOps+m.RMWOps) * arch.ScalarALUArea() * 0.4
	return float64(m.Unroll) * (sram + addr)
}

// hetPMUArea is a configurable scratchpad sized exactly for this memory.
func hetPMUArea(m *compiler.VirtualPMU) float64 {
	sram := pmuKB(m) * arch.SRAMAreaPerKB()
	addr := float64(m.AddrOps+m.RMWOps) * arch.ScalarALUArea()
	return float64(m.Unroll) * (sram + addr + arch.ControlArea())
}

// table6Row computes one benchmark's ladder row through the cache: the
// finished row is one persistent-tier entry, so a resumed Table 6 run skips
// completed benchmarks outright.
func (s *Sweep) table6Row(b *Bench, params arch.Params) (Ladder, error) {
	k := exec.NewKey("dse/table6-row", b.Name, fmt.Sprintf("%+v", params), fmt.Sprintf("%+v", s.Chip))
	return exec.CachedJSON(s.Engine.Cache(), k, func() (Ladder, error) {
		return s.table6RowUncached(b, params)
	})
}

func (s *Sweep) table6RowUncached(b *Bench, params arch.Params) (Ladder, error) {
	chip := s.Chip
	var asicP, hetP float64
	for ui, u := range b.PCUs {
		a, h := s.unitAreas(b.Name, ui, u)
		asicP += a
		hetP += h
	}
	var asicM, hetM, maxHet float64
	var pmuCount int
	for _, m := range b.PMUs {
		asicM += asicPMUArea(m)
		h := hetPMUArea(m) / float64(m.Unroll)
		hetM += h * float64(m.Unroll)
		if h > maxHet {
			maxHet = h
		}
		pmuCount += m.Unroll
	}
	// b: homogeneous PMUs within the app (all sized like the largest).
	homM := maxHet * float64(pmuCount)
	// c: homogeneous PCUs within the app (best single box).
	_, homP, err := s.minimizeArea(b, map[string]int{})
	if err != nil {
		return Ladder{}, err
	}
	if math.IsInf(homP, 1) {
		homP = hetP // cannot homogenise; treat as unchanged
	}
	// d: generalized PMUs (the final 256 KB design).
	var genM float64
	for _, m := range b.PMUs {
		pm, err := compiler.PartitionPMU(m, params)
		if err != nil {
			return Ladder{}, err
		}
		genM += float64(pm.Units()) * arch.PMUArea(params.PMU, chip)
	}
	// e: generalized PCUs (the final PCU parameters).
	genP := s.benchArea(b, params.PCU)
	if math.IsInf(genP, 1) {
		genP = homP
	}

	a0 := asicP + asicM
	a1 := hetP + hetM
	a2 := hetP + homM
	a3 := homP + homM
	a4 := homP + genM
	a5 := genP + genM
	return Ladder{
		Name: b.Name,
		A:    a1 / a0,
		B:    a2 / a1, CumB: a2 / a0,
		C: a3 / a2, CumC: a3 / a0,
		D: a4 / a3, CumD: a4 / a0,
		E: a5 / a4, CumE: a5 / a0,
	}, nil
}

// Table6 computes the ladder for every benchmark plus the geometric mean,
// sequentially and uncached.
//
// Deprecated: kept for existing callers and tests; use Sweep.Table6.
func Table6(benches []*Bench, params arch.Params) ([]Ladder, error) {
	return NewSweep(benches, params.Chip, nil).Table6(context.Background(), params)
}

// FormatTable6 renders the ladder in the paper's layout.
func FormatTable6(rows []Ladder) string {
	t := stats.New("Table 6: successive (cumulative) area overheads of generalization",
		"Benchmark", "a. Het", "b. HomPMU", "c. HomPCU", "d. GenPMU", "e. GenPCU")
	for _, r := range rows {
		t.Add(r.Name,
			stats.F(r.A),
			stats.F(r.B)+" ("+stats.F(r.CumB)+")",
			stats.F(r.C)+" ("+stats.F(r.CumC)+")",
			stats.F(r.D)+" ("+stats.F(r.CumD)+")",
			stats.F(r.E)+" ("+stats.F(r.CumE)+")")
	}
	return t.String()
}
