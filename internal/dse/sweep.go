package dse

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"plasticine/internal/arch"
	"plasticine/internal/exec"
	"plasticine/internal/metrics"
)

// Sweep is the design-space exploration driver: the benchmark set, the chip
// organisation, and the evaluation engine (worker pool + design-point cache)
// every sweep draws from. Figure 7, Table 3, Table 6 and the ratio study all
// hit overlapping regions of the parameter space — Table 3 alone re-visits
// each panel's grid — so sharing one cache means no design point is ever
// partitioned twice.
//
// Benches must be treated as immutable once the sweep starts: jobs on many
// goroutines partition the same virtual units concurrently (PartitionPCU is
// read-only by contract), and cache keys assume a Bench's name uniquely
// identifies its unit set. A nil Engine runs sequentially and uncached.
type Sweep struct {
	Benches []*Bench
	Chip    arch.ChipParams
	Engine  *exec.Engine

	// Design-point counters installed by SetMetrics; nil collectors
	// no-op, so an unmetered sweep pays nothing. Side-channel only:
	// sweep results never depend on them.
	mPoints     *metrics.Counter
	mInfeasible *metrics.Counter
}

// NewSweep builds a sweep over benches on chip, evaluated by eng (nil means
// sequential and uncached — the behaviour of the deprecated free functions).
func NewSweep(benches []*Bench, chip arch.ChipParams, eng *exec.Engine) *Sweep {
	return &Sweep{Benches: benches, Chip: chip, Engine: eng}
}

// SetMetrics installs design-point counters on the sweep: points counts
// area evaluations actually computed (cache misses only — a resumed or
// repeated sweep that reads the cache computes nothing), infeasible the
// subset whose virtual units could not map. Call before sweeping; a nil
// registry uninstalls.
func (s *Sweep) SetMetrics(r *metrics.Registry) {
	s.mPoints, s.mInfeasible = registerMetrics(r)
}

// RegisterMetrics pre-registers the sweep's metric families so a serving
// process's first /metricsz scrape shows them at zero; SetMetrics is
// idempotent against the same registry and attaches to the same
// collectors.
func RegisterMetrics(r *metrics.Registry) { registerMetrics(r) }

func registerMetrics(r *metrics.Registry) (points, infeasible *metrics.Counter) {
	return r.Counter("plasticine_dse_points_total",
			"DSE design points computed (area evaluations that missed the cache)."),
		r.Counter("plasticine_dse_infeasible_total",
			"Computed DSE design points whose benchmark could not map.")
}

// areaPoint and minPoint are the persisted forms of design-point results.
// Infeasibility is an explicit flag rather than +Inf because the persistent
// tier stores JSON, which cannot represent infinities.
type areaPoint struct {
	Area       float64 `json:",omitempty"`
	Infeasible bool    `json:",omitempty"`
}

type minPoint struct {
	Params     arch.PCUParams
	Area       float64 `json:",omitempty"`
	Infeasible bool    `json:",omitempty"`
}

// benchArea is benchPCUArea through the design-point cache (and, when
// attached, the persistent tier), keyed by the bench's name plus every PCU
// and chip parameter. Infeasible points are cached like any other value, so
// a point that cannot map fails exactly once.
func (s *Sweep) benchArea(b *Bench, p arch.PCUParams) float64 {
	k := exec.NewKey("dse/pcu-area", b.Name, fmt.Sprintf("%+v", p), fmt.Sprintf("%+v", s.Chip))
	v, _ := exec.CachedJSON(s.Engine.Cache(), k, func() (areaPoint, error) {
		s.mPoints.Inc()
		a := benchPCUArea(b, p, s.Chip)
		if math.IsInf(a, 1) {
			s.mInfeasible.Inc()
			return areaPoint{Infeasible: true}, nil
		}
		return areaPoint{Area: a}, nil
	})
	if v.Infeasible {
		return Infeasible
	}
	return v.Area
}

// canonFixed renders a fixed-parameter map in sorted order, so maps with
// identical contents produce identical cache keys regardless of iteration
// order.
func canonFixed(fixed map[string]int) string {
	names := make([]string, 0, len(fixed))
	for n := range fixed {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, fixed[n])
	}
	return b.String()
}

// minimizeArea is minimizeAreaUncached through the cache: a whole descent
// result persists as one entry, so a resumed sweep skips not just the grid
// points but the descents themselves.
func (s *Sweep) minimizeArea(b *Bench, fixed map[string]int) (arch.PCUParams, float64, error) {
	k := exec.NewKey("dse/minimize", b.Name, canonFixed(fixed), fmt.Sprintf("%+v", s.Chip))
	v, err := exec.CachedJSON(s.Engine.Cache(), k, func() (minPoint, error) {
		s.mPoints.Inc()
		p, area, err := s.minimizeAreaUncached(b, fixed)
		if err != nil {
			return minPoint{}, err
		}
		if math.IsInf(area, 1) {
			s.mInfeasible.Inc()
			return minPoint{Params: p, Infeasible: true}, nil
		}
		return minPoint{Params: p, Area: area}, nil
	})
	if err != nil {
		return maxParams(), Infeasible, err
	}
	if v.Infeasible {
		return v.Params, Infeasible, nil
	}
	return v.Params, v.Area, nil
}

// minimizeAreaUncached performs coordinate descent over the free PCU
// parameters (those not in fixed) to find the minimum total PCU area for a
// benchmark — the paper's "sweep the remaining space to find the minimum
// possible PCU area" (Section 3.7). The descent is sequential (each step
// depends on the last) but every point it probes goes through the shared
// cache, and neighbouring grid points probe heavily overlapping sets.
func (s *Sweep) minimizeAreaUncached(b *Bench, fixed map[string]int) (arch.PCUParams, float64, error) {
	p := maxParams()
	for name, v := range fixed {
		f, err := getParam(&p, name)
		if err != nil {
			return p, Infeasible, fmt.Errorf("dse: %s: fixed grid: %w", b.Name, err)
		}
		*f = v
	}
	best := s.benchArea(b, p)
	if math.IsInf(best, 1) {
		return p, Infeasible, nil
	}
	order := []string{"stages", "registers", "vectorIns", "vectorOuts", "scalarIns", "scalarOuts"}
	for pass := 0; pass < 2; pass++ {
		for _, name := range order {
			if _, isFixed := fixed[name]; isFixed {
				continue
			}
			f, err := getParam(&p, name)
			if err != nil {
				return p, Infeasible, fmt.Errorf("dse: %s: %w", b.Name, err)
			}
			bestV := *f
			for _, v := range pcuRanges[name] {
				q := p
				qf, err := getParam(&q, name)
				if err != nil {
					return p, Infeasible, fmt.Errorf("dse: %s: %w", b.Name, err)
				}
				*qf = v
				if a := s.benchArea(b, q); a < best {
					best, bestV = a, v
				}
			}
			f, _ = getParam(&p, name)
			*f = bestV
		}
	}
	return p, best, nil
}

// Figure7 computes one panel (a-f), fanning the benchmark x value grid
// across the engine's workers. Each job owns one cell of a preallocated
// areas matrix and reads only immutable inputs, so the panel — including its
// Format rendering — is byte-identical at any worker count.
func (s *Sweep) Figure7(ctx context.Context, panelID string) (*Panel, error) {
	spec := findPanel(panelID)
	if spec == nil {
		return nil, fmt.Errorf("dse: unknown Figure 7 panel %q (want a-f)", panelID)
	}
	values := panelValues[spec.param]
	panel := &Panel{Param: spec.param, Fixed: spec.fixed, Values: values}
	nV := len(values)
	areas := make([][]float64, len(s.Benches))
	for i := range areas {
		areas[i] = make([]float64, nV)
	}
	err := s.Engine.Pool().Map(ctx, len(s.Benches)*nV, func(_ context.Context, i int) error {
		bi, vi := i/nV, i%nV
		b, v := s.Benches[bi], values[vi]
		fixed := map[string]int{spec.param: v}
		for k, fv := range spec.fixed {
			fixed[k] = fv
		}
		_, area, err := s.minimizeArea(b, fixed)
		if err != nil {
			return fmt.Errorf("dse: panel %s, %s=%d: %w", panelID, spec.param, v, err)
		}
		areas[bi][vi] = area
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range s.Benches {
		panel.Benchmarks = append(panel.Benchmarks, b.Name)
		row := areas[bi]
		min := Infeasible
		for _, a := range row {
			if a < min {
				min = a
			}
		}
		for i := range row {
			if math.IsInf(row[i], 1) {
				row[i] = Infeasible
			} else {
				row[i] = row[i]/min - 1
			}
		}
		panel.Overhead = append(panel.Overhead, row)
	}
	panel.Average = make([]float64, nV)
	for i := range values {
		sum, n := 0.0, 0
		feasibleForAll := true
		for _, row := range panel.Overhead {
			if math.IsInf(row[i], 1) {
				feasibleForAll = false
				continue
			}
			sum += row[i]
			n++
		}
		if n == 0 || !feasibleForAll {
			panel.Average[i] = Infeasible
			if n > 0 {
				panel.Average[i] = sum / float64(n) // average of feasible ones
			}
		} else {
			panel.Average[i] = sum / float64(n)
		}
	}
	return panel, nil
}

// Table3 runs the panel sequence and reports the selected value per
// parameter next to the paper's choice. Panels run in order (each fixes the
// previous selections) with full internal parallelism; the shared cache
// makes the Table 3 pass far cheaper than six cold Figure 7 panels.
func (s *Sweep) Table3(ctx context.Context) ([]Table3Row, error) {
	paper := map[string]int{
		"stages": 6, "registers": 6, "scalarIns": 6,
		"scalarOuts": 5, "vectorIns": 3, "vectorOuts": 3,
	}
	var out []Table3Row
	for _, spec := range panelSpecs {
		p, err := s.Figure7(ctx, spec.id)
		if err != nil {
			return nil, err
		}
		out = append(out, Table3Row{Param: spec.param, Chosen: p.BestValue(), Paper: paper[spec.param]})
	}
	return out, nil
}

// Table6 computes the generalization ladder, one benchmark row per job; the
// geometric mean folds the finished rows in bench order, so the table is
// identical at any worker count.
func (s *Sweep) Table6(ctx context.Context, params arch.Params) ([]Ladder, error) {
	rows := make([]Ladder, len(s.Benches))
	err := s.Engine.Pool().Map(ctx, len(s.Benches), func(_ context.Context, i int) error {
		r, err := s.table6Row(s.Benches[i], params)
		if err != nil {
			return err
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	geo := Ladder{Name: "GeoMean", A: 1, B: 1, C: 1, D: 1, E: 1, CumB: 1, CumC: 1, CumD: 1, CumE: 1}
	for _, r := range rows {
		geo.A *= r.A
		geo.B *= r.B
		geo.C *= r.C
		geo.D *= r.D
		geo.E *= r.E
		geo.CumB *= r.CumB
		geo.CumC *= r.CumC
		geo.CumD *= r.CumD
		geo.CumE *= r.CumE
	}
	n := float64(len(rows))
	pow := func(x float64) float64 { return math.Pow(x, 1/n) }
	geo.A, geo.B, geo.C, geo.D, geo.E = pow(geo.A), pow(geo.B), pow(geo.C), pow(geo.D), pow(geo.E)
	geo.CumB, geo.CumC, geo.CumD, geo.CumE = pow(geo.CumB), pow(geo.CumC), pow(geo.CumD), pow(geo.CumE)
	return append(rows, geo), nil
}

// RatioStudy evaluates PMU:PCU provisioning choices at a fixed total unit
// count. Per-benchmark unit demand is independent of the ratio under test,
// so it is computed once per benchmark — in parallel, through the cache —
// and every ratio row reads the same demand table.
func (s *Sweep) RatioStudy(ctx context.Context, params arch.Params) ([]RatioRow, error) {
	demands := make([]unitDemand, len(s.Benches))
	err := s.Engine.Pool().Map(ctx, len(s.Benches), func(_ context.Context, i int) error {
		b := s.Benches[i]
		k := exec.NewKey("dse/demand", b.Name, fmt.Sprintf("%+v", params))
		d, err := exec.CachedJSON(s.Engine.Cache(), k, func() (unitDemand, error) {
			part, err := demand(b, params)
			if err != nil {
				return unitDemand{}, err
			}
			return unitDemand{PCUs: part.TotalPCUs, PMUs: part.TotalPMUs}, nil
		})
		if err != nil {
			return err
		}
		demands[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ratioRows(demands, params), nil
}

func findPanel(id string) *panelSpec {
	for i := range panelSpecs {
		if panelSpecs[i].id == id {
			return &panelSpecs[i]
		}
	}
	return nil
}
