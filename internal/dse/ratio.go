package dse

import (
	"fmt"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/stats"
)

// RatioRow summarises one PMU:PCU provisioning choice (Section 3.7: "we
// also experimented with multiple ratios of PMUs to PCUs ... larger ratios
// improved unit utilization on some benchmarks, [but] were less energy
// efficient").
type RatioRow struct {
	PMUs, PCUs int // ratio expressed in units per 2-unit cell group

	Fit int // benchmarks whose unit demand fits the chip

	// AvgUnitUtil is the mean fraction of provisioned units the fitting
	// benchmarks occupy.
	AvgUnitUtil float64

	// EnergyProxy is chip area times mean active power fraction — the
	// quantity the paper traded against utilization (lower is better).
	EnergyProxy float64
}

// unitDemand is a benchmark's physical unit requirement — the only part of
// a compiler.Partitioned the ratio study consumes, reduced to a flat struct
// so it can persist in the disk cache tier.
type unitDemand struct {
	PCUs, PMUs int
}

// RatioStudy evaluates PMU:PCU provisioning choices at a fixed total unit
// count (the 16x8 array of 128 units), sequentially and uncached.
//
// Deprecated: kept for existing callers and tests; use Sweep.RatioStudy.
func RatioStudy(benches []*Bench, params arch.Params) ([]RatioRow, error) {
	demands := make([]unitDemand, len(benches))
	for i, b := range benches {
		part, err := demand(b, params)
		if err != nil {
			return nil, err
		}
		demands[i] = unitDemand{PCUs: part.TotalPCUs, PMUs: part.TotalPMUs}
	}
	return ratioRows(demands, params), nil
}

// ratioRows folds per-benchmark unit demands into the provisioning table.
// Pure function of its inputs, shared by the sequential and parallel paths.
func ratioRows(demands []unitDemand, params arch.Params) []RatioRow {
	total := params.Chip.Rows * params.Chip.Cols
	ratios := []struct{ pmu, pcu int }{
		{1, 3}, // PCU-heavy
		{1, 1}, // the paper's choice
		{2, 2}, // same ratio, sanity duplicate of 1:1 grouping
		{3, 1}, // PMU-heavy
	}
	var out []RatioRow
	for _, r := range dedupRatios(ratios) {
		nPMU := total * r.pmu / (r.pmu + r.pcu)
		nPCU := total - nPMU
		row := RatioRow{PMUs: r.pmu, PCUs: r.pcu}
		var utilSum float64
		for _, d := range demands {
			if d.PCUs <= nPCU && d.PMUs <= nPMU {
				row.Fit++
				utilSum += (float64(d.PCUs) + float64(d.PMUs)) / float64(total)
			}
		}
		if row.Fit > 0 {
			row.AvgUnitUtil = utilSum / float64(row.Fit)
		}
		// Energy proxy: provisioned silicon times the per-unit active
		// power, normalised per fitting benchmark.
		area := float64(nPCU)*arch.PCUArea(params.PCU, params.Chip) +
			float64(nPMU)*arch.PMUArea(params.PMU, params.Chip)
		row.EnergyProxy = area * (1 - row.AvgUnitUtil)
		out = append(out, row)
	}
	return out
}

// dedupRatios drops equivalent ratios (2:2 == 1:1).
func dedupRatios(in []struct{ pmu, pcu int }) []struct{ pmu, pcu int } {
	seen := map[float64]bool{}
	var out []struct{ pmu, pcu int }
	for _, r := range in {
		k := float64(r.pmu) / float64(r.pcu)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// demand computes a benchmark's physical unit requirement under params.
func demand(b *Bench, params arch.Params) (*compiler.Partitioned, error) {
	v := &compiler.Virtual{PCUs: b.PCUs, PMUs: b.PMUs}
	return compiler.Partition(v, params)
}

// FormatRatios renders the study.
func FormatRatios(rows []RatioRow) string {
	t := stats.New("PMU:PCU provisioning study (Section 3.7)",
		"PMU:PCU", "Fit (of 12)", "Avg unit util", "Idle-area proxy")
	for _, r := range rows {
		t.Add(fmt.Sprintf("%d:%d", r.PMUs, r.PCUs),
			fmt.Sprint(r.Fit), stats.Pct(r.AvgUnitUtil), stats.F(r.EnergyProxy))
	}
	return t.String()
}
