// Package dse reproduces the paper's design-space exploration: the
// parameter sweeps of Figure 7 (benchmark-normalised PCU area overhead as
// each PCU parameter varies), the parameter selection of Table 3, and the
// ASIC-to-generalized-architecture area-overhead ladder of Table 6.
package dse

import (
	"context"
	"errors"
	"fmt"
	"math"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

// Infeasible marks parameter values a benchmark cannot map to (the x marks
// in Figure 7).
var Infeasible = math.Inf(1)

// Bench couples a benchmark name with its virtual compute units.
type Bench struct {
	Name string
	PCUs []*compiler.VirtualPCU
	PMUs []*compiler.VirtualPMU
}

// LoadBenches allocates virtual units for the Figure 7 benchmark set: the
// twelve Table 4 workloads the paper sweeps (CNN is excluded there).
func LoadBenches() ([]*Bench, error) {
	var out []*Bench
	for _, b := range workloads.All() {
		if b.Name() == "CNN" {
			continue
		}
		bench, err := LoadBench(b.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, bench)
	}
	return out, nil
}

// LoadBench allocates virtual units for one registry benchmark by name —
// the single-benchmark form of LoadBenches, used by the auto-tuner to load
// a workload mix (including CNN, which the Figure 7 set excludes).
func LoadBench(name string) (*Bench, error) {
	b, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", b.Name(), err)
	}
	v, err := compiler.Allocate(p)
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", b.Name(), err)
	}
	return &Bench{Name: b.Name(), PCUs: v.PCUs, PMUs: v.PMUs}, nil
}

// pcuRanges is the full design space of Table 3, used when minimising the
// remaining parameters.
var pcuRanges = map[string][]int{
	"stages":     {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	"registers":  {2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16},
	"scalarIns":  {1, 2, 3, 4, 5, 6, 8, 10},
	"scalarOuts": {1, 2, 3, 4, 5, 6},
	"vectorIns":  {2, 3, 4, 5, 6, 8, 10},
	"vectorOuts": {1, 2, 3, 4, 5, 6},
}

// panelValues are the x-axes Figure 7 actually plots.
var panelValues = map[string][]int{
	"stages":     {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	"registers":  {2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16},
	"scalarIns":  {1, 2, 3, 4, 5, 6, 8, 10},
	"scalarOuts": {1, 2, 3, 4, 5, 6},
	"vectorIns":  {2, 3, 4, 5, 6, 8, 10},
	"vectorOuts": {1, 2, 3, 4, 5, 6},
}

// ErrUnknownParam reports a sweep grid naming a PCU parameter that does
// not exist; the wrapping error identifies the offending name.
var ErrUnknownParam = errors.New("dse: unknown parameter")

func getParam(p *arch.PCUParams, name string) (*int, error) {
	switch name {
	case "stages":
		return &p.Stages, nil
	case "registers":
		return &p.Registers, nil
	case "scalarIns":
		return &p.ScalarIns, nil
	case "scalarOuts":
		return &p.ScalarOuts, nil
	case "vectorIns":
		return &p.VectorIns, nil
	case "vectorOuts":
		return &p.VectorOuts, nil
	}
	return nil, fmt.Errorf("%w %q (want one of stages, registers, scalarIns, scalarOuts, vectorIns, vectorOuts)", ErrUnknownParam, name)
}

func maxParams() arch.PCUParams {
	return arch.PCUParams{
		Lanes: 16, Stages: 16, Registers: 16,
		ScalarIns: 16, ScalarOuts: 6, VectorIns: 10, VectorOuts: 6,
	}
}

// AnalyticalArea returns the total PCU area of a benchmark under p, or
// Infeasible if any unit cannot be partitioned. This is the simulation-free
// area model the sweeps minimise and the auto-tuner prunes with: the cost is
// one partitioning pass per virtual unit — no placement, routing or
// simulation is ever paid.
func AnalyticalArea(b *Bench, p arch.PCUParams, chip arch.ChipParams) float64 {
	unitArea := arch.PCUArea(p, chip)
	total := 0.0
	for _, u := range b.PCUs {
		parts, err := compiler.PartitionPCU(u, p)
		if err != nil {
			return Infeasible
		}
		total += float64(len(parts)*u.Unroll) * unitArea
	}
	return total
}

// benchPCUArea is AnalyticalArea under its historical internal name; the
// sweeps' cached paths still call it.
func benchPCUArea(b *Bench, p arch.PCUParams, chip arch.ChipParams) float64 {
	return AnalyticalArea(b, p, chip)
}

// CheckFeasible reports whether a benchmark can map onto params at all,
// without simulation: every virtual unit must partition under the PCU/PMU
// parameters, and the resulting physical unit demand must fit the chip's
// unit counts. A nil return means the benchmark passes the analytical
// screen (placement and routing can still fail — this is the cheap reject,
// not the full compile). Capacity shortfalls wrap compiler.ErrInsufficient,
// so callers classify them exactly like a compile failure.
func CheckFeasible(b *Bench, params arch.Params) error {
	part, err := demand(b, params)
	if err != nil {
		return fmt.Errorf("dse: %s: %w", b.Name, err)
	}
	if got, have := part.TotalPCUs, params.NumPCUs(); got > have {
		return fmt.Errorf("dse: %s: needs %d PCUs, chip has %d: %w", b.Name, got, have, compiler.ErrInsufficient)
	}
	if got, have := part.TotalPMUs, params.NumPMUs(); got > have {
		return fmt.Errorf("dse: %s: needs %d PMUs, chip has %d: %w", b.Name, got, have, compiler.ErrInsufficient)
	}
	return nil
}

// minimizeArea is the uncached, sequential form of Sweep.minimizeArea.
//
// Deprecated: kept for existing callers and tests; use Sweep.minimizeArea.
func minimizeArea(b *Bench, fixed map[string]int, chip arch.ChipParams) (arch.PCUParams, float64, error) {
	return (&Sweep{Chip: chip}).minimizeArea(b, fixed)
}

// Panel is one Figure 7 sub-plot.
type Panel struct {
	Param  string
	Fixed  map[string]int // already-selected parameters (figure caption)
	Values []int
	// Overhead[bench][valueIdx] is AreaPCU/MinPCU - 1, or Infeasible.
	Benchmarks []string
	Overhead   [][]float64
	// Average[valueIdx] is the geometric-mean overhead over feasible
	// benchmarks.
	Average []float64
}

// panelSpec names one Figure 7 panel: the swept parameter and the
// previously selected parameters it holds fixed.
type panelSpec struct {
	id    string
	param string
	fixed map[string]int
}

// panelSpecs follows the Figure 7 caption: each parameter is swept with the
// previously selected parameters fixed at their chosen values.
var panelSpecs = []panelSpec{
	{"a", "stages", map[string]int{}},
	{"b", "registers", map[string]int{"stages": 6}},
	{"c", "scalarIns", map[string]int{"stages": 6, "registers": 6}},
	{"d", "scalarOuts", map[string]int{"stages": 6, "registers": 6, "scalarIns": 6}},
	{"e", "vectorIns", map[string]int{"stages": 6, "registers": 6}},
	{"f", "vectorOuts", map[string]int{"stages": 6, "registers": 6, "vectorIns": 3}},
}

// Figure7 computes one panel (a-f) sequentially and uncached.
//
// Deprecated: kept for existing callers and tests; use Sweep.Figure7.
func Figure7(panelID string, benches []*Bench, chip arch.ChipParams) (*Panel, error) {
	return NewSweep(benches, chip, nil).Figure7(context.Background(), panelID)
}

// BestValue returns the swept value with the lowest average overhead,
// considering only values feasible for every benchmark.
func (p *Panel) BestValue() int {
	best, bestOv := -1, math.Inf(1)
	for i, v := range p.Values {
		allFeasible := true
		for _, row := range p.Overhead {
			if math.IsInf(row[i], 1) {
				allFeasible = false
				break
			}
		}
		if !allFeasible {
			continue
		}
		if p.Average[i] < bestOv {
			best, bestOv = v, p.Average[i]
		}
	}
	return best
}

// Format renders a panel as a text table (benchmarks x values).
func (p *Panel) Format() string {
	headers := []string{"Benchmark"}
	for _, v := range p.Values {
		headers = append(headers, fmt.Sprint(v))
	}
	t := stats.New(fmt.Sprintf("Figure 7: normalized area overhead vs %s (x = infeasible)", p.Param), headers...)
	for bi, name := range p.Benchmarks {
		row := []string{name}
		for _, ov := range p.Overhead[bi] {
			if math.IsInf(ov, 1) {
				row = append(row, "x")
			} else {
				row = append(row, fmt.Sprintf("%.0f%%", 100*ov))
			}
		}
		t.Add(row...)
	}
	avg := []string{"Average"}
	for _, ov := range p.Average {
		if math.IsInf(ov, 1) {
			avg = append(avg, "x")
		} else {
			avg = append(avg, fmt.Sprintf("%.0f%%", 100*ov))
		}
	}
	t.Add(avg...)
	return t.String()
}

// Table3Row is one parameter-selection result.
type Table3Row struct {
	Param  string
	Chosen int
	Paper  int
}

// Table3 runs the panel sequence sequentially and uncached.
//
// Deprecated: kept for existing callers and tests; use Sweep.Table3.
func Table3(benches []*Bench, chip arch.ChipParams) ([]Table3Row, error) {
	return NewSweep(benches, chip, nil).Table3(context.Background())
}

// FormatTable3 renders the selection table.
func FormatTable3(rows []Table3Row) string {
	t := stats.New("Table 3: selected PCU parameters (swept here vs paper)",
		"Parameter", "Selected", "Paper")
	for _, r := range rows {
		t.Add(r.Param, fmt.Sprint(r.Chosen), fmt.Sprint(r.Paper))
	}
	return t.String()
}
