// Package dse reproduces the paper's design-space exploration: the
// parameter sweeps of Figure 7 (benchmark-normalised PCU area overhead as
// each PCU parameter varies), the parameter selection of Table 3, and the
// ASIC-to-generalized-architecture area-overhead ladder of Table 6.
package dse

import (
	"errors"
	"fmt"
	"math"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

// Infeasible marks parameter values a benchmark cannot map to (the x marks
// in Figure 7).
var Infeasible = math.Inf(1)

// Bench couples a benchmark name with its virtual compute units.
type Bench struct {
	Name string
	PCUs []*compiler.VirtualPCU
	PMUs []*compiler.VirtualPMU
}

// LoadBenches allocates virtual units for the Figure 7 benchmark set: the
// twelve Table 4 workloads the paper sweeps (CNN is excluded there).
func LoadBenches() ([]*Bench, error) {
	var out []*Bench
	for _, b := range workloads.All() {
		if b.Name() == "CNN" {
			continue
		}
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", b.Name(), err)
		}
		v, err := compiler.Allocate(p)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", b.Name(), err)
		}
		out = append(out, &Bench{Name: b.Name(), PCUs: v.PCUs, PMUs: v.PMUs})
	}
	return out, nil
}

// pcuRanges is the full design space of Table 3, used when minimising the
// remaining parameters.
var pcuRanges = map[string][]int{
	"stages":     {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	"registers":  {2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16},
	"scalarIns":  {1, 2, 3, 4, 5, 6, 8, 10},
	"scalarOuts": {1, 2, 3, 4, 5, 6},
	"vectorIns":  {2, 3, 4, 5, 6, 8, 10},
	"vectorOuts": {1, 2, 3, 4, 5, 6},
}

// panelValues are the x-axes Figure 7 actually plots.
var panelValues = map[string][]int{
	"stages":     {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	"registers":  {2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16},
	"scalarIns":  {1, 2, 3, 4, 5, 6, 8, 10},
	"scalarOuts": {1, 2, 3, 4, 5, 6},
	"vectorIns":  {2, 3, 4, 5, 6, 8, 10},
	"vectorOuts": {1, 2, 3, 4, 5, 6},
}

// ErrUnknownParam reports a sweep grid naming a PCU parameter that does
// not exist; the wrapping error identifies the offending name.
var ErrUnknownParam = errors.New("dse: unknown parameter")

func getParam(p *arch.PCUParams, name string) (*int, error) {
	switch name {
	case "stages":
		return &p.Stages, nil
	case "registers":
		return &p.Registers, nil
	case "scalarIns":
		return &p.ScalarIns, nil
	case "scalarOuts":
		return &p.ScalarOuts, nil
	case "vectorIns":
		return &p.VectorIns, nil
	case "vectorOuts":
		return &p.VectorOuts, nil
	}
	return nil, fmt.Errorf("%w %q (want one of stages, registers, scalarIns, scalarOuts, vectorIns, vectorOuts)", ErrUnknownParam, name)
}

func maxParams() arch.PCUParams {
	return arch.PCUParams{
		Lanes: 16, Stages: 16, Registers: 16,
		ScalarIns: 16, ScalarOuts: 6, VectorIns: 10, VectorOuts: 6,
	}
}

// benchPCUArea returns the total PCU area of a benchmark under params, or
// Infeasible if any unit cannot be partitioned.
func benchPCUArea(b *Bench, p arch.PCUParams, chip arch.ChipParams) float64 {
	unitArea := arch.PCUArea(p, chip)
	total := 0.0
	for _, u := range b.PCUs {
		parts, err := compiler.PartitionPCU(u, p)
		if err != nil {
			return Infeasible
		}
		total += float64(len(parts)*u.Unroll) * unitArea
	}
	return total
}

// minimizeArea performs coordinate descent over the free PCU parameters
// (those not in fixed) to find the minimum total PCU area for a benchmark —
// the paper's "sweep the remaining space to find the minimum possible PCU
// area" (Section 3.7).
func minimizeArea(b *Bench, fixed map[string]int, chip arch.ChipParams) (arch.PCUParams, float64, error) {
	p := maxParams()
	for name, v := range fixed {
		f, err := getParam(&p, name)
		if err != nil {
			return p, Infeasible, fmt.Errorf("dse: %s: fixed grid: %w", b.Name, err)
		}
		*f = v
	}
	best := benchPCUArea(b, p, chip)
	if math.IsInf(best, 1) {
		return p, Infeasible, nil
	}
	order := []string{"stages", "registers", "vectorIns", "vectorOuts", "scalarIns", "scalarOuts"}
	for pass := 0; pass < 2; pass++ {
		for _, name := range order {
			if _, isFixed := fixed[name]; isFixed {
				continue
			}
			f, err := getParam(&p, name)
			if err != nil {
				return p, Infeasible, fmt.Errorf("dse: %s: %w", b.Name, err)
			}
			bestV := *f
			for _, v := range pcuRanges[name] {
				q := p
				qf, err := getParam(&q, name)
				if err != nil {
					return p, Infeasible, fmt.Errorf("dse: %s: %w", b.Name, err)
				}
				*qf = v
				if a := benchPCUArea(b, q, chip); a < best {
					best, bestV = a, v
				}
			}
			f, _ = getParam(&p, name)
			*f = bestV
		}
	}
	return p, best, nil
}

// Panel is one Figure 7 sub-plot.
type Panel struct {
	Param  string
	Fixed  map[string]int // already-selected parameters (figure caption)
	Values []int
	// Overhead[bench][valueIdx] is AreaPCU/MinPCU - 1, or Infeasible.
	Benchmarks []string
	Overhead   [][]float64
	// Average[valueIdx] is the geometric-mean overhead over feasible
	// benchmarks.
	Average []float64
}

// panelSpecs follows the Figure 7 caption: each parameter is swept with the
// previously selected parameters fixed at their chosen values.
var panelSpecs = []struct {
	id    string
	param string
	fixed map[string]int
}{
	{"a", "stages", map[string]int{}},
	{"b", "registers", map[string]int{"stages": 6}},
	{"c", "scalarIns", map[string]int{"stages": 6, "registers": 6}},
	{"d", "scalarOuts", map[string]int{"stages": 6, "registers": 6, "scalarIns": 6}},
	{"e", "vectorIns", map[string]int{"stages": 6, "registers": 6}},
	{"f", "vectorOuts", map[string]int{"stages": 6, "registers": 6, "vectorIns": 3}},
}

// Figure7 computes one panel (a-f).
func Figure7(panelID string, benches []*Bench, chip arch.ChipParams) (*Panel, error) {
	var spec *struct {
		id    string
		param string
		fixed map[string]int
	}
	for i := range panelSpecs {
		if panelSpecs[i].id == panelID {
			spec = &panelSpecs[i]
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("dse: unknown Figure 7 panel %q (want a-f)", panelID)
	}
	panel := &Panel{Param: spec.param, Fixed: spec.fixed, Values: panelValues[spec.param]}
	for _, b := range benches {
		panel.Benchmarks = append(panel.Benchmarks, b.Name)
		row := make([]float64, len(panel.Values))
		min := Infeasible
		for i, v := range panel.Values {
			fixed := map[string]int{spec.param: v}
			for k, fv := range spec.fixed {
				fixed[k] = fv
			}
			_, area, err := minimizeArea(b, fixed, chip)
			if err != nil {
				return nil, fmt.Errorf("dse: panel %s, %s=%d: %w", panelID, spec.param, v, err)
			}
			row[i] = area
			if area < min {
				min = area
			}
		}
		for i := range row {
			if math.IsInf(row[i], 1) {
				row[i] = Infeasible
			} else {
				row[i] = row[i]/min - 1
			}
		}
		panel.Overhead = append(panel.Overhead, row)
	}
	panel.Average = make([]float64, len(panel.Values))
	for i := range panel.Values {
		sum, n := 0.0, 0
		feasibleForAll := true
		for _, row := range panel.Overhead {
			if math.IsInf(row[i], 1) {
				feasibleForAll = false
				continue
			}
			sum += row[i]
			n++
		}
		if n == 0 || !feasibleForAll {
			panel.Average[i] = Infeasible
			if n > 0 {
				panel.Average[i] = sum / float64(n) // average of feasible ones
			}
		} else {
			panel.Average[i] = sum / float64(n)
		}
	}
	return panel, nil
}

// BestValue returns the swept value with the lowest average overhead,
// considering only values feasible for every benchmark.
func (p *Panel) BestValue() int {
	best, bestOv := -1, math.Inf(1)
	for i, v := range p.Values {
		allFeasible := true
		for _, row := range p.Overhead {
			if math.IsInf(row[i], 1) {
				allFeasible = false
				break
			}
		}
		if !allFeasible {
			continue
		}
		if p.Average[i] < bestOv {
			best, bestOv = v, p.Average[i]
		}
	}
	return best
}

// Format renders a panel as a text table (benchmarks x values).
func (p *Panel) Format() string {
	headers := []string{"Benchmark"}
	for _, v := range p.Values {
		headers = append(headers, fmt.Sprint(v))
	}
	t := stats.New(fmt.Sprintf("Figure 7: normalized area overhead vs %s (x = infeasible)", p.Param), headers...)
	for bi, name := range p.Benchmarks {
		row := []string{name}
		for _, ov := range p.Overhead[bi] {
			if math.IsInf(ov, 1) {
				row = append(row, "x")
			} else {
				row = append(row, fmt.Sprintf("%.0f%%", 100*ov))
			}
		}
		t.Add(row...)
	}
	avg := []string{"Average"}
	for _, ov := range p.Average {
		if math.IsInf(ov, 1) {
			avg = append(avg, "x")
		} else {
			avg = append(avg, fmt.Sprintf("%.0f%%", 100*ov))
		}
	}
	t.Add(avg...)
	return t.String()
}

// Table3Row is one parameter-selection result.
type Table3Row struct {
	Param  string
	Chosen int
	Paper  int
}

// Table3 runs the panel sequence and reports the selected value per
// parameter next to the paper's choice.
func Table3(benches []*Bench, chip arch.ChipParams) ([]Table3Row, error) {
	paper := map[string]int{
		"stages": 6, "registers": 6, "scalarIns": 6,
		"scalarOuts": 5, "vectorIns": 3, "vectorOuts": 3,
	}
	var out []Table3Row
	for _, spec := range panelSpecs {
		p, err := Figure7(spec.id, benches, chip)
		if err != nil {
			return nil, err
		}
		out = append(out, Table3Row{Param: spec.param, Chosen: p.BestValue(), Paper: paper[spec.param]})
	}
	return out, nil
}

// FormatTable3 renders the selection table.
func FormatTable3(rows []Table3Row) string {
	t := stats.New("Table 3: selected PCU parameters (swept here vs paper)",
		"Parameter", "Selected", "Paper")
	for _, r := range rows {
		t.Add(r.Param, fmt.Sprint(r.Chosen), fmt.Sprint(r.Paper))
	}
	return t.String()
}
