package dse

import (
	"context"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/exec"
)

// newDiskEngine builds a fresh engine (fresh in-memory cache, as after a
// process restart) over the persistent tier rooted at dir.
func newDiskEngine(t *testing.T, dir string, workers int) *exec.Engine {
	t.Helper()
	d, err := exec.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewEngine(workers)
	eng.AttachDisk(d)
	return eng
}

func TestFigure7ResumesFromDiskTier(t *testing.T) {
	benches, err := LoadBenches()
	if err != nil {
		t.Fatal(err)
	}
	benches = benches[:3] // keep the sweep small
	chip := arch.Default().Chip
	dir := t.TempDir()

	s1 := NewSweep(benches, chip, newDiskEngine(t, dir, 2))
	p1, err := s1.Figure7(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	first := s1.Engine.CacheStats()
	if first.DiskWrites == 0 {
		t.Fatal("first run persisted nothing")
	}

	// A fresh engine over the same tier — the killed-and-rerun scenario.
	s2 := NewSweep(benches, chip, newDiskEngine(t, dir, 2))
	p2, err := s2.Figure7(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p2.Format(), p1.Format(); got != want {
		t.Fatalf("resumed panel differs from the original:\n%s\nvs\n%s", got, want)
	}
	second := s2.Engine.CacheStats()
	if second.DiskHits == 0 {
		t.Fatal("resumed run never hit the persistent tier")
	}
	// Every memory miss in the resumed run is served from disk (the
	// whole-descent entries hit, so the inner grid points are never even
	// requested) and nothing is recomputed or rewritten.
	if second.DiskHits != second.Misses {
		t.Fatalf("resumed run: %d misses but only %d disk hits — something recomputed",
			second.Misses, second.DiskHits)
	}
	if second.DiskWrites != 0 {
		t.Fatalf("resumed run rewrote %d entries, want 0", second.DiskWrites)
	}
}

func TestTable6ResumesFromDiskTier(t *testing.T) {
	benches, err := LoadBenches()
	if err != nil {
		t.Fatal(err)
	}
	benches = benches[:2]
	params := arch.Default()
	dir := t.TempDir()

	s1 := NewSweep(benches, params.Chip, newDiskEngine(t, dir, 2))
	r1, err := s1.Table6(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}

	s2 := NewSweep(benches, params.Chip, newDiskEngine(t, dir, 2))
	r2, err := s2.Table6(context.Background(), params)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable6(r2), FormatTable6(r1); got != want {
		t.Fatalf("resumed Table 6 differs:\n%s\nvs\n%s", got, want)
	}
	if s2.Engine.CacheStats().DiskHits < int64(len(benches)) {
		t.Fatalf("resumed run hit disk %d times, want at least one per bench row",
			s2.Engine.CacheStats().DiskHits)
	}
}
