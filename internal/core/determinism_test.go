package core

// The parallel evaluation engine's central promise: results are byte-identical
// at any worker count. These tests diff workers=1 against workers=8 over the
// artefacts the CLI emits, and pin the cache's hit/miss accounting.

import (
	"bytes"
	"context"
	"testing"

	"plasticine/internal/fault"
	"plasticine/internal/workloads"
)

func mustBench(t *testing.T, name string) workloads.Benchmark {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func faultSpecSeed(seed int64) fault.Spec {
	return fault.Spec{Seed: seed}
}

// fastBenches keeps the determinism diff cheap: the three quickest Table 4
// benchmarks still exercise dense, branchy and sparse pipelines.
var fastBenches = []string{"InnerProduct", "BlackScholes", "TPCHQ6"}

// stripHostTimes zeroes the host-dependent fields so the diff compares only
// modelled quantities.
func stripHostTimes(results []BenchSim) []BenchSim {
	out := make([]BenchSim, len(results))
	for i, r := range results {
		r.SimWallSeconds, r.CyclesPerSec = 0, 0
		out[i] = r
	}
	return out
}

func TestBenchDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	seq, err := NewSession(WithWorkers(1)).Bench(ctx, fastBenches)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	par, err := NewSession(WithWorkers(8)).Bench(ctx, fastBenches)
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	seqJSON, err := BenchJSON(stripHostTimes(seq))
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := BenchJSON(stripHostTimes(par))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("bench output differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", seqJSON, parJSON)
	}
}

func TestResilienceDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	b := mustBench(t, "InnerProduct")
	fracs := []float64{0, 0.10, 0.30}
	rows1, err := NewSession(WithWorkers(1)).Resilience(ctx, b, faultSpecSeed(3), fracs)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	rows8, err := NewSession(WithWorkers(8)).Resilience(ctx, b, faultSpecSeed(3), fracs)
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	got1 := FormatResilience(b.Name(), 3, rows1)
	got8 := FormatResilience(b.Name(), 3, rows8)
	if got1 != got8 {
		t.Errorf("resilience sweep differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s", got1, got8)
	}
}

func TestSessionCacheCountsRepeatedRuns(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(WithWorkers(4))
	if _, err := sess.Bench(ctx, fastBenches); err != nil {
		t.Fatal(err)
	}
	first := sess.CacheStats()
	if first.Misses != int64(len(fastBenches)) {
		t.Errorf("first run: misses = %d, want %d (one per distinct benchmark)", first.Misses, len(fastBenches))
	}
	if _, err := sess.Bench(ctx, fastBenches); err != nil {
		t.Fatal(err)
	}
	second := sess.CacheStats()
	if second.Misses != first.Misses {
		t.Errorf("second identical run recompiled: misses %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits != first.Hits+int64(len(fastBenches)) {
		t.Errorf("second identical run: hits = %d, want %d", second.Hits, first.Hits+int64(len(fastBenches)))
	}
	if second.Collisions != 0 {
		t.Errorf("fingerprint collisions on %d entries: %d", second.Misses, second.Collisions)
	}
}

// TestCachedResultsSharedAcrossSuites pins the cross-suite guarantee: a
// benchmark evaluated by Bench is not recompiled when Table-7-style
// RunBenchmark asks for the same design point.
func TestCachedResultsSharedAcrossSuites(t *testing.T) {
	ctx := context.Background()
	sess := NewSession(WithWorkers(2))
	if _, err := sess.Bench(ctx, []string{"InnerProduct"}); err != nil {
		t.Fatal(err)
	}
	before := sess.CacheStats()
	if _, err := sess.RunBenchmark(ctx, mustBench(t, "InnerProduct")); err != nil {
		t.Fatal(err)
	}
	after := sess.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("RunBenchmark after Bench recompiled the same point: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("RunBenchmark after Bench: hits %d -> %d, want +1", before.Hits, after.Hits)
	}
}
