package core

import (
	"strings"
	"testing"

	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
	"plasticine/internal/workloads"
)

func TestRunBenchmarkInnerProduct(t *testing.T) {
	r, err := New().RunBenchmark(workloads.NewInnerProduct())
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Errorf("speedup = %.2f, Plasticine should beat the FPGA (paper: 1.4x)", r.Speedup)
	}
	if r.Speedup > 3 {
		t.Errorf("speedup = %.2f, memory-bound benchmarks are capped near the bandwidth ratio", r.Speedup)
	}
	if r.PerfPerWatt <= r.Speedup {
		t.Errorf("perf/W ratio %.2f should exceed speedup %.2f (FPGA draws more power)", r.PerfPerWatt, r.Speedup)
	}
}

// TestTable7Shape is the headline experiment: every benchmark must win
// against the FPGA baseline, the sparse benchmarks must win by more than
// the dense streaming ones, and perf/W must be favourable throughout
// (Section 4.5; the paper's peak is 76.9x on CNN).
func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 7 is slow")
	}
	rows, err := New().Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("got %d rows, want 13", len(rows))
	}
	byName := map[string]*BenchResult{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Speedup <= 1 {
			t.Errorf("%s: speedup %.2f, Plasticine must win every row", r.Name, r.Speedup)
		}
		if r.PerfPerWatt <= 1 {
			t.Errorf("%s: perf/W ratio %.2f, must exceed 1", r.Name, r.PerfPerWatt)
		}
		if r.PowerW <= 0 || r.PowerW > 49 {
			t.Errorf("%s: power %.1f W outside the chip envelope", r.Name, r.PowerW)
		}
	}
	// Dense streaming rows are bandwidth-ratio bound (51.2/37.5 = 1.37),
	// paper reports 1.4x for both.
	for _, n := range []string{"InnerProduct", "TPCHQ6"} {
		if s := byName[n].Speedup; s > 2.5 {
			t.Errorf("%s: speedup %.2f too high for a bandwidth-bound row (paper 1.4x)", n, s)
		}
	}
	// Sparse rows benefit from coalescing and must beat the streaming rows.
	for _, n := range []string{"SMDV", "PageRank", "BFS"} {
		if byName[n].Speedup <= byName["InnerProduct"].Speedup {
			t.Errorf("%s: speedup %.2f should exceed InnerProduct's %.2f (coalescing win)",
				n, byName[n].Speedup, byName["InnerProduct"].Speedup)
		}
	}
	// CNN is the paper's largest win; it must be the largest or near-
	// largest compute-bound win here too.
	if byName["CNN"].Speedup < byName["GEMM"].Speedup {
		t.Errorf("CNN speedup %.2f below GEMM %.2f; paper has CNN as the top row",
			byName["CNN"].Speedup, byName["GEMM"].Speedup)
	}
	out := FormatTable7(rows)
	for _, want := range []string{"CNN", "Speedup", "Paper spd"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestTable5Format(t *testing.T) {
	out := FormatTable5(New().Table5())
	for _, want := range []string{"PCU.FUs", "PMU.Scratchpad", "Interconnect", "Chip total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestSystemRunCustomProgram(t *testing.T) {
	b := dhdl.NewBuilder("custom", dhdl.Sequential)
	d := b.DRAMF32("d", 64)
	s := b.SRAM("s", pattern.F32, 64)
	sum := b.Reg("sum", pattern.VF(0))
	b.Seq("body", nil, func([]dhdl.Expr) {
		b.Load("ld", d, dhdl.CI(0), s, 64)
		b.Compute("sum", []dhdl.Counter{dhdl.CPar(64, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(sum, pattern.Add, dhdl.Ld(s, ix[0]))}
		})
	})
	p := b.MustBuild()
	data := make([]float32, 64)
	for i := range data {
		data[i] = 2
	}
	if err := d.Bind(pattern.FromF32("d", data)); err != nil {
		t.Fatal(err)
	}
	res, st, err := New().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(sum).F; got != 128 {
		t.Errorf("sum = %g, want 128", got)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
}

func TestRunBenchmarkReportsCompileErrors(t *testing.T) {
	sys := New()
	sys.Params.Chip.Rows, sys.Params.Chip.Cols = 1, 2
	if _, err := sys.RunBenchmark(workloads.NewGEMM()); err == nil {
		t.Error("expected failure on a one-unit chip")
	}
}

func TestTable7Exports(t *testing.T) {
	rows := []*BenchResult{{
		Name: "X", Cycles: 100, TimeSec: 1e-7, PowerW: 10,
		FPGATimeSec: 1e-6, FPGAPowerW: 20, Speedup: 10, PerfPerWatt: 20,
		PaperSpeedup: 12, PaperPerfW: 25,
	}}
	csv := Table7CSV(rows)
	if !strings.HasPrefix(csv, "benchmark,cycles,") || !strings.Contains(csv, "\nX,100,") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
	js, err := Table7JSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Name": "X"`, `"Cycles": 100`, `"Speedup": 10`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}
