package core

import (
	"fmt"

	"plasticine/internal/fault"
	"plasticine/internal/sim"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

// RecoveryReport decomposes the cost of surviving a timed fault schedule
// into checkpoint (quiescence drain), reconfiguration, and re-execution
// cycles for one benchmark.
type RecoveryReport struct {
	Name string
	Spec fault.Spec

	// BaselineCycles is the same spec with the timed events stripped: the
	// static-fault makespan the recovering run is compared against.
	BaselineCycles int64
	// Cycles is the makespan with every event survived.
	Cycles int64

	Events []sim.RecoveryEvent

	// Overhead decomposition. Drain and reconfiguration are measured stalls;
	// re-execution is the residual extra makespan — lost in-flight work done
	// again plus running the tail on a degraded fabric.
	DrainCycles    int64
	ReconfigCycles int64
	ReExecCycles   int64
	LostBursts     int
}

// OverheadFrac is the total recovery overhead relative to the baseline.
func (r *RecoveryReport) OverheadFrac() float64 {
	if r.BaselineCycles == 0 {
		return 0
	}
	return float64(r.Cycles-r.BaselineCycles) / float64(r.BaselineCycles)
}

// Recovery runs one benchmark under a fault spec with timed events twice —
// once with the events stripped (the degradation-free baseline) and once
// surviving them mid-run — and decomposes the difference.
func (s *System) Recovery(b workloads.Benchmark, spec fault.Spec) (*RecoveryReport, error) {
	if len(spec.Events) == 0 {
		return nil, fmt.Errorf("core: recovery: spec schedules no timed events")
	}
	baseSpec := spec
	baseSpec.Events = nil
	var basePlan *fault.Plan
	if !baseSpec.Zero() {
		var err error
		basePlan, err = fault.NewPlan(baseSpec, s.Params)
		if err != nil {
			return nil, fmt.Errorf("core: recovery baseline: %w", err)
		}
	}
	base, err := s.RunBenchmarkOpts(b, basePlan, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: recovery baseline: %w", err)
	}
	plan, err := fault.NewPlan(spec, s.Params)
	if err != nil {
		return nil, fmt.Errorf("core: recovery: %w", err)
	}
	r, err := s.RunBenchmarkOpts(b, plan, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: recovery: %w", err)
	}
	rep := &RecoveryReport{
		Name:           b.Name(),
		Spec:           spec,
		BaselineCycles: base.Cycles,
		Cycles:         r.Cycles,
	}
	if r.Recovery != nil {
		rep.Events = r.Recovery.Events
		rep.DrainCycles = r.Recovery.DrainCycles
		rep.ReconfigCycles = r.Recovery.ReconfigCycles
		rep.LostBursts = r.Recovery.LostBursts
	}
	if re := rep.Cycles - rep.BaselineCycles - rep.DrainCycles - rep.ReconfigCycles; re > 0 {
		rep.ReExecCycles = re
	}
	return rep, nil
}

// FormatRecovery renders one report: the per-event breakdown followed by
// the run-level overhead decomposition.
func FormatRecovery(rep *RecoveryReport) string {
	t := stats.New(
		fmt.Sprintf("Recovery: %s, %d timed fault(s) survived", rep.Name, len(rep.Events)),
		"Event", "Fired", "Drain", "Ckpt B", "Lost", "Moved", "Rerouted", "Reconfig")
	for _, e := range rep.Events {
		moved := fmt.Sprintf("%dP+%dM", e.MovedPCUs, e.MovedPMUs)
		if e.FullRecompile {
			moved += "*"
		}
		t.Add(e.Event, fmt.Sprint(e.At), fmt.Sprint(e.DrainCycles),
			fmt.Sprint(e.CheckpointBytes), fmt.Sprint(e.LostBursts),
			moved, fmt.Sprint(e.ReroutedEdges), fmt.Sprint(e.ReconfigCycles))
	}
	out := t.String()
	out += fmt.Sprintf("baseline %d cycles -> recovered %d cycles (%+.1f%%)\n",
		rep.BaselineCycles, rep.Cycles, 100*rep.OverheadFrac())
	out += fmt.Sprintf("overhead: %d drain (checkpoint) + %d reconfig + %d re-execution cycles, %d bursts reissued\n",
		rep.DrainCycles, rep.ReconfigCycles, rep.ReExecCycles, rep.LostBursts)
	return out
}

// DefaultRecoveryEvents is the schedule the recovery subcommand uses when
// none is given: a compute tile dies early, a memory tile mid-run, and a
// DRAM channel late.
func DefaultRecoveryEvents() []fault.EventSpec {
	return []fault.EventSpec{
		{Kind: fault.KillPCU, Cycle: 1000},
		{Kind: fault.KillPMU, Cycle: 2500},
		{Kind: fault.KillChan, Cycle: 4000},
	}
}
