package core

// Session is the unified library facade over the whole reproduction: one
// handle that owns the architecture, the default fault plan, the simulator
// options, and — centrally — the parallel evaluation engine (worker pool +
// design-point cache) that every consumer shares. The CLI subcommands all
// construct a Session; so should library users who want more than a single
// one-shot run.
//
// Determinism: every Session method returns byte-identical results at any
// worker count. Jobs write only their own index-addressed result slots, all
// shared inputs (benchmark definitions, params, the base fault plan) are
// treated as immutable — mutable fault plans are cloned per job — and merge
// order is fixed by job index, never completion order.
//
// Concurrency: one Session may serve many goroutines at once — the serving
// layer (internal/serve) drives exactly this pattern, mixing Run, Profile,
// Explain and the sweeps through one shared handle. The audit behind that
// claim: configuration (sys, plan, simOpts, policy, disk) is written only
// during NewSession and read-only afterwards; the engine (pool, cache,
// retry counter) is concurrency-safe by construction; per-call mutable
// state (fault-plan clones, fresh benchmark instances, trace collectors) is
// private to the call; and the lazily-built DSE driver is guarded by
// dseOnce. TestSessionConcurrentMixedUse locks the property in under -race.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/dse"
	"plasticine/internal/exec"
	"plasticine/internal/fault"
	"plasticine/internal/metrics"
	"plasticine/internal/sim"
	"plasticine/internal/workloads"
)

// Session is the facade handle. Construct with NewSession; the zero value is
// not usable.
type Session struct {
	sys     *System
	engine  *exec.Engine
	plan    *fault.Plan
	simOpts sim.Options
	policy  exec.JobPolicy
	disk    *exec.DiskCache

	// dseOnce lazily allocates benchmark virtual units exactly once per
	// session; every DSE entry point shares the result, so a Table 3 run
	// after a Figure 7 panel re-derives nothing.
	dseOnce    sync.Once
	dseSweep   *dse.Sweep
	dseLoadErr error

	// closeOnce makes Close idempotent: a server's drain path and its
	// deferred cleanup may both call it.
	closeOnce sync.Once
	closeErr  error

	// metricsReg is the instrumentation registry the serving layer
	// installs via UseMetrics. Atomic because installation may race a
	// request that is already reading it; nil means uninstrumented.
	metricsReg atomic.Pointer[metrics.Registry]
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithArch sets the architecture parameters (default: the paper's final
// configuration, arch.Default()).
func WithArch(p arch.Params) SessionOption {
	return func(s *Session) { s.sys = WithParams(p) }
}

// WithFaults sets the fault plan benchmark runs compile and simulate under
// (default: pristine fabric). The session treats the plan as immutable and
// clones it per run, so one plan may back many parallel jobs.
func WithFaults(plan *fault.Plan) SessionOption {
	return func(s *Session) { s.plan = plan }
}

// WithSimOptions sets the simulator options benchmark runs use (default:
// sim.Options{}). A non-nil Recorder disables result caching for those runs:
// trace collection is a side effect the cache cannot replay.
func WithSimOptions(opts sim.Options) SessionOption {
	return func(s *Session) { s.simOpts = opts }
}

// WithWorkers sets the evaluation engine's worker count: n > 1 fans
// independent compile+simulate jobs across n goroutines, n == 1 runs
// sequentially, n <= 0 uses runtime.NumCPU().
func WithWorkers(n int) SessionOption {
	return func(s *Session) { s.engine = exec.NewEngine(n) }
}

// WithJobPolicy sets the per-job deadline/retry policy every cached
// evaluation runs under (default: zero policy — no deadline, no retries).
// Transient failures (per-job deadline expiry, watchdog aborts caused by a
// dying context) are retried with exponential backoff; permanent ones
// (compile errors, infeasible mappings, cycle-budget exhaustion, functional
// mismatches, panics) fail immediately.
func WithJobPolicy(p exec.JobPolicy) SessionOption {
	return func(s *Session) { s.policy = p }
}

// WithDiskCache puts a disk-backed persistent tier under the design-point
// cache: results survive the process, so a killed sweep rerun against the
// same tier resumes from its completed points (default: memory only).
func WithDiskCache(d *exec.DiskCache) SessionOption {
	return func(s *Session) { s.disk = d }
}

// NewSession builds a session. Defaults: paper architecture, no faults, one
// worker, fresh cache, no persistence, no job policy.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{sys: New(), engine: exec.NewEngine(1)}
	for _, o := range opts {
		o(s)
	}
	// Applied after the options so ordering relative to WithWorkers (which
	// replaces the engine) does not matter.
	s.engine.AttachDisk(s.disk)
	s.engine.SetPolicy(s.policy)
	return s
}

// System exposes the underlying parameterised system for callers that need
// the lower-level API (area breakdowns, direct compiles).
func (s *Session) System() *System { return s.sys }

// Params returns the session's architecture parameters.
func (s *Session) Params() arch.Params { return s.sys.Params }

// Workers reports the engine's concurrency.
func (s *Session) Workers() int { return s.engine.Workers() }

// Engine exposes the session's evaluation engine — the serving layer reads
// pool occupancy (Engine().Pool().Running()) for its load-shedding
// watermark and /statsz.
func (s *Session) Engine() *exec.Engine { return s.engine }

// CacheStats snapshots the design-point cache counters. Misses equals the
// number of distinct points evaluated, so it is identical at any worker
// count; surface it in sweep summaries.
func (s *Session) CacheStats() exec.CacheStats { return s.engine.CacheStats() }

// Retries reports how many transient job failures the session's policy has
// retried so far.
func (s *Session) Retries() int64 { return s.engine.Retries() }

// FlushCache makes the persistent tier durable (a no-op without one). Call
// it on shutdown — including interrupted shutdown — so completed design
// points survive for the next run to resume from.
func (s *Session) FlushCache() error { return s.engine.Cache().Disk().Flush() }

// Close ends the session's lifecycle: it flushes the persistent cache tier
// so every completed design point survives the process. Idempotent and safe
// to call concurrently — later calls return the first call's error — and
// deliberately tolerant of in-flight work: evaluations racing a Close still
// finish correctly (writes after the flush are durable on their own; only
// the directory-rename barrier is repeated by a later Close or process).
func (s *Session) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.FlushCache() })
	return s.closeErr
}

// Run compiles and simulates one program under the session's plan and
// options (uncached: arbitrary programs have no stable identity).
func (s *Session) Run(ctx context.Context, p *dhdl.Program) (*sim.Result, *dhdl.State, error) {
	m, err := compiler.CompileOpts(ctx, p, compiler.Options{Params: s.sys.Params, Faults: s.plan.Clone()})
	if err != nil {
		return nil, nil, err
	}
	opts := s.simOpts
	opts.Recovery = true
	return sim.Simulate(ctx, m, opts)
}

// planKey canonicalises a fault plan for cache keys. Plans are deterministic
// functions of (Spec, arch params) and params are keyed separately, so the
// spec alone identifies the plan.
func planKey(p *fault.Plan) string {
	if p == nil {
		return "no-faults"
	}
	return fmt.Sprintf("%+v", p.Spec)
}

// optsKey canonicalises simulator options for cache keys, dereferencing the
// pointer fields so the key reflects configuration, not addresses. The
// Recorder is deliberately excluded: recorded runs never hit the cache.
func optsKey(o sim.Options) string {
	d, f := "dram=default", "dramfaults=plan"
	if o.DRAM != nil {
		d = fmt.Sprintf("dram=%+v", *o.DRAM)
	}
	if o.Faults != nil {
		f = fmt.Sprintf("dramfaults=%+v", *o.Faults)
	}
	return fmt.Sprintf("cw=%d nbuf=%t %s %s max=%d stall=%d engine=%v",
		o.CoalesceWindow, o.DisableNBuffer, d, f, o.MaxCycles, o.StallWindow, o.Engine)
}

// freshInstance returns a private copy of a registry benchmark. Benchmarks
// are stateful — Build records the golden reference Check reads — so one
// instance must never serve two in-flight jobs; every evaluation gets its
// own. Caller-defined benchmarks outside the registry are used as-is (their
// callers own the sharing discipline).
func freshInstance(b workloads.Benchmark) workloads.Benchmark {
	if nb, err := workloads.ByName(b.Name()); err == nil {
		return nb
	}
	return b
}

// evaluate is the cached benchmark evaluation every suite-level method funnels
// through: one compile+simulate per distinct (benchmark, params, plan, opts)
// point per session. The plan is cloned and the benchmark re-instantiated
// inside the compute so parallel jobs share no mutable state; profiled runs
// (non-nil Recorder) bypass the cache entirely. The compute runs under the
// session's job policy (deadline + transient retries), and its result
// persists to the disk tier when one is attached — note the persisted form
// drops PassTrace (json:"-"), which only the uncached Profile path consumes.
func (s *Session) evaluate(ctx context.Context, b workloads.Benchmark, plan *fault.Plan, opts sim.Options) (*BenchResult, error) {
	b = freshInstance(b)
	if opts.Recorder != nil {
		return s.sys.RunBenchmarkCtx(ctx, b, plan.Clone(), opts)
	}
	k := exec.NewKey("core/bench", b.Name(),
		fmt.Sprintf("%+v", s.sys.Params), planKey(plan), optsKey(opts))
	// Phase attribution: when this call computes the point itself, the
	// compile/sim spans recorded inside RunBenchmarkCtx tell the story and
	// no "cache" span is emitted. When the result came from the cache — a
	// hit, the disk tier, or a singleflight wait on another request's
	// in-flight compute — the whole CachedJSON call is the "cache" phase.
	computed := false
	endCache := metrics.StartPhase(ctx, "cache")
	r, err := exec.CachedJSON(s.engine.Cache(), k, func() (*BenchResult, error) {
		computed = true
		var r *BenchResult
		err := s.engine.RunJob(ctx, b.Name(), func(ctx context.Context) error {
			var rerr error
			r, rerr = s.sys.RunBenchmarkCtx(ctx, b, plan.Clone(), opts)
			return rerr
		})
		return r, err
	})
	if !computed {
		endCache()
	}
	return r, err
}

// RunBenchmark evaluates one Table 4 benchmark under the session's plan and
// options, through the cache.
func (s *Session) RunBenchmark(ctx context.Context, b workloads.Benchmark) (*BenchResult, error) {
	return s.evaluate(ctx, b, s.plan, s.simOpts)
}

// resolveBenches maps names to benchmarks (all of Table 4 when empty).
func resolveBenches(names []string) ([]workloads.Benchmark, error) {
	if len(names) == 0 {
		return workloads.All(), nil
	}
	var out []workloads.Benchmark
	for _, n := range names {
		b, err := workloads.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Table7 runs all thirteen benchmarks across the engine's workers and
// returns their rows in paper order regardless of completion order.
func (s *Session) Table7(ctx context.Context) ([]*BenchResult, error) {
	benches := workloads.All()
	rows := make([]*BenchResult, len(benches))
	err := s.engine.Pool().Map(ctx, len(benches), func(ctx context.Context, i int) error {
		r, err := s.evaluate(ctx, benches[i], s.plan, s.simOpts)
		if err != nil {
			return err
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Bench measures simulator throughput for the named benchmarks (all of
// Table 4 when names is empty) across the engine's workers. Cycles are
// deterministic; SimWallSeconds / CyclesPerSec are host measurements and
// vary run to run (zero them before diffing outputs).
func (s *Session) Bench(ctx context.Context, names []string) ([]BenchSim, error) {
	benches, err := resolveBenches(names)
	if err != nil {
		return nil, err
	}
	out := make([]BenchSim, len(benches))
	err = s.engine.Pool().Map(ctx, len(benches), func(ctx context.Context, i int) error {
		r, err := s.evaluate(ctx, benches[i], s.plan, s.simOpts)
		if err != nil {
			return err
		}
		bs := BenchSim{Benchmark: r.Name, Cycles: r.Cycles, SimWallSeconds: r.SimWallSec}
		if bs.SimWallSeconds > 0 {
			bs.CyclesPerSec = float64(bs.Cycles) / bs.SimWallSeconds
		}
		out[i] = bs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Profile runs one benchmark with the observability subsystem armed. Always
// uncached (the collector is a side effect) and single-threaded per call,
// but safe to invoke from parallel jobs.
func (s *Session) Profile(ctx context.Context, b workloads.Benchmark) (*ProfileResult, error) {
	// ProfileBenchmark owns the collector; route the session's plan through a
	// clone and a fresh benchmark instance like every other run.
	b = freshInstance(b)
	col, opts := newProfileRecorder(s.simOpts)
	r, err := s.sys.RunBenchmarkCtx(ctx, b, s.plan.Clone(), opts)
	if err != nil {
		return nil, err
	}
	return assembleProfile(b.Name(), r, col), nil
}

// Explain reports whether a benchmark fits the session's fabric under its
// fault plan, in source-level terms.
func (s *Session) Explain(b workloads.Benchmark) (*compiler.Explanation, error) {
	return s.sys.Explain(b, s.plan)
}

// Resilience sweeps fault fractions for one benchmark, fanning the points
// across the engine's workers. The fraction-0 baseline is part of the same
// fan-out; slowdowns are folded afterwards in fraction order, so the rows
// are identical at any worker count.
func (s *Session) Resilience(ctx context.Context, b workloads.Benchmark, base fault.Spec, fracs []float64) ([]ResilienceRow, error) {
	if base.PCUs != 0 || base.PMUs != 0 || base.Switches != 0 || len(base.Events) != 0 {
		return nil, fmt.Errorf("core: resilience: base spec must not disable tiles or schedule events")
	}
	if len(fracs) == 0 || fracs[0] != 0 {
		fracs = append([]float64{0}, fracs...)
	}
	rows := make([]ResilienceRow, len(fracs))
	err := s.engine.Pool().Map(ctx, len(fracs), func(ctx context.Context, i int) error {
		row, err := s.resiliencePoint(ctx, b, base, fracs[i])
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Slowdown baseline: the first feasible row (fraction 0 in practice),
	// applied in fraction order after the parallel phase.
	var baseCycles int64
	for i := range rows {
		if !rows[i].Feasible {
			continue
		}
		if baseCycles == 0 {
			baseCycles = rows[i].Cycles
		}
		if baseCycles > 0 {
			rows[i].Slowdown = float64(rows[i].Cycles) / float64(baseCycles)
		}
	}
	return rows, nil
}

// resiliencePoint evaluates one fraction of the sweep through the cache.
func (s *Session) resiliencePoint(ctx context.Context, b workloads.Benchmark, base fault.Spec, frac float64) (ResilienceRow, error) {
	row := ResilienceRow{
		Fraction: frac,
		PCUsDown: int(frac * float64(s.sys.Params.NumPCUs())),
		PMUsDown: int(frac * float64(s.sys.Params.NumPMUs())),
	}
	spec := base
	spec.PCUs, spec.PMUs = row.PCUsDown, row.PMUsDown
	var plan *fault.Plan
	if !spec.Zero() {
		var err error
		plan, err = fault.NewPlan(spec, s.sys.Params)
		if err != nil {
			return row, fmt.Errorf("core: resilience at %.0f%%: %w", 100*frac, err)
		}
	}
	r, err := s.evaluate(ctx, b, plan, sim.Options{})
	switch {
	case err == nil:
		row.Feasible = true
		row.Cycles = r.Cycles
	case isInfeasible(err):
		row.Reason = err.Error()
	default:
		return row, fmt.Errorf("core: resilience at %.0f%%: %w", 100*frac, err)
	}
	return row, nil
}

// Recovery runs one benchmark under a timed fault schedule twice — baseline
// with events stripped, then surviving them — as two parallel jobs, and
// decomposes the difference.
func (s *Session) Recovery(ctx context.Context, b workloads.Benchmark, spec fault.Spec) (*RecoveryReport, error) {
	if len(spec.Events) == 0 {
		return nil, fmt.Errorf("core: recovery: spec schedules no timed events")
	}
	baseSpec := spec
	baseSpec.Events = nil
	results := make([]*BenchResult, 2)
	err := s.engine.Pool().Map(ctx, 2, func(ctx context.Context, i int) error {
		sp := spec
		label := "recovery"
		if i == 0 {
			sp, label = baseSpec, "recovery baseline"
		}
		var plan *fault.Plan
		if !sp.Zero() {
			var err error
			plan, err = fault.NewPlan(sp, s.sys.Params)
			if err != nil {
				return fmt.Errorf("core: %s: %w", label, err)
			}
		}
		r, err := s.evaluate(ctx, b, plan, sim.Options{})
		if err != nil {
			return fmt.Errorf("core: %s: %w", label, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	base, r := results[0], results[1]
	rep := &RecoveryReport{
		Name:           b.Name(),
		Spec:           spec,
		BaselineCycles: base.Cycles,
		Cycles:         r.Cycles,
	}
	if r.Recovery != nil {
		rep.Events = r.Recovery.Events
		rep.DrainCycles = r.Recovery.DrainCycles
		rep.ReconfigCycles = r.Recovery.ReconfigCycles
		rep.LostBursts = r.Recovery.LostBursts
	}
	if re := rep.Cycles - rep.BaselineCycles - rep.DrainCycles - rep.ReconfigCycles; re > 0 {
		rep.ReExecCycles = re
	}
	return rep, nil
}

// sweep lazily builds the shared DSE driver: benchmark virtual units are
// allocated exactly once per session (hoisted out of every sweep entry
// point) and all sweeps share the session's pool and cache.
func (s *Session) sweep() (*dse.Sweep, error) {
	s.dseOnce.Do(func() {
		benches, err := dse.LoadBenches()
		if err != nil {
			s.dseLoadErr = err
			return
		}
		s.dseSweep = dse.NewSweep(benches, s.sys.Params.Chip, s.engine)
		s.dseSweep.SetMetrics(s.metricsReg.Load())
	})
	return s.dseSweep, s.dseLoadErr
}

// UseMetrics installs an instrumentation registry on the session: the
// tuner and the DSE driver record generation timing and point counters
// into it, Engine() counters become scrapeable by whoever owns the
// registry, and the simulator's event-core instruments (queue depth,
// events per cycle) are armed process-wide. Call before serving traffic —
// the lazily-built DSE driver captures the registry at first use. A nil
// registry uninstalls.
func (s *Session) UseMetrics(r *metrics.Registry) {
	s.metricsReg.Store(r)
	sim.UseMetrics(r)
}

// Figure7 computes one Figure 7 panel (a-f) through the shared sweep.
func (s *Session) Figure7(ctx context.Context, panelID string) (*dse.Panel, error) {
	sw, err := s.sweep()
	if err != nil {
		return nil, err
	}
	return sw.Figure7(ctx, panelID)
}

// Table3 runs the parameter-selection sweep through the shared sweep.
func (s *Session) Table3(ctx context.Context) ([]dse.Table3Row, error) {
	sw, err := s.sweep()
	if err != nil {
		return nil, err
	}
	return sw.Table3(ctx)
}

// Table6 computes the generalization ladder through the shared sweep.
func (s *Session) Table6(ctx context.Context) ([]dse.Ladder, error) {
	sw, err := s.sweep()
	if err != nil {
		return nil, err
	}
	return sw.Table6(ctx, s.sys.Params)
}

// RatioStudy evaluates PMU:PCU provisioning through the shared sweep.
func (s *Session) RatioStudy(ctx context.Context) ([]dse.RatioRow, error) {
	sw, err := s.sweep()
	if err != nil {
		return nil, err
	}
	return sw.RatioStudy(ctx, s.sys.Params)
}
