package core

import (
	"errors"
	"fmt"

	"plasticine/internal/compiler"
	"plasticine/internal/fault"
	"plasticine/internal/sim"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

// ResilienceRow is one point of the graceful-degradation sweep: the
// makespan of a benchmark with a given fraction of compute and memory
// tiles disabled, relative to the pristine fabric.
type ResilienceRow struct {
	Fraction float64 // fraction of PCUs and PMUs disabled
	PCUsDown int
	PMUsDown int

	Feasible bool
	Cycles   int64
	// Slowdown is Cycles over the pristine (fraction 0) cycles.
	Slowdown float64
	// Reason explains an infeasible point (insufficient healthy resources).
	Reason string
}

// Resilience sweeps fault fractions for one benchmark with a fixed seed.
// The fraction-0 point is always included first and is the slowdown
// baseline; infeasible points (the program no longer fits the healthy
// fabric) are reported, not treated as errors.
func (s *System) Resilience(b workloads.Benchmark, seed int64, fracs []float64) ([]ResilienceRow, error) {
	return s.ResilienceSpec(b, fault.Spec{Seed: seed}, fracs)
}

// ResilienceSpec is Resilience with the full memory-fault surface of the
// base spec carried into every sweep point: latency-spike and transient-
// retry probabilities (and their tuning fields) apply at each fraction,
// including the fraction-0 baseline, so the sweep isolates the cost of the
// disabled tiles on an already-noisy memory system. The base spec's own
// tile counts and timed events must be zero — the sweep owns those.
func (s *System) ResilienceSpec(b workloads.Benchmark, base fault.Spec, fracs []float64) ([]ResilienceRow, error) {
	if base.PCUs != 0 || base.PMUs != 0 || base.Switches != 0 || len(base.Events) != 0 {
		return nil, fmt.Errorf("core: resilience: base spec must not disable tiles or schedule events")
	}
	if len(fracs) == 0 || fracs[0] != 0 {
		fracs = append([]float64{0}, fracs...)
	}
	var out []ResilienceRow
	var baseCycles int64
	for _, frac := range fracs {
		row := ResilienceRow{
			Fraction: frac,
			PCUsDown: int(frac * float64(s.Params.NumPCUs())),
			PMUsDown: int(frac * float64(s.Params.NumPMUs())),
		}
		spec := base
		spec.PCUs, spec.PMUs = row.PCUsDown, row.PMUsDown
		var plan *fault.Plan
		if !spec.Zero() {
			var err error
			plan, err = fault.NewPlan(spec, s.Params)
			if err != nil {
				return nil, fmt.Errorf("core: resilience at %.0f%%: %w", 100*frac, err)
			}
		}
		r, err := s.RunBenchmarkOpts(b, plan, sim.Options{})
		switch {
		case err == nil:
			row.Feasible = true
			row.Cycles = r.Cycles
			if baseCycles == 0 {
				baseCycles = r.Cycles
			}
			if baseCycles > 0 {
				row.Slowdown = float64(r.Cycles) / float64(baseCycles)
			}
		case isInfeasible(err):
			row.Reason = err.Error()
		default:
			return nil, fmt.Errorf("core: resilience at %.0f%%: %w", 100*frac, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// isInfeasible reports whether a run failed because the program no longer
// fits the healthy fabric — a reportable sweep outcome, not an error.
func isInfeasible(err error) bool {
	return errors.Is(err, compiler.ErrInsufficient) || errors.Is(err, compiler.ErrNoRoute)
}

// DefaultResilienceFractions is the sweep the resilience subcommand runs:
// 0 to 50% of tiles disabled.
func DefaultResilienceFractions() []float64 {
	return []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
}

// FormatResilience renders a sweep as a text table.
func FormatResilience(name string, seed int64, rows []ResilienceRow) string {
	t := stats.New(
		fmt.Sprintf("Resilience: %s makespan vs fraction of disabled tiles (seed %d)", name, seed),
		"Disabled", "PCUs down", "PMUs down", "Cycles", "Slowdown", "Status")
	for _, r := range rows {
		status := "ok"
		cycles, slow := fmt.Sprint(r.Cycles), fmt.Sprintf("%.3fx", r.Slowdown)
		if !r.Feasible {
			status = "does not fit"
			cycles, slow = "-", "-"
		}
		t.Add(fmt.Sprintf("%.0f%%", 100*r.Fraction),
			fmt.Sprint(r.PCUsDown), fmt.Sprint(r.PMUsDown), cycles, slow, status)
	}
	return t.String()
}
