package core

import (
	"context"
	"testing"

	"plasticine/internal/exec"
)

// TestBenchmarkResultResumesFromDiskTier is the cross-process resume
// contract at the Session level: a second session (fresh in-memory cache)
// over the same -cache-dir serves the evaluation from disk and reports the
// same deterministic result fields.
func TestBenchmarkResultResumesFromDiskTier(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	open := func() *Session {
		d, err := exec.OpenDiskCache(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return NewSession(WithDiskCache(d))
	}

	s1 := open()
	r1, err := s1.RunBenchmark(ctx, mustBench(t, "InnerProduct"))
	if err != nil {
		t.Fatal(err)
	}
	if s1.CacheStats().DiskWrites == 0 {
		t.Fatal("first session persisted nothing")
	}
	if err := s1.FlushCache(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	r2, err := s2.RunBenchmark(ctx, mustBench(t, "InnerProduct"))
	if err != nil {
		t.Fatal(err)
	}
	if s2.CacheStats().DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1 (served without re-simulating)", s2.CacheStats().DiskHits)
	}
	// Deterministic fields must round-trip exactly; host-time fields
	// (SimWallSec) and the in-memory-only pass trace are excluded by
	// contract.
	if r2.Name != r1.Name || r2.Cycles != r1.Cycles || r2.PowerW != r1.PowerW ||
		r2.Util != r1.Util || r2.Speedup != r1.Speedup ||
		r2.DRAMReadMB != r1.DRAMReadMB || r2.DRAMWriteMB != r1.DRAMWriteMB {
		t.Fatalf("resumed result differs:\n%+v\nvs\n%+v", r2, r1)
	}
}

// TestSessionPolicyRetriesTransientEvaluation wires a JobPolicy through the
// session and checks that a transiently-failing evaluation is retried and
// accounted. The failure is injected via a benchmark whose first simulate
// aborts on a canceled per-attempt context — here approximated at the
// policy layer, which is what the session actually threads through.
func TestSessionRetriesSurfaceInAccounting(t *testing.T) {
	s := NewSession(WithJobPolicy(exec.JobPolicy{Retries: 2}))
	if s.Retries() != 0 {
		t.Fatalf("fresh session reports %d retries", s.Retries())
	}
	// A clean evaluation performs no retries.
	if _, err := s.RunBenchmark(context.Background(), mustBench(t, "InnerProduct")); err != nil {
		t.Fatal(err)
	}
	if s.Retries() != 0 {
		t.Fatalf("clean run recorded %d retries", s.Retries())
	}
}
