package core

import (
	"strings"
	"testing"

	"plasticine/internal/fault"
	"plasticine/internal/sim"
	"plasticine/internal/workloads"
)

func benchByName(t *testing.T, name string) workloads.Benchmark {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestZeroFaultPlanKeepsMakespan(t *testing.T) {
	s := New()
	zero, err := fault.NewPlan(fault.Spec{Seed: 123}, s.Params)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"InnerProduct", "GEMM", "BlackScholes"} {
		b := benchByName(t, name)
		pristine, err := s.RunBenchmark(b)
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := s.RunBenchmarkOpts(b, zero, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pristine.Cycles != faulted.Cycles {
			t.Errorf("%s: zero-fault plan changed makespan %d -> %d",
				name, pristine.Cycles, faulted.Cycles)
		}
		if faulted.Retries != 0 || faulted.LatencySpikes != 0 {
			t.Errorf("%s: zero-fault plan reported fault activity: %+v", name, faulted)
		}
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	s := New()
	spec := fault.Spec{Seed: 4, PCUs: 8, PMUs: 4, Switches: 2,
		Chans: 1, TransientProb: 0.001}
	run := func() *BenchResult {
		plan, err := fault.NewPlan(spec, s.Params)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.RunBenchmarkOpts(benchByName(t, "InnerProduct"), plan, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Retries != b.Retries || a.LatencySpikes != b.LatencySpikes {
		t.Errorf("same fault seed produced different runs:\n%+v\n%+v", a, b)
	}
	// A downed channel and transient retries must cost cycles, not results.
	pristine, err := s.RunBenchmark(benchByName(t, "InnerProduct"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles <= pristine.Cycles {
		t.Errorf("faulted run (%d cycles) not slower than pristine (%d)", a.Cycles, pristine.Cycles)
	}
}

func TestResilienceSweep(t *testing.T) {
	s := New()
	rows, err := s.Resilience(benchByName(t, "InnerProduct"), 1, []float64{0, 0.25, 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if !rows[0].Feasible || rows[0].Fraction != 0 || rows[0].Slowdown != 1 {
		t.Errorf("baseline row malformed: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.Feasible && r.Slowdown < 1 {
			t.Errorf("disabled tiles sped the program up: %+v", r)
		}
		if !r.Feasible && r.Reason == "" {
			t.Errorf("infeasible row has no reason: %+v", r)
		}
	}
	out := FormatResilience("InnerProduct", 1, rows)
	if !strings.Contains(out, "Slowdown") || !strings.Contains(out, "0%") {
		t.Errorf("formatted sweep malformed:\n%s", out)
	}
}
