package core

import (
	"strings"
	"testing"

	"plasticine/internal/fault"
)

func TestRecoveryReportInnerProduct(t *testing.T) {
	s := New()
	spec := fault.Spec{Seed: 3, Events: []fault.EventSpec{
		{Kind: fault.KillPCU, Cycle: 500},
		{Kind: fault.KillChan, Cycle: 1500},
	}}
	rep, err := s.Recovery(benchByName(t, "InnerProduct"), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("no events fired; schedule the kills earlier in the run")
	}
	if rep.BaselineCycles <= 0 || rep.Cycles < rep.BaselineCycles {
		t.Errorf("cycles %d vs baseline %d: recovery cannot beat the event-free run",
			rep.Cycles, rep.BaselineCycles)
	}
	gap := rep.Cycles - rep.BaselineCycles
	if got := rep.DrainCycles + rep.ReconfigCycles + rep.ReExecCycles; got < gap {
		t.Errorf("overhead decomposition %d does not cover the makespan gap %d", got, gap)
	}
	out := FormatRecovery(rep)
	for _, want := range []string{"kill-pcu", "re-execution", "baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestRecoveryRejectsEventFreeSpec(t *testing.T) {
	_, err := New().Recovery(benchByName(t, "InnerProduct"), fault.Spec{Seed: 1})
	if err == nil {
		t.Fatal("recovery accepted a spec with no timed events")
	}
}

func TestResilienceSpecCarriesMemoryFaults(t *testing.T) {
	s := New()
	base := fault.Spec{Seed: 1, TransientProb: 0.01}
	rows, err := s.ResilienceSpec(benchByName(t, "InnerProduct"), base, []float64{0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !rows[0].Feasible {
		t.Fatalf("unexpected sweep shape: %+v", rows)
	}
	// The fraction-0 point now runs on a noisy memory system, so it must be
	// slower than the clean pristine run.
	clean, err := s.Resilience(benchByName(t, "InnerProduct"), 1, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Cycles <= clean[0].Cycles {
		t.Errorf("retry-noisy baseline %d cycles not slower than clean %d",
			rows[0].Cycles, clean[0].Cycles)
	}
}

func TestResilienceSpecRejectsTileCounts(t *testing.T) {
	_, err := New().ResilienceSpec(benchByName(t, "InnerProduct"),
		fault.Spec{PCUs: 3}, []float64{0})
	if err == nil {
		t.Fatal("base spec with tile counts accepted")
	}
}
