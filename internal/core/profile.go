package core

// Profiling: run a benchmark with the observability subsystem armed
// (internal/trace), roll the counters into the paper-style utilization
// report, and export Chrome-trace / flat-counters JSON. This is the backend
// of `plasticine profile` and `plasticine bench`.

import (
	"encoding/json"
	"fmt"
	"strings"

	"plasticine/internal/compiler"
	"plasticine/internal/fault"
	"plasticine/internal/sim"
	"plasticine/internal/stats"
	"plasticine/internal/trace"
	"plasticine/internal/workloads"
)

// ProfileResult bundles one profiled benchmark run: the evaluation row, the
// rolled-up cycle-accounting report (per physical unit and per source-level
// pattern node), the compile pass trace, and the raw collector for export.
type ProfileResult struct {
	Bench     *BenchResult
	Report    *trace.Report
	Pattern   *trace.PatternReport
	Passes    *compiler.PassTrace
	Collector *trace.Collector
}

// ProfileBenchmark is RunBenchmarkOpts with the observability subsystem
// armed: every physical unit's busy/stall/idle cycles are attributed, link
// and DRAM-channel traffic is counted, and recovery windows (if the fault
// plan fires mid-run events) are charged fabric-wide.
func (s *System) ProfileBenchmark(b workloads.Benchmark, plan *fault.Plan, opts sim.Options) (*ProfileResult, error) {
	col, opts := newProfileRecorder(opts)
	r, err := s.RunBenchmarkOpts(b, plan, opts)
	if err != nil {
		return nil, err
	}
	return assembleProfile(b.Name(), r, col), nil
}

// newProfileRecorder arms a fresh collector on the given options.
func newProfileRecorder(opts sim.Options) (*trace.Collector, sim.Options) {
	col := trace.NewCollector()
	opts.Recorder = col
	return col, opts
}

// assembleProfile rolls a recorded run into a ProfileResult. Compile passes
// ride the Chrome trace on their own process track; spans are laid end to
// end since PassTrace records durations, not start times.
func assembleProfile(name string, r *BenchResult, col *trace.Collector) *ProfileResult {
	if r.Passes != nil {
		var off int64
		for _, e := range r.Passes.Entries {
			col.AddCompileSpan(e.Name, e.Detail, off, e.WallNS)
			off += e.WallNS
		}
	}
	rep := col.Report()
	rep.Benchmark = name
	return &ProfileResult{Bench: r, Report: rep,
		Pattern: col.PatternReport(name), Passes: r.Passes, Collector: col}
}

// ChromeTrace exports the run as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto).
func (p *ProfileResult) ChromeTrace() ([]byte, error) {
	return p.Collector.ChromeTrace(p.Report.Benchmark)
}

// CountersJSON exports the rolled-up report as flat JSON.
func (p *ProfileResult) CountersJSON() ([]byte, error) {
	return p.Collector.CountersJSON(p.Report.Benchmark)
}

// maxLinksShown bounds the link table in the rendered profile; the full list
// is always in the counters JSON.
const maxLinksShown = 8

// FormatProfile renders the report as the paper-style utilization tables:
// per-unit cycle accounting (busy + stalls + idle == total, exactly), DRAM
// channel behaviour, the busiest links, and the named bottleneck.
func FormatProfile(rep *trace.Report) string {
	var b strings.Builder
	t := stats.New(fmt.Sprintf("Profile: %s (%d cycles)", rep.Benchmark, rep.TotalCycles),
		"Unit", "Origin", "Kind", "Busy%", "Stall%", "Idle%",
		"In-starve", "Out-bp", "DRAM-wait", "Drain", "Reconfig", "FIFO hw", "Dominant stall")
	for i := range rep.Units {
		u := &rep.Units[i]
		tot := float64(u.Total)
		if tot == 0 {
			tot = 1
		}
		dom, _ := u.DominantStall()
		domStr := "-"
		if dom != trace.CauseNone {
			domStr = dom.String()
		}
		t.AddRow([]string{u.Name, u.Origin, u.Kind,
			stats.Pct(float64(u.Busy) / tot),
			stats.Pct(float64(u.StallTotal()) / tot),
			stats.Pct(float64(u.Idle) / tot),
			fmt.Sprint(u.Stalls[trace.CauseInputStarved]),
			fmt.Sprint(u.Stalls[trace.CauseOutputBackpressure]),
			fmt.Sprint(u.Stalls[trace.CauseDRAMWait]),
			fmt.Sprint(u.Stalls[trace.CauseDrain]),
			fmt.Sprint(u.Stalls[trace.CauseReconfig]),
			fmt.Sprint(u.FIFOHighWater), domStr})
	}
	b.WriteString(t.String())
	if len(rep.Channels) > 0 {
		ct := stats.New("DRAM channels",
			"Ch", "Reads", "Writes", "Row hit%", "Conflicts", "Retries", "Max queue")
		for _, c := range rep.Channels {
			ct.AddRow([]string{fmt.Sprint(c.Channel), fmt.Sprint(c.Reads), fmt.Sprint(c.Writes),
				stats.Pct(c.RowHitRate), fmt.Sprint(c.RowConflicts),
				fmt.Sprint(c.Retries), fmt.Sprint(c.MaxQueueOcc)})
		}
		b.WriteString("\n")
		b.WriteString(ct.String())
	}
	if len(rep.Links) > 0 {
		lt := stats.New("Busiest links (vector network)", "Link", "Routes", "Bytes", "Util%")
		for i, l := range rep.Links {
			if i == maxLinksShown {
				break
			}
			lt.AddRow([]string{l.Name, fmt.Sprint(l.Routes), fmt.Sprint(l.Bytes), stats.Pct(l.Util)})
		}
		b.WriteString("\n")
		b.WriteString(lt.String())
	}
	if len(rep.Windows) > 0 {
		var cycles int64
		for _, w := range rep.Windows {
			cycles += w.To - w.From
		}
		fmt.Fprintf(&b, "\nrecovery windows: %d covering %d cycles\n", len(rep.Windows), cycles)
	}
	fmt.Fprintf(&b, "\nbottleneck: %s — %s\n", rep.Bottleneck, rep.BottleneckWhy)
	return b.String()
}

// FormatPatternProfile renders the source-level profile: one row per pattern
// node (origin), with the node's exclusive share of the makespan from the
// timeline sweep. The Cycles column plus the recovery and idle rows sum
// exactly to the makespan, so the table reads as "where did the time go" in
// the program's own vocabulary.
func FormatPatternProfile(pr *trace.PatternReport) string {
	var b strings.Builder
	t := stats.New(fmt.Sprintf("Profile by pattern: %s (%d cycles)", pr.Benchmark, pr.TotalCycles),
		"Pattern node", "Units", "Cycles", "Share", "Of which busy", "Of which stalled",
		"Unit busy", "Unit stalls", "Dominant stall")
	tot := float64(pr.TotalCycles)
	if tot == 0 {
		tot = 1
	}
	for i := range pr.Rows {
		r := &pr.Rows[i]
		dom, _ := r.DominantStall()
		domStr := "-"
		if dom != trace.CauseNone {
			domStr = dom.String()
		}
		t.AddRow([]string{r.Origin, fmt.Sprint(r.Units),
			fmt.Sprint(r.Attributed), stats.Pct(float64(r.Attributed) / tot),
			fmt.Sprint(r.AttrBusy), fmt.Sprint(r.AttrStall),
			fmt.Sprint(r.Busy), fmt.Sprint(r.StallTotal()), domStr})
	}
	if pr.Recovery > 0 {
		t.AddRow([]string{"(recovery)", "-", fmt.Sprint(pr.Recovery),
			stats.Pct(float64(pr.Recovery) / tot), "-", "-", "-", "-", "-"})
	}
	t.AddRow([]string{"(idle)", "-", fmt.Sprint(pr.Idle),
		stats.Pct(float64(pr.Idle) / tot), "-", "-", "-", "-", "-"})
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nattributed %d + recovery %d + idle %d = %d cycles (makespan %d)\n",
		pr.AttributedTotal()-pr.Recovery-pr.Idle, pr.Recovery, pr.Idle,
		pr.AttributedTotal(), pr.TotalCycles)
	return b.String()
}

// PatternJSON exports the per-pattern rollup as indented JSON.
func (p *ProfileResult) PatternJSON() ([]byte, error) {
	return json.MarshalIndent(p.Pattern, "", "  ")
}

// Explain reports, in source-level terms, whether a benchmark fits this
// system's fabric (optionally under a fault plan) — the backend of
// `plasticine explain`.
func (s *System) Explain(b workloads.Benchmark, plan *fault.Plan) (*compiler.Explanation, error) {
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name(), err)
	}
	return compiler.Explain(p, s.Params, plan), nil
}

// BenchSchema versions the BENCH_sim.json document (see EXPERIMENTS.md).
const BenchSchema = "plasticine-bench-sim/v1"

// BenchSim is one benchmark's simulator-throughput measurement.
type BenchSim struct {
	Benchmark      string  `json:"benchmark"`
	Cycles         int64   `json:"cycles"`
	SimWallSeconds float64 `json:"sim_wall_seconds"`
	CyclesPerSec   float64 `json:"cycles_per_second"`
}

// BenchFile is the BENCH_sim.json document: a schema tag plus one entry per
// benchmark.
type BenchFile struct {
	Schema  string     `json:"schema"`
	Results []BenchSim `json:"results"`
}

// BenchSims simulates the named benchmarks (all of Table 4 when names is
// empty) and reports simulated cycles against host wall time.
func (s *System) BenchSims(names []string) ([]BenchSim, error) {
	var benches []workloads.Benchmark
	if len(names) == 0 {
		benches = workloads.All()
	} else {
		for _, n := range names {
			b, err := workloads.ByName(n)
			if err != nil {
				return nil, err
			}
			benches = append(benches, b)
		}
	}
	var out []BenchSim
	for _, b := range benches {
		r, err := s.RunBenchmark(b)
		if err != nil {
			return nil, err
		}
		bs := BenchSim{Benchmark: r.Name, Cycles: r.Cycles, SimWallSeconds: r.SimWallSec}
		if bs.SimWallSeconds > 0 {
			bs.CyclesPerSec = float64(bs.Cycles) / bs.SimWallSeconds
		}
		out = append(out, bs)
	}
	return out, nil
}

// BenchJSON serialises results as the versioned BENCH_sim.json document.
func BenchJSON(results []BenchSim) ([]byte, error) {
	return json.MarshalIndent(BenchFile{Schema: BenchSchema, Results: results}, "", "  ")
}

// FormatBench renders bench results as a table.
func FormatBench(results []BenchSim) string {
	t := stats.New("Simulator throughput", "Benchmark", "Cycles", "Wall s", "Cycles/s")
	for _, r := range results {
		t.AddRow([]string{r.Benchmark, fmt.Sprint(r.Cycles),
			fmt.Sprintf("%.3f", r.SimWallSeconds), fmt.Sprintf("%.0f", r.CyclesPerSec)})
	}
	return t.String()
}
