package core

// Session.Tune is the facade over internal/tune: the session supplies the
// evaluation environment — the shared engine (pool, design-point cache,
// disk tier, job policy) plus the raw compile+simulate closure — and the
// tuner owns the search. Candidate evaluations are cached under their own
// "tune/eval" keys (one per candidate × benchmark), so tune runs share
// results with each other across processes and tenants, but not with the
// session's fixed-architecture benchmark cache.

import (
	"context"
	"errors"

	"plasticine/internal/arch"
	"plasticine/internal/dse"
	"plasticine/internal/sim"
	"plasticine/internal/tune"
	"plasticine/internal/workloads"
)

// Tune runs the Pareto-front auto-tuner over the architecture design space
// for the spec's workload mix. onGen (nil ok) observes each completed
// generation. Deterministic for a fixed spec at any worker count; with a
// disk cache attached, a killed run rerun against the same directory
// resumes byte-identically from its PLTN snapshot.
func (s *Session) Tune(ctx context.Context, spec tune.Spec, onGen func(tune.Generation)) (*tune.Result, error) {
	return tune.Search(ctx, spec, tune.Env{
		Engine:       s.engine,
		Bench:        dse.LoadBench,
		Evaluate:     s.tuneEvaluate,
		OnGeneration: onGen,
		Logf:         nil,
		Metrics:      s.metricsReg.Load(),
	})
}

// tuneEvaluate is the raw evaluation behind one (candidate, benchmark)
// point: compile and simulate on a pristine fabric with default simulator
// options — tuning measures the design, not a fault scenario. Designs the
// compiler cannot place or route, or that wedge the simulated fabric
// (non-transient watchdog aborts: stall, deadlock), are infeasible points
// the search records and moves past; only environmental errors (context
// death, simulator bugs) abort the search.
func (s *Session) tuneEvaluate(ctx context.Context, p arch.Params, name string) (tune.EvalOutcome, error) {
	b, err := workloads.ByName(name)
	if err != nil {
		return tune.EvalOutcome{}, err
	}
	r, err := WithParams(p).RunBenchmarkCtx(ctx, b, nil, sim.Options{})
	if err != nil {
		if tuneInfeasible(err) {
			return tune.EvalOutcome{Infeasible: true}, nil
		}
		return tune.EvalOutcome{}, err
	}
	return tune.EvalOutcome{Cycles: r.Cycles}, nil
}

// tuneInfeasible classifies an evaluation failure as a property of the
// design point rather than of the run: compile-time no-fit (insufficient
// resources, unroutable) and permanent watchdog aborts both mean "this
// candidate does not work", not "stop searching".
func tuneInfeasible(err error) bool {
	if isInfeasible(err) {
		return true
	}
	var we *sim.WatchdogError
	return errors.As(err, &we) && !we.Transient()
}
