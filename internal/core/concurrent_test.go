package core

// The serving layer drives ONE Session from many goroutines at once, mixing
// benchmark runs, profiles, explains and sweeps. This test is that usage
// pattern under -race: N goroutines hammer a shared Session with a mixed
// call schedule, and every result must be byte-identical to the same call
// made sequentially on a fresh session. Any data race (shared fault plan,
// stateful benchmark instance, sweep lazy-init, cache entry publication)
// either trips the race detector or diverges a result.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"plasticine/internal/compiler"
)

// benchJSONStripped serialises a BenchResult with host-measured wall time
// zeroed, so goroutine interleaving cannot legitimately change the bytes.
func benchJSONStripped(t *testing.T, r *BenchResult) []byte {
	t.Helper()
	c := *r
	c.SimWallSec = 0
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSessionConcurrentMixedUse(t *testing.T) {
	ctx := context.Background()

	// Sequential reference, one call each on a private session.
	ref := NewSession(WithWorkers(1))
	wantRun := map[string][]byte{}
	for _, name := range fastBenches {
		r, err := ref.RunBenchmark(ctx, mustBench(t, name))
		if err != nil {
			t.Fatalf("reference run %s: %v", name, err)
		}
		wantRun[name] = benchJSONStripped(t, r)
	}
	refProfile, err := ref.Profile(ctx, mustBench(t, "InnerProduct"))
	if err != nil {
		t.Fatal(err)
	}
	wantCounters, err := refProfile.CountersJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Strip the pass trace before comparing explanations: it records host
	// wall times, which legitimately differ between calls.
	explainJSON := func(ex *compiler.Explanation) []byte {
		c := *ex
		c.Passes = nil
		data, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	refExplain, err := ref.Explain(mustBench(t, "TPCHQ6"))
	if err != nil {
		t.Fatal(err)
	}
	wantExplain := explainJSON(refExplain)
	refPanel, err := ref.Figure7(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	wantPanel := refPanel.Format()

	// One shared session, every call kind in flight at once, each kind
	// repeated so cache hits and misses both happen concurrently.
	sess := NewSession(WithWorkers(4))
	type task func() error
	var tasks []task
	for round := 0; round < 2; round++ {
		for _, name := range fastBenches {
			name := name
			tasks = append(tasks, func() error {
				r, err := sess.RunBenchmark(ctx, mustBench(t, name))
				if err != nil {
					return fmt.Errorf("run %s: %w", name, err)
				}
				if got := benchJSONStripped(t, r); !bytes.Equal(got, wantRun[name]) {
					return fmt.Errorf("run %s diverged under concurrency:\nwant %s\ngot  %s", name, wantRun[name], got)
				}
				return nil
			})
		}
		tasks = append(tasks, func() error {
			p, err := sess.Profile(ctx, mustBench(t, "InnerProduct"))
			if err != nil {
				return fmt.Errorf("profile: %w", err)
			}
			got, err := p.CountersJSON()
			if err != nil {
				return err
			}
			if !bytes.Equal(got, wantCounters) {
				return fmt.Errorf("profile counters diverged under concurrency")
			}
			return nil
		})
		tasks = append(tasks, func() error {
			ex, err := sess.Explain(mustBench(t, "TPCHQ6"))
			if err != nil {
				return fmt.Errorf("explain: %w", err)
			}
			if !bytes.Equal(explainJSON(ex), wantExplain) {
				return fmt.Errorf("explain diverged under concurrency")
			}
			return nil
		})
		tasks = append(tasks, func() error {
			p, err := sess.Figure7(ctx, "f")
			if err != nil {
				return fmt.Errorf("fig7: %w", err)
			}
			if p.Format() != wantPanel {
				return fmt.Errorf("figure 7 panel diverged under concurrency")
			}
			return nil
		})
	}

	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, fn := range tasks {
		wg.Add(1)
		go func(i int, fn task) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	// The shared cache deduped the repeated rounds: the three benchmarks
	// plus the sweep's design points were each computed exactly once.
	if s := sess.CacheStats(); s.Hits == 0 {
		t.Errorf("concurrent mixed use produced no cache hits: %+v", s)
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	sess := NewSession()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sess.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := sess.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
}
