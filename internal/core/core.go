// Package core is the public façade of the Plasticine reproduction: it ties
// the programming model, compiler, cycle-level simulator, FPGA baseline and
// the area/power models together, and regenerates the paper's evaluation
// artefacts (Tables 5 and 7).
package core

import (
	"context"
	"encoding/json"
	"fmt"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
	"plasticine/internal/fpga"
	"plasticine/internal/metrics"
	"plasticine/internal/sim"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

// System is a Plasticine instance at a particular parameterisation.
type System struct {
	Params arch.Params
	FPGA   fpga.Model
}

// New returns a system with the paper's final architecture and baseline.
func New() *System {
	return &System{Params: arch.Default(), FPGA: fpga.StratixV()}
}

// WithParams returns a system with custom architecture parameters.
func WithParams(p arch.Params) *System {
	return &System{Params: p, FPGA: fpga.StratixV()}
}

// Compile maps a DHDL program onto the fabric.
func (s *System) Compile(p *dhdl.Program) (*compiler.Mapping, error) {
	return compiler.Compile(p, s.Params)
}

// CompileFaulted maps a DHDL program onto the fabric under a fault plan:
// the placer avoids disabled tiles and routes detour dead switches. A nil
// plan is identical to Compile.
func (s *System) CompileFaulted(p *dhdl.Program, plan *fault.Plan) (*compiler.Mapping, error) {
	return compiler.CompileWithFaults(p, s.Params, plan)
}

// Run compiles and simulates a program whose DRAM buffers are bound.
func (s *System) Run(p *dhdl.Program) (*sim.Result, *dhdl.State, error) {
	m, err := s.Compile(p)
	if err != nil {
		return nil, nil, err
	}
	return sim.Simulate(context.Background(), m, sim.Options{})
}

// BenchResult is one Table 7 row: Plasticine vs the FPGA baseline.
type BenchResult struct {
	Name string

	// Plasticine side (simulated).
	Cycles      int64
	TimeSec     float64
	PowerW      float64
	Util        compiler.Utilization
	DRAMReadMB  float64
	DRAMWriteMB float64

	// FPGA side (modelled).
	FPGATimeSec float64
	FPGAPowerW  float64

	// Ratios.
	Speedup      float64
	PerfPerWatt  float64
	PaperSpeedup float64
	PaperPerfW   float64

	// Fault-injection observables (zero on pristine runs).
	Retries          int64
	RetriesExhausted int64
	LatencySpikes    int64

	// Recovery is the mid-run fault-survival breakdown (nil unless the
	// fault plan scheduled timed events that fired).
	Recovery *sim.RecoveryStats `json:",omitempty"`

	// SimWallSec is host time spent simulating (simulator throughput, not a
	// modelled quantity).
	SimWallSec float64 `json:",omitempty"`

	// Passes is the compile pipeline's per-pass record (wall time, sizes,
	// placement/routing quality). Excluded from the JSON artefacts: host wall
	// times are not reproducible quantities.
	Passes *compiler.PassTrace `json:"-"`
}

// RunBenchmark executes one Table 4 benchmark end to end, checks its
// functional output, and models the FPGA baseline on the same instance.
func (s *System) RunBenchmark(b workloads.Benchmark) (*BenchResult, error) {
	return s.RunBenchmarkOpts(b, nil, sim.Options{})
}

// RunBenchmarkOpts is RunBenchmark under a fault plan and simulator
// options. Faults degrade timing, never results: the functional check must
// still pass, or the run fails. A plan with timed mid-run events goes
// through the recovery controller (checkpoint, repair, resume); without
// events the flow is bit-identical to the plain simulation pipeline.
func (s *System) RunBenchmarkOpts(b workloads.Benchmark, plan *fault.Plan, opts sim.Options) (*BenchResult, error) {
	return s.RunBenchmarkCtx(context.Background(), b, plan, opts)
}

// RunBenchmarkCtx is RunBenchmarkOpts under a context: compilation checks
// ctx between passes and the simulator polls it periodically, so a parallel
// suite can abandon in-flight work when a sibling fails or the user
// interrupts.
func (s *System) RunBenchmarkCtx(ctx context.Context, b workloads.Benchmark, plan *fault.Plan, opts sim.Options) (*BenchResult, error) {
	endCompile := metrics.StartPhase(ctx, "compile")
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name(), err)
	}
	m, err := compiler.CompileOpts(ctx, p, compiler.Options{Params: s.Params, Faults: plan})
	endCompile()
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name(), err)
	}
	endSim := metrics.StartPhase(ctx, "sim")
	opts.Recovery = true
	res, st, err := sim.Simulate(ctx, m, opts)
	endSim()
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name(), err)
	}
	endCheck := metrics.StartPhase(ctx, "check")
	err = b.Check(st)
	endCheck()
	if err != nil {
		return nil, fmt.Errorf("core: %s: functional check failed: %w", b.Name(), err)
	}
	prof := b.Profile()
	w := fpga.Workload{
		Flops:           prof.Flops,
		DenseBytes:      prof.DenseBytes,
		SparseAccesses:  prof.SparseAccesses,
		OpsPerLane:      prof.OpsPerLane,
		HeavyOpsPerLane: prof.HeavyOpsPerLane,
		SeqIters:        prof.SeqIters,
		PipeDepth:       prof.PipeDepth,
		SeqChildren:     prof.SeqChildren,
		LogicUtil:       prof.FPGALogicUtil,
		MemUtil:         prof.FPGAMemUtil,
	}
	fpgaTime := s.FPGA.Runtime(w)
	fpgaPower := s.FPGA.Power(w)
	r := &BenchResult{
		Name:         b.Name(),
		Passes:       m.Passes,
		Cycles:       res.Cycles,
		TimeSec:      res.Seconds,
		PowerW:       res.PowerW,
		Util:         res.Util,
		DRAMReadMB:   float64(res.DRAM.BytesRead) / 1e6,
		DRAMWriteMB:  float64(res.DRAM.BytesWritten) / 1e6,
		FPGATimeSec:  fpgaTime,
		FPGAPowerW:   fpgaPower,
		PaperSpeedup: prof.PaperSpeedup,
		PaperPerfW:   prof.PaperPerfWatt,

		Retries:          res.DRAM.Retries,
		RetriesExhausted: res.DRAM.RetriesExhausted,
		LatencySpikes:    res.DRAM.LatencySpikes,
		Recovery:         res.Recovery,
		SimWallSec:       res.WallTime.Seconds(),
	}
	if res.Seconds > 0 {
		r.Speedup = fpgaTime / res.Seconds
	}
	if r.PowerW > 0 && fpgaPower > 0 {
		// Perf/W ratio = speedup * (FPGA power / Plasticine power).
		r.PerfPerWatt = r.Speedup * fpgaPower / r.PowerW
	}
	return r, nil
}

// Table7 runs all thirteen benchmarks and returns their rows in paper
// order.
func (s *System) Table7() ([]*BenchResult, error) {
	var out []*BenchResult
	for _, b := range workloads.All() {
		r, err := s.RunBenchmark(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatTable7 renders Table 7 rows in the paper's layout.
func FormatTable7(rows []*BenchResult) string {
	t := stats.New("Table 7: utilization, power, performance vs Stratix V FPGA",
		"Benchmark", "PCU%", "PMU%", "AG%", "FU%", "Plast W", "FPGA W",
		"Plast us", "FPGA us", "Speedup", "Perf/W", "Paper spd", "Paper p/w")
	for _, r := range rows {
		t.Add(r.Name,
			stats.Pct(r.Util.PCUFrac), stats.Pct(r.Util.PMUFrac), stats.Pct(r.Util.AGFrac),
			stats.Pct(r.Util.FUFrac),
			stats.F(r.PowerW), stats.F(r.FPGAPowerW),
			stats.F(r.TimeSec*1e6), stats.F(r.FPGATimeSec*1e6),
			stats.F(r.Speedup)+"x", stats.F(r.PerfPerWatt)+"x",
			stats.F(r.PaperSpeedup)+"x", stats.F(r.PaperPerfW)+"x")
	}
	return t.String()
}

// Table7JSON serialises benchmark rows for external tooling.
func Table7JSON(rows []*BenchResult) ([]byte, error) {
	return json.MarshalIndent(rows, "", "  ")
}

// Table7CSV renders rows as CSV.
func Table7CSV(rows []*BenchResult) string {
	t := stats.New("", "benchmark", "cycles", "plasticine_us", "plasticine_w",
		"fpga_us", "fpga_w", "speedup", "perf_per_watt", "paper_speedup", "paper_perf_per_watt",
		"pcu_util", "pmu_util", "ag_util", "fu_util")
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprint(r.Cycles),
			fmt.Sprintf("%.3f", r.TimeSec*1e6), fmt.Sprintf("%.2f", r.PowerW),
			fmt.Sprintf("%.3f", r.FPGATimeSec*1e6), fmt.Sprintf("%.2f", r.FPGAPowerW),
			fmt.Sprintf("%.3f", r.Speedup), fmt.Sprintf("%.3f", r.PerfPerWatt),
			fmt.Sprintf("%.1f", r.PaperSpeedup), fmt.Sprintf("%.1f", r.PaperPerfW),
			fmt.Sprintf("%.4f", r.Util.PCUFrac), fmt.Sprintf("%.4f", r.Util.PMUFrac),
			fmt.Sprintf("%.4f", r.Util.AGFrac), fmt.Sprintf("%.4f", r.Util.FUFrac))
	}
	return t.CSV()
}

// Table5 returns the area breakdown of the current parameters.
func (s *System) Table5() arch.AreaBreakdown { return arch.Area(s.Params) }

// FormatTable5 renders the area breakdown in the paper's layout.
func FormatTable5(a arch.AreaBreakdown) string {
	t := stats.New("Table 5: Plasticine area breakdown (mm^2, 28 nm)",
		"Component", "Area", "Share")
	add := func(name string, area, of float64) {
		t.Add(name, stats.F(area), stats.Pct(area/of))
	}
	chip := a.ChipTotal()
	pcu, pmu := a.PCUTotal(), a.PMUTotal()
	add("PCU.FUs", a.PCUFUs, pcu)
	add("PCU.Registers", a.PCURegisters, pcu)
	add("PCU.FIFOs", a.PCUFIFOs, pcu)
	add("PCU.Control", a.PCUControl, pcu)
	add("PCU total (x1)", pcu, chip/float64(a.NumPCUs))
	add("PMU.Scratchpad", a.PMUScratchpad, pmu)
	add("PMU.FIFOs", a.PMUFIFOs, pmu)
	add("PMU.Registers", a.PMURegisters, pmu)
	add("PMU.FUs", a.PMUFUs, pmu)
	add("PMU total (x1)", pmu, chip/float64(a.NumPMUs))
	add("Interconnect", a.Interconnect, chip)
	add("Memory controller", a.MemoryController, chip)
	t.Add("Chip total", stats.F(chip), "100%")
	return t.String()
}
