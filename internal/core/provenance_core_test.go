package core

import (
	"strings"
	"testing"

	"plasticine/internal/compiler"
	"plasticine/internal/fault"
	"plasticine/internal/sim"
	"plasticine/internal/workloads"
)

// provenanceBenches are the Table 4 benchmarks the provenance goldens run
// over: the acceptance set for source-level profiling.
func provenanceBenches() []workloads.Benchmark {
	return []workloads.Benchmark{
		workloads.NewInnerProduct(),
		workloads.NewBlackScholes(),
		workloads.NewTPCHQ6(),
		workloads.NewOuterProduct(),
	}
}

// TestMappingProvenanceGolden: every unit in a compiled benchmark's mapping
// carries non-empty provenance — no orphans after allocation, partitioning,
// placement, or a mid-run Repair.
func TestMappingProvenanceGolden(t *testing.T) {
	sys := New()
	for _, b := range provenanceBenches() {
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		assertNoOrphans := func(stage string) {
			t.Helper()
			for _, nd := range m.Netlist.Nodes {
				if nd.Origin == "" {
					t.Errorf("%s: %s: node %s has empty provenance", b.Name(), stage, nd.Name)
				}
			}
			for _, pc := range m.Part.PCUs {
				if pc.V.Origin == "" {
					t.Errorf("%s: %s: partitioned PCU %s has empty provenance", b.Name(), stage, pc.V.Name)
				}
			}
			for _, pm := range m.Part.PMUs {
				if pm.V.Origin == "" {
					t.Errorf("%s: %s: partitioned PMU %s has empty provenance", b.Name(), stage, pm.V.Name)
				}
			}
			for _, ag := range m.Virtual.AGs {
				if ag.Origin == "" {
					t.Errorf("%s: %s: AG %s has empty provenance", b.Name(), stage, ag.Name)
				}
			}
		}
		assertNoOrphans("compile")

		// Kill the first occupied PCU tile; repair must preserve provenance.
		var victim *compiler.Node
		for _, nd := range m.Netlist.Nodes {
			if nd.Kind == compiler.NodePCU {
				victim = nd
				break
			}
		}
		if victim == nil {
			t.Fatalf("%s: no PCU node to kill", b.Name())
		}
		plan := fault.ManualPlan([]fault.Coord{{X: victim.X, Y: victim.Y}}, nil, nil, nil)
		if _, err := compiler.Repair(m, plan); err != nil {
			t.Fatalf("%s: repair: %v", b.Name(), err)
		}
		assertNoOrphans("repair")
	}
}

// TestPatternRollupSumsToMakespan is the acceptance criterion: on the
// annotated Table 4 benchmarks, the per-pattern profile's cycles sum exactly
// to the simulated makespan, and every traced unit resolves to a
// source-level origin.
func TestPatternRollupSumsToMakespan(t *testing.T) {
	sys := New()
	for _, b := range provenanceBenches() {
		p, err := sys.ProfileBenchmark(b, nil, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pr := p.Pattern
		if pr.TotalCycles != p.Bench.Cycles {
			t.Errorf("%s: pattern report total %d != run cycles %d", b.Name(), pr.TotalCycles, p.Bench.Cycles)
		}
		if got := pr.AttributedTotal(); got != pr.TotalCycles {
			t.Errorf("%s: attributed %d cycles, want exactly the makespan %d", b.Name(), got, pr.TotalCycles)
		}
		if len(pr.Rows) == 0 {
			t.Fatalf("%s: pattern report has no rows", b.Name())
		}
		sourceLevel := 0
		for i := range pr.Rows {
			r := &pr.Rows[i]
			if r.Origin == "" {
				t.Errorf("%s: row %d has empty origin", b.Name(), i)
			}
			if strings.Contains(r.Origin, "/") {
				sourceLevel++
			}
			if r.AttrBusy+r.AttrStall != r.Attributed {
				t.Errorf("%s: %s: busy %d + stall %d != attributed %d",
					b.Name(), r.Origin, r.AttrBusy, r.AttrStall, r.Attributed)
			}
		}
		if sourceLevel == 0 {
			t.Errorf("%s: no row carries a source-level (pattern) origin", b.Name())
		}
		for i := range p.Report.Units {
			if p.Report.Units[i].Origin == "" {
				t.Errorf("%s: unit %s has empty origin", b.Name(), p.Report.Units[i].Name)
			}
		}
		// Round trip (PR 3 invariant -> PR 4 rollup): group aggregates equal
		// the sums over member unit profiles.
		var unitBusy, rowBusy int64
		for i := range p.Report.Units {
			unitBusy += p.Report.Units[i].Busy
		}
		for i := range pr.Rows {
			rowBusy += pr.Rows[i].Busy
		}
		if unitBusy != rowBusy {
			t.Errorf("%s: per-pattern busy aggregate %d != per-unit total %d", b.Name(), rowBusy, unitBusy)
		}
	}
}

// TestProfileByPatternRendering: the rendered table names pattern nodes and
// states the exact-sum identity.
func TestProfileByPatternRendering(t *testing.T) {
	p, err := New().ProfileBenchmark(workloads.NewInnerProduct(), nil, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := FormatPatternProfile(p.Pattern)
	for _, want := range []string{"Fold/load:a", "Fold/F", "(idle)", "makespan"} {
		if !strings.Contains(s, want) {
			t.Errorf("pattern profile lacks %q:\n%s", want, s)
		}
	}
}

// TestProfileCarriesCompilePasses: a profiled run exposes the compile pass
// trace and ships it on the Chrome trace's compiler track.
func TestProfileCarriesCompilePasses(t *testing.T) {
	p, err := New().ProfileBenchmark(workloads.NewInnerProduct(), nil, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Passes == nil || len(p.Passes.Entries) == 0 {
		t.Fatal("profiled run has no compile pass trace")
	}
	data, err := p.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"compiler"`, `"allocate"`, `"route"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace lacks %s on the compiler track", want)
		}
	}
}
