package sim

import (
	"context"
	"errors"
	"testing"
)

// transienter mirrors exec.Transienter without importing it (sim must not
// depend on exec).
type transienter interface{ Transient() bool }

func TestWatchdogErrorTransientClassification(t *testing.T) {
	cases := []struct {
		name  string
		cause error
		want  bool
	}{
		{"budget-exhausted", ErrBudget, false},
		{"stall-or-deadlock", nil, false},
		{"canceled-run", context.Canceled, true},
		{"deadline-expired-run", context.DeadlineExceeded, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := error(&WatchdogError{Reason: tc.name, Cause: tc.cause})
			var tr transienter
			if !errors.As(err, &tr) {
				t.Fatal("WatchdogError does not classify itself")
			}
			if got := tr.Transient(); got != tc.want {
				t.Fatalf("Transient() = %t, want %t", got, tc.want)
			}
			// Classification must not break the sentinel contract.
			if !errors.Is(err, ErrWatchdog) {
				t.Fatal("errors.Is(err, ErrWatchdog) = false")
			}
			if tc.cause != nil && !errors.Is(err, tc.cause) {
				t.Fatalf("errors.Is(err, %v) = false", tc.cause)
			}
		})
	}
}
