package sim

import (
	"context"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/workloads"
)

func benchEngine(b *testing.B, kind EngineKind) {
	for i := 0; i < b.N; i++ {
		w, _ := workloads.ByName("InnerProduct")
		prog, err := w.Build()
		if err != nil {
			b.Fatal(err)
		}
		m, err := compiler.Compile(prog, arch.Default())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		res, _, err := Simulate(context.Background(), m, Options{Engine: kind})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles)/res.WallTime.Seconds(), "cyc/s")
	}
}

func BenchmarkEngineEventIP(b *testing.B) { benchEngine(b, EngineEvent) }
func BenchmarkEngineCycleIP(b *testing.B) { benchEngine(b, EngineCycle) }
