package sim

import (
	"fmt"
	"sort"

	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/trace"
)

// This file is the bridge between the engine and the observability subsystem
// (internal/trace). Nothing here runs inside the per-cycle loop: when a run
// finishes, the resolved activity graph is replayed once into the Recorder —
// per-unit slices with stall attribution, link traffic, DRAM channel counters
// and fabric-wide recovery windows. Cost is O(activities + routes), so even
// an armed Recorder leaves simulation speed essentially untouched; a nil
// Recorder skips everything.

// depCause maps a dependency edge to the stall cause a unit waiting behind
// it reports, following the paper's control protocols (Section 3.5):
// N-buffer write-after-read credits are output backpressure, waiting on a
// transfer is a DRAM wait, a sequential token barrier is a pipeline drain,
// and waiting on an upstream compute is input starvation.
func depCause(d dep) trace.StallCause {
	if d.war {
		return trace.CauseOutputBackpressure
	}
	switch d.on.kind {
	case actTransfer:
		return trace.CauseDRAMWait
	case actBarrier:
		return trace.CauseDrain
	}
	return trace.CauseInputStarved
}

// gapCause attributes the idle gap before an activity's start to its binding
// dependency — the edge whose gate released last. When nothing gates the
// activity the gap is plain idleness.
func gapCause(a *activity) trace.StallCause {
	cause := trace.CauseNone
	best := int64(-1)
	for i := range a.deps {
		if t := a.deps[i].gateTime(); t > best {
			best = t
			cause = depCause(a.deps[i])
		}
	}
	return cause
}

// busyOf is the useful-work portion of a resolved activity's interval:
// computes and barriers occupy their unit for the whole interval; a transfer
// is busy only on cycles its AG issued or landed bursts (plus the command
// fill), the remainder being DRAM wait.
func busyOf(a *activity) int64 {
	span := a.end - a.start
	if a.kind != actTransfer || len(a.bursts) == 0 {
		return span
	}
	busy := a.busy + a.fill
	if busy > span {
		busy = span
	}
	return busy
}

func linkKey(a, b [2]int) string {
	return fmt.Sprintf("%d,%d>%d,%d", a[0], a[1], b[0], b[1])
}

// emitTrace replays a finished run into the engine's Recorder. windows are
// fabric-wide recovery stalls (drain + reconfig per survived fault); pass nil
// for uninterrupted runs. No-op without a Recorder.
func (e *engine) emitTrace(m *compiler.Mapping, windows []trace.Window) {
	if e.rec == nil {
		return
	}
	rec := e.rec
	for i, u := range e.units {
		rec.RegisterUnit(i, u.name, u.origin, u.kind)
	}

	byUnit := make([][]*activity, len(e.units))
	for _, a := range e.acts {
		if a.unit < 0 || a.unit >= len(byUnit) || !a.resolved {
			continue
		}
		byUnit[a.unit] = append(byUnit[a.unit], a)
	}
	for u, acts := range byUnit {
		sort.Slice(acts, func(i, j int) bool { return acts[i].start < acts[j].start })
		for _, a := range acts {
			rec.Slice(u, actLabel(a), a.start, a.end, busyOf(a), gapCause(a))
			if a.hiWater > 0 {
				rec.FIFOHighWater(u, int(a.hiWater))
			}
		}
	}

	// Network links: every statically routed link, with the DRAM traffic that
	// crossed it. Each transfer leaf's bytes ride every link of every route
	// touching its AG node (the command and response path through the
	// switches); link bandwidth is one vector (Lanes x 4 bytes) per cycle.
	if m != nil && m.Netlist != nil && m.Routes != nil {
		bytesOf := map[*dhdl.Controller]int64{}
		for _, a := range e.acts {
			if a.kind == actTransfer && a.leaf != nil {
				bytesOf[a.leaf] += int64(len(a.bursts)) * burstBytes
			}
		}
		agOf := map[int]int64{} // AG node index -> bytes
		for leaf, total := range bytesOf {
			if idx, ok := m.Netlist.AGNode[leaf]; ok {
				agOf[idx] += total
			}
		}
		linkBytes := map[string]int64{}
		for _, rt := range m.Routes.Routes {
			bytes := agOf[rt.From] + agOf[rt.To]
			if bytes == 0 {
				continue
			}
			for h := 0; h+1 < len(rt.Hops); h++ {
				linkBytes[linkKey(rt.Hops[h], rt.Hops[h+1])] += bytes
			}
		}
		bpc := float64(m.Params.PCU.Lanes) * 4
		for key, n := range m.Routes.LinkUse {
			rec.Link(key, n, linkBytes[key], bpc)
		}
	}

	if e.dram != nil {
		for ci, cs := range e.dram.ChannelStats() {
			rec.DRAMChannel(ci, trace.DRAMChannelCounters{
				Reads: cs.Reads, Writes: cs.Writes,
				RowHits: cs.RowHits, RowMisses: cs.RowMisses,
				RowConflicts: cs.RowConflicts, Retries: cs.Retries,
				MaxQueueOcc: cs.MaxQueueOcc,
			})
		}
	}

	for _, w := range windows {
		rec.Window(w.Cause, w.From, w.To)
	}
	rec.Finish(e.makespan)
}

// recoveryWindows derives the fabric-wide stall intervals from a run's
// survived faults: a drain window while outstanding bursts land, then a
// reconfig window while new configurations stream in.
func recoveryWindows(rs *RecoveryStats) []trace.Window {
	if rs == nil {
		return nil
	}
	var out []trace.Window
	for _, re := range rs.Events {
		out = append(out,
			trace.Window{Cause: trace.CauseDrain, From: re.At, To: re.At + re.DrainCycles},
			trace.Window{Cause: trace.CauseReconfig, From: re.At + re.DrainCycles,
				To: re.At + re.DrainCycles + re.ReconfigCycles})
	}
	return out
}
