package sim

import (
	"math"
	"reflect"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
	"plasticine/internal/pattern"
)

// recoverySetup compiles the shared dot-product fixture under a fault plan
// (fresh program and bindings per call: the functional trace consumes them).
func recoverySetup(t *testing.T, plan *fault.Plan) (*compiler.Mapping, *dhdl.Reg, float64) {
	t.Helper()
	n, tile := 16384, 1024
	b := dhdl.NewBuilder("dot", dhdl.Sequential)
	a := b.DRAMF32("a", n)
	bv := b.DRAMF32("b", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	tb := b.SRAM("tb", pattern.F32, tile)
	partial := b.Reg("partial", pattern.VF(0))
	total := b.Reg("total", pattern.VF(0))
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStep(0, n, tile)}, func(ix []dhdl.Expr) {
		b.Load("loadA", a, ix[0], ta, tile)
		b.Load("loadB", bv, ix[0], tb, tile)
		b.Compute("mac", []dhdl.Counter{dhdl.CPar(tile, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add, dhdl.Mul(dhdl.Ld(ta, jx[0]), dhdl.Ld(tb, jx[0])))}
		})
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	})
	p := b.MustBuild()
	av, bvv := make([]float32, n), make([]float32, n)
	var want float64
	for i := range av {
		av[i] = float32(i%7) * 0.25
		bvv[i] = float32(i%5) - 2
		want += float64(av[i]) * float64(bvv[i])
	}
	if err := a.Bind(pattern.FromF32("a", av)); err != nil {
		t.Fatal(err)
	}
	if err := bv.Bind(pattern.FromF32("b", bvv)); err != nil {
		t.Fatal(err)
	}
	m, err := compiler.CompileWithFaults(p, arch.Default(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return m, total, want
}

func checkDot(t *testing.T, st *dhdl.State, total *dhdl.Reg, want float64) {
	t.Helper()
	got := float64(st.RegValue(total).F)
	if math.Abs(got-want) > 1e-2*math.Abs(want)+1e-3 {
		t.Errorf("dot = %g, want %g (recovery corrupted the computation)", got, want)
	}
}

// TestRecoveryZeroEventsMatchesRunOpts: with no timed events, the recovery
// controller must be bit-identical to the plain pipeline.
func TestRecoveryZeroEventsMatchesRunOpts(t *testing.T) {
	plan, err := fault.NewPlan(fault.Spec{Seed: 5, PCUs: 2, PMUs: 2}, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	m1, total1, want := recoverySetup(t, plan)
	r1, st1, err := RunOpts(m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDot(t, st1, total1, want)

	plan2, err := fault.NewPlan(fault.Spec{Seed: 5, PCUs: 2, PMUs: 2}, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	m2, total2, _ := recoverySetup(t, plan2)
	r2, st2, err := RunWithRecovery(m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDot(t, st2, total2, want)
	if r2.Recovery != nil {
		t.Error("zero-event run reports recovery stats")
	}
	if r1.Cycles != r2.Cycles || r1.DRAM != r2.DRAM {
		t.Errorf("zero-event recovery diverges from RunOpts: %d vs %d cycles, DRAM\n%+v\n%+v",
			r2.Cycles, r1.Cycles, r2.DRAM, r1.DRAM)
	}
}

// pristineCycles runs the fixture fault-free.
func pristineCycles(t *testing.T) int64 {
	t.Helper()
	m, total, want := recoverySetup(t, nil)
	r, st, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	checkDot(t, st, total, want)
	return r.Cycles
}

// occupiedPCUTile compiles once pristine to learn a tile some PCU occupies;
// a zero-fault compile is deterministic, so the same tile is occupied again.
func occupiedPCUTile(t *testing.T) fault.Coord {
	t.Helper()
	m, _, _ := recoverySetup(t, nil)
	for _, nd := range m.Netlist.Nodes {
		if nd.Kind == compiler.NodePCU {
			return fault.Coord{X: nd.X, Y: nd.Y}
		}
	}
	t.Fatal("fixture maps no PCUs")
	return fault.Coord{}
}

func TestRecoverySurvivesPCUKill(t *testing.T) {
	base := pristineCycles(t)
	victim := occupiedPCUTile(t)
	plan := fault.ManualPlan(nil, nil, nil, nil)
	if err := plan.AddEvent(fault.Event{Kind: fault.KillPCU, Cycle: 500, Victim: victim}); err != nil {
		t.Fatal(err)
	}
	m, total, want := recoverySetup(t, plan)
	r, st, err := RunWithRecovery(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDot(t, st, total, want)
	if r.Recovery == nil || len(r.Recovery.Events) != 1 {
		t.Fatalf("want exactly one survived event, got %+v", r.Recovery)
	}
	re := r.Recovery.Events[0]
	if re.At < 500 {
		t.Errorf("event fired at cycle %d, scheduled for 500", re.At)
	}
	if re.CheckpointBytes == 0 {
		t.Error("no checkpoint was emitted")
	}
	if re.MovedPCUs < 1 {
		t.Errorf("killing an occupied PCU tile moved %d PCUs, want >= 1", re.MovedPCUs)
	}
	if re.ReconfigCycles <= 0 {
		t.Errorf("reconfiguration charged %d cycles, want > 0 after a unit move", re.ReconfigCycles)
	}
	// The stall can overlap schedule slack, so pristine + stall is not a
	// strict floor; but the run cannot be faster than pristine, and the
	// resumed tail cannot end before the stall itself does.
	if r.Cycles < base {
		t.Errorf("recovered run took %d cycles, faster than pristine %d", r.Cycles, base)
	}
	if r.Cycles < re.At+re.DrainCycles+re.ReconfigCycles {
		t.Errorf("makespan %d ends before the recovery stall (%d + %d + %d) finished",
			r.Cycles, re.At, re.DrainCycles, re.ReconfigCycles)
	}
}

func TestRecoverySurvivesChannelKill(t *testing.T) {
	base := pristineCycles(t)
	plan, err := fault.NewPlan(fault.Spec{Seed: 2,
		Events: []fault.EventSpec{{Kind: fault.KillChan, Cycle: 300}}}, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, total, want := recoverySetup(t, plan)
	r, st, err := RunWithRecovery(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDot(t, st, total, want)
	if r.Recovery == nil || len(r.Recovery.Events) != 1 {
		t.Fatalf("want exactly one survived event, got %+v", r.Recovery)
	}
	re := r.Recovery.Events[0]
	if re.LostBursts == 0 {
		t.Error("killing a channel mid-stream lost no bursts; expected queued work to drop")
	}
	if re.MovedPCUs != 0 || re.ReconfigCycles != 0 {
		t.Errorf("memory fault charged fabric reconfiguration: %+v", re)
	}
	if r.Cycles <= base {
		t.Errorf("3-channel run with mid-stream kill took %d cycles, pristine 4-channel %d; want slower", r.Cycles, base)
	}
}

// TestRecoveryDeterministic: a fixed event spec yields a byte-identical
// final Result across runs.
func TestRecoveryDeterministic(t *testing.T) {
	run := func() *Result {
		plan, err := fault.NewPlan(fault.Spec{Seed: 9, Events: []fault.EventSpec{
			{Kind: fault.KillPCU, Cycle: 400},
			{Kind: fault.KillChan, Cycle: 900},
		}}, arch.Default())
		if err != nil {
			t.Fatal(err)
		}
		m, total, want := recoverySetup(t, plan)
		r, st, err := RunWithRecovery(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkDot(t, st, total, want)
		r.WallTime = 0 // host time is the only non-deterministic field
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same event spec produced different results:\n%+v\n%+v", a, b)
	}
}

// TestRecoveryMultiEventOrdering: both events fire, in order, and overhead
// totals equal the per-event sums.
func TestRecoveryMultiEventOrdering(t *testing.T) {
	plan, err := fault.NewPlan(fault.Spec{Seed: 13, Events: []fault.EventSpec{
		{Kind: fault.KillPMU, Cycle: 800},
		{Kind: fault.KillPCU, Cycle: 350},
	}}, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, total, want := recoverySetup(t, plan)
	r, st, err := RunWithRecovery(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkDot(t, st, total, want)
	if r.Recovery == nil || len(r.Recovery.Events) != 2 {
		t.Fatalf("want two survived events, got %+v", r.Recovery)
	}
	if r.Recovery.Events[0].At > r.Recovery.Events[1].At {
		t.Errorf("events fired out of order: %+v", r.Recovery.Events)
	}
	var drain, reconf int64
	for _, re := range r.Recovery.Events {
		drain += re.DrainCycles
		reconf += re.ReconfigCycles
	}
	if drain != r.Recovery.DrainCycles || reconf != r.Recovery.ReconfigCycles {
		t.Errorf("totals %d/%d do not match per-event sums %d/%d",
			r.Recovery.DrainCycles, r.Recovery.ReconfigCycles, drain, reconf)
	}
}
