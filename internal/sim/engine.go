package sim

import (
	"container/heap"
	"context"
	"fmt"

	"plasticine/internal/dram"
	"plasticine/internal/trace"
)

// ctxCheckInterval is how often (in simulated cycles) the engine polls its
// context for cancellation. Checking every cycle would put an atomic load in
// the hottest loop; every 4096 cycles bounds cancellation latency to a few
// microseconds of host time while costing nothing measurable.
const ctxCheckInterval = 4096

// agOutstanding is the number of in-flight bursts one transfer's address
// generator may keep in the coalescing unit (Section 3.4: buffers for
// multiple outstanding memory requests).
const agOutstanding = 32

// agIssueWidth is bursts an AG can enqueue per cycle.
const agIssueWidth = 1

// rxState is the event-driven core's view of one running transfer. The
// legacy cycle loop scans every running transfer every cycle; the event
// core instead keeps only actionable transfers in the active list and
// parks the rest until the event that could unblock them fires.
type rxState uint8

const (
	rxActive  rxState = iota // may issue a burst this cycle (in engine.active)
	rxSat                    // AG FIFO full; woken by a burst completion
	rxDone                   // all bursts issued; retires when they land
	rxBlocked                // Submit rejected; woken when its channel frees
)

// runningXfer tracks an in-flight transfer activity.
type runningXfer struct {
	act       *activity
	nextBurst int
	inFlight  int
	completed int
	// requeue holds burst indices whose requests were dropped by a mid-run
	// fault (e.g. a killed DRAM channel) and must be reissued. act.bursts is
	// never mutated, so the graph fingerprint stays valid across recovery.
	requeue []int

	// Event-core bookkeeping (untouched by the legacy cycle loop). seq is
	// the admission order — the legacy engine attempts transfers in running-
	// list order every cycle, so the event core's issue pass must scan its
	// active subset in exactly that order. accountedThrough supports the
	// parked-transfer virtual stall accounting (see settleParked): the last
	// cycle whose would-be rejected submission has been added to the DRAM
	// stall counters. blockedDown/blockedChan record why/where a blocked
	// transfer parked.
	seq              int64
	state            rxState
	accountedThrough int64
	blockedDown      bool
	blockedChan      int

	// done is the transfer's completion callback (see engine.burstDone),
	// built once at admission so issuing a burst allocates no closure.
	done func(now int64)

	// Observability (tracked only when a trace.Recorder is armed): cycles on
	// which the AG issued or landed at least one burst, deduplicated through
	// lastBusy, plus the outstanding-burst FIFO's occupancy peak.
	busy     int64
	lastBusy int64
	hiWater  int
}

// markBusy counts the current cycle as busy, at most once per cycle.
func (rx *runningXfer) markBusy(now int64) {
	if now != rx.lastBusy {
		rx.busy++
		rx.lastBusy = now
	}
}

type startHeap []*activity

func (h startHeap) Len() int           { return len(h) }
func (h startHeap) Less(i, j int) bool { return h[i].start < h[j].start }
func (h startHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *startHeap) Push(x any)        { *h = append(*h, x.(*activity)) }
func (h *startHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// burstTag packs an activity id and burst index into a dram.Request tag, so
// checkpoint restore and lost-work accounting can identify any in-flight
// burst without serializing closures.
func burstTag(actID, burst int) int64 { return int64(actID)<<32 | int64(uint32(burst)) }

func splitTag(tag int64) (actID, burst int) { return int(tag >> 32), int(uint32(tag)) }

// engine resolves the activity graph against the DRAM model.
type engine struct {
	acts  []*activity
	dram  *dram.DRAM
	clock int64

	// mode selects the scheduling core: EngineEvent (default) skips between
	// state-changing cycles, EngineCycle is the legacy cycle-by-cycle
	// reference loop. Both produce byte-identical results; the cycle loop is
	// kept as the regression oracle (see the golden differential tests).
	mode EngineKind

	// Observability: units is the builder's physical-unit registry; rec, when
	// non-nil, arms the per-transfer busy/high-water counters. Everything
	// else the Recorder needs is replayed from the resolved graph after the
	// run (see emitTrace), so a nil rec leaves the hot loop unchanged.
	units []simUnit
	rec   trace.Recorder

	// Watchdog: maxCycles is the total cycle budget (0 = unlimited);
	// stallWindow aborts when no forward progress happens for that many
	// cycles (0 = the defaultStallWindow; negative disables).
	maxCycles   int64
	stallWindow int64

	// Cancellation: ctx is polled every ctxCheckInterval cycles (nil = never);
	// a canceled run aborts with a WatchdogError whose Cause is the context
	// error, so parallel sweeps can stop in-flight simulations early.
	ctx          context.Context
	nextCtxCheck int64

	ready   []*activity // deps satisfied, not yet resolved
	waiting startHeap   // transfers with known start, awaiting clock
	running []*runningXfer

	bursts int64 // completed bursts (watchdog progress signal)

	// Run state, held in fields (not loop locals) so a run can pause at a
	// fault event, be checkpointed, and resume.
	started        bool
	resolvedCount  int
	makespan       int64
	lastResolved   int
	lastBursts     int64
	lastProgressAt int64

	// Event-core state (unused by the legacy cycle loop). active is the
	// subset of running transfers that may issue a burst next cycle, kept in
	// admission (seq) order; activeDirty marks out-of-order wakeups that
	// require a re-sort. parked maps a DRAM channel index (-1 = every
	// channel down) to the transfers blocked on it. retireNeeded is set by
	// the completion callback when a transfer lands its last burst, so the
	// O(running) retire scan only runs on cycles where something can retire.
	nextSeq      int64
	active       []*runningXfer
	activeDirty  bool
	parked       map[int][]*runningXfer
	retireNeeded bool
	steps        int64 // event-loop iterations (events-per-cycle metric)

	insts *simInstruments // nil unless UseMetrics armed a registry
}

// start seeds the ready list; idempotent across runUntil calls.
func (e *engine) start() {
	if e.started {
		return
	}
	e.started = true
	for _, a := range e.acts {
		if a.nDepsLeft == 0 {
			e.ready = append(e.ready, a)
		}
	}
}

func (e *engine) resolve(a *activity, start, end int64) {
	a.start, a.end = start, end
	a.resolved = true
	e.resolvedCount++
	if end > e.makespan {
		e.makespan = end
	}
	for _, d := range a.dependents {
		d.nDepsLeft--
		if d.nDepsLeft == 0 {
			e.ready = append(e.ready, d)
		}
	}
}

func (e *engine) drainReady() {
	for len(e.ready) > 0 {
		a := e.ready[len(e.ready)-1]
		e.ready = e.ready[:len(e.ready)-1]
		start := int64(0)
		for _, d := range a.deps {
			if t := d.gateTime(); t > start {
				start = t
			}
		}
		switch a.kind {
		case actBarrier:
			e.resolve(a, start, start)
		case actCompute:
			e.resolve(a, start, start+a.dur)
		case actTransfer:
			if len(a.bursts) == 0 {
				e.resolve(a, start, start+a.fill)
				continue
			}
			a.start = start
			heap.Push(&e.waiting, a)
		}
	}
}

// burstDone builds the completion callback for one transfer's bursts. Both
// engine modes and checkpoint restore share it, so a burst landing has
// identical effects everywhere. In event mode a completion additionally
// wakes a saturated AG and flags the retire scan when the transfer's last
// burst lands.
func (e *engine) burstDone(rx *runningXfer) func(now int64) {
	return func(now int64) {
		rx.inFlight--
		rx.completed++
		e.bursts++
		if e.rec != nil {
			rx.markBusy(now)
		}
		if e.mode == EngineEvent {
			if rx.state == rxSat {
				rx.state = rxActive
				e.active = append(e.active, rx)
				e.activeDirty = true
			}
			if rx.completed == len(rx.act.bursts) {
				e.retireNeeded = true
			}
		}
	}
}

// issueInto attempts one cycle's worth of burst submissions for one
// transfer (the legacy per-cycle AG sequence, verbatim): reissue fault-
// dropped bursts before advancing to new ones, stop at the outstanding cap
// or the first rejected submission.
func (e *engine) issueInto(rx *runningXfer) {
	for k := 0; k < agIssueWidth; k++ {
		if rx.inFlight >= agOutstanding {
			break
		}
		idx := -1
		if len(rx.requeue) > 0 {
			idx = rx.requeue[0]
		} else if rx.nextBurst < len(rx.act.bursts) {
			idx = rx.nextBurst
		} else {
			break
		}
		req := &dram.Request{Addr: rx.act.bursts[idx], Write: rx.act.write,
			Tag: burstTag(rx.act.id, idx), Done: rx.done}
		if !e.dram.Submit(req) {
			break // channel queue full; retry next cycle
		}
		if len(rx.requeue) > 0 {
			rx.requeue = rx.requeue[1:]
		} else {
			rx.nextBurst++
		}
		rx.inFlight++
		if e.rec != nil {
			rx.markBusy(e.clock)
			if rx.inFlight > rx.hiWater {
				rx.hiWater = rx.inFlight
			}
		}
	}
}

// issueBursts feeds each running transfer's AG, reissuing fault-dropped
// bursts before advancing to new ones.
func (e *engine) issueBursts() {
	for _, rx := range e.running {
		e.issueInto(rx)
	}
}

// retire resolves transfers whose bursts have all completed.
func (e *engine) retire() {
	kept := e.running[:0]
	for _, rx := range e.running {
		if rx.completed == len(rx.act.bursts) {
			rx.act.busy, rx.act.hiWater = rx.busy, int32(rx.hiWater)
			e.resolve(rx.act, rx.act.start, e.clock+rx.act.fill)
		} else {
			kept = append(kept, rx)
		}
	}
	e.running = kept
}

// checkWatchdog enforces the cycle budget and the stall detector.
func (e *engine) checkWatchdog() error {
	stallWindow := e.stallWindow
	if stallWindow == 0 {
		stallWindow = defaultStallWindow
	}
	if e.resolvedCount != e.lastResolved || e.bursts != e.lastBursts {
		e.lastResolved, e.lastBursts = e.resolvedCount, e.bursts
		e.lastProgressAt = e.clock
	}
	if e.ctx != nil && e.clock >= e.nextCtxCheck {
		e.nextCtxCheck = e.clock + ctxCheckInterval
		if err := e.ctx.Err(); err != nil {
			w := e.diagnostic("run canceled")
			w.Cause = err
			return w
		}
	}
	if e.maxCycles > 0 && e.clock >= e.maxCycles {
		w := e.diagnostic(fmt.Sprintf("cycle budget %d exhausted", e.maxCycles))
		w.Cause = ErrBudget
		return w
	}
	if stallWindow > 0 && e.clock-e.lastProgressAt >= stallWindow {
		// Event-time-aware progress: while the memory system still holds
		// scheduled work (a pending completion, a retrying burst, a queued
		// request), a future event is guaranteed — the wait is long, not
		// livelocked. This keeps a skip-ahead over a quiescent DRAM gap
		// (e.g. an injected latency spike or a deep retry backoff) from
		// being misclassified as a stall. Genuine livelock — every channel
		// down, nothing in flight — leaves the DRAM idle and still trips
		// here, at the same cycle and with the same classification as
		// before (Cause nil, Transient() false).
		if e.dram != nil && !e.dram.Idle() {
			e.lastProgressAt = e.clock
		} else {
			return e.diagnostic(fmt.Sprintf("no forward progress for %d cycles (livelock)", stallWindow))
		}
	}
	return nil
}

// runUntil advances the schedule until every activity resolves or the clock
// reaches stopAt (>= 0; pass a negative stopAt to run to completion). It
// returns true when the schedule finished. On a stop the engine is at a loop
// boundary — between cycles — which is exactly where a checkpoint or fault
// event may be applied.
func (e *engine) runUntil(stopAt int64) (bool, error) {
	if e.mode == EngineCycle {
		return e.runUntilCycle(stopAt)
	}
	return e.runUntilEvent(stopAt)
}

// runUntilCycle is the legacy cycle-by-cycle loop, kept verbatim as the
// reference oracle the event core is differentially tested against.
func (e *engine) runUntilCycle(stopAt int64) (bool, error) {
	e.start()
	e.drainReady()
	for len(e.waiting) > 0 || len(e.running) > 0 {
		if stopAt >= 0 && e.clock >= stopAt {
			return false, nil
		}
		// Admit transfers whose start time has arrived; if idle, jump (but
		// never past the stop point).
		if len(e.running) == 0 && len(e.waiting) > 0 && e.waiting[0].start > e.clock {
			jump := e.waiting[0].start
			if stopAt >= 0 && jump > stopAt {
				jump = stopAt
			}
			e.clock = jump
			e.lastProgressAt = e.clock // a jump is forward progress
			if stopAt >= 0 && e.clock >= stopAt {
				return false, nil
			}
		}
		for len(e.waiting) > 0 && e.waiting[0].start <= e.clock {
			a := heap.Pop(&e.waiting).(*activity)
			rx := &runningXfer{act: a, lastBusy: -1}
			rx.done = e.burstDone(rx)
			e.running = append(e.running, rx)
			e.lastProgressAt = e.clock // admission is forward progress
		}
		e.issueBursts()
		e.clock++
		e.dram.Tick(e.clock)
		if err := e.checkWatchdog(); err != nil {
			return false, err
		}
		e.retire()
		e.drainReady()
	}
	return true, nil
}

// run resolves every activity and returns the makespan in cycles.
func (e *engine) run() (int64, error) {
	if _, err := e.runUntil(-1); err != nil {
		return 0, err
	}
	if e.resolvedCount != len(e.acts) {
		return 0, e.diagnostic("deadlock (dependency cycle)")
	}
	return e.makespan, nil
}

// QuiesceState reports in-flight work at one instant: transfers mid-burst
// and per-channel DRAM queue occupancy. The watchdog's diagnostic dump and
// the checkpoint drain both derive from this one helper, so their numbers
// always agree.
type QuiesceState struct {
	Cycle      int64
	InFlight   []StuckTransfer
	DRAMQueues []int
}

// Quiescent reports whether nothing is mid-flight.
func (q QuiesceState) Quiescent() bool {
	for _, t := range q.InFlight {
		if t.InFlight > 0 {
			return false
		}
	}
	for _, n := range q.DRAMQueues {
		if n > 0 {
			return false
		}
	}
	return true
}

// quiesceState snapshots the engine's in-flight work.
func (e *engine) quiesceState() QuiesceState {
	q := QuiesceState{Cycle: e.clock}
	for _, rx := range e.running {
		q.InFlight = append(q.InFlight, StuckTransfer{
			Name:      actLabel(rx.act),
			Completed: rx.completed,
			Total:     len(rx.act.bursts),
			InFlight:  rx.inFlight,
		})
	}
	if e.dram != nil {
		q.DRAMQueues = e.dram.QueueOccupancy()
	}
	return q
}

// quiescent reports whether no burst is queued or in flight anywhere.
func (e *engine) quiescent() bool {
	for _, rx := range e.running {
		if rx.inFlight > 0 {
			return false
		}
	}
	return e.dram == nil || e.dram.Idle()
}

// drainInFlight ticks the memory system until every outstanding burst lands,
// admitting no new transfers and issuing no new bursts — the quiescence
// protocol run when a fault event fires. It returns the pre-drain state
// (identical to what a watchdog dump at the same instant would report) and
// the number of cycles the drain took; that cost is part of the recovery
// overhead. The watchdog stays armed, so a drain that cannot finish (e.g.
// every channel down) aborts instead of spinning.
func (e *engine) drainInFlight() (QuiesceState, int64, error) {
	if e.mode == EngineCycle {
		return e.drainInFlightCycle()
	}
	return e.drainInFlightEvent()
}

// drainInFlightCycle is the legacy per-cycle drain loop.
func (e *engine) drainInFlightCycle() (QuiesceState, int64, error) {
	q := e.quiesceState()
	from := e.clock
	for !e.quiescent() {
		e.clock++
		e.dram.Tick(e.clock)
		if err := e.checkWatchdog(); err != nil {
			return q, e.clock - from, err
		}
		e.retire()
	}
	// Transfers finishing exactly at the drain boundary retire here so the
	// checkpoint sees them resolved.
	e.retire()
	return q, e.clock - from, nil
}
