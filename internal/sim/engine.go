package sim

import (
	"container/heap"
	"fmt"

	"plasticine/internal/dram"
)

// agOutstanding is the number of in-flight bursts one transfer's address
// generator may keep in the coalescing unit (Section 3.4: buffers for
// multiple outstanding memory requests).
const agOutstanding = 32

// agIssueWidth is bursts an AG can enqueue per cycle.
const agIssueWidth = 1

// runningXfer tracks an in-flight transfer activity.
type runningXfer struct {
	act       *activity
	nextBurst int
	inFlight  int
	completed int
}

type startHeap []*activity

func (h startHeap) Len() int           { return len(h) }
func (h startHeap) Less(i, j int) bool { return h[i].start < h[j].start }
func (h startHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *startHeap) Push(x any)        { *h = append(*h, x.(*activity)) }
func (h *startHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// engine resolves the activity graph against the DRAM model.
type engine struct {
	acts  []*activity
	dram  *dram.DRAM
	clock int64

	// Watchdog: maxCycles is the total cycle budget (0 = unlimited);
	// stallWindow aborts when no forward progress happens for that many
	// cycles (0 = the defaultStallWindow; negative disables).
	maxCycles   int64
	stallWindow int64

	ready   []*activity // deps satisfied, not yet resolved
	waiting startHeap   // transfers with known start, awaiting clock
	running []*runningXfer

	bursts int64 // completed bursts (watchdog progress signal)
}

// run resolves every activity and returns the makespan in cycles.
func (e *engine) run() (int64, error) {
	for _, a := range e.acts {
		if a.nDepsLeft == 0 {
			e.ready = append(e.ready, a)
		}
	}
	resolvedCount := 0
	var makespan int64

	stallWindow := e.stallWindow
	if stallWindow == 0 {
		stallWindow = defaultStallWindow
	}
	lastResolved, lastBursts := 0, int64(0)
	var lastProgressAt int64

	resolve := func(a *activity, start, end int64) {
		a.start, a.end = start, end
		a.resolved = true
		resolvedCount++
		if end > makespan {
			makespan = end
		}
		for _, d := range a.dependents {
			d.nDepsLeft--
			if d.nDepsLeft == 0 {
				e.ready = append(e.ready, d)
			}
		}
	}

	drainReady := func() {
		for len(e.ready) > 0 {
			a := e.ready[len(e.ready)-1]
			e.ready = e.ready[:len(e.ready)-1]
			start := int64(0)
			for _, d := range a.deps {
				if t := d.gateTime(); t > start {
					start = t
				}
			}
			switch a.kind {
			case actBarrier:
				resolve(a, start, start)
			case actCompute:
				resolve(a, start, start+a.dur)
			case actTransfer:
				if len(a.bursts) == 0 {
					resolve(a, start, start+a.fill)
					continue
				}
				a.start = start
				heap.Push(&e.waiting, a)
			}
		}
	}

	drainReady()
	for len(e.waiting) > 0 || len(e.running) > 0 {
		// Admit transfers whose start time has arrived; if idle, jump.
		if len(e.running) == 0 && len(e.waiting) > 0 && e.waiting[0].start > e.clock {
			e.clock = e.waiting[0].start
			lastProgressAt = e.clock // a jump is forward progress
		}
		for len(e.waiting) > 0 && e.waiting[0].start <= e.clock {
			a := heap.Pop(&e.waiting).(*activity)
			e.running = append(e.running, &runningXfer{act: a})
			lastProgressAt = e.clock // admission is forward progress
		}
		// Issue bursts from each running transfer's AG.
		for _, rx := range e.running {
			for k := 0; k < agIssueWidth; k++ {
				if rx.nextBurst >= len(rx.act.bursts) || rx.inFlight >= agOutstanding {
					break
				}
				addr := rx.act.bursts[rx.nextBurst]
				rxc := rx
				req := &dram.Request{Addr: addr, Write: rx.act.write, Done: func(int64) {
					rxc.inFlight--
					rxc.completed++
					e.bursts++
				}}
				if !e.dram.Submit(req) {
					break // channel queue full; retry next cycle
				}
				rx.nextBurst++
				rx.inFlight++
			}
		}
		e.clock++
		e.dram.Tick(e.clock)
		// Watchdog: track forward progress (resolved activities or
		// completed bursts) and enforce the cycle budget.
		if resolvedCount != lastResolved || e.bursts != lastBursts {
			lastResolved, lastBursts = resolvedCount, e.bursts
			lastProgressAt = e.clock
		}
		if e.maxCycles > 0 && e.clock >= e.maxCycles {
			return 0, e.diagnostic(fmt.Sprintf("cycle budget %d exhausted", e.maxCycles), resolvedCount)
		}
		if stallWindow > 0 && e.clock-lastProgressAt >= stallWindow {
			return 0, e.diagnostic(fmt.Sprintf("no forward progress for %d cycles (livelock)", stallWindow), resolvedCount)
		}
		// Retire finished transfers.
		kept := e.running[:0]
		for _, rx := range e.running {
			if rx.completed == len(rx.act.bursts) {
				resolve(rx.act, rx.act.start, e.clock+rx.act.fill)
			} else {
				kept = append(kept, rx)
			}
		}
		e.running = kept
		drainReady()
	}

	if resolvedCount != len(e.acts) {
		return 0, e.diagnostic("deadlock (dependency cycle)", resolvedCount)
	}
	return makespan, nil
}
