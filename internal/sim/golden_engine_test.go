package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dram"
	"plasticine/internal/fault"
	"plasticine/internal/trace"
	"plasticine/internal/workloads"
)

// This file is the event core's byte-identity contract, enforced: every
// Table 4 benchmark runs through both scheduling cores and every observable
// — cycle count, DRAM counters, trace report, pattern rollup, checkpoint
// bytes, recovery decomposition — must match exactly. The legacy cycle loop
// is the oracle; any divergence is an event-core bug by definition.

// goldenRun executes one benchmark under the given engine with a collector
// armed and returns everything observable about the run.
func goldenRun(t *testing.T, b workloads.Benchmark, kind EngineKind) (*Result, *trace.Report, *trace.PatternReport) {
	t.Helper()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", b.Name(), err)
	}
	m, err := compiler.Compile(prog, arch.Default())
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name(), err)
	}
	col := trace.NewCollector()
	res, st, err := Simulate(context.Background(), m, Options{Engine: kind, Recorder: col})
	if err != nil {
		t.Fatalf("%s: simulate (%v engine): %v", b.Name(), kind, err)
	}
	if err := b.Check(st); err != nil {
		t.Fatalf("%s (%v engine): %v", b.Name(), kind, err)
	}
	return res, col.Report(), col.PatternReport(b.Name())
}

// TestEngineGoldenIdentity runs every Table 4 benchmark through the event
// core and the cycle-by-cycle oracle and requires identical cycle counts,
// DRAM counter sets, trace reports and pattern rollups.
func TestEngineGoldenIdentity(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			evRes, evRep, evPat := goldenRun(t, b, EngineEvent)
			cyRes, cyRep, cyPat := goldenRun(t, b, EngineCycle)
			if evRes.Cycles != cyRes.Cycles {
				t.Errorf("cycles: event %d, cycle %d", evRes.Cycles, cyRes.Cycles)
			}
			if evRes.Activities != cyRes.Activities {
				t.Errorf("activities: event %d, cycle %d", evRes.Activities, cyRes.Activities)
			}
			if !reflect.DeepEqual(evRes.DRAM, cyRes.DRAM) {
				t.Errorf("dram stats diverge:\nevent %+v\ncycle %+v", evRes.DRAM, cyRes.DRAM)
			}
			if !reflect.DeepEqual(evRep, cyRep) {
				t.Errorf("trace reports diverge:\nevent %+v\ncycle %+v", evRep, cyRep)
			}
			if !reflect.DeepEqual(evPat, cyPat) {
				t.Errorf("pattern reports diverge:\nevent %+v\ncycle %+v", evPat, cyPat)
			}
		})
	}
}

// TestEngineGoldenFaultedIdentity repeats the identity check with the fault
// model armed (latency spikes + transient retries), which exercises the
// event core's retry-backoff events and the fault PRNG's draw order.
func TestEngineGoldenFaultedIdentity(t *testing.T) {
	faults := &dram.Faults{Seed: 11, SpikeProb: 0.05, SpikeCycles: 40,
		TransientProb: 0.02, MaxRetries: 4, RetryBackoff: 8}
	run := func(kind EngineKind) *Result {
		m, _, _ := recoverySetup(t, nil)
		res, _, err := Simulate(context.Background(), m, Options{Engine: kind, Faults: faults})
		if err != nil {
			t.Fatalf("%v engine: %v", kind, err)
		}
		return res
	}
	ev, cy := run(EngineEvent), run(EngineCycle)
	if ev.Cycles != cy.Cycles {
		t.Errorf("cycles: event %d, cycle %d", ev.Cycles, cy.Cycles)
	}
	if !reflect.DeepEqual(ev.DRAM, cy.DRAM) {
		t.Errorf("dram stats diverge:\nevent %+v\ncycle %+v", ev.DRAM, cy.DRAM)
	}
	if ev.DRAM.Retries == 0 && ev.DRAM.LatencySpikes == 0 {
		t.Error("fault model never fired; the test exercises nothing")
	}
}

// TestEngineGoldenCheckpoint pauses both engines at the same mid-run cycle,
// drains, and requires the encoded checkpoints to be byte-identical — the
// strictest equivalence the simulator can express, covering every clock,
// counter, queue, bank, PRNG and in-flight request field.
func TestEngineGoldenCheckpoint(t *testing.T) {
	snap := func(kind EngineKind) []byte {
		m, _, _ := recoverySetup(t, nil)
		eng, _, err := prepare(m, Options{Engine: kind})
		if err != nil {
			t.Fatal(err)
		}
		if fin, err := eng.runUntil(700); err != nil {
			t.Fatalf("%v engine: %v", kind, err)
		} else if fin {
			t.Fatalf("%v engine: finished before the pause cycle", kind)
		}
		if _, _, err := eng.drainInFlight(); err != nil {
			t.Fatalf("%v engine: drain: %v", kind, err)
		}
		return eng.checkpoint().Encode()
	}
	ev, cy := snap(EngineEvent), snap(EngineCycle)
	if !bytes.Equal(ev, cy) {
		t.Fatalf("checkpoints diverge: event %d bytes, cycle %d bytes (or same size, different content)", len(ev), len(cy))
	}
}

// TestEngineGoldenRecovery survives the same kill-channel plan under both
// engines and requires identical makespans, DRAM counters and per-event
// recovery decompositions (pause cycle, drain cost, lost bursts,
// reconfiguration stall).
func TestEngineGoldenRecovery(t *testing.T) {
	run := func(kind EngineKind) *Result {
		plan, err := fault.NewPlan(fault.Spec{Seed: 2,
			Events: []fault.EventSpec{{Kind: fault.KillChan, Cycle: 300}}}, arch.Default())
		if err != nil {
			t.Fatal(err)
		}
		m, total, want := recoverySetup(t, plan)
		res, st, err := Simulate(context.Background(), m, Options{Engine: kind, Recovery: true})
		if err != nil {
			t.Fatalf("%v engine: %v", kind, err)
		}
		checkDot(t, st, total, want)
		if res.Recovery == nil || len(res.Recovery.Events) == 0 {
			t.Fatalf("%v engine: no recovery events recorded", kind)
		}
		return res
	}
	ev, cy := run(EngineEvent), run(EngineCycle)
	if ev.Cycles != cy.Cycles {
		t.Errorf("cycles: event %d, cycle %d", ev.Cycles, cy.Cycles)
	}
	if !reflect.DeepEqual(ev.DRAM, cy.DRAM) {
		t.Errorf("dram stats diverge:\nevent %+v\ncycle %+v", ev.DRAM, cy.DRAM)
	}
	if !reflect.DeepEqual(ev.Recovery, cy.Recovery) {
		t.Errorf("recovery decompositions diverge:\nevent %+v\ncycle %+v", ev.Recovery, cy.Recovery)
	}
}

// TestWatchdogToleratesLongMemoryGap: a latency spike far longer than the
// stall window is a long wait, not a livelock — the memory system still
// holds the spiked burst, so the event-time-aware watchdog must let the run
// finish. Both engines must agree (the legacy loop shares checkWatchdog).
func TestWatchdogToleratesLongMemoryGap(t *testing.T) {
	faults := &dram.Faults{Seed: 3, SpikeProb: 1.0, SpikeCycles: 400}
	for _, kind := range []EngineKind{EngineEvent, EngineCycle} {
		m, total, want := recoverySetup(t, nil)
		res, st, err := Simulate(context.Background(), m, Options{
			Engine: kind, Faults: faults, StallWindow: 64})
		if err != nil {
			t.Fatalf("%v engine: spiked run tripped the stall detector: %v", kind, err)
		}
		checkDot(t, st, total, want)
		if res.DRAM.LatencySpikes == 0 {
			t.Fatalf("%v engine: no spikes fired; the test exercises nothing", kind)
		}
	}
}
