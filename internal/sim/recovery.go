package sim

import (
	"context"
	"fmt"
	"time"

	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/dram"
	"plasticine/internal/fault"
)

// RecoveryEvent is the measured overhead of surviving one timed fault.
type RecoveryEvent struct {
	Event string // rendered fault event, e.g. "kill-pcu@5000 (4,2)"
	At    int64  // cycle execution actually paused (>= the scheduled cycle)

	// DrainCycles is the quiescence protocol's cost: cycles spent letting
	// every outstanding burst land before the checkpoint.
	DrainCycles int64
	// CheckpointBytes is the encoded snapshot size.
	CheckpointBytes int
	// LostBursts counts in-flight requests dropped by the fault (killed
	// channel); each is reissued after the restore.
	LostBursts int

	// Repair outcome (zero for memory-channel faults, which need no
	// fabric reconfiguration).
	MovedPCUs, MovedPMUs, ReroutedEdges int
	FullRecompile                       bool
	// ReconfigCycles is the stall charged for streaming new unit and switch
	// configurations plus refilling moved PMUs' scratchpads.
	ReconfigCycles int64
}

// Overhead is the stall this event added on top of lost throughput.
func (e *RecoveryEvent) Overhead() int64 { return e.DrainCycles + e.ReconfigCycles }

// RecoveryStats aggregates every survived fault of a run.
type RecoveryStats struct {
	Events []RecoveryEvent

	DrainCycles    int64 // total quiescence cost
	ReconfigCycles int64 // total reconfiguration stall
	LostBursts     int   // total dropped-and-reissued DRAM bursts
}

// Overhead is the total stall cycles spent recovering. The remaining
// recovery cost — re-executing lost work and running on a degraded fabric —
// shows up as extra makespan beyond this stall and is measured by comparing
// against an event-free run of the same plan.
func (s *RecoveryStats) Overhead() int64 { return s.DrainCycles + s.ReconfigCycles }

// RunWithRecovery simulates a compiled program, surviving the fault plan's
// timed mid-run events.
//
// Deprecated: use Simulate(context.Background(), m, opts) with
// Options.Recovery set.
func RunWithRecovery(m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	return RunWithRecoveryCtx(context.Background(), m, opts)
}

// RunWithRecoveryCtx is RunWithRecovery under a context.
//
// Deprecated: use Simulate(ctx, m, opts) with Options.Recovery set.
func RunWithRecoveryCtx(ctx context.Context, m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	opts.Recovery = true
	return Simulate(ctx, m, opts)
}

// runRecovery simulates a compiled program whose fault plan schedules
// timed mid-run events (Simulate guarantees there is at least one),
// surviving each one:
//
//  1. run to the event's cycle (a loop boundary);
//  2. land the fault — a killed DRAM channel drops its queued and in-flight
//     bursts, which are accounted and marked for reissue;
//  3. drain the remaining in-flight work to quiescence;
//  4. checkpoint, round-tripping through the versioned wire encoding;
//  5. repair the mapping incrementally around the dead resource (fabric
//     faults only) and charge the reconfiguration stall;
//  6. restore into a fresh engine and continue.
//
// A fault the mapping cannot be repaired around (wrapping
// compiler.ErrInsufficient or compiler.ErrNoRoute) fails the run.
func runRecovery(ctx context.Context, m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	events := m.Faults.Events()
	eng, st, err := prepare(m, opts)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	eng.ctx = ctx
	plan := m.Faults
	rec := &RecoveryStats{}
	for _, ev := range events {
		finished, err := eng.runUntil(ev.Cycle)
		if err != nil {
			return nil, nil, err
		}
		if finished {
			break // the program completed before this fault could land
		}
		re := RecoveryEvent{Event: ev.String(), At: eng.clock}

		if ev.Kind == fault.KillChan {
			lost, err := eng.dram.KillChannel(ev.Chan, func(req *dram.Request) {
				actID, burst := splitTag(req.Tag)
				for _, rx := range eng.running {
					if rx.act.id == actID {
						rx.inFlight--
						rx.requeue = append(rx.requeue, burst)
						return
					}
				}
			})
			if err != nil {
				return nil, nil, fmt.Errorf("sim: recovery at cycle %d: %s: %w", eng.clock, ev, err)
			}
			re.LostBursts = lost
		}
		if err := plan.Extend(ev); err != nil {
			return nil, nil, fmt.Errorf("sim: recovery at cycle %d: %s: %w", eng.clock, ev, err)
		}

		_, drain, err := eng.drainInFlight()
		if err != nil {
			return nil, nil, fmt.Errorf("sim: recovery at cycle %d: %s: drain: %w", eng.clock, ev, err)
		}
		re.DrainCycles = drain

		enc := eng.checkpoint().Encode()
		re.CheckpointBytes = len(enc)
		cp, err := DecodeCheckpoint(enc)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: recovery at cycle %d: %s: %w", eng.clock, ev, err)
		}

		if ev.Kind != fault.KillChan {
			if _, err := compiler.CompileOpts(ctx, m.Prog, compiler.Options{Faults: plan, Reuse: m}); err != nil {
				return nil, nil, fmt.Errorf("sim: recovery at cycle %d: %s: %w", eng.clock, ev, err)
			}
			rep := m.LastRepair
			re.MovedPCUs, re.MovedPMUs = rep.MovedPCUs, rep.MovedPMUs
			re.ReroutedEdges, re.FullRecompile = rep.ReroutedEdges, rep.FullRecompile
			re.ReconfigCycles = m.Params.ReconfigCycles(rep.MovedPCUs, rep.MovedPMUs, rep.ReroutedEdges)
		}

		// The fabric stalls for the reconfiguration; everything resumes on
		// the shifted clock. The memory system idles through the stall, so
		// its internal time (and refresh schedule) shifts with it.
		cp.Clock += re.ReconfigCycles
		cp.LastProgressAt = cp.Clock
		if cp.DRAM != nil {
			cp.DRAM.Now += re.ReconfigCycles
			cp.DRAM.NextRefresh += re.ReconfigCycles
		}
		fresh := &engine{acts: eng.acts, dram: eng.dram,
			units: eng.units, rec: eng.rec,
			maxCycles: eng.maxCycles, stallWindow: eng.stallWindow,
			ctx: eng.ctx, nextCtxCheck: eng.nextCtxCheck,
			mode: eng.mode, insts: eng.insts, steps: eng.steps}
		if err := fresh.restore(cp); err != nil {
			return nil, nil, fmt.Errorf("sim: recovery at cycle %d: %s: %w", eng.clock, ev, err)
		}
		eng = fresh

		rec.Events = append(rec.Events, re)
		rec.DrainCycles += re.DrainCycles
		rec.ReconfigCycles += re.ReconfigCycles
		rec.LostBursts += re.LostBursts
	}
	cycles, err := eng.run()
	if err != nil {
		return nil, nil, err
	}
	eng.observeRun(cycles)
	eng.emitTrace(m, recoveryWindows(rec))
	res := buildResult(m, eng, cycles, t0)
	res.Recovery = rec
	return res, st, nil
}
