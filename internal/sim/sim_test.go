package sim

import (
	"math"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// dotSetup compiles and binds a tiled dot product.
func dotSetup(t *testing.T, n, tile int, pipelined bool) (*compiler.Mapping, *dhdl.Reg, float64) {
	t.Helper()
	b := dhdl.NewBuilder("dot", dhdl.Sequential)
	a := b.DRAMF32("a", n)
	bv := b.DRAMF32("b", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	tb := b.SRAM("tb", pattern.F32, tile)
	partial := b.Reg("partial", pattern.VF(0))
	total := b.Reg("total", pattern.VF(0))
	body := func(ix []dhdl.Expr) {
		b.Load("loadA", a, ix[0], ta, tile)
		b.Load("loadB", bv, ix[0], tb, tile)
		b.Compute("mac", []dhdl.Counter{dhdl.CPar(tile, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add, dhdl.Mul(dhdl.Ld(ta, jx[0]), dhdl.Ld(tb, jx[0])))}
		})
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	}
	if pipelined {
		b.Pipe("tiles", []dhdl.Counter{dhdl.CStep(0, n, tile)}, body)
	} else {
		b.Seq("tiles", []dhdl.Counter{dhdl.CStep(0, n, tile)}, body)
	}
	p := b.MustBuild()

	av, bvv := make([]float32, n), make([]float32, n)
	var want float64
	for i := range av {
		av[i] = float32(i%7) * 0.25
		bvv[i] = float32(i%5) - 2
		want += float64(av[i]) * float64(bvv[i])
	}
	if err := a.Bind(pattern.FromF32("a", av)); err != nil {
		t.Fatal(err)
	}
	if err := bv.Bind(pattern.FromF32("b", bvv)); err != nil {
		t.Fatal(err)
	}
	m, err := compiler.Compile(p, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m, total, want
}

func TestSimDotFunctionalMatchesReference(t *testing.T) {
	m, total, want := dotSetup(t, 4096, 512, true)
	res, st, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(st.RegValue(total).F)
	if math.Abs(got-want) > 1e-2*math.Abs(want)+1e-3 {
		t.Errorf("dot = %g, want %g", got, want)
	}
	if res.Cycles <= 0 {
		t.Errorf("cycles = %d, want positive", res.Cycles)
	}
	if res.DRAM.BytesRead < int64(2*4096*4) {
		t.Errorf("DRAM read %d bytes, want >= %d (both vectors)", res.DRAM.BytesRead, 2*4096*4)
	}
}

func TestSimPipelineFasterThanSequential(t *testing.T) {
	mp, _, _ := dotSetup(t, 8192, 512, true)
	ms, _, _ := dotSetup(t, 8192, 512, false)
	rp, _, err := Run(mp)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := Run(ms)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse-grained pipelining overlaps tile loads with compute
	// (double-buffered tiles); sequential execution serializes them.
	if float64(rp.Cycles) > 0.9*float64(rs.Cycles) {
		t.Errorf("pipelined %d cycles not faster than sequential %d", rp.Cycles, rs.Cycles)
	}
}

func TestSimStreamingBoundByDRAMBandwidth(t *testing.T) {
	// A pure streaming workload (vector sum of one big array) should run
	// close to DRAM bandwidth: bytes / 51.2 B/cycle.
	n, tile := 65536, 1024
	b := dhdl.NewBuilder("sum", dhdl.Sequential)
	a := b.DRAMF32("a", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	partial := b.Reg("partial", pattern.VF(0))
	total := b.Reg("total", pattern.VF(0))
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStep(0, n, tile)}, func(ix []dhdl.Expr) {
		b.Load("ld", a, ix[0], ta, tile)
		b.Compute("sum", []dhdl.Counter{dhdl.CPar(tile, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add, dhdl.Ld(ta, jx[0]))}
		})
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	})
	p := b.MustBuild()
	av := make([]float32, n)
	for i := range av {
		av[i] = 1
	}
	if err := a.Bind(pattern.FromF32("a", av)); err != nil {
		t.Fatal(err)
	}
	m, err := compiler.Compile(p, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(total).F; got != float32(n) {
		t.Fatalf("sum = %g, want %d", got, n)
	}
	idealCycles := float64(n*4) / 51.2
	ratio := float64(res.Cycles) / idealCycles
	if ratio > 2.5 {
		t.Errorf("streaming sum took %d cycles, %.1fx the bandwidth bound %.0f", res.Cycles, ratio, idealCycles)
	}
}

func TestSimGatherSlowerThanDenseLoad(t *testing.T) {
	// Random gathers waste burst bandwidth; dense loads of the same volume
	// should be faster.
	n := 16384
	nIdx := 2048
	build := func(sparse bool) *compiler.Mapping {
		b := dhdl.NewBuilder("g", dhdl.Sequential)
		table := b.DRAMF32("table", n)
		idxb := b.DRAMI32("idx", nIdx)
		addrs := b.SRAM("addrs", pattern.I32, nIdx)
		vals := b.SRAMBanked("vals", pattern.F32, nIdx, dhdl.Duplication)
		out := b.Reg("out", pattern.VF(0))
		b.Seq("body", nil, func([]dhdl.Expr) {
			b.Load("li", idxb, dhdl.CI(0), addrs, nIdx)
			if sparse {
				b.Gather("gather", table, addrs, vals, nIdx, nil)
			} else {
				b.Load("dense", table, dhdl.CI(0), vals, nIdx)
			}
			b.Compute("sum", []dhdl.Counter{dhdl.CPar(nIdx, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.Accum(out, pattern.Add, dhdl.Ld(vals, ix[0]))}
			})
		})
		p := b.MustBuild()
		tv := make([]float32, n)
		for i := range tv {
			tv[i] = float32(i)
		}
		iv := make([]int32, nIdx)
		rng := uint32(12345)
		for i := range iv {
			rng = rng*1664525 + 1013904223
			iv[i] = int32(rng % uint32(n))
		}
		mustBindT(b, table, pattern.FromF32("t", tv))
		mustBindT(b, idxb, pattern.FromI32("i", iv))
		m, err := compiler.Compile(p, arch.Default())
		if err != nil {
			panic(err)
		}
		return m
	}
	rs, _, err := Run(build(true))
	if err != nil {
		t.Fatal(err)
	}
	rd, _, err := Run(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if float64(rs.Cycles) < 1.5*float64(rd.Cycles) {
		t.Errorf("gather (%d cycles) should be >=1.5x slower than dense (%d cycles)", rs.Cycles, rd.Cycles)
	}
	if rs.DRAM.BytesRead <= rd.DRAM.BytesRead {
		t.Errorf("gather read %d bytes, dense %d; gather should read more (wasted burst words)",
			rs.DRAM.BytesRead, rd.DRAM.BytesRead)
	}
}

func mustBindT(_ *dhdl.Builder, d *dhdl.DRAMBuf, c *pattern.Collection) {
	if err := d.Bind(c); err != nil {
		panic(err)
	}
}

func TestSimUnrollSpeedsUpCompute(t *testing.T) {
	// A compute-heavy loop should speed up with outer parallelization.
	build := func(par int) *compiler.Mapping {
		b := dhdl.NewBuilder("cb", dhdl.Sequential)
		s := b.SRAM("s", pattern.F32, 4096)
		d := b.SRAM("d", pattern.F32, 4096)
		b.Pipe("outer", []dhdl.Counter{dhdl.CPar(64, par)}, func(ix []dhdl.Expr) {
			b.Compute("heavy", []dhdl.Counter{dhdl.CPar(4096, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
				v := dhdl.Ld(s, jx[0])
				for k := 0; k < 10; k++ {
					v = dhdl.Add(dhdl.Mul(v, dhdl.CF(1.0001)), dhdl.CF(0.5))
				}
				return []*dhdl.Assign{dhdl.StoreAt(d, jx[0], v)}
			})
		})
		m, err := compiler.Compile(b.MustBuild(), arch.Default())
		if err != nil {
			panic(err)
		}
		return m
	}
	r1, _, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, _, err := Run(build(4))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Cycles) / float64(r4.Cycles)
	if speedup < 2.5 {
		t.Errorf("par=4 speedup = %.2fx, want >= 2.5x", speedup)
	}
}

func TestSimPowerWithinChipEnvelope(t *testing.T) {
	m, _, _ := dotSetup(t, 4096, 512, true)
	res, _, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerW <= 0 || res.PowerW > arch.MaxPower(arch.Default()) {
		t.Errorf("power = %.1f W, want within (0, %.1f]", res.PowerW, arch.MaxPower(arch.Default()))
	}
}

func TestSimSequentialDependencyOrdering(t *testing.T) {
	// Under a Sequential parent, a consumer's activity must start after
	// the producer ends; verify via a two-stage chain whose result depends
	// on ordering.
	b := dhdl.NewBuilder("seqdep", dhdl.Sequential)
	s := b.SRAM("s", pattern.F32, 16)
	r := b.Reg("r", pattern.VF(0))
	b.Seq("body", nil, func([]dhdl.Expr) {
		b.Compute("w", []dhdl.Counter{dhdl.C(16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(s, ix[0], dhdl.F32(ix[0]))}
		})
		b.Compute("rsum", []dhdl.Counter{dhdl.C(16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(r, pattern.Add, dhdl.Ld(s, ix[0]))}
		})
	})
	m, err := compiler.Compile(b.MustBuild(), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(r).F; got != 120 { // 0+1+...+15
		t.Errorf("sum = %g, want 120", got)
	}
	// Timing sanity: total must cover both pipelines back to back.
	if res.Cycles < 2 {
		t.Errorf("cycles = %d, implausibly small", res.Cycles)
	}
}

func TestSimResultDerivedMetrics(t *testing.T) {
	r := &Result{Cycles: 1000, Seconds: 1e-6, PowerW: 10}
	r.DRAM.BytesRead = 512
	r.DRAM.BytesWritten = 512
	if got := r.Perf(2e6); got != 2e12 {
		t.Errorf("Perf = %g", got)
	}
	if got := r.PerfPerWatt(2e6); got != 2e11 {
		t.Errorf("PerfPerWatt = %g", got)
	}
	if got := r.EffectiveBandwidth(); got != 1024/1e-6 {
		t.Errorf("EffectiveBandwidth = %g", got)
	}
}
