// Package sim is the cycle-level performance simulator for compiled
// Plasticine programs — the substitute for the paper's VCS + DRAMSim2
// cycle-accurate setup (Section 4.2). A traced functional execution of the
// DHDL program is replayed into a timed activity graph whose dependency
// edges implement the paper's distributed control protocols (Section 3.5):
// sequential token barriers, coarse-grained pipelining with N-buffered
// memories (credits), and streaming (fill-offset) edges. Compute activities
// advance at one vector per cycle through pipelines sized by the compiler;
// transfer activities issue bursts into the DDR3 model and contend for
// bandwidth with every concurrently running transfer.
package sim

import (
	"plasticine/internal/dhdl"
)

type actKind int

const (
	actCompute actKind = iota
	actTransfer
	actBarrier
)

// depKind selects which time of the upstream activity gates the dependent.
type depKind int

const (
	// endToStart: downstream starts after upstream fully completes
	// (token passing).
	endToStart depKind = iota
	// fillToStart: downstream starts once the upstream pipeline produces
	// its first results (streaming through FIFOs).
	fillToStart
)

type dep struct {
	on   *activity
	kind depKind
	// war marks a write-after-read edge (N-buffer credit: the writer waits
	// for readers to drain the buffer version it reuses). The observability
	// layer attributes stalls behind such edges to output backpressure.
	war bool
}

// activity is one leaf-controller execution (or a sequencing barrier) on
// the simulated timeline.
type activity struct {
	id   int
	kind actKind
	leaf *dhdl.Controller // nil for barriers

	// unit is the physical-unit index this activity executes on (the
	// builder's unit table); -1 for barriers, which occupy no hardware.
	unit int

	// Compute timing.
	dur  int64 // cycles from start to completion (firings + drain)
	fill int64 // cycles from start to first output (pipeline depth)

	// Transfer work.
	bursts []uint64 // burst-aligned byte addresses
	write  bool

	deps       []dep
	dependents []*activity
	nDepsLeft  int

	start, end int64
	resolved   bool

	// Observability counters, copied from the running transfer at retire
	// time: cycles the AG actually issued or landed bursts, and the
	// outstanding-burst FIFO's occupancy peak.
	busy    int64
	hiWater int32
}

func (a *activity) addDep(on *activity, k depKind) { a.addDepTagged(on, k, false) }

// addDepWAR records a write-after-read (N-buffer credit) dependency.
func (a *activity) addDepWAR(on *activity) { a.addDepTagged(on, endToStart, true) }

func (a *activity) addDepTagged(on *activity, k depKind, war bool) {
	if on == nil || on == a {
		return
	}
	// Duplicate edges are harmless but wasteful; cheap dedup on the last
	// few entries catches the common repeats.
	for i := len(a.deps) - 1; i >= 0 && i >= len(a.deps)-4; i-- {
		if a.deps[i].on == on && a.deps[i].kind == k {
			return
		}
	}
	a.deps = append(a.deps, dep{on, k, war})
	if !on.resolved {
		a.nDepsLeft++
		on.dependents = append(on.dependents, a)
	}
}

// gateTime is the earliest start this dependency permits.
func (d dep) gateTime() int64 {
	if d.kind == fillToStart {
		t := d.on.start + d.on.fill
		if t > d.on.end {
			t = d.on.end
		}
		return t
	}
	return d.on.end
}
