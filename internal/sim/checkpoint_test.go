package sim

import (
	"errors"
	"reflect"
	"testing"

	"plasticine/internal/dhdl"
	"plasticine/internal/dram"
)

// buildCkptGraph constructs a deterministic load → compute → store graph
// with enough bursts to stay mid-flight for thousands of cycles. Calling it
// twice yields two independent but identical graphs.
func buildCkptGraph() []*activity {
	mkBursts := func(n, stride int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(i * stride)
		}
		return out
	}
	load := &activity{id: 0, kind: actTransfer, fill: 4,
		leaf: &dhdl.Controller{Name: "load"}, bursts: mkBursts(512, 64)}
	load2 := &activity{id: 1, kind: actTransfer, fill: 4,
		leaf: &dhdl.Controller{Name: "load2"}, bursts: mkBursts(512, 128)}
	comp := &activity{id: 2, kind: actCompute, dur: 700, fill: 9,
		leaf: &dhdl.Controller{Name: "dot"}}
	comp.addDep(load, fillToStart)
	comp.addDep(load2, endToStart)
	store := &activity{id: 3, kind: actTransfer, fill: 4, write: true,
		leaf: &dhdl.Controller{Name: "store"}, bursts: mkBursts(256, 64)}
	store.addDep(comp, endToStart)
	return []*activity{load, load2, comp, store}
}

func ckptEngine(acts []*activity, faults *dram.Faults) *engine {
	ddr := dram.New(dram.DDR3_1600x4())
	if err := ddr.InjectFaults(faults); err != nil {
		panic(err)
	}
	return &engine{acts: acts, dram: ddr}
}

func ckptFaults() *dram.Faults {
	return &dram.Faults{Seed: 77, SpikeProb: 0.1, SpikeCycles: 40,
		TransientProb: 0.05, MaxRetries: 3, RetryBackoff: 16}
}

func TestCheckpointRoundTripMidRun(t *testing.T) {
	// Reference: uninterrupted run.
	ref := ckptEngine(buildCkptGraph(), ckptFaults())
	wantMk, err := ref.run()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: pause mid-flight, checkpoint, encode, decode, restore
	// into a fresh engine, finish there.
	paused := ckptEngine(buildCkptGraph(), ckptFaults())
	const stopAt = 1500
	done, err := paused.runUntil(stopAt)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("graph finished before the pause point; enlarge it")
	}
	if paused.clock != stopAt {
		t.Fatalf("paused at cycle %d, want %d", paused.clock, stopAt)
	}
	cp := paused.checkpoint()
	if len(cp.Running) == 0 {
		t.Fatal("pause point has no transfer mid-flight; test is vacuous")
	}
	enc := cp.Encode()
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, dec) {
		t.Fatal("decode(encode(checkpoint)) is not identity")
	}

	resumed := ckptEngine(buildCkptGraph(), ckptFaults())
	if err := resumed.restore(dec); err != nil {
		t.Fatal(err)
	}
	gotMk, err := resumed.run()
	if err != nil {
		t.Fatal(err)
	}
	if gotMk != wantMk {
		t.Errorf("restored run makespan %d, uninterrupted %d", gotMk, wantMk)
	}
	for i, a := range resumed.acts {
		want := ref.acts[i]
		if a.start != want.start || a.end != want.end {
			t.Errorf("%s: restored [%d,%d], uninterrupted [%d,%d]",
				actLabel(a), a.start, a.end, want.start, want.end)
		}
	}
	if resumed.dram.Stats() != ref.dram.Stats() {
		t.Errorf("restored DRAM stats diverge:\n%+v\n%+v", resumed.dram.Stats(), ref.dram.Stats())
	}

	// Encoding is deterministic byte-for-byte.
	if string(cp.Encode()) != string(enc) {
		t.Error("re-encoding the same checkpoint changed bytes")
	}
}

func TestCheckpointRejectsWrongGraph(t *testing.T) {
	paused := ckptEngine(buildCkptGraph(), nil)
	if _, err := paused.runUntil(500); err != nil {
		t.Fatal(err)
	}
	cp := paused.checkpoint()

	other := buildCkptGraph()
	other[0].bursts = other[0].bursts[:100] // structurally different graph
	e := ckptEngine(other, nil)
	if err := e.restore(cp); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("restore into a different graph: want ErrBadCheckpoint, got %v", err)
	}
}

func TestDecodeCheckpointRejectsCorruption(t *testing.T) {
	paused := ckptEngine(buildCkptGraph(), ckptFaults())
	if _, err := paused.runUntil(1000); err != nil {
		t.Fatal(err)
	}
	enc := paused.checkpoint().Encode()
	if _, err := DecodeCheckpoint(nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("nil input: want ErrBadCheckpoint, got %v", err)
	}
	if _, err := DecodeCheckpoint(enc[:len(enc)/2]); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("truncated input: want ErrBadCheckpoint, got %v", err)
	}
	for _, off := range []int{0, 4, 8, 40, len(enc) / 2, len(enc) - 5} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := DecodeCheckpoint(bad); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("flip at %d: want ErrBadCheckpoint, got %v", off, err)
		}
	}
}

func TestDrainInFlightReachesQuiescence(t *testing.T) {
	e := ckptEngine(buildCkptGraph(), nil)
	done, err := e.runUntil(300)
	if err != nil || done {
		t.Fatalf("pause failed: done=%v err=%v", done, err)
	}
	pre, cost, err := e.drainInFlight()
	if err != nil {
		t.Fatal(err)
	}
	if pre.Quiescent() {
		t.Error("pre-drain state reports quiescent while bursts were in flight")
	}
	if !e.quiescent() {
		t.Error("engine not quiescent after drain")
	}
	if cost <= 0 {
		t.Errorf("drain cost %d cycles, want > 0 with bursts in flight", cost)
	}
	if post := e.quiesceState(); !post.Quiescent() {
		t.Errorf("post-drain quiesce state not quiescent: %+v", post)
	}
	// The drain's pre-state and the watchdog's diagnostic derive from the
	// same helper, so their in-flight/queue numbers must be identical; the
	// checkpoint's DRAM queues must agree with the post-drain view (empty).
	for _, n := range e.diagnostic("x").DRAMQueues {
		if n != 0 {
			t.Errorf("diagnostic reports queued work after drain: %v", e.diagnostic("x").DRAMQueues)
		}
	}
}

func TestWatchdogAndQuiesceAgree(t *testing.T) {
	e := ckptEngine(buildCkptGraph(), nil)
	if _, err := e.runUntil(300); err != nil {
		t.Fatal(err)
	}
	q := e.quiesceState()
	w := e.diagnostic("probe")
	if !reflect.DeepEqual(q.InFlight, w.InFlight) {
		t.Errorf("drain and watchdog in-flight views differ:\n%+v\n%+v", q.InFlight, w.InFlight)
	}
	if !reflect.DeepEqual(q.DRAMQueues, w.DRAMQueues) {
		t.Errorf("drain and watchdog queue views differ:\n%v\n%v", q.DRAMQueues, w.DRAMQueues)
	}
}

func FuzzCheckpointDecode(f *testing.F) {
	paused := ckptEngine(buildCkptGraph(), ckptFaults())
	if _, err := paused.runUntil(1500); err != nil {
		f.Fatal(err)
	}
	valid := paused.checkpoint().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte{})
	f.Add([]byte("PLCK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data) // must never panic
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical bytes and decode
		// back to the identical structure.
		enc := cp.Encode()
		cp2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded checkpoint failed: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatal("decode/encode round trip not stable")
		}
	})
}
