package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"plasticine/internal/trace"
)

// ErrWatchdog is wrapped by every simulator abort: cycle-budget overruns,
// stalls (no forward progress within the stall window), and dependency
// deadlocks. Callers distinguish a watchdog abort from a compile or
// functional failure with errors.Is(err, ErrWatchdog).
var ErrWatchdog = errors.New("sim: watchdog abort")

// ErrBudget marks the specific watchdog abort caused by exhausting
// Options.MaxCycles. It is carried as the WatchdogError's Cause, so both
// errors.Is(err, ErrWatchdog) and errors.Is(err, ErrBudget) hold — callers
// that set an exploratory budget can tell "ran out of budget" apart from
// "livelocked" without string matching.
var ErrBudget = errors.New("sim: cycle budget exhausted")

// defaultStallWindow is the progress watchdog armed on every run: if no
// activity resolves, no burst completes, and no transfer is admitted for
// this many cycles, the schedule is livelocked (e.g. every DRAM channel
// down, or a retry storm) and the engine aborts with a diagnostic instead
// of spinning forever. Real schedules complete bursts every few hundred
// cycles, so the window only trips on genuine livelock.
const defaultStallWindow = 2_000_000

// StuckActivity describes one unresolved activity in a watchdog dump.
type StuckActivity struct {
	ID       int
	Name     string
	Kind     string // "compute", "transfer", "barrier"
	DepsLeft int
}

// StuckTransfer describes one in-flight transfer in a watchdog dump.
type StuckTransfer struct {
	Name      string
	Completed int // bursts finished
	Total     int // bursts in the transfer
	InFlight  int // bursts submitted and not yet completed
}

// StalledUnit is one physical unit in the watchdog's livelock dump: how long
// it has gone without completing work and what its next activity is waiting
// on (the observability layer's stall taxonomy).
type StalledUnit struct {
	Name       string
	StalledFor int64  // cycles since the unit last finished an activity
	Cause      string // dominant stall cause, e.g. "dram-wait"
}

// WatchdogError is the structured diagnostic the engine returns when it
// aborts a run: what tripped, how far the schedule got, which activities
// are stuck, which transfers are mid-flight, how full each DRAM channel
// queue is, and which units have been stalled longest.
type WatchdogError struct {
	Reason     string
	Cycle      int64
	Resolved   int // activities resolved before the abort
	Total      int // activities in the schedule
	Stuck      []StuckActivity
	InFlight   []StuckTransfer
	DRAMQueues []int // per-channel request-queue occupancy
	TopStalled []StalledUnit

	// Cause classifies the abort beyond the human-readable Reason: ErrBudget
	// for a MaxCycles overrun, the context error (context.Canceled /
	// DeadlineExceeded) for a canceled run, nil for stalls and deadlocks.
	Cause error
}

// Transient classifies the abort for retry policies (exec.Transienter): an
// abort whose Cause is a dying context is transient — the cancellation may
// have come from a failing sibling or an expired per-job deadline, not from
// this design point — while budget exhaustion (ErrBudget), stalls and
// deadlocks are properties of the deterministic simulation itself and would
// simply recur on retry.
func (e *WatchdogError) Transient() bool {
	return e.Cause != nil &&
		(errors.Is(e.Cause, context.Canceled) || errors.Is(e.Cause, context.DeadlineExceeded))
}

// Unwrap exposes both the ErrWatchdog sentinel and the specific Cause, so
// errors.Is works against either.
func (e *WatchdogError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrWatchdog, e.Cause}
	}
	return []error{ErrWatchdog}
}

func (e *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s at cycle %d (%d/%d activities resolved)",
		ErrWatchdog, e.Reason, e.Cycle, e.Resolved, e.Total)
	const maxListed = 8
	if len(e.Stuck) > 0 {
		b.WriteString("\n  unresolved:")
		for i, s := range e.Stuck {
			if i == maxListed {
				fmt.Fprintf(&b, " ... (%d more)", len(e.Stuck)-maxListed)
				break
			}
			fmt.Fprintf(&b, " %s[%s#%d deps:%d]", s.Name, s.Kind, s.ID, s.DepsLeft)
		}
	}
	if len(e.InFlight) > 0 {
		b.WriteString("\n  in-flight transfers:")
		for i, t := range e.InFlight {
			if i == maxListed {
				fmt.Fprintf(&b, " ... (%d more)", len(e.InFlight)-maxListed)
				break
			}
			fmt.Fprintf(&b, " %s[%d/%d bursts, %d in flight]", t.Name, t.Completed, t.Total, t.InFlight)
		}
	}
	if len(e.DRAMQueues) > 0 {
		fmt.Fprintf(&b, "\n  DRAM queue occupancy: %v", e.DRAMQueues)
	}
	if len(e.TopStalled) > 0 {
		b.WriteString("\n  most-stalled units:")
		for _, u := range e.TopStalled {
			fmt.Fprintf(&b, " %s[%s for %d cycles]", u.Name, u.Cause, u.StalledFor)
		}
	}
	return b.String()
}

func kindName(k actKind) string {
	switch k {
	case actCompute:
		return "compute"
	case actTransfer:
		return "transfer"
	}
	return "barrier"
}

func actLabel(a *activity) string {
	if a.leaf != nil {
		return a.leaf.Name
	}
	return fmt.Sprintf("barrier%d", a.id)
}

// diagnostic snapshots the engine into a WatchdogError. In-flight transfer
// and DRAM queue numbers come from the same quiesceState helper the
// checkpoint drain uses, so the two always report identical figures.
func (e *engine) diagnostic(reason string) *WatchdogError {
	q := e.quiesceState()
	w := &WatchdogError{
		Reason:     reason,
		Cycle:      e.clock,
		Resolved:   e.resolvedCount,
		Total:      len(e.acts),
		InFlight:   q.InFlight,
		DRAMQueues: q.DRAMQueues,
	}
	for _, a := range e.acts {
		if a.resolved {
			continue
		}
		w.Stuck = append(w.Stuck, StuckActivity{
			ID: a.id, Name: actLabel(a), Kind: kindName(a.kind), DepsLeft: a.nDepsLeft,
		})
	}
	w.TopStalled = e.topStalled(5)
	return w
}

// topStalled ranks physical units by how long they have gone without
// completing an activity, attributing each to the stall cause of its next
// pending activity: a transfer mid-flight is a DRAM wait; otherwise the
// first unsatisfied dependency classifies it (see depCause). Units whose
// work is all resolved are not stalled and are skipped.
func (e *engine) topStalled(max int) []StalledUnit {
	if len(e.units) == 0 {
		return nil
	}
	lastEnd := make([]int64, len(e.units))
	next := make([]*activity, len(e.units))
	running := make(map[int]bool, len(e.running))
	for _, rx := range e.running {
		running[rx.act.id] = true
	}
	for _, a := range e.acts {
		if a.unit < 0 || a.unit >= len(e.units) {
			continue
		}
		if a.resolved {
			if a.end > lastEnd[a.unit] {
				lastEnd[a.unit] = a.end
			}
		} else if next[a.unit] == nil || a.id < next[a.unit].id {
			next[a.unit] = a
		}
	}
	var out []StalledUnit
	for u, a := range next {
		if a == nil {
			continue
		}
		cause := trace.CauseInputStarved
		if running[a.id] {
			cause = trace.CauseDRAMWait
		} else {
			for i := range a.deps {
				if !a.deps[i].on.resolved {
					cause = depCause(a.deps[i])
					break
				}
			}
		}
		stalled := e.clock - lastEnd[u]
		if stalled < 0 {
			stalled = 0
		}
		out = append(out, StalledUnit{Name: e.units[u].name, StalledFor: stalled, Cause: cause.String()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StalledFor != out[j].StalledFor {
			return out[i].StalledFor > out[j].StalledFor
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}
