package sim

import (
	"errors"
	"fmt"
	"strings"
)

// ErrWatchdog is wrapped by every simulator abort: cycle-budget overruns,
// stalls (no forward progress within the stall window), and dependency
// deadlocks. Callers distinguish a watchdog abort from a compile or
// functional failure with errors.Is(err, ErrWatchdog).
var ErrWatchdog = errors.New("sim: watchdog abort")

// defaultStallWindow is the progress watchdog armed on every run: if no
// activity resolves, no burst completes, and no transfer is admitted for
// this many cycles, the schedule is livelocked (e.g. every DRAM channel
// down, or a retry storm) and the engine aborts with a diagnostic instead
// of spinning forever. Real schedules complete bursts every few hundred
// cycles, so the window only trips on genuine livelock.
const defaultStallWindow = 2_000_000

// StuckActivity describes one unresolved activity in a watchdog dump.
type StuckActivity struct {
	ID       int
	Name     string
	Kind     string // "compute", "transfer", "barrier"
	DepsLeft int
}

// StuckTransfer describes one in-flight transfer in a watchdog dump.
type StuckTransfer struct {
	Name      string
	Completed int // bursts finished
	Total     int // bursts in the transfer
	InFlight  int // bursts submitted and not yet completed
}

// WatchdogError is the structured diagnostic the engine returns when it
// aborts a run: what tripped, how far the schedule got, which activities
// are stuck, which transfers are mid-flight, and how full each DRAM
// channel queue is.
type WatchdogError struct {
	Reason     string
	Cycle      int64
	Resolved   int // activities resolved before the abort
	Total      int // activities in the schedule
	Stuck      []StuckActivity
	InFlight   []StuckTransfer
	DRAMQueues []int // per-channel request-queue occupancy
}

func (e *WatchdogError) Unwrap() error { return ErrWatchdog }

func (e *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s at cycle %d (%d/%d activities resolved)",
		ErrWatchdog, e.Reason, e.Cycle, e.Resolved, e.Total)
	const maxListed = 8
	if len(e.Stuck) > 0 {
		b.WriteString("\n  unresolved:")
		for i, s := range e.Stuck {
			if i == maxListed {
				fmt.Fprintf(&b, " ... (%d more)", len(e.Stuck)-maxListed)
				break
			}
			fmt.Fprintf(&b, " %s[%s#%d deps:%d]", s.Name, s.Kind, s.ID, s.DepsLeft)
		}
	}
	if len(e.InFlight) > 0 {
		b.WriteString("\n  in-flight transfers:")
		for i, t := range e.InFlight {
			if i == maxListed {
				fmt.Fprintf(&b, " ... (%d more)", len(e.InFlight)-maxListed)
				break
			}
			fmt.Fprintf(&b, " %s[%d/%d bursts, %d in flight]", t.Name, t.Completed, t.Total, t.InFlight)
		}
	}
	if len(e.DRAMQueues) > 0 {
		fmt.Fprintf(&b, "\n  DRAM queue occupancy: %v", e.DRAMQueues)
	}
	return b.String()
}

func kindName(k actKind) string {
	switch k {
	case actCompute:
		return "compute"
	case actTransfer:
		return "transfer"
	}
	return "barrier"
}

func actLabel(a *activity) string {
	if a.leaf != nil {
		return a.leaf.Name
	}
	return fmt.Sprintf("barrier%d", a.id)
}

// diagnostic snapshots the engine into a WatchdogError. In-flight transfer
// and DRAM queue numbers come from the same quiesceState helper the
// checkpoint drain uses, so the two always report identical figures.
func (e *engine) diagnostic(reason string) *WatchdogError {
	q := e.quiesceState()
	w := &WatchdogError{
		Reason:     reason,
		Cycle:      e.clock,
		Resolved:   e.resolvedCount,
		Total:      len(e.acts),
		InFlight:   q.InFlight,
		DRAMQueues: q.DRAMQueues,
	}
	for _, a := range e.acts {
		if a.resolved {
			continue
		}
		w.Stuck = append(w.Stuck, StuckActivity{
			ID: a.id, Name: actLabel(a), Kind: kindName(a.kind), DepsLeft: a.nDepsLeft,
		})
	}
	return w
}
