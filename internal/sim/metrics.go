package sim

import (
	"sync/atomic"

	"plasticine/internal/metrics"
)

// simInstruments is the simulator's operational telemetry, sampled by the
// event core's main loop. A nil instruments pointer (no registry armed)
// keeps the hot loop branch-predictable and allocation-free.
type simInstruments struct {
	// queueDepth gauges the scheduler's outstanding event sources at the
	// last event-loop step: DRAM events (pending completions + retrying
	// bursts) plus transfers awaiting admission.
	queueDepth *metrics.Gauge
	// eventsPerCycle observes, once per finished run, the ratio of event-loop
	// steps to simulated cycles — the event core's work-skipping efficiency
	// (1.0 would mean it degenerated to the cycle-by-cycle loop).
	eventsPerCycle *metrics.Histogram
}

// simMetrics holds the process-wide instruments; engines capture the pointer
// at prepare time, so a registry swap mid-run affects only later runs.
var simMetrics atomic.Pointer[simInstruments]

// UseMetrics registers the simulator's gauges and histograms with r and
// arms them for every subsequent run in the process (sweeps run simulations
// on many goroutines, so the instruments are process-wide, not per-run).
// Passing nil disarms them.
func UseMetrics(r *metrics.Registry) {
	if r == nil {
		simMetrics.Store(nil)
		return
	}
	simMetrics.Store(&simInstruments{
		queueDepth: r.Gauge("plasticine_sim_event_queue_depth",
			"Outstanding simulator event sources (DRAM completions, retrying bursts, transfers awaiting admission) at the last event-loop step."),
		eventsPerCycle: r.Histogram("plasticine_sim_events_per_cycle",
			"Event-loop steps per simulated cycle for finished runs (lower is better; 1.0 means no cycles were skipped)."),
	})
}

// observeRun records a finished run's event-loop efficiency. Only the event
// core reports: the cycle engine takes exactly one step per cycle by
// definition, and observing a constant 1.0 would drown the signal.
func (e *engine) observeRun(cycles int64) {
	if e.insts == nil || e.mode != EngineEvent || cycles <= 0 {
		return
	}
	e.insts.eventsPerCycle.Observe(float64(e.steps) / float64(cycles))
}
