package sim

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"plasticine/internal/dram"
)

// ErrBadCheckpoint is wrapped by every checkpoint decode/restore failure:
// truncated or corrupt snapshots, version mismatches, and snapshots taken
// from a different activity graph.
var ErrBadCheckpoint = errors.New("sim: bad checkpoint")

// CheckpointVersion is the current snapshot format version. Decode rejects
// any other version.
//
// History: v1 had no observability counters; v2 adds per-activity and
// per-running-transfer busy/high-water fields plus per-channel DRAM counters,
// so a profile taken after a checkpoint/restore is identical to one from an
// uninterrupted run.
const CheckpointVersion = 2

// ckptMagic opens every encoded checkpoint ("PLCK").
const ckptMagic = 0x504C434B

// ActState is one activity's dynamic state in a checkpoint.
type ActState struct {
	Resolved   bool
	NDepsLeft  int32
	Start, End int64
	Busy       int64 // observability: AG-busy cycles (retired transfers)
	HiWater    int32 // observability: outstanding-burst FIFO peak
}

// RunState is one in-flight transfer's AG state in a checkpoint.
type RunState struct {
	Act       int32
	NextBurst int32
	InFlight  int32
	Completed int32
	Requeue   []int32 // burst indices awaiting reissue after lost work
	Busy      int64   // observability: AG-busy cycles so far
	LastBusy  int64   // last cycle counted busy (-1 = none)
	HiWater   int32   // outstanding-burst FIFO peak so far
}

// Checkpoint is a complete, deterministic snapshot of a paused simulation:
// the clock, every activity's status, the start heap, each running
// transfer's AG, the watchdog's progress trackers, and the full DRAM state
// (queues, banks, in-flight and retrying requests, fault PRNG). Restoring
// it into an engine built from the same program resumes execution
// cycle-identically to a run that never paused.
type Checkpoint struct {
	GraphHash uint64 // fingerprint of the activity graph this state belongs to

	Clock          int64
	Makespan       int64
	Bursts         int64
	Resolved       int32
	LastResolved   int32
	LastBursts     int64
	LastProgressAt int64

	Acts    []ActState
	Ready   []int32 // activity ids, stack order
	Waiting []int32 // activity ids, heap-internal order
	Running []RunState

	DRAM *dram.MemState
}

// graphFingerprint hashes the static shape of an activity graph: ids, kinds,
// durations, burst lists and dependency edges. Two graphs built from the
// same program by the same builder hash identically; any structural drift
// (different program, changed coalescing) is caught at restore time.
func graphFingerprint(acts []*activity) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(len(acts)))
	for _, a := range acts {
		w(uint64(a.id))
		w(uint64(a.kind))
		w(uint64(a.dur))
		w(uint64(a.fill))
		if a.write {
			w(1)
		} else {
			w(0)
		}
		w(uint64(len(a.bursts)))
		for _, b := range a.bursts {
			w(b)
		}
		w(uint64(len(a.deps)))
		for _, d := range a.deps {
			w(uint64(d.on.id))
			w(uint64(d.kind))
		}
	}
	return h.Sum64()
}

// checkpoint captures the engine at a loop boundary (between cycles).
func (e *engine) checkpoint() *Checkpoint {
	cp := &Checkpoint{
		GraphHash:      graphFingerprint(e.acts),
		Clock:          e.clock,
		Makespan:       e.makespan,
		Bursts:         e.bursts,
		Resolved:       int32(e.resolvedCount),
		LastResolved:   int32(e.lastResolved),
		LastBursts:     e.lastBursts,
		LastProgressAt: e.lastProgressAt,
	}
	for _, a := range e.acts {
		cp.Acts = append(cp.Acts, ActState{Resolved: a.resolved,
			NDepsLeft: int32(a.nDepsLeft), Start: a.start, End: a.end,
			Busy: a.busy, HiWater: a.hiWater})
	}
	for _, a := range e.ready {
		cp.Ready = append(cp.Ready, int32(a.id))
	}
	for _, a := range e.waiting {
		cp.Waiting = append(cp.Waiting, int32(a.id))
	}
	for _, rx := range e.running {
		rs := RunState{Act: int32(rx.act.id), NextBurst: int32(rx.nextBurst),
			InFlight: int32(rx.inFlight), Completed: int32(rx.completed),
			Busy: rx.busy, LastBusy: rx.lastBusy, HiWater: int32(rx.hiWater)}
		for _, i := range rx.requeue {
			rs.Requeue = append(rs.Requeue, int32(i))
		}
		cp.Running = append(cp.Running, rs)
	}
	if e.dram != nil {
		cp.DRAM = e.dram.Snapshot()
	}
	return cp
}

// restore loads a checkpoint into an engine freshly built from the same
// program (acts rebuilt, DRAM fresh with the current fault view injected).
func (e *engine) restore(cp *Checkpoint) error {
	if h := graphFingerprint(e.acts); h != cp.GraphHash {
		return fmt.Errorf("%w: graph fingerprint %x does not match checkpoint %x",
			ErrBadCheckpoint, h, cp.GraphHash)
	}
	if len(cp.Acts) != len(e.acts) {
		return fmt.Errorf("%w: %d activity states for %d activities", ErrBadCheckpoint, len(cp.Acts), len(e.acts))
	}
	byID := make(map[int]*activity, len(e.acts))
	for _, a := range e.acts {
		if _, dup := byID[a.id]; dup {
			return fmt.Errorf("%w: duplicate activity id %d", ErrBadCheckpoint, a.id)
		}
		byID[a.id] = a
	}
	lookup := func(id int32) (*activity, error) {
		a, ok := byID[int(id)]
		if !ok {
			return nil, fmt.Errorf("%w: unknown activity id %d", ErrBadCheckpoint, id)
		}
		return a, nil
	}
	e.clock = cp.Clock
	e.makespan = cp.Makespan
	e.bursts = cp.Bursts
	e.resolvedCount = int(cp.Resolved)
	e.lastResolved = int(cp.LastResolved)
	e.lastBursts = cp.LastBursts
	e.lastProgressAt = cp.LastProgressAt
	e.started = true
	for i, a := range e.acts {
		st := cp.Acts[i]
		a.resolved = st.Resolved
		a.nDepsLeft = int(st.NDepsLeft)
		a.start, a.end = st.Start, st.End
		a.busy, a.hiWater = st.Busy, st.HiWater
	}
	e.ready = e.ready[:0]
	for _, id := range cp.Ready {
		a, err := lookup(id)
		if err != nil {
			return err
		}
		e.ready = append(e.ready, a)
	}
	e.waiting = e.waiting[:0]
	for _, id := range cp.Waiting {
		a, err := lookup(id)
		if err != nil {
			return err
		}
		e.waiting = append(e.waiting, a)
	}
	heap.Init(&e.waiting) // stored order is already a valid heap; Init keeps it
	e.running = e.running[:0]
	rxByID := make(map[int]*runningXfer, len(cp.Running))
	for _, rs := range cp.Running {
		a, err := lookup(rs.Act)
		if err != nil {
			return err
		}
		rx := &runningXfer{act: a, nextBurst: int(rs.NextBurst),
			inFlight: int(rs.InFlight), completed: int(rs.Completed),
			busy: rs.Busy, lastBusy: rs.LastBusy, hiWater: int(rs.HiWater)}
		rx.done = e.burstDone(rx)
		if rx.nextBurst < 0 || rx.nextBurst > len(a.bursts) {
			return fmt.Errorf("%w: transfer %d next burst %d out of range", ErrBadCheckpoint, a.id, rx.nextBurst)
		}
		for _, i := range rs.Requeue {
			if i < 0 || int(i) >= len(a.bursts) {
				return fmt.Errorf("%w: transfer %d requeued burst %d out of range", ErrBadCheckpoint, a.id, i)
			}
			rx.requeue = append(rx.requeue, int(i))
		}
		e.running = append(e.running, rx)
		rxByID[a.id] = rx
	}
	if cp.DRAM != nil {
		if e.dram == nil {
			return fmt.Errorf("%w: checkpoint carries DRAM state but the engine has no memory system", ErrBadCheckpoint)
		}
		err := e.dram.Restore(cp.DRAM, func(tag int64) func(int64) {
			actID, _ := splitTag(tag)
			rx, ok := rxByID[actID]
			if !ok {
				return nil // Restore turns a nil callback into an error
			}
			return rx.done
		})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	if e.mode == EngineEvent {
		e.rebuildEventState()
	}
	return nil
}
