package sim

import (
	"container/heap"
	"sort"
)

// This file is the discrete-event scheduling core (EngineEvent, the
// default). It resolves the identical activity graph against the identical
// DRAM model as the legacy cycle-by-cycle loop in engine.go, but instead of
// ticking every cycle it computes the next state-changing cycle and jumps
// straight to it. Byte-identity with the legacy loop is the contract — same
// cycle counts, same DRAM counters, same checkpoint bytes, same watchdog
// trip cycles — and rests on one invariant: every cycle skipped over is
// provably a no-op under the legacy loop's per-cycle step sequence
// [admit, issue, tick, watchdog, retire, drainReady].
//
// Event taxonomy (the candidates nextEventCycle gathers):
//   - transfer admission: the start heap's earliest start time;
//   - burst issue: clock+1 while any active AG can submit another burst;
//   - DRAM activity (dram.NextEventAt): pending burst completions, retry
//     backoffs elapsing, the periodic refresh, and the first cycle a
//     channel's queued work finds a ready bank;
//   - deadlines: the watchdog's stall window, the cycle budget, and the
//     periodic context-cancellation poll, so aborts land on the same cycle
//     the legacy loop would trip.
//
// Transfers that cannot act are parked instead of rescanned: a saturated AG
// (32 bursts in flight) wakes on a completion; an AG whose submission was
// rejected parks against its target channel and wakes when that channel
// frees a queue slot. The legacy engine increments a DRAM stall counter for
// every rejected per-cycle submission attempt, and those counters are part
// of the checkpoint wire format — parked transfers therefore account their
// skipped attempts virtually (settleParked) so the counters stay exact.

// issueBurstsEvent is the event core's issue pass: only transfers that may
// actually submit this cycle are scanned, in admission order (the legacy
// loop attempts transfers in running-list order, which is admission order).
// It reports whether any transfer remains issuable next cycle.
func (e *engine) issueBurstsEvent() bool {
	if len(e.active) == 0 {
		return false
	}
	if e.activeDirty {
		sort.Slice(e.active, func(i, j int) bool { return e.active[i].seq < e.active[j].seq })
		e.activeDirty = false
	}
	kept := e.active[:0]
	for _, rx := range e.active {
		if rx.act.resolved {
			continue // retired while waiting for its wakeup
		}
		e.issueInto(rx)
		switch {
		case rx.inFlight >= agOutstanding:
			rx.state = rxSat // a burst completion reactivates it
		case len(rx.requeue) == 0 && rx.nextBurst >= len(rx.act.bursts):
			rx.state = rxDone // nothing left to issue; retires when bursts land
		default:
			idx := rx.nextBurst
			if len(rx.requeue) > 0 {
				idx = rx.requeue[0]
			}
			if ok, down := e.dram.Accepts(rx.act.bursts[idx]); ok {
				rx.state = rxActive
				kept = append(kept, rx)
			} else {
				e.parkBlocked(rx, down)
			}
		}
	}
	for i := len(kept); i < len(e.active); i++ {
		e.active[i] = nil
	}
	e.active = kept
	return len(e.active) > 0
}

// parkBlocked benches a transfer whose next submission would be rejected.
// accountedThrough records that stall counters are settled through the
// current cycle (the rejection that just happened, if any, was counted for
// real by Submit).
func (e *engine) parkBlocked(rx *runningXfer, down bool) {
	ci := -1
	if !down {
		idx := rx.nextBurst
		if len(rx.requeue) > 0 {
			idx = rx.requeue[0]
		}
		ci = e.dram.ChannelIndex(rx.act.bursts[idx])
	}
	rx.state = rxBlocked
	rx.blockedDown = down
	rx.blockedChan = ci
	rx.accountedThrough = e.clock
	if e.parked == nil {
		e.parked = make(map[int][]*runningXfer)
	}
	e.parked[ci] = append(e.parked[ci], rx)
}

// settleOne adds a parked transfer's skipped per-cycle rejections (cycles
// accountedThrough+1 .. upto) to the DRAM stall counters.
func (e *engine) settleOne(rx *runningXfer, upto int64) {
	if n := upto - rx.accountedThrough; n > 0 {
		e.dram.AccountRejects(rx.blockedDown, n)
		rx.accountedThrough = upto
	}
}

// settleParked settles every parked transfer's virtual rejections through
// cycle upto — called wherever the legacy loop's real per-cycle attempts
// stop being replayable (a pause, an abort). Counter order within a cycle
// does not matter: the stall counters are plain sums.
func (e *engine) settleParked(upto int64) {
	for _, group := range e.parked {
		for _, rx := range group {
			e.settleOne(rx, upto)
		}
	}
}

// wakeParked reactivates blocked transfers whose target channel freed queue
// slots during the tick that just ran. At most `slack` transfers wake, in
// admission order — exactly the set whose next real attempt can differ from
// a rejection. A woken transfer that still loses the race for the slot (an
// active lower-seq transfer claims it first) simply fails its real attempt
// and re-parks, which is what the legacy loop's attempt would have done.
func (e *engine) wakeParked() {
	if len(e.parked) == 0 {
		return
	}
	for ci, group := range e.parked {
		if ci < 0 {
			continue // a downed channel never heals mid-run
		}
		free := e.dram.QueueSlack(ci)
		if free <= 0 {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].seq < group[j].seq })
		n := free
		if n > len(group) {
			n = len(group)
		}
		for _, rx := range group[:n] {
			e.settleOne(rx, e.clock-1) // real attempt resumes at e.clock
			rx.state = rxActive
			e.active = append(e.active, rx)
			e.activeDirty = true
		}
		if rest := group[n:]; len(rest) == 0 {
			delete(e.parked, ci)
		} else {
			e.parked[ci] = rest
		}
	}
}

// nextEventCycle returns the next cycle at which engine or memory state can
// change — the cycle the legacy loop would next do observable work on. All
// intermediate cycles are no-ops by construction: no admission is due, no
// active AG can issue, the DRAM has no completion/retry/refresh/schedule
// opportunity, and no watchdog deadline expires.
func (e *engine) nextEventCycle(stopAt int64, canIssue bool) int64 {
	if canIssue {
		// clock+1 is the floor every other candidate clamps to, so an
		// issuable transfer decides the answer outright.
		next := e.clock + 1
		if stopAt >= 0 && next > stopAt {
			next = stopAt
		}
		return next
	}
	next := int64(-1)
	consider := func(v int64) {
		if v <= e.clock {
			v = e.clock + 1
		}
		if next < 0 || v < next {
			next = v
		}
	}
	if len(e.waiting) > 0 {
		consider(e.waiting[0].start)
	}
	if at := e.dram.NextEventAt(e.clock); at >= 0 {
		consider(at)
	}
	stallWindow := e.stallWindow
	if stallWindow == 0 {
		stallWindow = defaultStallWindow
	}
	if stallWindow > 0 {
		consider(e.lastProgressAt + stallWindow)
	}
	if e.maxCycles > 0 {
		consider(e.maxCycles)
	}
	if e.ctx != nil {
		// Land exactly on the poll boundary so a cancellation aborts at the
		// same cycle the legacy loop would observe it.
		consider(e.nextCtxCheck)
	}
	if next < 0 {
		next = e.clock + 1
	}
	if stopAt >= 0 && next > stopAt {
		next = stopAt // the legacy loop ticks stopAt itself before pausing
	}
	return next
}

// runUntilEvent is runUntil's discrete-event implementation. The loop body
// mirrors the legacy cycle loop's phase order exactly — stop check, idle
// jump, admission, issue, clock advance, memory tick, watchdog, retire,
// dependency drain — with the clock advancing to the next event instead of
// by one.
func (e *engine) runUntilEvent(stopAt int64) (bool, error) {
	e.start()
	e.drainReady()
	for len(e.waiting) > 0 || len(e.running) > 0 {
		if stopAt >= 0 && e.clock >= stopAt {
			e.settleParked(e.clock - 1)
			return false, nil
		}
		// Admit transfers whose start time has arrived; if idle, jump (but
		// never past the stop point). Nothing is parked when running is
		// empty, so the jump needs no settle.
		if len(e.running) == 0 && len(e.waiting) > 0 && e.waiting[0].start > e.clock {
			jump := e.waiting[0].start
			if stopAt >= 0 && jump > stopAt {
				jump = stopAt
			}
			e.clock = jump
			e.lastProgressAt = e.clock // a jump is forward progress
			if stopAt >= 0 && e.clock >= stopAt {
				return false, nil
			}
		}
		for len(e.waiting) > 0 && e.waiting[0].start <= e.clock {
			a := heap.Pop(&e.waiting).(*activity)
			rx := &runningXfer{act: a, lastBusy: -1, seq: e.nextSeq}
			rx.done = e.burstDone(rx)
			e.nextSeq++
			e.running = append(e.running, rx)
			e.active = append(e.active, rx) // seqs ascend; order preserved
			e.lastProgressAt = e.clock      // admission is forward progress
		}
		canIssue := e.issueBurstsEvent()
		e.clock = e.nextEventCycle(stopAt, canIssue)
		e.steps++
		e.dram.Tick(e.clock)
		e.wakeParked()
		if err := e.checkWatchdog(); err != nil {
			e.settleParked(e.clock - 1)
			return false, err
		}
		if e.retireNeeded {
			e.retireNeeded = false
			e.retire()
		}
		e.drainReady()
		if e.insts != nil {
			e.insts.queueDepth.Set(int64(e.dram.EventCount() + len(e.waiting)))
		}
	}
	return true, nil
}

// drainInFlightEvent is drainInFlight's discrete-event implementation: jump
// between memory-system events until quiescent, issuing nothing, with the
// watchdog's deadlines still armed. Parked transfers accrue no stall
// counters during a drain (the legacy drain never attempts submissions);
// their accounting resumes at the post-drain clock.
func (e *engine) drainInFlightEvent() (QuiesceState, int64, error) {
	q := e.quiesceState()
	from := e.clock
	for !e.quiescent() {
		next := int64(-1)
		consider := func(v int64) {
			if v <= e.clock {
				v = e.clock + 1
			}
			if next < 0 || v < next {
				next = v
			}
		}
		if at := e.dram.NextEventAt(e.clock); at >= 0 {
			consider(at)
		}
		stallWindow := e.stallWindow
		if stallWindow == 0 {
			stallWindow = defaultStallWindow
		}
		if stallWindow > 0 {
			consider(e.lastProgressAt + stallWindow)
		}
		if e.maxCycles > 0 {
			consider(e.maxCycles)
		}
		if e.ctx != nil {
			consider(e.nextCtxCheck)
		}
		if next < 0 {
			next = e.clock + 1
		}
		e.clock = next
		e.steps++
		e.dram.Tick(e.clock)
		if err := e.checkWatchdog(); err != nil {
			return q, e.clock - from, err
		}
		if e.retireNeeded {
			e.retireNeeded = false
			e.retire()
		}
	}
	// Transfers finishing exactly at the drain boundary retire here so the
	// checkpoint sees them resolved.
	e.retire()
	for _, group := range e.parked {
		for _, rx := range group {
			rx.accountedThrough = e.clock - 1
		}
	}
	return q, e.clock - from, nil
}

// rebuildEventState re-derives the event core's indexes after a checkpoint
// restore: every running transfer starts active, so the first issue pass
// attempts them all at the resume cycle — exactly what the legacy loop does
// — and re-parks the ones that cannot act.
func (e *engine) rebuildEventState() {
	e.active = e.active[:0]
	e.parked = nil
	e.activeDirty = false
	e.retireNeeded = false
	e.nextSeq = 0
	for _, rx := range e.running {
		rx.seq = e.nextSeq
		e.nextSeq++
		rx.state = rxActive
		rx.accountedThrough = e.clock - 1
		e.active = append(e.active, rx)
	}
}
