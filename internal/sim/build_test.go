package sim

import (
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/dram"
	"plasticine/internal/pattern"
)

func TestUnitKeyIdentifiesCopyLanes(t *testing.T) {
	ctrl := &dhdl.Controller{Kind: dhdl.Pipeline, Chain: []dhdl.Counter{dhdl.CStepPar(0, 64, 16, 2)}}
	leaf := &dhdl.Controller{Kind: dhdl.ComputeKind, Depth: 1}
	ev := func(v int32) *dhdl.ExecEvent {
		return &dhdl.ExecEvent{Ctrl: leaf, Path: []*dhdl.Controller{ctrl, leaf}, Env: []int32{v}}
	}
	// Iterations 0 and 16 are different copy-lanes of a Par-2 counter
	// (they overlap on duplicate units); 0 and 32 share lane 0.
	if unitKey(ev(0)) == unitKey(ev(16)) {
		t.Error("iterations 0 and 16 are different unroll copies")
	}
	if unitKey(ev(0)) != unitKey(ev(32)) {
		t.Error("iterations 0 and 32 run on the same copy-lane")
	}
	if copyKey(ev(0)) != copyKey(ev(32)) {
		t.Error("copyKey: same lane across waves must share tile memory")
	}
	if copyKey(ev(0)) == copyKey(ev(16)) {
		t.Error("copyKey: different lanes have privatised tiles")
	}
}

func TestEnvPrefixKeyIgnoresOwnChain(t *testing.T) {
	leaf := &dhdl.Controller{Kind: dhdl.LoadKind, Chain: []dhdl.Counter{dhdl.C(4)}, Depth: 1}
	a := &dhdl.ExecEvent{Ctrl: leaf, Env: []int32{7, 0}}
	b := &dhdl.ExecEvent{Ctrl: leaf, Env: []int32{7, 3}}
	c := &dhdl.ExecEvent{Ctrl: leaf, Env: []int32{8, 0}}
	if envPrefixKey(a) != envPrefixKey(b) {
		t.Error("rows of one tile share the prefix key")
	}
	if envPrefixKey(a) == envPrefixKey(c) {
		t.Error("different outer iterations must differ")
	}
}

func TestCoalescingDedupesWithinWindow(t *testing.T) {
	m := compileDot(t)
	b := newBuilder(m)
	buf := m.Prog.DRAMs[0]
	// 32 addresses hitting two 64-byte bursts.
	var addrs []int32
	for i := 0; i < 32; i++ {
		addrs = append(addrs, int32(i%32)) // words 0..31 = 2 bursts
	}
	ev := &dhdl.ExecEvent{Ctrl: m.Prog.Leaves()[0], Buf: buf, SparseAddrs: addrs}
	bursts := b.burstsFor(ev)
	if len(bursts) != 2 {
		t.Errorf("coalesced to %d bursts, want 2", len(bursts))
	}
	// With a single-entry window, alternating addresses defeat coalescing.
	b.coalesceWindow = 1
	alt := &dhdl.ExecEvent{Ctrl: m.Prog.Leaves()[0], Buf: buf,
		SparseAddrs: []int32{0, 100, 1, 101, 2, 102}}
	if got := len(b.burstsFor(alt)); got != 6 {
		t.Errorf("window=1 produced %d bursts, want 6", got)
	}
}

func TestDenseBurstsCoverRange(t *testing.T) {
	m := compileDot(t)
	b := newBuilder(m)
	buf := m.Prog.DRAMs[0]
	ev := &dhdl.ExecEvent{Ctrl: m.Prog.Leaves()[0], Buf: buf, DenseOff: 3, DenseLen: 64}
	bursts := b.burstsFor(ev)
	// 64 words starting at word 3: bytes 12..268 span 5 bursts.
	if len(bursts) != 5 {
		t.Errorf("got %d bursts, want 5", len(bursts))
	}
	for i := 1; i < len(bursts); i++ {
		if bursts[i] != bursts[i-1]+burstBytes {
			t.Errorf("bursts not contiguous: %v", bursts)
		}
	}
}

func compileDot(t *testing.T) *compiler.Mapping {
	t.Helper()
	m, _, _ := dotSetupMapping(t)
	return m
}

// dotSetupMapping builds the standard dot mapping without running it.
func dotSetupMapping(t *testing.T) (*compiler.Mapping, *dhdl.Reg, float64) {
	t.Helper()
	return dotSetup(t, 4096, 512, true)
}

func TestNBufferAblationSlowsPipeline(t *testing.T) {
	m, _, _ := dotSetup(t, 16384, 1024, true)
	base, _, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _ := dotSetup(t, 16384, 1024, true)
	abl, _, err := RunOpts(m2, Options{DisableNBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Cycles <= base.Cycles {
		t.Errorf("single-buffered run (%d cycles) should be slower than N-buffered (%d)", abl.Cycles, base.Cycles)
	}
}

func TestDRAMOverrideOption(t *testing.T) {
	m, _, _ := dotSetup(t, 16384, 1024, true)
	base, _, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _ := dotSetup(t, 16384, 1024, true)
	one := dram.DDR3_1600x4()
	one.Channels = 1
	slow, _, err := RunOpts(m2, Options{DRAM: &one})
	if err != nil {
		t.Fatal(err)
	}
	if float64(slow.Cycles) < 1.5*float64(base.Cycles) {
		t.Errorf("1-channel run %d cycles vs 4-channel %d; want >=1.5x slower (memory bound)",
			slow.Cycles, base.Cycles)
	}
}

func TestBarriersSerializeSequentialSiblings(t *testing.T) {
	// Two independent computes (no shared memory) under a Sequential
	// parent must still serialize; under Parallel they overlap.
	build := func(kind dhdl.Kind) *compiler.Mapping {
		b := dhdl.NewBuilder("p", dhdl.Sequential)
		s1 := b.SRAM("s1", pattern.F32, 4096)
		d1 := b.SRAM("d1", pattern.F32, 4096)
		s2 := b.SRAM("s2", pattern.F32, 4096)
		d2 := b.SRAM("d2", pattern.F32, 4096)
		body := func([]dhdl.Expr) {
			b.Compute("c1", []dhdl.Counter{dhdl.CPar(4096, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(d1, ix[0], dhdl.Add(dhdl.Ld(s1, ix[0]), dhdl.CF(1)))}
			})
			b.Compute("c2", []dhdl.Counter{dhdl.CPar(4096, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(d2, ix[0], dhdl.Add(dhdl.Ld(s2, ix[0]), dhdl.CF(1)))}
			})
		}
		if kind == dhdl.Sequential {
			b.Seq("pair", nil, body)
		} else {
			b.Par("pair", func() { body(nil) })
		}
		m, err := compiler.Compile(b.MustBuild(), arch.Default())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	seqRes, _, err := Run(build(dhdl.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	parRes, _, err := Run(build(dhdl.Parallel))
	if err != nil {
		t.Fatal(err)
	}
	if float64(seqRes.Cycles) < 1.7*float64(parRes.Cycles) {
		t.Errorf("sequential (%d cycles) should be ~2x parallel (%d cycles)", seqRes.Cycles, parRes.Cycles)
	}
}
