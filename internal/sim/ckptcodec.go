package sim

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"plasticine/internal/dram"
)

// Binary checkpoint format, little-endian throughout:
//
//	u32 magic "PLCK" | u32 version | payload | u32 crc32(magic..payload)
//
// The payload is a fixed field order (see encode/decode below); every count
// is a u32 validated against the remaining input before allocation, so a
// corrupt or truncated snapshot returns an error — never a panic and never
// an unbounded allocation.

type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }
func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadCheckpoint, fmt.Sprintf(format, args...))
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated at offset %d (want %d more bytes)", r.off, n)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *rbuf) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *rbuf) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *rbuf) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *rbuf) i64() int64 { return int64(r.u64()) }

func (r *rbuf) bool() bool { return r.u8() != 0 }

// count reads a u32 element count and rejects values that could not fit in
// the remaining input at elemSize bytes per element.
func (r *rbuf) count(what string, elemSize int) int {
	n := int(r.u32())
	if r.err == nil && n*elemSize > len(r.b)-r.off {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, len(r.b)-r.off)
		return 0
	}
	return n
}

func encodeStats(w *wbuf, s dram.Stats) {
	w.i64(s.Reads)
	w.i64(s.Writes)
	w.i64(s.Refreshes)
	w.i64(s.RowHits)
	w.i64(s.RowMisses)
	w.i64(s.RowConflicts)
	w.i64(s.BytesRead)
	w.i64(s.BytesWritten)
	w.i64(s.TotalLatency)
	w.i64(int64(s.MaxQueueOcc))
	w.i64(s.StallsQueueFull)
	w.i64(s.Retries)
	w.i64(s.RetriesExhausted)
	w.i64(s.LatencySpikes)
	w.i64(s.StallsChannelDown)
}

func decodeStats(r *rbuf) dram.Stats {
	var s dram.Stats
	s.Reads = r.i64()
	s.Writes = r.i64()
	s.Refreshes = r.i64()
	s.RowHits = r.i64()
	s.RowMisses = r.i64()
	s.RowConflicts = r.i64()
	s.BytesRead = r.i64()
	s.BytesWritten = r.i64()
	s.TotalLatency = r.i64()
	s.MaxQueueOcc = int(r.i64())
	s.StallsQueueFull = r.i64()
	s.Retries = r.i64()
	s.RetriesExhausted = r.i64()
	s.LatencySpikes = r.i64()
	s.StallsChannelDown = r.i64()
	return s
}

func encodeChanStats(w *wbuf, c dram.ChanStats) {
	w.i64(c.Reads)
	w.i64(c.Writes)
	w.i64(c.RowHits)
	w.i64(c.RowMisses)
	w.i64(c.RowConflicts)
	w.i64(c.Retries)
	w.i64(int64(c.MaxQueueOcc))
}

func decodeChanStats(r *rbuf) dram.ChanStats {
	var c dram.ChanStats
	c.Reads = r.i64()
	c.Writes = r.i64()
	c.RowHits = r.i64()
	c.RowMisses = r.i64()
	c.RowConflicts = r.i64()
	c.Retries = r.i64()
	c.MaxQueueOcc = int(r.i64())
	return c
}

const chanStatsWireSize = 7 * 8

func encodeReq(w *wbuf, q dram.ReqState) {
	w.u64(q.Addr)
	w.bool(q.Write)
	w.i64(q.Issued)
	w.u32(uint32(q.Attempts))
	w.i64(q.Tag)
	w.i64(q.At)
}

func decodeReq(r *rbuf) dram.ReqState {
	var q dram.ReqState
	q.Addr = r.u64()
	q.Write = r.bool()
	q.Issued = r.i64()
	q.Attempts = int32(r.u32())
	q.Tag = r.i64()
	q.At = r.i64()
	return q
}

const reqWireSize = 8 + 1 + 8 + 4 + 8 + 8

func encodeMemState(w *wbuf, st *dram.MemState) {
	w.i64(st.Now)
	w.i64(st.NextRefresh)
	w.u64(st.RNG)
	encodeStats(w, st.Stats)
	w.u32(uint32(len(st.Chans)))
	for _, c := range st.Chans {
		encodeChanStats(w, c)
	}
	w.u32(uint32(len(st.Banks)))
	for _, b := range st.Banks {
		w.i64(b.OpenRow)
		w.i64(b.ReadyAt)
	}
	w.u32(uint32(len(st.BusFree)))
	for _, v := range st.BusFree {
		w.i64(v)
	}
	w.u32(uint32(len(st.Acts)))
	for _, v := range st.Acts {
		w.i64(v)
	}
	w.u32(uint32(len(st.Queued)))
	for _, q := range st.Queued {
		w.u32(uint32(len(q)))
		for _, rq := range q {
			encodeReq(w, rq)
		}
	}
	w.u32(uint32(len(st.Pending)))
	for _, rq := range st.Pending {
		encodeReq(w, rq)
	}
	w.u32(uint32(len(st.Retry)))
	for _, rq := range st.Retry {
		encodeReq(w, rq)
	}
}

func decodeMemState(r *rbuf) *dram.MemState {
	st := &dram.MemState{}
	st.Now = r.i64()
	st.NextRefresh = r.i64()
	st.RNG = r.u64()
	st.Stats = decodeStats(r)
	for i, n := 0, r.count("channel counters", chanStatsWireSize); i < n && r.err == nil; i++ {
		st.Chans = append(st.Chans, decodeChanStats(r))
	}
	for i, n := 0, r.count("bank", 16); i < n && r.err == nil; i++ {
		st.Banks = append(st.Banks, dram.BankState{OpenRow: r.i64(), ReadyAt: r.i64()})
	}
	for i, n := 0, r.count("bus", 8); i < n && r.err == nil; i++ {
		st.BusFree = append(st.BusFree, r.i64())
	}
	for i, n := 0, r.count("activate", 8); i < n && r.err == nil; i++ {
		st.Acts = append(st.Acts, r.i64())
	}
	nq := r.count("queue", 4)
	if r.err == nil {
		st.Queued = make([][]dram.ReqState, nq)
	}
	for qi := 0; qi < nq && r.err == nil; qi++ {
		for i, n := 0, r.count("queued request", reqWireSize); i < n && r.err == nil; i++ {
			st.Queued[qi] = append(st.Queued[qi], decodeReq(r))
		}
	}
	for i, n := 0, r.count("pending request", reqWireSize); i < n && r.err == nil; i++ {
		st.Pending = append(st.Pending, decodeReq(r))
	}
	for i, n := 0, r.count("retry request", reqWireSize); i < n && r.err == nil; i++ {
		st.Retry = append(st.Retry, decodeReq(r))
	}
	return st
}

// Encode serializes the checkpoint to its versioned binary form.
func (cp *Checkpoint) Encode() []byte {
	w := &wbuf{}
	w.u32(ckptMagic)
	w.u32(CheckpointVersion)
	w.u64(cp.GraphHash)
	w.i64(cp.Clock)
	w.i64(cp.Makespan)
	w.i64(cp.Bursts)
	w.u32(uint32(cp.Resolved))
	w.u32(uint32(cp.LastResolved))
	w.i64(cp.LastBursts)
	w.i64(cp.LastProgressAt)
	w.u32(uint32(len(cp.Acts)))
	for _, a := range cp.Acts {
		w.bool(a.Resolved)
		w.u32(uint32(a.NDepsLeft))
		w.i64(a.Start)
		w.i64(a.End)
		w.i64(a.Busy)
		w.u32(uint32(a.HiWater))
	}
	w.u32(uint32(len(cp.Ready)))
	for _, id := range cp.Ready {
		w.u32(uint32(id))
	}
	w.u32(uint32(len(cp.Waiting)))
	for _, id := range cp.Waiting {
		w.u32(uint32(id))
	}
	w.u32(uint32(len(cp.Running)))
	for _, rs := range cp.Running {
		w.u32(uint32(rs.Act))
		w.u32(uint32(rs.NextBurst))
		w.u32(uint32(rs.InFlight))
		w.u32(uint32(rs.Completed))
		w.i64(rs.Busy)
		w.i64(rs.LastBusy)
		w.u32(uint32(rs.HiWater))
		w.u32(uint32(len(rs.Requeue)))
		for _, i := range rs.Requeue {
			w.u32(uint32(i))
		}
	}
	w.bool(cp.DRAM != nil)
	if cp.DRAM != nil {
		encodeMemState(w, cp.DRAM)
	}
	w.u32(crc32.ChecksumIEEE(w.b))
	return w.b
}

// DecodeCheckpoint parses an encoded checkpoint, validating magic, version,
// checksum and every count. It never panics: corrupt input yields an error
// wrapping ErrBadCheckpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any checkpoint", ErrBadCheckpoint, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrBadCheckpoint, sum, got)
	}
	r := &rbuf{b: body}
	if m := r.u32(); m != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrBadCheckpoint, m)
	}
	if v := r.u32(); v != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrBadCheckpoint, v, CheckpointVersion)
	}
	cp := &Checkpoint{}
	cp.GraphHash = r.u64()
	cp.Clock = r.i64()
	cp.Makespan = r.i64()
	cp.Bursts = r.i64()
	cp.Resolved = int32(r.u32())
	cp.LastResolved = int32(r.u32())
	cp.LastBursts = r.i64()
	cp.LastProgressAt = r.i64()
	for i, n := 0, r.count("activity", 33); i < n && r.err == nil; i++ {
		cp.Acts = append(cp.Acts, ActState{Resolved: r.bool(),
			NDepsLeft: int32(r.u32()), Start: r.i64(), End: r.i64(),
			Busy: r.i64(), HiWater: int32(r.u32())})
	}
	for i, n := 0, r.count("ready", 4); i < n && r.err == nil; i++ {
		cp.Ready = append(cp.Ready, int32(r.u32()))
	}
	for i, n := 0, r.count("waiting", 4); i < n && r.err == nil; i++ {
		cp.Waiting = append(cp.Waiting, int32(r.u32()))
	}
	for i, n := 0, r.count("running transfer", 40); i < n && r.err == nil; i++ {
		rs := RunState{Act: int32(r.u32()), NextBurst: int32(r.u32()),
			InFlight: int32(r.u32()), Completed: int32(r.u32()),
			Busy: r.i64(), LastBusy: r.i64(), HiWater: int32(r.u32())}
		for j, m := 0, r.count("requeued burst", 4); j < m && r.err == nil; j++ {
			rs.Requeue = append(rs.Requeue, int32(r.u32()))
		}
		cp.Running = append(cp.Running, rs)
	}
	if r.bool() {
		cp.DRAM = decodeMemState(r)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(body)-r.off)
	}
	return cp, nil
}
