package sim

import (
	"context"
	"fmt"
	"time"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/dram"
	"plasticine/internal/trace"
)

// Result summarises one simulated program run.
type Result struct {
	Cycles  int64
	Seconds float64 // at the configured fabric clock

	DRAM dram.Stats
	Util compiler.Utilization

	// PowerW is modelled chip power during the run.
	PowerW float64

	// Activities and barriers in the timed graph (diagnostics).
	Activities int

	// Recovery is the per-event overhead breakdown when the run survived
	// timed mid-run faults (nil on uninterrupted runs).
	Recovery *RecoveryStats

	// WallTime is host time spent resolving the timed schedule (the engine
	// proper — excludes the one-off functional trace and graph construction,
	// which are execution, not cycle-level simulation).
	WallTime time.Duration
}

// Perf returns useful work per second given a work amount (e.g. FLOPs).
func (r *Result) Perf(work float64) float64 {
	if r.Seconds == 0 {
		return 0
	}
	return work / r.Seconds
}

// PerfPerWatt returns work per second per watt.
func (r *Result) PerfPerWatt(work float64) float64 {
	if r.PowerW == 0 {
		return 0
	}
	return r.Perf(work) / r.PowerW
}

// EffectiveBandwidth returns achieved DRAM bandwidth in bytes/second.
func (r *Result) EffectiveBandwidth() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.DRAM.BytesRead+r.DRAM.BytesWritten) / r.Seconds
}

// EngineKind selects Simulate's scheduling core.
type EngineKind int

const (
	// EngineEvent is the discrete-event core and the default: the engine
	// computes the next state-changing cycle (burst completion, retry expiry,
	// refresh, transfer admission, watchdog deadline) and jumps straight to
	// it, so quiescent stretches cost nothing. Results are byte-identical to
	// EngineCycle.
	EngineEvent EngineKind = iota
	// EngineCycle is the legacy cycle-by-cycle loop, kept as the reference
	// oracle the event core is differentially tested against.
	EngineCycle
)

func (k EngineKind) String() string {
	switch k {
	case EngineEvent:
		return "event"
	case EngineCycle:
		return "cycle"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Options tune simulator behaviour for ablation studies.
type Options struct {
	// CoalesceWindow sets the coalescing cache size in bursts; 1 disables
	// address coalescing (every sparse access issues its own burst).
	// 0 means the default (64).
	CoalesceWindow int
	// DisableNBuffer forces every scratchpad to single buffering,
	// serialising coarse-grained pipelines (Section 3.5 ablation).
	DisableNBuffer bool
	// DRAM overrides the memory-system configuration.
	DRAM *dram.Config

	// Faults arms memory-system fault injection (latency spikes,
	// transient retries, downed channels). The mapping's own fault plan
	// (Mapping.Faults) is used when this is nil.
	Faults *dram.Faults
	// MaxCycles aborts the run via the watchdog once the simulated clock
	// passes this budget (0 = unlimited).
	MaxCycles int64
	// StallWindow aborts when no forward progress (resolved activity,
	// completed burst, or admitted transfer) happens for this many cycles.
	// 0 uses the built-in default; negative disables the stall detector.
	StallWindow int64

	// Recorder receives the run's observability events (per-unit slices with
	// stall attribution, link traffic, DRAM channel counters). Nil disables
	// tracing at zero cost; see internal/trace.
	Recorder trace.Recorder

	// Recovery survives the mapping's timed mid-run fault events (drain,
	// checkpoint, repair, restore — see the recovery protocol in
	// recovery.go) instead of simulating an event-free run. With no timed
	// events in the plan this is a no-op and the run is bit-identical to a
	// plain one.
	Recovery bool
	// Engine selects the scheduling core. The zero value, EngineEvent, is
	// the discrete-event core; EngineCycle forces the legacy cycle-by-cycle
	// reference loop. Both produce byte-identical results.
	Engine EngineKind
}

// Simulate runs a compiled program and is the one simulator entry point: the
// context bounds the run (cancellation surfaces as a *WatchdogError whose
// Cause is ctx.Err()), and Options selects everything else — ablations,
// fault injection, watchdog budgets, tracing, the recovery protocol and the
// scheduling core. All of the program's DRAM buffers must be bound to
// collections; the functional results land in those collections and the
// returned state, while the returned Result carries the cycle-level timing.
func Simulate(ctx context.Context, m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Recovery && len(m.Faults.Events()) > 0 {
		return runRecovery(ctx, m, opts)
	}
	return runPlain(ctx, m, opts)
}

// Run simulates a compiled program with default options.
//
// Deprecated: use Simulate(context.Background(), m, Options{}).
func Run(m *compiler.Mapping) (*Result, *dhdl.State, error) {
	return Simulate(context.Background(), m, Options{})
}

// prepare runs the functional trace, builds the timed activity graph, and
// constructs the memory system — everything up to (but excluding) advancing
// the clock. RunOpts and RunWithRecovery share it, so the uninterrupted and
// recovering paths simulate the identical graph against the identical DRAM.
// The trace mutates the program's bound collections in place, so prepare
// must run exactly once per simulation; recovery restores into the graph it
// built rather than re-tracing.
func prepare(m *compiler.Mapping, opts Options) (*engine, *dhdl.State, error) {
	b := newBuilder(m)
	if opts.CoalesceWindow > 0 {
		b.coalesceWindow = opts.CoalesceWindow
	}
	b.disableNBuffer = opts.DisableNBuffer
	st, err := dhdl.Trace(m.Prog, b.handle)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: functional execution failed: %w", err)
	}
	dcfg := dram.DDR3_1600x4()
	dcfg.Channels = m.Params.Chip.DDRChannels
	if opts.DRAM != nil {
		dcfg = *opts.DRAM
	}
	ddr := dram.New(dcfg)
	faults := opts.Faults
	if faults == nil && m.Faults != nil {
		faults = m.Faults.DRAMFaults()
	}
	if err := ddr.InjectFaults(faults); err != nil {
		return nil, nil, err
	}
	return &engine{acts: b.acts, dram: ddr, units: b.units, rec: opts.Recorder,
		maxCycles: opts.MaxCycles, stallWindow: opts.StallWindow,
		mode: opts.Engine, insts: simMetrics.Load()}, st, nil
}

// buildResult assembles the Result for a finished engine.
func buildResult(m *compiler.Mapping, e *engine, cycles int64, t0 time.Time) *Result {
	clockHz := float64(m.Params.Chip.ClockMHz) * 1e6
	res := &Result{
		Cycles:     cycles,
		Seconds:    float64(cycles) / clockHz,
		DRAM:       e.dram.Stats(),
		Util:       m.Util,
		Activities: len(e.acts),
		WallTime:   time.Since(t0),
	}
	res.PowerW = arch.Power(m.Params, arch.Activity{
		PCUUtil: m.Util.PCUFrac,
		PMUUtil: m.Util.PMUFrac,
		AGUtil:  m.Util.AGFrac,
		FUUtil:  m.Util.FUFrac,
	})
	return res
}

// RunOpts is Run with ablation options.
//
// Deprecated: use Simulate(context.Background(), m, opts).
func RunOpts(m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	return Simulate(context.Background(), m, opts)
}

// RunCtx is RunOpts under a context.
//
// Deprecated: use Simulate(ctx, m, opts).
func RunCtx(ctx context.Context, m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	return Simulate(ctx, m, opts)
}

// runPlain simulates an uninterrupted run: the engine polls ctx periodically
// (see ctxCheckInterval) and a canceled run aborts with a *WatchdogError
// whose Cause is the context error, so errors.Is(err, context.Canceled)
// holds.
func runPlain(ctx context.Context, m *compiler.Mapping, opts Options) (*Result, *dhdl.State, error) {
	eng, st, err := prepare(m, opts)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	eng.ctx = ctx
	cycles, err := eng.run()
	if err != nil {
		return nil, nil, err
	}
	eng.observeRun(cycles)
	eng.emitTrace(m, nil)
	return buildResult(m, eng, cycles, t0), st, nil
}
