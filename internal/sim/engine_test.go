package sim

import (
	"strings"
	"testing"

	"plasticine/internal/dram"
)

func newTestEngine(acts []*activity) *engine {
	return &engine{acts: acts, dram: dram.New(dram.DDR3_1600x4())}
}

func TestEngineComputeChain(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 10, fill: 4}
	b := &activity{id: 1, kind: actCompute, dur: 5, fill: 2}
	b.addDep(a, endToStart)
	mk, err := newTestEngine([]*activity{a, b}).run()
	if err != nil {
		t.Fatal(err)
	}
	if a.end != 10 || b.start != 10 || b.end != 15 || mk != 15 {
		t.Errorf("a=[%d,%d] b=[%d,%d] makespan=%d", a.start, a.end, b.start, b.end, mk)
	}
}

func TestEngineFillToStartOverlapsStreaming(t *testing.T) {
	// A streaming consumer starts once the producer's pipeline fills, not
	// when it drains.
	p := &activity{id: 0, kind: actCompute, dur: 100, fill: 8}
	c := &activity{id: 1, kind: actCompute, dur: 100, fill: 8}
	c.addDep(p, fillToStart)
	mk, err := newTestEngine([]*activity{p, c}).run()
	if err != nil {
		t.Fatal(err)
	}
	if c.start != 8 {
		t.Errorf("consumer started at %d, want 8 (producer fill)", c.start)
	}
	if mk != 108 {
		t.Errorf("makespan = %d, want 108 (rate-matched overlap)", mk)
	}
}

func TestEngineBarrierTakesMaxOfMembers(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 30}
	b := &activity{id: 1, kind: actCompute, dur: 70}
	bar := &activity{id: 2, kind: actBarrier}
	bar.addDep(a, endToStart)
	bar.addDep(b, endToStart)
	c := &activity{id: 3, kind: actCompute, dur: 10}
	c.addDep(bar, endToStart)
	mk, err := newTestEngine([]*activity{a, b, bar, c}).run()
	if err != nil {
		t.Fatal(err)
	}
	if c.start != 70 || mk != 80 {
		t.Errorf("c.start=%d makespan=%d, want 70/80", c.start, mk)
	}
}

func TestEngineDetectsDeadlock(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 1}
	b := &activity{id: 1, kind: actCompute, dur: 1}
	a.addDep(b, endToStart)
	b.addDep(a, endToStart)
	_, err := newTestEngine([]*activity{a, b}).run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestEngineTransferContention(t *testing.T) {
	// Two transfers targeting the same channel take about twice as long
	// together as one alone.
	mkBursts := func(n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(i * 64 * 4) // all on channel 0
		}
		return out
	}
	solo := &activity{id: 0, kind: actTransfer, bursts: mkBursts(256)}
	mk1, err := newTestEngine([]*activity{solo}).run()
	if err != nil {
		t.Fatal(err)
	}
	x := &activity{id: 0, kind: actTransfer, bursts: mkBursts(256)}
	y := &activity{id: 1, kind: actTransfer, bursts: mkBursts(256)}
	mk2, err := newTestEngine([]*activity{x, y}).run()
	if err != nil {
		t.Fatal(err)
	}
	if float64(mk2) < 1.7*float64(mk1) {
		t.Errorf("two contending transfers took %d vs solo %d; want ~2x", mk2, mk1)
	}
}

func TestEngineEmptyTransferResolves(t *testing.T) {
	a := &activity{id: 0, kind: actTransfer, fill: 8} // zero bursts
	mk, err := newTestEngine([]*activity{a}).run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 8 {
		t.Errorf("makespan = %d, want 8 (fill only)", mk)
	}
}

func TestActivityDepDedup(t *testing.T) {
	a := &activity{id: 0, kind: actCompute}
	b := &activity{id: 1, kind: actCompute}
	b.addDep(a, endToStart)
	b.addDep(a, endToStart) // duplicate
	b.addDep(b, endToStart) // self
	b.addDep(nil, endToStart)
	if b.nDepsLeft != 1 || len(b.deps) != 1 {
		t.Errorf("deps=%d nDepsLeft=%d, want 1/1", len(b.deps), b.nDepsLeft)
	}
}
