package sim

import (
	"errors"
	"strings"
	"testing"

	"plasticine/internal/dhdl"
	"plasticine/internal/dram"
)

func newTestEngine(acts []*activity) *engine {
	return &engine{acts: acts, dram: dram.New(dram.DDR3_1600x4())}
}

func TestEngineComputeChain(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 10, fill: 4}
	b := &activity{id: 1, kind: actCompute, dur: 5, fill: 2}
	b.addDep(a, endToStart)
	mk, err := newTestEngine([]*activity{a, b}).run()
	if err != nil {
		t.Fatal(err)
	}
	if a.end != 10 || b.start != 10 || b.end != 15 || mk != 15 {
		t.Errorf("a=[%d,%d] b=[%d,%d] makespan=%d", a.start, a.end, b.start, b.end, mk)
	}
}

func TestEngineFillToStartOverlapsStreaming(t *testing.T) {
	// A streaming consumer starts once the producer's pipeline fills, not
	// when it drains.
	p := &activity{id: 0, kind: actCompute, dur: 100, fill: 8}
	c := &activity{id: 1, kind: actCompute, dur: 100, fill: 8}
	c.addDep(p, fillToStart)
	mk, err := newTestEngine([]*activity{p, c}).run()
	if err != nil {
		t.Fatal(err)
	}
	if c.start != 8 {
		t.Errorf("consumer started at %d, want 8 (producer fill)", c.start)
	}
	if mk != 108 {
		t.Errorf("makespan = %d, want 108 (rate-matched overlap)", mk)
	}
}

func TestEngineBarrierTakesMaxOfMembers(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 30}
	b := &activity{id: 1, kind: actCompute, dur: 70}
	bar := &activity{id: 2, kind: actBarrier}
	bar.addDep(a, endToStart)
	bar.addDep(b, endToStart)
	c := &activity{id: 3, kind: actCompute, dur: 10}
	c.addDep(bar, endToStart)
	mk, err := newTestEngine([]*activity{a, b, bar, c}).run()
	if err != nil {
		t.Fatal(err)
	}
	if c.start != 70 || mk != 80 {
		t.Errorf("c.start=%d makespan=%d, want 70/80", c.start, mk)
	}
}

func TestEngineDetectsDeadlock(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 1}
	b := &activity{id: 1, kind: actCompute, dur: 1}
	a.addDep(b, endToStart)
	b.addDep(a, endToStart)
	_, err := newTestEngine([]*activity{a, b}).run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestWatchdogAbortsLivelockedSchedule(t *testing.T) {
	// Every DRAM channel is down, so the transfer's bursts can never be
	// submitted: without a watchdog the engine would spin forever. The
	// stall detector must abort within the window and name the stuck
	// activity in its diagnostic.
	ddr := dram.New(dram.DDR3_1600x4())
	if err := ddr.InjectFaults(&dram.Faults{Down: []bool{true, true, true, true}}); err != nil {
		t.Fatal(err)
	}
	a := &activity{id: 0, kind: actTransfer,
		leaf:   &dhdl.Controller{Name: "stuck_load"},
		bursts: []uint64{0, 64, 128}}
	eng := &engine{acts: []*activity{a}, dram: ddr, stallWindow: 5000}
	_, err := eng.run()
	if err == nil {
		t.Fatal("livelocked schedule terminated without error")
	}
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("want ErrWatchdog, got %v", err)
	}
	var w *WatchdogError
	if !errors.As(err, &w) {
		t.Fatalf("want *WatchdogError, got %T", err)
	}
	if w.Resolved != 0 || w.Total != 1 {
		t.Errorf("resolved %d/%d, want 0/1", w.Resolved, w.Total)
	}
	if len(w.Stuck) != 1 || w.Stuck[0].Name != "stuck_load" || w.Stuck[0].Kind != "transfer" {
		t.Errorf("stuck dump = %+v, want the stuck_load transfer", w.Stuck)
	}
	if len(w.InFlight) != 1 || w.InFlight[0].Total != 3 || w.InFlight[0].Completed != 0 {
		t.Errorf("in-flight dump = %+v, want stuck_load with 0/3 bursts", w.InFlight)
	}
	if len(w.DRAMQueues) != 4 {
		t.Errorf("DRAM queue dump has %d channels, want 4", len(w.DRAMQueues))
	}
	if !strings.Contains(err.Error(), "stuck_load") || !strings.Contains(err.Error(), "no forward progress") {
		t.Errorf("diagnostic missing activity name or reason: %v", err)
	}
	// The abort must happen promptly, within the configured window.
	if w.Cycle > 6000 {
		t.Errorf("watchdog tripped at cycle %d, want <= ~5000", w.Cycle)
	}
}

func TestWatchdogCycleBudget(t *testing.T) {
	// A legitimate long transfer aborts once it exceeds the cycle budget.
	bursts := make([]uint64, 4096)
	for i := range bursts {
		bursts[i] = uint64(i * 64)
	}
	a := &activity{id: 0, kind: actTransfer,
		leaf: &dhdl.Controller{Name: "big_load"}, bursts: bursts}
	eng := &engine{acts: []*activity{a}, dram: dram.New(dram.DDR3_1600x4()), maxCycles: 100}
	_, err := eng.run()
	if !errors.Is(err, ErrWatchdog) || !strings.Contains(err.Error(), "cycle budget") {
		t.Fatalf("want cycle-budget watchdog abort, got %v", err)
	}
	// Without a budget the same schedule completes.
	for _, x := range []*activity{a} {
		x.resolved, x.nDepsLeft, x.start, x.end = false, 0, 0, 0
	}
	a.deps, a.dependents = nil, nil
	if _, err := newTestEngine([]*activity{a}).run(); err != nil {
		t.Fatalf("unbudgeted run failed: %v", err)
	}
}

func TestWatchdogDeadlockDiagnostic(t *testing.T) {
	a := &activity{id: 0, kind: actCompute, dur: 1, leaf: &dhdl.Controller{Name: "x"}}
	b := &activity{id: 1, kind: actCompute, dur: 1, leaf: &dhdl.Controller{Name: "y"}}
	a.addDep(b, endToStart)
	b.addDep(a, endToStart)
	_, err := newTestEngine([]*activity{a, b}).run()
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("want ErrWatchdog for dependency cycle, got %v", err)
	}
	var w *WatchdogError
	if !errors.As(err, &w) || len(w.Stuck) != 2 {
		t.Fatalf("want both cycle members in diagnostic, got %v", err)
	}
}

func TestEngineTransferContention(t *testing.T) {
	// Two transfers targeting the same channel take about twice as long
	// together as one alone.
	mkBursts := func(n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(i * 64 * 4) // all on channel 0
		}
		return out
	}
	solo := &activity{id: 0, kind: actTransfer, bursts: mkBursts(256)}
	mk1, err := newTestEngine([]*activity{solo}).run()
	if err != nil {
		t.Fatal(err)
	}
	x := &activity{id: 0, kind: actTransfer, bursts: mkBursts(256)}
	y := &activity{id: 1, kind: actTransfer, bursts: mkBursts(256)}
	mk2, err := newTestEngine([]*activity{x, y}).run()
	if err != nil {
		t.Fatal(err)
	}
	if float64(mk2) < 1.7*float64(mk1) {
		t.Errorf("two contending transfers took %d vs solo %d; want ~2x", mk2, mk1)
	}
}

func TestEngineEmptyTransferResolves(t *testing.T) {
	a := &activity{id: 0, kind: actTransfer, fill: 8} // zero bursts
	mk, err := newTestEngine([]*activity{a}).run()
	if err != nil {
		t.Fatal(err)
	}
	if mk != 8 {
		t.Errorf("makespan = %d, want 8 (fill only)", mk)
	}
}

func TestActivityDepDedup(t *testing.T) {
	a := &activity{id: 0, kind: actCompute}
	b := &activity{id: 1, kind: actCompute}
	b.addDep(a, endToStart)
	b.addDep(a, endToStart) // duplicate
	b.addDep(b, endToStart) // self
	b.addDep(nil, endToStart)
	if b.nDepsLeft != 1 || len(b.deps) != 1 {
		t.Errorf("deps=%d nDepsLeft=%d, want 1/1", len(b.deps), b.nDepsLeft)
	}
}
