package sim

import (
	"fmt"
	"strings"

	"plasticine/internal/compiler"
	"plasticine/internal/dhdl"
	"plasticine/internal/trace"
)

const burstBytes = 64

// simUnit is one physical unit the builder discovered: an unroll copy-lane of
// a compute leaf (a PCU pipeline) or of a transfer leaf (an AG + coalescing
// unit). Activities carry the unit's index; the observability layer replays
// per-unit timelines from it.
type simUnit struct {
	name   string
	origin string // source-level provenance of the leaf (empty = name)
	kind   trace.UnitKind
}

// builder consumes traced execution events and grows the activity graph.
type builder struct {
	m    *compiler.Mapping
	acts []*activity

	// DRAM buffer base addresses (4 KB aligned).
	base map[*dhdl.DRAMBuf]uint64

	// Per-physical-unit occupancy: the last execution on each unroll copy
	// of each leaf (keyed by leaf plus copy-lane).
	lastOfLeaf map[string]*activity
	// lastXferKey identifies the enclosing iteration of the last transfer
	// per leaf: rows of one tiled transfer merge into a single AG command
	// stream rather than separate round-trips.
	lastXferKey map[*dhdl.Controller]string

	// Per-memory version state for RAW/WAR edges. Memories are privatised
	// per unroll copy (the compiler duplicates PMUs under outer
	// parallelization), so the key combines the object with the copy
	// identity.
	mems map[memKey]*memVersions

	// Per-Sequential-controller-instance subtree barriers, keyed by the
	// controller plus its enclosing iteration (unrolled copies of a
	// Sequential subtree are independent instances).
	seq map[string]*seqState

	// Static access sets per leaf.
	reads, writes map[*dhdl.Controller][]any

	// Physical-unit registry: one entry per distinct unit key, in discovery
	// order. Activities store indices into units.
	units  []simUnit
	unitOf map[string]int

	// Coalescing-unit state survives across sparse transfers of the same
	// leaf only; a fresh cache per activity is a close, simpler model.
	coalesceWindow int
	// disableNBuffer forces single buffering everywhere (ablation).
	disableNBuffer bool
}

type memVersions struct {
	nbuf int
	// writers of the current version; readers per live version (ring of
	// length nbuf, index 0 = current).
	writers        []*activity
	readers        [][]*activity
	readSinceWrite bool
}

type seqState struct {
	key     string
	group   []*activity
	barrier *activity
}

func newBuilder(m *compiler.Mapping) *builder {
	b := &builder{
		m:              m,
		base:           map[*dhdl.DRAMBuf]uint64{},
		lastOfLeaf:     map[string]*activity{},
		lastXferKey:    map[*dhdl.Controller]string{},
		mems:           map[memKey]*memVersions{},
		seq:            map[string]*seqState{},
		reads:          map[*dhdl.Controller][]any{},
		writes:         map[*dhdl.Controller][]any{},
		unitOf:         map[string]int{},
		coalesceWindow: 64,
	}
	var addr uint64 = 1 << 20 // leave page 0 unmapped
	for _, d := range m.Prog.DRAMs {
		b.base[d] = addr
		n := uint64(d.Bytes())
		addr += (n + 4095) &^ 4095
	}
	return b
}

func (b *builder) newActivity(k actKind, leaf *dhdl.Controller) *activity {
	a := &activity{id: len(b.acts), kind: k, leaf: leaf, unit: -1}
	b.acts = append(b.acts, a)
	return a
}

// unitIndex resolves a unit key to its registry index, registering it on
// first sight. The display name is the leaf's name plus the copy-lane suffix
// ("#0.1" = lane positions at each parallelized level) when the leaf is
// unrolled onto duplicate units.
func (b *builder) unitIndex(ev *dhdl.ExecEvent, key string) int {
	if id, ok := b.unitOf[key]; ok {
		return id
	}
	kind := trace.UnitCompute
	if ev.Ctrl.Kind != dhdl.ComputeKind {
		kind = trace.UnitTransfer
	}
	name := ev.Ctrl.Name
	if cut := strings.IndexByte(key, '|'); cut >= 0 {
		if lanes := strings.TrimSuffix(key[cut+1:], ","); lanes != "" {
			name += "#" + strings.ReplaceAll(lanes, ",", ".")
		}
	}
	id := len(b.units)
	// Unroll copies share the leaf's provenance: the profile rolls them up
	// into one source-level row.
	b.units = append(b.units, simUnit{name: name, origin: ev.Ctrl.Provenance(), kind: kind})
	b.unitOf[key] = id
	return id
}

// handle processes one traced leaf execution.
func (b *builder) handle(ev *dhdl.ExecEvent) {
	var a *activity
	if ev.Ctrl.Kind == dhdl.ComputeKind {
		a = b.newActivity(actCompute, ev.Ctrl)
		lm := b.m.Leaves[ev.Ctrl]
		lanes := int64(lm.Lanes)
		ownUnroll := int64(ownChainUnroll(ev.Ctrl))
		firings := (ev.Iters + lanes*ownUnroll - 1) / (lanes * ownUnroll)
		if firings < 1 {
			firings = 1
		}
		a.fill = int64(lm.PipelineDepth)
		a.dur = a.fill + (firings-1)*int64(lm.II)
	} else {
		// Chain iterations of one tiled transfer (e.g. the rows of a 2-D
		// tile) form a single AG command stream: merge them into the
		// previous activity of the same enclosing iteration.
		unit := unitKey(ev)
		key := envPrefixKey(ev)
		if prev := b.lastOfLeaf[unit]; prev != nil && prev.kind == actTransfer &&
			!prev.resolved && b.lastXferKey[ev.Ctrl] == key && len(ev.Ctrl.Chain) > 0 {
			prev.bursts = append(prev.bursts, b.burstsFor(ev)...)
			return
		}
		a = b.newActivity(actTransfer, ev.Ctrl)
		a.write = ev.Write
		a.bursts = b.burstsFor(ev)
		a.fill = 8 // command path through AG and coalescing unit
		b.lastXferKey[ev.Ctrl] = key
	}

	// Occupancy: successive executions on the same physical unit (the
	// same unroll copy-lane of the same leaf) serialize.
	unit := unitKey(ev)
	a.unit = b.unitIndex(ev, unit)
	if prev := b.lastOfLeaf[unit]; prev != nil {
		a.addDep(prev, endToStart)
	}
	b.lastOfLeaf[unit] = a

	// Sequential ancestors serialize their child subtrees with tokens.
	b.applySequentialBarriers(ev, a)

	// Memory dependencies, privatised per unroll copy.
	copyID := copyKey(ev)
	streamParent := directParent(ev.Path)
	for _, mm := range b.leafReads(ev.Ctrl) {
		mv := b.memState(mm, copyID)
		for _, w := range mv.writers {
			kind := endToStart
			if streamParent != nil && streamParent.Kind == dhdl.Stream && sameParentLeaf(w, ev, streamParent) {
				kind = fillToStart
			}
			a.addDep(w, kind)
		}
		mv.readers[0] = append(mv.readers[0], a)
		mv.readSinceWrite = true
	}
	for _, mm := range b.leafWrites(ev.Ctrl) {
		mv := b.memState(mm, copyID)
		if mv.readSinceWrite && !b.isRMW(ev.Ctrl, mm) {
			// New version: rotate the buffer ring; the slot being reused
			// must have been drained by its readers (write-after-read with
			// N-buffer credits, Section 3.5).
			evicted := mv.readers[len(mv.readers)-1]
			copy(mv.readers[1:], mv.readers[:len(mv.readers)-1])
			mv.readers[0] = nil
			for _, r := range evicted {
				a.addDepWAR(r)
			}
			mv.writers = mv.writers[:0]
			mv.readSinceWrite = false
		}
		mv.writers = append(mv.writers, a)
	}
}

type memKey struct {
	mem  any
	copy string
}

func (b *builder) memState(m any, copyID string) *memVersions {
	k := memKey{m, copyID}
	if mv, ok := b.mems[k]; ok {
		return mv
	}
	nbuf := 1
	if s, ok := m.(*dhdl.SRAM); ok && !b.disableNBuffer {
		if mm := b.m.Mems[s]; mm != nil && mm.NBuf > nbuf {
			nbuf = mm.NBuf
		}
	}
	mv := &memVersions{nbuf: nbuf, readers: make([][]*activity, nbuf)}
	b.mems[k] = mv
	return mv
}

// isRMW reports whether the leaf both reads and writes m in a
// read-modify-write fashion (ReduceSRAM), which stays within one version.
func (b *builder) isRMW(c *dhdl.Controller, m any) bool {
	s, ok := m.(*dhdl.SRAM)
	if !ok || c.Kind != dhdl.ComputeKind {
		return false
	}
	for _, as := range c.Body {
		if as.Kind == dhdl.ReduceSRAM && as.SRAM == s {
			return true
		}
	}
	return false
}

func (b *builder) applySequentialBarriers(ev *dhdl.ExecEvent, a *activity) {
	// For each Sequential ancestor, the key is (child subtree, iteration
	// values of the ancestor's own counters). A key change means the
	// previous subtree must fully finish before the next starts.
	for i := 0; i < len(ev.Path)-1; i++ {
		anc := ev.Path[i]
		if anc.Kind != dhdl.Sequential {
			continue
		}
		// Instance identity: this controller at this enclosing iteration.
		inst := fmt.Sprintf("%p", anc)
		for _, v := range ev.Env[:min(anc.Depth, len(ev.Env))] {
			inst += fmt.Sprintf(";%d", v)
		}
		child := ev.Path[i+1]
		key := fmt.Sprintf("%p", child)
		hi := anc.Depth + len(anc.Chain)
		if hi > len(ev.Env) {
			hi = len(ev.Env)
		}
		for _, v := range ev.Env[anc.Depth:hi] {
			key += fmt.Sprintf(",%d", v)
		}
		st := b.seq[inst]
		if st == nil {
			st = &seqState{key: key}
			b.seq[inst] = st
		} else if st.key != key {
			bar := b.newActivity(actBarrier, nil)
			for _, m := range st.group {
				bar.addDep(m, endToStart)
			}
			st.barrier = bar
			st.group = nil
			st.key = key
		}
		if st.barrier != nil {
			a.addDep(st.barrier, endToStart)
		}
		st.group = append(st.group, a)
	}
}

// ownChainUnroll is the product of non-innermost Par factors of a compute's
// own counter chain (duplicate pipelines working on one leaf execution).
func ownChainUnroll(c *dhdl.Controller) int {
	u := 1
	for i, ctr := range c.Chain {
		if i != len(c.Chain)-1 {
			u *= ctr.Par
		}
	}
	return u
}

// unitKey identifies the physical unit instance an execution runs on: the
// leaf plus its copy-lane — position modulo Par at every parallelized
// counter level above the leaf. Executions with the same unit key share
// hardware and serialize; different copy-lanes are duplicate units and may
// overlap (subject to data dependencies).
func unitKey(ev *dhdl.ExecEvent) string {
	key := fmt.Sprintf("%p|", ev.Ctrl)
	level := 0
	ownDepth := ev.Ctrl.Depth
	for _, c := range ev.Path {
		for _, ctr := range c.Chain {
			if level >= len(ev.Env) || level >= ownDepth {
				return key
			}
			if ctr.Par > 1 {
				pos := (int(ev.Env[level]) - ctr.Min) / ctr.Step
				key += fmt.Sprintf("%d,", pos%ctr.Par)
			}
			level++
		}
	}
	return key
}

// copyKey identifies which unroll copy-lane a leaf execution belongs to:
// position modulo Par at every parallelized counter level above the leaf.
// Copies run on duplicate units with privatised tile memories; successive
// waves on the same lane share the physical memory, so its N-buffer
// write-after-read credits still apply across waves.
func copyKey(ev *dhdl.ExecEvent) string {
	key := ""
	level := 0
	ownDepth := ev.Ctrl.Depth
	for _, c := range ev.Path {
		for _, ctr := range c.Chain {
			if level >= len(ev.Env) || level >= ownDepth {
				return key
			}
			if ctr.Par > 1 {
				pos := (int(ev.Env[level]) - ctr.Min) / ctr.Step
				key += fmt.Sprintf("%d,", pos%ctr.Par)
			}
			level++
		}
	}
	return key
}

// envPrefixKey identifies the enclosing-controller iteration of a leaf
// execution: the counter values above the leaf's own chain.
func envPrefixKey(ev *dhdl.ExecEvent) string {
	d := ev.Ctrl.Depth
	if d > len(ev.Env) {
		d = len(ev.Env)
	}
	key := ""
	for _, v := range ev.Env[:d] {
		key += fmt.Sprintf("%d,", v)
	}
	return key
}

func directParent(path []*dhdl.Controller) *dhdl.Controller {
	if len(path) < 2 {
		return nil
	}
	return path[len(path)-2]
}

// sameParentLeaf reports whether activity w's leaf is also a direct child
// of the given stream parent.
func sameParentLeaf(w *activity, ev *dhdl.ExecEvent, parent *dhdl.Controller) bool {
	if w.leaf == nil {
		return false
	}
	for _, ch := range parent.Children {
		if ch == w.leaf {
			return true
		}
	}
	return false
}

// leafReads returns the memory objects a leaf reads (SRAMs, Regs, FIFOs,
// DRAM buffers), cached per leaf.
func (b *builder) leafReads(c *dhdl.Controller) []any {
	if r, ok := b.reads[c]; ok {
		return r
	}
	var out []any
	seen := map[any]bool{}
	add := func(m any) {
		switch v := m.(type) {
		case *dhdl.SRAM:
			if v == nil {
				return
			}
		case *dhdl.Reg:
			if v == nil {
				return
			}
		case *dhdl.FIFOMem:
			if v == nil {
				return
			}
		case *dhdl.DRAMBuf:
			if v == nil {
				return
			}
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, ctr := range c.Chain {
		if ctr.MaxReg != nil {
			add(ctr.MaxReg)
		}
	}
	switch c.Kind {
	case dhdl.ComputeKind:
		for _, as := range c.Body {
			exprs := []dhdl.Expr{as.Val}
			if as.Addr != nil {
				exprs = append(exprs, as.Addr)
			}
			if as.Cond != nil {
				exprs = append(exprs, as.Cond)
			}
			for _, e := range exprs {
				for _, s := range dhdl.ReadSRAMs(e) {
					add(s)
				}
				for _, f := range dhdl.ReadFIFOs(e) {
					add(f)
				}
				for _, r := range dhdl.ReadRegs(e) {
					add(r)
				}
			}
			if as.Kind == dhdl.ReduceSRAM {
				add(as.SRAM)
			}
		}
	default:
		x := c.Xfer
		if x.CountReg != nil {
			add(x.CountReg)
		}
		switch c.Kind {
		case dhdl.LoadKind:
			add(x.DRAM)
		case dhdl.StoreKind:
			add(x.SRAM)
			add(x.FIFO)
		case dhdl.GatherKind:
			add(x.AddrMem)
			add(x.AddrFIFO)
			add(x.DRAM)
		case dhdl.ScatterKind:
			add(x.AddrMem)
			add(x.AddrFIFO)
			add(x.DataMem)
			add(x.DataFIFO)
		}
	}
	out = dropTypedNils(out)
	b.reads[c] = out
	return out
}

// leafWrites returns the memory objects a leaf writes.
func (b *builder) leafWrites(c *dhdl.Controller) []any {
	if w, ok := b.writes[c]; ok {
		return w
	}
	var out []any
	seen := map[any]bool{}
	add := func(m any) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	switch c.Kind {
	case dhdl.ComputeKind:
		for _, as := range c.Body {
			switch as.Kind {
			case dhdl.WriteSRAM, dhdl.ReduceSRAM:
				add(as.SRAM)
			case dhdl.WriteReg, dhdl.ReduceReg:
				add(as.Reg)
			case dhdl.PushFIFO:
				add(as.FIFO)
			}
		}
	default:
		x := c.Xfer
		switch c.Kind {
		case dhdl.LoadKind:
			add(x.SRAM)
			add(x.FIFO)
		case dhdl.StoreKind:
			add(x.DRAM)
		case dhdl.GatherKind:
			add(x.SRAM)
			add(x.FIFO)
		case dhdl.ScatterKind:
			add(x.DRAM)
		}
	}
	out = dropTypedNils(out)
	b.writes[c] = out
	return out
}

// dropTypedNils removes typed-nil entries ((*SRAM)(nil) etc.) that slip in
// through optional transfer fields.
func dropTypedNils(in []any) []any {
	out := in[:0]
	for _, m := range in {
		switch v := m.(type) {
		case *dhdl.SRAM:
			if v == nil {
				continue
			}
		case *dhdl.Reg:
			if v == nil {
				continue
			}
		case *dhdl.FIFOMem:
			if v == nil {
				continue
			}
		case *dhdl.DRAMBuf:
			if v == nil {
				continue
			}
		}
		out = append(out, m)
	}
	return out
}

// burstsFor converts a transfer event into burst-aligned DRAM addresses.
// Dense transfers become sequential bursts; sparse transfers go through the
// coalescing cache, which merges addresses falling into the same burst
// within a sliding window (Section 3.4).
func (b *builder) burstsFor(ev *dhdl.ExecEvent) []uint64 {
	base := b.base[ev.Buf]
	if len(ev.SparseAddrs) == 0 {
		startB := base + uint64(ev.DenseOff)*4
		endB := startB + uint64(ev.DenseLen)*4
		first := startB &^ (burstBytes - 1)
		var out []uint64
		for a := first; a < endB; a += burstBytes {
			out = append(out, a)
		}
		return out
	}
	// Coalescing cache: recent-burst window keyed by burst address.
	window := make(map[uint64]bool, b.coalesceWindow)
	var order []uint64
	var out []uint64
	for _, idx := range ev.SparseAddrs {
		addr := (base + uint64(ev.DenseOff)*4 + uint64(idx)*4) &^ (burstBytes - 1)
		if window[addr] {
			continue
		}
		out = append(out, addr)
		window[addr] = true
		order = append(order, addr)
		if len(order) > b.coalesceWindow {
			// Evict the oldest entry.
			old := order[0]
			order = order[1:]
			delete(window, old)
		}
	}
	return out
}
