package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"plasticine/internal/trace"
)

// armUnits assigns each checkpoint-graph activity its own physical unit and
// arms a Collector on the engine, mirroring what the builder does for
// compiled programs.
func armUnits(e *engine) *trace.Collector {
	for i, a := range e.acts {
		a.unit = i
		kind := trace.UnitTransfer
		if a.kind == actCompute {
			kind = trace.UnitCompute
		}
		e.units = append(e.units, simUnit{name: actLabel(a), kind: kind})
	}
	col := trace.NewCollector()
	e.rec = col
	return col
}

// TestProfileCounterFidelityAcrossCheckpoint is the observability acceptance
// test for mid-run recovery: a profile taken after checkpoint/encode/decode/
// restore must be byte-identical to one from an uninterrupted run.
func TestProfileCounterFidelityAcrossCheckpoint(t *testing.T) {
	ref := ckptEngine(buildCkptGraph(), ckptFaults())
	refCol := armUnits(ref)
	if _, err := ref.run(); err != nil {
		t.Fatal(err)
	}
	ref.emitTrace(nil, nil)
	want, err := refCol.CountersJSON("ckpt")
	if err != nil {
		t.Fatal(err)
	}

	paused := ckptEngine(buildCkptGraph(), ckptFaults())
	armUnits(paused)
	done, err := paused.runUntil(1500)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("graph finished before the pause point; enlarge it")
	}
	dec, err := DecodeCheckpoint(paused.checkpoint().Encode())
	if err != nil {
		t.Fatal(err)
	}

	resumed := ckptEngine(buildCkptGraph(), ckptFaults())
	resCol := armUnits(resumed)
	if err := resumed.restore(dec); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.run(); err != nil {
		t.Fatal(err)
	}
	resumed.emitTrace(nil, nil)
	got, err := resCol.CountersJSON("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("profile after checkpoint/restore differs from uninterrupted run:\n--- uninterrupted\n%s\n--- restored\n%s", want, got)
	}
}

// TestOldCheckpointVersionRejected forges a v1 snapshot (valid CRC, old
// version field) and demands a clear versioned error, never a panic.
func TestOldCheckpointVersionRejected(t *testing.T) {
	paused := ckptEngine(buildCkptGraph(), ckptFaults())
	if _, err := paused.runUntil(1000); err != nil {
		t.Fatal(err)
	}
	enc := paused.checkpoint().Encode()

	old := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(old[4:8], 1) // layout: magic | version | payload | crc
	binary.LittleEndian.PutUint32(old[len(old)-4:], crc32.ChecksumIEEE(old[:len(old)-4]))

	cp, err := DecodeCheckpoint(old)
	if cp != nil || err == nil {
		t.Fatal("v1 checkpoint decoded without error")
	}
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("want ErrBadCheckpoint, got %v", err)
	}
	for _, needle := range []string{"version 1", "2"} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("error %q does not name %q", err, needle)
		}
	}
}

// TestWatchdogDiagnosticTopStalled checks the livelock dump ranks stalled
// units with a stall cause from the observability taxonomy.
func TestWatchdogDiagnosticTopStalled(t *testing.T) {
	e := ckptEngine(buildCkptGraph(), nil)
	armUnits(e)
	if _, err := e.runUntil(300); err != nil {
		t.Fatal(err)
	}
	w := e.diagnostic("probe")
	if len(w.TopStalled) == 0 {
		t.Fatal("mid-run diagnostic has no stalled units")
	}
	if len(w.TopStalled) > 5 {
		t.Errorf("%d stalled units listed, cap is 5", len(w.TopStalled))
	}
	for i, u := range w.TopStalled {
		if u.Name == "" || u.Cause == "" {
			t.Errorf("stalled unit %d incomplete: %+v", i, u)
		}
		if u.StalledFor < 0 {
			t.Errorf("%s stalled for negative cycles: %d", u.Name, u.StalledFor)
		}
		if i > 0 && u.StalledFor > w.TopStalled[i-1].StalledFor {
			t.Error("TopStalled not sorted by stall length")
		}
	}
	// The store unit waits behind the compute: input starvation, not DRAM.
	for _, u := range w.TopStalled {
		if u.Name == "store" && u.Cause != trace.CauseInputStarved.String() {
			t.Errorf("store's cause %q, want input-starved (waits on compute)", u.Cause)
		}
	}
	if msg := w.Error(); !strings.Contains(msg, "most-stalled units:") {
		t.Errorf("diagnostic rendering lacks the stalled-unit dump:\n%s", msg)
	}
}

// TestEndToEndProfileInvariant runs a real compiled program with the Recorder
// armed and checks the paper-table invariant plus Chrome-trace validity.
func TestEndToEndProfileInvariant(t *testing.T) {
	m, total, want := dotSetup(t, 4096, 512, true)
	col := trace.NewCollector()
	res, st, err := RunOpts(m, Options{Recorder: col})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(st.RegValue(total).F); got != want {
		t.Fatalf("functional result %v, want %v", got, want)
	}
	rep := col.Report()
	if rep.TotalCycles != res.Cycles {
		t.Errorf("report covers %d cycles, run took %d", rep.TotalCycles, res.Cycles)
	}
	if len(rep.Units) == 0 {
		t.Fatal("no units registered")
	}
	var sawBusy, sawAG, sawPCU bool
	for i := range rep.Units {
		u := &rep.Units[i]
		if got := u.Busy + u.StallTotal() + u.Idle; got != u.Total {
			t.Errorf("%s: busy+stalls+idle = %d, want %d", u.Name, got, u.Total)
		}
		sawBusy = sawBusy || u.Busy > 0
		sawAG = sawAG || u.Kind == "ag"
		sawPCU = sawPCU || u.Kind == "pcu"
	}
	if !sawBusy || !sawAG || !sawPCU {
		t.Errorf("profile missing work: busy=%v ag=%v pcu=%v", sawBusy, sawAG, sawPCU)
	}
	if rep.Bottleneck == "" || rep.BottleneckWhy == "" {
		t.Error("no bottleneck named")
	}
	if len(rep.Channels) == 0 {
		t.Error("no DRAM channel counters")
	}
	if len(rep.Links) == 0 {
		t.Error("no link utilization recorded")
	}
	data, err := col.ChromeTrace("dot")
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Errorf("Chrome trace invalid: %v", err)
	}
}

// TestNilRecorderUnchanged confirms the default path (no Recorder) still
// produces the same makespan as an armed run: tracing must observe, never
// perturb.
func TestNilRecorderUnchanged(t *testing.T) {
	plain := ckptEngine(buildCkptGraph(), ckptFaults())
	mk1, err := plain.run()
	if err != nil {
		t.Fatal(err)
	}
	armed := ckptEngine(buildCkptGraph(), ckptFaults())
	armUnits(armed)
	mk2, err := armed.run()
	if err != nil {
		t.Fatal(err)
	}
	if mk1 != mk2 {
		t.Errorf("armed recorder changed the makespan: %d vs %d", mk2, mk1)
	}
}

// BenchmarkRecorderOverhead measures the hot-loop cost of the observability
// subsystem: the same schedule with the Recorder off and on (acceptance
// criterion: armed within ~2% of off).
func BenchmarkRecorderOverhead(b *testing.B) {
	for _, armed := range []bool{false, true} {
		name := "off"
		if armed {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := ckptEngine(buildCkptGraph(), nil)
				if armed {
					armUnits(e)
				}
				if _, err := e.run(); err != nil {
					b.Fatal(err)
				}
				e.emitTrace(nil, nil)
			}
		})
	}
}
