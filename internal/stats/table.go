// Package stats provides the small formatting helpers the experiment
// harnesses use to print paper-style tables.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRow appends a row from an explicit cell slice — the unambiguous way to
// add cells whose values may themselves contain "|". Cells beyond the header
// count are dropped, short rows are padded, exactly as Add.
func (t *Table) AddRow(cells []string) { t.Add(cells...) }

// Addf appends a row of formatted values, one cell per "|"-separated segment
// of the format string. The format is split before formatting and each
// segment consumes its own verbs in order, so a "|" inside a formatted value
// (e.g. a label like "a|b") stays within its cell instead of splitting the
// row.
func (t *Table) Addf(format string, args ...any) {
	segs := strings.Split(format, "|")
	cells := make([]string, 0, len(segs))
	next := 0
	for _, seg := range segs {
		hi := next + countVerbs(seg)
		if hi > len(args) {
			hi = len(args)
		}
		cells = append(cells, fmt.Sprintf(seg, args[next:hi]...))
		next = hi
	}
	t.Add(cells...)
}

// countVerbs counts the arguments a format segment consumes: one per verb
// ("%%" escapes none) plus one per "*" width/precision.
func countVerbs(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		if i+1 < len(s) && s[i+1] == '%' {
			i++
			continue
		}
		j := i + 1
		for j < len(s) && strings.ContainsRune("+-# 0123456789.*", rune(s[j])) {
			if s[j] == '*' {
				n++
			}
			j++
		}
		if j < len(s) {
			n++
		}
		i = j
	}
	return n
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// F formats a float compactly (3 significant-ish digits).
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// CSV renders the table as comma-separated values (quotes when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(esc(h))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	return b.String()
}
