// Package stats provides the small formatting helpers the experiment
// harnesses use to print paper-style tables.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// F formats a float compactly (3 significant-ish digits).
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// CSV renders the table as comma-separated values (quotes when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(esc(h))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	return b.String()
}
