package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("title", "Name", "Value")
	tb.Add("short", "1")
	tb.Add("a-much-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	// Header and rows share column offsets.
	header := lines[1]
	row := lines[4]
	hIdx := strings.Index(header, "Value")
	rIdx := strings.Index(row, "22")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableAddTruncatesExtraCells(t *testing.T) {
	tb := New("", "A", "B")
	tb.Add("1", "2", "3", "4")
	if got := len(tb.Rows[0]); got != 2 {
		t.Errorf("row has %d cells, want 2", got)
	}
}

func TestTableAddfSplitsOnPipe(t *testing.T) {
	tb := New("", "A", "B")
	tb.Addf("%d|%s", 7, "x")
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "x" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestTableAddfValueWithPipeStaysInCell(t *testing.T) {
	// The format splits into cells before formatting, so a "|" inside a
	// formatted value must not shift the row.
	tb := New("", "A", "B")
	tb.Addf("%s|%d", "a|b", 3)
	if tb.Rows[0][0] != "a|b" || tb.Rows[0][1] != "3" {
		t.Errorf("row = %v, want [a|b 3]", tb.Rows[0])
	}
}

func TestTableAddfEscapedPercentAndStar(t *testing.T) {
	tb := New("", "A", "B", "C")
	tb.Addf("100%%|%*d|%s", 4, 7, "x")
	if tb.Rows[0][0] != "100%" || tb.Rows[0][1] != "   7" || tb.Rows[0][2] != "x" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestTableAddRow(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow([]string{"x|y", "2", "dropped"})
	if len(tb.Rows[0]) != 2 || tb.Rows[0][0] != "x|y" || tb.Rows[0][1] != "2" {
		t.Errorf("row = %v", tb.Rows[0])
	}
	tb.AddRow([]string{"only"})
	if tb.Rows[1][1] != "" {
		t.Errorf("short row not padded: %v", tb.Rows[1])
	}
}

func TestFFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3.14159, "3.14"},
		{42.7, "42.7"},
		{123.4, "123"},
		{-256.2, "-256"},
		{-12.34, "-12.3"},
	}
	for _, c := range cases {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.4567); got != "45.7%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "A", "B")
	tb.Add("x,y", `say "hi"`)
	tb.Add("plain", "2")
	got := tb.CSV()
	want := "A,B\n\"x,y\",\"say \"\"hi\"\"\"\nplain,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
