package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("title", "Name", "Value")
	tb.Add("short", "1")
	tb.Add("a-much-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	// Header and rows share column offsets.
	header := lines[1]
	row := lines[4]
	hIdx := strings.Index(header, "Value")
	rIdx := strings.Index(row, "22")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableAddTruncatesExtraCells(t *testing.T) {
	tb := New("", "A", "B")
	tb.Add("1", "2", "3", "4")
	if got := len(tb.Rows[0]); got != 2 {
		t.Errorf("row has %d cells, want 2", got)
	}
}

func TestTableAddfSplitsOnPipe(t *testing.T) {
	tb := New("", "A", "B")
	tb.Addf("%d|%s", 7, "x")
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "x" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestFFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3.14159, "3.14"},
		{42.7, "42.7"},
		{123.4, "123"},
		{-256.2, "-256"},
		{-12.34, "-12.3"},
	}
	for _, c := range cases {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.4567); got != "45.7%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "A", "B")
	tb.Add("x,y", `say "hi"`)
	tb.Add("plain", "2")
	got := tb.CSV()
	want := "A,B\n\"x,y\",\"say \"\"hi\"\"\"\nplain,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
