package serve

// Service observability: the Prometheus registry wiring (/metricsz), the
// request-ID middleware with per-phase tracing, the bounded ring of
// recent request traces (/debugz/requests), the JSON access log, and the
// slow-request log. Everything here is a side channel — metrics and
// traces never influence admission, dispatch or evaluation, and the
// collectors are nil-safe, so the deterministic outputs the CI diffs are
// untouched.

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"plasticine/internal/dse"
	"plasticine/internal/exec"
	"plasticine/internal/metrics"
	"plasticine/internal/tune"
)

// serverMetrics bundles the hot-path collectors so handlers touch fields,
// not the registry's name-lookup path.
type serverMetrics struct {
	reg         *metrics.Registry
	requests    *metrics.CounterVec   // route, status
	duration    *metrics.HistogramVec // route
	queueWait   *metrics.HistogramVec // tenant
	serviceTime *metrics.HistogramVec // tenant
	shed        *metrics.CounterVec   // tenant
	quotaDenied *metrics.CounterVec   // tenant
	panics      *metrics.Counter
	slow        *metrics.Counter
}

// registerMetrics builds the server's metric families on reg. Gauge and
// counter functions close over the server and are sampled at scrape
// time, so existing atomics (queue depth, pool occupancy, cache stats)
// export without double bookkeeping. Metric naming scheme: every family
// is plasticine_<noun>_<unit-or-total>; histograms are _seconds; tiered
// counters share one family with a tier label.
func (s *Server) registerMetrics(reg *metrics.Registry) *serverMetrics {
	m := &serverMetrics{reg: reg}
	m.requests = reg.CounterVec("plasticine_http_requests_total",
		"HTTP requests completed, by route and status code.", "route", "status")
	m.duration = reg.HistogramVec("plasticine_http_request_duration_seconds",
		"Wall time per HTTP request, by route.", "route")
	m.queueWait = reg.HistogramVec("plasticine_queue_wait_seconds",
		"Time queued requests waited for a dispatcher slot, by tenant.", "tenant")
	m.serviceTime = reg.HistogramVec("plasticine_service_time_seconds",
		"Dispatcher execution time per queued request, by tenant.", "tenant")
	m.shed = reg.CounterVec("plasticine_requests_shed_total",
		"Requests shed with 429 (watermark or full queue), by tenant.", "tenant")
	m.quotaDenied = reg.CounterVec("plasticine_quota_denied_total",
		"Requests refused by the tenant token bucket, by tenant.", "tenant")
	m.panics = reg.Counter("plasticine_request_panics_total",
		"Request evaluations that panicked and were isolated.")
	m.slow = reg.Counter("plasticine_slow_requests_total",
		"Requests whose wall time crossed the slow-request threshold.")

	reg.RegisterBuildInfo("plasticine_build_info")
	reg.GaugeFunc("plasticine_queue_depth",
		"Requests waiting in the admission queue.",
		func() float64 { return float64(s.queue.Len()) })
	reg.GaugeFunc("plasticine_dispatchers_busy",
		"Dispatcher slots currently executing a request.",
		func() float64 { return float64(s.busy.Load()) })
	reg.GaugeFunc("plasticine_dispatcher_slots",
		"Total dispatcher slots.",
		func() float64 { return float64(s.cfg.Concurrency) })
	reg.GaugeFunc("plasticine_streams_active",
		"Committed NDJSON streams currently open (sweeps and tunes).",
		func() float64 { return float64(s.streams.Load()) })
	reg.GaugeFunc("plasticine_tune_searches_active",
		"/v1/tune searches currently admitted.",
		func() float64 { return float64(s.tunes.Load()) })
	reg.GaugeFunc("plasticine_goroutines",
		"Goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("plasticine_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return s.cfg.now().Sub(s.start).Seconds() })
	reg.GaugeFunc("plasticine_pool_running",
		"Evaluation-pool workers currently running jobs.",
		func() float64 { return float64(s.sess.Engine().Pool().Running()) })
	reg.CounterFunc("plasticine_job_retries_total",
		"Evaluation job retries under the engine's policy.",
		func() float64 { return float64(s.sess.Retries()) })

	failed := func(class string, pick func(t, p int64) int64) {
		reg.LabeledCounterFunc("plasticine_jobs_failed_total",
			"Evaluation jobs that failed after the retry budget, by class.",
			[]string{"class"}, []string{class},
			func() float64 { t, p := s.sess.Engine().FailedJobs(); return float64(pick(t, p)) })
	}
	failed("transient", func(t, _ int64) int64 { return t })
	failed("permanent", func(_, p int64) int64 { return p })

	tiered := func(name, help, tier string, get func(exec.CacheStats) int64) {
		reg.LabeledCounterFunc(name, help, []string{"tier"}, []string{tier},
			func() float64 { return float64(get(s.sess.CacheStats())) })
	}
	tiered("plasticine_cache_hits_total", "Design-point cache hits, by tier.",
		"memory", func(c exec.CacheStats) int64 { return c.Hits })
	tiered("plasticine_cache_hits_total", "Design-point cache hits, by tier.",
		"disk", func(c exec.CacheStats) int64 { return c.DiskHits })
	tiered("plasticine_cache_misses_total", "Design-point cache misses, by tier.",
		"memory", func(c exec.CacheStats) int64 { return c.Misses })
	tiered("plasticine_cache_writes_total", "Design-point cache writes, by tier.",
		"disk", func(c exec.CacheStats) int64 { return c.DiskWrites })
	tiered("plasticine_cache_evictions_total", "Design-point cache evictions, by tier.",
		"disk", func(c exec.CacheStats) int64 { return c.Evictions })
	tiered("plasticine_cache_quarantined_total", "Corrupt cache entries quarantined, by tier.",
		"disk", func(c exec.CacheStats) int64 { return c.Quarantined })
	tiered("plasticine_cache_collisions_total", "Cache fingerprint collisions, by tier.",
		"memory", func(c exec.CacheStats) int64 { return c.Collisions })

	// Pre-register the tuner's and the DSE driver's families so the very
	// first scrape shows them (at zero) instead of them popping into
	// existence after the first search; registration is idempotent, so
	// the search attaches to these same collectors.
	tune.RegisterSearchMetrics(reg)
	dse.RegisterMetrics(reg)
	return m
}

// routeLabel maps a request path to a bounded label value: known routes
// keep their path, the pprof subtree collapses, everything else (404
// probes, scanner noise) is "other" so arbitrary paths cannot mint
// series.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/statsz", "/metricsz",
		"/v1/compile", "/v1/run", "/v1/profile", "/v1/explain",
		"/v1/sweep", "/v1/tune", "/debugz/panic", "/debugz/requests":
		return path
	}
	if strings.HasPrefix(path, "/debugz/pprof/") {
		return "/debugz/pprof"
	}
	return "other"
}

// tracedRoute reports whether a path gets a request trace, a ring entry
// and an access-log line. Infra endpoints (health probes, scrapes,
// the debug surfaces themselves) are excluded so a 10s-interval scraper
// doesn't flood the ring.
func tracedRoute(path string) bool {
	return strings.HasPrefix(path, "/v1/") || path == "/debugz/panic"
}

// statusWriter captures the response status for metrics and the access
// log. It always implements http.Flusher (delegating when the underlying
// writer supports it) so NDJSON streaming keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// nextRequestID mints a process-unique request ID: start-time prefix so
// IDs from different server incarnations don't collide in shared logs,
// sequence suffix for uniqueness within one.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%08x-%06d", uint32(s.start.UnixNano()>>10), s.reqSeq.Add(1))
}

// requestRecord is one completed request in the /debugz/requests ring and
// one line of the access log.
type requestRecord struct {
	ID      string         `json:"id"`
	Tenant  string         `json:"tenant"`
	Route   string         `json:"route"`
	Status  int            `json:"status"`
	Start   time.Time      `json:"start"`
	WallUS  int64          `json:"wall_us"`
	PhaseUS int64          `json:"phase_us"` // summed span time; the gap to wall_us is uninstrumented overhead
	Slow    bool           `json:"slow,omitempty"`
	Phases  []metrics.Span `json:"phases,omitempty"`
}

// traceRing is a fixed-size ring of recent request records.
type traceRing struct {
	mu   sync.Mutex
	buf  []requestRecord
	next int
	full bool
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]requestRecord, n)} }

func (g *traceRing) add(rec requestRecord) {
	g.mu.Lock()
	g.buf[g.next] = rec
	g.next++
	if g.next == len(g.buf) {
		g.next, g.full = 0, true
	}
	g.mu.Unlock()
}

// snapshot returns the ring's records, newest first.
func (g *traceRing) snapshot() []requestRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.next
	if g.full {
		n = len(g.buf)
	}
	out := make([]requestRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, g.buf[(g.next-i+len(g.buf))%len(g.buf)])
	}
	return out
}

// instrument is the middleware around the whole mux: route/status
// metrics for every request, plus — for /v1 routes — request-ID
// assignment (accepted from X-Request-Id or generated), phase tracing
// via the request context, the trace ring, the access log, and the
// slow-request log.
func (s *Server) instrument(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

	var tr *metrics.ReqTrace
	if tracedRoute(path) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = s.nextRequestID()
		}
		tr = metrics.NewReqTrace(id, tenantOf(r), path, start)
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(metrics.WithTrace(r.Context(), tr))
	}

	s.mux.ServeHTTP(sw, r)

	wall := time.Since(start)
	route := routeLabel(path)
	s.met.requests.With(route, strconv.Itoa(sw.status)).Inc()
	s.met.duration.With(route).Observe(wall.Seconds())
	if tr != nil {
		s.finishTrace(tr, sw.status, start, wall)
	}
}

// finishTrace turns a completed request's trace into a ring entry, an
// access-log line, and — past the threshold — a slow-request log line.
func (s *Server) finishTrace(tr *metrics.ReqTrace, status int, start time.Time, wall time.Duration) {
	slow := s.cfg.SlowRequest > 0 && wall >= s.cfg.SlowRequest
	rec := requestRecord{
		ID:      tr.ID,
		Tenant:  tr.Tenant,
		Route:   tr.Route,
		Status:  status,
		Start:   start,
		WallUS:  wall.Microseconds(),
		PhaseUS: tr.SpanSumUS(),
		Slow:    slow,
		Phases:  tr.Spans(),
	}
	s.ring.add(rec)
	if s.cfg.AccessLog != nil {
		if line, err := safeMarshal(rec, false); err == nil {
			s.accessMu.Lock()
			s.cfg.AccessLog.Write(append(line, '\n'))
			s.accessMu.Unlock()
		}
	}
	if slow {
		s.met.slow.Inc()
		s.cfg.Logf("slow request id=%s route=%s tenant=%s status=%d wall=%s phases=%s",
			rec.ID, rec.Route, rec.Tenant, rec.Status, wall.Round(time.Millisecond), formatPhases(rec.Phases))
	}
}

// formatPhases renders spans as "queue=1ms sim=9.8s" for log lines.
func formatPhases(spans []metrics.Span) string {
	if len(spans) == 0 {
		return "none"
	}
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.Name,
			(time.Duration(sp.DurUS) * time.Microsecond).Round(100*time.Microsecond))
	}
	return b.String()
}

// debugRequestsDoc is the /debugz/requests response.
type debugRequestsDoc struct {
	Capacity         int             `json:"capacity"`
	SlowThresholdSec float64         `json:"slow_threshold_sec"`
	Requests         []requestRecord `json:"requests"`
}

// handleDebugRequests serves the trace ring, newest first.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, debugRequestsDoc{
		Capacity:         len(s.ring.buf),
		SlowThresholdSec: s.cfg.SlowRequest.Seconds(),
		Requests:         s.ring.snapshot(),
	})
}

// shedRequest records one shed decision in both ledgers (the /statsz
// tenant counters and the metrics registry).
func (s *Server) shedRequest(tenant string) {
	s.adm.count(tenant, func(c *TenantCounters) { c.Shed++ })
	s.met.shed.With(tenant).Inc()
}
