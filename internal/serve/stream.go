package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"plasticine/internal/exec"
	"plasticine/internal/metrics"
)

// Sweeps are long: minutes of design-point evaluation behind one request.
// /v1/sweep therefore streams NDJSON — one JSON object per line — instead
// of a single document, with heartbeats between events so a client can tell
// "the sweep is grinding" from "the server is gone". The line protocol:
//
//	{"event":"queued", "kind":..., "queue_depth":N}
//	{"event":"started"}                         // a dispatcher slot picked it up
//	{"event":"heartbeat", "elapsed_sec":..., "points_evaluated":N, ...}
//	{"event":"result", "kind":..., "data":...}  // terminal on success
//	{"event":"error", "error":..., "status":N}  // terminal on failure
//	{"event":"done"}                            // always the last line
//
// Because the 200 header is committed before the sweep finishes, failures
// after admission arrive as an "error" event, not an HTTP status.

// sweepEvent is one NDJSON line.
type sweepEvent struct {
	Event string `json:"event"`
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
	// Status carries the HTTP status the error would have had, had it
	// happened before the stream was committed.
	Status int `json:"status,omitempty"`

	QueueDepth      int     `json:"queue_depth,omitempty"`
	ElapsedSec      float64 `json:"elapsed_sec,omitempty"`
	PointsEvaluated int64   `json:"points_evaluated,omitempty"`
	CacheHits       int64   `json:"cache_hits,omitempty"`

	Data any `json:"data,omitempty"`
}

// sweepBody resolves the kind parameter to the session call that computes
// it. Every kind rides the session's pool and design-point cache, so
// identical sweeps from different tenants coalesce.
func (s *Server) sweepBody(r *http.Request) (kind string, run func(context.Context) (any, error), err error) {
	q := r.URL.Query()
	kind = q.Get("kind")
	switch kind {
	case "fig7":
		panel := q.Get("panel")
		if panel == "" {
			panel = "a"
		}
		return kind, func(ctx context.Context) (any, error) { return s.sess.Figure7(ctx, panel) }, nil
	case "table3":
		return kind, func(ctx context.Context) (any, error) { return s.sess.Table3(ctx) }, nil
	case "table6":
		return kind, func(ctx context.Context) (any, error) { return s.sess.Table6(ctx) }, nil
	case "table7":
		return kind, func(ctx context.Context) (any, error) { return s.sess.Table7(ctx) }, nil
	case "ratios":
		return kind, func(ctx context.Context) (any, error) { return s.sess.RatioStudy(ctx) }, nil
	case "bench":
		var names []string
		if raw := q.Get("bench"); raw != "" {
			names = strings.Split(raw, ",")
		}
		return kind, func(ctx context.Context) (any, error) { return s.sess.Bench(ctx, names) }, nil
	case "":
		return "", nil, errors.New("missing kind parameter: fig7, table3, table6, table7, ratios or bench")
	default:
		return "", nil, fmt.Errorf("unknown sweep kind %q: want fig7, table3, table6, table7, ratios or bench", kind)
	}
}

// handleSweep admits a sweep as a heavy request, then streams its progress.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	kind, run, err := s.sweepBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	s.streamRequest(w, r, kind, run, nil)
}

// streamRequest admits run as a heavy streamed request and relays its life
// cycle as NDJSON events. updates (nil ok) feeds additional in-band events
// produced by the running job — e.g. the tuner's per-generation lines — into
// the stream; it must be closed by run before returning, and sends into it
// must never block (the stream drains it at its own pace).
func (s *Server) streamRequest(w http.ResponseWriter, r *http.Request, kind string, run func(context.Context) (any, error), updates <-chan sweepEvent) {
	tenant := tenantOf(r)
	endAdmission := metrics.StartPhase(r.Context(), "admission")
	if !s.enterRequest(w, tenant, 1) {
		endAdmission()
		return
	}
	defer s.inflight.Done()
	s.streams.Add(1)
	defer s.streams.Add(-1)
	if s.queue.Len() >= s.cfg.ShedWatermark {
		endAdmission()
		s.shedRequest(tenant)
		writeError(w, http.StatusTooManyRequests,
			"queue past its shed watermark; retry later", s.estimatedWait())
		return
	}

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		endAdmission()
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	defer cancel()
	endAdmission()

	started := make(chan struct{})
	endQueue := metrics.StartPhase(ctx, "queue")
	j := &job{ctx: ctx, tenant: tenant, enq: s.cfg.now(), done: make(chan struct{})}
	j.run = func(ctx context.Context) (any, error) {
		endQueue()
		close(started)
		return run(ctx)
	}
	if err := s.queue.Push(tenant, s.cfg.TenantWeights[tenant], j); err != nil {
		if errors.Is(err, exec.ErrQueueFull) {
			s.shedRequest(tenant)
			writeError(w, http.StatusTooManyRequests, "queue full; retry later", s.estimatedWait())
		} else {
			writeError(w, http.StatusServiceUnavailable, "server is draining", time.Second)
		}
		return
	}

	// Commit the stream. From here, failures are in-band events.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev sweepEvent) {
		data, err := safeMarshal(ev, false)
		if err != nil {
			// Even the sanitized form failed; a committed stream must never
			// silently drop a line, so degrade to an in-band error event.
			data, _ = json.Marshal(sweepEvent{Event: "error", Kind: ev.Kind,
				Error:  fmt.Sprintf("%s event is not JSON-encodable: %v", ev.Event, err),
				Status: http.StatusInternalServerError})
		}
		w.Write(data)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}

	t0 := s.cfg.now()
	base := s.sess.CacheStats()
	emit(sweepEvent{Event: "queued", Kind: kind, QueueDepth: s.queue.Len()})
	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	sentStarted := false
	finish := func(err error) {
		if err != nil {
			var pe *exec.PanicError
			msg := err.Error()
			if errors.As(err, &pe) {
				s.met.panics.Inc()
				s.cfg.Logf("sweep panic (isolated): %v", pe.Value)
				msg = "internal: sweep evaluation panicked"
			}
			emit(sweepEvent{Event: "error", Kind: kind, Error: msg, Status: statusOf(err)})
		}
		emit(sweepEvent{Event: "done", Kind: kind, ElapsedSec: s.cfg.now().Sub(t0).Seconds()})
	}
	// drainUpdates forwards whatever the job has already published without
	// blocking. Once run returns it has closed updates, so the j.done path
	// sees every event; a nil channel (plain sweeps) never fires.
	drainUpdates := func() {
		for updates != nil {
			select {
			case ev, ok := <-updates:
				if !ok {
					updates = nil
					return
				}
				emit(ev)
			default:
				return
			}
		}
	}
	for {
		select {
		case <-started:
			started = nil // fires once
			sentStarted = true
			emit(sweepEvent{Event: "started", Kind: kind})
		case ev, ok := <-updates:
			if !ok {
				updates = nil // closed; stop selecting on it
				continue
			}
			emit(ev)
		case <-heartbeat.C:
			cur := s.sess.CacheStats()
			ev := sweepEvent{
				Event:           "heartbeat",
				Kind:            kind,
				ElapsedSec:      s.cfg.now().Sub(t0).Seconds(),
				QueueDepth:      s.queue.Len(),
				PointsEvaluated: cur.Misses - base.Misses,
				CacheHits:       cur.Hits - base.Hits,
			}
			emit(ev)
		case <-j.done:
			drainUpdates()
			if !sentStarted && j.err == nil {
				emit(sweepEvent{Event: "started", Kind: kind})
			}
			if j.err != nil {
				s.adm.count(tenant, func(c *TenantCounters) { c.Failed++ })
				finish(j.err)
			} else {
				s.adm.count(tenant, func(c *TenantCounters) { c.Completed++ })
				emit(sweepEvent{Event: "result", Kind: kind, Data: j.val,
					ElapsedSec: s.cfg.now().Sub(t0).Seconds()})
				finish(nil)
			}
			return
		case <-ctx.Done():
			s.adm.count(tenant, func(c *TenantCounters) { c.Failed++ })
			finish(fmt.Errorf("%s: %w", requestDeathMessage(ctx), ctx.Err()))
			return
		}
	}
}
