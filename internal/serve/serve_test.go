package serve

// White-box tests for the serving layer's robustness spine: admission,
// quotas, shedding (429, never 5xx), deadline propagation (504), panic
// isolation (500 for one request, the process lives), NDJSON sweep
// streaming, and graceful drain with a flushed cache tier.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"plasticine/internal/core"
	"plasticine/internal/exec"
)

// newTestServer builds a Server (and its httptest front) with fast-test
// defaults; the caller owns ts.Close, the server's Shutdown runs in cleanup.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Session:     core.NewSession(core.WithWorkers(2)),
		QueueDepth:  8,
		Concurrency: 2,
		TenantRate:  1000,
		TenantBurst: 1000,
		Heartbeat:   10 * time.Millisecond,
		DrainBudget: 10 * time.Second,
		Logf:        func(string, ...any) {},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestRunEndpointAndCrossTenantCacheHit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=alice")
	if resp.StatusCode != 200 {
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	var r core.BenchResult
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("run body is not a BenchResult: %v\n%s", err, body)
	}
	if r.Name != "InnerProduct" || r.Cycles <= 0 {
		t.Fatalf("run result = %+v", r)
	}
	// A different tenant asking for the same design point hits the shared
	// cache — the multi-tenant coalescing the service exists for.
	resp2, body2 := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=bob")
	if resp2.StatusCode != 200 {
		t.Fatalf("second tenant run = %d: %s", resp2.StatusCode, body2)
	}
	_, statsBody := get(t, ts.URL+"/statsz")
	var st Stats
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits < 1 {
		t.Fatalf("no cache hit after identical cross-tenant requests: %+v", st.Cache)
	}
	if st.Tenants["alice"].Completed != 1 || st.Tenants["bob"].Completed != 1 {
		t.Fatalf("per-tenant completion counters wrong: %+v", st.Tenants)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/v1/explain?bench=TPCHQ6")
	if resp.StatusCode != 200 {
		t.Fatalf("explain = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"Fits": true`) {
		t.Fatalf("explain body: %s", body)
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/v1/compile?bench=InnerProduct&bitstream=1")
	if resp.StatusCode != 200 {
		t.Fatalf("compile = %d: %s", resp.StatusCode, body)
	}
	var c compileResponse
	if err := json.Unmarshal(body, &c); err != nil {
		t.Fatal(err)
	}
	if c.Bench != "InnerProduct" || c.Summary == "" || len(c.Bitstream) == 0 {
		t.Fatalf("compile response incomplete: bench=%q summary=%d bytes bitstream=%d bytes",
			c.Bench, len(c.Summary), len(c.Bitstream))
	}
}

func TestUnknownBenchmarkIs404(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL+"/v1/run?bench=NoSuchBench")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown benchmark = %d, want 404", resp.StatusCode)
	}
}

func TestBadTimeoutIs400(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL+"/v1/run?bench=InnerProduct&timeout=banana")
	if resp.StatusCode != 400 {
		t.Fatalf("bad timeout = %d, want 400", resp.StatusCode)
	}
}

func TestDeadlineExpiryIs504(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := get(t, ts.URL+"/v1/run?bench=GEMM&timeout=1ns")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline = %d, want 504: %s", resp.StatusCode, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("504 body: %s", body)
	}
}

func TestQuotaDeniedIs429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.TenantRate = 0.5
		cfg.TenantBurst = 1
	})
	resp, _ := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=greedy")
	if resp.StatusCode != 200 {
		t.Fatalf("first request = %d, want 200", resp.StatusCode)
	}
	resp2, body := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=greedy")
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d, want 429: %s", resp2.StatusCode, body)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	// A different tenant is unaffected: quotas are per tenant.
	resp3, _ := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=patient")
	if resp3.StatusCode != 200 {
		t.Fatalf("other tenant = %d, want 200", resp3.StatusCode)
	}
}

// blockDispatchers wedges every dispatcher slot and fills depth queue
// entries with jobs that park until release is closed (or their ctx dies).
func blockDispatchers(t *testing.T, s *Server, depth int) (release func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan struct{})
	park := func(jctx context.Context) (any, error) {
		select {
		case <-ch:
		case <-jctx.Done():
		}
		return nil, nil
	}
	var once sync.Once
	release = func() {
		once.Do(func() {
			close(ch)
			cancel()
		})
	}
	// Register before any Fatal below: a parked dispatcher must always be
	// releasable or Shutdown in the server's cleanup would hang.
	t.Cleanup(release)
	// First occupy every dispatcher slot, waiting for each batch to drain so
	// the pushes never race the Pops past the queue bound...
	for i := 0; i < s.cfg.Concurrency; i++ {
		j := &job{ctx: ctx, run: park, done: make(chan struct{})}
		if err := s.queue.Push("blocker", 1, j); err != nil {
			t.Fatalf("slot blocker %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatchers never picked up the slot blockers")
		}
		time.Sleep(time.Millisecond)
	}
	// ...then fill the queue itself to the requested depth.
	for i := 0; i < depth; i++ {
		j := &job{ctx: ctx, run: park, done: make(chan struct{})}
		if err := s.queue.Push("blocker", 1, j); err != nil {
			t.Fatalf("queue blocker %d: %v", i, err)
		}
	}
	return release
}

func TestHeavySheddingKeepsCheapRequestsAlive(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 4
		cfg.ShedWatermark = 2
		cfg.Concurrency = 1
	})
	release := blockDispatchers(t, s, 2) // queue depth 2 == watermark
	defer release()

	// Heavy request: shed with 429 + Retry-After.
	resp, body := get(t, ts.URL+"/v1/sweep?kind=fig7&panel=f")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sweep past watermark = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 without a Retry-After header")
	}
	// Cheap request: still served — the degradation contract.
	resp2, body2 := get(t, ts.URL+"/v1/explain?bench=TPCHQ6")
	if resp2.StatusCode != 200 {
		t.Fatalf("explain while shedding = %d, want 200: %s", resp2.StatusCode, body2)
	}
	var st Stats
	_, statsBody := get(t, ts.URL+"/statsz")
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Tenants["anon"].Shed == 0 {
		t.Fatalf("shed counter never moved: %+v", st.Tenants)
	}
}

func TestQueueFullShedsNormalRequests(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 2
		cfg.ShedWatermark = 2
		cfg.Concurrency = 1
	})
	release := blockDispatchers(t, s, 2) // queue at its bound
	defer release()
	resp, body := get(t, ts.URL+"/v1/run?bench=InnerProduct")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run into a full queue = %d, want 429: %s", resp.StatusCode, body)
	}
}

func TestPanicIsolation(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) { cfg.FaultInjection = true })
	resp, body := get(t, ts.URL+"/debugz/panic")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic = %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Fatalf("500 body does not say what happened: %s", body)
	}
	// The process survived; the very next request is served normally.
	resp2, body2 := get(t, ts.URL+"/v1/run?bench=InnerProduct")
	if resp2.StatusCode != 200 {
		t.Fatalf("request after panic = %d, want 200: %s", resp2.StatusCode, body2)
	}
}

func TestSweepStreamsNDJSONWithHeartbeats(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) { cfg.Heartbeat = 5 * time.Millisecond })
	resp, err := http.Get(ts.URL + "/v1/sweep?kind=fig7&panel=f&timeout=5m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []sweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	var resultData any
	for _, ev := range events {
		count[ev.Event]++
		if ev.Event == "result" {
			resultData = ev.Data
		}
		if ev.Event == "error" {
			t.Fatalf("sweep errored: %+v", ev)
		}
	}
	if events[0].Event != "queued" || events[len(events)-1].Event != "done" {
		t.Fatalf("stream must open with queued and close with done: %v", count)
	}
	if count["started"] == 0 || count["result"] != 1 {
		t.Fatalf("event counts: %v", count)
	}
	if count["heartbeat"] == 0 {
		t.Fatalf("no heartbeats in a %d-event stream", len(events))
	}
	if resultData == nil {
		t.Fatal("result event carried no data")
	}
}

// TestSafeMarshalSanitizesNonFiniteFloats pins the boundary guard: the DSE
// layer's +Inf infeasibility markers become JSON nulls instead of killing
// the response encode.
func TestSafeMarshalSanitizesNonFiniteFloats(t *testing.T) {
	type row struct {
		A float64   `json:"a"`
		B []float64 `json:"b"`
		C float64   `json:"-"`
		D float64
	}
	v := row{A: math.Inf(1), B: []float64{1, math.NaN(), 3}, C: 9, D: 2.5}
	data, err := safeMarshal(v, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), `{"D":2.5,"a":null,"b":[1,null,3]}`; got != want {
		t.Fatalf("safeMarshal = %s, want %s", got, want)
	}
	// The fast path leaves finite values byte-for-byte as encoding/json
	// would have them.
	fin := row{A: 1, B: []float64{2}, D: 3}
	data, err = safeMarshal(fin, false)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := json.Marshal(fin)
	if string(data) != string(plain) {
		t.Fatalf("fast path diverged: %s vs %s", data, plain)
	}
}

func TestSweepBadKindIs400(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts.URL+"/v1/sweep?kind=nope")
	if resp.StatusCode != 400 {
		t.Fatalf("bad kind = %d, want 400", resp.StatusCode)
	}
	resp2, _ := get(t, ts.URL+"/v1/sweep")
	if resp2.StatusCode != 400 {
		t.Fatalf("missing kind = %d, want 400", resp2.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	// Flip to draining from another goroutine mid-test.
	go s.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := get(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	// New work is refused while draining.
	resp, _ := get(t, ts.URL+"/v1/run?bench=InnerProduct")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run while draining = %d, want 503", resp.StatusCode)
	}
}

func TestDrainWaitsForInflightAndFlushesDisk(t *testing.T) {
	dir := t.TempDir()
	disk, err := exec.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Session = core.NewSession(core.WithWorkers(2), core.WithDiskCache(disk))
		// Generous: under -race the evaluation itself can take tens of
		// seconds, and this test is about the drain waiting, not the budget.
		cfg.DrainBudget = 5 * time.Minute
	})
	// A request in flight when the drain starts must still be answered.
	type outcome struct {
		status int
		body   string
	}
	results := make(chan outcome, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/run?bench=GEMM&tenant=inflight")
		if err != nil {
			results <- outcome{status: -1, body: err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- outcome{status: resp.StatusCode, body: string(body)}
	}()
	// Give the request time to be admitted, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.requests.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got := <-results
	if got.status != 200 {
		t.Fatalf("in-flight request during drain = %d, want 200: %s", got.status, got.body)
	}
	// The disk tier saw the write-through and survived the drain.
	entries, err := exec.InspectDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("drain left no design points in the persistent tier")
	}
	for _, e := range entries {
		if e.Err != nil {
			t.Fatalf("defective entry after drain: %s: %v", e.File, e.Err)
		}
	}
}

func TestDrainCutsStragglersAtBudget(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.DrainBudget = 5 * time.Millisecond
	})
	// CNN takes on the order of 100ms — far longer than the 5ms budget — so
	// the drain must cut it loose rather than wait.
	results := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/run?bench=CNN&timeout=5m")
		if err != nil {
			results <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.requests.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	t0 := time.Now()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if took := time.Since(t0); took > 10*time.Second {
		t.Fatalf("drain took %v despite a 150ms budget", took)
	}
	status := <-results
	// The straggler was answered with a structured error, not dropped and
	// not a success.
	if status != http.StatusServiceUnavailable && status != http.StatusGatewayTimeout {
		t.Fatalf("straggler status = %d, want 503 or 504", status)
	}
}

func TestStatszShape(t *testing.T) {
	_, ts := newTestServer(t, nil)
	get(t, ts.URL+"/v1/run?bench=InnerProduct")
	_, body := get(t, ts.URL+"/statsz")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz is not valid JSON: %v\n%s", err, body)
	}
	if st.State != "serving" || st.Slots != 2 || st.QueueCap != 8 || st.Goroutines <= 0 {
		t.Fatalf("statsz = %+v", st)
	}
	if st.Requests < 1 || st.Tenants["anon"].Admitted < 1 {
		t.Fatalf("request accounting: %+v", st)
	}
	if st.Totals.Admitted < st.Tenants["anon"].Admitted || st.Totals.Completed < 1 {
		t.Fatalf("totals must aggregate the tenant ledgers: %+v", st)
	}
	if st.StreamsActive != 0 || st.TuneActive != 0 {
		t.Fatalf("idle server reports active streams: %+v", st)
	}
	if !strings.Contains(string(body), `"streams_active"`) || !strings.Contains(string(body), `"tune_active"`) ||
		!strings.Contains(string(body), `"totals"`) {
		t.Fatalf("statsz document is missing the aggregate fields:\n%s", body)
	}
}

// TestTuneStreamsGenerationsAndResult drives a tiny /v1/tune search end to
// end: the stream must open with queued, emit at least one generation event,
// carry the plasticine-tune/v1 document in its result event, and close with
// done.
func TestTuneStreamsGenerationsAndResult(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/tune?mix=InnerProduct:1&budget=2&pop=4&seed=7&max_area=120&timeout=5m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tune = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []sweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	var resultData any
	for _, ev := range events {
		count[ev.Event]++
		if ev.Event == "error" {
			t.Fatalf("tune errored: %+v", ev)
		}
		if ev.Event == "result" {
			resultData = ev.Data
		}
	}
	if events[0].Event != "queued" || events[len(events)-1].Event != "done" {
		t.Fatalf("stream must open with queued and close with done: %v", count)
	}
	if count["generation"] == 0 || count["result"] != 1 {
		t.Fatalf("event counts: %v", count)
	}
	doc, ok := resultData.(map[string]any)
	if !ok || doc["schema"] != "plasticine-tune/v1" {
		t.Fatalf("result data is not a plasticine-tune/v1 document: %v", resultData)
	}
	if _, ok := doc["front"]; !ok {
		t.Fatalf("tune document has no front: %v", doc)
	}
}

// TestTuneBadParamsAre400 pins the pre-admission validation: malformed specs
// are refused before the stream is committed.
func TestTuneBadParamsAre400(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, q := range []string{
		"mix=InnerProduct:-1",
		"budget=0",
		"budget=99999",
		"pop=0",
		"max_area=-5",
		"seed=notanumber",
	} {
		resp, _ := get(t, ts.URL+"/v1/tune?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tune?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestConcurrentMixedTrafficNever5xx hammers the server with more
// concurrent mixed requests than it can hold and checks the failure mode:
// shed work answers 429 (or, for expired deadlines, 504) — never a 5xx,
// never a dropped connection.
func TestConcurrentMixedTrafficNever5xx(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 4
		cfg.ShedWatermark = 3
		cfg.Concurrency = 2
	})
	paths := []string{
		"/v1/run?bench=InnerProduct",
		"/v1/run?bench=BlackScholes",
		"/v1/explain?bench=TPCHQ6",
		"/v1/compile?bench=InnerProduct",
		"/v1/sweep?kind=bench&bench=InnerProduct",
	}
	var wg sync.WaitGroup
	codes := make([]int, 64)
	for i := 0; i < len(codes); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + paths[i%len(paths)] + fmt.Sprintf("&tenant=t%d", i%4))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		switch code {
		case 200, http.StatusTooManyRequests, http.StatusGatewayTimeout:
		default:
			t.Errorf("request %d (%s) = %d; burst overload must shed with 429/504, never 5xx or a dropped connection",
				i, paths[i%len(paths)], code)
		}
	}
}
