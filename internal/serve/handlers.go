package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"plasticine/internal/compiler"
	"plasticine/internal/core"
	"plasticine/internal/exec"
	"plasticine/internal/metrics"
	"plasticine/internal/trace"
	"plasticine/internal/workloads"
)

// reqClass buckets endpoints by cost for admission purposes.
type reqClass int

const (
	// classCheap requests (explain) bypass the dispatch queue: they run
	// inline on the handler goroutine, cost a fraction of a quota token,
	// and are still served while the queue sheds — degrade, don't die.
	classCheap reqClass = iota
	// classNormal requests (compile, run, profile) take one token and one
	// queue slot.
	classNormal
	// classHeavy requests (sweeps) take one token and are the first shed:
	// they are refused once the queue crosses the shed watermark.
	classHeavy
)

// errorBody is the JSON shape of every non-2xx answer.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_sec,omitempty"`
}

// routes builds the endpoint table.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.Handle("/metricsz", s.met.reg.Handler())
	mux.HandleFunc("/debugz/requests", s.handleDebugRequests)
	mux.HandleFunc("/v1/compile", s.unary(classNormal, s.runCompile))
	mux.HandleFunc("/v1/run", s.unary(classNormal, s.runBenchmark))
	mux.HandleFunc("/v1/profile", s.unary(classNormal, s.runProfile))
	mux.HandleFunc("/v1/explain", s.unary(classCheap, s.runExplain))
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/tune", s.handleTune)
	if s.cfg.FaultInjection {
		mux.HandleFunc("/debugz/panic", s.unary(classNormal, func(ctx context.Context, r *http.Request) (any, error) {
			panic("fault injection: /debugz/panic")
		}))
	}
	if s.cfg.Debug {
		// CPU/heap/goroutine profiling for a live server, gated behind
		// -debug: the profile endpoints can stall a request for seconds
		// and belong off in hardened deployments.
		for _, p := range []string{"heap", "goroutine", "allocs", "block", "mutex", "threadcreate"} {
			mux.Handle("/debugz/pprof/"+p, pprof.Handler(p))
		}
		mux.HandleFunc("/debugz/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debugz/pprof/trace", pprof.Trace)
		mux.HandleFunc("/debugz/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debugz/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debugz/pprof/", pprof.Index)
	}
	return mux
}

// tenantOf identifies the requesting tenant: X-Tenant header, then the
// tenant query parameter, then "anon".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anon"
}

// requestContext derives the job context: the client's deadline (timeout
// query parameter or X-Timeout header, clamped to MaxDeadline, defaulted to
// DefaultDeadline) on top of the request context, all cut loose when the
// drain budget expires (hardCtx).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		raw = r.Header.Get("X-Timeout")
	}
	d := s.cfg.DefaultDeadline
	if raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil || parsed <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q: want a positive Go duration like 30s", raw)
		}
		d = parsed
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.hardCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

// writeJSON marshals before committing the status line, so an unencodable
// value becomes a 500 rather than a 200 with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := safeMarshal(v, true)
	if err != nil {
		data, status = []byte(`{"error":"internal: response is not JSON-encodable"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

// setRetryAfter stamps the Retry-After header from a wait estimate,
// rounded up to whole seconds with a 1s floor (never tell a client to
// retry sooner than the estimate), and returns the stamped value. Every
// Retry-After the server emits — quota denials, shed 429s, drain 503s,
// and the draining /readyz — goes through here, so the header and the
// JSON body cannot drift apart again.
func setRetryAfter(w http.ResponseWriter, d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	return sec
}

func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	body := errorBody{Error: msg}
	if retryAfter > 0 {
		body.RetryAfter = setRetryAfter(w, retryAfter)
	}
	writeJSON(w, status, body)
}

// statusOf maps an evaluation error to its HTTP status: panics are the
// server's fault (500), deadline expiry is 504, cancellation is the drain
// path (503), and everything else — compile failures, infeasible mappings,
// functional-check mismatches — is a well-formed negative answer about the
// request itself (422).
func statusOf(err error) int {
	var pe *exec.PanicError
	var nf notFoundError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.As(err, &nf):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// job is one queued request: the dispatcher runs run under ctx and delivers
// through done. tenant and enq feed the queue-wait and service-time
// histograms; zero values simply skip those observations.
type job struct {
	ctx    context.Context
	run    func(context.Context) (any, error)
	val    any
	err    error
	done   chan struct{}
	tenant string
	enq    time.Time
}

func (j *job) finish(v any, err error) {
	j.val, j.err = v, err
	close(j.done)
}

// enterRequest is the gated front half of admission: drain check, tenant
// quota, and in-flight registration, all under the admission gate so a
// request is either fully registered before a drain's inflight.Wait or
// refused — never half-admitted. On false the response has been written;
// on true the caller owes one inflight.Done.
func (s *Server) enterRequest(w http.ResponseWriter, tenant string, cost float64) bool {
	s.admitMu.RLock()
	if s.draining() {
		s.admitMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining", time.Second)
		return false
	}
	if ok, retryAfter := s.adm.take(tenant, cost); !ok {
		s.admitMu.RUnlock()
		s.adm.count(tenant, func(c *TenantCounters) { c.QuotaDenied++ })
		s.met.quotaDenied.With(tenant).Inc()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q is over its request quota", tenant), retryAfter)
		return false
	}
	s.requests.Add(1)
	s.adm.count(tenant, func(c *TenantCounters) { c.Admitted++ })
	s.inflight.Add(1)
	s.admitMu.RUnlock()
	return true
}

// admit runs the shared admission pipeline: drain check, tenant quota,
// shedding, queueing, and execution (inline for cheap requests, via a
// dispatcher slot otherwise). On a non-nil error the response has already
// been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, class reqClass, run func(context.Context) (any, error)) (any, error, bool) {
	tenant := tenantOf(r)
	cost := 1.0
	if class == classCheap {
		cost = CheapCost
	}
	endAdmission := metrics.StartPhase(r.Context(), "admission")
	if !s.enterRequest(w, tenant, cost) {
		endAdmission()
		return nil, nil, false
	}
	defer s.inflight.Done()

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		endAdmission()
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return nil, nil, false
	}
	defer cancel()
	endAdmission()

	record := func(err error) {
		s.adm.count(tenant, func(c *TenantCounters) {
			if err == nil {
				c.Completed++
			} else {
				c.Failed++
			}
		})
	}

	if class == classCheap {
		v, err := runIsolated(ctx, run)
		record(err)
		return v, err, true
	}

	if class == classHeavy && s.queue.Len() >= s.cfg.ShedWatermark {
		s.shedRequest(tenant)
		writeError(w, http.StatusTooManyRequests,
			"queue past its shed watermark; retry later", s.estimatedWait())
		return nil, nil, false
	}
	// The queue phase runs from Push to the dispatcher picking the job
	// up; the wrapper closes it on the dispatcher goroutine.
	endQueue := metrics.StartPhase(ctx, "queue")
	j := &job{ctx: ctx, tenant: tenant, enq: s.cfg.now(), done: make(chan struct{})}
	j.run = func(ctx context.Context) (any, error) {
		endQueue()
		return run(ctx)
	}
	weight := s.cfg.TenantWeights[tenant]
	if err := s.queue.Push(tenant, weight, j); err != nil {
		switch {
		case errors.Is(err, exec.ErrQueueFull):
			s.shedRequest(tenant)
			writeError(w, http.StatusTooManyRequests, "queue full; retry later", s.estimatedWait())
		default: // closed: drain won the race
			writeError(w, http.StatusServiceUnavailable, "server is draining", time.Second)
		}
		return nil, nil, false
	}
	select {
	case <-j.done:
		record(j.err)
		return j.val, j.err, true
	case <-ctx.Done():
		// Deadline or drain cut-off while queued or mid-execution; the
		// dispatcher discards the orphaned job when it reaches it.
		record(ctx.Err())
		writeError(w, statusOf(ctx.Err()), requestDeathMessage(ctx), 0)
		return nil, nil, false
	}
}

// requestDeathMessage phrases a dead request context for the client.
func requestDeathMessage(ctx context.Context) string {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return "deadline exceeded before the evaluation finished"
	}
	return "request canceled"
}

// unary wraps an endpoint body in the admission pipeline and JSON response
// writing.
func (s *Server) unary(class reqClass, body func(context.Context, *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v, err, handled := s.admit(w, r, class, func(ctx context.Context) (any, error) {
			return body(ctx, r)
		})
		if !handled {
			return
		}
		if err != nil {
			var pe *exec.PanicError
			if errors.As(err, &pe) {
				// The stack goes to the log, not the client.
				s.met.panics.Inc()
				s.cfg.Logf("request panic (isolated): %v", pe.Value)
				writeError(w, http.StatusInternalServerError, "internal: request evaluation panicked", 0)
				return
			}
			writeError(w, statusOf(err), err.Error(), 0)
			return
		}
		endMarshal := metrics.StartPhase(r.Context(), "marshal")
		writeJSON(w, http.StatusOK, v)
		endMarshal()
	}
}

// benchParam resolves the bench query parameter to a benchmark.
func benchParam(r *http.Request) (workloads.Benchmark, error) {
	name := r.URL.Query().Get("bench")
	if name == "" {
		return nil, errors.New("missing bench parameter (see plasticine list)")
	}
	return workloads.ByName(name)
}

// notFoundAsStatus maps a missing-benchmark error to 404 in unary bodies by
// tagging it; the default mapping would call it 422.
type notFoundError struct{ error }

func (s *Server) resolveBench(r *http.Request) (workloads.Benchmark, error) {
	b, err := benchParam(r)
	if err != nil {
		return nil, notFoundError{err}
	}
	return b, nil
}

// compileResponse is /v1/compile's answer.
type compileResponse struct {
	Bench     string               `json:"bench"`
	Summary   string               `json:"summary"`
	Util      compiler.Utilization `json:"util"`
	Bitstream json.RawMessage      `json:"bitstream,omitempty"`
}

func (s *Server) runCompile(ctx context.Context, r *http.Request) (any, error) {
	b, err := s.resolveBench(r)
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	m, err := compiler.CompileOpts(ctx, p, compiler.Options{Params: s.sess.Params()})
	if err != nil {
		return nil, err
	}
	resp := &compileResponse{Bench: b.Name(), Summary: m.Summary(), Util: m.Util}
	if r.URL.Query().Get("bitstream") == "1" {
		var buf bytes.Buffer
		if err := compiler.GenerateBitstream(m).Encode(&buf); err != nil {
			return nil, err
		}
		resp.Bitstream = json.RawMessage(buf.Bytes())
	}
	return resp, nil
}

func (s *Server) runBenchmark(ctx context.Context, r *http.Request) (any, error) {
	b, err := s.resolveBench(r)
	if err != nil {
		return nil, err
	}
	return s.sess.RunBenchmark(ctx, b)
}

// profileResponse is /v1/profile's answer: the evaluation row plus the
// cycle-accounting reports (the Chrome trace export stays a CLI affair).
type profileResponse struct {
	Bench   *core.BenchResult    `json:"bench"`
	Report  *trace.Report        `json:"report"`
	Pattern *trace.PatternReport `json:"by_pattern"`
}

func (s *Server) runProfile(ctx context.Context, r *http.Request) (any, error) {
	b, err := s.resolveBench(r)
	if err != nil {
		return nil, err
	}
	p, err := s.sess.Profile(ctx, b)
	if err != nil {
		return nil, err
	}
	return &profileResponse{Bench: p.Bench, Report: p.Report, Pattern: p.Pattern}, nil
}

func (s *Server) runExplain(ctx context.Context, r *http.Request) (any, error) {
	b, err := s.resolveBench(r)
	if err != nil {
		return nil, err
	}
	return s.sess.Explain(b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		// A draining server never becomes ready again; 1s just tells the
		// load balancer to probe somewhere else soon.
		setRetryAfter(w, time.Second)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// Stats is the /statsz document: one snapshot of the serving state, used by
// operators, the soak test's goroutine-leak check, and the load-shedding
// examples in the README.
type Stats struct {
	State            string  `json:"state"`
	UptimeSec        float64 `json:"uptime_sec"`
	Requests         int64   `json:"requests"`
	QueueDepth       int     `json:"queue_depth"`
	QueueCap         int     `json:"queue_cap"`
	ShedWatermark    int     `json:"shed_watermark"`
	SlotsBusy        int     `json:"slots_busy"`
	Slots            int     `json:"slots"`
	PoolRunning      int     `json:"pool_running"`
	Goroutines       int     `json:"goroutines"`
	EstimatedWaitSec float64 `json:"estimated_wait_sec"`

	// StreamsActive counts committed NDJSON streams currently open (sweeps
	// and tunes); TuneActive counts admitted /v1/tune searches specifically.
	// A drain that hangs shows up here first.
	StreamsActive int `json:"streams_active"`
	TuneActive    int `json:"tune_active"`

	TenantQueues map[string]int            `json:"tenant_queues,omitempty"`
	Tenants      map[string]TenantCounters `json:"tenants,omitempty"`

	// Totals aggregates every tenant's admission ledger, so dashboards get
	// fleet-wide shed/denied rates without summing the per-tenant map.
	Totals TenantCounters `json:"totals"`

	Cache      exec.CacheStats `json:"cache"`
	JobRetries int64           `json:"job_retries"`

	// Build identifies the binary (module version, VCS revision, Go
	// toolchain) and MetricsScrapes counts /metricsz expositions served,
	// so dashboards can correlate this snapshot with scrape data.
	Build          metrics.BuildInfo `json:"build"`
	MetricsScrapes int64             `json:"metrics_scrapes"`
}

// snapshotStats assembles the /statsz document.
func (s *Server) snapshotStats() Stats {
	state := "serving"
	switch s.state.Load() {
	case stateDraining:
		state = "draining"
	case stateStopped:
		state = "stopped"
	}
	tenants := s.adm.snapshot()
	var totals TenantCounters
	for _, c := range tenants {
		totals.Admitted += c.Admitted
		totals.Completed += c.Completed
		totals.Failed += c.Failed
		totals.Shed += c.Shed
		totals.QuotaDenied += c.QuotaDenied
	}
	return Stats{
		State:            state,
		UptimeSec:        s.cfg.now().Sub(s.start).Seconds(),
		Requests:         s.requests.Load(),
		QueueDepth:       s.queue.Len(),
		QueueCap:         s.queue.Cap(),
		ShedWatermark:    s.cfg.ShedWatermark,
		SlotsBusy:        int(s.busy.Load()),
		Slots:            s.cfg.Concurrency,
		PoolRunning:      s.sess.Engine().Pool().Running(),
		Goroutines:       runtime.NumGoroutine(),
		EstimatedWaitSec: s.estimatedWait().Seconds(),
		StreamsActive:    int(s.streams.Load()),
		TuneActive:       int(s.tunes.Load()),
		TenantQueues:     s.queue.Depths(),
		Tenants:          tenants,
		Totals:           totals,
		Cache:            s.sess.CacheStats(),
		JobRetries:       s.sess.Retries(),
		Build:            metrics.GetBuildInfo(),
		MetricsScrapes:   s.met.reg.Scrapes(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotStats())
}
