// Package serve is the long-running multi-tenant evaluation service: an
// HTTP/JSON API over one shared core.Session, so many tenants exploring the
// same design space share one worker pool and one content-addressed
// design-point cache — identical in-flight points coalesce through the
// cache's singleflight protocol, and a point any tenant has evaluated is a
// hit for every other tenant.
//
// The robustness spine, in request order:
//
//   - Admission: every request consumes from its tenant's token bucket
//     (quota), then queues into a bounded weighted-fair queue; dispatchers
//     dequeue across tenants by stride scheduling onto the execution slots,
//     so no tenant's flood starves another.
//   - Load shedding: when the queue crosses its shed watermark (heavy
//     requests) or its bound (all requests), the server answers 429 with a
//     Retry-After estimate instead of accepting work it cannot finish.
//     Cheap requests (explain) bypass the queue and are still served while
//     heavy traffic sheds: the service degrades, it does not die.
//   - Deadlines: the client's deadline becomes the request context, flows
//     through compile passes and simulator poll windows, and composes with
//     the session's per-attempt exec.JobPolicy.Timeout; expiry is 504.
//   - Panic isolation: a panicking evaluation is recovered into an
//     exec.PanicError and answered with 500 — the process never dies for
//     one request.
//   - Graceful drain: Shutdown stops admission (503), lets in-flight
//     requests finish within the drain budget, hard-cancels the stragglers,
//     and flushes the persistent cache tier before returning.
//
// Long sweeps stream NDJSON progress events with heartbeats so clients can
// tell a slow sweep from a dead server. /statsz exposes queue depth,
// per-tenant admission/shed counters and cache hit rates.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plasticine/internal/core"
	"plasticine/internal/exec"
	"plasticine/internal/metrics"
)

// Config parameterises a Server. The zero value of every field except
// Session is usable: defaults are filled in by New.
type Config struct {
	// Session is the shared evaluation facade all tenants draw from.
	// Required. The server owns its lifecycle: Shutdown closes it.
	Session *core.Session

	// QueueDepth bounds the admission queue (default 64). A Push beyond it
	// is shed with 429.
	QueueDepth int

	// ShedWatermark is the queue depth at and beyond which heavy requests
	// (sweeps) are shed while normal ones still queue (default ¾ of
	// QueueDepth, minimum 1).
	ShedWatermark int

	// Concurrency is the number of dispatcher slots executing queued
	// requests (default Session.Workers()). Sweeps additionally fan out
	// inside the session's own pool.
	Concurrency int

	// TenantRate and TenantBurst parameterise each tenant's token bucket:
	// sustained requests/second and burst capacity (defaults 10 and 20).
	// Cheap requests cost CheapCost tokens instead of 1.
	TenantRate  float64
	TenantBurst float64

	// TenantWeights sets per-tenant fair-share weights for the dispatch
	// queue (default 1 each); a weight-2 tenant gets twice the dequeues of
	// a weight-1 tenant while both are backlogged.
	TenantWeights map[string]int

	// DefaultDeadline applies when the client sends no timeout (default
	// 60s); MaxDeadline clamps client-supplied timeouts (default 10m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// DrainBudget bounds Shutdown: in-flight requests get this long to
	// finish before their contexts are hard-canceled (default 15s).
	DrainBudget time.Duration

	// Heartbeat is the NDJSON heartbeat interval for streaming sweeps
	// (default 1s).
	Heartbeat time.Duration

	// FaultInjection enables /debugz/panic, an endpoint whose job panics on
	// purpose. It exists so the soak test can prove panic isolation against
	// a live server; leave it off in real deployments.
	FaultInjection bool

	// Metrics is the instrumentation registry /metricsz exposes (default: a
	// fresh registry). The server installs it on the session too, so tuner
	// and DSE counters land in the same exposition.
	Metrics *metrics.Registry

	// Debug mounts net/http/pprof under /debugz/pprof/ (the CLI's -debug
	// flag). The trace ring at /debugz/requests is always on — it holds
	// nothing sensitive and is how operators debug slow requests.
	Debug bool

	// SlowRequest is the wall-time threshold at and past which a completed
	// /v1 request is logged through Logf and counted (default 10s;
	// negative disables).
	SlowRequest time.Duration

	// AccessLog, when set, receives one compact JSON line per completed
	// /v1 request (the requestRecord shape served at /debugz/requests).
	AccessLog io.Writer

	// TraceRing bounds the /debugz/requests ring (default 128 entries).
	TraceRing int

	// Logf receives operational log lines (default: stderr).
	Logf func(format string, args ...any)

	// now is the test clock hook (default time.Now).
	now func() time.Time
}

// server lifecycle states.
const (
	stateServing int32 = iota
	stateDraining
	stateStopped
)

// Server is the evaluation service. Construct with New; it is an
// http.Handler, so it can sit behind httptest or a real listener
// (ListenAndServe).
type Server struct {
	cfg   Config
	sess  *core.Session
	queue *exec.FairQueue
	mux   *http.ServeMux
	adm   *admission

	state atomic.Int32

	// admitMu closes the admission race with drain: handlers hold it shared
	// across {draining check → inflight.Add}, Shutdown holds it exclusively
	// while flipping to draining. Any request is therefore either fully
	// registered before the drain's inflight.Wait, or sees draining and is
	// refused — never half-admitted.
	admitMu sync.RWMutex

	// hardCtx is canceled when the drain budget expires: every request
	// context is derived to die with it, so stragglers are cut loose.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// dispatchCtx stops the dispatcher fleet.
	dispatchCtx    context.Context
	dispatchCancel context.CancelFunc
	dispatchers    sync.WaitGroup

	// inflight tracks requests being handled (queued or executing), the
	// population drain waits for.
	inflight sync.WaitGroup

	busy     atomic.Int64 // dispatcher slots currently executing
	requests atomic.Int64 // total requests ever admitted to a handler
	streams  atomic.Int64 // committed NDJSON streams currently open (sweep + tune)
	tunes    atomic.Int64 // /v1/tune searches currently admitted

	// Observability (observe.go): the collector bundle, the trace ring,
	// the request-ID sequence, and the access-log write lock.
	met      *serverMetrics
	ring     *traceRing
	reqSeq   atomic.Int64
	accessMu sync.Mutex

	// serviceEWMA is an exponentially-weighted moving average of job service
	// time in nanoseconds, feeding the Retry-After estimate.
	serviceEWMA atomic.Int64

	start    time.Time
	shutOnce sync.Once
	shutErr  error
}

// New builds a Server over cfg.Session and starts its dispatcher fleet.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, errors.New("serve: Config.Session is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ShedWatermark <= 0 {
		cfg.ShedWatermark = max(1, cfg.QueueDepth*3/4)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = cfg.Session.Workers()
	}
	if cfg.TenantRate <= 0 {
		cfg.TenantRate = 10
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 20
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 60 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 10 * time.Minute
	}
	if cfg.DrainBudget <= 0 {
		cfg.DrainBudget = 15 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.SlowRequest == 0 {
		cfg.SlowRequest = 10 * time.Second
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 128
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
		}
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:   cfg,
		sess:  cfg.Session,
		queue: exec.NewFairQueue(cfg.QueueDepth),
		adm:   newAdmission(cfg.TenantRate, cfg.TenantBurst, cfg.now),
		start: cfg.now(),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.dispatchCtx, s.dispatchCancel = context.WithCancel(context.Background())
	s.ring = newTraceRing(cfg.TraceRing)
	s.met = s.registerMetrics(cfg.Metrics)
	// One registry serves the whole process: the session forwards it to
	// the tuner and the DSE driver, so their series land in /metricsz too.
	cfg.Session.UseMetrics(cfg.Metrics)
	s.mux = s.routes()
	for i := 0; i < cfg.Concurrency; i++ {
		s.dispatchers.Add(1)
		go s.dispatch()
	}
	return s, nil
}

// ServeHTTP implements http.Handler: the instrumentation middleware
// (request-ID, phase trace, route/status metrics, access log) around the
// endpoint mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.instrument(w, r)
}

// dispatch is one dispatcher slot: it pulls jobs off the fair queue and
// executes them with panic isolation until the queue closes.
func (s *Server) dispatch() {
	defer s.dispatchers.Done()
	for {
		item, err := s.queue.Pop(s.dispatchCtx)
		if err != nil {
			return
		}
		j := item.(*job)
		if j.tenant != "" && !j.enq.IsZero() {
			s.met.queueWait.With(j.tenant).Observe(s.cfg.now().Sub(j.enq).Seconds())
		}
		if j.ctx.Err() != nil {
			// The requester's deadline expired (or the client left) while the
			// job sat queued: don't burn a slot on an answer nobody wants.
			j.finish(nil, j.ctx.Err())
			continue
		}
		s.busy.Add(1)
		t0 := s.cfg.now()
		v, err := runIsolated(j.ctx, j.run)
		d := s.cfg.now().Sub(t0)
		s.observeService(d)
		if j.tenant != "" {
			s.met.serviceTime.With(j.tenant).Observe(d.Seconds())
		}
		s.busy.Add(-1)
		j.finish(v, err)
	}
}

// runIsolated executes one request body with panic isolation: a panic is
// recovered into a typed *exec.PanicError — the same contract the batch
// pool gives jobs — so one poisoned request answers 500 while the process
// and every other request keep going.
func runIsolated(ctx context.Context, fn func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &exec.PanicError{Index: -1, Value: r, Stack: captureStack()}
		}
	}()
	return fn(ctx)
}

// captureStack is debug.Stack without the import knot in tests.
func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// observeService folds one job's service time into the EWMA (α = ¼).
func (s *Server) observeService(d time.Duration) {
	for {
		old := s.serviceEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/4
		}
		if s.serviceEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// estimatedWait is the Retry-After hint: queued work divided by slot
// throughput, floored at one second.
func (s *Server) estimatedWait() time.Duration {
	ewma := time.Duration(s.serviceEWMA.Load())
	if ewma <= 0 {
		ewma = time.Second
	}
	depth := s.queue.Len() + int(s.busy.Load())
	w := time.Duration(depth/max(1, s.cfg.Concurrency)+1) * ewma
	if w < time.Second {
		w = time.Second
	}
	return w
}

// draining reports whether the server has left the serving state.
func (s *Server) draining() bool { return s.state.Load() != stateServing }

// Shutdown drains the server: stop admitting (readyz and every /v1 endpoint
// answer 503), give in-flight requests the drain budget to finish, then
// hard-cancel the rest, stop the dispatcher fleet, and close the session —
// which flushes the persistent cache tier so every completed design point
// survives the process. Idempotent; safe to call from a signal handler
// path. The HTTP listener, if any, is the caller's to close (ListenAndServe
// does both in order).
func (s *Server) Shutdown() error {
	s.shutOnce.Do(func() {
		s.admitMu.Lock()
		s.state.Store(stateDraining)
		s.admitMu.Unlock()
		s.cfg.Logf("draining: admission stopped, waiting up to %s for in-flight requests", s.cfg.DrainBudget)

		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		var cut bool
		select {
		case <-done:
		case <-time.After(s.cfg.DrainBudget):
			cut = true
			s.hardCancel() // cut stragglers loose; their handlers answer 504/503
			<-done
		}

		// No requests remain: close the queue (it is empty — every queued job
		// belonged to an in-flight handler), stop the dispatchers, and make
		// the cache tier durable.
		s.queue.Close()
		s.dispatchCancel()
		s.dispatchers.Wait()
		s.shutErr = s.sess.Close()
		s.state.Store(stateStopped)
		if cut {
			s.cfg.Logf("drained (budget expired; stragglers were canceled)")
		} else {
			s.cfg.Logf("drained cleanly")
		}
	})
	return s.shutErr
}

// ListenAndServe serves on addr until ctx is canceled (SIGTERM in the CLI),
// then drains per Shutdown and closes the listener. The returned error is
// nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.cfg.Logf("listening on http://%s", ln.Addr())
	httpSrv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		s.Shutdown()
		return err
	case <-ctx.Done():
	}
	drainErr := s.Shutdown()
	// In-flight handlers have returned; this only closes the listener and
	// idle connections.
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	return drainErr
}
