package serve

// Tests for the observability layer: /metricsz exposition coverage across
// every subsystem, the /debugz/requests trace ring with phase spans, the
// request-ID middleware, pprof gating, the JSON access log, and the
// unified Retry-After helper.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"plasticine/internal/core"
	"plasticine/internal/metrics"
)

// scrape fetches /metricsz and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, body := get(t, base+"/metricsz")
	if resp.StatusCode != 200 {
		t.Fatalf("metricsz = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("metricsz Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	return string(body)
}

// sampleValue finds the sample whose line starts with prefix (name plus any
// label matcher) and returns its value.
func sampleValue(t *testing.T, expo, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample with prefix %q in exposition", prefix)
	return 0
}

func TestMetricszCoversEverySubsystem(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// One compute, one memory-tier hit, so cache counters move both ways.
	for i := 0; i < 2; i++ {
		if resp, body := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=alice"); resp.StatusCode != 200 {
			t.Fatalf("run %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	expo := scrape(t, ts.URL)

	// Serve layer.
	if n := sampleValue(t, expo, `plasticine_http_requests_total{route="/v1/run",status="200"}`); n != 2 {
		t.Fatalf("http_requests_total for /v1/run 200 = %v, want 2", n)
	}
	if n := sampleValue(t, expo, `plasticine_http_request_duration_seconds_count{route="/v1/run"}`); n != 2 {
		t.Fatalf("duration histogram count = %v, want 2", n)
	}
	if n := sampleValue(t, expo, `plasticine_queue_wait_seconds_count{tenant="alice"}`); n != 2 {
		t.Fatalf("queue_wait count = %v, want 2", n)
	}
	if n := sampleValue(t, expo, `plasticine_service_time_seconds_count{tenant="alice"}`); n != 2 {
		t.Fatalf("service_time count = %v, want 2", n)
	}
	if v := sampleValue(t, expo, `plasticine_dispatcher_slots`); v != 2 {
		t.Fatalf("dispatcher_slots = %v, want 2", v)
	}
	if v := sampleValue(t, expo, `plasticine_build_info{`); v != 1 {
		t.Fatalf("build_info = %v, want 1", v)
	}

	// Exec pool and both cache tiers.
	if n := sampleValue(t, expo, `plasticine_cache_hits_total{tier="memory"}`); n < 1 {
		t.Fatalf("memory cache hits = %v, want >= 1 after repeated run", n)
	}
	sampleValue(t, expo, `plasticine_cache_hits_total{tier="disk"}`)
	if n := sampleValue(t, expo, `plasticine_cache_misses_total{tier="memory"}`); n < 1 {
		t.Fatalf("memory cache misses = %v, want >= 1 for the first compute", n)
	}
	sampleValue(t, expo, `plasticine_pool_running`)
	sampleValue(t, expo, `plasticine_job_retries_total`)
	sampleValue(t, expo, `plasticine_jobs_failed_total{class="permanent"}`)
	sampleValue(t, expo, `plasticine_jobs_failed_total{class="transient"}`)

	// Tune and DSE families are pre-registered: visible at zero before any
	// search runs, so dashboards never see a family appear mid-flight.
	sampleValue(t, expo, `plasticine_tune_generation_seconds_count`)
	sampleValue(t, expo, `plasticine_tune_sampled_total`)
	sampleValue(t, expo, `plasticine_dse_points_total`)
	sampleValue(t, expo, `plasticine_dse_infeasible_total`)

	// The exposition itself must pass its own linter rules: every sample
	// belongs to a family announced by HELP/TYPE, no duplicate series.
	seen := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(expo, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key := strings.Join(fields[:len(fields)-1], " ")
		if seen[key] {
			t.Fatalf("duplicate series in exposition: %s", key)
		}
		seen[key] = true
	}
	if len(typed) < 10 {
		t.Fatalf("only %d TYPE lines; exposition looks truncated", len(typed))
	}
}

func TestStatszBuildAndScrapeCount(t *testing.T) {
	_, ts := newTestServer(t, nil)
	scrape(t, ts.URL)
	_, body := get(t, ts.URL+"/statsz")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz: %v\n%s", err, body)
	}
	if st.Build.GoVersion == "" {
		t.Fatalf("statsz build info missing go version: %+v", st.Build)
	}
	if st.MetricsScrapes != 1 {
		t.Fatalf("metrics_scrapes = %d, want 1 after one scrape", st.MetricsScrapes)
	}
}

func TestQuotaAndShedCountersMove(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.TenantRate = 0.001
		cfg.TenantBurst = 1
		cfg.QueueDepth = 2
	})
	get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=greedy") // spends the burst
	resp, _ := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429", resp.StatusCode)
	}
	expo := scrape(t, ts.URL)
	if n := sampleValue(t, expo, `plasticine_quota_denied_total{tenant="greedy"}`); n < 1 {
		t.Fatalf("quota_denied_total = %v, want >= 1", n)
	}
	if n := sampleValue(t, expo, `plasticine_http_requests_total{route="/v1/run",status="429"}`); n < 1 {
		t.Fatalf("429 not counted by route: %v", n)
	}

	// Wedge the dispatchers and overflow the queue so the shed counter moves.
	release := blockDispatchers(t, s, 2)
	defer release()
	resp, _ = get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=burst")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", resp.StatusCode)
	}
	expo = scrape(t, ts.URL)
	if n := sampleValue(t, expo, `plasticine_requests_shed_total{tenant="burst"}`); n < 1 {
		t.Fatalf("requests_shed_total = %v, want >= 1", n)
	}
}

func TestPanicCounterMoves(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) { cfg.FaultInjection = true })
	resp, _ := get(t, ts.URL+"/debugz/panic")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic probe = %d, want 500", resp.StatusCode)
	}
	expo := scrape(t, ts.URL)
	if n := sampleValue(t, expo, `plasticine_request_panics_total`); n != 1 {
		t.Fatalf("request_panics_total = %v, want 1", n)
	}
}

func TestDebugRequestsRingRecordsPhases(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.SlowRequest = time.Nanosecond // everything is "slow"
	})
	if resp, body := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=alice"); resp.StatusCode != 200 {
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	_, body := get(t, ts.URL+"/debugz/requests")
	var doc debugRequestsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("debugz/requests: %v\n%s", err, body)
	}
	if doc.Capacity != 128 {
		t.Fatalf("ring capacity = %d, want default 128", doc.Capacity)
	}
	var rec *requestRecord
	for i := range doc.Requests {
		if doc.Requests[i].Route == "/v1/run" {
			rec = &doc.Requests[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("no /v1/run record in ring: %s", body)
	}
	if rec.ID == "" || rec.Tenant != "alice" || rec.Status != 200 {
		t.Fatalf("record = %+v", rec)
	}
	if !rec.Slow {
		t.Fatal("1ns threshold did not mark the request slow")
	}
	names := map[string]bool{}
	for _, sp := range rec.Phases {
		names[sp.Name] = true
		if sp.DurUS < 0 || sp.StartUS < 0 {
			t.Fatalf("negative span: %+v", sp)
		}
	}
	for _, want := range []string{"admission", "queue", "compile", "sim", "marshal"} {
		if !names[want] {
			t.Fatalf("missing %q phase; got %+v", want, rec.Phases)
		}
	}
	if rec.PhaseUS <= 0 || rec.WallUS <= 0 {
		t.Fatalf("empty timings: %+v", rec)
	}
	// The spans cover the request's life; the untraced remainder (mux,
	// header writes, ring bookkeeping) must stay a small fraction of wall.
	// The acceptance demo holds this to 5%; under -race scheduling jitter
	// we allow more slack, but half the wall going missing means a phase
	// boundary is wrong.
	if rec.PhaseUS < rec.WallUS/2 {
		t.Fatalf("phases cover %dus of %dus wall; tracing is losing time", rec.PhaseUS, rec.WallUS)
	}
	// Cached rerun records a "cache" span instead of compile/sim.
	get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=alice")
	_, body = get(t, ts.URL+"/debugz/requests")
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range doc.Requests {
		for _, sp := range r.Phases {
			if sp.Name == "cache" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no cache span after a warm rerun: %s", body)
	}
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/explain?bench=InnerProduct", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Fatalf("X-Request-Id = %q, want echo of caller's id", got)
	}
	resp2, _ := get(t, ts.URL+"/v1/explain?bench=InnerProduct")
	if got := resp2.Header.Get("X-Request-Id"); got == "" {
		t.Fatal("no generated X-Request-Id on response")
	}
}

func TestPprofGatedByDebugFlag(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if resp, _ := get(t, ts.URL+"/debugz/pprof/heap"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -debug = %d, want 404", resp.StatusCode)
	}
	_, ts2 := newTestServer(t, func(cfg *Config) { cfg.Debug = true })
	if resp, _ := get(t, ts2.URL+"/debugz/pprof/heap"); resp.StatusCode != 200 {
		t.Fatalf("pprof heap with -debug = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get(t, ts2.URL+"/debugz/pprof/"); resp.StatusCode != 200 {
		t.Fatalf("pprof index with -debug = %d, want 200", resp.StatusCode)
	}
}

// syncBuffer is a goroutine-safe io.Writer; the access log is written from
// handler goroutines while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogEmitsJSONLines(t *testing.T) {
	var logbuf syncBuffer
	_, ts := newTestServer(t, func(cfg *Config) { cfg.AccessLog = &logbuf })
	if resp, body := get(t, ts.URL+"/v1/run?bench=InnerProduct&tenant=alice"); resp.StatusCode != 200 {
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	var line string
	for {
		if s := strings.TrimSpace(logbuf.String()); s != "" {
			line = strings.Split(s, "\n")[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no access log line after a traced request")
		}
		time.Sleep(time.Millisecond)
	}
	var rec requestRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	if rec.Route != "/v1/run" || rec.Status != 200 || rec.ID == "" || rec.WallUS <= 0 {
		t.Fatalf("access log record = %+v", rec)
	}
}

// Retry-After unification: both the quota path (writeError) and the
// draining readyz path go through setRetryAfter, so the header is always a
// positive integer number of seconds.
func TestSetRetryAfterRounding(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{10 * time.Millisecond, "1"}, // floored at 1s
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"}, // ceiling, not truncation
		{3 * time.Second, "3"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		if sec := setRetryAfter(w, c.d); strconv.Itoa(sec) != c.want {
			t.Fatalf("setRetryAfter(%v) returned %d, want %s", c.d, sec, c.want)
		}
		if got := w.Header().Get("Retry-After"); got != c.want {
			t.Fatalf("setRetryAfter(%v) header = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestReadyzDrainingRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, nil)
	go s.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := get(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			if got := resp.Header.Get("Retry-After"); got != "1" {
				t.Fatalf("draining readyz Retry-After = %q, want \"1\"", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
}

// The first observation seeds the EWMA outright instead of blending with a
// zero initial value, so the very first Retry-After hint reflects reality
// rather than a quarter of it.
func TestObserveServiceSeedsEWMAFirstObservation(t *testing.T) {
	s, err := New(Config{Session: core.NewSession(core.WithWorkers(2)), Concurrency: 2, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown() })
	if w := s.estimatedWait(); w != time.Second {
		t.Fatalf("pre-observation wait = %v, want the 1s floor", w)
	}
	s.observeService(8 * time.Second)
	if got := time.Duration(s.serviceEWMA.Load()); got != 8*time.Second {
		t.Fatalf("first observation EWMA = %v, want 8s (seeded, not blended)", got)
	}
	// Empty queue, no busy slots: depth/slots+1 = 1 multiple of the EWMA.
	if w := s.estimatedWait(); w != 8*time.Second {
		t.Fatalf("wait after seeding = %v, want 8s", w)
	}
	s.observeService(4 * time.Second)
	if got := time.Duration(s.serviceEWMA.Load()); got != 7*time.Second {
		t.Fatalf("second observation EWMA = %v, want 7s (8 + (4-8)/4)", got)
	}
}
