package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
)

// The DSE layer marks infeasible design points with +Inf (dse.Infeasible),
// which encoding/json refuses outright — and an encode failure after a 200
// header is committed would silently truncate the response. safeMarshal is
// the boundary guard: it tries a plain marshal first (the fast path for the
// overwhelmingly common all-finite case) and only on failure re-encodes with
// every non-finite float mapped to null, which JSON clients read naturally
// as "no value here".
func safeMarshal(v any, indent bool) ([]byte, error) {
	marshal := func(v any) ([]byte, error) {
		if indent {
			return json.MarshalIndent(v, "", "  ")
		}
		return json.Marshal(v)
	}
	data, err := marshal(v)
	if err == nil {
		return data, nil
	}
	return marshal(sanitizeValue(v))
}

// sanitizeValue deep-copies v into a JSON-encodable tree of maps, slices and
// scalars, mapping NaN and ±Inf to nil. Struct fields follow their json tags
// (name overrides and "-"; omitempty is deliberately ignored — a result
// payload with explicit zeros is still correct JSON).
func sanitizeValue(v any) any {
	return sanitize(reflect.ValueOf(v))
}

func sanitize(rv reflect.Value) any {
	if !rv.IsValid() {
		return nil
	}
	// A type with custom JSON (time.Time, json.RawMessage holders) encodes
	// itself; only fall through to the walk when that fails too.
	if rv.CanInterface() {
		if m, ok := rv.Interface().(json.Marshaler); ok {
			if data, err := m.MarshalJSON(); err == nil {
				return json.RawMessage(data)
			}
		}
	}
	switch rv.Kind() {
	case reflect.Float32, reflect.Float64:
		f := rv.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return f
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return nil
		}
		return sanitize(rv.Elem())
	case reflect.Slice:
		if rv.IsNil() {
			return nil
		}
		fallthrough
	case reflect.Array:
		out := make([]any, rv.Len())
		for i := range out {
			out[i] = sanitize(rv.Index(i))
		}
		return out
	case reflect.Map:
		if rv.IsNil() {
			return nil
		}
		out := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			out[fmt.Sprint(iter.Key().Interface())] = sanitize(iter.Value())
		}
		return out
	case reflect.Struct:
		t := rv.Type()
		out := make(map[string]any, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			if tag == "-" {
				continue
			}
			name := f.Name
			if tag != "" {
				if c := strings.IndexByte(tag, ','); c >= 0 {
					if tag[:c] != "" {
						name = tag[:c]
					}
				} else {
					name = tag
				}
			}
			if f.Anonymous && tag == "" {
				// Embedded field without a tag: inline its fields, like
				// encoding/json does.
				if m, ok := sanitize(rv.Field(i)).(map[string]any); ok {
					for k, mv := range m {
						out[k] = mv
					}
					continue
				}
			}
			out[name] = sanitize(rv.Field(i))
		}
		return out
	default:
		if rv.CanInterface() {
			return rv.Interface()
		}
		return nil
	}
}
