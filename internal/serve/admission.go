package serve

import (
	"sync"
	"time"
)

// CheapCost is the token-bucket cost of a cheap request (explain, compile
// probes): a tenant out of full tokens can still afford several of these, so
// introspection keeps working while that tenant's heavy traffic is shed.
const CheapCost = 0.1

// TenantCounters is one tenant's admission ledger, exposed by /statsz.
type TenantCounters struct {
	Admitted    int64 `json:"admitted"`     // entered a handler (queued or inline)
	Completed   int64 `json:"completed"`    // answered 2xx
	Failed      int64 `json:"failed"`       // answered 4xx/5xx after admission
	Shed        int64 `json:"shed"`         // 429: queue bound or shed watermark
	QuotaDenied int64 `json:"quota_denied"` // 429: token bucket empty
}

// admission owns per-tenant token buckets and counters. Buckets refill
// continuously at rate tokens/second up to burst; a request is admitted when
// its cost fits the current level.
type admission struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	tenants map[string]*tenantState
}

type tenantState struct {
	tokens   float64
	last     time.Time
	counters TenantCounters
}

func newAdmission(rate, burst float64, now func() time.Time) *admission {
	return &admission{rate: rate, burst: burst, now: now, tenants: map[string]*tenantState{}}
}

// state returns (creating if needed) the tenant's bucket, refilled to now.
// Callers hold a.mu.
func (a *admission) state(tenant string) *tenantState {
	t := a.tenants[tenant]
	now := a.now()
	if t == nil {
		t = &tenantState{tokens: a.burst, last: now}
		a.tenants[tenant] = t
		return t
	}
	t.tokens += now.Sub(t.last).Seconds() * a.rate
	if t.tokens > a.burst {
		t.tokens = a.burst
	}
	t.last = now
	return t
}

// take spends cost tokens from tenant's bucket. When the bucket cannot
// cover it, take reports the time until it can — the 429 Retry-After hint.
func (a *admission) take(tenant string, cost float64) (ok bool, retryAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.state(tenant)
	if t.tokens >= cost {
		t.tokens -= cost
		return true, 0
	}
	wait := time.Duration((cost - t.tokens) / a.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// count applies f to tenant's counters under the lock.
func (a *admission) count(tenant string, f func(*TenantCounters)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f(&a.state(tenant).counters)
}

// snapshot copies every tenant's counters for /statsz.
func (a *admission) snapshot() map[string]TenantCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantCounters, len(a.tenants))
	for name, t := range a.tenants {
		out[name] = t.counters
	}
	return out
}
