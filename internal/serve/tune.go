package serve

// /v1/tune streams a Pareto-front auto-tuner search (internal/tune) over the
// evaluation service. A tune search is minutes of simulated candidates behind
// one request, so it rides the same committed-NDJSON machinery as /v1/sweep —
// admitted as heavy, shed past the watermark, heartbeats between events —
// plus one extra in-band event kind:
//
//	{"event":"generation", "kind":"tune", "data":{"gen":N, "front_size":N, ...}}
//
// emitted after every completed generation, and a terminal "result" event
// whose data is the plasticine-tune/v1 document (schema in EXPERIMENTS.md).
// Query parameters: mix (benchmark:weight pairs, default "InnerProduct:1"),
// budget, pop, seed, max_area, max_power, max_generations. Budget and
// population are clamped server-side: one tenant must not be able to park a
// month of simulation behind a single admitted request.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"plasticine/internal/tune"
)

// Server-side ceilings for tune searches. A search wanting more budget than
// this belongs on the CLI, where the operator owns the machine.
const (
	tuneMaxBudget     = 512
	tuneMaxPopulation = 128
)

// tuneSpec parses the request's query parameters into a search spec.
func tuneSpec(r *http.Request) (tune.Spec, error) {
	q := r.URL.Query()
	var spec tune.Spec

	mixRaw := q.Get("mix")
	if mixRaw == "" {
		mixRaw = "InnerProduct:1"
	}
	mix, err := tune.ParseMix(mixRaw)
	if err != nil {
		return spec, err
	}
	spec.Mix = mix

	intParam := func(name string, def int) (int, error) {
		raw := q.Get(name)
		if raw == "" {
			return def, nil
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q: want an integer", name, raw)
		}
		return v, nil
	}
	floatParam := func(name string) (float64, error) {
		raw := q.Get(name)
		if raw == "" {
			return 0, nil
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad %s %q: want a non-negative number", name, raw)
		}
		return v, nil
	}

	if spec.Budget, err = intParam("budget", 16); err != nil {
		return spec, err
	}
	if spec.Budget < 1 || spec.Budget > tuneMaxBudget {
		return spec, fmt.Errorf("budget %d out of range [1,%d]", spec.Budget, tuneMaxBudget)
	}
	if spec.Population, err = intParam("pop", 8); err != nil {
		return spec, err
	}
	if spec.Population < 1 || spec.Population > tuneMaxPopulation {
		return spec, fmt.Errorf("pop %d out of range [1,%d]", spec.Population, tuneMaxPopulation)
	}
	if spec.MaxGenerations, err = intParam("max_generations", 0); err != nil {
		return spec, err
	}
	seed, err := intParam("seed", 1)
	if err != nil {
		return spec, err
	}
	spec.Seed = int64(seed)
	if spec.Constraints.MaxAreaMM2, err = floatParam("max_area"); err != nil {
		return spec, err
	}
	if spec.Constraints.MaxPowerW, err = floatParam("max_power"); err != nil {
		return spec, err
	}
	return spec, nil
}

// handleTune admits a tune search as a heavy streamed request.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	spec, err := tuneSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	s.tunes.Add(1)
	defer s.tunes.Add(-1)

	// Generation events flow through a buffered channel the stream drains at
	// its own pace; the send never blocks, so a slow client drops progress
	// lines instead of stalling the search. run closes the channel before
	// returning, which streamRequest relies on to flush the tail.
	updates := make(chan sweepEvent, 64)
	run := func(ctx context.Context) (any, error) {
		defer close(updates)
		res, err := s.sess.Tune(ctx, spec, func(g tune.Generation) {
			select {
			case updates <- sweepEvent{Event: "generation", Kind: "tune", Data: g}:
			default:
			}
		})
		if err != nil {
			return nil, err
		}
		return tune.ResultDoc(spec, res)
	}
	s.streamRequest(w, r, "tune", run, updates)
}
