// Package tune is the Pareto-front auto-tuner over the Plasticine design
// space: "give me the best chip for this workload mix under 100 mm²" as one
// call. It answers by searching millions of arch.Params candidates — PCU
// datapath shape, PMU bank size, chip grid and DRAM channels — under a
// simulated-candidate budget, minimising three objectives at once: weighted
// cycles over the mix (from simulation), chip area and worst-case power
// (from the analytical models).
//
// The search is a generation-based evolutionary loop with successive
// halving: each generation samples a population (mutations of the current
// front plus random immigrants), rejects candidates analytically —
// parameter validation, area/power ceilings, then per-benchmark
// partition-and-fit feasibility via dse.CheckFeasible — and only simulates
// the survivors, typically well under half the sample. Selection keeps the
// non-dominated half as the next generation's parents.
//
// Determinism: every random draw happens on the coordinator in a fixed
// order from a seeded, serialisable RNG, evaluation results are a pure
// function of (params, benchmark), and fronts are merged and sorted by
// canonical keys — so a fixed seed yields a byte-identical front at any
// worker count.
//
// Durability: when the engine has a disk tier, every evaluation persists
// through the design-point cache and the search state itself is written
// after each generation as a versioned PLTN snapshot (crc32, atomic
// temp+rename, quarantine-on-corrupt — the PLDE/PLCK discipline). A
// SIGKILL'd search rerun against the same cache directory resumes
// byte-identically, and N cooperating processes can split one search via
// Spec.Shard/Shards over a shared directory.
package tune

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"plasticine/internal/arch"
	"plasticine/internal/dse"
	"plasticine/internal/exec"
	"plasticine/internal/metrics"
	"plasticine/internal/stats"
)

// MixEntry weights one benchmark in the workload mix the tuner optimises
// for. Weights are relative; zero means 1.
type MixEntry struct {
	Bench  string  `json:"bench"`
	Weight float64 `json:"weight"`
}

// ParseMix parses a command-line mix like "GEMM:2,FFT:1" (weight defaults
// to 1 when omitted: "GEMM,FFT").
func ParseMix(s string) ([]MixEntry, error) {
	var out []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawW, hasW := strings.Cut(part, ":")
		e := MixEntry{Bench: strings.TrimSpace(name), Weight: 1}
		if hasW {
			w, err := strconv.ParseFloat(strings.TrimSpace(rawW), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("tune: bad mix weight in %q: want name:positive-number", part)
			}
			e.Weight = w
		}
		if e.Bench == "" {
			return nil, fmt.Errorf("tune: empty benchmark name in mix %q", s)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tune: empty workload mix %q", s)
	}
	return out, nil
}

// Constraints are hard ceilings a candidate must satisfy analytically
// before it is ever simulated. Zero means unconstrained.
type Constraints struct {
	MaxAreaMM2 float64 `json:"max_area_mm2,omitempty"`
	MaxPowerW  float64 `json:"max_power_w,omitempty"`
}

// Spec describes one search. The identity fields (Mix, Constraints,
// Population, Seed) determine the search trajectory and key its snapshot;
// Budget, MaxGenerations, Shard/Shards and ShardWait are stop/execution
// parameters a resumed run may change without invalidating prior work.
type Spec struct {
	Mix         []MixEntry  `json:"mix"`
	Constraints Constraints `json:"constraints"`

	// Budget is the simulated-candidate budget. It counts evaluated
	// candidates regardless of cache hits, so the trajectory is independent
	// of what is already cached; the search stops at the first generation
	// boundary at or past it.
	Budget int `json:"budget"`

	// Population is the number of candidates sampled per generation.
	Population int `json:"population"`

	// MaxGenerations bounds the loop when pruning starves the budget
	// (0 = derived from Budget/Population).
	MaxGenerations int `json:"max_generations,omitempty"`

	Seed int64 `json:"seed"`

	// Shard/Shards split one search across cooperating processes sharing a
	// cache directory: shard i simulates candidates with evaluation index
	// ≡ i (mod Shards) and polls the shared disk tier for the rest, falling
	// back to local evaluation after ShardWait (work stealing keeps the
	// result deterministic either way). Excluded from the search identity.
	Shard  int `json:"-"`
	Shards int `json:"-"`

	ShardWait time.Duration `json:"-"`
}

// normalize canonicalises the spec in place: the mix is merged by benchmark
// and sorted by name, and defaults are filled, so equal searches hash
// equally and weighted sums fold in a fixed order.
func (s *Spec) normalize() error {
	if len(s.Mix) == 0 {
		return errors.New("tune: spec has an empty workload mix")
	}
	merged := map[string]float64{}
	for _, m := range s.Mix {
		if m.Bench == "" {
			return errors.New("tune: mix entry with an empty benchmark name")
		}
		w := m.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return fmt.Errorf("tune: negative weight %g for %s", w, m.Bench)
		}
		merged[m.Bench] += w
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	// Fresh slice: the caller's Mix backing array must stay untouched.
	mix := make([]MixEntry, 0, len(names))
	for _, n := range names {
		mix = append(mix, MixEntry{Bench: n, Weight: merged[n]})
	}
	s.Mix = mix
	if s.Constraints.MaxAreaMM2 < 0 || s.Constraints.MaxPowerW < 0 {
		return fmt.Errorf("tune: negative constraint (area %g mm², power %g W)",
			s.Constraints.MaxAreaMM2, s.Constraints.MaxPowerW)
	}
	if s.Budget <= 0 {
		s.Budget = 48
	}
	if s.Population <= 0 {
		s.Population = 24
	}
	if s.MaxGenerations <= 0 {
		s.MaxGenerations = 16 + 8*((s.Budget+s.Population-1)/s.Population)
	}
	if s.Shards <= 0 {
		s.Shards, s.Shard = 1, 0
	}
	if s.Shard < 0 || s.Shard >= s.Shards {
		return fmt.Errorf("tune: shard %d of %d out of range", s.Shard, s.Shards)
	}
	if s.ShardWait <= 0 {
		s.ShardWait = 15 * time.Second
	}
	return nil
}

// hash fingerprints the search identity: the fields that determine the
// sampling trajectory. Budget, generation cap and sharding are deliberately
// excluded — they only decide when to stop and who computes what, so a
// rerun may extend the budget or change the shard layout and still resume.
func (s *Spec) hash() uint64 {
	var b strings.Builder
	for _, m := range s.Mix {
		fmt.Fprintf(&b, "%s:%g,", m.Bench, m.Weight)
	}
	fmt.Fprintf(&b, "|area=%g|power=%g|pop=%d|seed=%d|v=%d",
		s.Constraints.MaxAreaMM2, s.Constraints.MaxPowerW, s.Population, s.Seed, SnapshotVersion)
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return h.Sum64()
}

// EvalOutcome is one (candidate, benchmark) simulation result. Designs the
// compiler cannot place or route — or that deadlock under simulation — are
// infeasible points, not search-aborting errors; the flag keeps the
// persisted form JSON-safe (no ±Inf).
type EvalOutcome struct {
	Cycles     int64 `json:"cycles,omitempty"`
	Infeasible bool  `json:"infeasible,omitempty"`
}

// Point is one evaluated design point on (or behind) the Pareto front.
type Point struct {
	Key            string           `json:"key"`
	Params         arch.Params      `json:"params"`
	AreaMM2        float64          `json:"area_mm2"`
	PowerW         float64          `json:"power_w"`
	WeightedCycles float64          `json:"weighted_cycles"`
	Cycles         map[string]int64 `json:"cycles"`
	Gen            int              `json:"gen"`
}

// dominates reports whether p is at least as good as q on every objective
// and strictly better on at least one (all three minimised).
func (p Point) dominates(q Point) bool {
	if p.WeightedCycles > q.WeightedCycles || p.AreaMM2 > q.AreaMM2 || p.PowerW > q.PowerW {
		return false
	}
	return p.WeightedCycles < q.WeightedCycles || p.AreaMM2 < q.AreaMM2 || p.PowerW < q.PowerW
}

// Stats accounts for one search.
type Stats struct {
	Generations    int   `json:"generations"`
	Sampled        int64 `json:"sampled"`
	PrunedAnalytic int64 `json:"pruned_analytic"`
	Duplicates     int64 `json:"duplicates"`
	Evaluated      int64 `json:"evaluated"`
	InfeasibleSim  int64 `json:"infeasible_sim"`

	// Resume accounting is process-local (how much this run inherited from
	// a snapshot) and excluded from JSON so a resumed run's document is
	// byte-identical to an uninterrupted one's.
	ResumedGenerations int   `json:"-"`
	ResumedEvaluations int64 `json:"-"`
}

// Result is the search outcome: the non-dominated front over every
// evaluated candidate, sorted by (weighted cycles, area, power, key).
type Result struct {
	Front []Point `json:"front"`
	Stats Stats   `json:"stats"`
}

// Generation is the per-generation progress event (cumulative counters).
type Generation struct {
	Gen       int   `json:"gen"`
	Sampled   int64 `json:"sampled"`
	Pruned    int64 `json:"pruned"`
	Evaluated int64 `json:"evaluated"`
	Budget    int   `json:"budget"`
	FrontSize int   `json:"front_size"`
}

// Env wires the tuner to its host. The tuner owns the search; the host
// owns how a candidate is actually evaluated (core.Session supplies a
// compile+simulate closure) — this keeps the package free of an import
// cycle with core while still riding the shared engine.
type Env struct {
	// Engine supplies the worker pool, the design-point cache (memory +
	// optional disk tier, which also hosts the PLTN snapshot) and the job
	// policy. A nil engine evaluates sequentially and uncached.
	Engine *exec.Engine

	// Bench loads a benchmark's virtual units for analytical pruning
	// (dse.LoadBench in production). Nil disables the per-benchmark
	// feasibility screen; validation and area/power ceilings still apply.
	Bench func(name string) (*dse.Bench, error)

	// Evaluate is the raw, uncached compile+simulate for one candidate.
	// The tuner wraps it with the engine's cache and job policy itself.
	Evaluate func(ctx context.Context, p arch.Params, bench string) (EvalOutcome, error)

	// OnGeneration, when set, observes each completed generation.
	OnGeneration func(Generation)

	// Logf receives diagnostics (snapshot quarantines, resume notes);
	// nil discards them. Never used for results.
	Logf func(format string, args ...any)

	// Metrics, when set, receives side-channel instrumentation:
	// generation wall time and prune-stage counters. Never feeds back
	// into the search — results stay byte-identical with or without it.
	Metrics *metrics.Registry
}

func (e *Env) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// FormatFront renders the Pareto front as a text table.
func FormatFront(r *Result) string {
	t := stats.New(
		fmt.Sprintf("Pareto front: %d point(s) of %d evaluated", len(r.Front), r.Stats.Evaluated),
		"Chip", "DDR", "PCU s/r/si/so/vi/vo", "PMU KB", "Area mm^2", "Power W", "Wgt cycles")
	for _, p := range r.Front {
		t.Add(
			fmt.Sprintf("%dx%d", p.Params.Chip.Cols, p.Params.Chip.Rows),
			fmt.Sprint(p.Params.Chip.DDRChannels),
			fmt.Sprintf("%d/%d/%d/%d/%d/%d", p.Params.PCU.Stages, p.Params.PCU.Registers,
				p.Params.PCU.ScalarIns, p.Params.PCU.ScalarOuts,
				p.Params.PCU.VectorIns, p.Params.PCU.VectorOuts),
			fmt.Sprint(p.Params.PMU.BankKB),
			fmt.Sprintf("%.1f", p.AreaMM2),
			fmt.Sprintf("%.1f", p.PowerW),
			fmt.Sprintf("%.0f", p.WeightedCycles))
	}
	return t.String()
}

// resultDoc is the plasticine-tune/v1 JSON document.
type resultDoc struct {
	Schema      string      `json:"schema"`
	Mix         []MixEntry  `json:"mix"`
	Constraints Constraints `json:"constraints"`
	Budget      int         `json:"budget"`
	Population  int         `json:"population"`
	Seed        int64       `json:"seed"`
	Front       []Point     `json:"front"`
	Stats       Stats       `json:"stats"`
}

// ResultDoc assembles the plasticine-tune/v1 document as a value, for
// callers that embed it in a larger encoding (the /v1/tune stream's result
// event).
func ResultDoc(spec Spec, r *Result) (any, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	return resultDoc{
		Schema:      "plasticine-tune/v1",
		Mix:         spec.Mix,
		Constraints: spec.Constraints,
		Budget:      spec.Budget,
		Population:  spec.Population,
		Seed:        spec.Seed,
		Front:       r.Front,
		Stats:       r.Stats,
	}, nil
}

// ResultJSON emits the plasticine-tune/v1 document (schema in
// EXPERIMENTS.md). Deterministic: a resumed run emits the same bytes as an
// uninterrupted one.
func ResultJSON(spec Spec, r *Result) ([]byte, error) {
	doc, err := ResultDoc(spec, r)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(doc, "", "  ")
}
