package tune

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"plasticine/internal/arch"
)

// PLTN search-state snapshot, little-endian, following the PLDE/PLCK
// envelope discipline (versioned magic header, length-validated payload,
// trailing crc32 over everything before it):
//
//	u32 magic "PLTN" | u32 version | u32 payloadLen |
//	canonical-JSON payload | u32 crc32
//
// The payload is the snapshot struct in Go's canonical JSON encoding, and
// decode enforces canonicality (re-marshalling the parsed payload must
// reproduce it byte for byte) — so every accepted snapshot re-encodes
// byte-identically, the property FuzzTuneSnapshotDecode locks. Snapshots
// are written to a temp file, fsynced, and renamed into place after every
// completed generation; a defective file is quarantined (*.quarantined)
// and the search restarts from the design-point cache instead.

const (
	snapshotMagic = 0x504C544E // "PLTN"

	// SnapshotVersion is the PLTN format version. Any other version is
	// rejected at decode (and therefore quarantined by the load path), so a
	// format change costs a restarted search, never a crash or a silently
	// wrong resume.
	SnapshotVersion = 1

	snapshotExt = ".pltn"

	// snapshotMinLen is an envelope with an empty payload: magic + version
	// + length + crc32.
	snapshotMinLen = 4 + 4 + 4 + 4
)

// evalRecord is one simulated candidate, in evaluation order. The ordered
// record list is the whole mutable search state: front, parent selection
// and dedup set are all recomputed from it, so persisting it (plus the RNG)
// resumes the search exactly.
type evalRecord struct {
	Key            string           `json:"key"`
	Params         arch.Params      `json:"params"`
	AreaMM2        float64          `json:"area_mm2"`
	PowerW         float64          `json:"power_w"`
	Infeasible     bool             `json:"infeasible,omitempty"`
	Cycles         map[string]int64 `json:"cycles,omitempty"`
	WeightedCycles float64          `json:"weighted_cycles,omitempty"`
	Gen            int              `json:"gen"`
}

// snapshot is the PLTN payload.
type snapshot struct {
	// SpecHash fingerprints the search identity (Spec.hash); a snapshot
	// from a different mix/constraints/population/seed is ignored, not
	// resumed. Seed is kept alongside for inspectability.
	SpecHash uint64 `json:"spec_hash"`
	Seed     int64  `json:"seed"`

	Gen int    `json:"gen"` // completed generations
	Rng uint64 `json:"rng"` // RNG state after the last completed generation

	Sampled       int64 `json:"sampled"`
	Pruned        int64 `json:"pruned"`
	Duplicates    int64 `json:"duplicates"`
	InfeasibleSim int64 `json:"infeasible_sim"`

	Records []evalRecord `json:"records"`
}

// encodeSnapshot serialises a snapshot to its on-disk PLTN form.
func encodeSnapshot(s *snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("tune: encode snapshot: %w", err)
	}
	b := make([]byte, 0, snapshotMinLen+len(payload))
	b = binary.LittleEndian.AppendUint32(b, snapshotMagic)
	b = binary.LittleEndian.AppendUint32(b, SnapshotVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// decodeSnapshot parses a PLTN snapshot, validating checksum, magic,
// version, payload length and payload canonicality before trusting any of
// it. Corrupt or truncated input yields an error — never a panic or a
// silently wrong resume.
func decodeSnapshot(data []byte) (*snapshot, error) {
	fail := func(format string, args ...any) (*snapshot, error) {
		return nil, fmt.Errorf("tune: bad snapshot: "+format, args...)
	}
	if len(data) < snapshotMinLen {
		return fail("%d bytes is shorter than any snapshot", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fail("checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	if m := binary.LittleEndian.Uint32(body); m != snapshotMagic {
		return fail("bad magic %08x", m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != SnapshotVersion {
		return fail("version %d, this build reads %d", v, SnapshotVersion)
	}
	payload := body[12:]
	if n := int(binary.LittleEndian.Uint32(body[8:])); n != len(payload) {
		return fail("payload length %d does not match remaining %d bytes", n, len(payload))
	}
	var s snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return fail("payload: %v", err)
	}
	// Canonicality: an accepted snapshot must re-encode byte-identically,
	// so a rewrite after resume can never flip-flop the file contents.
	canon, err := json.Marshal(&s)
	if err != nil || !bytes.Equal(canon, payload) {
		return fail("payload is not in canonical form")
	}
	return &s, nil
}

// snapshotPath names the search's snapshot inside the cache directory:
// keyed by the search identity so unrelated searches coexist, and by shard
// so cooperating shards each track their own progress.
func snapshotPath(dir string, spec *Spec) string {
	name := fmt.Sprintf("tune-%016x", spec.hash())
	if spec.Shards > 1 {
		name += fmt.Sprintf("-s%dof%d", spec.Shard, spec.Shards)
	}
	return filepath.Join(dir, name+snapshotExt)
}

// writeSnapshotFile stores a snapshot atomically: temp file in the same
// directory, fsync, rename. A SIGKILL mid-write can only leave a stale temp
// file; the previous snapshot stays intact.
func writeSnapshotFile(path string, s *snapshot) error {
	data, err := encodeSnapshot(s)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// loadSnapshotFile reads and validates a snapshot. A missing file is a
// fresh start (nil, nil). A defective file is quarantined — renamed
// *.quarantined so it stays inspectable but is never read again — and also
// reported as a fresh start; the quarantined return tells the caller to
// log it. A valid snapshot from a different search identity is left in
// place and ignored (it can only happen via a 64-bit hash collision in the
// file name, or a caller constructing paths by hand).
func loadSnapshotFile(path string, specHash uint64) (s *snapshot, quarantined bool, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, false, nil
	}
	snap, derr := decodeSnapshot(data)
	if derr != nil {
		if os.Rename(path, path+".quarantined") != nil {
			os.Remove(path)
		}
		return nil, true, derr
	}
	if snap.SpecHash != specHash {
		return nil, false, nil
	}
	return snap, false, nil
}
