package tune

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"plasticine/internal/arch"
	"plasticine/internal/dse"
	"plasticine/internal/exec"
	"plasticine/internal/metrics"
)

// search is the in-flight state of one Search call. All mutation happens on
// the coordinator goroutine; the parallel phase writes only index-addressed
// result slots.
type search struct {
	spec Spec
	env  Env

	benches map[string]*dse.Bench // pruning units per mix benchmark
	rng     rng
	gen     int

	sampled, pruned, dups, infeasibleSim int64

	records []evalRecord    // every simulated candidate, in evaluation order
	seen    map[string]bool // keys of evaluated candidates (dedup)

	snapPath string
	specHash uint64

	resumedGen   int
	resumedEvals int64
}

// searchMetrics bundles the tuner's side-channel collectors. With a nil
// registry every collector is nil and every record is a no-op.
type searchMetrics struct {
	genSeconds                                   *metrics.Histogram
	sampled, pruned, dups, evaluated, infeasible *metrics.Counter
}

func newSearchMetrics(r *metrics.Registry) searchMetrics {
	return searchMetrics{
		genSeconds: r.Histogram("plasticine_tune_generation_seconds",
			"Wall time per tuner generation (sample, prune, simulate, select)."),
		sampled: r.Counter("plasticine_tune_sampled_total",
			"Candidates drawn across all generations."),
		pruned: r.Counter("plasticine_tune_pruned_analytic_total",
			"Candidates rejected by the analytic screen before simulation."),
		dups: r.Counter("plasticine_tune_duplicates_total",
			"Sampled candidates already evaluated (deduplicated)."),
		evaluated: r.Counter("plasticine_tune_evaluated_total",
			"Candidates that reached simulation."),
		infeasible: r.Counter("plasticine_tune_infeasible_sim_total",
			"Simulated candidates the fabric could not run (infeasible points)."),
	}
}

// RegisterSearchMetrics pre-registers the tuner's metric families so a
// serving process's first /metricsz scrape shows them at zero instead of
// having them appear after the first search; Search's own registration
// is idempotent and attaches to the same collectors.
func RegisterSearchMetrics(r *metrics.Registry) { newSearchMetrics(r) }

// Search runs one budgeted Pareto-front search. Deterministic for a fixed
// spec at any engine worker count; resumable byte-identically from the PLTN
// snapshot when the engine has a disk tier.
func Search(ctx context.Context, spec Spec, env Env) (*Result, error) {
	if env.Evaluate == nil {
		return nil, errors.New("tune: Env.Evaluate is required")
	}
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	s := &search{
		spec:     spec,
		env:      env,
		rng:      rng{state: uint64(spec.Seed)},
		seen:     map[string]bool{},
		specHash: spec.hash(),
	}
	if env.Bench != nil {
		s.benches = make(map[string]*dse.Bench, len(spec.Mix))
		for _, m := range spec.Mix {
			b, err := env.Bench(m.Bench)
			if err != nil {
				return nil, err
			}
			s.benches[m.Bench] = b
		}
	}
	if d := env.Engine.Cache().Disk(); d != nil {
		s.snapPath = snapshotPath(d.Dir(), &s.spec)
		s.loadSnapshot()
	}

	// Side-channel instrumentation only: a nil registry hands out nil
	// collectors whose methods no-op, and nothing below feeds back into
	// the search, so the front stays byte-identical either way.
	sm := newSearchMetrics(env.Metrics)

	for len(s.records) < s.spec.Budget && s.gen < s.spec.MaxGenerations {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := struct{ sampled, pruned, dups, infeasible, evaluated int64 }{
			s.sampled, s.pruned, s.dups, s.infeasibleSim, int64(len(s.records)),
		}
		genStart := time.Now()
		if err := s.generation(ctx); err != nil {
			return nil, err
		}
		sm.genSeconds.ObserveSince(genStart)
		sm.sampled.Add(s.sampled - before.sampled)
		sm.pruned.Add(s.pruned - before.pruned)
		sm.dups.Add(s.dups - before.dups)
		sm.evaluated.Add(int64(len(s.records)) - before.evaluated)
		sm.infeasible.Add(s.infeasibleSim - before.infeasible)
		if err := s.writeSnapshot(); err != nil {
			// A failed snapshot write costs resumability, not correctness;
			// the design-point cache still holds every completed evaluation.
			s.env.logf("tune: snapshot write failed (search continues): %v", err)
		}
		if s.env.OnGeneration != nil {
			s.env.OnGeneration(Generation{
				Gen:       s.gen,
				Sampled:   s.sampled,
				Pruned:    s.pruned,
				Evaluated: int64(len(s.records)),
				Budget:    s.spec.Budget,
				FrontSize: len(s.front()),
			})
		}
	}
	return s.result(), nil
}

// candidate is one analytically-admitted design point awaiting simulation.
type candidate struct {
	params arch.Params
	key    string
	area   float64
	power  float64
}

// generation runs one sample → prune → simulate → select round. Every RNG
// draw happens here, on the coordinator, in a fixed order; the budget
// counts evaluated candidates whether or not the cache already held them,
// so the trajectory — and therefore the front — is identical across worker
// counts, cache states and resumes.
func (s *search) generation(ctx context.Context) error {
	pop := s.spec.Population
	parents := s.parents()
	sampled := make([]arch.Params, 0, pop)
	for i := 0; i < pop; i++ {
		// Three quarters of the population descends from the current front;
		// the rest are random immigrants so the search never inbreeds. With
		// no feasible parents yet, everything is an immigrant.
		if len(parents) == 0 || i >= (3*pop+3)/4 {
			sampled = append(sampled, randomParams(&s.rng))
		} else {
			sampled = append(sampled, mutate(&s.rng, parents[i%len(parents)].Params))
		}
	}
	s.sampled += int64(len(sampled))

	// Analytic screen, cheapest test first: parameter validity, area
	// ceiling, power ceiling, then partition-and-fit per mix benchmark.
	// Everything here is closed-form or a partitioning pass — no simulation.
	genSeen := map[string]bool{}
	var survivors []candidate
	for _, p := range sampled {
		key := paramKey(p)
		if genSeen[key] || s.seen[key] {
			s.dups++
			continue
		}
		genSeen[key] = true
		c, ok := s.admit(p, key)
		if !ok {
			s.pruned++
			continue
		}
		survivors = append(survivors, c)
	}

	if err := s.evaluate(ctx, survivors); err != nil {
		return err
	}
	s.gen++
	return nil
}

// admit applies the analytical constraints to one candidate.
func (s *search) admit(p arch.Params, key string) (candidate, bool) {
	if p.Validate() != nil {
		return candidate{}, false
	}
	area := arch.Area(p).ChipTotal()
	if c := s.spec.Constraints.MaxAreaMM2; c > 0 && area > c {
		return candidate{}, false
	}
	power := arch.MaxPower(p)
	if c := s.spec.Constraints.MaxPowerW; c > 0 && power > c {
		return candidate{}, false
	}
	for _, m := range s.spec.Mix {
		if b := s.benches[m.Bench]; b != nil {
			if dse.CheckFeasible(b, p) != nil {
				return candidate{}, false
			}
		}
	}
	return candidate{params: p, key: key, area: area, power: power}, true
}

// evaluate fans the survivors' (candidate, benchmark) jobs across the
// engine and folds the outcomes into records in candidate order.
func (s *search) evaluate(ctx context.Context, survivors []candidate) error {
	if len(survivors) == 0 {
		return nil
	}
	mix := s.spec.Mix
	baseIdx := len(s.records)
	owned := func(ci int) bool {
		return s.spec.Shards <= 1 || (baseIdx+ci)%s.spec.Shards == s.spec.Shard
	}
	// Job order puts this shard's own candidates first, so its workers make
	// progress before blocking on another shard's results; the fold below
	// is by candidate index, so execution order never shows in the output.
	n := len(survivors) * len(mix)
	order := make([]int, 0, n)
	for pass := 0; pass < 2; pass++ {
		for ci := range survivors {
			if owned(ci) == (pass == 0) {
				for bi := range mix {
					order = append(order, ci*len(mix)+bi)
				}
			}
		}
	}
	outs := make([]EvalOutcome, n)
	err := s.env.Engine.Pool().Map(ctx, n, func(ctx context.Context, i int) error {
		j := order[i]
		ci, bi := j/len(mix), j%len(mix)
		out, err := s.benchEval(ctx, survivors[ci], mix[bi].Bench, owned(ci))
		if err != nil {
			return err
		}
		outs[j] = out
		return nil
	})
	if err != nil {
		return err
	}
	for ci, c := range survivors {
		rec := evalRecord{
			Key: c.key, Params: c.params,
			AreaMM2: c.area, PowerW: c.power, Gen: s.gen,
			Cycles: map[string]int64{},
		}
		for bi, m := range mix {
			out := outs[ci*len(mix)+bi]
			if out.Infeasible {
				rec.Infeasible = true
			}
			rec.Cycles[m.Bench] = out.Cycles
			rec.WeightedCycles += m.Weight * float64(out.Cycles)
		}
		if rec.Infeasible {
			// Placement/routing or simulation rejected the design even
			// though the analytical screen admitted it: it consumes budget
			// (the trajectory must not depend on the outcome) but never
			// joins the front.
			rec.Cycles, rec.WeightedCycles = nil, 0
			s.infeasibleSim++
		}
		s.records = append(s.records, rec)
		s.seen[c.key] = true
	}
	return nil
}

// benchEval resolves one (candidate, benchmark) outcome through the
// engine's cache and job policy. Out-of-shard work first polls the shared
// disk tier for the owning shard's result; past the patience window it is
// computed locally — the outcome is a pure function of (params, benchmark),
// so stolen work is byte-identical to waited-for work.
func (s *search) benchEval(ctx context.Context, c candidate, bench string, owned bool) (EvalOutcome, error) {
	// Full-fidelity identity: %v would go through Params.String, which
	// summarises (no port counts, no register count) and would collapse
	// distinct designs onto one cache entry.
	pb, err := json.Marshal(c.params)
	if err != nil {
		return EvalOutcome{}, fmt.Errorf("tune: cache key for %s: %w", c.key, err)
	}
	k := exec.NewKey("tune/eval", bench, string(pb))
	if !owned {
		if out, ok := s.pollSibling(ctx, k); ok {
			return out, nil
		}
	}
	return exec.CachedJSON(s.env.Engine.Cache(), k, func() (EvalOutcome, error) {
		var out EvalOutcome
		err := s.env.Engine.RunJob(ctx, "tune "+bench+" "+c.key, func(ctx context.Context) error {
			var rerr error
			out, rerr = s.env.Evaluate(ctx, c.params, bench)
			return rerr
		})
		return out, err
	})
}

// pollSibling waits up to ShardWait for another shard to publish a result
// into the shared disk tier.
func (s *search) pollSibling(ctx context.Context, k exec.Key) (EvalOutcome, bool) {
	d := s.env.Engine.Cache().Disk()
	if d == nil {
		return EvalOutcome{}, false
	}
	deadline := time.Now().Add(s.spec.ShardWait)
	for {
		if data, ok := d.Get(k); ok {
			var out EvalOutcome
			if json.Unmarshal(data, &out) == nil {
				return out, true
			}
			return EvalOutcome{}, false // undecodable: recompute locally
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return EvalOutcome{}, false
		}
		select {
		case <-ctx.Done():
			return EvalOutcome{}, false
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// front returns the non-dominated feasible points over every evaluated
// record, sorted by (weighted cycles, area, power, key).
func (s *search) front() []Point {
	var pts []Point
	for _, r := range s.records {
		if r.Infeasible {
			continue
		}
		pts = append(pts, Point{
			Key: r.Key, Params: r.Params,
			AreaMM2: r.AreaMM2, PowerW: r.PowerW,
			WeightedCycles: r.WeightedCycles, Cycles: r.Cycles, Gen: r.Gen,
		})
	}
	front := make([]Point, 0, len(pts))
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && q.dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.WeightedCycles != b.WeightedCycles {
			return a.WeightedCycles < b.WeightedCycles
		}
		if a.AreaMM2 != b.AreaMM2 {
			return a.AreaMM2 < b.AreaMM2
		}
		if a.PowerW != b.PowerW {
			return a.PowerW < b.PowerW
		}
		return a.Key < b.Key
	})
	return front
}

// parents is the successive-halving selection: the next generation descends
// from the current non-dominated set, capped at half the population (best
// weighted cycles first).
func (s *search) parents() []Point {
	front := s.front()
	if cap := max(2, s.spec.Population/2); len(front) > cap {
		front = front[:cap]
	}
	return front
}

// writeSnapshot persists the search state after a completed generation.
func (s *search) writeSnapshot() error {
	if s.snapPath == "" {
		return nil
	}
	return writeSnapshotFile(s.snapPath, &snapshot{
		SpecHash: s.specHash,
		Seed:     s.spec.Seed,
		Gen:      s.gen,
		Rng:      s.rng.state,
		Sampled:  s.sampled, Pruned: s.pruned,
		Duplicates: s.dups, InfeasibleSim: s.infeasibleSim,
		Records: s.records,
	})
}

// loadSnapshot resumes from the cache directory's PLTN snapshot if one
// matches this search's identity.
func (s *search) loadSnapshot() {
	snap, quarantined, err := loadSnapshotFile(s.snapPath, s.specHash)
	if quarantined {
		s.env.logf("tune: quarantined corrupt snapshot %s (search restarts from the design-point cache): %v", s.snapPath, err)
	}
	if snap == nil {
		return
	}
	s.gen = snap.Gen
	s.rng.state = snap.Rng
	s.sampled, s.pruned = snap.Sampled, snap.Pruned
	s.dups, s.infeasibleSim = snap.Duplicates, snap.InfeasibleSim
	s.records = snap.Records
	for _, r := range s.records {
		s.seen[r.Key] = true
	}
	s.resumedGen, s.resumedEvals = snap.Gen, int64(len(snap.Records))
}

// result assembles the final front and accounting.
func (s *search) result() *Result {
	return &Result{
		Front: s.front(),
		Stats: Stats{
			Generations:        s.gen,
			Sampled:            s.sampled,
			PrunedAnalytic:     s.pruned,
			Duplicates:         s.dups,
			Evaluated:          int64(len(s.records)),
			InfeasibleSim:      s.infeasibleSim,
			ResumedGenerations: s.resumedGen,
			ResumedEvaluations: s.resumedEvals,
		},
	}
}
