package tune

// FuzzTuneSnapshotDecode drives the PLTN snapshot decoder with arbitrary
// bytes and asserts the resume robustness contract: decoding never panics,
// anything it accepts re-encodes byte-identically (canonical form — a
// resumed search can never flip-flop its snapshot file), and the full load
// path over the same bytes either resumes the exact snapshot or quarantines
// the file for inspection — never a silently wrong resume, never a crash.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"plasticine/internal/arch"
)

func fuzzSeedSnapshot() *snapshot {
	p := arch.Default()
	return &snapshot{
		SpecHash: 0x1234abcd5678ef90,
		Seed:     42,
		Gen:      2,
		Rng:      0xdeadbeefcafef00d,
		Sampled:  16, Pruned: 7, Duplicates: 1, InfeasibleSim: 1,
		Records: []evalRecord{
			{Key: paramKey(p), Params: p, AreaMM2: 44.25, PowerW: 25.5,
				Cycles: map[string]int64{"InnerProduct": 167990}, WeightedCycles: 167990, Gen: 0},
			{Key: "infeasible-one", Params: p, AreaMM2: 90, PowerW: 50,
				Infeasible: true, Gen: 1},
		},
	}
}

func FuzzTuneSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	whole, err := encodeSnapshot(fuzzSeedSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(whole)
	f.Add(whole[:len(whole)-5]) // truncated
	flipped := append([]byte(nil), whole...)
	flipped[20] ^= 0x40 // payload bit flip: checksum must catch it
	f.Add(flipped)
	empty, err := encodeSnapshot(&snapshot{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	stale := append([]byte(nil), whole...)
	stale[4]++ // future version, checksum not fixed up
	f.Add(stale)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decodeSnapshot(data)
		if err == nil {
			re, eerr := encodeSnapshot(snap)
			if eerr != nil || !bytes.Equal(re, data) {
				t.Fatalf("decode accepted bytes that re-encode differently:\n in: %x\nout: %x (err %v)", data, re, eerr)
			}
		}

		// Property check against the full load path: plant the bytes as a
		// search's snapshot file and load it.
		dir := t.TempDir()
		path := filepath.Join(dir, "tune-fuzz"+snapshotExt)
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		loaded, quarantined, _ := loadSnapshotFile(path, 0x1234abcd5678ef90)
		switch {
		case loaded != nil:
			// A resume must come from a valid snapshot with the matching
			// identity — anything else is a silently wrong resume.
			if err != nil || snap.SpecHash != 0x1234abcd5678ef90 {
				t.Fatalf("loadSnapshotFile resumed from defective or foreign bytes: %+v", loaded)
			}
		case quarantined:
			// Quarantine must preserve the defective bytes for inspection
			// and must only fire on bytes the decoder rejects.
			if err == nil {
				t.Fatal("valid snapshot was quarantined")
			}
			kept, rerr := os.ReadFile(path + ".quarantined")
			if rerr != nil || !bytes.Equal(kept, data) {
				t.Fatalf("quarantine did not preserve the bytes: %v", rerr)
			}
		default:
			// Ignored: legal only for a valid snapshot of another search.
			if err != nil {
				t.Fatal("defective snapshot was neither loaded nor quarantined")
			}
			if snap.SpecHash == 0x1234abcd5678ef90 {
				t.Fatal("matching snapshot was silently ignored")
			}
		}
	})
}
