package tune

import (
	"fmt"

	"plasticine/internal/arch"
)

// The genome: the tuned subset of arch.Params, each gene with its value
// grid. PCU datapath genes follow the Table 3 design space (the same grids
// the Figure 7 sweeps walk); the chip-organisation genes extend it to grid
// shape, scratchpad depth and memory channels. Everything else stays at the
// paper defaults — notably Lanes (and the matching PMU bank count) stays
// 16, the vector width the whole fabric is provisioned around. Columns are
// all even so every grid holds an equal number of PCUs and PMUs
// (arch.Validate's invariant). The product of the grids is ~3x10⁸
// candidates — far beyond enumeration, which is the point of the search.
type gene struct {
	name   string
	values []int
	get    func(p *arch.Params) int
	set    func(p *arch.Params, v int)
}

var genome = []gene{
	{"pcu.stages", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		func(p *arch.Params) int { return p.PCU.Stages },
		func(p *arch.Params, v int) { p.PCU.Stages = v }},
	{"pcu.registers", []int{2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16},
		func(p *arch.Params) int { return p.PCU.Registers },
		func(p *arch.Params, v int) { p.PCU.Registers = v }},
	{"pcu.scalarIns", []int{1, 2, 3, 4, 5, 6, 8, 10},
		func(p *arch.Params) int { return p.PCU.ScalarIns },
		func(p *arch.Params, v int) { p.PCU.ScalarIns = v }},
	{"pcu.scalarOuts", []int{1, 2, 3, 4, 5, 6},
		func(p *arch.Params) int { return p.PCU.ScalarOuts },
		func(p *arch.Params, v int) { p.PCU.ScalarOuts = v }},
	{"pcu.vectorIns", []int{2, 3, 4, 5, 6, 8, 10},
		func(p *arch.Params) int { return p.PCU.VectorIns },
		func(p *arch.Params, v int) { p.PCU.VectorIns = v }},
	{"pcu.vectorOuts", []int{1, 2, 3, 4, 5, 6},
		func(p *arch.Params) int { return p.PCU.VectorOuts },
		func(p *arch.Params, v int) { p.PCU.VectorOuts = v }},
	{"pmu.bankKB", []int{4, 8, 16, 32, 64},
		func(p *arch.Params) int { return p.PMU.BankKB },
		func(p *arch.Params, v int) { p.PMU.BankKB = v }},
	{"chip.rows", []int{2, 4, 6, 8, 10, 12, 16},
		func(p *arch.Params) int { return p.Chip.Rows },
		func(p *arch.Params, v int) { p.Chip.Rows = v }},
	{"chip.cols", []int{4, 8, 12, 16, 20, 24},
		func(p *arch.Params) int { return p.Chip.Cols },
		func(p *arch.Params, v int) { p.Chip.Cols = v }},
	{"chip.ddr", []int{1, 2, 4, 8},
		func(p *arch.Params) int { return p.Chip.DDRChannels },
		func(p *arch.Params, v int) { p.Chip.DDRChannels = v }},
}

// paramKey canonicalises a candidate's tuned genes: the dedup identity, the
// deterministic tie-break, and the human-readable label. Untuned fields are
// fixed at arch.Default(), so the genes fully identify the candidate.
func paramKey(p arch.Params) string {
	return fmt.Sprintf("chip%dx%d ddr%d pcu%d/%d/%d/%d/%d/%d pmu%dKB",
		p.Chip.Cols, p.Chip.Rows, p.Chip.DDRChannels,
		p.PCU.Stages, p.PCU.Registers, p.PCU.ScalarIns, p.PCU.ScalarOuts,
		p.PCU.VectorIns, p.PCU.VectorOuts, p.PMU.BankKB)
}

// rng is a splitmix64 generator. Unlike math/rand it is a single uint64 of
// state, so a snapshot can persist it and a resumed search replays the
// exact draw sequence.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a draw in [0, n). The modulo bias at n ≪ 2⁶⁴ is irrelevant
// for sampling a design space.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// randomParams samples a uniform candidate over the genome.
func randomParams(r *rng) arch.Params {
	p := arch.Default()
	for _, g := range genome {
		g.set(&p, g.values[r.intn(len(g.values))])
	}
	return p
}

// mutate perturbs 1–3 genes of a parent, each by one grid step (falling
// back to a uniform redraw when the value is off-grid or pinned at an
// edge), so children explore the parent's neighbourhood.
func mutate(r *rng, parent arch.Params) arch.Params {
	p := parent
	for n := 1 + r.intn(3); n > 0; n-- {
		g := genome[r.intn(len(genome))]
		cur, idx := g.get(&p), -1
		for i, v := range g.values {
			if v == cur {
				idx = i
				break
			}
		}
		step := 1
		if r.intn(2) == 0 {
			step = -1
		}
		if idx < 0 || idx+step < 0 || idx+step >= len(g.values) {
			g.set(&p, g.values[r.intn(len(g.values))])
			continue
		}
		g.set(&p, g.values[idx+step])
	}
	return p
}
