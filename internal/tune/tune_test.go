package tune

// Unit tests over the search with a fake evaluator: cycles are a pure
// function of the candidate, so determinism, resume and sharding can be
// pinned byte-for-byte without paying for compilation or simulation.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plasticine/internal/arch"
	"plasticine/internal/exec"
)

// fakeCycles is a deterministic stand-in for simulation: any pure function
// of the tuned genes works, as long as distinct designs usually score
// differently (so fronts are non-trivial).
func fakeCycles(p arch.Params, bench string) int64 {
	c := int64(100000)
	c -= int64(p.Chip.Rows*p.Chip.Cols) * 300
	c -= int64(p.PCU.Stages) * 700
	c -= int64(p.PMU.BankKB) * 50
	c += int64(p.PCU.Registers) * 11
	if bench != "" {
		c += int64(len(bench))
	}
	if c < 1 {
		c = 1
	}
	return c
}

// fakeEnv builds an Env over a fresh engine. calls counts raw (uncached)
// evaluations.
func fakeEnv(workers int, calls *atomic.Int64) Env {
	return Env{
		Engine: exec.NewEngine(workers),
		Evaluate: func(ctx context.Context, p arch.Params, bench string) (EvalOutcome, error) {
			if calls != nil {
				calls.Add(1)
			}
			return EvalOutcome{Cycles: fakeCycles(p, bench)}, nil
		},
	}
}

func testSpec() Spec {
	return Spec{
		Mix:         []MixEntry{{Bench: "A", Weight: 2}, {Bench: "B", Weight: 1}},
		Constraints: Constraints{MaxAreaMM2: 150},
		Budget:      12,
		Population:  8,
		Seed:        42,
	}
}

func searchJSON(t *testing.T, spec Spec, env Env) []byte {
	t.Helper()
	res, err := Search(context.Background(), spec, env)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ResultJSON(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeterminismAcrossWorkers is the headline contract: same spec, same
// seed — byte-identical plasticine-tune/v1 document at any worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	spec := testSpec()
	one := searchJSON(t, spec, fakeEnv(1, nil))
	eight := searchJSON(t, spec, fakeEnv(8, nil))
	if !bytes.Equal(one, eight) {
		t.Fatalf("front differs across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", one, eight)
	}
	if !bytes.Contains(one, []byte(`"plasticine-tune/v1"`)) {
		t.Fatalf("document is missing its schema tag:\n%s", one)
	}
}

// TestSeedChangesTrajectory guards against the RNG being ignored.
func TestSeedChangesTrajectory(t *testing.T) {
	a, b := testSpec(), testSpec()
	b.Seed = 43
	if bytes.Equal(searchJSON(t, a, fakeEnv(2, nil)), searchJSON(t, b, fakeEnv(2, nil))) {
		t.Fatal("different seeds produced identical documents")
	}
}

// diskEnv is fakeEnv plus a persistent tier rooted at dir.
func diskEnv(t *testing.T, workers int, dir string, calls *atomic.Int64) Env {
	t.Helper()
	env := fakeEnv(workers, calls)
	d, err := exec.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.AttachDisk(d)
	t.Cleanup(func() { d.Flush() })
	return env
}

// TestKillAndResume is the durability contract: a search killed after its
// first generation, rerun against the same cache directory, resumes from the
// PLTN snapshot and finishes byte-identical to an uninterrupted run — and a
// third run over the complete state recomputes and rewrites nothing.
func TestKillAndResume(t *testing.T) {
	spec := testSpec()

	// Uninterrupted reference run in its own directory.
	want := searchJSON(t, spec, diskEnv(t, 4, t.TempDir(), nil))

	dir := t.TempDir()
	// Run 1: die (via context cancellation — as abrupt as SIGKILL from the
	// search's point of view, since snapshots only land at generation
	// boundaries) after the first completed generation.
	ctx, cancel := context.WithCancel(context.Background())
	env := diskEnv(t, 4, dir, nil)
	env.OnGeneration = func(g Generation) {
		if g.Gen >= 1 {
			cancel()
		}
	}
	if _, err := Search(ctx, spec, env); err == nil {
		t.Fatal("canceled search reported success")
	}

	// Run 2: same directory, fresh engine — must resume and match.
	var calls atomic.Int64
	env2 := diskEnv(t, 4, dir, &calls)
	res, err := Search(context.Background(), spec, env2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumedGenerations < 1 || res.Stats.ResumedEvaluations < 1 {
		t.Fatalf("run 2 did not resume: %+v", res.Stats)
	}
	got, err := ResultJSON(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed document differs from uninterrupted run:\n-- resumed --\n%s\n-- clean --\n%s", got, want)
	}

	// Run 3: everything is already evaluated and snapshotted. No raw
	// evaluations, no new disk writes for completed generations.
	calls.Store(0)
	env3 := diskEnv(t, 4, dir, &calls)
	res3, err := Search(context.Background(), spec, env3)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := ResultJSON(spec, res3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got3, want) {
		t.Fatalf("third run diverged:\n%s", got3)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("third run recomputed %d evaluations; the search state covers them all", n)
	}
	if s := env3.Engine.CacheStats(); s.DiskWrites != 0 {
		t.Fatalf("third run rewrote %d cache entries for completed generations", s.DiskWrites)
	}
}

// TestPruneAllNeverSimulates: with an impossible area ceiling every candidate
// dies in the analytic screen, the budget is never spent, and the loop is
// bounded by MaxGenerations.
func TestPruneAllNeverSimulates(t *testing.T) {
	var calls atomic.Int64
	spec := testSpec()
	spec.Constraints.MaxAreaMM2 = 0.001
	spec.MaxGenerations = 3
	res, err := Search(context.Background(), spec, fakeEnv(2, &calls))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if calls.Load() != 0 || st.Evaluated != 0 {
		t.Fatalf("impossible constraint still simulated: %+v", st)
	}
	if st.Generations != 3 || st.PrunedAnalytic+st.Duplicates != st.Sampled {
		t.Fatalf("accounting: %+v", st)
	}
	if len(res.Front) != 0 {
		t.Fatalf("empty search grew a front: %v", res.Front)
	}
}

// TestInfeasibleConsumesBudgetButNotFront: simulation-detected infeasibility
// (no-route, deadlock) must burn budget — the trajectory cannot depend on
// outcomes — while never surfacing in the front.
func TestInfeasibleConsumesBudgetButNotFront(t *testing.T) {
	spec := testSpec()
	env := fakeEnv(2, nil)
	env.Evaluate = func(ctx context.Context, p arch.Params, bench string) (EvalOutcome, error) {
		return EvalOutcome{Infeasible: true}, nil
	}
	res, err := Search(context.Background(), spec, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluated < int64(spec.Budget) {
		t.Fatalf("infeasible outcomes must consume budget: %+v", res.Stats)
	}
	if len(res.Front) != 0 {
		t.Fatalf("infeasible points joined the front: %v", res.Front)
	}
	if res.Stats.InfeasibleSim != res.Stats.Evaluated {
		t.Fatalf("infeasible accounting: %+v", res.Stats)
	}
}

// TestSnapshotQuarantine: a corrupt PLTN file is quarantined (inspectable,
// never reread) and the search restarts cleanly.
func TestSnapshotQuarantine(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	want := searchJSON(t, spec, diskEnv(t, 2, t.TempDir(), nil))

	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	path := snapshotPath(dir, &norm)
	if err := os.WriteFile(path, []byte("PLTNgarbage-not-a-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var quarantineLogged bool
	env := diskEnv(t, 2, dir, nil)
	env.Logf = func(format string, args ...any) {
		if bytes.Contains([]byte(fmt.Sprintf(format, args...)), []byte("quarantined")) {
			quarantineLogged = true
		}
	}
	got := searchJSON(t, spec, env)
	if !bytes.Equal(got, want) {
		t.Fatalf("search after quarantine diverged:\n%s", got)
	}
	if !quarantineLogged {
		t.Fatal("quarantine was not logged")
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("corrupt snapshot was not kept for inspection: %v", err)
	}
}

// TestForeignSnapshotIgnored: a valid snapshot for a different search
// identity must not be resumed (or quarantined).
func TestForeignSnapshotIgnored(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()

	other := testSpec()
	other.Seed = 99
	if err := other.normalize(); err != nil {
		t.Fatal(err)
	}
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	// A snapshot with the *other* search's hash parked at *this* search's
	// path (hand-constructed, as the doc comment warns).
	if err := writeSnapshotFile(snapshotPath(dir, &norm), &snapshot{SpecHash: other.hash(), Seed: 99, Gen: 7}); err != nil {
		t.Fatal(err)
	}
	res, err := Search(context.Background(), spec, diskEnv(t, 2, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumedGenerations != 0 {
		t.Fatalf("resumed from a foreign snapshot: %+v", res.Stats)
	}
}

// TestShardedMatchesUnsharded: two cooperating shards over one cache
// directory produce the same document as the unsharded search.
func TestShardedMatchesUnsharded(t *testing.T) {
	spec := testSpec()
	want := searchJSON(t, spec, diskEnv(t, 4, t.TempDir(), nil))

	dir := t.TempDir()
	specs := [2]Spec{spec, spec}
	docs := [2][]byte{}
	var wg sync.WaitGroup
	errs := [2]error{}
	for i := range specs {
		specs[i].Shard, specs[i].Shards = i, 2
		// Short patience: the test must not hinge on cross-shard timing —
		// work stealing yields the same bytes either way.
		specs[i].ShardWait = 200 * time.Millisecond
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := diskEnv(t, 4, dir, nil)
			res, err := Search(context.Background(), specs[i], env)
			if err != nil {
				errs[i] = err
				return
			}
			docs[i], errs[i] = ResultJSON(spec, res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if !bytes.Equal(docs[0], want) || !bytes.Equal(docs[1], want) {
		t.Fatalf("sharded fronts diverge from unsharded:\n-- shard 0 --\n%s\n-- shard 1 --\n%s\n-- unsharded --\n%s",
			docs[0], docs[1], want)
	}
}

// TestBudgetExtensionResumes: raising the budget on a finished search's
// directory continues it instead of restarting — Budget is excluded from the
// search identity.
func TestBudgetExtensionResumes(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	var calls atomic.Int64
	if _, err := Search(context.Background(), spec, diskEnv(t, 2, dir, &calls)); err != nil {
		t.Fatal(err)
	}
	small := calls.Load()

	spec.Budget *= 2
	calls.Store(0)
	res, err := Search(context.Background(), spec, diskEnv(t, 2, dir, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumedEvaluations == 0 {
		t.Fatalf("extension restarted from scratch: %+v", res.Stats)
	}
	if res.Stats.Evaluated < int64(spec.Budget) && res.Stats.Generations < spec.MaxGenerations {
		t.Fatalf("extension did not spend the new budget: %+v", res.Stats)
	}
	// Each candidate costs len(mix)=2 raw calls; the resumed prefix must
	// cost none of them again.
	newCandidates := res.Stats.Evaluated - res.Stats.ResumedEvaluations
	if calls.Load() != 2*newCandidates {
		t.Fatalf("extension recomputed the prefix: %d new calls for %d new candidates (first run: %d calls)",
			calls.Load(), newCandidates, small)
	}
}

// TestParseMix covers the CLI/HTTP mix grammar.
func TestParseMix(t *testing.T) {
	got, err := ParseMix("GEMM:2, FFT ,GEMM:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Weight != 2 || got[1].Bench != "FFT" || got[1].Weight != 1 {
		t.Fatalf("ParseMix = %+v", got)
	}
	for _, bad := range []string{"", ",", "GEMM:x", "GEMM:-1", ":2"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestSpecNormalizeMergesAndLeavesCallerAlone: the mix is merged and sorted
// into a fresh slice; the caller's backing array must stay untouched.
func TestSpecNormalizeMergesAndLeavesCallerAlone(t *testing.T) {
	mine := []MixEntry{{Bench: "Z", Weight: 1}, {Bench: "A"}, {Bench: "Z", Weight: 2}}
	s := Spec{Mix: mine}
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Mix) != 2 || s.Mix[0].Bench != "A" || s.Mix[0].Weight != 1 || s.Mix[1].Weight != 3 {
		t.Fatalf("normalized mix = %+v", s.Mix)
	}
	if mine[0].Bench != "Z" || mine[1].Bench != "A" {
		t.Fatalf("normalize scribbled on the caller's slice: %+v", mine)
	}
	if s.Budget == 0 || s.Population == 0 || s.MaxGenerations == 0 || s.Shards != 1 {
		t.Fatalf("defaults not filled: %+v", s)
	}
}

// TestSpecHashIgnoresStopParams: budget, generation cap and sharding do not
// change the search identity; everything else does.
func TestSpecHashIgnoresStopParams(t *testing.T) {
	base := testSpec()
	if err := base.normalize(); err != nil {
		t.Fatal(err)
	}
	same := base
	same.Budget, same.MaxGenerations, same.Shard, same.Shards = 999, 999, 1, 4
	if base.hash() != same.hash() {
		t.Fatal("stop/execution params changed the identity hash")
	}
	for _, change := range []func(*Spec){
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Population++ },
		func(s *Spec) { s.Constraints.MaxAreaMM2 = 7 },
		func(s *Spec) { s.Mix = append([]MixEntry{}, MixEntry{Bench: "X", Weight: 1}) },
	} {
		c := base
		change(&c)
		if base.hash() == c.hash() {
			t.Fatalf("identity field change did not move the hash")
		}
	}
}

// TestGenomeStaysOnGrid: ten thousand mutations of a default-derived design
// must stay on the gene grids and validate.
func TestGenomeStaysOnGrid(t *testing.T) {
	r := rng{state: 7}
	p := randomParams(&r)
	for i := 0; i < 10000; i++ {
		p = mutate(&r, p)
		if err := p.Validate(); err != nil {
			t.Fatalf("mutation %d left the valid grid: %v\n%+v", i, err, p)
		}
	}
}

// TestSnapshotFilePerShard: shards keep distinct snapshot files.
func TestSnapshotFilePerShard(t *testing.T) {
	s := testSpec()
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	a := snapshotPath("d", &s)
	sh := s
	sh.Shard, sh.Shards = 1, 2
	b := snapshotPath("d", &sh)
	if a == b {
		t.Fatalf("shard snapshot path collides with unsharded: %s", a)
	}
	if filepath.Dir(a) != "d" || filepath.Ext(a) != snapshotExt {
		t.Fatalf("snapshot path shape: %s", a)
	}
}
