package pattern

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMapMatrixAdd(t *testing.T) {
	a := NewF32("a", 4, 3)
	b := NewF32("b", 4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			a.SetF32(float32(i*3+j), i, j)
			b.SetF32(float32(10*(i*3+j)), i, j)
		}
	}
	p := Map([]int{4, 3}, Add2(At(a, Index(0), Index(1)), At(b, Index(0), Index(1))))
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 12 {
		t.Fatalf("got %d outputs, want 12", len(out))
	}
	for k, v := range out {
		want := float32(11 * k)
		if v.F != want {
			t.Errorf("out[%d] = %g, want %g", k, v.F, want)
		}
	}
}

func TestFoldDotProduct(t *testing.T) {
	n := 64
	a := NewF32("a", n)
	b := NewF32("b", n)
	var want float64
	for i := 0; i < n; i++ {
		a.SetF32(float32(i), i)
		b.SetF32(float32(2*i), i)
		want += float64(i) * float64(2*i)
	}
	p := Fold([]int{n}, F(0), Mul2(At(a, Index(0)), At(b, Index(0))), Add)
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(out[0].F); math.Abs(got-want) > 1e-3*want {
		t.Errorf("dot = %g, want %g", got, want)
	}
}

func TestFoldMatmulCell(t *testing.T) {
	// Figure 1: untiled matmul = Map(M,P){ Fold(N){ a(i,k)*b(k,j) } }.
	const M, N, P = 3, 5, 2
	a := NewF32("a", M, N)
	b := NewF32("b", N, P)
	for i := 0; i < M; i++ {
		for k := 0; k < N; k++ {
			a.SetF32(float32(i+k), i, k)
		}
	}
	for k := 0; k < N; k++ {
		for j := 0; j < P; j++ {
			b.SetF32(float32(k*j+1), k, j)
		}
	}
	for i := 0; i < M; i++ {
		for j := 0; j < P; j++ {
			// Inner Fold over k with fixed (i, j): index dim 0 is k.
			body := Mul2(At(a, I(int32(i)), Index(0)), At(b, Index(0), I(int32(j))))
			out, err := Run(Fold([]int{N}, F(0), body, Add))
			if err != nil {
				t.Fatal(err)
			}
			var want float32
			for k := 0; k < N; k++ {
				want += a.F32At(i, k) * b.F32At(k, j)
			}
			if out[0].F != want {
				t.Errorf("c(%d,%d) = %g, want %g", i, j, out[0].F, want)
			}
		}
	}
}

func TestFilterKeepsMatchingOnly(t *testing.T) {
	n := 100
	items := NewI32("items", n)
	for i := 0; i < n; i++ {
		items.SetI32(int32(i%7), i)
	}
	// filter{ item < 3 } yields the item value.
	p := Filter([]int{n}, Lt2(At(items, Index(0)), I(3)), At(items, Index(0)))
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%7 < 3 {
			want++
		}
	}
	if len(out) != want {
		t.Fatalf("filter kept %d, want %d", len(out), want)
	}
	for _, v := range out {
		if v.I >= 3 {
			t.Errorf("kept value %d >= 3", v.I)
		}
	}
}

func TestHashReduceHistogram(t *testing.T) {
	// Section 2.1: histogram = HashReduce(key=bin, value=1, combine=add).
	n := 1000
	data := NewI32("data", n)
	wantCounts := map[int32]int32{}
	for i := 0; i < n; i++ {
		bin := int32((i * 37) % 10)
		data.SetI32(bin, i)
		wantCounts[bin]++
	}
	p := HashReduce([]int{n}, At(data, Index(0)), []Expr{I(1)}, Add, 10)
	acc, err := RunHash(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc) != len(wantCounts) {
		t.Fatalf("got %d bins, want %d", len(acc), len(wantCounts))
	}
	for k, want := range wantCounts {
		if got := acc[k][0].I; got != want {
			t.Errorf("bin %d count = %d, want %d", k, got, want)
		}
	}
}

func TestHashReduceTupleValues(t *testing.T) {
	// TPC-H Q1 shape (Figure 2): multiple value functions combined per key.
	n := 60
	key := NewI32("k", n)
	qty := NewF32("q", n)
	for i := 0; i < n; i++ {
		key.SetI32(int32(i%3), i)
		qty.SetF32(float32(i), i)
	}
	p := HashReduce([]int{n},
		At(key, Index(0)),
		[]Expr{At(qty, Index(0)), F(1)}, // (sum of qty, count)
		Add, 3)
	acc, err := RunHash(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := int32(0); k < 3; k++ {
		var wantSum float32
		var wantCnt float32
		for i := 0; i < n; i++ {
			if int32(i%3) == k {
				wantSum += float32(i)
				wantCnt++
			}
		}
		if acc[k][0].F != wantSum || acc[k][1].F != wantCnt {
			t.Errorf("key %d = (%g, %g), want (%g, %g)", k, acc[k][0].F, acc[k][1].F, wantSum, wantCnt)
		}
	}
}

func TestEvalMuxAndComparisons(t *testing.T) {
	e := Select(Ge2(Index(0), I(5)), F(1), F(-1))
	if got := Eval(e, []int{7}); got.F != 1 {
		t.Errorf("mux(7>=5) = %g, want 1", got.F)
	}
	if got := Eval(e, []int{3}); got.F != -1 {
		t.Errorf("mux(3>=5) = %g, want -1", got.F)
	}
}

func TestEvalUnaryOps(t *testing.T) {
	cases := []struct {
		e    Expr
		want float64
		tol  float64
	}{
		{&Un{Neg, F(2)}, -2, 0},
		{&Un{Abs, F(-3)}, 3, 0},
		{&Un{Sqrt, F(16)}, 4, 1e-6},
		{&Un{Exp, F(0)}, 1, 1e-6},
		{&Un{Log, F(1)}, 0, 1e-6},
		{&Un{Rcp, F(4)}, 0.25, 1e-6},
		{&Un{Neg, I(5)}, -5, 0},
		{&Un{Abs, I(-5)}, 5, 0},
	}
	for i, c := range cases {
		if got := Eval(c.e, nil).AsF64(); math.Abs(got-c.want) > c.tol {
			t.Errorf("case %d: got %g, want %g", i, got, c.want)
		}
	}
}

func TestEvalTypeConversions(t *testing.T) {
	if got := Eval(&ToF32{I(7)}, nil); got.T != F32 || got.F != 7 {
		t.Errorf("f32(7) = %+v", got)
	}
	if got := Eval(&ToI32{F(3.9)}, nil); got.T != I32 || got.I != 3 {
		t.Errorf("i32(3.9) = %+v, want 3 (truncating)", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Pattern{
		Map(nil, F(0)),                                   // empty domain
		Map([]int{0}, F(0)),                              // zero extent
		Map([]int{4}, Index(1)),                          // index out of domain
		Fold([]int{4}, F(0), F(1), Sub),                  // non-associative combine
		Fold([]int{4}, I(0), F(1), Add),                  // zero/body type mismatch
		Filter([]int{4}, F(1), F(0)),                     // non-bool condition
		HashReduce([]int{4}, F(0), []Expr{F(1)}, Add, 0), // non-i32 key
		HashReduce([]int{4}, I(0), nil, Add, 0),          // no values
		HashReduce([]int{4}, I(0), []Expr{F(1)}, Div, 0), // non-associative
	}
	for i, p := range cases {
		if err := Validate(p); err == nil {
			t.Errorf("case %d (%s): expected validation error", i, p.Name())
		}
	}
}

func TestCountOps(t *testing.T) {
	// mul + add + mux = 3 FU ops; reads/consts/indices are free.
	a := NewF32("a", 8)
	e := Select(Ge2(Index(0), I(4)), Add2(Mul2(At(a, Index(0)), F(2)), F(1)), F(0))
	// ops: mux, ge, add, mul = 4
	if got := CountOps(e); got != 4 {
		t.Errorf("CountOps = %d, want 4", got)
	}
}

func TestFoldAssociativityProperty(t *testing.T) {
	// Property: for associative integer ops, sequential fold equals a
	// two-way split fold (the invariant the hardware reduction tree relies
	// on, Section 3.1).
	f := func(xs []int32) bool {
		if len(xs) < 2 {
			return true
		}
		for _, op := range []Op{Add, Min, Max} {
			seq := VI(xs[0])
			for _, x := range xs[1:] {
				seq = EvalOp(op, seq, VI(x))
			}
			mid := len(xs) / 2
			l := VI(xs[0])
			for _, x := range xs[1:mid] {
				l = EvalOp(op, l, VI(x))
			}
			r := VI(xs[mid])
			for _, x := range xs[mid+1:] {
				r = EvalOp(op, r, VI(x))
			}
			if EvalOp(op, l, r).I != seq.I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapOutputLenEqualsDomainProperty(t *testing.T) {
	// Property (Table 1): |Map output| == |domain|.
	f := func(a, b uint8) bool {
		d0, d1 := int(a%16)+1, int(b%16)+1
		out, err := Run(Map([]int{d0, d1}, Add2(Index(0), Index(1))))
		return err == nil && len(out) == d0*d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterSubsetOfMapProperty(t *testing.T) {
	// Property: |FlatMap(filter) output| <= |domain|.
	f := func(n uint8, threshold int32) bool {
		d := int(n%64) + 1
		p := Filter([]int{d}, Lt2(Index(0), I(threshold)), Index(0))
		out, err := Run(p)
		return err == nil && len(out) <= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatRoundTripsStructure(t *testing.T) {
	a := NewF32("a", 8)
	e := Add2(Mul2(At(a, Index(0)), F(2)), F(1))
	want := "add(mul(a[i0], 2), 1)"
	if got := Format(e); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

func TestFormatPattern(t *testing.T) {
	p := Fold([]int{128}, F(0), Mul2(Index(0), Index(0)), Add)
	got := FormatPattern(p)
	if got != "Fold(128) combine=add body=mul(i0, i0)" {
		t.Errorf("FormatPattern = %q", got)
	}
}

func TestCollectionBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range index")
		}
	}()
	c := NewF32("c", 2, 2)
	c.F32At(2, 0)
}

func TestCollectionLayoutRowMajor(t *testing.T) {
	c := NewF32("c", 2, 3)
	c.SetF32(42, 1, 2)
	if c.F32Data()[1*3+2] != 42 {
		t.Error("collection is not row-major")
	}
	if c.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", c.Bytes())
	}
}
