// Package pattern implements the parallel-pattern programming model of
// Section 2: Map, FlatMap, Fold and HashReduce over multi-dimensional index
// domains, with bodies expressed as typed dataflow expressions. The package
// provides construction, validation, pretty-printing and a sequential
// reference evaluator used as the golden model for the hardware simulator.
package pattern

import "fmt"

// Type is the element type of an expression. Plasticine FUs perform 32-bit
// word-level arithmetic (Section 3.1), so the model is f32/i32/bool.
type Type int

const (
	F32 Type = iota
	I32
	Bool
)

func (t Type) String() string {
	switch t {
	case F32:
		return "f32"
	case I32:
		return "i32"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Op is a functional-unit operation.
type Op int

const (
	Add Op = iota
	Sub
	Mul
	Div
	Mod
	Min
	Max
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	And
	Or
	Not
	Neg
	Abs
	Exp
	Log
	Sqrt
	Rcp // reciprocal
)

var opNames = map[Op]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Min: "min", Max: "max",
	Lt: "lt", Le: "le", Gt: "gt", Ge: "ge", Eq: "eq", Ne: "ne",
	And: "and", Or: "or", Not: "not", Neg: "neg", Abs: "abs",
	Exp: "exp", Log: "log", Sqrt: "sqrt", Rcp: "rcp",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinary reports whether the op takes two operands.
func (o Op) IsBinary() bool {
	switch o {
	case Not, Neg, Abs, Exp, Log, Sqrt, Rcp:
		return false
	}
	return true
}

// IsComparison reports whether the op produces a Bool from two numerics.
func (o Op) IsComparison() bool {
	switch o {
	case Lt, Le, Gt, Ge, Eq, Ne:
		return true
	}
	return false
}

// IsAssociative reports whether the op may be used as a Fold/HashReduce
// combine function (reduction trees require associativity, Section 2.2).
func (o Op) IsAssociative() bool {
	switch o {
	case Add, Mul, Min, Max, And, Or:
		return true
	}
	return false
}

// Expr is a node in the dataflow expression tree that forms a pattern body
// (the functions f, g, k, v, r of Table 1).
type Expr interface {
	Type() Type
	children() []Expr
}

// ConstF is a float32 literal.
type ConstF struct{ V float32 }

// ConstI is an int32 literal.
type ConstI struct{ V int32 }

// ConstB is a boolean literal.
type ConstB struct{ V bool }

// Idx references the pattern's loop index for dimension Dim (0-based,
// outermost first).
type Idx struct {
	Dim int
	T   Type // I32 unless cast
}

// Bin applies a binary op.
type Bin struct {
	Op   Op
	X, Y Expr
}

// Un applies a unary op.
type Un struct {
	Op Op
	X  Expr
}

// Mux selects T when Cond is true, otherwise F.
type Mux struct {
	Cond, T, F Expr
}

// ToF32 converts an i32 expression to f32.
type ToF32 struct{ X Expr }

// ToI32 converts an f32 expression to i32 (truncating).
type ToI32 struct{ X Expr }

// Read loads Coll[Index...]; the address expressions determine the memory
// access pattern the hardware must support (Section 2.2).
type Read struct {
	Coll  *Collection
	Index []Expr
}

func (e *ConstF) Type() Type { return F32 }
func (e *ConstI) Type() Type { return I32 }
func (e *ConstB) Type() Type { return Bool }
func (e *Idx) Type() Type    { return e.T }
func (e *ToF32) Type() Type  { return F32 }
func (e *ToI32) Type() Type  { return I32 }
func (e *Read) Type() Type   { return e.Coll.Elem }

func (e *Bin) Type() Type {
	if e.Op.IsComparison() {
		return Bool
	}
	if e.Op == And || e.Op == Or {
		return Bool
	}
	return e.X.Type()
}

func (e *Un) Type() Type {
	if e.Op == Not {
		return Bool
	}
	return e.X.Type()
}

func (e *Mux) Type() Type { return e.T.Type() }

func (e *ConstF) children() []Expr { return nil }
func (e *ConstI) children() []Expr { return nil }
func (e *ConstB) children() []Expr { return nil }
func (e *Idx) children() []Expr    { return nil }
func (e *Bin) children() []Expr    { return []Expr{e.X, e.Y} }
func (e *Un) children() []Expr     { return []Expr{e.X} }
func (e *Mux) children() []Expr    { return []Expr{e.Cond, e.T, e.F} }
func (e *ToF32) children() []Expr  { return []Expr{e.X} }
func (e *ToI32) children() []Expr  { return []Expr{e.X} }
func (e *Read) children() []Expr   { return e.Index }

// Convenience constructors.

// F returns a float32 constant.
func F(v float32) Expr { return &ConstF{v} }

// I returns an int32 constant.
func I(v int32) Expr { return &ConstI{v} }

// B returns a boolean constant.
func B(v bool) Expr { return &ConstB{v} }

// Index returns the i32 loop index of dimension dim.
func Index(dim int) Expr { return &Idx{Dim: dim, T: I32} }

// Add2 .. helpers build binary nodes.
func Add2(x, y Expr) Expr      { return &Bin{Add, x, y} }
func Sub2(x, y Expr) Expr      { return &Bin{Sub, x, y} }
func Mul2(x, y Expr) Expr      { return &Bin{Mul, x, y} }
func Div2(x, y Expr) Expr      { return &Bin{Div, x, y} }
func Min2(x, y Expr) Expr      { return &Bin{Min, x, y} }
func Max2(x, y Expr) Expr      { return &Bin{Max, x, y} }
func Lt2(x, y Expr) Expr       { return &Bin{Lt, x, y} }
func Ge2(x, y Expr) Expr       { return &Bin{Ge, x, y} }
func Select(c, t, f Expr) Expr { return &Mux{c, t, f} }

// At reads coll at the given index expressions.
func At(coll *Collection, idx ...Expr) Expr { return &Read{Coll: coll, Index: idx} }

// Walk visits e and all descendants in pre-order.
func Walk(e Expr, visit func(Expr)) {
	visit(e)
	for _, c := range e.children() {
		Walk(c, visit)
	}
}

// CountOps returns the number of FU operations (Bin/Un/Mux/convert nodes)
// in the expression; used to size pipelines.
func CountOps(e Expr) int {
	n := 0
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *Bin, *Un, *Mux, *ToF32, *ToI32:
			n++
		}
	})
	return n
}
