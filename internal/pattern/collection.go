package pattern

// Collection is a dense multi-dimensional array that patterns read from and
// write to. Collections model the data that flows between parallel patterns
// (Section 2.2); their access patterns determine on-chip banking and
// off-chip burst/gather behaviour.
type Collection struct {
	Name string
	Elem Type
	Dims []int

	f32 []float32
	i32 []int32
}

// NewF32 allocates a float32 collection with the given dimensions.
func NewF32(name string, dims ...int) *Collection {
	c := &Collection{Name: name, Elem: F32, Dims: dims}
	c.f32 = make([]float32, c.Len())
	return c
}

// NewI32 allocates an int32 collection with the given dimensions.
func NewI32(name string, dims ...int) *Collection {
	c := &Collection{Name: name, Elem: I32, Dims: dims}
	c.i32 = make([]int32, c.Len())
	return c
}

// FromF32 wraps existing float32 data as a 1-D collection.
func FromF32(name string, data []float32) *Collection {
	return &Collection{Name: name, Elem: F32, Dims: []int{len(data)}, f32: data}
}

// FromI32 wraps existing int32 data as a 1-D collection.
func FromI32(name string, data []int32) *Collection {
	return &Collection{Name: name, Elem: I32, Dims: []int{len(data)}, i32: data}
}

// Len returns the total number of elements.
func (c *Collection) Len() int {
	n := 1
	for _, d := range c.Dims {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (c *Collection) Rank() int { return len(c.Dims) }

func (c *Collection) flatten(idx []int) int {
	if len(idx) != len(c.Dims) {
		evalFail("pattern: collection %s rank %d indexed with %d indices", c.Name, len(c.Dims), len(idx))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= c.Dims[d] {
			evalFail("pattern: collection %s index %d out of range [0,%d) in dim %d", c.Name, i, c.Dims[d], d)
		}
		off = off*c.Dims[d] + i
	}
	return off
}

// F32At returns the float32 element at the given indices.
func (c *Collection) F32At(idx ...int) float32 { return c.f32[c.flatten(idx)] }

// I32At returns the int32 element at the given indices.
func (c *Collection) I32At(idx ...int) int32 { return c.i32[c.flatten(idx)] }

// SetF32 stores a float32 element at the given indices.
func (c *Collection) SetF32(v float32, idx ...int) { c.f32[c.flatten(idx)] = v }

// SetI32 stores an int32 element at the given indices.
func (c *Collection) SetI32(v int32, idx ...int) { c.i32[c.flatten(idx)] = v }

// F32Data exposes the backing float32 slice (row-major).
func (c *Collection) F32Data() []float32 { return c.f32 }

// I32Data exposes the backing int32 slice (row-major).
func (c *Collection) I32Data() []int32 { return c.i32 }

// Bytes returns the collection's size in bytes (4-byte words).
func (c *Collection) Bytes() int { return 4 * c.Len() }
