package pattern

import (
	"fmt"
	"strings"
)

// SourceID is the stable identifier of one node in a pattern's source tree:
// the pattern itself and every expression node, numbered in a deterministic
// pre-order walk. The same pattern structure always yields the same IDs, so
// provenance survives re-compilation, repair and checkpoint round trips.
type SourceID int

// NoSource marks the absence of a source node.
const NoSource SourceID = -1

// SourceNode is one entry of a SourceMap: a pattern or expression node with
// its position in the source tree.
type SourceNode struct {
	ID     SourceID
	Parent SourceID // NoSource for the pattern root
	// Kind is the node's constructor name: "Fold", "Map", "bin(mul)",
	// "read(a)", "idx(0)", ...
	Kind string
	// Role is the edge label from the parent ("F", "Zero", "Cond", "K",
	// "V[1]", argument positions "X"/"Y"/...); empty for the root.
	Role string
}

// SourceMap is the provenance index of one pattern: every node of the
// pattern's source tree with a stable ID, plus rendering helpers. It is built
// once by Describe and threaded (as origin strings) through lowering,
// compilation and simulation so profiles can name source nodes.
type SourceMap struct {
	// PatternName is the pattern kind of the root ("Map", "Fold", ...).
	PatternName string
	Nodes       []SourceNode

	ids map[Expr]SourceID
}

// Describe walks a pattern and assigns every node a stable pre-order
// SourceID: the pattern root is ID 0; body expressions follow in the fixed
// field order of the pattern kind (Zero/F for Fold, Cond/F for FlatMap,
// K/V... for HashReduce), each visited pre-order.
func Describe(p Pattern) *SourceMap {
	m := &SourceMap{PatternName: p.Name(), ids: map[Expr]SourceID{}}
	m.Nodes = append(m.Nodes, SourceNode{ID: 0, Parent: NoSource, Kind: p.Name()})
	root := SourceID(0)
	switch pat := p.(type) {
	case *MapPat:
		m.walk(pat.F, root, "F")
	case *FoldPat:
		m.walk(pat.Zero, root, "Zero")
		m.walk(pat.F, root, "F")
	case *FlatMapPat:
		m.walk(pat.Cond, root, "Cond")
		m.walk(pat.F, root, "F")
	case *HashReducePat:
		m.walk(pat.K, root, "K")
		for i, v := range pat.V {
			m.walk(v, root, fmt.Sprintf("V[%d]", i))
		}
	}
	return m
}

func (m *SourceMap) walk(e Expr, parent SourceID, role string) SourceID {
	id := SourceID(len(m.Nodes))
	m.Nodes = append(m.Nodes, SourceNode{ID: id, Parent: parent, Kind: exprKind(e), Role: role})
	m.ids[e] = id
	kids := e.children()
	for i, c := range kids {
		m.walk(c, id, childRole(e, i))
	}
	return id
}

// exprKind names an expression node the way a user would recognise it.
func exprKind(e Expr) string {
	switch n := e.(type) {
	case *ConstF:
		return fmt.Sprintf("constf(%g)", n.V)
	case *ConstI:
		return fmt.Sprintf("consti(%d)", n.V)
	case *ConstB:
		return fmt.Sprintf("constb(%v)", n.V)
	case *Idx:
		return fmt.Sprintf("idx(%d)", n.Dim)
	case *Bin:
		return fmt.Sprintf("bin(%v)", n.Op)
	case *Un:
		return fmt.Sprintf("un(%v)", n.Op)
	case *Mux:
		return "mux"
	case *ToF32:
		return "tof32"
	case *ToI32:
		return "toi32"
	case *Read:
		return fmt.Sprintf("read(%s)", n.Coll.Name)
	}
	return fmt.Sprintf("%T", e)
}

// childRole labels the i-th child edge of an expression node.
func childRole(e Expr, i int) string {
	switch e.(type) {
	case *Bin:
		return [2]string{"X", "Y"}[i]
	case *Mux:
		return [3]string{"Cond", "T", "F"}[i]
	case *Un, *ToF32, *ToI32:
		return "X"
	case *Read:
		return fmt.Sprintf("Index[%d]", i)
	}
	return fmt.Sprintf("arg[%d]", i)
}

// IDOf returns the SourceID assigned to an expression node during Describe,
// or NoSource if the node was not part of the described pattern.
func (m *SourceMap) IDOf(e Expr) SourceID {
	if id, ok := m.ids[e]; ok {
		return id
	}
	return NoSource
}

// Label renders a source node as a compact stable string: the pattern kind,
// the node ID, and the node's own kind, e.g. "Fold.n3:bin(mul)". ID 0 (the
// root) renders as just the pattern kind.
func (m *SourceMap) Label(id SourceID) string {
	if id <= 0 || int(id) >= len(m.Nodes) {
		return m.PatternName
	}
	return fmt.Sprintf("%s.n%d:%s", m.PatternName, id, m.Nodes[id].Kind)
}

// Path renders the role path from the root to a node, e.g. "Fold/F/X".
func (m *SourceMap) Path(id SourceID) string {
	if id <= 0 || int(id) >= len(m.Nodes) {
		return m.PatternName
	}
	var parts []string
	for id > 0 {
		parts = append(parts, m.Nodes[id].Role)
		id = m.Nodes[id].Parent
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return m.PatternName + "/" + strings.Join(parts, "/")
}
