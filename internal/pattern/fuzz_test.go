package pattern

import (
	"errors"
	"testing"
)

// decodeExpr turns an arbitrary byte stream into an expression tree. The
// decoder is total: any input yields some tree, so the fuzzer explores both
// well-typed and deliberately ill-typed expressions (bool into arithmetic,
// out-of-range ops, deep nesting, reads off the end of a collection).
func decodeExpr(data []byte, pos *int, depth int, coll *Collection) Expr {
	if depth <= 0 || *pos >= len(data) {
		return &ConstI{V: 1}
	}
	b := data[*pos]
	*pos++
	arg := func() Expr { return decodeExpr(data, pos, depth-1, coll) }
	switch b % 10 {
	case 0:
		return &ConstF{V: float32(int(b) - 128)}
	case 1:
		return &ConstI{V: int32(b) - 64}
	case 2:
		return &ConstB{V: b&16 != 0}
	case 3:
		return &Idx{Dim: int(b/10) % 4, T: I32}
	case 4:
		return &Un{Op: Op(int(b/10) % 24), X: arg()}
	case 5:
		return &Bin{Op: Op(int(b/10) % 24), X: arg(), Y: arg()}
	case 6:
		return &Mux{Cond: arg(), T: arg(), F: arg()}
	case 7:
		return &ToF32{X: arg()}
	case 8:
		return &ToI32{X: arg()}
	default:
		return &Read{Coll: coll, Index: []Expr{arg()}}
	}
}

// FuzzEval proves no panic escapes the evaluation error boundary: every
// input either evaluates or fails with an error wrapping ErrEval. A panic
// of any kind is reported by the fuzz engine as a crash.
func FuzzEval(f *testing.F) {
	f.Add([]byte{5, 14, 3}, 2, 3)               // bin(op1, un, idx)
	f.Add([]byte{9, 3, 13}, 0, 0)               // read at idx
	f.Add([]byte{55, 1, 1}, 1, 1)               // i32 div -> maybe by zero
	f.Add([]byte{6, 2, 0, 1}, 4, 4)             // mux(bool, f, i)
	f.Add([]byte{4, 242, 4, 112, 0}, 7, 7)      // nested unaries
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5}, 0, 1) // deep bin tree
	f.Fuzz(func(t *testing.T, data []byte, i0, i1 int) {
		coll := NewF32("c", 8)
		for i := 0; i < 8; i++ {
			coll.SetF32(float32(i), i)
		}
		pos := 0
		e := decodeExpr(data, &pos, 6, coll)
		idx := []int{((i0 % 16) + 16) % 16, ((i1 % 16) + 16) % 16}
		if _, err := EvalChecked(e, idx); err != nil && !errors.Is(err, ErrEval) {
			t.Fatalf("non-eval error escaped EvalChecked: %v", err)
		}
		// The pattern runners must hold the same boundary.
		if _, err := Run(Map([]int{3, 3}, e)); err != nil && !errors.Is(err, ErrEval) {
			// Validation errors are ordinary errors, not eval errors.
			_ = err
		}
		if _, err := Run(Fold([]int{4}, &ConstF{}, e, Add)); err != nil {
			_ = err
		}
		if _, err := RunHash(HashReduce([]int{4}, e, []Expr{e}, Add, 4)); err != nil {
			_ = err
		}
	})
}
