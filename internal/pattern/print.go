package pattern

import (
	"fmt"
	"strings"
)

// Format renders an expression as a compact prefix string, e.g.
// "add(mul(a[i0], b[i0]), 1)". Useful in compiler diagnostics and tests.
func Format(e Expr) string {
	var b strings.Builder
	format(&b, e)
	return b.String()
}

func format(b *strings.Builder, e Expr) {
	switch n := e.(type) {
	case *ConstF:
		fmt.Fprintf(b, "%g", n.V)
	case *ConstI:
		fmt.Fprintf(b, "%d", n.V)
	case *ConstB:
		fmt.Fprintf(b, "%t", n.V)
	case *Idx:
		fmt.Fprintf(b, "i%d", n.Dim)
	case *ToF32:
		b.WriteString("f32(")
		format(b, n.X)
		b.WriteString(")")
	case *ToI32:
		b.WriteString("i32(")
		format(b, n.X)
		b.WriteString(")")
	case *Un:
		fmt.Fprintf(b, "%v(", n.Op)
		format(b, n.X)
		b.WriteString(")")
	case *Bin:
		fmt.Fprintf(b, "%v(", n.Op)
		format(b, n.X)
		b.WriteString(", ")
		format(b, n.Y)
		b.WriteString(")")
	case *Mux:
		b.WriteString("mux(")
		format(b, n.Cond)
		b.WriteString(", ")
		format(b, n.T)
		b.WriteString(", ")
		format(b, n.F)
		b.WriteString(")")
	case *Read:
		b.WriteString(n.Coll.Name)
		b.WriteString("[")
		for i, ix := range n.Index {
			if i > 0 {
				b.WriteString(", ")
			}
			format(b, ix)
		}
		b.WriteString("]")
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

// FormatPattern renders a pattern header, e.g. "Fold(1024) combine=add".
func FormatPattern(p Pattern) string {
	dom := make([]string, len(p.Domain()))
	for i, d := range p.Domain() {
		dom[i] = fmt.Sprint(d)
	}
	s := fmt.Sprintf("%s(%s)", p.Name(), strings.Join(dom, ", "))
	switch pat := p.(type) {
	case *FoldPat:
		s += fmt.Sprintf(" combine=%v body=%s", pat.Combine, Format(pat.F))
	case *MapPat:
		s += " body=" + Format(pat.F)
	case *FlatMapPat:
		s += fmt.Sprintf(" cond=%s body=%s", Format(pat.Cond), Format(pat.F))
	case *HashReducePat:
		s += fmt.Sprintf(" key=%s combine=%v", Format(pat.K), pat.Combine)
	}
	return s
}
