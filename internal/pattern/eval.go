package pattern

import (
	"fmt"
	"math"
)

// Value is a scalar runtime value produced by expression evaluation.
type Value struct {
	T Type
	F float32
	I int32
	B bool
}

// VF wraps a float32 value.
func VF(v float32) Value { return Value{T: F32, F: v} }

// VI wraps an int32 value.
func VI(v int32) Value { return Value{T: I32, I: v} }

// VB wraps a bool value.
func VB(v bool) Value { return Value{T: Bool, B: v} }

// AsF64 converts numeric values to float64 for comparisons in tests.
func (v Value) AsF64() float64 {
	switch v.T {
	case F32:
		return float64(v.F)
	case I32:
		return float64(v.I)
	}
	if v.B {
		return 1
	}
	return 0
}

// Eval evaluates e with the given loop index values. It is the sequential
// golden model against which the hardware simulator is checked.
func Eval(e Expr, idx []int) Value {
	switch n := e.(type) {
	case *ConstF:
		return VF(n.V)
	case *ConstI:
		return VI(n.V)
	case *ConstB:
		return VB(n.V)
	case *Idx:
		if n.Dim >= len(idx) {
			evalFail("pattern: index dim %d evaluated with %d indices", n.Dim, len(idx))
		}
		return VI(int32(idx[n.Dim]))
	case *ToF32:
		x := Eval(n.X, idx)
		return VF(float32(x.I))
	case *ToI32:
		x := Eval(n.X, idx)
		return VI(int32(x.F))
	case *Mux:
		if Eval(n.Cond, idx).B {
			return Eval(n.T, idx)
		}
		return Eval(n.F, idx)
	case *Un:
		return evalUn(n.Op, Eval(n.X, idx))
	case *Bin:
		return EvalOp(n.Op, Eval(n.X, idx), Eval(n.Y, idx))
	case *Read:
		ii := make([]int, len(n.Index))
		for d, ie := range n.Index {
			ii[d] = int(Eval(ie, idx).I)
		}
		if n.Coll.Elem == F32 {
			return VF(n.Coll.F32At(ii...))
		}
		return VI(n.Coll.I32At(ii...))
	}
	evalFail("pattern: cannot evaluate %T", e)
	return Value{}
}

func evalUn(op Op, x Value) Value {
	switch op {
	case Not:
		return VB(!x.B)
	case Neg:
		if x.T == F32 {
			return VF(-x.F)
		}
		return VI(-x.I)
	case Abs:
		if x.T == F32 {
			return VF(float32(math.Abs(float64(x.F))))
		}
		if x.I < 0 {
			return VI(-x.I)
		}
		return x
	case Exp:
		return VF(float32(math.Exp(float64(x.F))))
	case Log:
		return VF(float32(math.Log(float64(x.F))))
	case Sqrt:
		return VF(float32(math.Sqrt(float64(x.F))))
	case Rcp:
		return VF(1 / x.F)
	}
	evalFail("pattern: bad unary op %v", op)
	return Value{}
}

// EvalOp applies a binary op to two values; exported because the simulator's
// functional units share this semantics.
func EvalOp(op Op, x, y Value) Value {
	if x.T == Bool || op == And || op == Or {
		switch op {
		case And:
			return VB(x.B && y.B)
		case Or:
			return VB(x.B || y.B)
		case Eq:
			return VB(x.B == y.B)
		case Ne:
			return VB(x.B != y.B)
		}
		evalFail("pattern: bad bool op %v", op)
	}
	if x.T == F32 {
		a, b := x.F, y.F
		switch op {
		case Add:
			return VF(a + b)
		case Sub:
			return VF(a - b)
		case Mul:
			return VF(a * b)
		case Div:
			return VF(a / b)
		case Min:
			return VF(float32(math.Min(float64(a), float64(b))))
		case Max:
			return VF(float32(math.Max(float64(a), float64(b))))
		case Lt:
			return VB(a < b)
		case Le:
			return VB(a <= b)
		case Gt:
			return VB(a > b)
		case Ge:
			return VB(a >= b)
		case Eq:
			return VB(a == b)
		case Ne:
			return VB(a != b)
		}
		evalFail("pattern: bad f32 op %v", op)
	}
	a, b := x.I, y.I
	switch op {
	case Add:
		return VI(a + b)
	case Sub:
		return VI(a - b)
	case Mul:
		return VI(a * b)
	case Div:
		if b == 0 {
			evalFail("pattern: i32 division by zero")
		}
		return VI(a / b)
	case Mod:
		if b == 0 {
			evalFail("pattern: i32 modulo by zero")
		}
		return VI(a % b)
	case Min:
		if a < b {
			return VI(a)
		}
		return VI(b)
	case Max:
		if a > b {
			return VI(a)
		}
		return VI(b)
	case Lt:
		return VB(a < b)
	case Le:
		return VB(a <= b)
	case Gt:
		return VB(a > b)
	case Ge:
		return VB(a >= b)
	case Eq:
		return VB(a == b)
	case Ne:
		return VB(a != b)
	}
	evalFail("pattern: bad i32 op %v", op)
	return Value{}
}

// domainIter calls f with every index tuple in dom, in row-major order.
func domainIter(dom []int, f func(idx []int)) {
	idx := make([]int, len(dom))
	for {
		f(idx)
		d := len(dom) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < dom[d] {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Run executes a pattern sequentially and returns its result:
//
//	Map     -> []Value in row-major domain order
//	Fold    -> []Value of length 1
//	FlatMap -> []Value of the kept elements, in domain order
//
// HashReduce returns a keyed table; use RunHash for it.
//
// Evaluation failures (out-of-range reads, bad ops) surface as errors
// wrapping ErrEval rather than panics.
func Run(p Pattern) (out []Value, err error) {
	defer recoverEval(&err)
	if err := Validate(p); err != nil {
		return nil, err
	}
	switch pat := p.(type) {
	case *MapPat:
		var out []Value
		domainIter(pat.Dom, func(idx []int) {
			out = append(out, Eval(pat.F, idx))
		})
		return out, nil
	case *FoldPat:
		acc := Eval(pat.Zero, nil)
		domainIter(pat.Dom, func(idx []int) {
			acc = EvalOp(pat.Combine, acc, Eval(pat.F, idx))
		})
		return []Value{acc}, nil
	case *FlatMapPat:
		var out []Value
		domainIter(pat.Dom, func(idx []int) {
			if Eval(pat.Cond, idx).B {
				out = append(out, Eval(pat.F, idx))
			}
		})
		return out, nil
	case *HashReducePat:
		return nil, fmt.Errorf("pattern: use RunHash for HashReduce")
	}
	return nil, fmt.Errorf("pattern: unknown pattern %T", p)
}

// RunHash executes a HashReduce and returns the accumulator table.
// Evaluation failures surface as errors wrapping ErrEval, as in Run.
func RunHash(p *HashReducePat) (acc map[int32][]Value, err error) {
	defer recoverEval(&err)
	if err := Validate(p); err != nil {
		return nil, err
	}
	acc = make(map[int32][]Value)
	domainIter(p.Dom, func(idx []int) {
		k := Eval(p.K, idx).I
		if p.DenseKeys > 0 && (k < 0 || int(k) >= p.DenseKeys) {
			evalFail("pattern: dense HashReduce key %d outside [0,%d)", k, p.DenseKeys)
		}
		vals := make([]Value, len(p.V))
		for i, ve := range p.V {
			vals[i] = Eval(ve, idx)
		}
		if cur, ok := acc[k]; ok {
			for i := range cur {
				cur[i] = EvalOp(p.Combine, cur[i], vals[i])
			}
		} else {
			acc[k] = vals
		}
	})
	return acc, nil
}
