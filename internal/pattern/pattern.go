package pattern

import "fmt"

// Pattern is one of the four parallel patterns of Table 1. Every pattern
// has an index Domain (the range of each loop dimension) and one or more
// body expressions.
type Pattern interface {
	// Domain returns the extent of each index dimension, outermost first.
	Domain() []int
	// Name identifies the pattern kind.
	Name() string
	validate() error
}

// MapPat creates one output element per index using function F
// (Table 1: Map). The output has the same shape as the domain.
type MapPat struct {
	Dom []int
	F   Expr
}

// FoldPat first maps each index through F, then reduces with the
// associative Combine op starting from Zero (Table 1: Fold).
type FoldPat struct {
	Dom     []int
	Zero    Expr
	F       Expr
	Combine Op
}

// FlatMapPat produces zero or one element per index: when Cond holds, F's
// value is appended to the flat output (Table 1: FlatMap, restricted to the
// filter special case used throughout the paper, e.g. TPC-H Q6).
type FlatMapPat struct {
	Dom  []int
	Cond Expr
	F    Expr
}

// HashReducePat generates a key with K and a tuple of values with V for
// every index; values with equal keys are combined element-wise with the
// associative Combine op (Table 1: HashReduce).
type HashReducePat struct {
	Dom     []int
	K       Expr // i32 key
	V       []Expr
	Combine Op
	// DenseKeys, when positive, declares the key space [0, DenseKeys) so
	// accumulators can be statically allocated (dense HashReduce).
	DenseKeys int
}

func (p *MapPat) Domain() []int        { return p.Dom }
func (p *FoldPat) Domain() []int       { return p.Dom }
func (p *FlatMapPat) Domain() []int    { return p.Dom }
func (p *HashReducePat) Domain() []int { return p.Dom }

func (p *MapPat) Name() string        { return "Map" }
func (p *FoldPat) Name() string       { return "Fold" }
func (p *FlatMapPat) Name() string    { return "FlatMap" }
func (p *HashReducePat) Name() string { return "HashReduce" }

// Map builds a MapPat.
func Map(dom []int, f Expr) *MapPat { return &MapPat{Dom: dom, F: f} }

// Fold builds a FoldPat.
func Fold(dom []int, zero Expr, f Expr, combine Op) *FoldPat {
	return &FoldPat{Dom: dom, Zero: zero, F: f, Combine: combine}
}

// Filter builds the filtering FlatMapPat.
func Filter(dom []int, cond, f Expr) *FlatMapPat {
	return &FlatMapPat{Dom: dom, Cond: cond, F: f}
}

// HashReduce builds a HashReducePat.
func HashReduce(dom []int, k Expr, v []Expr, combine Op, denseKeys int) *HashReducePat {
	return &HashReducePat{Dom: dom, K: k, V: v, Combine: combine, DenseKeys: denseKeys}
}

func validDomain(dom []int) error {
	if len(dom) == 0 {
		return fmt.Errorf("pattern: empty index domain")
	}
	for d, n := range dom {
		if n <= 0 {
			return fmt.Errorf("pattern: domain dim %d has extent %d, must be positive", d, n)
		}
	}
	return nil
}

func maxIdxDim(e Expr) int {
	max := -1
	Walk(e, func(x Expr) {
		if ix, ok := x.(*Idx); ok && ix.Dim > max {
			max = ix.Dim
		}
	})
	return max
}

func (p *MapPat) validate() error {
	if err := validDomain(p.Dom); err != nil {
		return err
	}
	if d := maxIdxDim(p.F); d >= len(p.Dom) {
		return fmt.Errorf("pattern: Map body uses index dim %d, domain has %d dims", d, len(p.Dom))
	}
	return nil
}

func (p *FoldPat) validate() error {
	if err := validDomain(p.Dom); err != nil {
		return err
	}
	if !p.Combine.IsAssociative() {
		return fmt.Errorf("pattern: Fold combine op %v is not associative", p.Combine)
	}
	if p.Zero.Type() != p.F.Type() {
		return fmt.Errorf("pattern: Fold zero type %v != body type %v", p.Zero.Type(), p.F.Type())
	}
	if d := maxIdxDim(p.F); d >= len(p.Dom) {
		return fmt.Errorf("pattern: Fold body uses index dim %d, domain has %d dims", d, len(p.Dom))
	}
	return nil
}

func (p *FlatMapPat) validate() error {
	if err := validDomain(p.Dom); err != nil {
		return err
	}
	if p.Cond.Type() != Bool {
		return fmt.Errorf("pattern: FlatMap condition has type %v, want bool", p.Cond.Type())
	}
	return nil
}

func (p *HashReducePat) validate() error {
	if err := validDomain(p.Dom); err != nil {
		return err
	}
	if p.K.Type() != I32 {
		return fmt.Errorf("pattern: HashReduce key has type %v, want i32", p.K.Type())
	}
	if len(p.V) == 0 {
		return fmt.Errorf("pattern: HashReduce needs at least one value function")
	}
	if !p.Combine.IsAssociative() {
		return fmt.Errorf("pattern: HashReduce combine op %v is not associative", p.Combine)
	}
	return nil
}

// Validate checks a pattern for structural errors.
func Validate(p Pattern) error { return p.validate() }
