package pattern

import (
	"errors"
	"fmt"
)

// ErrEval is wrapped by every evaluation failure (bad index arity,
// out-of-range collection access, unknown op). Callers distinguish
// evaluation errors from validation errors with errors.Is(err, ErrEval).
var ErrEval = errors.New("pattern: evaluation error")

// EvalError carries the detail of one evaluation failure.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return e.Msg }
func (e *EvalError) Unwrap() error { return ErrEval }

// evalFail aborts evaluation with a typed panic. The exported entry points
// (Run, RunHash, EvalChecked) and dhdl.Trace recover it into an error;
// anything else reaching Eval with malformed input is a programming error
// at that call site, so internal callers keep the panic.
func evalFail(format string, args ...any) {
	panic(&EvalError{Msg: fmt.Sprintf(format, args...)})
}

// recoverEval converts a typed evaluation panic into *err. Foreign panics
// (nil-pointer bugs and the like) propagate unchanged.
func recoverEval(err *error) {
	if r := recover(); r != nil {
		if ee, ok := r.(*EvalError); ok {
			*err = ee
			return
		}
		panic(r)
	}
}

// EvalChecked is Eval with an error return instead of a panic, for callers
// evaluating untrusted or generated expressions.
func EvalChecked(e Expr, idx []int) (v Value, err error) {
	defer recoverEval(&err)
	return Eval(e, idx), nil
}

// EvalOpChecked is EvalOp with an error return instead of a panic.
func EvalOpChecked(op Op, x, y Value) (v Value, err error) {
	defer recoverEval(&err)
	return EvalOp(op, x, y), nil
}
