package dhdl

import (
	"fmt"

	"plasticine/internal/pattern"
)

// Kind classifies a controller node (Section 3.5, Figure 6).
type Kind int

const (
	// Sequential executes its counter chain one child-set at a time; only
	// one data-dependent child is active at once (loop-carried deps).
	Sequential Kind = iota
	// Pipeline executes children in a coarse-grained pipelined fashion;
	// intermediate memories are M-buffered.
	Pipeline
	// Stream executes children as a fine-grained pipeline communicating
	// through FIFOs.
	Stream
	// Parallel executes independent children concurrently (an unrolled
	// outer pattern).
	Parallel
	// ComputeKind is an inner controller: a counter chain plus a dataflow
	// body, mapped to one or more PCUs.
	ComputeKind
	// LoadKind is a dense DRAM-to-SRAM tile transfer (AG burst reads).
	LoadKind
	// StoreKind is a dense SRAM-to-DRAM tile transfer (AG burst writes).
	StoreKind
	// GatherKind is a sparse DRAM read: addresses stream from on-chip
	// memory, the coalescing unit gathers data.
	GatherKind
	// ScatterKind is a sparse DRAM write.
	ScatterKind
)

func (k Kind) String() string {
	switch k {
	case Sequential:
		return "Sequential"
	case Pipeline:
		return "Pipeline"
	case Stream:
		return "Stream"
	case Parallel:
		return "Parallel"
	case ComputeKind:
		return "Compute"
	case LoadKind:
		return "Load"
	case StoreKind:
		return "Store"
	case GatherKind:
		return "Gather"
	case ScatterKind:
		return "Scatter"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsOuter reports whether the kind only sequences other controllers.
func (k Kind) IsOuter() bool {
	switch k {
	case Sequential, Pipeline, Stream, Parallel:
		return true
	}
	return false
}

// IsTransfer reports whether the kind moves data between DRAM and the chip.
func (k Kind) IsTransfer() bool {
	switch k {
	case LoadKind, StoreKind, GatherKind, ScatterKind:
		return true
	}
	return false
}

// Counter is one level of a reconfigurable counter chain: it iterates
// from Min to Max (exclusive) in steps of Step. Par is the parallelization
// factor: Par consecutive iterations execute together (SIMD lanes for inner
// counters, unrolling for outer counters).
type Counter struct {
	Min    int
	Max    int  // static trip limit; ignored if MaxReg != nil
	MaxReg *Reg // dynamic trip limit read when the loop starts
	Step   int
	Par    int
}

// Trips returns the static iteration count (ceil((Max-Min)/Step)).
// For dynamic counters it returns -1.
func (c Counter) Trips() int {
	if c.MaxReg != nil {
		return -1
	}
	if c.Step <= 0 {
		return 0
	}
	n := c.Max - c.Min
	if n <= 0 {
		return 0
	}
	return (n + c.Step - 1) / c.Step
}

// AssignKind says where a Compute body's value goes.
type AssignKind int

const (
	// WriteSRAM stores Val at Addr in SRAM every iteration.
	WriteSRAM AssignKind = iota
	// WriteReg stores Val into Reg (last value wins).
	WriteReg
	// ReduceReg folds Val into Reg with Combine across the whole counter
	// domain (cross-lane reduction tree + accumulator).
	ReduceReg
	// ReduceSRAM read-modify-writes SRAM[Addr] with Combine (dense
	// HashReduce accumulators, histogram bins).
	ReduceSRAM
	// PushFIFO appends Val to FIFO (when Cond holds, if set) — FlatMap
	// coalescing hardware.
	PushFIFO
)

func (k AssignKind) String() string {
	switch k {
	case WriteSRAM:
		return "writeSRAM"
	case WriteReg:
		return "writeReg"
	case ReduceReg:
		return "reduceReg"
	case ReduceSRAM:
		return "reduceSRAM"
	case PushFIFO:
		return "pushFIFO"
	}
	return fmt.Sprintf("assign(%d)", int(k))
}

// Assign is one output of a Compute body.
type Assign struct {
	Kind    AssignKind
	SRAM    *SRAM
	Reg     *Reg
	FIFO    *FIFOMem
	Addr    Expr // address for SRAM destinations
	Cond    Expr // optional predicate; nil = always
	Val     Expr
	Combine pattern.Op // for Reduce* kinds
}

// Transfer describes a DRAM<->SRAM/FIFO movement (Load/Store/Gather/Scatter
// leaves).
type Transfer struct {
	DRAM *DRAMBuf

	// Dense transfers: a contiguous region of Len words starting at DRAM
	// word offset Off (an expression over enclosing counters).
	Off Expr
	Len int

	// On-chip endpoint: exactly one of SRAM or FIFO.
	SRAM *SRAM
	FIFO *FIFOMem
	// SRAMOff is the starting word in the SRAM (defaults to 0).
	SRAMOff Expr

	// Sparse transfers: AddrMem streams element indices into DRAM; Count
	// addresses are processed (CountReg if dynamic). For Gather, data
	// lands in SRAM/FIFO in stream order; for Scatter, DataMem streams the
	// values to write.
	AddrMem  *SRAM
	AddrFIFO *FIFOMem
	DataMem  *SRAM
	DataFIFO *FIFOMem
	Count    int
	CountReg *Reg
}

// Controller is a node of the DHDL program tree.
type Controller struct {
	Name string
	// Origin names the source-level construct this controller implements —
	// typically a pattern.SourceMap label like "Fold.n3:bin(mul)" or a
	// loop-nest path like "Fold/body". It survives compilation (virtual
	// units, partitioning, placement, Repair) so profiles can attribute
	// cycles back to source. Empty means "no richer source than Name";
	// consumers fall back via Provenance.
	Origin string
	Kind   Kind
	Chain  []Counter // loop counters this controller owns (may be empty)

	Children []*Controller // for outer kinds

	Body []*Assign // for ComputeKind
	Xfer *Transfer // for transfer kinds

	// Depth is the counter level of this controller's first counter
	// (set by Finalize; Ctr expressions use these global levels).
	Depth int
}

// Provenance is the controller's source attribution: Origin when set, the
// controller name otherwise — so hand-written DHDL (no pattern front end)
// still yields a complete provenance chain.
func (c *Controller) Provenance() string {
	if c.Origin != "" {
		return c.Origin
	}
	return c.Name
}

// Program is a complete DHDL application.
type Program struct {
	Name  string
	Root  *Controller
	DRAMs []*DRAMBuf
	SRAMs []*SRAM
	Regs  []*Reg
	FIFOs []*FIFOMem
}

// Walk visits every controller pre-order.
func (p *Program) Walk(visit func(c *Controller)) {
	var rec func(c *Controller)
	rec = func(c *Controller) {
		visit(c)
		for _, ch := range c.Children {
			rec(ch)
		}
	}
	if p.Root != nil {
		rec(p.Root)
	}
}

// Leaves returns all leaf (work-performing) controllers in program order.
func (p *Program) Leaves() []*Controller {
	var out []*Controller
	p.Walk(func(c *Controller) {
		if !c.Kind.IsOuter() {
			out = append(out, c)
		}
	})
	return out
}

// Finalize assigns counter depths and validates the tree.
func (p *Program) Finalize() error {
	var rec func(c *Controller, depth int) error
	rec = func(c *Controller, depth int) error {
		c.Depth = depth
		next := depth + len(c.Chain)
		if c.Kind.IsOuter() {
			if len(c.Children) == 0 {
				return fmt.Errorf("dhdl: outer controller %q has no children", c.Name)
			}
			if c.Body != nil || c.Xfer != nil {
				return fmt.Errorf("dhdl: outer controller %q must not carry a body or transfer", c.Name)
			}
			for _, ch := range c.Children {
				if err := rec(ch, next); err != nil {
					return err
				}
			}
			return nil
		}
		if len(c.Children) != 0 {
			return fmt.Errorf("dhdl: leaf controller %q has children", c.Name)
		}
		switch c.Kind {
		case ComputeKind:
			if len(c.Body) == 0 {
				return fmt.Errorf("dhdl: compute %q has no outputs", c.Name)
			}
			for _, a := range c.Body {
				if err := validateAssign(c, a, next); err != nil {
					return err
				}
			}
		case LoadKind, StoreKind, GatherKind, ScatterKind:
			if c.Xfer == nil {
				return fmt.Errorf("dhdl: transfer %q has no transfer description", c.Name)
			}
			if err := validateTransfer(c, next); err != nil {
				return err
			}
		}
		return nil
	}
	if p.Root == nil {
		return fmt.Errorf("dhdl: program %q has no root", p.Name)
	}
	for _, ctr := range allCounters(p.Root) {
		if ctr.Step == 0 || ctr.Par < 1 {
			return fmt.Errorf("dhdl: program %q has counter with step %d, par %d", p.Name, ctr.Step, ctr.Par)
		}
	}
	return rec(p.Root, 0)
}

func allCounters(c *Controller) []Counter {
	out := append([]Counter{}, c.Chain...)
	for _, ch := range c.Children {
		out = append(out, allCounters(ch)...)
	}
	return out
}

func validateAssign(c *Controller, a *Assign, maxLevel int) error {
	exprs := []Expr{a.Val}
	if a.Addr != nil {
		exprs = append(exprs, a.Addr)
	}
	if a.Cond != nil {
		exprs = append(exprs, a.Cond)
		if a.Cond.Type() != pattern.Bool {
			return fmt.Errorf("dhdl: %s: condition must be bool", c.Name)
		}
	}
	for _, e := range exprs {
		if l := MaxCtrLevel(e); l >= maxLevel {
			return fmt.Errorf("dhdl: %s: expression uses counter level %d, only %d levels in scope", c.Name, l, maxLevel)
		}
	}
	switch a.Kind {
	case WriteSRAM:
		if a.SRAM == nil || a.Addr == nil {
			return fmt.Errorf("dhdl: %s: WriteSRAM needs SRAM and Addr", c.Name)
		}
	case WriteReg:
		if a.Reg == nil {
			return fmt.Errorf("dhdl: %s: WriteReg needs Reg", c.Name)
		}
	case ReduceReg:
		if a.Reg == nil || !a.Combine.IsAssociative() {
			return fmt.Errorf("dhdl: %s: ReduceReg needs Reg and associative combine", c.Name)
		}
	case ReduceSRAM:
		if a.SRAM == nil || a.Addr == nil || !a.Combine.IsAssociative() {
			return fmt.Errorf("dhdl: %s: ReduceSRAM needs SRAM, Addr and associative combine", c.Name)
		}
	case PushFIFO:
		if a.FIFO == nil {
			return fmt.Errorf("dhdl: %s: PushFIFO needs FIFO", c.Name)
		}
	default:
		return fmt.Errorf("dhdl: %s: unknown assign kind %d", c.Name, a.Kind)
	}
	return nil
}

func validateTransfer(c *Controller, maxLevel int) error {
	x := c.Xfer
	if x.DRAM == nil {
		return fmt.Errorf("dhdl: %s: transfer has no DRAM buffer", c.Name)
	}
	if x.Off != nil {
		if l := MaxCtrLevel(x.Off); l >= maxLevel {
			return fmt.Errorf("dhdl: %s: offset uses counter level %d, only %d in scope", c.Name, l, maxLevel)
		}
	}
	dense := c.Kind == LoadKind || c.Kind == StoreKind
	if dense {
		if x.Len <= 0 {
			return fmt.Errorf("dhdl: %s: dense transfer needs positive Len", c.Name)
		}
		if (x.SRAM == nil) == (x.FIFO == nil) {
			return fmt.Errorf("dhdl: %s: dense transfer needs exactly one of SRAM or FIFO", c.Name)
		}
		if x.SRAM != nil && x.Len > x.SRAM.Size {
			return fmt.Errorf("dhdl: %s: transfer of %d words exceeds SRAM %s size %d", c.Name, x.Len, x.SRAM.Name, x.SRAM.Size)
		}
		return nil
	}
	// Sparse.
	if x.AddrMem == nil && x.AddrFIFO == nil {
		return fmt.Errorf("dhdl: %s: sparse transfer needs an address stream", c.Name)
	}
	if x.Count <= 0 && x.CountReg == nil {
		return fmt.Errorf("dhdl: %s: sparse transfer needs Count or CountReg", c.Name)
	}
	if c.Kind == GatherKind && x.SRAM == nil && x.FIFO == nil {
		return fmt.Errorf("dhdl: %s: gather needs a destination", c.Name)
	}
	if c.Kind == ScatterKind && x.DataMem == nil && x.DataFIFO == nil {
		return fmt.Errorf("dhdl: %s: scatter needs a data stream", c.Name)
	}
	return nil
}
