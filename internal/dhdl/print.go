package dhdl

import (
	"fmt"
	"strings"
)

// FormatExpr renders an expression as a compact prefix string, used in
// diagnostics and as a structural-identity key by the compiler.
func FormatExpr(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e)
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch n := e.(type) {
	case *Lit:
		fmt.Fprintf(b, "%v", n.V.AsF64())
	case *Ctr:
		fmt.Fprintf(b, "i%d", n.Level)
	case *RegRd:
		b.WriteString(n.Reg.Name)
	case *FIFORd:
		fmt.Fprintf(b, "pop(%s)", n.Mem.Name)
	case *SRAMRd:
		b.WriteString(n.Mem.Name)
		b.WriteString("[")
		formatExpr(b, n.Addr)
		b.WriteString("]")
	case *ToF32:
		b.WriteString("f32(")
		formatExpr(b, n.X)
		b.WriteString(")")
	case *ToI32:
		b.WriteString("i32(")
		formatExpr(b, n.X)
		b.WriteString(")")
	case *Un:
		fmt.Fprintf(b, "%v(", n.Op)
		formatExpr(b, n.X)
		b.WriteString(")")
	case *Bin:
		fmt.Fprintf(b, "%v(", n.Op)
		formatExpr(b, n.X)
		b.WriteString(", ")
		formatExpr(b, n.Y)
		b.WriteString(")")
	case *Mux:
		b.WriteString("mux(")
		formatExpr(b, n.Cond)
		b.WriteString(", ")
		formatExpr(b, n.T)
		b.WriteString(", ")
		formatExpr(b, n.F)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

// Tree renders the controller hierarchy, one line per controller.
func (p *Program) Tree() string {
	var b strings.Builder
	var rec func(c *Controller, indent string)
	rec = func(c *Controller, indent string) {
		fmt.Fprintf(&b, "%s%s %s", indent, c.Kind, c.Name)
		if len(c.Chain) > 0 {
			b.WriteString(" [")
			for i, ctr := range c.Chain {
				if i > 0 {
					b.WriteString(", ")
				}
				if ctr.MaxReg != nil {
					fmt.Fprintf(&b, "0..%s", ctr.MaxReg.Name)
				} else {
					fmt.Fprintf(&b, "%d..%d", ctr.Min, ctr.Max)
				}
				if ctr.Step != 1 {
					fmt.Fprintf(&b, " step %d", ctr.Step)
				}
				if ctr.Par != 1 {
					fmt.Fprintf(&b, " par %d", ctr.Par)
				}
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
		for _, ch := range c.Children {
			rec(ch, indent+"  ")
		}
	}
	if p.Root != nil {
		rec(p.Root, "")
	}
	return b.String()
}
