package dhdl

import (
	"math"
	"testing"

	"plasticine/internal/pattern"
)

// buildDot builds a tiled dot product: for each tile, load a and b tiles,
// fold their products into a scalar, accumulate tile results in a register.
func buildDot(n, tile int) (*Program, *DRAMBuf, *DRAMBuf, *Reg) {
	b := NewBuilder("dot", Sequential)
	a := b.DRAMF32("a", n)
	bb := b.DRAMF32("b", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	tb := b.SRAM("tb", pattern.F32, tile)
	partial := b.Reg("partial", pattern.VF(0))
	total := b.Reg("total", pattern.VF(0))

	b.Pipe("tiles", []Counter{CStep(0, n, tile)}, func(ix []Expr) {
		b.Load("loadA", a, ix[0], ta, tile)
		b.Load("loadB", bb, ix[0], tb, tile)
		b.Compute("mac", []Counter{CPar(tile, 16)}, func(jx []Expr) []*Assign {
			return []*Assign{Accum(partial, pattern.Add, Mul(Ld(ta, jx[0]), Ld(tb, jx[0])))}
		})
		// Cross-tile accumulation: read-modify-write of a register.
		// (ReduceReg resets per leaf execution; it implements Fold within
		// one leaf, not accumulation across leaf executions.)
		b.Compute("acc", []Counter{C(1)}, func([]Expr) []*Assign {
			return []*Assign{SetReg(total, Add(Rd(total), Rd(partial)))}
		})
	})
	return b.MustBuild(), a, bb, total
}

func TestInterpTiledDotProduct(t *testing.T) {
	n, tile := 256, 64
	p, a, bb, total := buildDot(n, tile)
	av := make([]float32, n)
	bv := make([]float32, n)
	var want float64
	for i := range av {
		av[i] = float32(i%13) * 0.5
		bv[i] = float32(i%7) - 3
		want += float64(av[i]) * float64(bv[i])
	}
	if err := a.Bind(pattern.FromF32("a", av)); err != nil {
		t.Fatal(err)
	}
	if err := bb.Bind(pattern.FromF32("b", bv)); err != nil {
		t.Fatal(err)
	}
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(st.RegValue(total).F)
	if math.Abs(got-want) > 1e-2*math.Abs(want)+1e-3 {
		t.Fatalf("dot = %g, want %g", got, want)
	}
}

func TestInterpVectorAddStore(t *testing.T) {
	n, tile := 128, 32
	b := NewBuilder("vadd", Sequential)
	a := b.DRAMF32("a", n)
	bb := b.DRAMF32("b", n)
	c := b.DRAMF32("c", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	tb := b.SRAM("tb", pattern.F32, tile)
	tc := b.SRAM("tc", pattern.F32, tile)
	b.Pipe("tiles", []Counter{CStep(0, n, tile)}, func(ix []Expr) {
		b.Load("la", a, ix[0], ta, tile)
		b.Load("lb", bb, ix[0], tb, tile)
		b.Compute("add", []Counter{CPar(tile, 16)}, func(jx []Expr) []*Assign {
			return []*Assign{StoreAt(tc, jx[0], Add(Ld(ta, jx[0]), Ld(tb, jx[0])))}
		})
		b.Store("sc", c, ix[0], tc, tile)
	})
	p := b.MustBuild()

	av, bv, cv := make([]float32, n), make([]float32, n), make([]float32, n)
	for i := range av {
		av[i], bv[i] = float32(i), float32(3*i)
	}
	mustBind(t, a, pattern.FromF32("a", av))
	mustBind(t, bb, pattern.FromF32("b", bv))
	mustBind(t, c, pattern.FromF32("c", cv))
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	for i := range cv {
		if cv[i] != float32(4*i) {
			t.Fatalf("c[%d] = %g, want %g", i, cv[i], float32(4*i))
		}
	}
}

func mustBind(t *testing.T, d *DRAMBuf, c *pattern.Collection) {
	t.Helper()
	if err := d.Bind(c); err != nil {
		t.Fatal(err)
	}
}

func TestInterpFilterWithDynamicStore(t *testing.T) {
	// TPC-H Q6 shape: stream, filter into FIFO, count, store count values.
	n := 96
	b := NewBuilder("filter", Sequential)
	in := b.DRAMI32("in", n)
	out := b.DRAMI32("out", n)
	cnt := b.Reg("cnt", pattern.VI(0))
	fifo := b.FIFO("kept", pattern.I32, n)
	tin := b.SRAM("tin", pattern.I32, n)
	b.Seq("body", nil, func([]Expr) {
		b.Load("ld", in, CI(0), tin, n)
		b.Compute("flt", []Counter{CPar(n, 16)}, func(ix []Expr) []*Assign {
			v := Ld(tin, ix[0])
			keep := Lt(v, CI(10))
			return []*Assign{
				PushIf(fifo, keep, v),
				AccumIf(cnt, pattern.Add, keep, CI(1)),
			}
		})
		b.StoreFIFO("st", out, CI(0), fifo, cnt)
	})
	p := b.MustBuild()

	iv := make([]int32, n)
	var want []int32
	for i := range iv {
		iv[i] = int32((i * 11) % 25)
		if iv[i] < 10 {
			want = append(want, iv[i])
		}
	}
	ov := make([]int32, n)
	mustBind(t, in, pattern.FromI32("in", iv))
	mustBind(t, out, pattern.FromI32("out", ov))
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(cnt).I; got != int32(len(want)) {
		t.Fatalf("count = %d, want %d", got, len(want))
	}
	for i, w := range want {
		if ov[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, ov[i], w)
		}
	}
}

func TestInterpGatherScatter(t *testing.T) {
	n := 64
	b := NewBuilder("gs", Sequential)
	table := b.DRAMF32("table", n)
	dst := b.DRAMF32("dst", n)
	idxBuf := b.DRAMI32("idx", 8)
	addrs := b.SRAM("addrs", pattern.I32, 8)
	vals := b.SRAMBanked("vals", pattern.F32, 8, Duplication)
	scaled := b.SRAM("scaled", pattern.F32, 8)
	b.Seq("body", nil, func([]Expr) {
		b.Load("li", idxBuf, CI(0), addrs, 8)
		b.Gather("g", table, addrs, vals, 8, nil)
		b.Compute("scale", []Counter{C(8)}, func(ix []Expr) []*Assign {
			return []*Assign{StoreAt(scaled, ix[0], Mul(Ld(vals, ix[0]), CF(2)))}
		})
		b.Scatter("s", dst, addrs, scaled, 8, nil)
	})
	p := b.MustBuild()

	tv := make([]float32, n)
	for i := range tv {
		tv[i] = float32(i) + 0.5
	}
	ix := []int32{3, 60, 7, 31, 0, 12, 55, 9}
	dv := make([]float32, n)
	mustBind(t, table, pattern.FromF32("t", tv))
	mustBind(t, dst, pattern.FromF32("d", dv))
	mustBind(t, idxBuf, pattern.FromI32("i", ix))
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	for _, i := range ix {
		if dv[i] != 2*tv[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dv[i], 2*tv[i])
		}
	}
}

func TestInterpHistogramReduceSRAM(t *testing.T) {
	n, bins := 200, 8
	b := NewBuilder("hist", Sequential)
	data := b.DRAMI32("data", n)
	td := b.SRAM("td", pattern.I32, n)
	hist := b.SRAM("hist", pattern.I32, bins)
	b.Seq("body", nil, func([]Expr) {
		b.Load("ld", data, CI(0), td, n)
		b.Compute("bin", []Counter{C(n)}, func(ix []Expr) []*Assign {
			return []*Assign{AccumAt(hist, pattern.Add, Mod(Ld(td, ix[0]), CI(int32(bins))), CI(1))}
		})
	})
	p := b.MustBuild()
	dv := make([]int32, n)
	want := make([]int32, bins)
	for i := range dv {
		dv[i] = int32(i * 7)
		want[dv[i]%int32(bins)]++
	}
	mustBind(t, data, pattern.FromI32("d", dv))
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := st.SRAMData(hist)
	for k := 0; k < bins; k++ {
		if got[k].I != want[k] {
			t.Errorf("hist[%d] = %d, want %d", k, got[k].I, want[k])
		}
	}
}

func TestInterpDynamicCounter(t *testing.T) {
	// A register-limited loop (BFS frontier shape): compute writes a count,
	// a later loop iterates [0, count).
	b := NewBuilder("dyn", Sequential)
	lim := b.Reg("lim", pattern.VI(0))
	sum := b.Reg("sum", pattern.VI(0))
	b.Seq("body", nil, func([]Expr) {
		b.Compute("setLim", []Counter{C(1)}, func([]Expr) []*Assign {
			return []*Assign{SetReg(lim, CI(5))}
		})
		b.Compute("loop", []Counter{CDyn(lim)}, func(ix []Expr) []*Assign {
			return []*Assign{Accum(sum, pattern.Add, ix[0])}
		})
	})
	p := b.MustBuild()
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(sum).I; got != 10 { // 0+1+2+3+4
		t.Fatalf("sum = %d, want 10", got)
	}
}

func TestInterpLineBufferStencil(t *testing.T) {
	// 1-D 3-tap stencil over a tile: out[i] = in[i-1]+in[i]+in[i+1].
	n := 32
	b := NewBuilder("stencil", Sequential)
	in := b.DRAMF32("in", n)
	out := b.DRAMF32("out", n)
	tin := b.SRAMBanked("tin", pattern.F32, n, LineBuffer)
	tout := b.SRAM("tout", pattern.F32, n)
	b.Seq("body", nil, func([]Expr) {
		b.Load("ld", in, CI(0), tin, n)
		b.Compute("sten", []Counter{CStep(1, n-1, 1)}, func(ix []Expr) []*Assign {
			i := ix[0]
			v := Add(Add(Ld(tin, Sub(i, CI(1))), Ld(tin, i)), Ld(tin, Add(i, CI(1))))
			return []*Assign{StoreAt(tout, i, v)}
		})
		b.Store("st", out, CI(0), tout, n)
	})
	p := b.MustBuild()
	iv := make([]float32, n)
	for i := range iv {
		iv[i] = float32(i * i % 17)
	}
	ov := make([]float32, n)
	mustBind(t, in, pattern.FromF32("in", iv))
	mustBind(t, out, pattern.FromF32("out", ov))
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n-1; i++ {
		want := iv[i-1] + iv[i] + iv[i+1]
		if ov[i] != want {
			t.Errorf("out[%d] = %g, want %g", i, ov[i], want)
		}
	}
}

func TestCounterTrips(t *testing.T) {
	cases := []struct {
		c    Counter
		want int
	}{
		{C(10), 10},
		{CStep(0, 10, 3), 4},
		{CStep(5, 5, 1), 0},
		{CPar(16, 4), 16},
		{CDyn(&Reg{}), -1},
	}
	for i, c := range cases {
		if got := c.c.Trips(); got != c.want {
			t.Errorf("case %d: Trips = %d, want %d", i, got, c.want)
		}
	}
}

func TestFinalizeRejectsMalformed(t *testing.T) {
	r := &Reg{Name: "r", Elem: pattern.I32, Init: pattern.VI(0)}
	s := &SRAM{Name: "s", Elem: pattern.F32, Size: 4, NBuf: 1}
	cases := []*Program{
		{Name: "noroot"},
		{Name: "emptyOuter", Root: &Controller{Kind: Sequential}},
		{Name: "leafWithKids", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: ComputeKind, Body: []*Assign{SetReg(r, CI(0))},
				Children: []*Controller{{Kind: ComputeKind}}},
		}}},
		{Name: "emptyCompute", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: ComputeKind},
		}}},
		{Name: "outOfScopeCtr", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: ComputeKind, Chain: []Counter{C(4)}, Body: []*Assign{SetReg(r, Idx(3))}},
		}}},
		{Name: "badAssign", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: ComputeKind, Chain: []Counter{C(4)}, Body: []*Assign{{Kind: WriteSRAM, Val: CI(0)}}}, // no SRAM
		}}},
		{Name: "badReduce", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: ComputeKind, Chain: []Counter{C(4)},
				Body: []*Assign{{Kind: ReduceReg, Reg: r, Val: CI(0), Combine: pattern.Sub}}},
		}}},
		{Name: "xferNoDRAM", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: LoadKind, Xfer: &Transfer{SRAM: s, Len: 4}},
		}}},
		{Name: "xferTooBig", Root: &Controller{Kind: Sequential, Children: []*Controller{
			{Kind: LoadKind, Xfer: &Transfer{DRAM: &DRAMBuf{Name: "d", Dims: []int{64}}, SRAM: s, Len: 16}},
		}}},
	}
	for _, p := range cases {
		if err := p.Finalize(); err == nil {
			t.Errorf("%s: expected Finalize error", p.Name)
		}
	}
}

func TestBuilderRejectsNestingUnderLeaf(t *testing.T) {
	b := NewBuilder("bad", Sequential)
	r := b.Reg("r", pattern.VI(0))
	b.Compute("leaf", nil, func([]Expr) []*Assign { return []*Assign{SetReg(r, CI(1))} })
	// Builder.add guards nesting under leaves via the stack, so this is
	// detected at Build time through tree validation instead: a leaf is
	// never pushed on the stack, so this nests under root — fine. Verify
	// unbalanced detection instead by corrupting the stack depth.
	b.stack = append(b.stack, &Controller{Kind: Sequential})
	if _, err := b.Build(); err == nil {
		t.Error("expected unbalanced-nesting error")
	}
}

func TestInterpReportsUnboundDRAM(t *testing.T) {
	b := NewBuilder("unbound", Sequential)
	d := b.DRAMF32("d", 16)
	s := b.SRAM("s", pattern.F32, 16)
	b.Seq("x", nil, func([]Expr) { b.Load("ld", d, CI(0), s, 16) })
	p := b.MustBuild()
	if _, err := Run(p); err == nil {
		t.Error("expected unbound-DRAM error")
	}
}

func TestInterpOutOfBoundsAddressError(t *testing.T) {
	b := NewBuilder("oob", Sequential)
	s := b.SRAM("s", pattern.F32, 4)
	b.Compute("w", []Counter{C(8)}, func(ix []Expr) []*Assign {
		return []*Assign{StoreAt(s, ix[0], CF(1))}
	})
	p := b.MustBuild()
	if _, err := Run(p); err == nil {
		t.Error("expected out-of-range address error")
	}
}

func TestExprHelpers(t *testing.T) {
	s := &SRAM{Name: "s", Elem: pattern.F32, Size: 8}
	f := &FIFOMem{Name: "f", Elem: pattern.F32, Depth: 4}
	r := &Reg{Name: "r", Elem: pattern.F32}
	e := Sel(Lt(Idx(0), CI(4)), Add(Ld(s, Idx(0)), Pop(f)), Rd(r))
	if e.Type() != pattern.F32 {
		t.Errorf("type = %v, want f32", e.Type())
	}
	if got := CountOps(e); got != 3 { // mux, lt, add
		t.Errorf("CountOps = %d, want 3", got)
	}
	if got := MaxCtrLevel(e); got != 0 {
		t.Errorf("MaxCtrLevel = %d, want 0", got)
	}
	if got := ReadSRAMs(e); len(got) != 1 || got[0] != s {
		t.Errorf("ReadSRAMs = %v", got)
	}
	if got := ReadFIFOs(e); len(got) != 1 || got[0] != f {
		t.Errorf("ReadFIFOs = %v", got)
	}
	if got := ReadRegs(e); len(got) != 1 || got[0] != r {
		t.Errorf("ReadRegs = %v", got)
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{Sequential, Pipeline, Stream, Parallel} {
		if !k.IsOuter() || k.IsTransfer() {
			t.Errorf("%v should be outer, not transfer", k)
		}
	}
	for _, k := range []Kind{LoadKind, StoreKind, GatherKind, ScatterKind} {
		if k.IsOuter() || !k.IsTransfer() {
			t.Errorf("%v should be transfer, not outer", k)
		}
	}
	if ComputeKind.IsOuter() || ComputeKind.IsTransfer() {
		t.Error("Compute is neither outer nor transfer")
	}
}
