package dhdl

import (
	"fmt"

	"plasticine/internal/pattern"
)

// State holds the live contents of all on-chip memories during and after a
// reference-interpreter run. DRAM contents live in the bound collections.
type State struct {
	sram  map[*SRAM][]pattern.Value
	regs  map[*Reg]pattern.Value
	fifos map[*FIFOMem][]pattern.Value
}

// SRAMData returns the current contents of an SRAM.
func (s *State) SRAMData(m *SRAM) []pattern.Value { return s.sram[m] }

// RegValue returns the current value of a register.
func (s *State) RegValue(r *Reg) pattern.Value { return s.regs[r] }

// FIFOLen returns the occupancy of a FIFO.
func (s *State) FIFOLen(f *FIFOMem) int { return len(s.fifos[f]) }

// FIFOData returns the current contents of a FIFO (front first).
func (s *State) FIFOData(f *FIFOMem) []pattern.Value { return s.fifos[f] }

type interpError struct{ err error }

func ifail(format string, args ...any) {
	panic(interpError{fmt.Errorf("dhdl interp: "+format, args...)})
}

// ExecEvent describes one completed leaf-controller execution during a
// traced run. The hardware simulator replays these events to build its
// timed activity graph.
type ExecEvent struct {
	Ctrl *Controller
	Path []*Controller // ancestors, root first, ending at Ctrl
	Env  []int32       // counter values in scope (copy)

	// Iters is the number of body iterations a Compute executed.
	Iters int64

	// Transfer details: the DRAM buffer, dense word offset/length, and for
	// sparse transfers the element indices in access order.
	Buf         *DRAMBuf
	DenseOff    int
	DenseLen    int
	SparseAddrs []int32
	Write       bool
}

// ExecHook observes leaf executions in program order.
type ExecHook func(ev *ExecEvent)

// Run executes the program sequentially, defining the IR's functional
// semantics. All DRAM buffers must be bound. The returned State exposes
// final on-chip memory contents; DRAM results are visible in the bound
// collections.
func Run(p *Program) (*State, error) { return Trace(p, nil) }

// Trace is Run with an execution hook invoked after every leaf execution.
func Trace(p *Program, hook ExecHook) (st *State, err error) {
	if ferr := p.Finalize(); ferr != nil {
		return nil, ferr
	}
	for _, d := range p.DRAMs {
		if d.Data == nil {
			return nil, fmt.Errorf("dhdl interp: DRAM buffer %q not bound", d.Name)
		}
	}
	st = &State{
		sram:  make(map[*SRAM][]pattern.Value),
		regs:  make(map[*Reg]pattern.Value),
		fifos: make(map[*FIFOMem][]pattern.Value),
	}
	for _, s := range p.SRAMs {
		buf := make([]pattern.Value, s.Size)
		zero := pattern.VF(0)
		if s.Elem == pattern.I32 {
			zero = pattern.VI(0)
		}
		for i := range buf {
			buf[i] = zero
		}
		st.sram[s] = buf
	}
	for _, r := range p.Regs {
		st.regs[r] = r.Init
	}
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(interpError); ok {
				st, err = nil, ie.err
				return
			}
			// Expression evaluation delegates to the pattern package,
			// whose failures arrive as typed panics; surface them as
			// interpreter errors (wrapping pattern.ErrEval) too.
			if pe, ok := r.(*pattern.EvalError); ok {
				st, err = nil, fmt.Errorf("dhdl interp: %w", pe)
				return
			}
			panic(r)
		}
	}()
	in := &interp{st: st, hook: hook}
	in.runCtrl(p.Root, make([]int32, 0, 8))
	return st, nil
}

type interp struct {
	st   *State
	hook ExecHook
	path []*Controller
}

func (in *interp) emit(ev *ExecEvent, env []int32) {
	if in.hook == nil {
		return
	}
	ev.Path = append([]*Controller(nil), in.path...)
	ev.Env = append([]int32(nil), env...)
	in.hook(ev)
}

// chainIter iterates a counter chain in row-major order, extending env with
// the current index values and invoking f for each combination.
func (in *interp) chainIter(chain []Counter, env []int32, f func(env []int32)) {
	if len(chain) == 0 {
		f(env)
		return
	}
	c := chain[0]
	max := int32(c.Max)
	if c.MaxReg != nil {
		v := in.st.regs[c.MaxReg]
		if v.T != pattern.I32 {
			ifail("dynamic counter limit register %q is not i32", c.MaxReg.Name)
		}
		max = v.I
	}
	for i := int32(c.Min); i < max; i += int32(c.Step) {
		in.chainIter(chain[1:], append(env, i), f)
	}
}

func (in *interp) runCtrl(c *Controller, env []int32) {
	in.path = append(in.path, c)
	defer func() { in.path = in.path[:len(in.path)-1] }()
	switch {
	case c.Kind.IsOuter():
		in.chainIter(c.Chain, env, func(env []int32) {
			// The reference semantics of all four outer schedules are
			// identical: children execute in program order per iteration.
			// Pipelining/streaming change timing, not results.
			for _, ch := range c.Children {
				in.runCtrl(ch, env)
			}
		})
	case c.Kind == ComputeKind:
		iters := in.runCompute(c, env)
		in.emit(&ExecEvent{Ctrl: c, Iters: iters}, env)
	default:
		in.chainIter(c.Chain, env, func(env []int32) {
			ev := in.runTransfer(c, env)
			ev.Ctrl = c
			in.emit(ev, env)
		})
	}
}

func (in *interp) runCompute(c *Controller, env []int32) int64 {
	// Reduction accumulators reset at the start of each leaf execution.
	acc := make(map[*Assign]pattern.Value)
	for _, a := range c.Body {
		if a.Kind == ReduceReg {
			acc[a] = a.Reg.Init
		}
	}
	// Within one iteration every assign observes the pre-iteration state
	// (the hardware computes all outputs from the same pipeline inputs);
	// writes commit together at the end of the iteration. FIFO pops during
	// evaluation still consume in assign order.
	type commit struct {
		a    *Assign
		addr int
		v    pattern.Value
	}
	var pending []commit
	var iters int64
	in.chainIter(c.Chain, env, func(env []int32) {
		iters++
		pending = pending[:0]
		for _, a := range c.Body {
			if a.Cond != nil && !in.eval(a.Cond, env).B {
				continue
			}
			v := in.eval(a.Val, env)
			addr := -1
			if a.Kind == WriteSRAM || a.Kind == ReduceSRAM {
				addr = in.evalAddr(a.Addr, env, a.SRAM)
			}
			pending = append(pending, commit{a, addr, v})
		}
		for _, p := range pending {
			switch p.a.Kind {
			case WriteSRAM:
				in.sramWrite(p.a.SRAM, p.addr, p.v)
			case WriteReg:
				in.st.regs[p.a.Reg] = p.v
			case ReduceReg:
				acc[p.a] = pattern.EvalOp(p.a.Combine, acc[p.a], p.v)
			case ReduceSRAM:
				old := in.st.sram[p.a.SRAM][p.addr]
				in.sramWrite(p.a.SRAM, p.addr, pattern.EvalOp(p.a.Combine, old, p.v))
			case PushFIFO:
				in.st.fifos[p.a.FIFO] = append(in.st.fifos[p.a.FIFO], p.v)
			}
		}
	})
	for a, v := range acc {
		in.st.regs[a.Reg] = v
	}
	return iters
}

func (in *interp) evalAddr(e Expr, env []int32, s *SRAM) int {
	v := in.eval(e, env)
	if v.T != pattern.I32 {
		ifail("address into %q is %v, want i32", s.Name, v.T)
	}
	a := int(v.I)
	if a < 0 || a >= s.Size {
		ifail("address %d out of range [0,%d) in SRAM %q", a, s.Size, s.Name)
	}
	return a
}

func (in *interp) sramWrite(s *SRAM, addr int, v pattern.Value) {
	if v.T != s.Elem {
		ifail("writing %v into SRAM %q of type %v", v.T, s.Name, s.Elem)
	}
	in.st.sram[s][addr] = v
}

func (in *interp) dramRead(d *DRAMBuf, i int) pattern.Value {
	if i < 0 || i >= d.Len() {
		ifail("DRAM %q read at %d out of range [0,%d)", d.Name, i, d.Len())
	}
	if d.Elem == pattern.F32 {
		return pattern.VF(d.Data.F32Data()[i])
	}
	return pattern.VI(d.Data.I32Data()[i])
}

func (in *interp) dramWrite(d *DRAMBuf, i int, v pattern.Value) {
	if i < 0 || i >= d.Len() {
		ifail("DRAM %q write at %d out of range [0,%d)", d.Name, i, d.Len())
	}
	if v.T != d.Elem {
		ifail("writing %v into DRAM %q of type %v", v.T, d.Name, d.Elem)
	}
	if d.Elem == pattern.F32 {
		d.Data.F32Data()[i] = v.F
	} else {
		d.Data.I32Data()[i] = v.I
	}
}

func (in *interp) runTransfer(c *Controller, env []int32) *ExecEvent {
	x := c.Xfer
	off := 0
	if x.Off != nil {
		off = int(in.eval(x.Off, env).I)
	}
	sramOff := 0
	if x.SRAMOff != nil {
		sramOff = int(in.eval(x.SRAMOff, env).I)
	}
	count := x.Count
	if x.CountReg != nil {
		count = int(in.st.regs[x.CountReg].I)
	}
	ev := &ExecEvent{Buf: x.DRAM, DenseOff: off, Write: c.Kind == StoreKind || c.Kind == ScatterKind}
	switch c.Kind {
	case LoadKind:
		ev.DenseLen = x.Len
		for i := 0; i < x.Len; i++ {
			v := in.dramRead(x.DRAM, off+i)
			if x.SRAM != nil {
				if sramOff+i >= x.SRAM.Size {
					ifail("load %q overflows SRAM %q at %d", c.Name, x.SRAM.Name, sramOff+i)
				}
				in.sramWrite(x.SRAM, sramOff+i, v)
			} else {
				in.st.fifos[x.FIFO] = append(in.st.fifos[x.FIFO], v)
			}
		}
	case StoreKind:
		if x.FIFO != nil {
			q := in.st.fifos[x.FIFO]
			if count > len(q) {
				ifail("store %q pops %d from FIFO %q holding %d", c.Name, count, x.FIFO.Name, len(q))
			}
			for i := 0; i < count; i++ {
				in.dramWrite(x.DRAM, off+i, q[i])
			}
			in.st.fifos[x.FIFO] = q[count:]
			ev.DenseLen = count
			return ev
		}
		ev.DenseLen = x.Len
		for i := 0; i < x.Len; i++ {
			if sramOff+i < 0 || sramOff+i >= x.SRAM.Size {
				ifail("store %q reads past SRAM %q at %d", c.Name, x.SRAM.Name, sramOff+i)
			}
			in.dramWrite(x.DRAM, off+i, in.st.sram[x.SRAM][sramOff+i])
		}
	case GatherKind:
		for i := 0; i < count; i++ {
			av := in.addrStreamAt(c, i)
			ev.SparseAddrs = append(ev.SparseAddrs, av)
			v := in.dramRead(x.DRAM, off+int(av))
			if x.SRAM != nil {
				if i >= x.SRAM.Size {
					ifail("gather %q overflows SRAM %q at %d", c.Name, x.SRAM.Name, i)
				}
				in.sramWrite(x.SRAM, i, v)
			} else {
				in.st.fifos[x.FIFO] = append(in.st.fifos[x.FIFO], v)
			}
		}
	case ScatterKind:
		for i := 0; i < count; i++ {
			av := in.addrStreamAt(c, i)
			ev.SparseAddrs = append(ev.SparseAddrs, av)
			var v pattern.Value
			if x.DataMem != nil {
				if i >= x.DataMem.Size {
					ifail("scatter %q reads past SRAM %q at %d", c.Name, x.DataMem.Name, i)
				}
				v = in.st.sram[x.DataMem][i]
			} else {
				q := in.st.fifos[x.DataFIFO]
				if len(q) == 0 {
					ifail("scatter %q pops empty FIFO %q", c.Name, x.DataFIFO.Name)
				}
				v, in.st.fifos[x.DataFIFO] = q[0], q[1:]
			}
			in.dramWrite(x.DRAM, off+int(av), v)
		}
	}
	return ev
}

func (in *interp) addrStreamAt(c *Controller, i int) int32 {
	x := c.Xfer
	if x.AddrMem != nil {
		if i >= x.AddrMem.Size {
			ifail("transfer %q reads past address SRAM %q at %d", c.Name, x.AddrMem.Name, i)
		}
		v := in.st.sram[x.AddrMem][i]
		if v.T != pattern.I32 {
			ifail("transfer %q address stream is not i32", c.Name)
		}
		return v.I
	}
	q := in.st.fifos[x.AddrFIFO]
	if len(q) == 0 {
		ifail("transfer %q pops empty address FIFO %q", c.Name, x.AddrFIFO.Name)
	}
	v := q[0]
	in.st.fifos[x.AddrFIFO] = q[1:]
	return v.I
}

func (in *interp) eval(e Expr, env []int32) pattern.Value {
	switch n := e.(type) {
	case *Lit:
		return n.V
	case *Ctr:
		if n.Level >= len(env) {
			ifail("counter level %d read with %d levels in scope", n.Level, len(env))
		}
		return pattern.VI(env[n.Level])
	case *RegRd:
		return in.st.regs[n.Reg]
	case *SRAMRd:
		return in.st.sram[n.Mem][in.evalAddr(n.Addr, env, n.Mem)]
	case *FIFORd:
		q := in.st.fifos[n.Mem]
		if len(q) == 0 {
			ifail("pop from empty FIFO %q", n.Mem.Name)
		}
		v := q[0]
		in.st.fifos[n.Mem] = q[1:]
		return v
	case *ToF32:
		return pattern.VF(float32(in.eval(n.X, env).I))
	case *ToI32:
		return pattern.VI(int32(in.eval(n.X, env).F))
	case *Mux:
		if in.eval(n.Cond, env).B {
			return in.eval(n.T, env)
		}
		return in.eval(n.F, env)
	case *Un:
		x := in.eval(n.X, env)
		return evalUnary(n.Op, x)
	case *Bin:
		return pattern.EvalOp(n.Op, in.eval(n.X, env), in.eval(n.Y, env))
	}
	ifail("cannot evaluate %T", e)
	return pattern.Value{}
}

// evalUnary bridges to the pattern package's unary semantics.
func evalUnary(op pattern.Op, x pattern.Value) pattern.Value {
	// pattern exposes unary eval via Eval on an expression tree; rebuild a
	// tiny node to reuse the single source of truth.
	var lit pattern.Expr
	switch x.T {
	case pattern.F32:
		lit = pattern.F(x.F)
	case pattern.I32:
		lit = pattern.I(x.I)
	default:
		lit = pattern.B(x.B)
	}
	return pattern.Eval(&pattern.Un{Op: op, X: lit}, nil)
}
