package dhdl

import (
	"fmt"

	"plasticine/internal/pattern"
)

// C returns a counter over [0, max) with step 1, no parallelization.
func C(max int) Counter { return Counter{Min: 0, Max: max, Step: 1, Par: 1} }

// CPar returns a counter over [0, max) with step 1 and parallelization
// factor par.
func CPar(max, par int) Counter { return Counter{Min: 0, Max: max, Step: 1, Par: par} }

// CStep returns a counter over [min, max) with the given step (tiling
// counters use step = tile size).
func CStep(min, max, step int) Counter { return Counter{Min: min, Max: max, Step: step, Par: 1} }

// CStepPar returns a stepped counter with a parallelization factor.
func CStepPar(min, max, step, par int) Counter {
	return Counter{Min: min, Max: max, Step: step, Par: par}
}

// CDyn returns a counter over [0, reg) read at runtime.
func CDyn(reg *Reg) Counter { return Counter{Min: 0, MaxReg: reg, Step: 1, Par: 1} }

// CDynPar returns a dynamic counter with a parallelization factor.
func CDynPar(reg *Reg, par int) Counter { return Counter{Min: 0, MaxReg: reg, Step: 1, Par: par} }

// Builder incrementally constructs a Program. Memory declarations may occur
// at any point; controllers nest through the closure-based methods, which
// hand the body the counter-index expressions for the newly opened chain.
type Builder struct {
	prog  *Program
	stack []*Controller
	level int
	err   error

	// curOrigin is stamped onto every controller and memory declared until
	// the next SetOrigin call (see Controller.Origin).
	curOrigin string
}

// SetOrigin sets the source-level origin stamped onto subsequently declared
// controllers and memories, until the next call. An empty string clears it
// (declarations then fall back to their Name for provenance). It returns the
// previous origin so callers can scope an origin and restore it:
//
//	prev := b.SetOrigin("Fold.n2:bin(mul)")
//	... declarations ...
//	b.SetOrigin(prev)
func (b *Builder) SetOrigin(origin string) (prev string) {
	prev = b.curOrigin
	b.curOrigin = origin
	return prev
}

// NewBuilder starts a program with a root controller of the given kind
// (usually Sequential) and counter chain.
func NewBuilder(name string, rootKind Kind, chain ...Counter) *Builder {
	root := &Controller{Name: name + ".root", Kind: rootKind, Chain: chain}
	return &Builder{
		prog:  &Program{Name: name, Root: root},
		stack: []*Controller{root},
		level: len(chain),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Errf records a build error from client code (e.g. a body closure that
// cannot translate an expression). The first recorded error is returned
// from Build; later ones are dropped.
func (b *Builder) Errf(format string, args ...any) { b.fail(format, args...) }

// Err returns the first error recorded so far, without finalizing.
func (b *Builder) Err() error { return b.err }

func (b *Builder) top() *Controller { return b.stack[len(b.stack)-1] }

func (b *Builder) add(c *Controller) {
	t := b.top()
	if !t.Kind.IsOuter() {
		b.fail("dhdl: cannot nest %q under leaf %q", c.Name, t.Name)
		return
	}
	t.Children = append(t.Children, c)
}

// Level returns the number of counter levels currently in scope.
func (b *Builder) Level() int { return b.level }

// idxExprs returns Ctr expressions for a newly opened chain of n counters.
func (b *Builder) idxExprs(n int) []Expr {
	ix := make([]Expr, n)
	for i := range ix {
		ix[i] = Idx(b.level + i)
	}
	return ix
}

// DRAMF32 declares an off-chip float32 buffer.
func (b *Builder) DRAMF32(name string, dims ...int) *DRAMBuf {
	d := &DRAMBuf{Name: name, Origin: b.curOrigin, Elem: pattern.F32, Dims: dims}
	b.prog.DRAMs = append(b.prog.DRAMs, d)
	return d
}

// DRAMI32 declares an off-chip int32 buffer.
func (b *Builder) DRAMI32(name string, dims ...int) *DRAMBuf {
	d := &DRAMBuf{Name: name, Origin: b.curOrigin, Elem: pattern.I32, Dims: dims}
	b.prog.DRAMs = append(b.prog.DRAMs, d)
	return d
}

// SRAM declares an on-chip scratchpad of size words.
func (b *Builder) SRAM(name string, elem pattern.Type, size int) *SRAM {
	s := &SRAM{Name: name, Origin: b.curOrigin, Elem: elem, Size: size, Banking: Strided, NBuf: 1}
	b.prog.SRAMs = append(b.prog.SRAMs, s)
	return s
}

// SRAMBanked declares a scratchpad with an explicit banking mode.
func (b *Builder) SRAMBanked(name string, elem pattern.Type, size int, mode BankingMode) *SRAM {
	s := b.SRAM(name, elem, size)
	s.Banking = mode
	return s
}

// Reg declares a scalar register with an initial value.
func (b *Builder) Reg(name string, init pattern.Value) *Reg {
	r := &Reg{Name: name, Origin: b.curOrigin, Elem: init.T, Init: init}
	b.prog.Regs = append(b.prog.Regs, r)
	return r
}

// FIFO declares a streaming FIFO.
func (b *Builder) FIFO(name string, elem pattern.Type, depth int) *FIFOMem {
	f := &FIFOMem{Name: name, Origin: b.curOrigin, Elem: elem, Depth: depth}
	b.prog.FIFOs = append(b.prog.FIFOs, f)
	return f
}

func (b *Builder) outer(kind Kind, name string, chain []Counter, body func(ix []Expr)) {
	c := &Controller{Name: name, Origin: b.curOrigin, Kind: kind, Chain: chain}
	b.add(c)
	b.stack = append(b.stack, c)
	b.level += len(chain)
	ix := make([]Expr, len(chain))
	for i := range ix {
		ix[i] = Idx(b.level - len(chain) + i)
	}
	body(ix)
	b.level -= len(chain)
	b.stack = b.stack[:len(b.stack)-1]
}

// Seq opens a Sequential controller.
func (b *Builder) Seq(name string, chain []Counter, body func(ix []Expr)) {
	b.outer(Sequential, name, chain, body)
}

// Pipe opens a coarse-grained Pipeline controller.
func (b *Builder) Pipe(name string, chain []Counter, body func(ix []Expr)) {
	b.outer(Pipeline, name, chain, body)
}

// StreamCtl opens a Stream controller.
func (b *Builder) StreamCtl(name string, chain []Counter, body func(ix []Expr)) {
	b.outer(Stream, name, chain, body)
}

// Par opens a Parallel controller (no counters).
func (b *Builder) Par(name string, body func()) {
	b.outer(Parallel, name, nil, func([]Expr) { body() })
}

// Compute adds an inner compute controller whose body closure receives the
// index expressions of its own counter chain.
func (b *Builder) Compute(name string, chain []Counter, body func(ix []Expr) []*Assign) {
	c := &Controller{Name: name, Origin: b.curOrigin, Kind: ComputeKind, Chain: chain}
	ix := make([]Expr, len(chain))
	for i := range ix {
		ix[i] = Idx(b.level + i)
	}
	c.Body = body(ix)
	b.add(c)
}

// Load adds a dense DRAM->SRAM transfer of length words starting at DRAM
// word offset off.
func (b *Builder) Load(name string, dram *DRAMBuf, off Expr, sram *SRAM, length int) {
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: LoadKind, Xfer: &Transfer{
		DRAM: dram, Off: off, SRAM: sram, Len: length,
	}})
}

// LoadFIFO adds a dense DRAM->FIFO streaming transfer.
func (b *Builder) LoadFIFO(name string, dram *DRAMBuf, off Expr, fifo *FIFOMem, length int) {
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: LoadKind, Xfer: &Transfer{
		DRAM: dram, Off: off, FIFO: fifo, Len: length,
	}})
}

// LoadTiled adds a dense transfer with its own counter chain: per chain
// iteration it copies length words from DRAM offset off into SRAM offset
// sramOff (both computed from the chain indices). This is how 2-D tiles
// move row by row.
func (b *Builder) LoadTiled(name string, chain []Counter, dram *DRAMBuf, sram *SRAM, length int,
	f func(ix []Expr) (off, sramOff Expr)) {
	ix := make([]Expr, len(chain))
	for i := range ix {
		ix[i] = Idx(b.level + i)
	}
	off, sramOff := f(ix)
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: LoadKind, Chain: chain, Xfer: &Transfer{
		DRAM: dram, Off: off, SRAM: sram, SRAMOff: sramOff, Len: length,
	}})
}

// StoreTiled is LoadTiled in the SRAM->DRAM direction.
func (b *Builder) StoreTiled(name string, chain []Counter, dram *DRAMBuf, sram *SRAM, length int,
	f func(ix []Expr) (off, sramOff Expr)) {
	ix := make([]Expr, len(chain))
	for i := range ix {
		ix[i] = Idx(b.level + i)
	}
	off, sramOff := f(ix)
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: StoreKind, Chain: chain, Xfer: &Transfer{
		DRAM: dram, Off: off, SRAM: sram, SRAMOff: sramOff, Len: length,
	}})
}

// Store adds a dense SRAM->DRAM transfer.
func (b *Builder) Store(name string, dram *DRAMBuf, off Expr, sram *SRAM, length int) {
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: StoreKind, Xfer: &Transfer{
		DRAM: dram, Off: off, SRAM: sram, Len: length,
	}})
}

// StoreFIFO adds a FIFO->DRAM streaming transfer driven by a dynamic count.
func (b *Builder) StoreFIFO(name string, dram *DRAMBuf, off Expr, fifo *FIFOMem, countReg *Reg) {
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: StoreKind, Xfer: &Transfer{
		DRAM: dram, Off: off, FIFO: fifo, Len: 1, CountReg: countReg,
	}})
}

// Gather adds a sparse DRAM read: count addresses from addrMem index dram;
// fetched values land in dst in stream order.
func (b *Builder) Gather(name string, dram *DRAMBuf, addrMem *SRAM, dst *SRAM, count int, countReg *Reg) {
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: GatherKind, Xfer: &Transfer{
		DRAM: dram, AddrMem: addrMem, SRAM: dst, Count: count, CountReg: countReg,
	}})
}

// Scatter adds a sparse DRAM write: dram[addrMem[i]] = dataMem[i].
func (b *Builder) Scatter(name string, dram *DRAMBuf, addrMem, dataMem *SRAM, count int, countReg *Reg) {
	b.add(&Controller{Name: name, Origin: b.curOrigin, Kind: ScatterKind, Xfer: &Transfer{
		DRAM: dram, AddrMem: addrMem, DataMem: dataMem, Count: count, CountReg: countReg,
	}})
}

// Assign helpers.

// StoreAt writes val to sram[addr] each iteration.
func StoreAt(sram *SRAM, addr, val Expr) *Assign {
	return &Assign{Kind: WriteSRAM, SRAM: sram, Addr: addr, Val: val}
}

// StoreAtIf conditionally writes val to sram[addr].
func StoreAtIf(sram *SRAM, cond, addr, val Expr) *Assign {
	return &Assign{Kind: WriteSRAM, SRAM: sram, Addr: addr, Val: val, Cond: cond}
}

// SetReg writes val to reg each iteration (last value wins).
func SetReg(reg *Reg, val Expr) *Assign {
	return &Assign{Kind: WriteReg, Reg: reg, Val: val}
}

// Accum folds val into reg with op across the compute's domain.
func Accum(reg *Reg, op pattern.Op, val Expr) *Assign {
	return &Assign{Kind: ReduceReg, Reg: reg, Val: val, Combine: op}
}

// AccumIf conditionally folds val into reg.
func AccumIf(reg *Reg, op pattern.Op, cond, val Expr) *Assign {
	return &Assign{Kind: ReduceReg, Reg: reg, Val: val, Combine: op, Cond: cond}
}

// AccumAt read-modify-writes sram[addr] with op.
func AccumAt(sram *SRAM, op pattern.Op, addr, val Expr) *Assign {
	return &Assign{Kind: ReduceSRAM, SRAM: sram, Addr: addr, Val: val, Combine: op}
}

// Push appends val to fifo.
func Push(fifo *FIFOMem, val Expr) *Assign {
	return &Assign{Kind: PushFIFO, FIFO: fifo, Val: val}
}

// PushIf appends val to fifo when cond holds (FlatMap filter).
func PushIf(fifo *FIFOMem, cond, val Expr) *Assign {
	return &Assign{Kind: PushFIFO, FIFO: fifo, Val: val, Cond: cond}
}

// Build finalizes and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("dhdl: unbalanced controller nesting (%d open)", len(b.stack))
	}
	if err := b.prog.Finalize(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build for tests and examples with known-good programs.
// Unlike its name suggests, it no longer panics: a build failure is
// accumulated in the builder's error field (visible via Err, and returned
// again by Build or any later Finalize/Run on the program), and the
// partially built program is returned so the error surfaces at the next
// checked boundary instead of crashing the process.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		b.fail("%v", err)
		return b.prog
	}
	return p
}
