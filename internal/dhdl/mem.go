// Package dhdl implements a hierarchical dataflow IR modelled on the Delite
// Hardware Definition Language (Section 3.6): programs are trees of
// controllers — outer controllers that only sequence other controllers
// (Sequential, Pipeline, Stream, Parallel) and leaf controllers that do work
// (Compute pipelines and DRAM transfers) — operating on explicitly declared
// memories (off-chip DRAM buffers, on-chip SRAM tiles, scalar registers and
// FIFOs).
//
// The package also contains a sequential reference interpreter (Run) that
// defines the IR's semantics; the hardware simulator is checked against it.
package dhdl

import (
	"fmt"

	"plasticine/internal/pattern"
)

// BankingMode selects how a PMU's address decoders arrange an SRAM's banks
// (Section 3.2).
type BankingMode int

const (
	// Strided banking supports linear access patterns on dense data:
	// element i lives in bank i % banks.
	Strided BankingMode = iota
	// FIFOMode supports streaming accesses.
	FIFOMode
	// LineBuffer captures sliding-window accesses.
	LineBuffer
	// Duplication replicates contents across all banks, providing one read
	// port per lane for parallel on-chip gathers (random reads).
	Duplication
)

func (m BankingMode) String() string {
	switch m {
	case Strided:
		return "strided"
	case FIFOMode:
		return "fifo"
	case LineBuffer:
		return "linebuffer"
	case Duplication:
		return "duplication"
	}
	return fmt.Sprintf("banking(%d)", int(m))
}

// DRAMBuf is an off-chip DRAM-resident buffer. Its contents are bound to a
// pattern.Collection when a program runs.
type DRAMBuf struct {
	Name string
	// Origin names the source collection or pattern node this buffer holds
	// (empty = fall back to Name; see Controller.Origin).
	Origin string
	Elem   pattern.Type
	Dims   []int

	// Data is the live backing store, bound with Bind.
	Data *pattern.Collection
}

// Len returns the number of elements.
func (d *DRAMBuf) Len() int {
	n := 1
	for _, x := range d.Dims {
		n *= x
	}
	return n
}

// Bytes returns the buffer size in bytes.
func (d *DRAMBuf) Bytes() int { return 4 * d.Len() }

// Bind attaches collection data; dimensions must match.
func (d *DRAMBuf) Bind(c *pattern.Collection) error {
	if c.Len() != d.Len() {
		return fmt.Errorf("dhdl: binding %s (%d elems) to collection %s (%d elems)", d.Name, d.Len(), c.Name, c.Len())
	}
	if c.Elem != d.Elem {
		return fmt.Errorf("dhdl: binding %s (%v) to collection of type %v", d.Name, d.Elem, c.Elem)
	}
	d.Data = c
	return nil
}

// SRAM is an on-chip scratchpad tile held in one (logical) PMU.
type SRAM struct {
	Name string
	// Origin names the source node this tile buffers (empty = Name).
	Origin  string
	Elem    pattern.Type
	Size    int // words
	Banking BankingMode

	// NBuf is the buffering depth (Section 3.2: N-buffering). 1 = single
	// buffer. The compiler raises it to the producer/consumer distance in
	// coarse-grained pipelines.
	NBuf int
}

// Reg is a scalar register, communicated over the scalar network
// (e.g. the result of a Fold).
type Reg struct {
	Name string
	// Origin names the source node this register carries (empty = Name).
	Origin string
	Elem   pattern.Type
	Init   pattern.Value
}

// FIFOMem is a streaming FIFO connecting controllers under a Stream parent.
type FIFOMem struct {
	Name string
	// Origin names the source node this FIFO streams (empty = Name).
	Origin string
	Elem   pattern.Type
	Depth  int // words
}

// Provenance returns Origin, or Name when no origin was recorded.
func (d *DRAMBuf) Provenance() string {
	if d.Origin != "" {
		return d.Origin
	}
	return d.Name
}

// Provenance returns Origin, or Name when no origin was recorded.
func (s *SRAM) Provenance() string {
	if s.Origin != "" {
		return s.Origin
	}
	return s.Name
}

// Provenance returns Origin, or Name when no origin was recorded.
func (r *Reg) Provenance() string {
	if r.Origin != "" {
		return r.Origin
	}
	return r.Name
}

// Provenance returns Origin, or Name when no origin was recorded.
func (f *FIFOMem) Provenance() string {
	if f.Origin != "" {
		return f.Origin
	}
	return f.Name
}
