package dhdl

import "plasticine/internal/pattern"

// Expr is a dataflow expression inside a Compute body. Expressions may read
// counter indices, scalar registers, SRAM (with arbitrary address
// expressions) and FIFOs; all arithmetic reuses the pattern package's op
// semantics, which the PCU functional units implement.
type Expr interface {
	Type() pattern.Type
	children() []Expr
}

// Lit is a literal value.
type Lit struct{ V pattern.Value }

// Ctr references a loop index. Level counts counters from the program root
// down to (and including) the Compute node's own chain: 0 is the outermost
// counter on the path, larger levels are deeper.
type Ctr struct{ Level int }

// RegRd reads a scalar register.
type RegRd struct{ Reg *Reg }

// SRAMRd reads Mem at the given address expressions (row-major if Mem is
// logically multi-dimensional the caller flattens; SRAM is 1-D here).
type SRAMRd struct {
	Mem  *SRAM
	Addr Expr
}

// FIFORd pops one element from a FIFO.
type FIFORd struct{ Mem *FIFOMem }

// Bin applies a binary FU op.
type Bin struct {
	Op   pattern.Op
	X, Y Expr
}

// Un applies a unary FU op.
type Un struct {
	Op pattern.Op
	X  Expr
}

// Mux selects T when Cond holds, else F.
type Mux struct{ Cond, T, F Expr }

// ToF32 converts i32 to f32.
type ToF32 struct{ X Expr }

// ToI32 converts f32 to i32 (truncating).
type ToI32 struct{ X Expr }

func (e *Lit) Type() pattern.Type    { return e.V.T }
func (e *Ctr) Type() pattern.Type    { return pattern.I32 }
func (e *RegRd) Type() pattern.Type  { return e.Reg.Elem }
func (e *SRAMRd) Type() pattern.Type { return e.Mem.Elem }
func (e *FIFORd) Type() pattern.Type { return e.Mem.Elem }
func (e *ToF32) Type() pattern.Type  { return pattern.F32 }
func (e *ToI32) Type() pattern.Type  { return pattern.I32 }
func (e *Mux) Type() pattern.Type    { return e.T.Type() }

func (e *Bin) Type() pattern.Type {
	if e.Op.IsComparison() || e.Op == pattern.And || e.Op == pattern.Or {
		return pattern.Bool
	}
	return e.X.Type()
}

func (e *Un) Type() pattern.Type {
	if e.Op == pattern.Not {
		return pattern.Bool
	}
	return e.X.Type()
}

func (e *Lit) children() []Expr    { return nil }
func (e *Ctr) children() []Expr    { return nil }
func (e *RegRd) children() []Expr  { return nil }
func (e *SRAMRd) children() []Expr { return []Expr{e.Addr} }
func (e *FIFORd) children() []Expr { return nil }
func (e *Bin) children() []Expr    { return []Expr{e.X, e.Y} }
func (e *Un) children() []Expr     { return []Expr{e.X} }
func (e *Mux) children() []Expr    { return []Expr{e.Cond, e.T, e.F} }
func (e *ToF32) children() []Expr  { return []Expr{e.X} }
func (e *ToI32) children() []Expr  { return []Expr{e.X} }

// Constructors.

// CF is a float32 literal.
func CF(v float32) Expr { return &Lit{pattern.VF(v)} }

// CI is an int32 literal.
func CI(v int32) Expr { return &Lit{pattern.VI(v)} }

// Idx references loop level l.
func Idx(l int) Expr { return &Ctr{Level: l} }

// Rd reads a register.
func Rd(r *Reg) Expr { return &RegRd{r} }

// Ld reads an SRAM at addr.
func Ld(m *SRAM, addr Expr) Expr { return &SRAMRd{m, addr} }

// Pop reads a FIFO.
func Pop(f *FIFOMem) Expr { return &FIFORd{f} }

// Binary/unary helpers.
func Add(x, y Expr) Expr    { return &Bin{pattern.Add, x, y} }
func Sub(x, y Expr) Expr    { return &Bin{pattern.Sub, x, y} }
func Mul(x, y Expr) Expr    { return &Bin{pattern.Mul, x, y} }
func Div(x, y Expr) Expr    { return &Bin{pattern.Div, x, y} }
func Mod(x, y Expr) Expr    { return &Bin{pattern.Mod, x, y} }
func Min(x, y Expr) Expr    { return &Bin{pattern.Min, x, y} }
func Max(x, y Expr) Expr    { return &Bin{pattern.Max, x, y} }
func Lt(x, y Expr) Expr     { return &Bin{pattern.Lt, x, y} }
func Le(x, y Expr) Expr     { return &Bin{pattern.Le, x, y} }
func Gt(x, y Expr) Expr     { return &Bin{pattern.Gt, x, y} }
func Ge(x, y Expr) Expr     { return &Bin{pattern.Ge, x, y} }
func Eq(x, y Expr) Expr     { return &Bin{pattern.Eq, x, y} }
func Ne(x, y Expr) Expr     { return &Bin{pattern.Ne, x, y} }
func And(x, y Expr) Expr    { return &Bin{pattern.And, x, y} }
func Or(x, y Expr) Expr     { return &Bin{pattern.Or, x, y} }
func Not(x Expr) Expr       { return &Un{pattern.Not, x} }
func Neg(x Expr) Expr       { return &Un{pattern.Neg, x} }
func Abs(x Expr) Expr       { return &Un{pattern.Abs, x} }
func Exp(x Expr) Expr       { return &Un{pattern.Exp, x} }
func Log(x Expr) Expr       { return &Un{pattern.Log, x} }
func Sqrt(x Expr) Expr      { return &Un{pattern.Sqrt, x} }
func Sel(c, t, f Expr) Expr { return &Mux{c, t, f} }
func F32(x Expr) Expr       { return &ToF32{x} }
func I32(x Expr) Expr       { return &ToI32{x} }

// Walk visits e and its descendants pre-order.
func Walk(e Expr, visit func(Expr)) {
	visit(e)
	for _, c := range e.children() {
		Walk(c, visit)
	}
}

// CountOps counts FU operations in the expression (the compiler's unit of
// pipeline-stage occupancy).
func CountOps(e Expr) int {
	n := 0
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *Bin, *Un, *Mux, *ToF32, *ToI32:
			n++
		}
	})
	return n
}

// MaxCtrLevel returns the deepest counter level referenced, or -1.
func MaxCtrLevel(e Expr) int {
	max := -1
	Walk(e, func(x Expr) {
		if c, ok := x.(*Ctr); ok && c.Level > max {
			max = c.Level
		}
	})
	return max
}

// ReadSRAMs returns the set of SRAMs an expression reads.
func ReadSRAMs(e Expr) []*SRAM {
	seen := map[*SRAM]bool{}
	var out []*SRAM
	Walk(e, func(x Expr) {
		if r, ok := x.(*SRAMRd); ok && !seen[r.Mem] {
			seen[r.Mem] = true
			out = append(out, r.Mem)
		}
	})
	return out
}

// ReadFIFOs returns the set of FIFOs an expression pops.
func ReadFIFOs(e Expr) []*FIFOMem {
	seen := map[*FIFOMem]bool{}
	var out []*FIFOMem
	Walk(e, func(x Expr) {
		if r, ok := x.(*FIFORd); ok && !seen[r.Mem] {
			seen[r.Mem] = true
			out = append(out, r.Mem)
		}
	})
	return out
}

// ReadRegs returns the set of registers an expression reads.
func ReadRegs(e Expr) []*Reg {
	seen := map[*Reg]bool{}
	var out []*Reg
	Walk(e, func(x Expr) {
		if r, ok := x.(*RegRd); ok && !seen[r.Reg] {
			seen[r.Reg] = true
			out = append(out, r.Reg)
		}
	})
	return out
}
