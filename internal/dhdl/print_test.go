package dhdl

import (
	"strings"
	"testing"

	"plasticine/internal/pattern"
)

func TestFormatExpr(t *testing.T) {
	s := &SRAM{Name: "s", Elem: pattern.F32, Size: 8}
	f := &FIFOMem{Name: "f", Elem: pattern.F32}
	r := &Reg{Name: "acc", Elem: pattern.F32}
	cases := []struct {
		e    Expr
		want string
	}{
		{CF(1.5), "1.5"},
		{CI(-3), "-3"},
		{Idx(2), "i2"},
		{Rd(r), "acc"},
		{Pop(f), "pop(f)"},
		{Ld(s, Idx(0)), "s[i0]"},
		{Add(Mul(Idx(0), CI(4)), CI(1)), "add(mul(i0, 4), 1)"},
		{Sel(Lt(Idx(0), CI(2)), CF(1), CF(0)), "mux(lt(i0, 2), 1, 0)"},
		{F32(Idx(0)), "f32(i0)"},
		{I32(CF(2.5)), "i32(2.5)"},
		{Neg(CF(1)), "neg(1)"},
	}
	for _, c := range cases {
		if got := FormatExpr(c.e); got != c.want {
			t.Errorf("FormatExpr = %q, want %q", got, c.want)
		}
	}
}

func TestProgramTree(t *testing.T) {
	b := NewBuilder("demo", Sequential)
	lim := b.Reg("lim", pattern.VI(4))
	s := b.SRAM("s", pattern.F32, 64)
	b.Pipe("outer", []Counter{CStepPar(0, 64, 16, 2)}, func(ix []Expr) {
		b.Compute("inner", []Counter{CDyn(lim)}, func(jx []Expr) []*Assign {
			return []*Assign{StoreAt(s, jx[0], CF(1))}
		})
	})
	p := b.MustBuild()
	tree := p.Tree()
	for _, want := range []string{
		"Sequential demo.root",
		"Pipeline outer [0..64 step 16 par 2]",
		"Compute inner [0..lim]",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// Indentation reflects nesting.
	lines := strings.Split(strings.TrimRight(tree, "\n"), "\n")
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("nesting not indented:\n%s", tree)
	}
}

func TestLoadFIFOStreaming(t *testing.T) {
	// DRAM -> FIFO -> compute popping elements.
	n := 64
	b := NewBuilder("stream", Sequential)
	d := b.DRAMF32("d", n)
	f := b.FIFO("f", pattern.F32, n)
	sum := b.Reg("sum", pattern.VF(0))
	b.StreamCtl("body", nil, func([]Expr) {
		b.LoadFIFO("ld", d, CI(0), f, n)
		b.Compute("sum", []Counter{C(n)}, func(ix []Expr) []*Assign {
			return []*Assign{Accum(sum, pattern.Add, Pop(f))}
		})
	})
	p := b.MustBuild()
	data := make([]float32, n)
	var want float32
	for i := range data {
		data[i] = float32(i) * 0.5
		want += data[i]
	}
	if err := d.Bind(pattern.FromF32("d", data)); err != nil {
		t.Fatal(err)
	}
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RegValue(sum).F; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if st.FIFOLen(f) != 0 {
		t.Errorf("FIFO should be drained, holds %d", st.FIFOLen(f))
	}
}

func TestParallelChildrenIndependent(t *testing.T) {
	b := NewBuilder("par", Sequential)
	s1 := b.SRAM("s1", pattern.F32, 8)
	s2 := b.SRAM("s2", pattern.F32, 8)
	b.Par("both", func() {
		b.Compute("w1", []Counter{C(8)}, func(ix []Expr) []*Assign {
			return []*Assign{StoreAt(s1, ix[0], CF(1))}
		})
		b.Compute("w2", []Counter{C(8)}, func(ix []Expr) []*Assign {
			return []*Assign{StoreAt(s2, ix[0], CF(2))}
		})
	})
	st, err := Run(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if st.SRAMData(s1)[7].F != 1 || st.SRAMData(s2)[7].F != 2 {
		t.Error("parallel children did not both execute")
	}
}

func TestTraceEventOrderAndContents(t *testing.T) {
	b := NewBuilder("trace", Sequential)
	d := b.DRAMF32("d", 32)
	s := b.SRAM("s", pattern.F32, 32)
	r := b.Reg("r", pattern.VF(0))
	b.Seq("body", []Counter{C(2)}, func(ix []Expr) {
		b.Load("ld", d, CI(0), s, 32)
		b.Compute("c", []Counter{CPar(32, 16)}, func(jx []Expr) []*Assign {
			return []*Assign{Accum(r, pattern.Add, Ld(s, jx[0]))}
		})
	})
	p := b.MustBuild()
	if err := d.Bind(pattern.FromF32("d", make([]float32, 32))); err != nil {
		t.Fatal(err)
	}
	var names []string
	var iters []int64
	_, err := Trace(p, func(ev *ExecEvent) {
		names = append(names, ev.Ctrl.Name)
		iters = append(iters, ev.Iters)
		if len(ev.Path) == 0 || ev.Path[len(ev.Path)-1] != ev.Ctrl {
			t.Error("event path must end at the leaf")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ld", "c", "ld", "c"}
	if len(names) != len(want) {
		t.Fatalf("got %d events %v, want %v", len(names), names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, names[i], want[i])
		}
	}
	if iters[1] != 32 {
		t.Errorf("compute iters = %d, want 32", iters[1])
	}
}

func TestSnapshotSemanticsWithinIteration(t *testing.T) {
	// Two conditional writes sharing a condition that reads one of the
	// destinations: both must observe the pre-iteration state.
	b := NewBuilder("snap", Sequential)
	a := b.SRAM("a", pattern.I32, 4)
	c := b.SRAM("c", pattern.I32, 4)
	b.Seq("init", nil, func([]Expr) {
		b.Compute("setup", []Counter{C(4)}, func(ix []Expr) []*Assign {
			return []*Assign{StoreAt(a, ix[0], CI(-1))}
		})
		b.Compute("both", []Counter{C(4)}, func(ix []Expr) []*Assign {
			fresh := Eq(Ld(a, ix[0]), CI(-1))
			return []*Assign{
				StoreAtIf(a, fresh, ix[0], CI(5)),
				StoreAtIf(c, fresh, ix[0], CI(7)),
			}
		})
	})
	st, err := Run(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if st.SRAMData(a)[i].I != 5 || st.SRAMData(c)[i].I != 7 {
			t.Errorf("slot %d: a=%d c=%d, want 5 and 7 (snapshot semantics)",
				i, st.SRAMData(a)[i].I, st.SRAMData(c)[i].I)
		}
	}
}
