package fpga

import (
	"testing"
	"testing/quick"
)

func TestLanesBounded(t *testing.T) {
	m := StratixV()
	w := Workload{Flops: 1e6, OpsPerLane: 2, LogicUtil: 0.9}
	if lanes := m.Lanes(w); lanes > float64(m.MaxBankedLanes) {
		t.Errorf("lanes = %v, exceeds banked cap %d", lanes, m.MaxBankedLanes)
	}
	// A very deep pipeline at low utilization still gets at least one lane.
	w = Workload{Flops: 1e6, OpsPerLane: 500, LogicUtil: 0.05}
	if lanes := m.Lanes(w); lanes < 1 {
		t.Errorf("lanes = %v, want >= 1", lanes)
	}
}

func TestMemoryBoundStreaming(t *testing.T) {
	m := StratixV()
	// 3 GB streamed: at 30 GB/s effective this is 0.1 s.
	w := Workload{DenseBytes: 3e9}
	if got := m.MemoryTime(w); got < 0.099 || got > 0.101 {
		t.Errorf("memory time = %v, want ~0.1 s", got)
	}
}

func TestRandomAccessesCostFullBursts(t *testing.T) {
	m := StratixV()
	dense := Workload{DenseBytes: 4e6}
	sparse := Workload{SparseAccesses: 1e6} // same 4 MB of useful data
	td, ts := m.MemoryTime(dense), m.MemoryTime(sparse)
	if ts < 10*td {
		t.Errorf("random access time %v should dwarf dense %v (ganged wide channel)", ts, td)
	}
}

func TestRuntimeIsMaxOfComponents(t *testing.T) {
	m := StratixV()
	w := Workload{Flops: 1e9, OpsPerLane: 2, LogicUtil: 0.4, DenseBytes: 1e6, SeqIters: 100, PipeDepth: 30}
	rt := m.Runtime(w)
	if rt < m.ComputeTime(w) || rt < m.MemoryTime(w) {
		t.Error("runtime below one of its components")
	}
	if rt != maxf(m.ComputeTime(w), m.MemoryTime(w)) {
		t.Error("runtime != max(compute,mem)")
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestPowerInPaperRange(t *testing.T) {
	m := StratixV()
	// Table 7 FPGA powers span 21.5 - 34.4 W across utilizations.
	lo := m.Power(Workload{LogicUtil: 0.24, MemUtil: 0.31})
	hi := m.Power(Workload{LogicUtil: 0.87, MemUtil: 0.99})
	if lo < 20 || lo > 26 {
		t.Errorf("low-util power = %.1f W, want ~21-25", lo)
	}
	if hi < 28 || hi > 36 {
		t.Errorf("high-util power = %.1f W, want ~30-35", hi)
	}
}

func TestRuntimeMonotonicInWork(t *testing.T) {
	m := StratixV()
	f := func(fl, by uint32) bool {
		w1 := Workload{Flops: float64(fl), DenseBytes: float64(by), OpsPerLane: 2, LogicUtil: 0.5}
		w2 := w1
		w2.Flops *= 2
		w2.DenseBytes *= 2
		return m.Runtime(w2) >= m.Runtime(w1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockAndBandwidthMatchPaper(t *testing.T) {
	m := StratixV()
	if m.ClockHz != 150e6 {
		t.Errorf("clock = %v, want 150 MHz (Section 4.4)", m.ClockHz)
	}
	if m.BandwidthBps != 37.5e9 {
		t.Errorf("bandwidth = %v, want 37.5 GB/s (Section 4.4)", m.BandwidthBps)
	}
}
