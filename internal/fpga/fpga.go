// Package fpga models the paper's baseline: an Altera Stratix V FPGA
// running DHDL-generated designs (Section 4.4) — 150 MHz fabric clock,
// 48 GB of DDR3-800 across 6 channels operating ganged as one wide channel
// (37.5 GB/s peak), with spatial designs whose parallelism is bounded by
// logic resources and by how many banked, double-buffered BRAM lanes the
// design can sustain.
//
// The model is resource-analytic: it takes a workload profile (flops,
// streamed bytes, random accesses, pipeline ops per lane, sequential
// iterations) plus the per-benchmark utilizations the paper measured on
// real hardware (Table 7), and computes the compute-bound, memory-bound
// and serialization components of runtime.
package fpga

import "math"

// Model describes the FPGA platform.
type Model struct {
	ALMs int // adaptive logic modules
	DSPs int // hard multipliers

	// ALMsPerFPUnit is logic cost of one soft floating-point operator.
	ALMsPerFPUnit int

	// MaxBankedLanes caps inner-loop parallelism: every extra lane needs
	// another bank and port on each double-buffered BRAM tile, and the
	// paper found useful inner parallelization saturates between 8 and 32
	// (Section 3.7).
	MaxBankedLanes int

	ClockHz float64

	// BandwidthBps is peak DRAM bandwidth; MemEfficiency derates it for
	// achievable streaming throughput.
	BandwidthBps  float64
	MemEfficiency float64

	// RandomAccessBytes is the effective cost of a 4-byte random access:
	// with all channels ganged into one wide channel, every access
	// occupies a full wide burst (Section 4.5).
	RandomAccessBytes float64
}

// StratixV returns the paper's baseline board.
func StratixV() Model {
	return Model{
		ALMs:              695000,
		DSPs:              1963,
		ALMsPerFPUnit:     800,
		MaxBankedLanes:    32,
		ClockHz:           150e6,
		BandwidthBps:      37.5e9,
		MemEfficiency:     0.8,
		RandomAccessBytes: 256,
	}
}

// Workload are the inputs the runtime estimate needs; they mirror
// workloads.Profile but keep this package dependency-free.
type Workload struct {
	Flops      float64
	DenseBytes float64
	// WriteBytes is the portion of DenseBytes written to DRAM; soft-logic
	// write paths achieve lower burst efficiency than reads.
	WriteBytes     float64
	SparseAccesses float64
	OpsPerLane     int
	// HeavyOpsPerLane counts transcendental/divide ops per lane; soft
	// floating-point exp/log/div/sqrt cost several times a mul-add in
	// FPGA logic.
	HeavyOpsPerLane int
	SeqIters        int
	PipeDepth       int
	// SeqChildren is the number of dependent pipeline stages inside one
	// sequential iteration; each pays a fill at the fabric clock.
	SeqChildren int
	LogicUtil   float64 // measured, Table 7
	MemUtil     float64 // measured, Table 7
}

// heavyOpFactor is the logic cost of a transcendental or divider relative
// to a soft mul-add.
const heavyOpFactor = 8

// Lanes returns the parallel pipeline lanes the design sustains.
func (m Model) Lanes(w Workload) float64 {
	if w.OpsPerLane < 1 {
		w.OpsPerLane = 1
	}
	laneALMs := float64(w.OpsPerLane+(heavyOpFactor-1)*w.HeavyOpsPerLane) * float64(m.ALMsPerFPUnit)
	dspLanes := float64(m.DSPs) * w.LogicUtil / float64(w.OpsPerLane)
	logicLanes := float64(m.ALMs) * w.LogicUtil / laneALMs
	lanes := math.Min(math.Min(dspLanes, logicLanes), float64(m.MaxBankedLanes))
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// ComputeTime returns the compute-bound runtime in seconds. Loop-carried
// outer iterations (SeqIters) cannot pipeline across each other: every
// iteration pays its dependent children's fills plus its share of the
// element stream.
func (m Model) ComputeTime(w Workload) float64 {
	if w.Flops == 0 {
		return 0
	}
	elements := w.Flops / float64(max(1, w.OpsPerLane))
	if w.SeqIters > 0 {
		perIter := elements / float64(w.SeqIters) / m.Lanes(w)
		fills := float64(max(1, w.SeqChildren) * w.PipeDepth)
		perIterMem := m.MemoryTime(w) / float64(w.SeqIters) * m.ClockHz
		return float64(w.SeqIters) * (perIter + fills + perIterMem) / m.ClockHz
	}
	return elements / (m.Lanes(w) * m.ClockHz)
}

// WriteEfficiency derates soft-logic DRAM write streams relative to reads.
const WriteEfficiency = 0.5

// MemoryTime returns the memory-bound runtime in seconds.
func (m Model) MemoryTime(w Workload) float64 {
	bw := m.BandwidthBps * m.MemEfficiency
	t := (w.DenseBytes - w.WriteBytes) / bw
	t += w.WriteBytes / (bw * WriteEfficiency)
	t += w.SparseAccesses * m.RandomAccessBytes / m.BandwidthBps
	return t
}

// Runtime estimates the benchmark's runtime in seconds. Designs that
// exhaust BRAM (memory utilization above doubleBufferLimit) cannot
// double-buffer their tiles, so compute serialises with DRAM transfers
// (the paper's OuterProduct/GEMM/Black-Scholes discussion, Section 4.5);
// otherwise the phases overlap and the slower one dominates. Sequential
// workloads fold their per-iteration memory time into ComputeTime.
func (m Model) Runtime(w Workload) float64 {
	if w.SeqIters > 0 {
		return m.ComputeTime(w)
	}
	if w.MemUtil > doubleBufferLimit {
		return m.ComputeTime(w) + m.MemoryTime(w)
	}
	return math.Max(m.ComputeTime(w), m.MemoryTime(w))
}

// doubleBufferLimit is the BRAM utilization beyond which designs could no
// longer afford double buffering.
const doubleBufferLimit = 0.7

// Power estimates board power in watts. The paper's PowerPlay measurements
// (Table 7) cluster between 21.5 and 34.4 W, tracking logic utilization.
func (m Model) Power(w Workload) float64 {
	const (
		static  = 18.0 // board + static + memory interface
		dynamic = 19.0 // fully-utilized fabric dynamic power
	)
	return static + dynamic*(0.6*w.LogicUtil+0.4*w.MemUtil)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
