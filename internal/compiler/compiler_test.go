package compiler

import (
	"strings"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// buildDotProgram is a tiled dot product used across compiler tests.
func buildDotProgram(n, tile, lanes int) *dhdl.Program {
	b := dhdl.NewBuilder("dot", dhdl.Sequential)
	a := b.DRAMF32("a", n)
	bv := b.DRAMF32("b", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	tb := b.SRAM("tb", pattern.F32, tile)
	partial := b.Reg("partial", pattern.VF(0))
	total := b.Reg("total", pattern.VF(0))
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStep(0, n, tile)}, func(ix []dhdl.Expr) {
		b.Load("loadA", a, ix[0], ta, tile)
		b.Load("loadB", bv, ix[0], tb, tile)
		b.Compute("mac", []dhdl.Counter{dhdl.CPar(tile, lanes)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add, dhdl.Mul(dhdl.Ld(ta, jx[0]), dhdl.Ld(tb, jx[0])))}
		})
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	})
	return b.MustBuild()
}

func TestAllocateDotProgram(t *testing.T) {
	v, err := Allocate(buildDotProgram(1024, 256, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.PCUs) != 2 {
		t.Fatalf("got %d virtual PCUs, want 2 (mac, acc)", len(v.PCUs))
	}
	if len(v.PMUs) != 2 {
		t.Fatalf("got %d virtual PMUs, want 2 (ta, tb)", len(v.PMUs))
	}
	if len(v.AGs) != 2 {
		t.Fatalf("got %d virtual AGs, want 2 (loadA, loadB)", len(v.AGs))
	}
	if v.OuterCtrls != 2 { // root + tiles
		t.Errorf("outer controllers = %d, want 2", v.OuterCtrls)
	}
	mac := v.PCUs[0]
	if mac.Name != "mac" {
		t.Fatalf("first PCU is %q, want mac", mac.Name)
	}
	if mac.Lanes != 16 {
		t.Errorf("mac lanes = %d, want 16", mac.Lanes)
	}
	// mac: mul + reduce.
	if len(mac.Ops) != 2 || mac.Ops[0].Kind != ALUOp || mac.Ops[1].Kind != ReduceOp {
		t.Errorf("mac ops = %+v, want [mul, reduce]", mac.Ops)
	}
	if len(mac.VecIns) != 2 {
		t.Errorf("mac vector inputs = %d, want 2 (ta, tb)", len(mac.VecIns))
	}
	if len(mac.Outs) != 1 || mac.Outs[0].Kind != OutScalReg {
		t.Errorf("mac outputs = %+v, want one scalar reg", mac.Outs)
	}
	// acc reads two regs (total, partial), writes one.
	acc := v.PCUs[1]
	if len(acc.ScalIns) != 2 {
		t.Errorf("acc scalar inputs = %d, want 2", len(acc.ScalIns))
	}
}

func TestAllocateCopiesAddressOpsToPMU(t *testing.T) {
	b := dhdl.NewBuilder("addr", dhdl.Sequential)
	s := b.SRAM("s", pattern.F32, 64)
	d := b.SRAM("d", pattern.F32, 64)
	b.Compute("c", []dhdl.Counter{dhdl.C(32)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		// Read address i*2+1 has 2 ops; write address i has none (1 min).
		addr := dhdl.Add(dhdl.Mul(ix[0], dhdl.CI(2)), dhdl.CI(1))
		return []*dhdl.Assign{dhdl.StoreAt(d, ix[0], dhdl.Ld(s, addr))}
	})
	v, err := Allocate(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	var sp, dp *VirtualPMU
	for _, m := range v.PMUs {
		switch m.Mem.Name {
		case "s":
			sp = m
		case "d":
			dp = m
		}
	}
	if sp == nil || dp == nil {
		t.Fatal("missing PMUs")
	}
	if sp.AddrOps != 2 {
		t.Errorf("s address ops = %d, want 2 (mul+add run in the PMU)", sp.AddrOps)
	}
	if dp.AddrOps != 1 {
		t.Errorf("d address ops = %d, want 1 (pass-through)", dp.AddrOps)
	}
	// The PCU body itself has no ops: pure data movement.
	if len(v.PCUs[0].Ops) != 0 {
		t.Errorf("PCU ops = %d, want 0 (address math belongs to PMUs)", len(v.PCUs[0].Ops))
	}
}

func TestNBufferingFromPipeline(t *testing.T) {
	// In buildDot, ta/tb are written by loads (children 0,1) and read by
	// mac (child 2): distance 2 -> 3 buffers for ta (paper: M = distance
	// between producer and consumer + 1).
	v, err := Allocate(buildDotProgram(1024, 256, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range v.PMUs {
		if m.Mem.Name == "ta" && m.NBuf < 2 {
			t.Errorf("ta NBuf = %d, want >= 2 (double buffering under Pipeline)", m.NBuf)
		}
	}
}

func TestPartitionSmallLeafFitsOnePCU(t *testing.T) {
	v, err := Allocate(buildDotProgram(1024, 256, 16))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionPCU(v.PCUs[0], arch.Default().PCU)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("mac needs %d PCUs, want 1", len(parts))
	}
	// mul (1 stage) + reduce (log2(16)+1 = 5 stages) = 6 stages: exactly
	// the paper's chosen PCU depth.
	if parts[0].StagesUsed != 6 {
		t.Errorf("stages used = %d, want 6", parts[0].StagesUsed)
	}
}

func TestPartitionReductionNeedsFiveStages(t *testing.T) {
	// Figure 7a: stages < 5 are infeasible for benchmarks with full
	// cross-lane reductions at 16 lanes.
	v, err := Allocate(buildDotProgram(1024, 256, 16))
	if err != nil {
		t.Fatal(err)
	}
	p := arch.Default().PCU
	p.Stages = 4
	if _, err := PartitionPCU(v.PCUs[0], p); err == nil {
		t.Error("expected 4-stage PCU to be infeasible for a 16-lane reduction")
	}
	p.Stages = 5
	if _, err := PartitionPCU(v.PCUs[0], p); err != nil {
		t.Errorf("5 stages should fit the reduction alone: %v", err)
	}
}

func TestPartitionLongPipelineSplits(t *testing.T) {
	// A deep chain of ops must split across multiple PCUs.
	b := dhdl.NewBuilder("deep", dhdl.Sequential)
	s := b.SRAM("s", pattern.F32, 64)
	d := b.SRAM("d", pattern.F32, 64)
	b.Compute("c", []dhdl.Counter{dhdl.CPar(64, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		v := dhdl.Ld(s, ix[0])
		for i := 0; i < 20; i++ {
			v = dhdl.Add(dhdl.Mul(v, dhdl.CF(1.5)), dhdl.CF(0.5))
		}
		return []*dhdl.Assign{dhdl.StoreAt(d, ix[0], v)}
	})
	vu, err := Allocate(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionPCU(vu.PCUs[0], arch.Default().PCU)
	if err != nil {
		t.Fatal(err)
	}
	// 40 ops over 6-stage PCUs: at least 7 physical units.
	if len(parts) < 7 {
		t.Errorf("40-op pipeline split into %d PCUs, want >= 7", len(parts))
	}
	for i, ph := range parts {
		if ph.StagesUsed > 6 {
			t.Errorf("partition %d uses %d stages > 6", i, ph.StagesUsed)
		}
	}
}

func TestPartitionPMUCapacitySplit(t *testing.T) {
	// A 128K-word (512 KB) tile needs multiple 256 KB PMUs.
	m := &VirtualPMU{Name: "big", Mem: &dhdl.SRAM{Name: "big", Size: 128 * 1024}, NBuf: 1, Unroll: 1, MaxConcurrentReads: 1}
	pm, err := PartitionPMU(m, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pm.Copies != 2 {
		t.Errorf("512KB tile maps to %d PMUs, want 2", pm.Copies)
	}
}

func TestPartitionPMUNBufScalesCapacity(t *testing.T) {
	// 40K words double-buffered needs 80K words > 64K per PMU -> 2 PMUs.
	m := &VirtualPMU{Name: "dbuf", Mem: &dhdl.SRAM{Name: "dbuf", Size: 40 * 1024}, NBuf: 2, Unroll: 1, MaxConcurrentReads: 1}
	pm, err := PartitionPMU(m, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pm.Copies != 2 {
		t.Errorf("double-buffered 40K-word tile maps to %d PMUs, want 2", pm.Copies)
	}
}

func TestPartitionPMUDuplicatesForConcurrentReads(t *testing.T) {
	m := &VirtualPMU{Name: "dup", Mem: &dhdl.SRAM{Name: "dup", Size: 1024}, NBuf: 1, Unroll: 1, MaxConcurrentReads: 3}
	pm, err := PartitionPMU(m, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pm.Copies != 3 {
		t.Errorf("3 concurrent read streams map to %d PMUs, want 3 (duplication)", pm.Copies)
	}
}

func TestPartitionPMUSupportPCUs(t *testing.T) {
	m := &VirtualPMU{Name: "hairy", Mem: &dhdl.SRAM{Name: "hairy", Size: 64}, NBuf: 1, Unroll: 1, AddrOps: 9, MaxConcurrentReads: 1}
	pm, err := PartitionPMU(m, arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	// 9 address ops, 4 fit the PMU, 5 spill into one 6-stage PCU.
	if pm.SupportPCUs != 1 {
		t.Errorf("support PCUs = %d, want 1", pm.SupportPCUs)
	}
}

func TestCompileEndToEnd(t *testing.T) {
	mp, err := Compile(buildDotProgram(4096, 512, 16), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if mp.Util.PCUs == 0 || mp.Util.PMUs == 0 || mp.Util.AGs == 0 {
		t.Errorf("utilization has zero entries: %+v", mp.Util)
	}
	if mp.Util.PCUFrac <= 0 || mp.Util.PCUFrac > 1 {
		t.Errorf("PCU fraction %v out of (0,1]", mp.Util.PCUFrac)
	}
	for leaf, lm := range mp.Leaves {
		if lm.PipelineDepth <= 0 {
			t.Errorf("leaf %s has pipeline depth %d", leaf.Name, lm.PipelineDepth)
		}
	}
	s := mp.Summary()
	for _, want := range []string{"mac", "ta", "PCUs"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCompileUnrollMultipliesUnits(t *testing.T) {
	build := func(par int) *dhdl.Program {
		b := dhdl.NewBuilder("unroll", dhdl.Sequential)
		s := b.SRAM("s", pattern.F32, 64)
		d := b.SRAM("d", pattern.F32, 64)
		b.Pipe("outer", []dhdl.Counter{dhdl.CPar(8, par)}, func(ix []dhdl.Expr) {
			b.Compute("c", []dhdl.Counter{dhdl.CPar(64, 16)}, func(jx []dhdl.Expr) []*dhdl.Assign {
				return []*dhdl.Assign{dhdl.StoreAt(d, jx[0], dhdl.Add(dhdl.Ld(s, jx[0]), dhdl.CF(1)))}
			})
		})
		return b.MustBuild()
	}
	m1, err := Compile(build(1), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Compile(build(4), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if m4.Util.PCUs != 4*m1.Util.PCUs {
		t.Errorf("par=4 uses %d PCUs, par=1 uses %d; want 4x", m4.Util.PCUs, m1.Util.PCUs)
	}
}

func TestCompileRejectsOversizedDesign(t *testing.T) {
	small := arch.Default()
	small.Chip.Rows, small.Chip.Cols = 1, 2 // one PCU, one PMU
	p := buildDotProgram(4096, 512, 16)
	if _, err := Compile(p, small); err == nil {
		t.Error("expected failure on a 1x2 chip")
	}
}

func TestPlacementAssignsDistinctSlots(t *testing.T) {
	mp, err := Compile(buildDotProgram(4096, 512, 16), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]string{}
	for _, nd := range mp.Netlist.Nodes {
		if nd.Kind == NodeAG {
			continue
		}
		key := [2]int{nd.X, nd.Y}
		if prev, ok := seen[key]; ok {
			t.Errorf("nodes %s and %s share slot %v", prev, nd.Name, key)
		}
		seen[key] = nd.Name
		// Checkerboard discipline.
		isPCUSlot := (nd.X+nd.Y)%2 == 0
		if (nd.Kind == NodePCU) != isPCUSlot {
			t.Errorf("node %s of kind %d at %v violates checkerboard", nd.Name, nd.Kind, key)
		}
	}
}

func TestRouteHopsManhattan(t *testing.T) {
	a := &Node{X: 0, Y: 0}
	b := &Node{X: 3, Y: 2}
	if got := RouteHops(a, b); got != 5 {
		t.Errorf("hops = %d, want 5", got)
	}
}

func TestReduceStages(t *testing.T) {
	cases := []struct{ lanes, want int }{{1, 1}, {2, 2}, {4, 3}, {16, 5}, {32, 6}}
	for _, c := range cases {
		if got := reduceStages(c.lanes); got != c.want {
			t.Errorf("reduceStages(%d) = %d, want %d", c.lanes, got, c.want)
		}
	}
}

func TestPartitionRespectsVectorInLimit(t *testing.T) {
	// A leaf reading 5 distinct SRAMs cannot fit a 3-vector-input PCU in
	// one partition; with enough of everything else it must split, and
	// with vector inputs capped at 1 it is infeasible (the op itself has
	// two vector operands).
	b := dhdl.NewBuilder("wide", dhdl.Sequential)
	var srams []*dhdl.SRAM
	for i := 0; i < 5; i++ {
		srams = append(srams, b.SRAM(string(rune('a'+i)), pattern.F32, 64))
	}
	d := b.SRAM("d", pattern.F32, 64)
	b.Compute("c", []dhdl.Counter{dhdl.CPar(64, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		v := dhdl.Ld(srams[0], ix[0])
		for _, s := range srams[1:] {
			v = dhdl.Add(v, dhdl.Ld(s, ix[0]))
		}
		return []*dhdl.Assign{dhdl.StoreAt(d, ix[0], v)}
	})
	vu, err := Allocate(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	p := arch.Default().PCU
	parts, err := PartitionPCU(vu.PCUs[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Errorf("5-input leaf fit %d partitions, want >= 2 with 3 vector ins", len(parts))
	}
	for i, ph := range parts {
		if ph.VecIns > p.VectorIns {
			t.Errorf("partition %d uses %d vector ins > %d", i, ph.VecIns, p.VectorIns)
		}
	}
	p.VectorIns = 1
	if _, err := PartitionPCU(vu.PCUs[0], p); err == nil {
		t.Error("expected infeasibility with 1 vector input")
	}
}

func TestVirtualString(t *testing.T) {
	v, err := Allocate(buildDotProgram(1024, 256, 16))
	if err != nil {
		t.Fatal(err)
	}
	if s := v.String(); !strings.Contains(s, "2 PCUs") {
		t.Errorf("String() = %q", s)
	}
}
