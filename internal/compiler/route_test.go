package compiler

import (
	"strings"
	"testing"

	"plasticine/internal/arch"
)

func TestXYRoute(t *testing.T) {
	hops := xyRoute(0, 0, 3, 2)
	if len(hops) != 6 {
		t.Fatalf("route length %d, want 6 (manhattan 5 + start)", len(hops))
	}
	if hops[0] != [2]int{0, 0} || hops[len(hops)-1] != [2]int{3, 2} {
		t.Errorf("endpoints wrong: %v", hops)
	}
	// X first, then Y.
	if hops[1] != [2]int{1, 0} || hops[3] != [2]int{3, 0} || hops[4] != [2]int{3, 1} {
		t.Errorf("not dimension-ordered: %v", hops)
	}
	// Degenerate route: same point.
	if got := xyRoute(2, 2, 2, 2); len(got) != 1 {
		t.Errorf("self-route length %d, want 1", len(got))
	}
	// Negative direction.
	back := xyRoute(3, 2, 0, 0)
	if back[len(back)-1] != [2]int{0, 0} {
		t.Errorf("reverse route broken: %v", back)
	}
}

func TestRouteAllCoversEdges(t *testing.T) {
	m := dotMapping(t)
	rt := RouteAll(m.Netlist, m.Params)
	if len(rt.Routes) == 0 {
		t.Fatal("no routes")
	}
	// Every route connects the placed endpoints.
	for _, r := range rt.Routes {
		a, b := m.Netlist.Nodes[r.From], m.Netlist.Nodes[r.To]
		first, last := r.Hops[0], r.Hops[len(r.Hops)-1]
		if first != [2]int{a.X, a.Y} || last != [2]int{b.X, b.Y} {
			t.Errorf("route %d-%d endpoints %v..%v, nodes at (%d,%d)/(%d,%d)",
				r.From, r.To, first, last, a.X, a.Y, b.X, b.Y)
		}
	}
	if rt.AvgHops() < 0.5 {
		t.Errorf("avg hops %.2f implausibly low", rt.AvgHops())
	}
	if rt.MaxLinkUse() < 1 {
		t.Error("no link usage recorded")
	}
	rep := rt.CongestionReport(3)
	if !strings.Contains(rep, "routes") || !strings.Contains(rep, "Link") {
		t.Errorf("report malformed:\n%s", rep)
	}
}

func TestRoutesStayNearGrid(t *testing.T) {
	m := dotMapping(t)
	p := arch.Default()
	rt := RouteAll(m.Netlist, p)
	for _, r := range rt.Routes {
		for _, h := range r.Hops {
			if h[0] < -1 || h[0] > p.Chip.Cols || h[1] < 0 || h[1] >= p.Chip.Rows {
				t.Fatalf("hop %v outside the fabric", h)
			}
		}
	}
}
