package compiler

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"plasticine/internal/arch"
)

func dotMapping(t *testing.T) *Mapping {
	t.Helper()
	m, err := Compile(buildDotProgram(4096, 512, 16), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBitstreamStructure(t *testing.T) {
	bs := GenerateBitstream(dotMapping(t))
	if bs.Program != "dot" {
		t.Errorf("program = %q", bs.Program)
	}
	if bs.Grid != [2]int{16, 8} {
		t.Errorf("grid = %v", bs.Grid)
	}
	if len(bs.PCUs) < 2 {
		t.Fatalf("got %d PCU configs, want >= 2", len(bs.PCUs))
	}
	if len(bs.PMUs) != 2 {
		t.Errorf("got %d PMU configs, want 2 (ta, tb)", len(bs.PMUs))
	}
	if len(bs.AGs) != 2 {
		t.Errorf("got %d AG configs, want 2 (loadA, loadB)", len(bs.AGs))
	}
	var mac *PCUConfig
	for i := range bs.PCUs {
		if bs.PCUs[i].Leaf == "mac" {
			mac = &bs.PCUs[i]
		}
	}
	if mac == nil {
		t.Fatal("no config for the mac leaf")
	}
	if mac.Lanes != 16 {
		t.Errorf("mac lanes = %d", mac.Lanes)
	}
	// mul then cross-lane reduce-add.
	if len(mac.Stages) != 2 || mac.Stages[0].Op != "mul" || mac.Stages[1].Op != "reduce_add" {
		t.Errorf("mac stage program = %+v, want [mul, reduce_add]", mac.Stages)
	}
	if len(mac.VectorIns) != 2 {
		t.Errorf("mac vector ins = %v, want [ta tb]", mac.VectorIns)
	}
	if len(mac.ScalarOuts) != 1 || mac.ScalarOuts[0] != "partial" {
		t.Errorf("mac scalar outs = %v, want [partial]", mac.ScalarOuts)
	}
	if len(mac.Counters) != 1 || mac.Counters[0].Par != 16 {
		t.Errorf("mac counters = %+v", mac.Counters)
	}
}

func TestBitstreamPMUAndAGConfigs(t *testing.T) {
	bs := GenerateBitstream(dotMapping(t))
	for _, p := range bs.PMUs {
		if p.SizeWords != 512 {
			t.Errorf("%s: size %d words, want 512", p.ID, p.SizeWords)
		}
		if p.NBuf < 2 {
			t.Errorf("%s: NBuf %d, want >= 2 (double-buffered under Pipeline)", p.ID, p.NBuf)
		}
		if p.Banking != "strided" {
			t.Errorf("%s: banking %q", p.ID, p.Banking)
		}
	}
	for _, a := range bs.AGs {
		if a.Sparse || a.Write {
			t.Errorf("%s: dense load misconfigured: %+v", a.ID, a)
		}
		if a.Side != "left" && a.Side != "right" {
			t.Errorf("%s: side %q", a.ID, a.Side)
		}
	}
}

func TestBitstreamRoundTrip(t *testing.T) {
	bs := GenerateBitstream(dotMapping(t))
	var buf bytes.Buffer
	if err := bs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBitstream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bs, got) {
		t.Error("bitstream did not survive an encode/decode round trip")
	}
}

func TestBitstreamDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBitstream(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestAssemblyListing(t *testing.T) {
	asm := GenerateBitstream(dotMapping(t)).Assembly()
	for _, want := range []string{
		"; program dot",
		"pcu mac.pcu0.0",
		"reduce_add",
		"pmu ta.pmu0",
		"ag loadA.ag0",
		"ctr 0..512 step 1 par 16",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly missing %q:\n%s", want, asm)
		}
	}
}

func TestStageProgramRegistersWithinBudget(t *testing.T) {
	// Register allocation must stay within the architecture's register
	// file for every benchmark-sized partition; exercise a deep pipeline.
	u := deepUnit(t, 40)
	parts, err := PartitionPCU(u, arch.Default().PCU)
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range parts {
		_, maxReg := pcuStageProgram(u, part)
		if maxReg > arch.Default().PCU.Registers {
			t.Errorf("partition %d uses %d registers > %d", i, maxReg, arch.Default().PCU.Registers)
		}
	}
}

// deepUnit builds a virtual PCU with a chain of n dependent ops.
func deepUnit(t *testing.T, n int) *VirtualPCU {
	t.Helper()
	u := &VirtualPCU{Name: "deep", Lanes: 16, Unroll: 1}
	u.VecIns = []VecInput{{}}
	prev := Operand{Kind: VecIn, ID: 0}
	for i := 0; i < n; i++ {
		op := &VOp{ID: i, Kind: ALUOp, Args: []Operand{prev, prev}}
		u.Ops = append(u.Ops, op)
		prev = Operand{Kind: OpResult, ID: i}
	}
	u.Outs = []VOut{{Kind: OutVecSRAM, Src: prev}}
	return u
}

func TestRegAllocReusesFreedRegisters(t *testing.T) {
	ra := newRegAlloc()
	ra.lastUse["a"] = 0
	r0 := ra.claim("a")
	ra.releaseDead(0)
	r1 := ra.claim("b")
	if r0 != r1 {
		t.Errorf("freed register not reused: %d then %d", r0, r1)
	}
}
