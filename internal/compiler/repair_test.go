package compiler

import (
	"errors"
	"fmt"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/fault"
)

// compileDot compiles the shared dot-product fixture fault-free.
func compileDot(t *testing.T) *Mapping {
	t.Helper()
	m, err := Compile(buildDotProgram(1024, 256, 16), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pickOccupied returns the first netlist node of the wanted kind.
func pickOccupied(t *testing.T, m *Mapping, kind NodeKind) *Node {
	t.Helper()
	for _, nd := range m.Netlist.Nodes {
		if nd.Kind == kind {
			return nd
		}
	}
	t.Fatalf("fixture has no node of kind %v", kind)
	return nil
}

// TestRepairMovesOnlyDeadTileUnits is the acceptance criterion: killing one
// occupied tile moves exactly the unit that sat on it and nothing else.
func TestRepairMovesOnlyDeadTileUnits(t *testing.T) {
	m := compileDot(t)
	victim := pickOccupied(t, m, NodePCU)
	before := map[string][2]int{}
	for _, nd := range m.Netlist.Nodes {
		before[nd.Name] = [2]int{nd.X, nd.Y}
	}
	vx, vy := victim.X, victim.Y

	plan := fault.ManualPlan([]fault.Coord{{X: vx, Y: vy}}, nil, nil, nil)
	rep, err := Repair(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRecompile {
		t.Fatal("one dead tile forced a full recompile; incremental path expected")
	}
	if rep.MovedPCUs != 1 || rep.MovedPMUs != 0 {
		t.Errorf("moved %d PCUs / %d PMUs, want exactly 1 PCU", rep.MovedPCUs, rep.MovedPMUs)
	}
	if victim.X == vx && victim.Y == vy {
		t.Error("victim still sits on the dead tile")
	}
	if plan.PCUDisabled(victim.X, victim.Y) {
		t.Errorf("victim re-placed onto disabled tile (%d,%d)", victim.X, victim.Y)
	}
	occupied := map[[2]int]int{}
	for _, nd := range m.Netlist.Nodes {
		pos := [2]int{nd.X, nd.Y}
		occupied[pos]++
		if nd != victim && before[nd.Name] != pos {
			t.Errorf("unit %q moved from %v to %v despite sitting on a healthy tile",
				nd.Name, before[nd.Name], pos)
		}
	}
	if occupied[[2]int{victim.X, victim.Y}] != 1 {
		t.Errorf("victim's new tile (%d,%d) is shared by %d units",
			victim.X, victim.Y, occupied[[2]int{victim.X, victim.Y}])
	}
	if m.Faults != plan {
		t.Error("repair did not record the extended fault plan")
	}
}

// TestRepairReroutesMovedUnitEdges checks every edge touching the moved unit
// is re-routed to its new position and link accounting stays consistent.
func TestRepairReroutesMovedUnitEdges(t *testing.T) {
	m := compileDot(t)
	victim := pickOccupied(t, m, NodePMU)
	plan := fault.ManualPlan(nil, []fault.Coord{{X: victim.X, Y: victim.Y}}, nil, nil)
	rep, err := Repair(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReroutedEdges == 0 {
		t.Error("moving a connected PMU re-routed no edges")
	}
	for _, r := range m.Routes.Routes {
		from, to := m.Netlist.Nodes[r.From], m.Netlist.Nodes[r.To]
		if h0 := r.Hops[0]; h0[0] != from.X || h0[1] != from.Y {
			t.Errorf("route %d-%d starts at %v, unit sits at (%d,%d)", r.From, r.To, h0, from.X, from.Y)
		}
		if hn := r.Hops[len(r.Hops)-1]; hn[0] != to.X || hn[1] != to.Y {
			t.Errorf("route %d-%d ends at %v, unit sits at (%d,%d)", r.From, r.To, hn, to.X, to.Y)
		}
	}
	// Rebuild link usage from scratch; the incrementally-updated table must
	// match exactly.
	want := map[string]int{}
	for _, r := range m.Routes.Routes {
		for h := 1; h < len(r.Hops); h++ {
			a, b := r.Hops[h-1], r.Hops[h]
			want[keyOf(a, b)]++
		}
	}
	if len(want) != len(m.Routes.LinkUse) {
		t.Fatalf("link table has %d entries, recomputed %d", len(m.Routes.LinkUse), len(want))
	}
	for k, n := range want {
		if m.Routes.LinkUse[k] != n {
			t.Errorf("link %s: incremental count %d, recomputed %d", k, m.Routes.LinkUse[k], n)
		}
	}
}

func keyOf(a, b [2]int) string {
	return fmt.Sprintf("%d,%d>%d,%d", a[0], a[1], b[0], b[1])
}

// TestRepairPatchesDeadSwitchRoutes kills a switch under an existing route;
// only crossing routes change and none crosses the dead site afterwards.
func TestRepairPatchesDeadSwitchRoutes(t *testing.T) {
	m := compileDot(t)
	// Find a switch site strictly interior to some route.
	var dead [2]int
	found := false
	for _, r := range m.Routes.Routes {
		if len(r.Hops) > 2 {
			dead = r.Hops[1]
			found = true
			break
		}
	}
	if !found {
		t.Skip("fixture has no multi-hop route to cut")
	}
	plan := fault.ManualPlan(nil, nil, []fault.Coord{{X: dead[0], Y: dead[1]}}, nil)
	rep, err := Repair(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRecompile {
		t.Fatal("one dead switch forced a full recompile")
	}
	if rep.MovedUnits() != 0 {
		t.Errorf("switch fault moved %d units; placement must be untouched", rep.MovedUnits())
	}
	if rep.ReroutedEdges == 0 {
		t.Error("no route re-routed although one crossed the dead switch")
	}
	for _, r := range m.Routes.Routes {
		for h := 1; h < len(r.Hops)-1; h++ {
			if r.Hops[h] == dead {
				t.Errorf("route %d-%d still crosses dead switch %v", r.From, r.To, dead)
			}
		}
	}
}

func TestRepairDeterministic(t *testing.T) {
	run := func() string {
		m := compileDot(t)
		victim := pickOccupied(t, m, NodePCU)
		plan := fault.ManualPlan([]fault.Coord{{X: victim.X, Y: victim.Y}}, nil, nil, nil)
		if _, err := Repair(m, plan); err != nil {
			t.Fatal(err)
		}
		return placementKey(m)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical repairs produced different mappings:\n%s\n%s", a, b)
	}
}

// TestRepairKeepsTimingMapsOnIncrementalPath pins the contract the simulator
// relies on: an incremental repair must not invalidate the activity graph, so
// the Leaves/Mems maps keep their identities.
func TestRepairKeepsTimingMapsOnIncrementalPath(t *testing.T) {
	m := compileDot(t)
	leavesBefore := make(map[interface{}]*LeafMap)
	for k, v := range m.Leaves {
		leavesBefore[k] = v
	}
	victim := pickOccupied(t, m, NodePCU)
	plan := fault.ManualPlan([]fault.Coord{{X: victim.X, Y: victim.Y}}, nil, nil, nil)
	if _, err := Repair(m, plan); err != nil {
		t.Fatal(err)
	}
	for k, v := range m.Leaves {
		if leavesBefore[k] != v {
			t.Errorf("incremental repair replaced the LeafMap for %v", k)
		}
	}
}

// TestRepairFallsBackToRecompileError drives the ladder to its bottom rung:
// when even a full recompile cannot fit, Repair reports FullRecompile and the
// error wraps ErrInsufficient.
func TestRepairFallsBackToRecompileError(t *testing.T) {
	m := compileDot(t)
	params := m.Params
	// Kill every PCU tile on the chip: the displaced units have nowhere to
	// go incrementally, and the recompile fallback cannot fit either.
	var allPCU []fault.Coord
	for y := 0; y < params.Chip.Rows; y++ {
		for x := 0; x < params.Chip.Cols; x++ {
			if (x+y)%2 == 0 {
				allPCU = append(allPCU, fault.Coord{X: x, Y: y})
			}
		}
	}
	plan := fault.ManualPlan(allPCU, nil, nil, nil)
	rep, err := Repair(m, plan)
	if err == nil {
		t.Fatal("repair succeeded with every PCU tile dead")
	}
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("want ErrInsufficient, got %v", err)
	}
	if !rep.FullRecompile {
		t.Error("report does not show the full-recompile fallback was attempted")
	}
}

// TestRepairZeroNewFaultsIsNoOp pins that repairing under a plan that kills
// nothing new leaves placement, routes and counters untouched.
func TestRepairZeroNewFaultsIsNoOp(t *testing.T) {
	m := compileDot(t)
	before := placementKey(m)
	plan := fault.ManualPlan(nil, nil, nil, nil)
	rep, err := Repair(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MovedUnits() != 0 || rep.ReroutedEdges != 0 || rep.FullRecompile {
		t.Errorf("no-op repair reported work: %s", rep)
	}
	if placementKey(m) != before {
		t.Error("no-op repair changed placement or routing")
	}
}
