package compiler

import (
	"fmt"

	"plasticine/internal/dhdl"
)

// Allocate builds the virtual-unit view of a program: one virtual PCU per
// inner (compute) controller, one virtual PMU per SRAM, one virtual AG per
// transfer leaf, with outer controllers counted for switch control logic
// (Section 3.6, "allocate and schedule virtual PMUs and PCUs").
func Allocate(p *dhdl.Program) (*Virtual, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	v := &Virtual{Prog: p}
	pmus := make(map[*dhdl.SRAM]*VirtualPMU)
	pmuOf := func(s *dhdl.SRAM) *VirtualPMU {
		if m, ok := pmus[s]; ok {
			return m
		}
		m := &VirtualPMU{Name: s.Name, Origin: s.Provenance(), Mem: s, NBuf: s.NBuf, Unroll: 1}
		pmus[s] = m
		v.PMUs = append(v.PMUs, m)
		return m
	}

	var walk func(c *dhdl.Controller, unroll int, err *error)
	walk = func(c *dhdl.Controller, unroll int, err *error) {
		if *err != nil {
			return
		}
		if c.Kind.IsOuter() {
			v.OuterCtrls++
			for _, ctr := range c.Chain {
				unroll *= ctr.Par
			}
			for _, ch := range c.Children {
				walk(ch, unroll, err)
			}
			return
		}
		switch c.Kind {
		case dhdl.ComputeKind:
			u, e := lowerCompute(c, unroll, pmuOf)
			if e != nil {
				*err = e
				return
			}
			// Schedule for register pressure here, once per virtual unit, so
			// PartitionPCU stays read-only and safe to call concurrently.
			reorderForPressure(u)
			v.PCUs = append(v.PCUs, u)
		default:
			x := c.Xfer
			ag := &VirtualAG{
				Name:   c.Name,
				Origin: c.Provenance(),
				Leaf:   c,
				Sparse: c.Kind == dhdl.GatherKind || c.Kind == dhdl.ScatterKind,
				Write:  c.Kind == dhdl.StoreKind || c.Kind == dhdl.ScatterKind,
				Unroll: unroll,
			}
			v.AGs = append(v.AGs, ag)
			// Transfers read/write on-chip memories through the PMUs.
			for _, s := range []*dhdl.SRAM{x.SRAM, x.AddrMem, x.DataMem} {
				if s == nil {
					continue
				}
				m := pmuOf(s)
				if s == x.SRAM && (c.Kind == dhdl.LoadKind || c.Kind == dhdl.GatherKind) {
					m.Writers++
				} else {
					m.Readers++
					if m.MaxConcurrentReads < 1 {
						m.MaxConcurrentReads = 1
					}
				}
				if unroll > m.Unroll {
					m.Unroll = unroll
				}
			}
		}
	}
	var err error
	walk(p.Root, 1, &err)
	if err != nil {
		return nil, err
	}
	raiseNBuffers(p, pmus)
	return v, nil
}

// lowerCompute translates one compute leaf into a virtual PCU, copying
// address-calculation ops into the PMUs of the memories it touches
// (Section 3.2: address calculation is performed on the PMU datapath).
func lowerCompute(c *dhdl.Controller, unroll int, pmuOf func(*dhdl.SRAM) *VirtualPMU) (*VirtualPCU, error) {
	u := &VirtualPCU{Name: c.Name, Origin: c.Provenance(), Leaf: c, Lanes: 1, Unroll: unroll}
	if n := len(c.Chain); n > 0 {
		u.Lanes = c.Chain[n-1].Par
		for _, ctr := range c.Chain[:n-1] {
			u.Unroll *= ctr.Par
		}
	}
	u.NumCtrs = len(c.Chain)
	u.Firings = firingEstimate(c)

	laneLevel := -1
	if len(c.Chain) > 0 {
		laneLevel = c.Depth + len(c.Chain) - 1
	}
	lw := &lowerer{u: u, pmuOf: pmuOf, laneLevel: laneLevel,
		vecKey: map[string]int{}, scalKey: map[*dhdl.Reg]int{}, cse: map[string]Operand{}}
	// Dynamic counter limits arrive over the scalar network.
	for _, ctr := range c.Chain {
		if ctr.MaxReg != nil {
			lw.scalIn(ctr.MaxReg)
		}
	}
	for _, a := range c.Body {
		if err := lw.lowerAssign(c, a); err != nil {
			return nil, err
		}
	}
	// Record per-leaf read concurrency on each PMU.
	streams := map[*dhdl.SRAM]int{}
	for _, vi := range u.VecIns {
		if vi.SRAM != nil {
			streams[vi.SRAM]++
		}
	}
	for s, n := range streams {
		m := pmuOf(s)
		if n > m.MaxConcurrentReads {
			m.MaxConcurrentReads = n
		}
	}
	return u, nil
}

// firingEstimate is the number of vector firings per full program run,
// over-approximating dynamic counters as one trip.
func firingEstimate(c *dhdl.Controller) int64 {
	n := int64(1)
	for _, ctr := range c.Chain {
		t := ctr.Trips()
		if t < 0 {
			t = 1
		}
		n *= int64((t + ctr.Par - 1) / ctr.Par)
	}
	return n
}

type lowerer struct {
	u         *VirtualPCU
	pmuOf     func(*dhdl.SRAM) *VirtualPMU
	laneLevel int
	vecKey    map[string]int
	scalKey   map[*dhdl.Reg]int
	// cse maps a structural expression key to the operand that already
	// computes it, so repeated subtrees (common in deep pipelines like
	// Black-Scholes) lower to a single op chain.
	cse map[string]Operand
}

// hasFIFORead reports whether an expression pops a FIFO; such expressions
// have side effects and must not be deduplicated.
func hasFIFORead(e dhdl.Expr) bool {
	found := false
	dhdl.Walk(e, func(x dhdl.Expr) {
		if _, ok := x.(*dhdl.FIFORd); ok {
			found = true
		}
	})
	return found
}

// lowerCSE wraps lowerExpr with structural deduplication.
func (lw *lowerer) lowerCSE(e dhdl.Expr) (Operand, error) {
	if hasFIFORead(e) {
		return lw.lowerExpr(e)
	}
	key := dhdl.FormatExpr(e)
	if op, ok := lw.cse[key]; ok {
		return op, nil
	}
	op, err := lw.lowerExpr(e)
	if err != nil {
		return Operand{}, err
	}
	lw.cse[key] = op
	return op, nil
}

func (lw *lowerer) scalIn(r *dhdl.Reg) int {
	if i, ok := lw.scalKey[r]; ok {
		return i
	}
	i := len(lw.u.ScalIns)
	lw.u.ScalIns = append(lw.u.ScalIns, ScalInput{Reg: r})
	lw.scalKey[r] = i
	return i
}

func (lw *lowerer) addOp(op *VOp) int {
	op.ID = len(lw.u.Ops)
	lw.u.Ops = append(lw.u.Ops, op)
	return op.ID
}

func (lw *lowerer) lowerAssign(c *dhdl.Controller, a *dhdl.Assign) error {
	val, err := lw.lowerCSE(a.Val)
	if err != nil {
		return err
	}
	var cond *Operand
	if a.Cond != nil {
		cv, err := lw.lowerCSE(a.Cond)
		if err != nil {
			return err
		}
		cond = &cv
	}
	// SRAM-destination address ops belong to the destination PMU.
	addrToPMU := func(s *dhdl.SRAM) {
		m := lw.pmuOf(s)
		m.Writers++
		m.AddrOps += addrOpCount(a.Addr)
		stride, affineOK := LaneStride(a.Addr, lw.laneLevel)
		lw.u.WriteAccess = append(lw.u.WriteAccess, StreamStride{Stride: stride, Affine: affineOK})
	}
	switch a.Kind {
	case dhdl.WriteSRAM:
		addrToPMU(a.SRAM)
		src := val
		if cond != nil {
			// Predicated write: mask computed in the PCU, write-enable
			// travels with the data.
			id := lw.addOp(&VOp{Kind: MuxOp, Args: []Operand{*cond, val, val}})
			src = Operand{Kind: OpResult, ID: id}
		}
		lw.u.Outs = append(lw.u.Outs, VOut{Kind: OutVecSRAM, SRAM: a.SRAM, Src: src})
	case dhdl.WriteReg:
		src := val
		if cond != nil {
			id := lw.addOp(&VOp{Kind: MuxOp, Args: []Operand{*cond, val, val}})
			src = Operand{Kind: OpResult, ID: id}
		}
		lw.u.Outs = append(lw.u.Outs, VOut{Kind: OutScalReg, Reg: a.Reg, Src: src})
	case dhdl.ReduceReg:
		args := []Operand{val}
		if cond != nil {
			args = append(args, *cond)
		}
		id := lw.addOp(&VOp{Kind: ReduceOp, ALU: a.Combine, Args: args})
		lw.u.Reduces++
		lw.u.Outs = append(lw.u.Outs, VOut{Kind: OutScalReg, Reg: a.Reg, Src: Operand{Kind: OpResult, ID: id}})
	case dhdl.ReduceSRAM:
		addrToPMU(a.SRAM)
		m := lw.pmuOf(a.SRAM)
		m.RMWOps++ // the combine executes in the PMU datapath
		src := val
		if cond != nil {
			id := lw.addOp(&VOp{Kind: MuxOp, Args: []Operand{*cond, val, val}})
			src = Operand{Kind: OpResult, ID: id}
		}
		lw.u.Outs = append(lw.u.Outs, VOut{Kind: OutVecSRAM, SRAM: a.SRAM, Src: src})
	case dhdl.PushFIFO:
		src := val
		if cond != nil {
			// Valid-word coalescing across lanes (Section 2.2).
			id := lw.addOp(&VOp{Kind: MuxOp, Args: []Operand{*cond, val, val}})
			src = Operand{Kind: OpResult, ID: id}
		}
		lw.u.Outs = append(lw.u.Outs, VOut{Kind: OutVecFIFO, FIFO: a.FIFO, Src: src})
	default:
		return fmt.Errorf("compiler: %s: unknown assign kind %v", c.Name, a.Kind)
	}
	return nil
}

// addrOpCount is the number of PMU datapath ops an address expression
// needs; even a pass-through address occupies one stage of the PMU's
// banking/buffering logic.
func addrOpCount(e dhdl.Expr) int {
	if e == nil {
		return 1
	}
	if n := dhdl.CountOps(e); n > 0 {
		return n
	}
	return 1
}

func (lw *lowerer) lowerExpr(e dhdl.Expr) (Operand, error) {
	switch n := e.(type) {
	case *dhdl.Lit:
		return Operand{Kind: ConstOperand, Const: n.V}, nil
	case *dhdl.Ctr:
		return Operand{Kind: CtrIdx, ID: n.Level}, nil
	case *dhdl.RegRd:
		return Operand{Kind: ScalIn, ID: lw.scalIn(n.Reg)}, nil
	case *dhdl.FIFORd:
		key := "fifo:" + n.Mem.Name
		if i, ok := lw.vecKey[key]; ok {
			return Operand{Kind: VecIn, ID: i}, nil
		}
		i := len(lw.u.VecIns)
		lw.u.VecIns = append(lw.u.VecIns, VecInput{FIFO: n.Mem})
		lw.vecKey[key] = i
		return Operand{Kind: VecIn, ID: i}, nil
	case *dhdl.SRAMRd:
		// The read stream's address ops run in the PMU; the PCU sees a
		// vector input. Identical reads (same SRAM, same address pattern)
		// share a stream.
		key := n.Mem.Name + "[" + dhdl.FormatExpr(n.Addr) + "]"
		if i, ok := lw.vecKey[key]; ok {
			return Operand{Kind: VecIn, ID: i}, nil
		}
		m := lw.pmuOf(n.Mem)
		m.Readers++
		m.AddrOps += addrOpCount(n.Addr)
		stride, affineOK := LaneStride(n.Addr, lw.laneLevel)
		lw.u.ReadAccess = append(lw.u.ReadAccess, StreamStride{Stride: stride, Affine: affineOK})
		if !affineOK && n.Mem.Banking == dhdl.Strided {
			// Per-lane random reads need content duplication across banks;
			// the compiler selects the banking mode (Section 3.2).
			n.Mem.Banking = dhdl.Duplication
		}
		i := len(lw.u.VecIns)
		lw.u.VecIns = append(lw.u.VecIns, VecInput{SRAM: n.Mem})
		lw.vecKey[key] = i
		return Operand{Kind: VecIn, ID: i}, nil
	case *dhdl.ToF32:
		x, err := lw.lowerCSE(n.X)
		if err != nil {
			return Operand{}, err
		}
		id := lw.addOp(&VOp{Kind: CastOp, ToF: true, Args: []Operand{x}})
		return Operand{Kind: OpResult, ID: id}, nil
	case *dhdl.ToI32:
		x, err := lw.lowerCSE(n.X)
		if err != nil {
			return Operand{}, err
		}
		id := lw.addOp(&VOp{Kind: CastOp, Args: []Operand{x}})
		return Operand{Kind: OpResult, ID: id}, nil
	case *dhdl.Un:
		x, err := lw.lowerCSE(n.X)
		if err != nil {
			return Operand{}, err
		}
		id := lw.addOp(&VOp{Kind: ALUOp, ALU: n.Op, Args: []Operand{x}})
		return Operand{Kind: OpResult, ID: id}, nil
	case *dhdl.Bin:
		x, err := lw.lowerCSE(n.X)
		if err != nil {
			return Operand{}, err
		}
		y, err := lw.lowerCSE(n.Y)
		if err != nil {
			return Operand{}, err
		}
		id := lw.addOp(&VOp{Kind: ALUOp, ALU: n.Op, Args: []Operand{x, y}})
		return Operand{Kind: OpResult, ID: id}, nil
	case *dhdl.Mux:
		c, err := lw.lowerCSE(n.Cond)
		if err != nil {
			return Operand{}, err
		}
		t, err := lw.lowerCSE(n.T)
		if err != nil {
			return Operand{}, err
		}
		f, err := lw.lowerCSE(n.F)
		if err != nil {
			return Operand{}, err
		}
		id := lw.addOp(&VOp{Kind: MuxOp, Args: []Operand{c, t, f}})
		return Operand{Kind: OpResult, ID: id}, nil
	}
	return Operand{}, fmt.Errorf("compiler: cannot lower %T", e)
}

// raiseNBuffers sets each PMU's buffering depth from coarse-grained
// pipeline structure: an SRAM written by child i and read by child j of a
// Pipeline controller needs M = j-i+1 buffers (Section 3.5).
func raiseNBuffers(p *dhdl.Program, pmus map[*dhdl.SRAM]*VirtualPMU) {
	p.Walk(func(c *dhdl.Controller) {
		if c.Kind != dhdl.Pipeline {
			return
		}
		writeStage := map[*dhdl.SRAM]int{}
		for i, ch := range c.Children {
			for _, s := range leafWrites(ch) {
				if _, ok := writeStage[s]; !ok {
					writeStage[s] = i
				}
			}
		}
		for j, ch := range c.Children {
			for _, s := range leafReads(ch) {
				if i, ok := writeStage[s]; ok && j > i {
					if m := pmus[s]; m != nil && j-i+1 > m.NBuf {
						m.NBuf = j - i + 1
					}
				}
			}
		}
	})
}

// leafWrites returns SRAMs a subtree writes.
func leafWrites(c *dhdl.Controller) []*dhdl.SRAM {
	var out []*dhdl.SRAM
	var rec func(c *dhdl.Controller)
	rec = func(c *dhdl.Controller) {
		for _, ch := range c.Children {
			rec(ch)
		}
		switch c.Kind {
		case dhdl.ComputeKind:
			for _, a := range c.Body {
				if (a.Kind == dhdl.WriteSRAM || a.Kind == dhdl.ReduceSRAM) && a.SRAM != nil {
					out = append(out, a.SRAM)
				}
			}
		case dhdl.LoadKind, dhdl.GatherKind:
			if c.Xfer.SRAM != nil {
				out = append(out, c.Xfer.SRAM)
			}
		}
	}
	rec(c)
	return out
}

// leafReads returns SRAMs a subtree reads.
func leafReads(c *dhdl.Controller) []*dhdl.SRAM {
	seen := map[*dhdl.SRAM]bool{}
	var out []*dhdl.SRAM
	add := func(s *dhdl.SRAM) {
		if s != nil && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	var rec func(c *dhdl.Controller)
	rec = func(c *dhdl.Controller) {
		for _, ch := range c.Children {
			rec(ch)
		}
		switch c.Kind {
		case dhdl.ComputeKind:
			for _, a := range c.Body {
				exprs := []dhdl.Expr{a.Val}
				if a.Addr != nil {
					exprs = append(exprs, a.Addr)
				}
				if a.Cond != nil {
					exprs = append(exprs, a.Cond)
				}
				for _, e := range exprs {
					for _, s := range dhdl.ReadSRAMs(e) {
						add(s)
					}
				}
				// ReduceSRAM also reads its destination.
				if a.Kind == dhdl.ReduceSRAM {
					add(a.SRAM)
				}
			}
		case dhdl.StoreKind:
			add(c.Xfer.SRAM)
		case dhdl.GatherKind:
			add(c.Xfer.AddrMem)
		case dhdl.ScatterKind:
			add(c.Xfer.AddrMem)
			add(c.Xfer.DataMem)
		}
	}
	rec(c)
	return out
}
