package compiler

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"plasticine/internal/pattern"
)

// This file emits the configuration description — "akin to an assembly
// language" (Section 3.6) — for a compiled program: per-unit stage
// programs with register assignments, counter chains, IO bindings and
// control configuration, serialisable as JSON (the "bitstream") and as a
// readable assembly listing.

// CounterConfig is one level of a unit's counter chain.
type CounterConfig struct {
	Min  int `json:"min"`
	Max  int `json:"max"`
	Step int `json:"step"`
	Par  int `json:"par"`
	// DynReg names the scalar input carrying a dynamic limit, if any.
	DynReg string `json:"dynReg,omitempty"`
}

// StageConfig is one SIMD pipeline stage: a single op broadcast across all
// lanes (each stage has one configuration register, Section 3.1).
type StageConfig struct {
	Op   string   `json:"op"`
	Srcs []string `json:"srcs"`
	Dst  string   `json:"dst"`
}

// PCUConfig programs one physical Pattern Compute Unit.
type PCUConfig struct {
	ID    string `json:"id"`
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Leaf  string `json:"leaf"`
	Lanes int    `json:"lanes"`

	Counters []CounterConfig `json:"counters,omitempty"`
	Stages   []StageConfig   `json:"stages"`

	VectorIns  []string `json:"vectorIns,omitempty"`
	ScalarIns  []string `json:"scalarIns,omitempty"`
	VectorOuts []string `json:"vectorOuts,omitempty"`
	ScalarOuts []string `json:"scalarOuts,omitempty"`
}

// PMUConfig programs one Pattern Memory Unit.
type PMUConfig struct {
	ID        string `json:"id"`
	X         int    `json:"x"`
	Y         int    `json:"y"`
	Mem       string `json:"mem"`
	SizeWords int    `json:"sizeWords"`
	Banks     int    `json:"banks"`
	Banking   string `json:"banking"`
	NBuf      int    `json:"nbuf"`
	AddrOps   int    `json:"addrOps"`
	RMWOps    int    `json:"rmwOps,omitempty"`
}

// AGConfig programs one address generator.
type AGConfig struct {
	ID     string `json:"id"`
	Side   string `json:"side"` // "left" or "right"
	Y      int    `json:"y"`
	Leaf   string `json:"leaf"`
	Buffer string `json:"buffer"`
	Sparse bool   `json:"sparse"`
	Write  bool   `json:"write"`
}

// Bitstream is the complete static configuration of the fabric for one
// program.
type Bitstream struct {
	Program string      `json:"program"`
	Grid    [2]int      `json:"grid"` // cols, rows
	PCUs    []PCUConfig `json:"pcus"`
	PMUs    []PMUConfig `json:"pmus"`
	AGs     []AGConfig  `json:"ags"`
}

func opName(op *VOp) string {
	switch op.Kind {
	case MuxOp:
		return "mux"
	case CastOp:
		if op.ToF {
			return "i2f"
		}
		return "f2i"
	case ReduceOp:
		return "reduce_" + op.ALU.String()
	case RMWOp:
		return "rmw_" + op.ALU.String()
	}
	return op.ALU.String()
}

// constName encodes a configuration constant with an explicit type tag so
// stage-program interpretation preserves f32/i32 semantics.
func constName(v pattern.Value) string {
	switch v.T {
	case pattern.F32:
		return fmt.Sprintf("#f%g", v.F)
	case pattern.I32:
		return fmt.Sprintf("#i%d", v.I)
	}
	return fmt.Sprintf("#b%t", v.B)
}

// regAlloc linearly scans one partition's ops and assigns pipeline
// registers: a register is claimed at definition and released after the
// value's last local use.
type regAlloc struct {
	free    []int
	next    int
	regOf   map[string]int
	lastUse map[string]int
}

func newRegAlloc() *regAlloc {
	return &regAlloc{regOf: map[string]int{}, lastUse: map[string]int{}}
}

func (ra *regAlloc) claim(name string) int {
	if r, ok := ra.regOf[name]; ok {
		return r
	}
	var r int
	if n := len(ra.free); n > 0 {
		r = ra.free[n-1]
		ra.free = ra.free[:n-1]
	} else {
		r = ra.next
		ra.next++
	}
	ra.regOf[name] = r
	return r
}

func (ra *regAlloc) releaseDead(pos int) {
	for name, last := range ra.lastUse {
		if last == pos {
			if r, ok := ra.regOf[name]; ok {
				ra.free = append(ra.free, r)
				delete(ra.regOf, name)
			}
			delete(ra.lastUse, name)
		}
	}
}

// pcuStageProgram renders one partition's ops into stage configs with
// register-assigned operands. Names: v<i> vector input, s<i> scalar input,
// i<l> counter, r<n> pipeline register, #<c> constant.
func pcuStageProgram(u *VirtualPCU, part *PhysPCU) ([]StageConfig, int) {
	ra := newRegAlloc()
	// Pre-compute last local use of every value name.
	valName := func(o Operand) string {
		switch o.Kind {
		case OpResult:
			return fmt.Sprintf("t%d", o.ID)
		case VecIn:
			return fmt.Sprintf("v%d", o.ID)
		case ScalIn:
			return fmt.Sprintf("s%d", o.ID)
		case CtrIdx:
			return fmt.Sprintf("i%d", o.ID)
		}
		return constName(o.Const)
	}
	for pos, op := range part.Ops {
		for _, a := range op.Args {
			if a.Kind == OpResult {
				ra.lastUse[valName(a)] = pos
			}
		}
	}
	var stages []StageConfig
	maxReg := 0
	for pos, op := range part.Ops {
		srcs := make([]string, len(op.Args))
		for i, a := range op.Args {
			name := valName(a)
			switch a.Kind {
			case OpResult:
				if r, ok := ra.regOf[name]; ok {
					srcs[i] = fmt.Sprintf("r%d", r)
				} else {
					// Defined in an earlier partition: arrives on a bus.
					srcs[i] = "x" + name
				}
			default:
				srcs[i] = name
			}
		}
		ra.releaseDead(pos)
		dst := ra.claim(valName(Operand{Kind: OpResult, ID: op.ID}))
		if dst+1 > maxReg {
			maxReg = dst + 1
		}
		stages = append(stages, StageConfig{Op: opName(op), Srcs: srcs, Dst: fmt.Sprintf("r%d", dst)})
	}
	return stages, maxReg
}

// GenerateBitstream emits the configuration for a compiled mapping.
func GenerateBitstream(m *Mapping) *Bitstream {
	bs := &Bitstream{
		Program: m.Prog.Name,
		Grid:    [2]int{m.Params.Chip.Cols, m.Params.Chip.Rows},
	}
	nodePos := map[string]*Node{}
	for _, nd := range m.Netlist.Nodes {
		nodePos[nd.Name] = nd
	}
	for _, pc := range m.Part.PCUs {
		chain := m.Netlist.LeafChain[pc.V.Leaf]
		for k, part := range pc.Parts {
			id := fmt.Sprintf("%s.pcu0.%d", pc.V.Name, k)
			x, y := 0, 0
			if k < len(chain) {
				nd := m.Netlist.Nodes[chain[k]]
				x, y = nd.X, nd.Y
			}
			stages, _ := pcuStageProgram(pc.V, part)
			cfg := PCUConfig{
				ID: id, X: x, Y: y, Leaf: pc.V.Leaf.Name,
				Lanes:  pc.V.Lanes,
				Stages: stages,
			}
			for _, ctr := range pc.V.Leaf.Chain {
				cc := CounterConfig{Min: ctr.Min, Max: ctr.Max, Step: ctr.Step, Par: ctr.Par}
				if ctr.MaxReg != nil {
					cc.DynReg = ctr.MaxReg.Name
				}
				cfg.Counters = append(cfg.Counters, cc)
			}
			if k == 0 {
				for _, vi := range pc.V.VecIns {
					if vi.SRAM != nil {
						cfg.VectorIns = append(cfg.VectorIns, vi.SRAM.Name)
					} else if vi.FIFO != nil {
						cfg.VectorIns = append(cfg.VectorIns, "fifo:"+vi.FIFO.Name)
					}
				}
				for _, si := range pc.V.ScalIns {
					cfg.ScalarIns = append(cfg.ScalarIns, si.Reg.Name)
				}
			}
			if k == len(pc.Parts)-1 {
				for _, o := range pc.V.Outs {
					switch o.Kind {
					case OutVecSRAM:
						cfg.VectorOuts = append(cfg.VectorOuts, o.SRAM.Name)
					case OutVecFIFO:
						cfg.VectorOuts = append(cfg.VectorOuts, "fifo:"+o.FIFO.Name)
					case OutScalReg:
						cfg.ScalarOuts = append(cfg.ScalarOuts, o.Reg.Name)
					}
				}
			}
			bs.PCUs = append(bs.PCUs, cfg)
		}
	}
	for _, pm := range m.Part.PMUs {
		nd := nodePos[fmt.Sprintf("%s.pmu0.0", pm.V.Name)]
		x, y := 0, 0
		if nd != nil {
			x, y = nd.X, nd.Y
		}
		bs.PMUs = append(bs.PMUs, PMUConfig{
			ID: pm.V.Name + ".pmu0", X: x, Y: y,
			Mem:       pm.V.Mem.Name,
			SizeWords: pm.V.Mem.Size,
			Banks:     m.Params.PMU.Banks,
			Banking:   pm.V.Mem.Banking.String(),
			NBuf:      pm.V.NBuf,
			AddrOps:   pm.V.AddrOps,
			RMWOps:    pm.V.RMWOps,
		})
	}
	for _, ag := range m.Virtual.AGs {
		nd := nodePos[fmt.Sprintf("%s.ag0", ag.Name)]
		side, y := "left", 0
		if nd != nil {
			y = nd.Y
			if nd.X > 0 {
				side = "right"
			}
		}
		bs.AGs = append(bs.AGs, AGConfig{
			ID: ag.Name + ".ag0", Side: side, Y: y,
			Leaf:   ag.Leaf.Name,
			Buffer: ag.Leaf.Xfer.DRAM.Name,
			Sparse: ag.Sparse,
			Write:  ag.Write,
		})
	}
	sort.Slice(bs.PCUs, func(i, j int) bool { return bs.PCUs[i].ID < bs.PCUs[j].ID })
	sort.Slice(bs.PMUs, func(i, j int) bool { return bs.PMUs[i].ID < bs.PMUs[j].ID })
	sort.Slice(bs.AGs, func(i, j int) bool { return bs.AGs[i].ID < bs.AGs[j].ID })
	return bs
}

// Encode writes the bitstream as indented JSON.
func (b *Bitstream) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeBitstream reads a JSON bitstream.
func DecodeBitstream(r io.Reader) (*Bitstream, error) {
	var b Bitstream
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("compiler: decoding bitstream: %w", err)
	}
	return &b, nil
}

// Assembly renders the bitstream as a readable listing.
func (b *Bitstream) Assembly() string {
	var s strings.Builder
	fmt.Fprintf(&s, "; program %s on %dx%d fabric\n", b.Program, b.Grid[0], b.Grid[1])
	for _, p := range b.PCUs {
		fmt.Fprintf(&s, "\npcu %s @ (%d,%d) lanes=%d leaf=%s\n", p.ID, p.X, p.Y, p.Lanes, p.Leaf)
		for _, c := range p.Counters {
			lim := fmt.Sprint(c.Max)
			if c.DynReg != "" {
				lim = "$" + c.DynReg
			}
			fmt.Fprintf(&s, "  ctr %d..%s step %d par %d\n", c.Min, lim, c.Step, c.Par)
		}
		if len(p.VectorIns)+len(p.ScalarIns) > 0 {
			fmt.Fprintf(&s, "  in  v[%s] s[%s]\n", strings.Join(p.VectorIns, ","), strings.Join(p.ScalarIns, ","))
		}
		for i, st := range p.Stages {
			fmt.Fprintf(&s, "  s%-2d %s %s <- %s\n", i, st.Op, st.Dst, strings.Join(st.Srcs, ", "))
		}
		if len(p.VectorOuts)+len(p.ScalarOuts) > 0 {
			fmt.Fprintf(&s, "  out v[%s] s[%s]\n", strings.Join(p.VectorOuts, ","), strings.Join(p.ScalarOuts, ","))
		}
	}
	for _, p := range b.PMUs {
		fmt.Fprintf(&s, "\npmu %s @ (%d,%d) %d words x%d-buffered banking=%s addrops=%d",
			p.ID, p.X, p.Y, p.SizeWords, p.NBuf, p.Banking, p.AddrOps)
		if p.RMWOps > 0 {
			fmt.Fprintf(&s, " rmw=%d", p.RMWOps)
		}
		s.WriteString("\n")
	}
	for _, a := range b.AGs {
		mode := "dense"
		if a.Sparse {
			mode = "sparse"
		}
		dir := "read"
		if a.Write {
			dir = "write"
		}
		fmt.Fprintf(&s, "\nag %s @ %s,%d %s %s buffer=%s leaf=%s\n", a.ID, a.Side, a.Y, mode, dir, a.Buffer, a.Leaf)
	}
	return s.String()
}
