package compiler

import (
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
	"plasticine/internal/lower"
	"plasticine/internal/pattern"
)

// FuzzCompile drives the whole front half of the toolchain — pattern
// construction, lowering, DHDL build, and Compile (optionally under a fault
// plan) — with fuzz-chosen shapes and ops, proving that malformed or
// unmappable programs come back as errors, never panics.
func FuzzCompile(f *testing.F) {
	f.Add(uint16(64), byte(0), byte(0), byte(4), byte(16), int64(0), byte(0))
	f.Add(uint16(1024), byte(1), byte(2), byte(2), byte(8), int64(7), byte(3))
	f.Add(uint16(100), byte(2), byte(7), byte(3), byte(1), int64(1), byte(40))
	f.Add(uint16(0), byte(3), byte(23), byte(0), byte(0), int64(9), byte(255))
	f.Fuzz(func(t *testing.T, n16 uint16, kind, opb, par, lanes byte, seed int64, faulty byte) {
		n := int(n16)
		coll := pattern.NewF32("in", n+1)
		op := pattern.Op(int(opb) % 24)
		body := pattern.Add2(pattern.At(coll, pattern.Index(0)), pattern.F(1))
		var p pattern.Pattern
		switch kind % 4 {
		case 0:
			p = pattern.Map([]int{n}, body)
		case 1:
			p = pattern.Fold([]int{n}, pattern.F(0), body, op)
		case 2:
			p = pattern.Filter([]int{n}, pattern.Lt2(body, pattern.F(3)), body)
		default:
			key := pattern.ToI32{X: body}
			p = pattern.HashReduce([]int{n}, &key, []pattern.Expr{body}, op, int(opb)%7)
		}
		res, err := lower.Pattern(p, lower.Options{
			Tile: 1 << (par % 12), Par: int(par)%5 + 1, Lanes: int(lanes)%17 + 1,
		})
		if err != nil {
			return // rejected cleanly
		}
		params := arch.Default()
		var plan *fault.Plan
		if faulty > 0 {
			plan, err = fault.NewPlan(fault.Spec{
				Seed: seed,
				PCUs: int(faulty) % 8, PMUs: int(faulty) % 5,
				Switches: int(faulty) % 3, Chans: int(faulty) % 2,
			}, params)
			if err != nil {
				t.Fatalf("NewPlan rejected an in-range spec: %v", err)
			}
		}
		if _, err := CompileWithFaults(res.Prog, params, plan); err != nil {
			return // unmappable programs must fail with an error, not a panic
		}
	})
}

// FuzzBuilderCompile assembles raw DHDL programs with fuzz-chosen (and
// often invalid) structure and compiles them: nesting misuse, zero-size
// memories, and degenerate counters must all surface as errors.
func FuzzBuilderCompile(f *testing.F) {
	f.Add(byte(4), byte(16), byte(2), true)
	f.Add(byte(0), byte(0), byte(0), false)
	f.Add(byte(255), byte(1), byte(9), true)
	f.Fuzz(func(t *testing.T, tile, lanes, extra byte, storeToo bool) {
		b := dhdl.NewBuilder("fz", dhdl.Sequential)
		d := b.DRAMF32("d", int(tile)*4)
		s := b.SRAM("s", pattern.F32, int(tile))
		b.Pipe("tiles", []dhdl.Counter{dhdl.CStep(0, int(tile)*4, int(tile))}, func(ix []dhdl.Expr) {
			b.Load("ld", d, ix[0], s, int(tile))
			b.Compute("c", []dhdl.Counter{dhdl.CPar(int(tile), int(lanes)%17)}, func(jx []dhdl.Expr) []*dhdl.Assign {
				v := dhdl.Add(dhdl.Ld(s, jx[0]), dhdl.CF(float32(extra)))
				return []*dhdl.Assign{dhdl.StoreAt(s, jx[0], v)}
			})
			if storeToo {
				b.Store("st", d, ix[0], s, int(tile))
			}
		})
		prog, err := b.Build()
		if err != nil {
			return
		}
		if _, err := Compile(prog, arch.Default()); err != nil {
			return
		}
	})
}
